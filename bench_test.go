package diy_test

// Benchmark harness: one testing.B benchmark per paper table and
// figure, plus the ablations DESIGN.md indexes. Each benchmark
// regenerates its artifact through the simulator and reports the
// headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reprints the paper's evaluation. Absolute nanoseconds measure the
// harness, not 2017 AWS; the reported metrics carry the reproduced
// numbers.

import (
	"testing"
	"time"

	diy "repro"
	"repro/internal/apps/chat"
	"repro/internal/crypto/envelope"
	"repro/internal/experiments"
)

// BenchmarkTable1EC2EmailCost regenerates Table 1 (the §5 strawman).
func BenchmarkTable1EC2EmailCost(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		t1, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		total = t1.Total.Dollars()
	}
	b.ReportMetric(total, "$total/mo")
}

// BenchmarkTable2DIYCosts regenerates all five Table 2 rows.
func BenchmarkTable2DIYCosts(b *testing.B) {
	var chatTotal, emailTotal, videoTotal float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2()
		for _, r := range rows {
			switch r.Profile.Application {
			case "Group Chat":
				chatTotal = r.Total.Dollars()
			case "Email":
				emailTotal = r.Total.Dollars()
			case "Video Conferencing":
				videoTotal = r.Total.Dollars()
			}
		}
	}
	b.ReportMetric(chatTotal, "$chat/mo")
	b.ReportMetric(emailTotal, "$email/mo")
	b.ReportMetric(videoTotal, "$video/mo")
}

// BenchmarkTable3ChatPrototype measures the §6.2 prototype (200 sends
// per iteration) and reports the paper's three medians.
func BenchmarkTable3ChatPrototype(b *testing.B) {
	var run, billed, e2e time.Duration
	for i := 0; i < b.N; i++ {
		t3, err := experiments.RunTable3(experiments.Table3Config{Sends: 200})
		if err != nil {
			b.Fatal(err)
		}
		run, billed, e2e = t3.MedRun, t3.MedBilled, t3.MedE2E
	}
	b.ReportMetric(float64(run.Milliseconds()), "medRun-ms")
	b.ReportMetric(float64(billed.Milliseconds()), "medBilled-ms")
	b.ReportMetric(float64(e2e.Milliseconds()), "medE2E-ms")
}

// BenchmarkFigure1RequestFlow traces one full DIY request and verifies
// the privacy invariants.
func BenchmarkFigure1RequestFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if !tr.OK() {
			b.Fatal("invariants failed")
		}
	}
}

// BenchmarkClaimEmailSavings recomputes the abstract's savings factor.
func BenchmarkClaimEmailSavings(b *testing.B) {
	var single, ha float64
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunClaims()
		if err != nil {
			b.Fatal(err)
		}
		single, ha = c.SavingsVsSingleEC2, c.SavingsVsHAEC2
	}
	b.ReportMetric(single, "x-vs-EC2")
	b.ReportMetric(ha, "x-vs-HA-EC2")
}

// BenchmarkAblationMemoryLatency sweeps the function memory allocation
// (the §6.2 128 MB vs 448 MB observation).
func BenchmarkAblationMemoryLatency(b *testing.B) {
	var at128, at448 time.Duration
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunMemorySweep(40)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			switch p.MemoryMB {
			case 128:
				at128 = p.MedRun
			case 448:
				at448 = p.MedRun
			}
		}
	}
	b.ReportMetric(float64(at128.Milliseconds()), "run128MB-ms")
	b.ReportMetric(float64(at448.Milliseconds()), "run448MB-ms")
}

// BenchmarkAblationFreeTierCrossover finds where compute stops being
// free for each Table 2 profile.
func BenchmarkAblationFreeTierCrossover(b *testing.B) {
	var emailCross float64
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.Table2Profiles() {
			if p.Provider != "Lambda" {
				continue
			}
			c := experiments.FreeTierCrossoverPerDay(p)
			if p.Application == "Email" {
				emailCross = c
			}
		}
	}
	b.ReportMetric(emailCross, "email-req/day")
}

// BenchmarkAblationDIYvsEC2Crossover sweeps request volume to the
// point where an always-on VM wins.
func BenchmarkAblationDIYvsEC2Crossover(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		points := experiments.RunDIYvsEC2Crossover()
		for _, p := range points {
			if !p.LambdaWins {
				crossover = p.DailyRequests
				break
			}
		}
	}
	b.ReportMetric(crossover, "crossover-req/day")
}

// BenchmarkAblationColdStart measures cold-start fraction vs rate.
func BenchmarkAblationColdStart(b *testing.B) {
	var lowRate, highRate float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunColdStartAblation(0.5)
		if err != nil {
			b.Fatal(err)
		}
		lowRate = points[0].ColdFraction
		highRate = points[len(points)-1].ColdFraction
	}
	b.ReportMetric(lowRate*100, "cold%-at-10/day")
	b.ReportMetric(highRate*100, "cold%-at-10k/day")
}

// BenchmarkAblationPollInterval prices the SQS long-poll sweep.
func BenchmarkAblationPollInterval(b *testing.B) {
	var at20s float64
	for i := 0; i < b.N; i++ {
		points := experiments.RunPollIntervalAblation()
		at20s = points[len(points)-1].PollsPerMonth
	}
	b.ReportMetric(at20s, "polls/mo-at-20s")
}

// BenchmarkChatSendWarm measures a single warm chat send through the
// full stack (gateway, function, KMS, S3, SQS) — harness overhead per
// simulated request.
func BenchmarkChatSendWarm(b *testing.B) {
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		b.Fatal(err)
	}
	room, err := diy.InstallChat(cloud, "alice", "alice", "bob")
	if err != nil {
		b.Fatal(err)
	}
	alice := chat.NewClient(room, "alice", "bench")
	if _, err := alice.Session(); err != nil {
		b.Fatal(err)
	}
	if _, err := alice.Send("warm up"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alice.Send("bench message"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeSeal measures the crypto hot path (1 KiB payload).
func BenchmarkEnvelopeSeal(b *testing.B) {
	key, err := envelope.NewDataKey()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := envelope.Seal(key, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeOpen measures decryption of a 1 KiB payload.
func BenchmarkEnvelopeOpen(b *testing.B) {
	key, err := envelope.NewDataKey()
	if err != nil {
		b.Fatal(err)
	}
	sealed, err := envelope.Seal(key, make([]byte, 1024), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := envelope.Open(key, sealed, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackend compares the chat state backends (the
// paper's footnote: DynamoDB as a low-latency alternative to S3).
func BenchmarkAblationBackend(b *testing.B) {
	var s3Run, dynRun time.Duration
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunBackendComparison(40)
		if err != nil {
			b.Fatal(err)
		}
		s3Run, dynRun = points[0].MedRun, points[1].MedRun
	}
	b.ReportMetric(float64(s3Run.Milliseconds()), "s3-run-ms")
	b.ReportMetric(float64(dynRun.Milliseconds()), "dynamo-run-ms")
}

// BenchmarkExtensionStreaming quantifies the §8.3 suspend/resume
// connection extension against per-request and always-open hosting.
func BenchmarkExtensionStreaming(b *testing.B) {
	var openBilled, suspBilled time.Duration
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunStreamingComparison(6)
		if err != nil {
			b.Fatal(err)
		}
		openBilled, suspBilled = points[1].BilledCompute, points[2].BilledCompute
	}
	b.ReportMetric(openBilled.Seconds(), "open-conn-billed-s")
	b.ReportMetric(suspBilled.Seconds(), "suspend-billed-s")
}

// BenchmarkAblationDDoS prices the §8.2 burst-attack study.
func BenchmarkAblationDDoS(b *testing.B) {
	var openCost, throttledCost float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunDDoSCostStudy(2_000)
		if err != nil {
			b.Fatal(err)
		}
		openCost = points[0].ListCost.Dollars()
		throttledCost = points[1].ListCost.Dollars()
	}
	b.ReportMetric(openCost*1000, "open-m$")
	b.ReportMetric(throttledCost*1000, "throttled-m$")
}
