package diy_test

import (
	"testing"
	"time"

	diy "repro"
)

// TestPublicAPIQuickstart exercises the doc-comment example verbatim.
func TestPublicAPIQuickstart(t *testing.T) {
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	room, err := diy.InstallChat(cloud, "alice", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	a := diy.NewChatClient(room, "alice", "laptop")
	b := diy.NewChatClient(room, "bob", "phone")
	if _, err := a.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send("hello bob — nobody else can read this"); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Receive(nil, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("bob received %d messages", len(msgs))
	}
	if cloud.Bill().Total() < 0 {
		t.Fatal("negative bill")
	}
}

func TestPublicAPIMigrate(t *testing.T) {
	src, err := diy.NewCloud(diy.CloudOptions{Name: "aws-sim"})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := diy.NewCloud(diy.CloudOptions{Name: "gcp-sim"})
	if err != nil {
		t.Fatal(err)
	}
	room, err := diy.InstallChat(src, "alice", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	a := diy.NewChatClient(room, "alice", "laptop")
	if _, err := a.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send("pre-migration history"); err != nil {
		t.Fatal(err)
	}

	moved, err := diy.Migrate(room, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	a2 := diy.NewChatClient(moved, "alice", "laptop")
	if _, err := a2.Session(); err != nil {
		t.Fatal(err)
	}
	hist, err := a2.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Body != "pre-migration history" {
		t.Fatalf("history after migration = %v", hist)
	}
}

func TestPublicAPIStore(t *testing.T) {
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := diy.NewStore(cloud)
	err = s.Publish(diy.Manifest{
		Name: "iot", Version: 1, Publisher: "diy-labs", Audited: true,
		App: diy.IoTApp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Install("alice", "iot"); err != nil {
		t.Fatal(err)
	}
	if len(s.Report("alice")) != 1 {
		t.Fatal("resource report missing")
	}
}

func TestPublicAPITCB(t *testing.T) {
	if diy.NewTCBReport().Ratio() <= 1 {
		t.Fatal("TCB comparison must favor DIY")
	}
}

func TestPublicAPIVideoCall(t *testing.T) {
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	call, err := diy.StartVideoCall(cloud, "alice", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.Simulate(time.Hour, 3.0); err != nil {
		t.Fatal(err)
	}
	if err := call.End(cloud.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	// ≈ $0.11 for the hour-long HD call (no free tier on EC2 compute;
	// the 1 GB transfer allowance trims a cent or two).
	total := cloud.Bill().Total().Dollars()
	if total < 0.04 || total > 0.18 {
		t.Fatalf("hour-long call billed $%.3f", total)
	}
}

func TestPublicAPIUpgrade(t *testing.T) {
	cloud, err := diy.NewCloud(diy.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	room, err := diy.InstallChat(cloud, "alice", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	// Upgrading to the same app (a no-op new version) preserves the
	// deployment.
	if err := diy.Upgrade(room, diy.ChatApp{Members: []string{"alice", "bob"}}); err != nil {
		t.Fatal(err)
	}
	a := diy.NewChatClient(room, "alice", "laptop")
	if _, err := a.Session(); err != nil {
		t.Fatal(err)
	}
}
