// Package pricing implements the 2017 AWS price book, a thread-safe
// usage meter, and monthly bill computation with free tiers. Every cost
// number in the paper's Tables 1 and 2 is regenerated through this
// package rather than hardcoded.
package pricing

import (
	"fmt"
	"math"
)

// Money is an amount of US dollars held in nanodollars, so unit prices
// like Lambda's $0.00001667 per GB-second are exact.
type Money int64

// Nanodollar scale constants.
const (
	Nano   Money = 1
	Micro  Money = 1e3
	Cent   Money = 1e7
	Dollar Money = 1e9
)

// FromDollars converts a dollar amount to Money, rounding to the
// nearest nanodollar.
func FromDollars(d float64) Money {
	return Money(math.Round(d * float64(Dollar)))
}

// Dollars reports the amount as a float64 dollar value.
func (m Money) Dollars() float64 { return float64(m) / float64(Dollar) }

// Nanodollars reports the amount as an integer nanodollar count, the
// unit the metrics service stores cost series in (int64 keeps the
// float conversion outside pricing exact and diylint-clean).
func (m Money) Nanodollars() int64 { return int64(m) }

// MulFloat scales the amount by a quantity, rounding to the nearest
// nanodollar. Used for fractional usage such as 3750.5 GB-seconds.
func (m Money) MulFloat(q float64) Money {
	return Money(math.Round(float64(m) * q))
}

// RoundCents rounds to the nearest cent, the resolution the paper's
// tables report.
func (m Money) RoundCents() Money {
	half := Cent / 2
	if m < 0 {
		return -((-m + half) / Cent * Cent)
	}
	return (m + half) / Cent * Cent
}

// String formats the amount as the paper does: "$4.58", "$0.26".
func (m Money) String() string {
	r := m.RoundCents()
	neg := ""
	if r < 0 {
		neg = "-"
		r = -r
	}
	return fmt.Sprintf("%s$%d.%02d", neg, r/Dollar, (r%Dollar)/Cent)
}
