package pricing

import (
	"fmt"
	"sort"
	"strings"
)

// Line is one bill line item: a usage dimension priced against the book,
// with the free-tier allowance already applied.
type Line struct {
	Kind     Kind
	Detail   string  // human description, e.g. "t2.nano instance-hours"
	Quantity float64 // metered quantity in the kind's unit
	Billable float64 // quantity remaining after the free allowance
	Cost     Money   // price of the billable quantity
}

// Bill is a priced monthly statement.
type Bill struct {
	Lines []Line
}

// Total sums every line.
func (b *Bill) Total() Money {
	var t Money
	for _, l := range b.Lines {
		t += l.Cost
	}
	return t
}

// TotalOf sums only the lines for the given kinds.
func (b *Bill) TotalOf(kinds ...Kind) Money {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var t Money
	for _, l := range b.Lines {
		if want[l.Kind] {
			t += l.Cost
		}
	}
	return t
}

// Line returns the line for a kind, or a zero Line if absent.
func (b *Bill) Line(k Kind) Line {
	for _, l := range b.Lines {
		if l.Kind == k {
			return l
		}
	}
	return Line{Kind: k}
}

// String renders the bill as an aligned text table.
func (b *Bill) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "ITEM", "USAGE", "BILLABLE", "COST")
	for _, l := range b.Lines {
		fmt.Fprintf(&sb, "%-22s %14.3f %14.3f %10s\n", l.Detail, l.Quantity, l.Billable, l.Cost)
	}
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "TOTAL", "", "", b.Total())
	return sb.String()
}

// Compute prices the meter's accumulated usage against the book,
// applying each free-tier allowance, and returns the monthly bill.
// Lines appear in a stable service order; zero-usage dimensions are
// omitted.
func Compute(book *PriceBook, m *Meter) *Bill {
	var lines []Line
	add := func(l Line) {
		if l.Quantity > 0 {
			lines = append(lines, l)
		}
	}

	billable := func(q, free float64) float64 {
		if q <= free {
			return 0
		}
		return q - free
	}

	// Lambda.
	reqs := m.Total(LambdaRequests)
	breq := billable(reqs, book.LambdaFreeRequests)
	add(Line{
		Kind: LambdaRequests, Detail: "lambda requests",
		Quantity: reqs, Billable: breq,
		Cost: book.LambdaPerMillionRequests.MulFloat(breq / 1e6),
	})
	gbs := m.Total(LambdaGBSeconds)
	bgbs := billable(gbs, book.LambdaFreeGBSeconds)
	add(Line{
		Kind: LambdaGBSeconds, Detail: "lambda GB-seconds",
		Quantity: gbs, Billable: bgbs,
		Cost: book.LambdaPerGBSecond.MulFloat(bgbs),
	})

	// S3.
	stor := m.Total(S3StorageGBMo)
	add(Line{
		Kind: S3StorageGBMo, Detail: "s3 storage GB-months",
		Quantity: stor, Billable: stor,
		Cost: book.S3StoragePerGBMonth.MulFloat(stor),
	})
	puts := m.Total(S3PutRequests)
	add(Line{
		Kind: S3PutRequests, Detail: "s3 PUT requests",
		Quantity: puts, Billable: puts,
		Cost: book.S3PerThousandPUT.MulFloat(puts / 1e3),
	})
	gets := m.Total(S3GetRequests)
	add(Line{
		Kind: S3GetRequests, Detail: "s3 GET requests",
		Quantity: gets, Billable: gets,
		Cost: book.S3PerThousandGET.MulFloat(gets / 1e3),
	})

	// Data transfer out.
	xfer := m.Total(TransferOutGB)
	bx := billable(xfer, book.TransferFreeGB)
	add(Line{
		Kind: TransferOutGB, Detail: "data transfer out GB",
		Quantity: xfer, Billable: bx,
		Cost: book.TransferOutPerGB.MulFloat(bx),
	})

	// SQS.
	sqs := m.Total(SQSRequests)
	bs := billable(sqs, book.SQSFreeRequests)
	add(Line{
		Kind: SQSRequests, Detail: "sqs requests",
		Quantity: sqs, Billable: bs,
		Cost: book.SQSPerMillionRequests.MulFloat(bs / 1e6),
	})

	// KMS.
	kms := m.Total(KMSRequests)
	bk := billable(kms, book.KMSFreeRequests)
	add(Line{
		Kind: KMSRequests, Detail: "kms requests",
		Quantity: kms, Billable: bk,
		Cost: book.KMSPerTenThousandRequests.MulFloat(bk / 1e4),
	})
	keys := m.Total(KMSCustomerKeys)
	add(Line{
		Kind: KMSCustomerKeys, Detail: "kms customer keys",
		Quantity: keys, Billable: keys,
		Cost: book.KMSPerCustomerKeyMonth.MulFloat(keys),
	})

	// SES.
	ses := m.Total(SESMessages)
	bm := billable(ses, book.SESFreeMessages)
	add(Line{
		Kind: SESMessages, Detail: "ses messages",
		Quantity: ses, Billable: bm,
		Cost: book.SESPerThousandMessages.MulFloat(bm / 1e3),
	})

	// DynamoDB consumed capacity.
	wcu := m.Total(DynamoWCU)
	bw := billable(wcu, book.DynamoFreeWCU)
	add(Line{
		Kind: DynamoWCU, Detail: "dynamodb write units",
		Quantity: wcu, Billable: bw,
		Cost: book.DynamoPerMillionWCU.MulFloat(bw / 1e6),
	})
	rcu := m.Total(DynamoRCU)
	br := billable(rcu, book.DynamoFreeRCU)
	add(Line{
		Kind: DynamoRCU, Detail: "dynamodb read units",
		Quantity: rcu, Billable: br,
		Cost: book.DynamoPerMillionRCU.MulFloat(br / 1e6),
	})

	// CloudWatch: custom metrics and alarms, metered as monthly
	// inventory counts (the metrics service reports them via Usage()).
	cwm := m.Total(CWMetricMonths)
	bcwm := billable(cwm, book.CWFreeMetrics)
	add(Line{
		Kind: CWMetricMonths, Detail: "cloudwatch metric-months",
		Quantity: cwm, Billable: bcwm,
		Cost: book.CWPerMetricMonth.MulFloat(bcwm),
	})
	cwa := m.Total(CWAlarmMonths)
	bcwa := billable(cwa, book.CWFreeAlarms)
	add(Line{
		Kind: CWAlarmMonths, Detail: "cloudwatch alarm-months",
		Quantity: cwa, Billable: bcwa,
		Cost: book.CWPerAlarmMonth.MulFloat(bcwa),
	})

	// CloudWatch Logs: ingested and stored bytes, metered as GB
	// quantities (the log service reports them via Usage()).
	cwli := m.Total(CWLogsIngestGB)
	bcwli := billable(cwli, book.CWLogsFreeIngestGB)
	add(Line{
		Kind: CWLogsIngestGB, Detail: "cloudwatch logs ingest GB",
		Quantity: cwli, Billable: bcwli,
		Cost: book.CWLogsIngestPerGB.MulFloat(bcwli),
	})
	cwls := m.Total(CWLogsStorageGBMo)
	bcwls := billable(cwls, book.CWLogsFreeStorageGB)
	add(Line{
		Kind: CWLogsStorageGBMo, Detail: "cloudwatch logs GB-months",
		Quantity: cwls, Billable: bcwls,
		Cost: book.CWLogsStoragePerGBMonth.MulFloat(bcwls),
	})

	// X-Ray: traces recorded and scanned, metered as counts (the
	// trace store reports them via Usage()).
	xrr := m.Total(XRayTracesRecorded)
	bxrr := billable(xrr, book.XRayFreeRecorded)
	add(Line{
		Kind: XRayTracesRecorded, Detail: "x-ray traces recorded",
		Quantity: xrr, Billable: bxrr,
		Cost: book.XRayPerMillionRecorded.MulFloat(bxrr / 1e6),
	})
	xrs := m.Total(XRayTracesScanned)
	bxrs := billable(xrs, book.XRayFreeScanned)
	add(Line{
		Kind: XRayTracesScanned, Detail: "x-ray traces scanned",
		Quantity: xrs, Billable: bxrs,
		Cost: book.XRayPerMillionScanned.MulFloat(bxrs / 1e6),
	})

	// EC2, one line per instance type for readability.
	byType := m.ByResource(EC2Seconds)
	types := make([]string, 0, len(byType))
	for ty := range byType {
		types = append(types, ty)
	}
	sort.Strings(types)
	for _, ty := range types {
		secs := byType[ty]
		hours := secs / 3600
		add(Line{
			Kind: EC2Seconds, Detail: fmt.Sprintf("%s instance-hours", ty),
			Quantity: hours, Billable: hours,
			Cost: book.EC2Hourly(ty).MulFloat(hours),
		})
	}

	return &Bill{Lines: lines}
}
