package pricing

import (
	"strings"
	"testing"
)

func TestComputeEmptyMeter(t *testing.T) {
	b := Compute(Default2017(), NewMeter())
	if len(b.Lines) != 0 {
		t.Fatalf("empty meter produced %d lines", len(b.Lines))
	}
	if b.Total() != 0 {
		t.Fatalf("empty meter total %v", b.Total())
	}
}

func TestLambdaFreeTier(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	// Paper §6.1 group chat: 2000 requests/day × 30 days = 60k, well
	// inside the 1M free requests; 60k × 0.5 s × 0.125 GB = 3750 GB-s,
	// inside the 400k free GB-seconds. Compute cost must be $0.00.
	m.Add(Usage{Kind: LambdaRequests, Quantity: 60_000})
	m.Add(Usage{Kind: LambdaGBSeconds, Quantity: 3750})
	b := Compute(book, m)
	if got := b.TotalOf(LambdaRequests, LambdaGBSeconds); got != 0 {
		t.Fatalf("chat compute cost = %v, want $0.00", got)
	}
}

func TestLambdaBeyondFreeTier(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 3_000_000})
	m.Add(Usage{Kind: LambdaGBSeconds, Quantity: 500_000})
	b := Compute(book, m)
	// 2M billable requests × $0.20/M = $0.40.
	if got, want := b.Line(LambdaRequests).Cost, FromDollars(0.40); got != want {
		t.Fatalf("request cost %v, want %v", got, want)
	}
	// 100k billable GB-s × $0.00001667 = $1.667.
	if got, want := b.Line(LambdaGBSeconds).Cost, FromDollars(1.667); got != want {
		t.Fatalf("GB-s cost %v, want %v", got, want)
	}
}

func TestTable1EC2EmailBill(t *testing.T) {
	// Reproduce the paper's Table 1 exactly through the bill engine:
	// compute $4.32 (t2.nano, 732 h), storage $0.17 (7.4 GB at S3
	// rate), transfer $0.09 (2 GB − 1 GB free), total $4.58.
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: EC2Seconds, Quantity: MonthHours * 3600, Resource: "t2.nano"})
	m.Add(Usage{Kind: S3StorageGBMo, Quantity: 7.4})
	m.Add(Usage{Kind: TransferOutGB, Quantity: 2})
	b := Compute(book, m)

	if got := b.TotalOf(EC2Seconds).RoundCents(); got != FromDollars(4.32) {
		t.Errorf("compute = %v, want $4.32", got)
	}
	if got := b.Line(S3StorageGBMo).Cost.RoundCents(); got != FromDollars(0.17) {
		t.Errorf("storage = %v, want $0.17", got)
	}
	if got := b.Line(TransferOutGB).Cost.RoundCents(); got != FromDollars(0.09) {
		t.Errorf("transfer = %v, want $0.09", got)
	}
	if got := b.Total().RoundCents(); got != FromDollars(4.58) {
		t.Errorf("total = %v, want $4.58", got)
	}
}

func TestTable2ChatStorageTransfer(t *testing.T) {
	// Paper Table 2 group chat row: 2 GB storage + 2 GB transfer
	// (1 GB free) = $0.14/month.
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: S3StorageGBMo, Quantity: 2})
	m.Add(Usage{Kind: TransferOutGB, Quantity: 2})
	b := Compute(book, m)
	if got := b.Total().RoundCents(); got != FromDollars(0.14) {
		t.Fatalf("chat storage+transfer = %v, want $0.14", got)
	}
}

func TestSQSPollingInsideFreeTier(t *testing.T) {
	// Paper §6.2: "Clients poll 876,000 times per month (assuming the
	// maximum 20 second poll interval), which is well within the free
	// tier."
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: SQSRequests, Quantity: 876_000})
	b := Compute(book, m)
	if got := b.Line(SQSRequests).Cost; got != 0 {
		t.Fatalf("876k SQS polls cost %v, want $0.00", got)
	}
	// Beyond the tier: 2M requests → 1M billable × $0.40/M = $0.40.
	m.Add(Usage{Kind: SQSRequests, Quantity: 1_124_000})
	b = Compute(book, m)
	if got := b.Line(SQSRequests).Cost; got != FromDollars(0.40) {
		t.Fatalf("2M SQS requests cost %v, want $0.40", got)
	}
}

func TestKMSLines(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: KMSRequests, Quantity: 30_000})
	m.Add(Usage{Kind: KMSCustomerKeys, Quantity: 2})
	b := Compute(book, m)
	// 10k billable × $0.03/10k = $0.03.
	if got := b.Line(KMSRequests).Cost; got != FromDollars(0.03) {
		t.Fatalf("kms requests %v, want $0.03", got)
	}
	if got := b.Line(KMSCustomerKeys).Cost; got != FromDollars(2.00) {
		t.Fatalf("kms keys %v, want $2.00", got)
	}
}

func TestSESFreeTier(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: SESMessages, Quantity: 15_000}) // email at 500/day
	b := Compute(book, m)
	if got := b.Line(SESMessages).Cost; got != 0 {
		t.Fatalf("15k SES messages cost %v, want $0.00", got)
	}
}

func TestS3RequestPricing(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: S3PutRequests, Quantity: 10_000})
	m.Add(Usage{Kind: S3GetRequests, Quantity: 100_000})
	b := Compute(book, m)
	if got := b.Line(S3PutRequests).Cost; got != FromDollars(0.05) {
		t.Fatalf("10k PUTs %v, want $0.05", got)
	}
	if got := b.Line(S3GetRequests).Cost; got != FromDollars(0.04) {
		t.Fatalf("100k GETs %v, want $0.04", got)
	}
}

func TestEC2PerTypeLines(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: EC2Seconds, Quantity: 3600, Resource: "t2.medium"})
	m.Add(Usage{Kind: EC2Seconds, Quantity: 7200, Resource: "t2.nano"})
	b := Compute(book, m)
	var medium, nano Money
	for _, l := range b.Lines {
		switch l.Detail {
		case "t2.medium instance-hours":
			medium = l.Cost
		case "t2.nano instance-hours":
			nano = l.Cost
		}
	}
	if medium != FromDollars(0.0464) {
		t.Errorf("1h t2.medium = %v, want $0.0464", medium)
	}
	if nano != FromDollars(0.0118) {
		t.Errorf("2h t2.nano = %v, want $0.0118", nano)
	}
}

func TestBillString(t *testing.T) {
	book := Default2017()
	m := NewMeter()
	m.Add(Usage{Kind: S3StorageGBMo, Quantity: 5})
	s := Compute(book, m).String()
	if !strings.Contains(s, "s3 storage GB-months") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("bill rendering missing expected rows:\n%s", s)
	}
}

func TestHourLongHDCallClaim(t *testing.T) {
	// Paper §6.1/§9: "a single hour-long HD call will cost roughly
	// $0.11": one t2.medium hour plus ~0.7 GB billed outbound relay
	// traffic (half of the 3 Mbps call bandwidth, no free tier left).
	book := Default2017()
	compute := book.EC2Hourly("t2.medium")
	transfer := book.TransferOutPerGB.MulFloat(0.7)
	got := (compute + transfer).RoundCents()
	if got != FromDollars(0.11) {
		t.Fatalf("hour-long HD call = %v, want $0.11", got)
	}
}

func TestWithoutFreeTiers(t *testing.T) {
	book := Default2017().WithoutFreeTiers()
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 1000})
	m.Add(Usage{Kind: SQSRequests, Quantity: 1000})
	m.Add(Usage{Kind: TransferOutGB, Quantity: 0.5})
	b := Compute(book, m)
	// Everything is billable with no allowances.
	for _, l := range b.Lines {
		if l.Billable != l.Quantity {
			t.Errorf("%s: billable %v != quantity %v", l.Detail, l.Billable, l.Quantity)
		}
	}
	if b.Total() <= 0 {
		t.Fatal("list price of nonzero usage is zero")
	}
	// The original book is untouched.
	if Default2017().LambdaFreeRequests != 1_000_000 {
		t.Fatal("WithoutFreeTiers mutated the source book")
	}
}
