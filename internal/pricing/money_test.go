package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDollarsRoundTrip(t *testing.T) {
	tests := []struct {
		in   float64
		want Money
	}{
		{0, 0},
		{1, Dollar},
		{0.26, 26 * Cent},
		{0.00001667, 16670 * Micro / 1000}, // 16,670 nanodollars
		{4.58, 4*Dollar + 58*Cent},
		{-1.5, -(Dollar + 50*Cent)},
	}
	for _, tt := range tests {
		if got := FromDollars(tt.in); got != tt.want {
			t.Errorf("FromDollars(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMoneyString(t *testing.T) {
	tests := []struct {
		in   Money
		want string
	}{
		{FromDollars(4.58), "$4.58"},
		{FromDollars(0.26), "$0.26"},
		{FromDollars(0.005), "$0.01"},  // rounds up at half-cent
		{FromDollars(0.0049), "$0.00"}, // rounds down below half-cent
		{FromDollars(-1.25), "-$1.25"},
		{0, "$0.00"},
		{FromDollars(123.456), "$123.46"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestMulFloat(t *testing.T) {
	perGBs := FromDollars(0.00001667)
	// The paper's chat service: 60k requests × 0.5 s × 0.125 GB = 3750 GB-s.
	got := perGBs.MulFloat(3750)
	want := FromDollars(0.0625125)
	if got != want {
		t.Fatalf("3750 GB-s = %d (%v), want %d (%v)", got, got, want, want)
	}
	if perGBs.MulFloat(0) != 0 {
		t.Fatal("MulFloat(0) must be 0")
	}
}

func TestRoundCentsProperty(t *testing.T) {
	// Property: rounding to cents never moves an amount by more than
	// half a cent, and the result is always a whole number of cents.
	f := func(n int64) bool {
		m := Money(n)
		r := m.RoundCents()
		if r%Cent != 0 {
			return false
		}
		diff := r - m
		if diff < 0 {
			diff = -diff
		}
		return diff <= Cent/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDollarsInverseProperty(t *testing.T) {
	// Property: FromDollars(m.Dollars()) == m for amounts that fit
	// float64's integer-exact range.
	f := func(n int32) bool {
		m := Money(n) * Micro
		return FromDollars(m.Dollars()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDollars(t *testing.T) {
	if d := FromDollars(0.14).Dollars(); math.Abs(d-0.14) > 1e-12 {
		t.Fatalf("Dollars() = %v, want 0.14", d)
	}
}
