package pricing

import "time"

// MonthHours is the billing month length used throughout the cost
// analysis. The paper's Table 1 compute row ($4.32 for a t2.nano)
// corresponds to 732 hours at $0.0059/hour — the AWS Simple Monthly
// Calculator's convention of 30.5 days.
const MonthHours = 732

// Month is the simulated billing month as a duration.
const Month = MonthHours * time.Hour

// BillingQuantum is Lambda's execution-time billing increment: "Execution
// time is measured in increments of 100ms."
const BillingQuantum = 100 * time.Millisecond

// PriceBook holds the unit prices and free-tier allowances of every
// simulated service. All values default to mid-2017 AWS list prices,
// the ones the paper's analysis uses.
type PriceBook struct {
	// Lambda: "$0.20 fee for every million requests and $0.00001667 for
	// every GB-second, with one million free requests and 400,000 free
	// GB-seconds each month."
	LambdaPerMillionRequests Money
	LambdaPerGBSecond        Money
	LambdaFreeRequests       float64
	LambdaFreeGBSeconds      float64

	// S3 object storage.
	S3StoragePerGBMonth Money
	S3PerThousandPUT    Money
	S3PerThousandGET    Money

	// Internet data transfer out of the cloud. The first
	// TransferFreeGB each month are free (2017 AWS account-wide tier).
	TransferOutPerGB Money
	TransferFreeGB   float64

	// SQS: "one million free requests per month and charges $0.40 for
	// every million requests thereafter."
	SQSPerMillionRequests Money
	SQSFreeRequests       float64

	// KMS: per-request price beyond the free allowance, plus the
	// monthly charge for each customer-managed master key (apps using
	// the provider-managed default key avoid it).
	KMSPerTenThousandRequests Money
	KMSFreeRequests           float64
	KMSPerCustomerKeyMonth    Money

	// SES email sending; the free allowance covers mail sent from
	// Lambda or EC2.
	SESPerThousandMessages Money
	SESFreeMessages        float64

	// DynamoDB consumed capacity, priced per million units at the
	// fully utilized provisioned-capacity equivalent ($0.00065/WCU-h,
	// $0.00013/RCU-h in 2017); the always-free 25 provisioned units
	// translate to the monthly free unit allowances below.
	DynamoPerMillionWCU Money
	DynamoPerMillionRCU Money
	DynamoFreeWCU       float64
	DynamoFreeRCU       float64

	// EC2 on-demand hourly prices by instance type, billed per second.
	EC2HourlyByType map[string]Money

	// CloudWatch: custom metrics at $0.30 per metric per month and
	// alarms at $0.10 per alarm per month (2017 list), with the first
	// ten of each free every month. The DIY operator's self-hosted
	// monitoring (the plane interceptor's RED+cost series) bills here.
	CWPerMetricMonth Money
	CWPerAlarmMonth  Money
	CWFreeMetrics    float64
	CWFreeAlarms     float64

	// CloudWatch Logs: $0.50 per GB ingested and $0.03 per GB-month
	// stored (2017 list), with 5 GB of each free every month. The log
	// plane's evidence trail (plane events, Lambda REPORT lines, the
	// KMS audit group) bills here.
	CWLogsIngestPerGB       Money
	CWLogsStoragePerGBMonth Money
	CWLogsFreeIngestGB      float64
	CWLogsFreeStorageGB     float64

	// X-Ray: $5.00 per million traces recorded and $0.50 per million
	// traces retrieved or scanned (2017 list), with 100,000 recorded
	// and 1,000,000 scanned traces free every month. The trace store's
	// sampled request chains bill here.
	XRayPerMillionRecorded Money
	XRayPerMillionScanned  Money
	XRayFreeRecorded       float64
	XRayFreeScanned        float64
}

// Default2017 returns the mid-2017 AWS us-west-2 list prices.
func Default2017() *PriceBook {
	return &PriceBook{
		LambdaPerMillionRequests: FromDollars(0.20),
		LambdaPerGBSecond:        FromDollars(0.00001667),
		LambdaFreeRequests:       1_000_000,
		LambdaFreeGBSeconds:      400_000,

		S3StoragePerGBMonth: FromDollars(0.023),
		S3PerThousandPUT:    FromDollars(0.005),
		S3PerThousandGET:    FromDollars(0.0004),

		TransferOutPerGB: FromDollars(0.09),
		TransferFreeGB:   1,

		SQSPerMillionRequests: FromDollars(0.40),
		SQSFreeRequests:       1_000_000,

		KMSPerTenThousandRequests: FromDollars(0.03),
		KMSFreeRequests:           20_000,
		KMSPerCustomerKeyMonth:    FromDollars(1.00),

		SESPerThousandMessages: FromDollars(0.10),
		SESFreeMessages:        62_000,

		DynamoPerMillionWCU: FromDollars(0.1806), // $0.00065/h ÷ 3600 × 1e6
		DynamoPerMillionRCU: FromDollars(0.0361), // $0.00013/h ÷ 3600 × 1e6
		DynamoFreeWCU:       25 * MonthHours * 3600,
		DynamoFreeRCU:       25 * MonthHours * 3600,

		EC2HourlyByType: map[string]Money{
			"t2.nano":   FromDollars(0.0059),
			"t2.micro":  FromDollars(0.012),
			"t2.small":  FromDollars(0.023),
			"t2.medium": FromDollars(0.0464),
			"t2.large":  FromDollars(0.0928),
		},

		CWPerMetricMonth: FromDollars(0.30),
		CWPerAlarmMonth:  FromDollars(0.10),
		CWFreeMetrics:    10,
		CWFreeAlarms:     10,

		CWLogsIngestPerGB:       FromDollars(0.50),
		CWLogsStoragePerGBMonth: FromDollars(0.03),
		CWLogsFreeIngestGB:      5,
		CWLogsFreeStorageGB:     5,

		XRayPerMillionRecorded: FromDollars(5.00),
		XRayPerMillionScanned:  FromDollars(0.50),
		XRayFreeRecorded:       100_000,
		XRayFreeScanned:        1_000_000,
	}
}

// WithoutFreeTiers returns a copy of the book with every free
// allowance removed — the list price of usage, used for per-app cost
// attribution (free tiers apply account-wide, not per app).
func (b *PriceBook) WithoutFreeTiers() *PriceBook {
	cp := *b
	cp.LambdaFreeRequests = 0
	cp.LambdaFreeGBSeconds = 0
	cp.TransferFreeGB = 0
	cp.SQSFreeRequests = 0
	cp.KMSFreeRequests = 0
	cp.SESFreeMessages = 0
	cp.DynamoFreeWCU = 0
	cp.DynamoFreeRCU = 0
	cp.CWFreeMetrics = 0
	cp.CWFreeAlarms = 0
	cp.CWLogsFreeIngestGB = 0
	cp.CWLogsFreeStorageGB = 0
	cp.XRayFreeRecorded = 0
	cp.XRayFreeScanned = 0
	return &cp
}

// EC2Hourly reports the hourly price for an instance type, or zero if
// the type is unknown.
func (b *PriceBook) EC2Hourly(instanceType string) Money {
	return b.EC2HourlyByType[instanceType]
}

// ListPrice prices one usage record at the book's list price,
// ignoring free-tier allowances — the marginal-cost view used for
// per-span cost attribution in traces (free tiers apply account-wide,
// never to an individual request). Unknown kinds price at zero.
func (b *PriceBook) ListPrice(u Usage) Money {
	switch u.Kind {
	case LambdaRequests:
		return b.LambdaPerMillionRequests.MulFloat(u.Quantity / 1e6)
	case LambdaGBSeconds:
		return b.LambdaPerGBSecond.MulFloat(u.Quantity)
	case S3StorageGBMo:
		return b.S3StoragePerGBMonth.MulFloat(u.Quantity)
	case S3PutRequests:
		return b.S3PerThousandPUT.MulFloat(u.Quantity / 1e3)
	case S3GetRequests:
		return b.S3PerThousandGET.MulFloat(u.Quantity / 1e3)
	case TransferOutGB:
		return b.TransferOutPerGB.MulFloat(u.Quantity)
	case SQSRequests:
		return b.SQSPerMillionRequests.MulFloat(u.Quantity / 1e6)
	case KMSRequests:
		return b.KMSPerTenThousandRequests.MulFloat(u.Quantity / 1e4)
	case KMSCustomerKeys:
		return b.KMSPerCustomerKeyMonth.MulFloat(u.Quantity)
	case SESMessages:
		return b.SESPerThousandMessages.MulFloat(u.Quantity / 1e3)
	case DynamoWCU:
		return b.DynamoPerMillionWCU.MulFloat(u.Quantity / 1e6)
	case DynamoRCU:
		return b.DynamoPerMillionRCU.MulFloat(u.Quantity / 1e6)
	case EC2Seconds:
		return b.EC2Hourly(u.Resource).MulFloat(u.Quantity / 3600)
	case CWMetricMonths:
		return b.CWPerMetricMonth.MulFloat(u.Quantity)
	case CWAlarmMonths:
		return b.CWPerAlarmMonth.MulFloat(u.Quantity)
	case CWLogsIngestGB:
		return b.CWLogsIngestPerGB.MulFloat(u.Quantity)
	case CWLogsStorageGBMo:
		return b.CWLogsStoragePerGBMonth.MulFloat(u.Quantity)
	case XRayTracesRecorded:
		return b.XRayPerMillionRecorded.MulFloat(u.Quantity / 1e6)
	case XRayTracesScanned:
		return b.XRayPerMillionScanned.MulFloat(u.Quantity / 1e6)
	}
	return 0
}
