package pricing

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterTotals(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 10, App: "chat"})
	m.Add(Usage{Kind: LambdaRequests, Quantity: 5, App: "email"})
	m.Add(Usage{Kind: SQSRequests, Quantity: 7, App: "chat"})
	if got := m.Total(LambdaRequests); got != 15 {
		t.Fatalf("Total = %v, want 15", got)
	}
	if got := m.TotalFor(LambdaRequests, "chat"); got != 10 {
		t.Fatalf("TotalFor(chat) = %v, want 10", got)
	}
	if got := m.TotalFor(LambdaRequests, "absent"); got != 0 {
		t.Fatalf("TotalFor(absent) = %v, want 0", got)
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 0})
	m.Add(Usage{Kind: LambdaRequests, Quantity: -5})
	if m.Records() != 0 || m.Total(LambdaRequests) != 0 {
		t.Fatal("non-positive quantities must be ignored")
	}
}

func TestMeterByResource(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: EC2Seconds, Quantity: 100, Resource: "t2.nano"})
	m.Add(Usage{Kind: EC2Seconds, Quantity: 50, Resource: "t2.nano"})
	m.Add(Usage{Kind: EC2Seconds, Quantity: 30, Resource: "t2.medium"})
	by := m.ByResource(EC2Seconds)
	if by["t2.nano"] != 150 || by["t2.medium"] != 30 {
		t.Fatalf("ByResource = %v", by)
	}
}

func TestMeterApps(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 1, App: "zeta"})
	m.Add(Usage{Kind: LambdaRequests, Quantity: 1, App: "alpha"})
	m.Add(Usage{Kind: LambdaRequests, Quantity: 1}) // unattributed
	apps := m.Apps()
	if len(apps) != 2 || apps[0] != "alpha" || apps[1] != "zeta" {
		t.Fatalf("Apps() = %v, want [alpha zeta]", apps)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: LambdaRequests, Quantity: 1})
	m.Reset()
	if m.Total(LambdaRequests) != 0 || m.Records() != 0 {
		t.Fatal("Reset did not clear the meter")
	}
}

func TestMeterSnapshotSorted(t *testing.T) {
	m := NewMeter()
	m.Add(Usage{Kind: SQSRequests, Quantity: 1, App: "b"})
	m.Add(Usage{Kind: LambdaRequests, Quantity: 2, App: "a"})
	m.Add(Usage{Kind: LambdaRequests, Quantity: 3, App: "b"})
	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].Kind != LambdaRequests || snap[0].App != "a" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	const workers, adds = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < adds; j++ {
				m.Add(Usage{Kind: LambdaRequests, Quantity: 1})
			}
		}()
	}
	wg.Wait()
	if got := m.Total(LambdaRequests); got != workers*adds {
		t.Fatalf("concurrent total = %v, want %d", got, workers*adds)
	}
}

func TestMeterAdditivityProperty(t *testing.T) {
	// Property: metering quantities one at a time equals metering
	// their sum (for positive quantities).
	f := func(quantities []uint16) bool {
		a, b := NewMeter(), NewMeter()
		var sum float64
		for _, q := range quantities {
			v := float64(q) + 1 // strictly positive
			a.Add(Usage{Kind: TransferOutGB, Quantity: v})
			sum += v
		}
		b.Add(Usage{Kind: TransferOutGB, Quantity: sum})
		return math.Abs(a.Total(TransferOutGB)-b.Total(TransferOutGB)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeTierMonotonicProperty(t *testing.T) {
	// Property: a bill never decreases when usage increases.
	book := Default2017()
	f := func(r1, r2 uint32) bool {
		lo, hi := float64(r1%5_000_000), float64(r2%5_000_000)
		if lo > hi {
			lo, hi = hi, lo
		}
		ml, mh := NewMeter(), NewMeter()
		ml.Add(Usage{Kind: LambdaRequests, Quantity: lo})
		mh.Add(Usage{Kind: LambdaRequests, Quantity: hi})
		return Compute(book, mh).Total() >= Compute(book, ml).Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
