package pricing

import (
	"sort"
	"sync"
)

// Kind identifies a billable usage dimension.
type Kind string

// The usage dimensions metered by the simulated services.
const (
	LambdaRequests  Kind = "lambda-requests"   // count
	LambdaGBSeconds Kind = "lambda-gb-seconds" // GB-seconds
	S3StorageGBMo   Kind = "s3-storage-gb-mo"  // GB-months
	S3PutRequests   Kind = "s3-put-requests"   // count
	S3GetRequests   Kind = "s3-get-requests"   // count
	TransferOutGB   Kind = "transfer-out-gb"   // GB
	SQSRequests     Kind = "sqs-requests"      // count
	KMSRequests     Kind = "kms-requests"      // count
	KMSCustomerKeys Kind = "kms-customer-keys" // key-months
	SESMessages     Kind = "ses-messages"      // count
	EC2Seconds      Kind = "ec2-seconds"       // seconds (Resource = instance type)
	DynamoWCU       Kind = "dynamo-wcu"        // consumed write capacity units
	DynamoRCU       Kind = "dynamo-rcu"        // consumed read capacity units
	CWMetricMonths  Kind = "cw-metric-months"  // custom-metric months (CloudWatch)
	CWAlarmMonths   Kind = "cw-alarm-months"   // alarm-months (CloudWatch)

	CWLogsIngestGB    Kind = "cw-logs-ingest-gb"     // GB ingested (CloudWatch Logs)
	CWLogsStorageGBMo Kind = "cw-logs-storage-gb-mo" // GB-months stored (CloudWatch Logs)

	XRayTracesRecorded Kind = "xray-traces-recorded" // traces recorded (X-Ray)
	XRayTracesScanned  Kind = "xray-traces-scanned"  // traces retrieved/scanned (X-Ray)
)

// Usage is one metered quantity.
type Usage struct {
	Kind Kind
	// Quantity in the kind's unit (counts, GB, GB-seconds, ...).
	Quantity float64
	// Resource is a kind-specific dimension, e.g. the EC2 instance
	// type, whose unit price differs per resource.
	Resource string
	// App attributes the usage to a deployed application, feeding the
	// app store's per-app resource report.
	App string
}

// Meter accumulates usage records. It is safe for concurrent use.
// The zero value is not ready; construct with NewMeter.
type Meter struct {
	mu      sync.Mutex
	byKey   map[meterKey]float64
	records int
}

type meterKey struct {
	kind     Kind
	resource string
	app      string
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{byKey: make(map[meterKey]float64)}
}

// Add records a usage quantity. Zero and negative quantities are
// ignored: services only ever consume.
func (m *Meter) Add(u Usage) {
	if u.Quantity <= 0 {
		return
	}
	m.mu.Lock()
	m.byKey[meterKey{u.Kind, u.Resource, u.App}] += u.Quantity
	m.records++
	m.mu.Unlock()
}

// Total reports the summed quantity for a kind across all resources and
// apps.
func (m *Meter) Total(k Kind) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for key, q := range m.byKey {
		if key.kind == k {
			sum += q
		}
	}
	return sum
}

// TotalFor reports the summed quantity for a kind attributed to one app.
func (m *Meter) TotalFor(k Kind, app string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for key, q := range m.byKey {
		if key.kind == k && key.app == app {
			sum += q
		}
	}
	return sum
}

// ByResource reports the per-resource quantities for a kind (e.g.
// EC2 seconds per instance type).
func (m *Meter) ByResource(k Kind) map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64)
	for key, q := range m.byKey {
		if key.kind == k {
			out[key.resource] += q
		}
	}
	return out
}

// Apps reports the distinct app labels seen, sorted.
func (m *Meter) Apps() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	for key := range m.byKey {
		if key.app != "" {
			seen[key.app] = true
		}
	}
	apps := make([]string, 0, len(seen))
	for a := range seen {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	return apps
}

// Records reports how many Add calls were recorded, for test assertions.
func (m *Meter) Records() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.records
}

// Reset clears all accumulated usage (a new billing month).
func (m *Meter) Reset() {
	m.mu.Lock()
	m.byKey = make(map[meterKey]float64)
	m.records = 0
	m.mu.Unlock()
}

// Snapshot returns a copy of the per-(kind,resource,app) quantities,
// for migration of usage reports between clouds and for tests.
func (m *Meter) Snapshot() []Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Usage, 0, len(m.byKey))
	for key, q := range m.byKey {
		out = append(out, Usage{Kind: key.kind, Quantity: q, Resource: key.resource, App: key.app})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.App < b.App
	})
	return out
}
