// Package attest simulates the hardware-enclave attestation the paper
// sketches for hardening DIY (§3.3 "Securing DIY with Enclaves"): "A
// serverless platform with enclave support could load the function into
// an enclave, perform its attestation, and then execute it in a manner
// that the client can verify."
//
// The simulation keeps the protocol shape of SGX remote attestation —
// a measurement (hash of the loaded code), a client nonce for
// freshness, and a quote signed by a platform key — while replacing
// the hardware root of trust with an Ed25519 keypair.
package attest

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Errors returned by verification.
var (
	ErrBadSignature = errors.New("attest: quote signature invalid")
	ErrMeasurement  = errors.New("attest: measurement mismatch (code was tampered)")
	ErrNonce        = errors.New("attest: nonce mismatch (quote replayed)")
)

// Quote is a signed attestation statement: "this platform loaded code
// with this measurement, in response to this nonce".
type Quote struct {
	Measurement [32]byte
	Nonce       []byte
	// ReportData is optional caller-bound data (e.g. the function's
	// TLS key hash) included under the signature.
	ReportData []byte
	Signature  []byte
}

// Platform is a simulated enclave-capable host with a hardware-fused
// attestation key.
type Platform struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewPlatform generates a platform with a fresh attestation key.
func NewPlatform() (*Platform, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: generating platform key: %w", err)
	}
	return &Platform{priv: priv, pub: pub}, nil
}

// PublicKey returns the platform's attestation verification key, which
// clients obtain out of band (the analog of Intel's attestation
// service roots).
func (p *Platform) PublicKey() ed25519.PublicKey { return p.pub }

// Attest measures the loaded code and signs a quote over
// (measurement, nonce, reportData).
func (p *Platform) Attest(code, nonce, reportData []byte) Quote {
	q := Quote{
		Measurement: sha256.Sum256(code),
		Nonce:       append([]byte(nil), nonce...),
		ReportData:  append([]byte(nil), reportData...),
	}
	q.Signature = ed25519.Sign(p.priv, quoteDigest(q))
	return q
}

// Verify checks a quote against the platform public key, the expected
// code measurement, and the nonce the client chose. On success the
// client knows the platform faithfully loaded the expected code for
// this session.
func Verify(pub ed25519.PublicKey, q Quote, expectedMeasurement [32]byte, nonce []byte) error {
	if !ed25519.Verify(pub, quoteDigest(q), q.Signature) {
		return ErrBadSignature
	}
	if q.Measurement != expectedMeasurement {
		return ErrMeasurement
	}
	if string(q.Nonce) != string(nonce) {
		return ErrNonce
	}
	return nil
}

// Measure returns the measurement a verifier expects for given code.
func Measure(code []byte) [32]byte { return sha256.Sum256(code) }

// quoteDigest canonically serializes the signed portion of a quote.
func quoteDigest(q Quote) []byte {
	h := sha256.New()
	h.Write(q.Measurement[:])
	var lenBuf [8]byte
	writeLen := func(n int) {
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
	}
	writeLen(len(q.Nonce))
	h.Write(q.Nonce)
	writeLen(len(q.ReportData))
	h.Write(q.ReportData)
	return h.Sum(nil)
}
