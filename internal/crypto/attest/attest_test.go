package attest

import (
	"errors"
	"testing"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAttestVerify(t *testing.T) {
	p := newPlatform(t)
	code := []byte("function deployment package v1")
	nonce := []byte("client-nonce-123")
	q := p.Attest(code, nonce, []byte("session-binding"))
	if err := Verify(p.PublicKey(), q, Measure(code), nonce); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestTamperedCodeFailsMeasurement(t *testing.T) {
	// The invariant from DESIGN.md: a tampered function image fails
	// quote verification.
	p := newPlatform(t)
	good := []byte("trusted code")
	evil := []byte("trusted code + backdoor")
	nonce := []byte("n")
	q := p.Attest(evil, nonce, nil)
	if err := Verify(p.PublicKey(), q, Measure(good), nonce); !errors.Is(err, ErrMeasurement) {
		t.Fatalf("got %v, want ErrMeasurement", err)
	}
}

func TestReplayedNonceRejected(t *testing.T) {
	p := newPlatform(t)
	code := []byte("code")
	q := p.Attest(code, []byte("old-nonce"), nil)
	if err := Verify(p.PublicKey(), q, Measure(code), []byte("fresh-nonce")); !errors.Is(err, ErrNonce) {
		t.Fatalf("got %v, want ErrNonce", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	p := newPlatform(t)
	other := newPlatform(t)
	code := []byte("code")
	nonce := []byte("n")
	q := other.Attest(code, nonce, nil) // signed by the wrong platform
	if err := Verify(p.PublicKey(), q, Measure(code), nonce); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestMutatedQuoteFieldsRejected(t *testing.T) {
	p := newPlatform(t)
	code := []byte("code")
	nonce := []byte("n")

	q := p.Attest(code, nonce, []byte("rd"))
	q.ReportData = []byte("rewritten")
	if err := Verify(p.PublicKey(), q, Measure(code), nonce); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("mutated report data: got %v, want ErrBadSignature", err)
	}

	q2 := p.Attest(code, nonce, nil)
	q2.Measurement[0] ^= 0xff
	if err := Verify(p.PublicKey(), q2, Measure(code), nonce); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("mutated measurement: got %v, want ErrBadSignature", err)
	}

	q3 := p.Attest(code, nonce, nil)
	q3.Signature[0] ^= 0xff
	if err := Verify(p.PublicKey(), q3, Measure(code), nonce); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("mutated signature: got %v, want ErrBadSignature", err)
	}
}

func TestLengthConfusionResisted(t *testing.T) {
	// The digest must bind field boundaries: moving a byte between
	// nonce and report data must not produce the same digest.
	p := newPlatform(t)
	code := []byte("code")
	q := p.Attest(code, []byte("ab"), []byte("c"))
	forged := Quote{
		Measurement: q.Measurement,
		Nonce:       []byte("a"),
		ReportData:  []byte("bc"),
		Signature:   q.Signature,
	}
	if err := Verify(p.PublicKey(), forged, Measure(code), []byte("a")); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("length confusion accepted: %v", err)
	}
}

func TestDistinctPlatformKeys(t *testing.T) {
	a, b := newPlatform(t), newPlatform(t)
	if string(a.PublicKey()) == string(b.PublicKey()) {
		t.Fatal("two platforms share a key")
	}
}
