// Package envelope implements the envelope encryption DIY applications
// apply to all data at rest: a per-object (or per-deployment) 256-bit
// data key encrypts the payload with AES-GCM, and the data key itself
// is stored only in wrapped form, encrypted by a KMS master key that
// never leaves the key management service.
//
// Sealed blobs carry a recognizable header so the enforcement layer in
// internal/core can verify that nothing written to cloud storage is
// plaintext (one of the paper's testable privacy invariants).
package envelope

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the data key length in bytes (AES-256).
const KeySize = 32

// magic prefixes every sealed blob: "DIY" plus a format version.
var magic = []byte{'D', 'I', 'Y', 1}

const nonceSize = 12

// Errors returned by this package.
var (
	ErrNotSealed  = errors.New("envelope: blob is not a sealed envelope")
	ErrBadKeySize = errors.New("envelope: data key must be 32 bytes")
	ErrCorrupt    = errors.New("envelope: ciphertext corrupt or wrong key")
)

// NewDataKey generates a fresh random data key.
func NewDataKey() ([]byte, error) {
	k := make([]byte, KeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("envelope: generating data key: %w", err)
	}
	return k, nil
}

// Seal encrypts plaintext under key with AES-256-GCM, binding the
// optional associated data aad (e.g. the object's storage path, so a
// ciphertext cannot be swapped between locations undetected). The
// returned blob is magic || nonce || ciphertext.
func Seal(key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, nonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("envelope: generating nonce: %w", err)
	}
	out := make([]byte, 0, len(magic)+nonceSize+len(plaintext)+aead.Overhead())
	out = append(out, magic...)
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, aad), nil
}

// Open decrypts a blob produced by Seal with the same key and aad.
func Open(key, blob, aad []byte) ([]byte, error) {
	if !IsSealed(blob) {
		return nil, ErrNotSealed
	}
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	body := blob[len(magic):]
	if len(body) < nonceSize+aead.Overhead() {
		return nil, ErrCorrupt
	}
	nonce, ct := body[:nonceSize], body[nonceSize:]
	pt, err := aead.Open(nil, nonce, ct, aad)
	if err != nil {
		return nil, ErrCorrupt
	}
	return pt, nil
}

// IsSealed reports whether the blob carries the sealed-envelope header.
// The core enforcement layer uses this to reject plaintext writes to
// cloud storage.
func IsSealed(blob []byte) bool {
	if len(blob) < len(magic) {
		return false
	}
	for i, b := range magic {
		if blob[i] != b {
			return false
		}
	}
	return true
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("envelope: %w", err)
	}
	return cipher.NewGCM(block)
}

// Envelope bundles a payload ciphertext with the wrapped (KMS-encrypted)
// data key that protects it, so an object is self-describing: anyone
// holding the blob learns nothing; anyone with kms:Decrypt on the master
// key can unwrap the data key and open the payload.
type Envelope struct {
	// WrappedKey is the data key encrypted by the KMS master key.
	WrappedKey []byte
	// Sealed is the Seal()-format payload ciphertext.
	Sealed []byte
}

// Encode serializes the envelope: magic || 'E' || len(wrapped) ||
// wrapped || sealed. The distinct tag byte keeps Encode output and raw
// Seal output mutually distinguishable while both pass IsSealed.
func (e *Envelope) Encode() []byte {
	out := make([]byte, 0, len(magic)+1+4+len(e.WrappedKey)+len(e.Sealed))
	out = append(out, magic...)
	out = append(out, 'E')
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(e.WrappedKey)))
	out = append(out, lenBuf[:]...)
	out = append(out, e.WrappedKey...)
	out = append(out, e.Sealed...)
	return out
}

// DecodeEnvelope parses a blob produced by Encode.
func DecodeEnvelope(blob []byte) (*Envelope, error) {
	if !IsSealed(blob) || len(blob) < len(magic)+5 || blob[len(magic)] != 'E' {
		return nil, ErrNotSealed
	}
	body := blob[len(magic)+1:]
	n := binary.BigEndian.Uint32(body[:4])
	body = body[4:]
	if uint32(len(body)) < n {
		return nil, ErrCorrupt
	}
	return &Envelope{
		WrappedKey: append([]byte(nil), body[:n]...),
		Sealed:     append([]byte(nil), body[n:]...),
	}, nil
}

// Zero overwrites a key (or any secret) in place. The lambda runtime
// calls this when a container is scrubbed so key material exists in
// memory only while a function executes.
func Zero(secret []byte) {
	for i := range secret {
		secret[i] = 0
	}
}
