package envelope

import "testing"

// FuzzOpen checks that arbitrary blobs never panic the opener and
// never decrypt successfully under a fresh key.
func FuzzOpen(f *testing.F) {
	key, err := NewDataKey()
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := Seal(key, []byte("seed plaintext"), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte("DIY\x01 garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, blob []byte) {
		fresh, err := NewDataKey()
		if err != nil {
			t.Skip()
		}
		if pt, err := Open(fresh, blob, nil); err == nil {
			t.Fatalf("random blob opened under a fresh key: %q", pt)
		}
	})
}

// FuzzDecodeEnvelope checks the container parser never panics.
func FuzzDecodeEnvelope(f *testing.F) {
	env := &Envelope{WrappedKey: []byte("wrapped"), Sealed: []byte("sealed")}
	f.Add(env.Encode())
	f.Add([]byte("DIY\x01E\x00\x00\xff\xff"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		e, err := DecodeEnvelope(blob)
		if err != nil {
			return
		}
		// Accepted envelopes re-encode to something decodable.
		if _, err := DecodeEnvelope(e.Encode()); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
