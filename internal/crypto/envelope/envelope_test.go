package envelope

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mustKey(t *testing.T) []byte {
	t.Helper()
	k, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := mustKey(t)
	pt := []byte("alice: hello bob, this chat log is private")
	aad := []byte("bucket/alice-chat/room1")
	blob, err := Seal(key, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, blob, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestSealedBlobIsNotPlaintext(t *testing.T) {
	// The paper's core privacy property: data at rest must be
	// ciphertext. The plaintext must not appear as a substring of the
	// sealed blob.
	key := mustKey(t)
	pt := []byte("extremely secret message body 1234567890")
	blob, err := Seal(key, pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, pt) {
		t.Fatal("plaintext leaked into sealed blob")
	}
	if !IsSealed(blob) {
		t.Fatal("sealed blob does not carry the envelope header")
	}
}

func TestOpenWrongKey(t *testing.T) {
	k1, k2 := mustKey(t), mustKey(t)
	blob, err := Seal(k1, []byte("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(k2, blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong key: got %v, want ErrCorrupt", err)
	}
}

func TestOpenWrongAAD(t *testing.T) {
	// Binding the storage path as AAD means a ciphertext moved to a
	// different path fails to open — swap attacks are detected.
	key := mustKey(t)
	blob, err := Seal(key, []byte("data"), []byte("path/a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, blob, []byte("path/b")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong aad: got %v, want ErrCorrupt", err)
	}
}

func TestOpenTamperedCiphertext(t *testing.T) {
	key := mustKey(t)
	blob, err := Seal(key, []byte("data that matters"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if _, err := Open(key, blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered: got %v, want ErrCorrupt", err)
	}
}

func TestOpenNotSealed(t *testing.T) {
	key := mustKey(t)
	if _, err := Open(key, []byte("plaintext junk"), nil); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("got %v, want ErrNotSealed", err)
	}
	if _, err := Open(key, nil, nil); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("nil blob: got %v, want ErrNotSealed", err)
	}
}

func TestOpenTruncated(t *testing.T) {
	key := mustKey(t)
	blob, err := Seal(key, []byte("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, blob[:6], nil); err == nil {
		t.Fatal("truncated blob opened")
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := Seal([]byte("short"), []byte("x"), nil); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("got %v, want ErrBadKeySize", err)
	}
	if _, err := Open([]byte("short"), append([]byte("DIY\x01"), make([]byte, 40)...), nil); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("got %v, want ErrBadKeySize", err)
	}
}

func TestNoncesUnique(t *testing.T) {
	key := mustKey(t)
	a, _ := Seal(key, []byte("x"), nil)
	b, _ := Seal(key, []byte("x"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext are identical: nonce reuse")
	}
}

func TestIsSealed(t *testing.T) {
	if IsSealed(nil) || IsSealed([]byte("DI")) || IsSealed([]byte("PLAINTEXT")) {
		t.Fatal("IsSealed false positives")
	}
	if !IsSealed([]byte{'D', 'I', 'Y', 1, 0, 0}) {
		t.Fatal("IsSealed false negative")
	}
}

func TestEnvelopeEncodeDecode(t *testing.T) {
	key := mustKey(t)
	sealed, err := Seal(key, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{WrappedKey: []byte("wrapped-by-kms"), Sealed: sealed}
	blob := env.Encode()
	if !IsSealed(blob) {
		t.Fatal("encoded envelope must pass IsSealed")
	}
	got, err := DecodeEnvelope(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.WrappedKey, env.WrappedKey) || !bytes.Equal(got.Sealed, env.Sealed) {
		t.Fatal("envelope round trip mismatch")
	}
	pt, err := Open(key, got.Sealed, nil)
	if err != nil || string(pt) != "payload" {
		t.Fatalf("payload open failed: %v %q", err, pt)
	}
}

func TestDecodeEnvelopeRejectsRawSeal(t *testing.T) {
	key := mustKey(t)
	sealed, _ := Seal(key, []byte("x"), nil)
	if _, err := DecodeEnvelope(sealed); err == nil {
		t.Fatal("raw Seal output decoded as an Envelope")
	}
}

func TestDecodeEnvelopeCorruptLength(t *testing.T) {
	env := &Envelope{WrappedKey: bytes.Repeat([]byte{1}, 16), Sealed: []byte("s")}
	blob := env.Encode()
	// Inflate the declared wrapped-key length past the body.
	blob[len(magic)+1] = 0xff
	if _, err := DecodeEnvelope(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestZero(t *testing.T) {
	k := mustKey(t)
	Zero(k)
	for _, b := range k {
		if b != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

func TestSealOpenProperty(t *testing.T) {
	// Property: any payload round-trips under any aad.
	key := mustKey(t)
	f := func(pt, aad []byte) bool {
		blob, err := Seal(key, pt, aad)
		if err != nil {
			return false
		}
		got, err := Open(key, blob, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(wrapped, sealedBody []byte) bool {
		env := &Envelope{WrappedKey: wrapped, Sealed: sealedBody}
		got, err := DecodeEnvelope(env.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(got.WrappedKey, wrapped) && bytes.Equal(got.Sealed, sealedBody)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
