// Package sealedbox implements the PGP-style asymmetric encryption the
// paper names for inbound mail ("use Lambda as a hook to encrypt email
// (e.g., using PGP encryption) before storing it"): anyone holding the
// recipient's public key can seal; only the private key — which lives
// on the user's devices and never in the cloud — can open.
//
// Sealing mail to the user's public key strengthens the deployment
// beyond the paper's baseline threat model: for message *contents*,
// even KMS leaves the trusted computing base, because the data key in
// KMS protects only the mailbox index, not the bodies.
//
// Construction (stdlib-only): ephemeral X25519 → shared secret →
// SHA-256(shared || ephemeralPub || recipientPub) as an AES-256-GCM
// key. Blobs carry the same 4-byte "DIY" magic as envelope ciphertext
// (tag 'P'), so they satisfy the sealed-writes bucket policy.
package sealedbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// magic matches internal/crypto/envelope's sealed header (first four
// bytes) with a distinct 'P' tag for public-key blobs.
var magic = []byte{'D', 'I', 'Y', 1, 'P'}

const (
	keySize   = 32
	nonceSize = 12
)

// Errors returned by this package.
var (
	ErrNotSealedBox = errors.New("sealedbox: blob is not a sealed box")
	ErrCorrupt      = errors.New("sealedbox: ciphertext corrupt or wrong key")
)

// PublicKey is an X25519 public key.
type PublicKey struct{ k *ecdh.PublicKey }

// PrivateKey is an X25519 private key; it belongs on the user's
// devices, never in cloud storage or function config.
type PrivateKey struct{ k *ecdh.PrivateKey }

// GenerateKeys returns a fresh recipient keypair.
func GenerateKeys() (PublicKey, PrivateKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return PublicKey{}, PrivateKey{}, fmt.Errorf("sealedbox: generating keys: %w", err)
	}
	return PublicKey{k: priv.PublicKey()}, PrivateKey{k: priv}, nil
}

// Bytes exports the public key for distribution.
func (p PublicKey) Bytes() []byte { return p.k.Bytes() }

// ParsePublicKey imports a distributed public key.
func ParsePublicKey(b []byte) (PublicKey, error) {
	k, err := ecdh.X25519().NewPublicKey(b)
	if err != nil {
		return PublicKey{}, fmt.Errorf("sealedbox: parsing public key: %w", err)
	}
	return PublicKey{k: k}, nil
}

// Public returns the private key's public half.
func (p PrivateKey) Public() PublicKey { return PublicKey{k: p.k.PublicKey()} }

// Seal encrypts plaintext to the recipient. The sender is anonymous:
// only an ephemeral key is transmitted.
func Seal(to PublicKey, plaintext, aad []byte) ([]byte, error) {
	if to.k == nil {
		return nil, errors.New("sealedbox: nil recipient key")
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sealedbox: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(to.k)
	if err != nil {
		return nil, fmt.Errorf("sealedbox: ecdh: %w", err)
	}
	aead, err := newAEAD(deriveKey(shared, eph.PublicKey().Bytes(), to.k.Bytes()))
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, nonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sealedbox: nonce: %w", err)
	}
	out := make([]byte, 0, len(magic)+keySize+nonceSize+len(plaintext)+aead.Overhead())
	out = append(out, magic...)
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, aad), nil
}

// Open decrypts a sealed box with the recipient's private key.
func Open(priv PrivateKey, blob, aad []byte) ([]byte, error) {
	if !IsSealedBox(blob) {
		return nil, ErrNotSealedBox
	}
	if priv.k == nil {
		return nil, errors.New("sealedbox: nil private key")
	}
	body := blob[len(magic):]
	if len(body) < keySize+nonceSize+16 {
		return nil, ErrCorrupt
	}
	ephPub, err := ecdh.X25519().NewPublicKey(body[:keySize])
	if err != nil {
		return nil, ErrCorrupt
	}
	shared, err := priv.k.ECDH(ephPub)
	if err != nil {
		return nil, ErrCorrupt
	}
	aead, err := newAEAD(deriveKey(shared, ephPub.Bytes(), priv.k.PublicKey().Bytes()))
	if err != nil {
		return nil, err
	}
	nonce := body[keySize : keySize+nonceSize]
	pt, err := aead.Open(nil, nonce, body[keySize+nonceSize:], aad)
	if err != nil {
		return nil, ErrCorrupt
	}
	return pt, nil
}

// IsSealedBox reports whether a blob carries the sealed-box header.
func IsSealedBox(blob []byte) bool {
	if len(blob) < len(magic) {
		return false
	}
	for i, b := range magic {
		if blob[i] != b {
			return false
		}
	}
	return true
}

func deriveKey(shared, ephPub, rcptPub []byte) []byte {
	h := sha256.New()
	h.Write(shared)
	h.Write(ephPub)
	h.Write(rcptPub)
	return h.Sum(nil)
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sealedbox: %w", err)
	}
	return cipher.NewGCM(block)
}
