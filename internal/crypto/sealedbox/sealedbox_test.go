package sealedbox

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/crypto/envelope"
)

func keys(t *testing.T) (PublicKey, PrivateKey) {
	t.Helper()
	pub, priv, err := GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestSealOpenRoundTrip(t *testing.T) {
	pub, priv := keys(t)
	pt := []byte("Subject: secret\r\n\r\nonly the private key reads this\r\n")
	blob, err := Seal(pub, pt, []byte("mail/000001"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(priv, blob, []byte("mail/000001"))
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("round trip: %v %q", err, got)
	}
	if bytes.Contains(blob, pt) {
		t.Fatal("plaintext leaked into blob")
	}
}

func TestWrongRecipientCannotOpen(t *testing.T) {
	pub, _ := keys(t)
	_, otherPriv := keys(t)
	blob, err := Seal(pub, []byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(otherPriv, blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong key opened: %v", err)
	}
}

func TestWrongAADRejected(t *testing.T) {
	pub, priv := keys(t)
	blob, _ := Seal(pub, []byte("x"), []byte("path/a"))
	if _, err := Open(priv, blob, []byte("path/b")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong aad opened: %v", err)
	}
}

func TestTamperRejected(t *testing.T) {
	pub, priv := keys(t)
	blob, _ := Seal(pub, []byte("data"), nil)
	blob[len(blob)-1] ^= 0xff
	if _, err := Open(priv, blob, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered blob opened: %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	_, priv := keys(t)
	if _, err := Open(priv, []byte("not a box"), nil); !errors.Is(err, ErrNotSealedBox) {
		t.Fatalf("got %v", err)
	}
	if _, err := Open(priv, append([]byte("DIY\x01P"), 1, 2, 3), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestSatisfiesSealedWritesPolicy(t *testing.T) {
	// Sealed boxes must pass the bucket policy's envelope.IsSealed
	// check (same magic, distinct tag), and raw envelope blobs must
	// not be mistaken for boxes.
	pub, _ := keys(t)
	blob, _ := Seal(pub, []byte("x"), nil)
	if !envelope.IsSealed(blob) {
		t.Fatal("sealed box fails the bucket policy")
	}
	key, _ := envelope.NewDataKey()
	env, _ := envelope.Seal(key, []byte("x"), nil)
	if IsSealedBox(env) {
		t.Fatal("envelope blob mistaken for a sealed box")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	pub, priv := keys(t)
	parsed, err := ParsePublicKey(pub.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Seal(parsed, []byte("via parsed key"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(priv, blob, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePublicKey([]byte("short")); err == nil {
		t.Fatal("bad public key parsed")
	}
	if priv.Public().k.Equal(pub.k) == false {
		t.Fatal("Public() mismatch")
	}
}

func TestSealRandomized(t *testing.T) {
	pub, _ := keys(t)
	a, _ := Seal(pub, []byte("same"), nil)
	b, _ := Seal(pub, []byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals identical: ephemeral key or nonce reuse")
	}
}

func TestRoundTripProperty(t *testing.T) {
	pub, priv := keys(t)
	f := func(pt, aad []byte) bool {
		blob, err := Seal(pub, pt, aad)
		if err != nil {
			return false
		}
		got, err := Open(priv, blob, aad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
