package sealedbox

import "testing"

// FuzzOpen checks arbitrary blobs never panic or decrypt.
func FuzzOpen(f *testing.F) {
	pub, priv, err := GenerateKeys()
	if err != nil {
		f.Fatal(err)
	}
	blob, err := Seal(pub, []byte("seed"), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("DIY\x01P short"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, freshPriv, err := GenerateKeys()
		if err != nil {
			t.Skip()
		}
		if pt, err := Open(freshPriv, data, nil); err == nil {
			t.Fatalf("random blob opened under a fresh key: %q", pt)
		}
		_, _ = Open(priv, data, nil) // must not panic either way
	})
}
