package core

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cloudsim/dynamo"
	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/kms"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/s3"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/sqs"
	"repro/internal/cloudsim/trace"
	"repro/internal/crypto/attest"
	"repro/internal/crypto/envelope"
)

// Deployment is one user's installation of one app on one cloud: the
// function, its trigger(s), its encrypted bucket, its KMS key, and the
// least-privilege roles binding them (paper Figure 1).
type Deployment struct {
	Cloud *Cloud
	User  string
	app   App
	// AppName survives deletion for labelling purposes.
	AppName string

	FnName     string
	Bucket     string
	Table      string // DynamoDB table name ("" when the app is S3-only)
	KeyID      string
	Role       string // the function's IAM role
	ClientRole string // the user's client-side principal
	Endpoint   string // gateway path ("" if none)
	Queues     map[string]string
	WrappedKey []byte
}

// ErrNotInstalled is returned for operations on a deleted deployment.
var ErrNotInstalled = errors.New("core: deployment not installed")

// Install provisions app for user on cloud. Everything is created
// fresh and scoped to this deployment: nothing grants access to any
// other user's resources.
func Install(cloud *Cloud, user string, app App) (*Deployment, error) {
	if user == "" || strings.ContainsAny(user, "/- ") {
		return nil, fmt.Errorf("core: invalid user name %q", user)
	}
	spec := app.Spec()
	d := &Deployment{
		Cloud:   cloud,
		User:    user,
		app:     app,
		AppName: app.Name(),
		FnName:  user + "-" + app.Name(),
		Bucket:  user + "-" + app.Name(),
		KeyID:   user + "-" + app.Name(),
		Role:    user + "-" + app.Name() + "-fn",
		Queues:  make(map[string]string),
	}
	d.ClientRole = user + "-" + app.Name() + "-client"

	// Storage: a bucket that refuses plaintext.
	if err := cloud.S3.CreateBucket(d.Bucket); err != nil {
		return nil, fmt.Errorf("core: installing %s for %s: %w", app.Name(), user, err)
	}
	if err := cloud.S3.SetRequireSealed(d.Bucket, true); err != nil {
		return nil, err
	}

	// Optional low-latency table with the same ciphertext-only policy.
	if spec.UseDynamo {
		d.Table = user + "-" + app.Name()
		if err := cloud.Dynamo.CreateTable(d.Table); err != nil {
			return nil, fmt.Errorf("core: installing %s for %s: %w", app.Name(), user, err)
		}
		if err := cloud.Dynamo.SetRequireSealed(d.Table, envelope.IsSealed); err != nil {
			return nil, err
		}
	}

	// Key: a per-deployment master key inside KMS.
	if err := cloud.KMS.CreateKey(d.KeyID, false); err != nil {
		return nil, fmt.Errorf("core: installing %s for %s: %w", app.Name(), user, err)
	}

	// Queues.
	for _, suffix := range spec.Queues {
		qname := user + "-" + app.Name() + "-" + suffix
		if err := cloud.SQS.CreateQueue(qname); err != nil {
			return nil, err
		}
		d.Queues[suffix] = qname
	}

	// Function role: least privilege over exactly this deployment's
	// resources.
	fnStatements := []iam.Statement{
		iam.AllowStatement(
			[]string{kms.ActionGenerateDataKey, kms.ActionDecrypt},
			[]string{kms.Resource(d.KeyID)},
		),
		iam.AllowStatement(
			[]string{"s3:*"},
			[]string{s3.BucketResource(d.Bucket), s3.BucketResource(d.Bucket) + "/*"},
		),
	}
	if d.Table != "" {
		fnStatements = append(fnStatements, iam.AllowStatement(
			[]string{"dynamodb:*"}, []string{dynamo.Resource(d.Table)},
		))
	}
	for _, qname := range d.Queues {
		fnStatements = append(fnStatements, iam.AllowStatement(
			[]string{"sqs:*"}, []string{sqs.Resource(qname)},
		))
	}
	if err := cloud.IAM.PutRole(&iam.Role{
		Name:     d.Role,
		Policies: []iam.Policy{{Name: "diy-least-privilege", Statements: fnStatements}},
	}); err != nil {
		return nil, err
	}

	// Client role: the user's own devices may poll the deployment's
	// queues and, if the app allows, read the bucket directly.
	clientStatements := []iam.Statement{}
	for _, qname := range d.Queues {
		clientStatements = append(clientStatements, iam.AllowStatement(
			[]string{sqs.ActionReceive, sqs.ActionDelete},
			[]string{sqs.Resource(qname)},
		))
	}
	if spec.ClientCanReadBucket {
		clientStatements = append(clientStatements, iam.AllowStatement(
			[]string{s3.ActionGet, s3.ActionList},
			[]string{s3.BucketResource(d.Bucket), s3.BucketResource(d.Bucket) + "/*"},
		))
	}
	if spec.ClientCanDecrypt {
		clientStatements = append(clientStatements, iam.AllowStatement(
			[]string{kms.ActionDecrypt},
			[]string{kms.Resource(d.KeyID)},
		))
	}
	if err := cloud.IAM.PutRole(&iam.Role{
		Name:     d.ClientRole,
		Policies: []iam.Policy{{Name: "diy-client", Statements: clientStatements}},
	}); err != nil {
		return nil, err
	}

	// Deployment data key, wrapped under the master key. Only the
	// wrapped form leaves this scope (it goes into the function
	// config, which the paper assumes is adversary-readable).
	adminCtx := &sim.Context{Principal: d.Role, App: app.Name(), Region: cloud.Region}
	plainKey, wrapped, err := cloud.KMS.GenerateDataKey(adminCtx, d.KeyID)
	if err != nil {
		return nil, fmt.Errorf("core: generating deployment key: %w", err)
	}
	envelope.Zero(plainKey)
	d.WrappedKey = wrapped

	// Function registration.
	config := map[string]string{
		ConfigBucket:     d.Bucket,
		ConfigTable:      d.Table,
		ConfigKeyID:      d.KeyID,
		ConfigWrappedKey: hex.EncodeToString(wrapped),
		ConfigUser:       user,
	}
	for suffix, qname := range d.Queues {
		config[ConfigQueuePref+suffix] = qname
	}
	code := spec.Code
	if len(code) == 0 {
		code = []byte("diy-app:" + app.Name() + ":v1")
	}
	err = cloud.Lambda.RegisterFunction(lambda.Function{
		Name:          d.FnName,
		Handler:       app.Handler(),
		MemoryMB:      spec.MemoryMB,
		Timeout:       spec.Timeout,
		Role:          d.Role,
		App:           app.Name(),
		Regions:       []string{cloud.Region, "us-east-1"},
		Code:          code,
		CacheDataKeys: spec.CacheDataKeys,
		Config:        config,
	})
	if err != nil {
		return nil, err
	}

	// HTTPS endpoint.
	if spec.Endpoint != "" {
		d.Endpoint = "/" + user + "/" + app.Name() + spec.Endpoint
		if err := cloud.Gateway.RegisterEndpoint(d.Endpoint, d.FnName, spec.Limit); err != nil {
			return nil, err
		}
	}

	// Inbound email triggers.
	for _, addr := range spec.InboundAddrs {
		addr = strings.ReplaceAll(addr, "%USER%", user)
		if err := cloud.SES.RegisterInbound(addr, d.FnName); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ClientContext returns a call context for the user's own device: the
// client principal, external to the cloud, on a fresh timeline starting
// at the cloud clock's current instant.
func (d *Deployment) ClientContext() *sim.Context {
	return &sim.Context{
		Principal: d.ClientRole,
		App:       d.AppName,
		Region:    d.Cloud.Region,
		Cursor:    sim.NewCursor(d.Cloud.Clock.Now()),
		External:  true,
	}
}

// TracedContext is ClientContext with a distributed trace attached:
// every service hop of the request records a span, and the finished
// trace lands in the cloud's trace store. The head-based sampling
// decision is taken here, before any span exists — an unsampled
// request returns a nil trace, and nil-safe spans make the untraced
// flow cost one pointer check per hop. The default store keeps every
// trace (and a cloud with tracing disabled still returns a live,
// unstored trace), so single-account callers always get one back.
// The caller finishes the trace when the flow completes (or defers
// the returned trace's Finish).
func (d *Deployment) TracedContext(name string) (*sim.Context, *trace.Trace) {
	ctx := d.ClientContext()
	if !d.Cloud.Tracer.Decide("client", name, ctx.Cursor.Now()) {
		return ctx, nil
	}
	tr := ctx.StartTrace(name)
	d.Cloud.Tracer.Record(tr)
	return ctx, tr
}

// Invoke sends one request through the HTTPS endpoint.
func (d *Deployment) Invoke(ctx *sim.Context, op string, body []byte) (lambda.Response, lambda.InvocationStats, error) {
	if d.app == nil {
		return lambda.Response{}, lambda.InvocationStats{}, ErrNotInstalled
	}
	if d.Endpoint == "" {
		return d.Cloud.Lambda.Invoke(ctx, d.FnName, lambda.Event{Source: "direct", Op: op, Body: body})
	}
	return d.Cloud.Gateway.Handle(ctx, gateway.Request{Path: d.Endpoint, Op: op, Body: body})
}

// InvokeAttested performs the §8.2 enclave-verified request flow: the
// client draws a fresh nonce, obtains a quote over the currently
// deployed code, verifies it against the app's expected measurement,
// and only then sends the request. A provider- or marketplace-side
// code swap fails verification and the request is never issued.
func (d *Deployment) InvokeAttested(ctx *sim.Context, op string, body []byte) (lambda.Response, lambda.InvocationStats, error) {
	if d.app == nil {
		return lambda.Response{}, lambda.InvocationStats{}, ErrNotInstalled
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return lambda.Response{}, lambda.InvocationStats{}, fmt.Errorf("core: attestation nonce: %w", err)
	}
	q, err := d.AttestQuote(nonce)
	if err != nil {
		return lambda.Response{}, lambda.InvocationStats{}, err
	}
	if err := d.VerifyAttestation(q, nonce); err != nil {
		return lambda.Response{}, lambda.InvocationStats{}, fmt.Errorf("core: refusing to call unattested code: %w", err)
	}
	// The attestation round trip costs one KMS-scale exchange.
	if ctx != nil && d.Cloud.Model != nil {
		ctx.Advance(d.Cloud.Model.Sample(netsim.HopKMS))
	}
	return d.Invoke(ctx, op, body)
}

// Delete removes the deployment. With data=true it also destroys the
// bucket contents and the KMS master key, making every stored
// ciphertext permanently unreadable — the paper's answer to "users have
// little control over where their data goes" in centralized services.
func (d *Deployment) Delete(data bool) error {
	if d.app == nil {
		return ErrNotInstalled
	}
	cloud := d.Cloud
	if d.Endpoint != "" {
		cloud.Gateway.RemoveEndpoint(d.Endpoint)
	}
	if err := cloud.Lambda.RemoveFunction(d.FnName); err != nil {
		return err
	}
	for _, qname := range d.Queues {
		if err := cloud.SQS.DeleteQueue(qname); err != nil {
			return err
		}
	}
	if data {
		if err := cloud.S3.DeleteBucket(d.Bucket, true); err != nil {
			return err
		}
		if d.Table != "" {
			if err := cloud.Dynamo.DeleteTable(d.Table); err != nil {
				return err
			}
		}
		if err := cloud.KMS.DeleteKey(d.KeyID); err != nil {
			return err
		}
	}
	cloud.IAM.DeleteRole(d.Role)
	cloud.IAM.DeleteRole(d.ClientRole)
	d.app = nil
	return nil
}

// AttestQuote asks the cloud's enclave platform to attest the deployed
// function code for a client-chosen nonce (§3.3 "Securing DIY with
// Enclaves").
func (d *Deployment) AttestQuote(nonce []byte) (attest.Quote, error) {
	fn, ok := d.Cloud.Lambda.Function(d.FnName)
	if !ok {
		return attest.Quote{}, ErrNotInstalled
	}
	return d.Cloud.Attest.Attest(fn.Code, nonce, nil), nil
}

// VerifyAttestation checks a quote against the app's expected code.
func (d *Deployment) VerifyAttestation(q attest.Quote, nonce []byte) error {
	spec := d.app.Spec()
	code := spec.Code
	if len(code) == 0 {
		code = []byte("diy-app:" + d.app.Name() + ":v1")
	}
	return attest.Verify(d.Cloud.Attest.PublicKey(), q, attest.Measure(code), nonce)
}
