package core

import (
	"fmt"
	"strings"

	"repro/internal/cloudsim/lambda"
)

// Upgrade replaces a deployment's function code with a new version of
// the app while preserving its data, key, queues and identity — the
// app-store update path (§8.1: "Users can then update or delete
// applications ... at any time"). The function's warm containers are
// torn down, so the next invocation cold-starts into the new code.
func Upgrade(d *Deployment, newApp App) error {
	if d.app == nil {
		return ErrNotInstalled
	}
	if newApp.Name() != d.AppName {
		return fmt.Errorf("core: cannot upgrade %q to different app %q", d.AppName, newApp.Name())
	}
	cloud := d.Cloud
	old, ok := cloud.Lambda.Function(d.FnName)
	if !ok {
		return ErrNotInstalled
	}
	spec := newApp.Spec()
	code := spec.Code
	if len(code) == 0 {
		code = []byte("diy-app:" + newApp.Name() + ":v1")
	}

	if err := cloud.Lambda.RemoveFunction(d.FnName); err != nil {
		return err
	}
	err := cloud.Lambda.RegisterFunction(lambda.Function{
		Name:          d.FnName,
		Handler:       newApp.Handler(),
		MemoryMB:      spec.MemoryMB,
		Timeout:       spec.Timeout,
		Role:          d.Role,
		App:           d.AppName,
		Regions:       old.Regions,
		Code:          code,
		CacheDataKeys: spec.CacheDataKeys,
		Config:        old.Config, // bucket, key and queues are preserved
	})
	if err != nil {
		return fmt.Errorf("core: re-registering upgraded function: %w", err)
	}

	// Re-bind the endpoint and inbound addresses (RemoveFunction
	// cleared the triggers).
	if d.Endpoint != "" {
		cloud.Gateway.RemoveEndpoint(d.Endpoint)
		if err := cloud.Gateway.RegisterEndpoint(d.Endpoint, d.FnName, spec.Limit); err != nil {
			return err
		}
	}
	for _, addr := range spec.InboundAddrs {
		addr = strings.ReplaceAll(addr, "%USER%", d.User)
		if err := cloud.SES.RegisterInbound(addr, d.FnName); err != nil {
			return err
		}
	}
	d.app = newApp
	return nil
}
