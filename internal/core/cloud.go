// Package core implements the paper's primary contribution: the DIY
// deployment model. A Cloud bundles one provider's simulated services;
// an App declares a serverless function plus the resources it needs;
// Install binds the two into a Deployment with least-privilege IAM, a
// per-deployment encryption key held by KMS, and a storage bucket that
// rejects plaintext writes. Deployments support the controls the paper
// argues centralized services deny users: migration between providers,
// deletion with data, and remote attestation of the running code.
package core

import (
	"fmt"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/dynamo"
	"repro/internal/cloudsim/ec2"
	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/kms"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/logs"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/s3"
	"repro/internal/cloudsim/ses"
	"repro/internal/cloudsim/sqs"
	"repro/internal/cloudsim/trace"
	"repro/internal/crypto/attest"
	"repro/internal/pricing"
)

// Cloud is one simulated provider: the full service stack the DIY
// architecture needs (Figure 1), plus billing and attestation.
type Cloud struct {
	Name   string
	Region string

	Clock   *clock.Virtual
	Model   *netsim.Model
	Meter   *pricing.Meter
	Book    *pricing.PriceBook
	IAM     *iam.Service
	KMS     *kms.Service
	S3      *s3.Service
	Dynamo  *dynamo.Service
	SQS     *sqs.Service
	Lambda  *lambda.Platform
	EC2     *ec2.Service
	SES     *ses.Service
	Gateway *gateway.Service
	Metrics *metrics.Service
	Logs    *logs.Service
	Tracer  *trace.Store
	Attest  *attest.Platform

	selfTelemetry bool
}

// Shared bundles the immutable pieces of a provider that every account
// in a fleet can alias instead of rebuilding: the price book, the base
// latency-model parameters, and the attestation platform (whose ed25519
// keypair generation is the dominant per-Cloud construction cost — one
// keypair serves a million accounts the way one real provider's
// attestation root serves all its tenants). Everything here is
// read-only after construction, so shards may share it freely; all
// mutable state (meter, stores, telemetry planes, clock) stays
// per-Cloud.
type Shared struct {
	// Book is the price book accounts bill against.
	Book *pricing.PriceBook
	// Params are the base latency-model parameters. A fleet copies them
	// per account and overrides only Seed, so every account gets an
	// independent — but identically shaped — latency stream.
	Params netsim.Params
	// Attest is the provider's enclave attestation platform.
	Attest *attest.Platform
}

// NewShared resolves defaults (Default2017 book, DefaultParams) and
// generates the attestation keypair once, for reuse across every
// account Cloud built from it.
func NewShared(book *pricing.PriceBook, params *netsim.Params) (*Shared, error) {
	if book == nil {
		book = pricing.Default2017()
	}
	p := netsim.DefaultParams()
	if params != nil {
		p = *params
	}
	att, err := attest.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("core: building shared platform state: %w", err)
	}
	return &Shared{Book: book, Params: p, Attest: att}, nil
}

// CloudOptions configures NewCloud.
type CloudOptions struct {
	// Name identifies the provider (default "aws-sim").
	Name string
	// Region is the home region (default "us-west-2").
	Region string
	// NetParams overrides the latency model (DefaultParams if nil).
	NetParams *netsim.Params
	// Book overrides the price book (Default2017 if nil).
	Book *pricing.PriceBook
	// DisableObservability skips installing the metrics interceptor on
	// the service planes. Observability is on by default — the DIY
	// operator has no provider dashboard, so the cloud publishes its
	// own RED+cost series; parity tests flip this to prove the
	// interceptor never moves a ledger number.
	DisableObservability bool
	// DisableLogging skips installing the log-plane interceptor and the
	// per-service log sinks (Lambda START/END/REPORT lines, the KMS
	// audit group). Logging is on by default — the log plane is the
	// operator-facing evidence trail — and, like metrics, is read-only
	// with respect to the economy; TestLogsPreserveLedger flips this to
	// prove a logged run is bit-identical to an unlogged one.
	DisableLogging bool
	// Clock injects the cloud's virtual timeline. The fleet engine hands
	// each account the clock of a shard-local event queue
	// (clock.Timeline) so one drain loop drives many accounts; nil keeps
	// the historical behaviour of a fresh virtual clock at Epoch.
	Clock *clock.Virtual
	// Shared supplies the immutable cross-account state (price book,
	// base netsim params, attestation platform) so per-account
	// construction stays cheap. Nil builds a private bundle from the
	// Book/NetParams fields, preserving single-account behaviour
	// bit-for-bit. Book and NetParams, when set, still win over the
	// bundle's values — the fleet uses that to re-seed the latency
	// model per account.
	Shared *Shared
	// DisableTracing skips building the X-Ray-sim trace store. Traced
	// flows still construct client-side traces (TracedContext keeps
	// returning one), but nothing is sampled, stored or priced — the
	// parity tests flip this to prove trace storage never moves a
	// ledger number.
	DisableTracing bool
	// TraceSampling configures the trace store's head-based sampler.
	// Nil keeps every recorded trace — the single-account default,
	// where the operator wants each request explained. The fleet seeds
	// one per account (workload.Substream(seed, "trace")) with X-Ray's
	// default reservoir-plus-5% rule.
	TraceSampling *trace.SamplerConfig
	// SelfTelemetry lets the telemetry plane record its own counters
	// (samples batched, events ingested, bytes, flushes, interceptor
	// overhead) as telemetry.* metric series via
	// Cloud.PublishSelfTelemetry. Off by default: the extra series feed
	// the CloudWatch custom-metric inventory, so silent self-observation
	// would move SeriesCount-pinned goldens and the monitoring bill.
	SelfTelemetry bool
}

// NewCloud builds a fully wired simulated provider.
func NewCloud(opts CloudOptions) (*Cloud, error) {
	if opts.Name == "" {
		opts.Name = "aws-sim"
	}
	if opts.Region == "" {
		opts.Region = "us-west-2"
	}
	shared := opts.Shared
	if shared == nil {
		s, err := NewShared(opts.Book, opts.NetParams)
		if err != nil {
			return nil, fmt.Errorf("core: building cloud %q: %w", opts.Name, err)
		}
		shared = s
	}
	params := shared.Params
	if opts.NetParams != nil {
		params = *opts.NetParams
	}
	book := opts.Book
	if book == nil {
		book = shared.Book
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewVirtual()
	}

	c := &Cloud{
		Name:   opts.Name,
		Region: opts.Region,
		Clock:  clk,
		Model:  netsim.NewModel(params),
		Meter:  pricing.NewMeter(),
		Book:   book,
		IAM:    iam.New(),
	}
	c.KMS = kms.New(c.IAM, c.Meter, c.Model, c.Clock)
	c.S3 = s3.New(c.IAM, c.Meter, c.Model, c.Clock)
	c.Dynamo = dynamo.New(c.IAM, c.Meter, c.Model, c.Clock)
	c.SQS = sqs.New(c.IAM, c.Meter, c.Model, c.Clock)
	c.Lambda = lambda.New(c.Meter, c.Model, c.Clock)
	c.EC2 = ec2.New(c.Meter, c.Model, c.Clock)
	c.SES = ses.New(c.Lambda, c.Meter, c.Model)
	c.Gateway = gateway.New(c.Lambda, c.Meter, c.Model, c.Clock)
	c.Metrics = metrics.New()
	c.Logs = logs.New(c.Clock)
	if !opts.DisableTracing {
		c.Tracer = trace.NewStore(opts.TraceSampling)
	}
	c.Lambda.SetMetrics(c.Metrics)
	c.Lambda.SetServices(lambda.Services{KMS: c.KMS, S3: c.S3, SQS: c.SQS, Dynamo: c.Dynamo, Email: c.SES})

	planes := []*plane.Plane{
		c.KMS.Plane(), c.S3.Plane(), c.Dynamo.Plane(), c.SQS.Plane(),
		c.Lambda.Plane(), c.EC2.Plane(), c.SES.Plane(), c.Gateway.Plane(),
	}
	if !opts.DisableObservability {
		obs := metrics.PlaneInterceptor(c.Metrics, c.Book, c.Clock)
		for _, pl := range planes {
			pl.Use(obs)
		}
	}
	if !opts.DisableLogging {
		lobs := logs.PlaneInterceptor(c.Logs, c.Book, c.Clock)
		for _, pl := range planes {
			pl.Use(lobs)
		}
		c.Lambda.SetLogs(c.Logs)
		c.KMS.SetLogs(c.Logs)
	}

	// Clock movement is the deterministic publication boundary for the
	// batched telemetry interceptors: every Advance/Set drains the
	// pending metric samples, log events and staged traces into their
	// stores. Reads force their own flush too, so this is a latency
	// bound, not a correctness requirement.
	c.Clock.OnTick(func(time.Time) {
		c.Metrics.FlushBatches()
		c.Logs.FlushBatches()
		c.Tracer.Flush()
	})
	c.selfTelemetry = opts.SelfTelemetry
	c.Attest = shared.Attest
	return c, nil
}

// PublishSelfTelemetry records the telemetry plane's own counters as
// telemetry.* metric series timestamped at: batched metric samples and
// flushes, interceptor overhead (zero unless a host clock was
// injected; see metrics.SetHostClock), and the log plane's ingested
// event and byte totals. No-op unless CloudOptions.SelfTelemetry was
// set — the series count feeds the CloudWatch inventory bill, so
// self-observation is opt-in.
func (c *Cloud) PublishSelfTelemetry(at time.Time) {
	if !c.selfTelemetry {
		return
	}
	c.Metrics.SelfPublish(at)
	ls := c.Logs.SelfStats()
	c.Metrics.Record(metrics.TelemetryNamespace, metrics.MetricTelemetryEvents, at, float64(ls.Events))
	c.Metrics.Record(metrics.TelemetryNamespace, metrics.MetricTelemetryBytes, at, float64(ls.Bytes))
}

// Bill computes the provider's current monthly bill.
func (c *Cloud) Bill() *pricing.Bill {
	return pricing.Compute(c.Book, c.Meter)
}
