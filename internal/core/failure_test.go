package core

import (
	"errors"
	"testing"

	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/kms"
)

// Failure injection: a deployment must degrade gracefully — clean
// errors, no panics, billing still correct — when its dependencies are
// pulled out from under it.

func TestKMSKeyDeletedMidLife(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	if _, _, err := d.Invoke(d.ClientContext(), "put", []byte("pre")); err != nil {
		t.Fatal(err)
	}

	// The user (or an admin mistake) destroys the master key.
	if err := c.KMS.DeleteKey(d.KeyID); err != nil {
		t.Fatal(err)
	}
	// notesApp caches its data key, so tear down warm containers to
	// force a fresh KMS round trip.
	if err := c.Lambda.UpdateConfig(d.FnName, nil); err != nil {
		t.Fatal(err)
	}
	resp, stats, err := d.Invoke(d.ClientContext(), "get", nil)
	if err == nil {
		t.Fatalf("invoke succeeded without the master key (status %d)", resp.Status)
	}
	if !errors.Is(err, kms.ErrKeyNotFound) {
		t.Fatalf("got %v, want ErrKeyNotFound in the chain", err)
	}
	// The failed invocation is still billed — errors are not free.
	if stats.BilledTime == 0 {
		t.Fatal("failed invocation not billed")
	}
}

func TestRoleRevokedMidLife(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	c.IAM.DeleteRole(d.Role) // credential revocation
	c.Lambda.UpdateConfig(d.FnName, nil)

	_, _, err := d.Invoke(d.ClientContext(), "get", nil)
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestClientRoleRevoked(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	c.IAM.DeleteRole(d.ClientRole)
	// Client-side KMS decrypt (the chat data-key fetch path) fails.
	if _, err := c.KMS.Decrypt(d.ClientContext(), d.WrappedKey); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestMigrateFromBrokenSource(t *testing.T) {
	src := newCloud(t, "src")
	dst := newCloud(t, "dst")
	d := install(t, src, "alice")
	d.Invoke(d.ClientContext(), "put", []byte("data"))

	// Source key destroyed: migration must fail cleanly, and must not
	// leave a half-installed destination key blocking a retry... the
	// destination deployment does get created first, so a retry after
	// cleanup is the documented path.
	src.KMS.DeleteKey(d.KeyID)
	if _, err := Migrate(d, dst, true); err == nil {
		t.Fatal("migration succeeded without the source key")
	}
	// Source data untouched by the failed migration.
	if !src.S3.BucketExists(d.Bucket) {
		t.Fatal("failed migration destroyed source data")
	}
}

func TestOutageDuringInstallDoesNotCorrupt(t *testing.T) {
	c := newCloud(t, "aws-sim")
	// Outage at install time: install itself is control-plane and
	// succeeds; the first invocation fails over.
	c.Model.SetOutage("us-west-2", true)
	d := install(t, c, "alice")
	_, stats, err := d.Invoke(d.ClientContext(), "put", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Region != "us-east-1" {
		t.Fatalf("ran in %s during outage", stats.Region)
	}
}
