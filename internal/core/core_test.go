package core

import (
	"bytes"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/attest"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

// notesApp is a minimal DIY app used to exercise the full Figure 1
// request flow: get key from KMS, decrypt/encrypt, read/write S3.
type notesApp struct{}

func (notesApp) Name() string { return "notes" }

func (notesApp) Spec() AppSpec {
	return AppSpec{
		MemoryMB:      128,
		Timeout:       30 * time.Second,
		Endpoint:      "/api",
		Queues:        []string{"events"},
		CacheDataKeys: true,
		EstCompute:    10 * time.Millisecond,
	}
}

func (notesApp) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		wrapped, err := hex.DecodeString(env.Config(ConfigWrappedKey))
		if err != nil {
			return lambda.Response{Status: 500}, err
		}
		key, err := env.DataKey(wrapped)
		if err != nil {
			return lambda.Response{Status: 500}, err
		}
		bucket := env.Config(ConfigBucket)
		env.Compute(5 * time.Millisecond)
		switch ev.Op {
		case "put":
			sealed, err := envelope.Seal(key, ev.Body, []byte("note"))
			if err != nil {
				return lambda.Response{Status: 500}, err
			}
			if err := env.S3().Put(env.Ctx(), bucket, "note", sealed); err != nil {
				return lambda.Response{Status: 500}, err
			}
			return lambda.Response{Status: 200}, nil
		case "get":
			obj, err := env.S3().Get(env.Ctx(), bucket, "note")
			if err != nil {
				return lambda.Response{Status: 404}, err
			}
			pt, err := envelope.Open(key, obj.Data, []byte("note"))
			if err != nil {
				return lambda.Response{Status: 500}, err
			}
			return lambda.Response{Status: 200, Body: pt}, nil
		case "leak":
			// A buggy/malicious op that tries to store plaintext.
			err := env.S3().Put(env.Ctx(), bucket, "leaked", ev.Body)
			if err != nil {
				return lambda.Response{Status: 403}, err
			}
			return lambda.Response{Status: 200}, nil
		default:
			return lambda.Response{Status: 400}, nil
		}
	}
}

func newCloud(t *testing.T, name string) *Cloud {
	t.Helper()
	c, err := NewCloud(CloudOptions{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func install(t *testing.T, c *Cloud, user string) *Deployment {
	t.Helper()
	d, err := Install(c, user, notesApp{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInstallProvisionsResources(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")

	if !c.S3.BucketExists("alice-notes") {
		t.Error("bucket missing")
	}
	if !c.KMS.KeyExists("alice-notes") {
		t.Error("key missing")
	}
	if !c.SQS.QueueExists("alice-notes-events") {
		t.Error("queue missing")
	}
	if _, ok := c.Lambda.Function("alice-notes"); !ok {
		t.Error("function missing")
	}
	if _, ok := c.IAM.Role(d.Role); !ok {
		t.Error("function role missing")
	}
	if _, ok := c.IAM.Role(d.ClientRole); !ok {
		t.Error("client role missing")
	}
	if d.Endpoint != "/alice/notes/api" {
		t.Errorf("endpoint = %q", d.Endpoint)
	}
	if len(d.WrappedKey) == 0 {
		t.Error("no wrapped deployment key")
	}
}

func TestInstallInvalidUser(t *testing.T) {
	c := newCloud(t, "aws-sim")
	for _, user := range []string{"", "a/b", "a b", "a-b"} {
		if _, err := Install(c, user, notesApp{}); err == nil {
			t.Errorf("user %q accepted", user)
		}
	}
}

func TestEndToEndEncryptedRoundTrip(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	ctx := d.ClientContext()

	secret := []byte("my private note: the merger closes tuesday")
	resp, stats, err := d.Invoke(ctx, "put", secret)
	if err != nil || resp.Status != 200 {
		t.Fatalf("put: %v status %d", err, resp.Status)
	}
	if stats.BilledTime%pricing.BillingQuantum != 0 {
		t.Errorf("billed %v not a quantum multiple", stats.BilledTime)
	}

	resp, _, err = d.Invoke(d.ClientContext(), "get", nil)
	if err != nil || !bytes.Equal(resp.Body, secret) {
		t.Fatalf("get: %v body %q", err, resp.Body)
	}

	// The core privacy invariant: what sits in cloud storage is
	// ciphertext and does not contain the plaintext.
	adminCtx := &sim.Context{Principal: d.Role}
	obj, err := c.S3.Get(adminCtx, d.Bucket, "note")
	if err != nil {
		t.Fatal(err)
	}
	if !envelope.IsSealed(obj.Data) {
		t.Fatal("stored object is not sealed")
	}
	if bytes.Contains(obj.Data, secret) {
		t.Fatal("plaintext leaked into storage")
	}
}

func TestPlaintextWriteRejected(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	resp, _, _ := d.Invoke(d.ClientContext(), "leak", []byte("oops plaintext"))
	if resp.Status != 403 {
		t.Fatalf("leak op status = %d, want 403 (policy rejection)", resp.Status)
	}
}

func TestUserIsolation(t *testing.T) {
	c := newCloud(t, "aws-sim")
	dA := install(t, c, "alice")
	install(t, c, "bob")

	// Alice's function role must not read Bob's bucket or key.
	aliceCtx := &sim.Context{Principal: dA.Role}
	if _, err := c.S3.Get(aliceCtx, "bob-notes", "note"); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("cross-user bucket read: %v", err)
	}
	if _, _, err := c.KMS.GenerateDataKey(aliceCtx, "bob-notes"); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("cross-user key use: %v", err)
	}
	// Alice's *client* must not poll Bob's queue.
	clientCtx := dA.ClientContext()
	if _, err := c.SQS.Receive(clientCtx, "bob-notes-events", 1, 0); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("cross-user queue poll: %v", err)
	}
}

func TestDoubleInstallFails(t *testing.T) {
	c := newCloud(t, "aws-sim")
	install(t, c, "alice")
	if _, err := Install(c, "alice", notesApp{}); err == nil {
		t.Fatal("second install of same app for same user succeeded")
	}
}

func TestDeleteWithData(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	d.Invoke(d.ClientContext(), "put", []byte("doomed"))

	if err := d.Delete(true); err != nil {
		t.Fatal(err)
	}
	if c.S3.BucketExists("alice-notes") {
		t.Error("bucket survived delete")
	}
	if c.KMS.KeyExists("alice-notes") {
		t.Error("master key survived delete — data still recoverable")
	}
	if c.SQS.QueueExists("alice-notes-events") {
		t.Error("queue survived delete")
	}
	if _, ok := c.Lambda.Function("alice-notes"); ok {
		t.Error("function survived delete")
	}
	if _, _, err := d.Invoke(d.ClientContext(), "get", nil); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("invoke after delete: %v", err)
	}
	if err := d.Delete(true); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("double delete: %v", err)
	}
}

func TestMigrateAcrossClouds(t *testing.T) {
	src := newCloud(t, "aws-sim")
	dst := newCloud(t, "azure-sim")
	d := install(t, src, "alice")

	secret := []byte("note that must survive migration")
	if _, _, err := d.Invoke(d.ClientContext(), "put", secret); err != nil {
		t.Fatal(err)
	}

	nd, err := Migrate(d, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	// Old cloud is clean.
	if src.S3.BucketExists("alice-notes") || src.KMS.KeyExists("alice-notes") {
		t.Fatal("source resources survived migration with deleteSource")
	}
	// The data is readable on the new cloud through the normal path.
	resp, _, err := nd.Invoke(nd.ClientContext(), "get", nil)
	if err != nil || !bytes.Equal(resp.Body, secret) {
		t.Fatalf("post-migration get: %v body %q", err, resp.Body)
	}
	// And it is still ciphertext at rest on the destination.
	obj, err := dst.S3.Get(&sim.Context{Principal: nd.Role}, nd.Bucket, "note")
	if err != nil {
		t.Fatal(err)
	}
	if !envelope.IsSealed(obj.Data) || bytes.Contains(obj.Data, secret) {
		t.Fatal("migration shipped plaintext")
	}
}

func TestAttestation(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")

	nonce := []byte("client-session-nonce")
	q, err := d.AttestQuote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyAttestation(q, nonce); err != nil {
		t.Fatalf("valid attestation rejected: %v", err)
	}
	// Tampered measurement fails.
	q.Measurement[0] ^= 0xff
	if err := d.VerifyAttestation(q, nonce); err == nil {
		t.Fatal("tampered quote verified")
	}
}

func TestThrottledEndpoint(t *testing.T) {
	c := newCloud(t, "aws-sim")

	app := throttledApp{}
	d, err := Install(c, "alice", app)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.ClientContext()
	var throttled bool
	for i := 0; i < 10; i++ {
		_, _, err := d.Invoke(ctx, "ping", nil)
		if errors.Is(err, gateway.ErrThrottled) {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("throttle never engaged")
	}
}

// throttledApp exposes an endpoint with a tight rate limit.
type throttledApp struct{}

func (throttledApp) Name() string { return "pinger" }
func (throttledApp) Spec() AppSpec {
	return AppSpec{Endpoint: "/ping", Limit: gateway.Limit{RPS: 0.1, Burst: 2}}
}
func (throttledApp) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		return lambda.Response{Status: 200}, nil
	}
}

func TestTCBReport(t *testing.T) {
	r := NewTCBReport()
	if r.Ratio() <= 1 {
		t.Fatalf("TCB ratio %v; DIY must trust strictly less", r.Ratio())
	}
	s := r.String()
	if !strings.Contains(s, "key management service") || !strings.Contains(s, "analytics") {
		t.Fatalf("report rendering incomplete:\n%s", s)
	}
}

func TestBill(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	d.Invoke(d.ClientContext(), "put", []byte("x"))
	bill := c.Bill()
	if bill.Line(pricing.LambdaRequests).Quantity < 1 {
		t.Fatal("bill missing lambda requests")
	}
	// At one request everything is inside the free tiers.
	if bill.TotalOf(pricing.LambdaRequests, pricing.LambdaGBSeconds) != 0 {
		t.Fatal("free tier not applied")
	}
}

func TestInvokeAttestedDetectsCodeSwap(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")

	// Honest deployment: attested invocation succeeds end to end.
	resp, _, err := d.InvokeAttested(d.ClientContext(), "put", []byte("secret"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("attested invoke: %v status %d", err, resp.Status)
	}

	// The provider (or a compromised marketplace) swaps the package.
	evil := func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		return lambda.Response{Status: 200, Body: ev.Body}, nil // exfiltration stub
	}
	if err := c.Lambda.ReplaceCode(d.FnName, []byte("diy-app:notes:v1-backdoored"), evil); err != nil {
		t.Fatal(err)
	}
	// Plain Invoke cannot tell...
	if _, _, err := d.Invoke(d.ClientContext(), "put", []byte("x")); err != nil {
		t.Fatalf("plain invoke after swap: %v", err)
	}
	// ...but the attested path refuses before sending anything.
	_, _, err = d.InvokeAttested(d.ClientContext(), "put", []byte("would-be-stolen"))
	if err == nil {
		t.Fatal("attested invoke accepted tampered code")
	}
	if !errors.Is(err, attest.ErrMeasurement) {
		t.Fatalf("got %v, want ErrMeasurement", err)
	}
}

func TestInvokeAttestedAfterDelete(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	d.Delete(true)
	if _, _, err := d.InvokeAttested(d.ClientContext(), "get", nil); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("got %v, want ErrNotInstalled", err)
	}
}

// upgradeableApp supports version-distinguished upgrades with an
// endpoint and an inbound address, to cover Upgrade's re-binding.
type upgradeableApp struct{ version string }

func (upgradeableApp) Name() string { return "notes" }
func (a upgradeableApp) Spec() AppSpec {
	return AppSpec{
		Endpoint:     "/api",
		InboundAddrs: []string{"%USER%@notes.example"},
		Code:         []byte("notes-" + a.version),
	}
}
func (a upgradeableApp) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		return lambda.Response{Status: 200, Body: []byte(a.version)}, nil
	}
}

func TestUpgradeRebindsTriggers(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d, err := Install(c, "alice", upgradeableApp{version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := Upgrade(d, upgradeableApp{version: "v2"}); err != nil {
		t.Fatal(err)
	}
	// New code serves via the endpoint...
	resp, _, err := d.Invoke(d.ClientContext(), "ping", nil)
	if err != nil || string(resp.Body) != "v2" {
		t.Fatalf("post-upgrade invoke: %v %q", err, resp.Body)
	}
	// ...and the inbound trigger still routes.
	if _, ok := c.Lambda.TriggerTarget("ses", "alice@notes.example"); !ok {
		t.Fatal("inbound trigger lost across upgrade")
	}
	// Attestation now expects the new measurement.
	nonce := []byte("n")
	q, err := d.AttestQuote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyAttestation(q, nonce); err != nil {
		t.Fatalf("post-upgrade attestation: %v", err)
	}
}

func TestUpgradeValidation(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d, err := Install(c, "alice", upgradeableApp{version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	// Different app name is refused.
	if err := Upgrade(d, notesAppRenamed{}); err == nil {
		t.Fatal("cross-app upgrade accepted")
	}
	// Deleted deployment is refused.
	if err := d.Delete(true); err != nil {
		t.Fatal(err)
	}
	if err := Upgrade(d, upgradeableApp{version: "v2"}); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("got %v, want ErrNotInstalled", err)
	}
}

type notesAppRenamed struct{}

func (notesAppRenamed) Name() string            { return "other" }
func (notesAppRenamed) Spec() AppSpec           { return AppSpec{} }
func (notesAppRenamed) Handler() lambda.Handler { return nil }

func TestMigrateRefusesPlaintext(t *testing.T) {
	src := newCloud(t, "src")
	dst := newCloud(t, "dst")
	d := install(t, src, "alice")
	// An operator lifts the bucket policy and sneaks plaintext in; the
	// migration's defense-in-depth check must refuse to ship it.
	src.S3.SetRequireSealed(d.Bucket, false)
	adminCtx := &sim.Context{Principal: d.Role}
	if err := src.S3.Put(adminCtx, d.Bucket, "leak", []byte("plaintext!")); err != nil {
		t.Fatal(err)
	}
	if _, err := Migrate(d, dst, true); err == nil || !strings.Contains(err.Error(), "plaintext") {
		t.Fatalf("migration shipped plaintext: %v", err)
	}
}

func TestMigrateNotInstalled(t *testing.T) {
	src := newCloud(t, "src")
	dst := newCloud(t, "dst")
	d := install(t, src, "alice")
	d.Delete(true)
	if _, err := Migrate(d, dst, true); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("got %v, want ErrNotInstalled", err)
	}
}

func TestInstallCollisionPaths(t *testing.T) {
	c := newCloud(t, "aws-sim")
	// A pre-existing foreign bucket with the deployment's name blocks
	// installation cleanly.
	c.S3.CreateBucket("alice-notes")
	if _, err := Install(c, "alice", notesApp{}); err == nil {
		t.Fatal("install over a foreign bucket succeeded")
	}
}

func TestTCBRatioDegenerate(t *testing.T) {
	r := TCBReport{}
	if r.Ratio() != 0 {
		t.Fatalf("empty report ratio = %v", r.Ratio())
	}
}

func TestInstallQueueCollision(t *testing.T) {
	c := newCloud(t, "aws-sim")
	// A pre-existing queue with the deployment's name blocks install.
	if err := c.SQS.CreateQueue("alice-notes-events"); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(c, "alice", notesApp{}); err == nil {
		t.Fatal("install over a foreign queue succeeded")
	}
}

func TestInstallKeyCollision(t *testing.T) {
	c := newCloud(t, "aws-sim")
	if err := c.KMS.CreateKey("alice-notes", false); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(c, "alice", notesApp{}); err == nil {
		t.Fatal("install over a foreign key succeeded")
	}
}

func TestDeleteWithoutData(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	d.Invoke(d.ClientContext(), "put", []byte("keep me"))
	if err := d.Delete(false); err != nil {
		t.Fatal(err)
	}
	// Code and queues are gone, but the encrypted data and the key
	// remain for a later reinstall or export.
	if _, ok := c.Lambda.Function("alice-notes"); ok {
		t.Error("function survived")
	}
	if !c.S3.BucketExists("alice-notes") {
		t.Error("bucket destroyed despite data=false")
	}
	if !c.KMS.KeyExists("alice-notes") {
		t.Error("key destroyed despite data=false")
	}
}

func TestAttestQuoteAfterDelete(t *testing.T) {
	c := newCloud(t, "aws-sim")
	d := install(t, c, "alice")
	d.Delete(true)
	if _, err := d.AttestQuote([]byte("n")); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("got %v, want ErrNotInstalled", err)
	}
}

func TestMigrateDestinationCollision(t *testing.T) {
	src := newCloud(t, "src")
	dst := newCloud(t, "dst")
	d := install(t, src, "alice")
	// The destination already has a deployment under the same name.
	install(t, dst, "alice")
	if _, err := Migrate(d, dst, true); err == nil {
		t.Fatal("migration into an occupied destination succeeded")
	}
	// Source is untouched by the failed migration.
	if !src.S3.BucketExists("alice-notes") {
		t.Fatal("failed migration destroyed the source")
	}
}

func TestMigrateKeepSource(t *testing.T) {
	src := newCloud(t, "src")
	dst := newCloud(t, "dst")
	d := install(t, src, "alice")
	d.Invoke(d.ClientContext(), "put", []byte("copied"))
	nd, err := Migrate(d, dst, false) // keep the source data
	if err != nil {
		t.Fatal(err)
	}
	// Both sides hold the ciphertext; the source deployment's code is
	// gone but its data and key remain.
	if !src.S3.BucketExists("alice-notes") || !src.KMS.KeyExists("alice-notes") {
		t.Fatal("deleteSource=false removed source data")
	}
	resp, _, err := nd.Invoke(nd.ClientContext(), "get", nil)
	if err != nil || string(resp.Body) != "copied" {
		t.Fatalf("destination read: %v %q", err, resp.Body)
	}
}
