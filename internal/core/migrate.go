package core

import (
	"encoding/hex"
	"fmt"

	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
)

// Migrate moves a deployment to another cloud — the control the paper
// highlights: "users have the freedom of migrating their data across
// providers at any time, e.g., to move out of insecure geographic
// regions or clouds."
//
// Only ciphertext crosses between providers. The deployment data key is
// unwrapped by the source KMS under the user's own authority, re-wrapped
// by the destination KMS, and zeroed from the migration tool's memory;
// the plaintext of the user's data never exists outside a function
// container on either side.
//
// On success the source deployment is deleted (with its data if
// deleteSource is true) and the new deployment is returned.
func Migrate(d *Deployment, dest *Cloud, deleteSource bool) (*Deployment, error) {
	if d.app == nil {
		return nil, ErrNotInstalled
	}
	nd, err := Install(dest, d.User, d.app)
	if err != nil {
		return nil, fmt.Errorf("core: migrating %s: %w", d.FnName, err)
	}

	// Re-custody the data key so existing ciphertext stays readable:
	// source-KMS decrypt -> destination-KMS wrap -> zero.
	srcCtx := &sim.Context{Principal: d.Role, App: d.app.Name(), Region: d.Cloud.Region}
	plainKey, err := d.Cloud.KMS.Decrypt(srcCtx, d.WrappedKey)
	if err != nil {
		return nil, fmt.Errorf("core: unwrapping source key: %w", err)
	}
	dstCtx := &sim.Context{Principal: nd.Role, App: d.app.Name(), Region: dest.Region}
	rewrapped, err := dest.KMS.ImportWrapped(dstCtx, plainKey, nd.KeyID)
	envelope.Zero(plainKey)
	if err != nil {
		return nil, fmt.Errorf("core: re-wrapping key at destination: %w", err)
	}
	nd.WrappedKey = rewrapped
	err = dest.Lambda.UpdateConfig(nd.FnName, map[string]string{
		ConfigWrappedKey: hex.EncodeToString(rewrapped),
	})
	if err != nil {
		return nil, err
	}

	// Copy ciphertext objects as-is.
	keys, err := d.Cloud.S3.List(srcCtx, d.Bucket, "")
	if err != nil {
		return nil, fmt.Errorf("core: listing source bucket: %w", err)
	}
	for _, key := range keys {
		obj, err := d.Cloud.S3.Get(srcCtx, d.Bucket, key)
		if err != nil {
			return nil, fmt.Errorf("core: reading %s/%s: %w", d.Bucket, key, err)
		}
		if !envelope.IsSealed(obj.Data) {
			// Defense in depth: the sealed-writes policy should make
			// this impossible, but migration must never ship plaintext.
			return nil, fmt.Errorf("core: refusing to migrate plaintext object %s/%s", d.Bucket, key)
		}
		if err := dest.S3.Put(dstCtx.WithPrincipal(nd.Role), nd.Bucket, key, obj.Data); err != nil {
			return nil, fmt.Errorf("core: writing %s/%s: %w", nd.Bucket, key, err)
		}
	}

	// Copy table items, if the app uses the low-latency store.
	if d.Table != "" {
		keys, err := d.Cloud.Dynamo.Query(srcCtx, d.Table, "")
		if err != nil {
			return nil, fmt.Errorf("core: listing source table: %w", err)
		}
		for _, key := range keys {
			it, err := d.Cloud.Dynamo.Get(srcCtx, d.Table, key)
			if err != nil {
				return nil, fmt.Errorf("core: reading %s/%s: %w", d.Table, key, err)
			}
			if !envelope.IsSealed(it.Value) {
				return nil, fmt.Errorf("core: refusing to migrate plaintext item %s/%s", d.Table, key)
			}
			if err := dest.Dynamo.Put(dstCtx.WithPrincipal(nd.Role), nd.Table, key, it.Value); err != nil {
				return nil, fmt.Errorf("core: writing %s/%s: %w", nd.Table, key, err)
			}
		}
	}

	if err := d.Delete(deleteSource); err != nil {
		return nil, fmt.Errorf("core: removing source deployment: %w", err)
	}
	return nd, nil
}
