package core

import (
	"time"

	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/lambda"
)

// App is a DIY application: a serverless handler plus the resource
// declaration Install uses to provision its deployment. The five
// applications under internal/apps implement it.
type App interface {
	// Name is the app's short identifier ("chat", "email", ...).
	Name() string
	// Spec declares the resources the app needs.
	Spec() AppSpec
	// Handler is the function code run per request.
	Handler() lambda.Handler
}

// AppSpec declares an app's resource requirements. Install translates
// it into concrete per-user resources with least-privilege policies.
type AppSpec struct {
	// MemoryMB is the function's memory allocation (the Table 2
	// "Lambda Mem." column). Defaults to 128.
	MemoryMB int
	// Timeout bounds each invocation.
	Timeout time.Duration
	// Endpoint, if non-empty, exposes the function at an HTTPS path
	// suffix; the full path is "/<user>/<app><Endpoint>".
	Endpoint string
	// Limit throttles the endpoint (DDoS cost protection, §8.2).
	Limit gateway.Limit
	// Queues lists queue suffixes to provision; actual names are
	// "<user>-<app>-<suffix>". Handlers find them via
	// env.Config("queue:<suffix>").
	Queues []string
	// InboundAddrs lists email addresses routed to the function via
	// the SES trigger (templated: "%USER%" expands to the user name).
	InboundAddrs []string
	// CacheDataKeys enables warm-container data-key caching.
	CacheDataKeys bool
	// Code is the deployment package; defaults to a name+version
	// placeholder. Its hash is the attestation measurement.
	Code []byte
	// ClientCanReadBucket grants the user's client principal read
	// access to the deployment bucket (file transfer downloads).
	ClientCanReadBucket bool
	// ClientCanDecrypt grants the user's client principal kms:Decrypt
	// on the deployment key, so the user's own devices can open
	// messages the function delivers to them (the chat prototype's
	// "post encrypted messages to SQS, which the client then long
	// polls" requires the client to hold the data key).
	ClientCanDecrypt bool
	// EstCompute declares the modelled per-request compute time used
	// in cost analysis (the Table 2 "Compute Time per Request"
	// column).
	EstCompute time.Duration
	// UseDynamo additionally provisions a low-latency table (the
	// paper's footnoted "Amazon DynamoDB is a low-latency alternative
	// to S3") with the same ciphertext-only policy; handlers find its
	// name via env.Config(ConfigTable).
	UseDynamo bool
}

// Config keys Install places in the function environment.
const (
	ConfigBucket     = "bucket"
	ConfigTable      = "table"
	ConfigKeyID      = "key-id"
	ConfigWrappedKey = "wrapped-key" // hex-encoded wrapped data key
	ConfigUser       = "user"
	ConfigQueuePref  = "queue:" // + suffix -> actual queue name
)
