package core

import (
	"fmt"
	"strings"
)

// Component is one element of a system's trusted computing base.
type Component struct {
	Name string
	// Why explains what trusting it buys an attacker who breaks it.
	Why string
}

// TCBReport compares what a user must trust under DIY against a
// centralized provider — the paper's §3.3 argument made concrete and
// testable. The DIY list is what this package actually enforces: every
// plaintext touch point in the repo is inside one of these components.
type TCBReport struct {
	DIY         []Component
	Centralized []Component
}

// NewTCBReport returns the comparison from §3.3.
func NewTCBReport() TCBReport {
	return TCBReport{
		DIY: []Component{
			{Name: "container isolation", Why: "plaintext exists only inside the function container during execution"},
			{Name: "key management service", Why: "releases the data key only to the deployment's IAM role"},
			{Name: "application code", Why: "the function itself sees plaintext (auditable, user-chosen, attestable via enclaves)"},
		},
		Centralized: []Component{
			{Name: "web application", Why: "operates directly on plaintext"},
			{Name: "storage and database fleet", Why: "stores plaintext or reversibly encrypted data"},
			{Name: "internal analytics systems", Why: "ad targeting, recommendations and ML pipelines read user data"},
			{Name: "employees with data access", Why: "testing and maintenance staff can snoop (documented incidents)"},
			{Name: "every downstream data consumer", Why: "resale and sharing once data leaves the service"},
		},
	}
}

// Ratio reports |centralized| / |DIY|, the headline TCB reduction.
func (r TCBReport) Ratio() float64 {
	if len(r.DIY) == 0 {
		return 0
	}
	return float64(len(r.Centralized)) / float64(len(r.DIY))
}

// String renders the comparison.
func (r TCBReport) String() string {
	var sb strings.Builder
	sb.WriteString("Trusted computing base comparison (paper §3.3)\n\nDIY:\n")
	for _, c := range r.DIY {
		fmt.Fprintf(&sb, "  - %-28s %s\n", c.Name+":", c.Why)
	}
	sb.WriteString("\nCentralized provider:\n")
	for _, c := range r.Centralized {
		fmt.Fprintf(&sb, "  - %-28s %s\n", c.Name+":", c.Why)
	}
	return sb.String()
}
