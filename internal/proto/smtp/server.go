// Package smtp implements a minimal RFC 5321 SMTP server over real TCP.
//
// The paper's email service receives mail through a provider hook
// because "Lambda currently does not support SMTP endpoints"; this
// package is the endpoint a DIY deployment would run if the platform
// did (§8.3 asks for exactly this: "expand cloud platforms so they can
// efficiently store arbitrary TCP servers"). The email example wires it
// to the same encrypt-and-store handler the SES hook uses, so both
// ingestion paths exercise identical application code.
package smtp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Handler receives one accepted message. Returning an error rejects
// the message with a transient 451 so a real sender would retry.
type Handler func(from string, to []string, data []byte) error

// Server is an SMTP server bound to a listener.
type Server struct {
	// Hostname is announced in the greeting and EHLO response.
	Hostname string
	// Handler receives accepted messages. Required.
	Handler Handler
	// MaxMessageBytes caps DATA size (default 10 MiB).
	MaxMessageBytes int
	// ReadTimeout bounds each command read (default 2 minutes).
	ReadTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("smtp: server closed")

const defaultMaxMessage = 10 << 20

// Serve accepts connections on l until Close is called.
func (s *Server) Serve(l net.Listener) error {
	if s.Handler == nil {
		return errors.New("smtp: server requires a Handler")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("smtp: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.session(conn)
	}
}

// Close stops the listener and closes active sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

func (s *Server) hostname() string {
	if s.Hostname != "" {
		return s.Hostname
	}
	return "diy.invalid"
}

func (s *Server) maxMessage() int {
	if s.MaxMessageBytes > 0 {
		return s.MaxMessageBytes
	}
	return defaultMaxMessage
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 2 * time.Minute
}

type sessionState struct {
	helloSeen bool
	from      string
	fromSeen  bool
	rcpts     []string
}

func (st *sessionState) resetMail() {
	st.from = ""
	st.fromSeen = false
	st.rcpts = nil
}

func (s *Server) session(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	reply := func(code int, text string) bool {
		fmt.Fprintf(w, "%d %s\r\n", code, text)
		return w.Flush() == nil
	}
	if !reply(220, s.hostname()+" DIY SMTP service ready") {
		return
	}

	var st sessionState
	for {
		conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		line, err := readLine(r)
		if err != nil {
			return
		}
		verb, arg := splitVerb(line)
		switch verb {
		case "HELO":
			st = sessionState{helloSeen: true}
			if !reply(250, s.hostname()) {
				return
			}
		case "EHLO":
			st = sessionState{helloSeen: true}
			fmt.Fprintf(w, "250-%s\r\n", s.hostname())
			fmt.Fprintf(w, "250-SIZE %d\r\n", s.maxMessage())
			fmt.Fprintf(w, "250 8BITMIME\r\n")
			if w.Flush() != nil {
				return
			}
		case "MAIL":
			if !st.helloSeen {
				if !reply(503, "say HELO first") {
					return
				}
				continue
			}
			addr, perr := parsePath(arg, "FROM")
			if perr != nil {
				if !reply(501, perr.Error()) {
					return
				}
				continue
			}
			st.resetMail()
			st.from = addr
			st.fromSeen = true
			if !reply(250, "OK") {
				return
			}
		case "RCPT":
			if !st.fromSeen {
				if !reply(503, "need MAIL before RCPT") {
					return
				}
				continue
			}
			addr, perr := parsePath(arg, "TO")
			if perr != nil || addr == "" {
				if !reply(501, "bad recipient") {
					return
				}
				continue
			}
			st.rcpts = append(st.rcpts, addr)
			if !reply(250, "OK") {
				return
			}
		case "DATA":
			if !st.fromSeen || len(st.rcpts) == 0 {
				if !reply(503, "need MAIL and RCPT before DATA") {
					return
				}
				continue
			}
			if !reply(354, "end data with <CRLF>.<CRLF>") {
				return
			}
			conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
			data, derr := readData(r, s.maxMessage())
			if derr != nil {
				reply(552, "message too large")
				return
			}
			if herr := s.Handler(st.from, st.rcpts, data); herr != nil {
				if !reply(451, "local processing error, try again") {
					return
				}
			} else if !reply(250, "OK: queued") {
				return
			}
			st.resetMail()
		case "RSET":
			st.resetMail()
			if !reply(250, "OK") {
				return
			}
		case "NOOP":
			if !reply(250, "OK") {
				return
			}
		case "VRFY":
			if !reply(252, "cannot VRFY user, accepting message anyway") {
				return
			}
		case "QUIT":
			reply(221, "bye")
			return
		default:
			if !reply(502, "command not implemented") {
				return
			}
		}
	}
}

// readLine reads one CRLF-terminated command line.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readData reads the DATA body up to the lone-dot terminator,
// un-stuffing leading dots per RFC 5321 §4.5.2.
func readData(r *bufio.Reader, limit int) ([]byte, error) {
	var b strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "." {
			return []byte(b.String()), nil
		}
		if strings.HasPrefix(trimmed, ".") {
			trimmed = trimmed[1:]
		}
		if b.Len()+len(trimmed)+2 > limit {
			// Drain to the terminator so the session can continue, then
			// report the overflow.
			for {
				l2, err := r.ReadString('\n')
				if err != nil || strings.TrimRight(l2, "\r\n") == "." {
					break
				}
			}
			return nil, errors.New("smtp: message exceeds size limit")
		}
		b.WriteString(trimmed)
		b.WriteString("\r\n")
	}
}

// splitVerb separates "MAIL FROM:<a@b>" into ("MAIL", "FROM:<a@b>").
func splitVerb(line string) (verb, arg string) {
	line = strings.TrimSpace(line)
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}

// parsePath extracts the address from "FROM:<a@b>" / "TO:<a@b>".
// An empty reverse-path ("FROM:<>", used for bounces) is allowed.
func parsePath(arg, keyword string) (string, error) {
	upper := strings.ToUpper(arg)
	prefix := keyword + ":"
	if !strings.HasPrefix(upper, prefix) {
		return "", fmt.Errorf("expected %s:<address>", keyword)
	}
	rest := strings.TrimSpace(arg[len(prefix):])
	// Drop ESMTP parameters after the path.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	if !strings.HasPrefix(rest, "<") || !strings.HasSuffix(rest, ">") {
		return "", errors.New("address must be enclosed in <>")
	}
	addr := rest[1 : len(rest)-1]
	if addr != "" && !strings.Contains(addr, "@") {
		return "", errors.New("address must contain @")
	}
	return addr, nil
}
