package smtp

import (
	"bufio"
	"fmt"
	"net"
	netsmtp "net/smtp"
	"strings"
	"sync"
	"testing"
	"time"
)

type capture struct {
	mu   sync.Mutex
	from string
	to   []string
	data []byte
	errs int
}

func (c *capture) handler(from string, to []string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.from, c.to, c.data = from, append([]string(nil), to...), append([]byte(nil), data...)
	return nil
}

// startServer launches a server on a random localhost port.
func startServer(t *testing.T, s *Server) (addr string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

func TestDeliveryViaStdlibClient(t *testing.T) {
	// Interop check: Go's own net/smtp client must be able to deliver.
	var c capture
	s := &Server{Hostname: "diy.example.com", Handler: c.handler}
	addr := startServer(t, s)

	msg := []byte("Subject: test\r\n\r\nHello from the stdlib client.\r\n")
	err := netsmtp.SendMail(addr, nil, "bob@remote.net",
		[]string{"alice@example.com", "carol@example.com"}, msg)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.from != "bob@remote.net" {
		t.Fatalf("from = %q", c.from)
	}
	if len(c.to) != 2 || c.to[0] != "alice@example.com" {
		t.Fatalf("to = %v", c.to)
	}
	if !strings.Contains(string(c.data), "Hello from the stdlib client.") {
		t.Fatalf("data = %q", c.data)
	}
}

// dialScript runs a raw SMTP dialogue, returning each reply line.
type scriptConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialScript(t *testing.T, addr string) *scriptConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &scriptConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (sc *scriptConn) expect(prefix string) string {
	sc.t.Helper()
	for {
		line, err := sc.r.ReadString('\n')
		if err != nil {
			sc.t.Fatalf("reading reply: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		// Skip EHLO continuation lines like "250-SIZE".
		if len(line) >= 4 && line[3] == '-' {
			continue
		}
		if !strings.HasPrefix(line, prefix) {
			sc.t.Fatalf("reply %q, want prefix %q", line, prefix)
		}
		return line
	}
}

func (sc *scriptConn) send(line string) {
	sc.t.Helper()
	if _, err := fmt.Fprintf(sc.conn, "%s\r\n", line); err != nil {
		sc.t.Fatal(err)
	}
}

func TestCommandSequencing(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler})
	sc := dialScript(t, addr)
	sc.expect("220")

	// MAIL before HELO is rejected.
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("503")
	sc.send("HELO client.example")
	sc.expect("250")
	// RCPT before MAIL is rejected.
	sc.send("RCPT TO:<x@y.z>")
	sc.expect("503")
	// DATA before RCPT is rejected.
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("250")
	sc.send("DATA")
	sc.expect("503")
	sc.send("QUIT")
	sc.expect("221")
}

func TestDotStuffing(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler})
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("EHLO x")
	sc.expect("250")
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("250")
	sc.send("RCPT TO:<x@y.z>")
	sc.expect("250")
	sc.send("DATA")
	sc.expect("354")
	sc.send("..a line starting with a dot")
	sc.send("normal line")
	sc.send(".")
	sc.expect("250")

	c.mu.Lock()
	defer c.mu.Unlock()
	if !strings.HasPrefix(string(c.data), ".a line starting with a dot\r\n") {
		t.Fatalf("dot not unstuffed: %q", c.data)
	}
}

func TestRSETClearsTransaction(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler})
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("HELO x")
	sc.expect("250")
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("250")
	sc.send("RSET")
	sc.expect("250")
	// After RSET the transaction must restart from MAIL.
	sc.send("RCPT TO:<x@y.z>")
	sc.expect("503")
}

func TestBadAddressSyntax(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler})
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("HELO x")
	sc.expect("250")
	sc.send("MAIL FROM:a@b.c") // missing <>
	sc.expect("501")
	sc.send("MAIL FROM:<no-at-sign>")
	sc.expect("501")
	// Null reverse path (bounces) is legal.
	sc.send("MAIL FROM:<>")
	sc.expect("250")
}

func TestUnknownCommand(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler})
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("EXPN list")
	sc.expect("502")
	sc.send("NOOP")
	sc.expect("250")
	sc.send("VRFY someone")
	sc.expect("252")
}

func TestHandlerErrorGivesTransientFailure(t *testing.T) {
	s := &Server{Handler: func(from string, to []string, data []byte) error {
		return fmt.Errorf("disk full")
	}}
	addr := startServer(t, s)
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("HELO x")
	sc.expect("250")
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("250")
	sc.send("RCPT TO:<x@y.z>")
	sc.expect("250")
	sc.send("DATA")
	sc.expect("354")
	sc.send("body")
	sc.send(".")
	sc.expect("451")
}

func TestSizeLimit(t *testing.T) {
	var c capture
	addr := startServer(t, &Server{Handler: c.handler, MaxMessageBytes: 64})
	sc := dialScript(t, addr)
	sc.expect("220")
	sc.send("HELO x")
	sc.expect("250")
	sc.send("MAIL FROM:<a@b.c>")
	sc.expect("250")
	sc.send("RCPT TO:<x@y.z>")
	sc.expect("250")
	sc.send("DATA")
	sc.expect("354")
	sc.send(strings.Repeat("A", 200))
	sc.send(".")
	sc.expect("552")
}

func TestServeRequiresHandler(t *testing.T) {
	s := &Server{}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := s.Serve(l); err == nil {
		t.Fatal("Serve without handler succeeded")
	}
}

func TestCloseStopsServer(t *testing.T) {
	var c capture
	s := &Server{Handler: c.handler}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParsePath(t *testing.T) {
	tests := []struct {
		arg, keyword, want string
		ok                 bool
	}{
		{"FROM:<a@b.c>", "FROM", "a@b.c", true},
		{"from:<a@b.c>", "FROM", "a@b.c", true},
		{"FROM:<>", "FROM", "", true},
		{"FROM:<a@b.c> SIZE=100", "FROM", "a@b.c", true},
		{"TO:<x@y.z>", "TO", "x@y.z", true},
		{"FROM:a@b.c", "FROM", "", false},
		{"FROM:<nodomain>", "FROM", "", false},
		{"TO:<a@b.c>", "FROM", "", false},
	}
	for _, tt := range tests {
		got, err := parsePath(tt.arg, tt.keyword)
		if tt.ok != (err == nil) {
			t.Errorf("parsePath(%q, %q) err=%v, want ok=%v", tt.arg, tt.keyword, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("parsePath(%q, %q) = %q, want %q", tt.arg, tt.keyword, got, tt.want)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	var mu sync.Mutex
	count := 0
	s := &Server{Handler: func(from string, to []string, data []byte) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	}}
	addr := startServer(t, s)
	const sessions = 10
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("Subject: %d\r\n\r\nbody\r\n", n))
			if err := netsmtp.SendMail(addr, nil, "a@b.c", []string{"x@y.z"}, msg); err != nil {
				t.Errorf("session %d: %v", n, err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != sessions {
		t.Fatalf("delivered %d, want %d", count, sessions)
	}
}
