package smtp

import "testing"

// FuzzParsePath checks the address parser never panics and that
// accepted reverse-paths are well-formed.
func FuzzParsePath(f *testing.F) {
	f.Add("FROM:<a@b.c>")
	f.Add("FROM:<>")
	f.Add("TO:<x@y.z> SIZE=100")
	f.Add("FROM:a@b.c")
	f.Add("")
	f.Add("FROM:<@@@>")
	f.Fuzz(func(t *testing.T, arg string) {
		addr, err := parsePath(arg, "FROM")
		if err != nil {
			return
		}
		if addr != "" {
			found := false
			for _, r := range addr {
				if r == '@' {
					found = true
				}
			}
			if !found {
				t.Fatalf("accepted address %q without @", addr)
			}
		}
	})
}
