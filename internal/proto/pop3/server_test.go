package pop3

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// memDrop is an in-memory maildrop for protocol tests.
type memDrop struct {
	mu   sync.Mutex
	msgs map[int][]byte
}

func newMemDrop(msgs ...string) *memDrop {
	d := &memDrop{msgs: make(map[int][]byte)}
	for i, m := range msgs {
		d.msgs[i+1] = []byte(m)
	}
	return d
}

func (d *memDrop) Stat() (int, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	size := 0
	for _, m := range d.msgs {
		size += len(m)
	}
	return len(d.msgs), size, nil
}

func (d *memDrop) List(n int) (map[int]int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]int)
	for num, m := range d.msgs {
		if n == 0 || n == num {
			out[num] = len(m)
		}
	}
	return out, nil
}

func (d *memDrop) Retr(n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.msgs[n]
	if !ok {
		return nil, errors.New("no such message")
	}
	return m, nil
}

func (d *memDrop) Dele(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.msgs, n)
	return nil
}

func startServer(t *testing.T, drop *memDrop) string {
	t.Helper()
	s := &Server{
		Hostname: "mail.diy.example",
		Auth: func(user, pass string) (Maildrop, error) {
			if user != "casey" || pass != "hunter2" {
				return nil, errors.New("bad credentials")
			}
			return drop, nil
		},
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

type script struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *script {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &script{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (s *script) line() string {
	s.t.Helper()
	line, err := s.r.ReadString('\n')
	if err != nil {
		s.t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (s *script) expectOK() string {
	s.t.Helper()
	line := s.line()
	if !strings.HasPrefix(line, "+OK") {
		s.t.Fatalf("got %q, want +OK", line)
	}
	return line
}

func (s *script) expectErr() {
	s.t.Helper()
	line := s.line()
	if !strings.HasPrefix(line, "-ERR") {
		s.t.Fatalf("got %q, want -ERR", line)
	}
}

func (s *script) send(line string) {
	s.t.Helper()
	if _, err := fmt.Fprintf(s.conn, "%s\r\n", line); err != nil {
		s.t.Fatal(err)
	}
}

func (s *script) login() {
	s.t.Helper()
	s.expectOK()
	s.send("USER casey")
	s.expectOK()
	s.send("PASS hunter2")
	s.expectOK()
}

func TestStatListRetr(t *testing.T) {
	drop := newMemDrop("Subject: a\r\n\r\nbody-a\r\n", "Subject: b\r\n\r\nbody-b\r\n")
	sc := dial(t, startServer(t, drop))
	sc.login()

	sc.send("STAT")
	if line := sc.expectOK(); !strings.Contains(line, "2 ") {
		t.Fatalf("STAT = %q", line)
	}
	sc.send("LIST")
	sc.expectOK()
	var listing []string
	for {
		l := sc.line()
		if l == "." {
			break
		}
		listing = append(listing, l)
	}
	if len(listing) != 2 || !strings.HasPrefix(listing[0], "1 ") {
		t.Fatalf("LIST = %v", listing)
	}
	sc.send("LIST 2")
	sc.expectOK()
	sc.send("LIST 99")
	sc.expectErr()

	sc.send("RETR 1")
	sc.expectOK()
	var body []string
	for {
		l := sc.line()
		if l == "." {
			break
		}
		body = append(body, l)
	}
	if !strings.Contains(strings.Join(body, "\n"), "body-a") {
		t.Fatalf("RETR body = %v", body)
	}
	sc.send("QUIT")
	sc.expectOK()
}

func TestAuthentication(t *testing.T) {
	sc := dial(t, startServer(t, newMemDrop()))
	sc.expectOK()
	// PASS before USER.
	sc.send("PASS x")
	sc.expectErr()
	// Wrong password.
	sc.send("USER casey")
	sc.expectOK()
	sc.send("PASS wrong")
	sc.expectErr()
	// Commands before auth.
	sc.send("STAT")
	sc.expectErr()
	sc.send("RETR 1")
	sc.expectErr()
	// Correct login still possible.
	sc.send("USER casey")
	sc.expectOK()
	sc.send("PASS hunter2")
	sc.expectOK()
	sc.send("STAT")
	sc.expectOK()
}

func TestDeleAppliedAtQuit(t *testing.T) {
	drop := newMemDrop("one", "two")
	addr := startServer(t, drop)
	sc := dial(t, addr)
	sc.login()
	sc.send("DELE 1")
	sc.expectOK()
	// Deleted messages vanish from the session view...
	sc.send("RETR 1")
	sc.expectErr()
	sc.send("DELE 1")
	sc.expectErr()
	// ...but survive until QUIT if RSET.
	sc.send("RSET")
	sc.expectOK()
	sc.send("RETR 1")
	sc.expectOK()
	for sc.line() != "." {
	}
	// Delete again and QUIT: now it is applied.
	sc.send("DELE 1")
	sc.expectOK()
	sc.send("QUIT")
	sc.expectOK()

	if n, _, _ := drop.Stat(); n != 1 {
		t.Fatalf("maildrop has %d messages after QUIT, want 1", n)
	}
}

func TestDotStuffingOnRetr(t *testing.T) {
	drop := newMemDrop(".leading dot line\r\nnormal\r\n")
	sc := dial(t, startServer(t, drop))
	sc.login()
	sc.send("RETR 1")
	sc.expectOK()
	first := sc.line()
	if first != "..leading dot line" {
		t.Fatalf("dot not stuffed: %q", first)
	}
	for sc.line() != "." {
	}
}

func TestUnknownCommandAndNoop(t *testing.T) {
	sc := dial(t, startServer(t, newMemDrop()))
	sc.login()
	sc.send("XFROB")
	sc.expectErr()
	sc.send("NOOP")
	sc.expectOK()
}

func TestServeRequiresAuth(t *testing.T) {
	s := &Server{}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := s.Serve(l); err == nil {
		t.Fatal("Serve without Authenticator succeeded")
	}
}

func TestCloseStopsServer(t *testing.T) {
	s := &Server{Auth: func(u, p string) (Maildrop, error) { return newMemDrop(), nil }}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err != ErrServerClosed {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop")
	}
}

// errDrop fails every operation, covering the -ERR plumbing.
type errDrop struct{}

func (errDrop) Stat() (int, int, error)       { return 0, 0, errors.New("backend down") }
func (errDrop) List(int) (map[int]int, error) { return nil, errors.New("backend down") }
func (errDrop) Retr(int) ([]byte, error)      { return nil, errors.New("backend down") }
func (errDrop) Dele(int) error                { return errors.New("backend down") }

func TestBackendErrorsSurfaceAsERR(t *testing.T) {
	s := &Server{Auth: func(u, p string) (Maildrop, error) { return errDrop{}, nil }}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })

	sc := dial(t, l.Addr().String())
	sc.expectOK()
	sc.send("USER x")
	sc.expectOK()
	sc.send("PASS y")
	sc.expectOK()
	sc.send("STAT")
	sc.expectErr()
	sc.send("LIST")
	sc.expectErr()
	sc.send("RETR 1")
	sc.expectErr()
	sc.send("LIST abc")
	sc.expectErr()
	sc.send("DELE -1")
	sc.expectErr()
	sc.send("RETR zero")
	sc.expectErr()
	sc.send("QUIT")
	sc.expectOK()
}
