// Package pop3 implements a minimal RFC 1939 POP3 server over real
// TCP. Together with internal/proto/smtp it completes the standard
// mail path for a DIY mailbox: mail arrives over SMTP and is retrieved
// over POP3, with the DIY deployment in between holding only
// ciphertext. The examples bridge RETR/DELE to the email app's
// fetch/delete operations.
package pop3

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Maildrop is the backing mailbox a session serves. Implementations
// bridge to a DIY email deployment.
type Maildrop interface {
	// Stat returns message count and total size in bytes.
	Stat() (count, size int, err error)
	// List returns the size of message n (1-based), or all sizes when
	// n == 0.
	List(n int) (map[int]int, error)
	// Retr returns message n's full RFC 822 text.
	Retr(n int) ([]byte, error)
	// Dele marks message n deleted (applied at QUIT).
	Dele(n int) error
}

// Authenticator validates USER/PASS and returns the user's maildrop.
type Authenticator func(user, pass string) (Maildrop, error)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("pop3: server closed")

// Server is a POP3 server bound to a listener.
type Server struct {
	// Hostname is announced in the greeting.
	Hostname string
	// Auth validates credentials. Required.
	Auth Authenticator
	// ReadTimeout bounds each command read (default 2 minutes).
	ReadTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error {
	if s.Auth == nil {
		return errors.New("pop3: server requires an Authenticator")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("pop3: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.session(conn)
	}
}

// Close stops the listener and active sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

func (s *Server) hostname() string {
	if s.Hostname != "" {
		return s.Hostname
	}
	return "diy.invalid"
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 2 * time.Minute
}

func (s *Server) session(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	ok := func(format string, args ...any) bool {
		fmt.Fprintf(w, "+OK "+format+"\r\n", args...)
		return w.Flush() == nil
	}
	fail := func(format string, args ...any) bool {
		fmt.Fprintf(w, "-ERR "+format+"\r\n", args...)
		return w.Flush() == nil
	}
	if !ok("%s POP3 server ready", s.hostname()) {
		return
	}

	var user string
	var drop Maildrop
	deleted := make(map[int]bool)

	for {
		conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		verb, arg := splitVerb(strings.TrimRight(line, "\r\n"))
		switch verb {
		case "USER":
			user = arg
			if !ok("send PASS") {
				return
			}
		case "PASS":
			if user == "" {
				if !fail("send USER first") {
					return
				}
				continue
			}
			d, err := s.Auth(user, arg)
			if err != nil {
				user = ""
				if !fail("authentication failed") {
					return
				}
				continue
			}
			drop = d
			if !ok("maildrop locked and ready") {
				return
			}
		case "STAT":
			if drop == nil {
				if !fail("not authenticated") {
					return
				}
				continue
			}
			count, size, err := drop.Stat()
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			if !ok("%d %d", count, size) {
				return
			}
		case "LIST":
			if drop == nil {
				if !fail("not authenticated") {
					return
				}
				continue
			}
			n := 0
			if arg != "" {
				n, err = strconv.Atoi(arg)
				if err != nil || n <= 0 {
					if !fail("bad message number") {
						return
					}
					continue
				}
			}
			sizes, err := drop.List(n)
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			if n > 0 {
				size, present := sizes[n]
				if !present || deleted[n] {
					if !fail("no such message") {
						return
					}
					continue
				}
				if !ok("%d %d", n, size) {
					return
				}
				continue
			}
			nums := make([]int, 0, len(sizes))
			for num := range sizes {
				if !deleted[num] {
					nums = append(nums, num)
				}
			}
			sort.Ints(nums)
			fmt.Fprintf(w, "+OK %d messages\r\n", len(nums))
			for _, num := range nums {
				fmt.Fprintf(w, "%d %d\r\n", num, sizes[num])
			}
			fmt.Fprintf(w, ".\r\n")
			if w.Flush() != nil {
				return
			}
		case "RETR":
			if drop == nil {
				if !fail("not authenticated") {
					return
				}
				continue
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 || deleted[n] {
				if !fail("no such message") {
					return
				}
				continue
			}
			body, err := drop.Retr(n)
			if err != nil {
				if !fail("no such message") {
					return
				}
				continue
			}
			fmt.Fprintf(w, "+OK %d octets\r\n", len(body))
			writeDotStuffed(w, body)
			fmt.Fprintf(w, ".\r\n")
			if w.Flush() != nil {
				return
			}
		case "DELE":
			if drop == nil {
				if !fail("not authenticated") {
					return
				}
				continue
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 || deleted[n] {
				if !fail("no such message") {
					return
				}
				continue
			}
			deleted[n] = true
			if !ok("message %d deleted", n) {
				return
			}
		case "RSET":
			deleted = make(map[int]bool)
			if !ok("reset") {
				return
			}
		case "NOOP":
			if !ok("") {
				return
			}
		case "QUIT":
			// Apply deletions on update state, per RFC 1939.
			if drop != nil {
				for n := range deleted {
					drop.Dele(n)
				}
			}
			ok("bye")
			return
		default:
			if !fail("unknown command %q", verb) {
				return
			}
		}
	}
}

// writeDotStuffed emits the body with leading dots doubled, line
// endings normalized to CRLF.
func writeDotStuffed(w *bufio.Writer, body []byte) {
	for _, line := range strings.Split(strings.ReplaceAll(string(body), "\r\n", "\n"), "\n") {
		if strings.HasPrefix(line, ".") {
			w.WriteString(".")
		}
		w.WriteString(line)
		w.WriteString("\r\n")
	}
}

func splitVerb(line string) (verb, arg string) {
	line = strings.TrimSpace(line)
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}
