package xmpp

import "testing"

// FuzzDecode checks the stanza decoder never panics and that anything
// it accepts can be re-encoded.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`<message from="a@b" type="chat"><body>hi</body></message>`))
	f.Add([]byte(`<presence type="unavailable"/>`))
	f.Add([]byte(`<iq type="set" id="1"><session/></iq>`))
	f.Add([]byte(`<message><body>&lt;tricky&gt;</body></message>`))
	f.Add([]byte(``))
	f.Add([]byte(`<message`))
	f.Add([]byte(`<weird attr="<">`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Encode(st); err != nil {
			t.Fatalf("decoded stanza failed to re-encode: %v", err)
		}
	})
}

// FuzzParseJID checks the JID parser never panics and that accepted
// JIDs round-trip through String.
func FuzzParseJID(f *testing.F) {
	f.Add("alice@example.com/phone")
	f.Add("example.com")
	f.Add("@@//")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		j, err := ParseJID(s)
		if err != nil {
			return
		}
		again, err := ParseJID(j.String())
		if err != nil || again != j {
			t.Fatalf("accepted JID %q did not round-trip: %v", s, err)
		}
	})
}
