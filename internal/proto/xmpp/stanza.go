package xmpp

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
)

// Stanza kinds.
const (
	KindMessage  = "message"
	KindPresence = "presence"
	KindIQ       = "iq"
)

// Message is a chat message stanza.
type Message struct {
	XMLName xml.Name `xml:"message"`
	From    string   `xml:"from,attr,omitempty"`
	To      string   `xml:"to,attr,omitempty"`
	Type    string   `xml:"type,attr,omitempty"` // "chat", "groupchat"
	ID      string   `xml:"id,attr,omitempty"`
	Body    string   `xml:"body,omitempty"`
}

// Presence announces availability ("", "unavailable").
type Presence struct {
	XMLName xml.Name `xml:"presence"`
	From    string   `xml:"from,attr,omitempty"`
	To      string   `xml:"to,attr,omitempty"`
	Type    string   `xml:"type,attr,omitempty"`
	Status  string   `xml:"status,omitempty"`
}

// IQ is an info/query stanza; the prototype uses it for session
// initiation and resource binding.
type IQ struct {
	XMLName xml.Name `xml:"iq"`
	From    string   `xml:"from,attr,omitempty"`
	To      string   `xml:"to,attr,omitempty"`
	Type    string   `xml:"type,attr"` // "get", "set", "result", "error"
	ID      string   `xml:"id,attr"`
	Bind    *Bind    `xml:"bind,omitempty"`
	Session *Session `xml:"session,omitempty"`
	Error   *Error   `xml:"error,omitempty"`
}

// Bind is the resource-binding IQ payload.
type Bind struct {
	XMLName  xml.Name `xml:"bind"`
	Resource string   `xml:"resource,omitempty"`
	JID      string   `xml:"jid,omitempty"`
}

// Session is the session-initiation IQ payload.
type Session struct {
	XMLName xml.Name `xml:"session"`
}

// Error is a stanza error.
type Error struct {
	XMLName xml.Name `xml:"error"`
	Type    string   `xml:"type,attr,omitempty"`
	Text    string   `xml:"text,omitempty"`
}

// ErrUnknownStanza reports an unrecognized element.
var ErrUnknownStanza = errors.New("xmpp: unknown stanza")

// Encode serializes a stanza (Message, Presence or IQ) to XML.
func Encode(stanza any) ([]byte, error) {
	switch stanza.(type) {
	case *Message, *Presence, *IQ, Message, Presence, IQ:
		return xml.Marshal(stanza)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownStanza, stanza)
	}
}

// Decode parses a single stanza, returning *Message, *Presence or *IQ.
func Decode(data []byte) (any, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmpp: decoding stanza: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case KindMessage:
			var m Message
			if err := dec.DecodeElement(&m, &start); err != nil {
				return nil, fmt.Errorf("xmpp: decoding message: %w", err)
			}
			return &m, nil
		case KindPresence:
			var p Presence
			if err := dec.DecodeElement(&p, &start); err != nil {
				return nil, fmt.Errorf("xmpp: decoding presence: %w", err)
			}
			return &p, nil
		case KindIQ:
			var iq IQ
			if err := dec.DecodeElement(&iq, &start); err != nil {
				return nil, fmt.Errorf("xmpp: decoding iq: %w", err)
			}
			return &iq, nil
		default:
			return nil, fmt.Errorf("%w: <%s>", ErrUnknownStanza, start.Name.Local)
		}
	}
}

// StreamHeader returns the opening <stream:stream> element for a
// client-to-server stream. The HTTPS tunnel sends it once per session.
func StreamHeader(from, to, id string) string {
	return fmt.Sprintf(
		`<stream:stream from=%q to=%q id=%q version="1.0" xmlns="jabber:client" xmlns:stream="http://etherx.jabber.org/streams">`,
		from, to, id)
}

// StreamClose returns the stream-closing tag.
func StreamClose() string { return `</stream:stream>` }
