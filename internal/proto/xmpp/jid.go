// Package xmpp implements the subset of the XMPP protocol the paper's
// chat prototype uses: JIDs, the message/presence/iq stanza types,
// stream framing, and the HTTPS tunneling encoding the prototype
// adopts because "Lambda only supports HTTP(S)-based endpoints".
package xmpp

import (
	"errors"
	"fmt"
	"strings"
)

// JID is an XMPP address: local@domain/resource.
type JID struct {
	Local    string
	Domain   string
	Resource string
}

// ErrBadJID reports an unparsable address.
var ErrBadJID = errors.New("xmpp: malformed JID")

// ParseJID parses "local@domain/resource". The resource is optional;
// the local part is optional for domain-only addresses.
func ParseJID(s string) (JID, error) {
	var j JID
	if s == "" {
		return j, fmt.Errorf("%w: empty", ErrBadJID)
	}
	rest := s
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		j.Resource = rest[i+1:]
		rest = rest[:i]
		if j.Resource == "" {
			return JID{}, fmt.Errorf("%w: empty resource in %q", ErrBadJID, s)
		}
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		j.Local = rest[:i]
		rest = rest[i+1:]
		if j.Local == "" {
			return JID{}, fmt.Errorf("%w: empty local part in %q", ErrBadJID, s)
		}
	}
	if rest == "" || strings.ContainsAny(rest, "@/") {
		return JID{}, fmt.Errorf("%w: bad domain in %q", ErrBadJID, s)
	}
	j.Domain = rest
	return j, nil
}

// String formats the JID canonically.
func (j JID) String() string {
	var sb strings.Builder
	if j.Local != "" {
		sb.WriteString(j.Local)
		sb.WriteByte('@')
	}
	sb.WriteString(j.Domain)
	if j.Resource != "" {
		sb.WriteByte('/')
		sb.WriteString(j.Resource)
	}
	return sb.String()
}

// Bare returns the JID without its resource.
func (j JID) Bare() JID { return JID{Local: j.Local, Domain: j.Domain} }

// IsZero reports whether the JID is empty.
func (j JID) IsZero() bool { return j == JID{} }
