package xmpp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseJID(t *testing.T) {
	tests := []struct {
		in   string
		want JID
		ok   bool
	}{
		{"alice@example.com", JID{Local: "alice", Domain: "example.com"}, true},
		{"alice@example.com/phone", JID{Local: "alice", Domain: "example.com", Resource: "phone"}, true},
		{"example.com", JID{Domain: "example.com"}, true},
		{"example.com/res", JID{Domain: "example.com", Resource: "res"}, true},
		{"", JID{}, false},
		{"@example.com", JID{}, false},
		{"alice@", JID{}, false},
		{"alice@example.com/", JID{}, false},
		{"a@b@c", JID{}, false},
	}
	for _, tt := range tests {
		got, err := ParseJID(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseJID(%q) error = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseJID(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
		if !tt.ok && !errors.Is(err, ErrBadJID) {
			t.Errorf("ParseJID(%q) error %v not ErrBadJID", tt.in, err)
		}
	}
}

func TestJIDStringRoundTrip(t *testing.T) {
	for _, s := range []string{"alice@example.com", "alice@example.com/phone", "example.com"} {
		j, err := ParseJID(s)
		if err != nil {
			t.Fatal(err)
		}
		if j.String() != s {
			t.Errorf("round trip %q -> %q", s, j.String())
		}
	}
}

func TestJIDBare(t *testing.T) {
	j, _ := ParseJID("alice@example.com/phone")
	if got := j.Bare().String(); got != "alice@example.com" {
		t.Fatalf("Bare() = %q", got)
	}
	if j.IsZero() || (JID{}).IsZero() != true {
		t.Fatal("IsZero misbehaves")
	}
}

func TestJIDRoundTripProperty(t *testing.T) {
	// Property: any JID built from clean parts parses back to itself.
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r == '@' || r == '/' || r < ' ' {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return "x"
		}
		return s
	}
	f := func(local, domain, res string) bool {
		j := JID{Local: clean(local), Domain: clean(domain), Resource: clean(res)}
		got, err := ParseJID(j.String())
		return err == nil && got == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeMessage(t *testing.T) {
	m := &Message{
		From: "alice@diy.chat/phone",
		To:   "room@diy.chat",
		Type: "groupchat",
		ID:   "msg-1",
		Body: "hello <world> & friends",
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	gm, ok := got.(*Message)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	gm.XMLName = m.XMLName // xml.Name is set by the decoder only
	if *gm != *m {
		t.Fatalf("round trip: %+v != %+v", gm, m)
	}
}

func TestEncodeDecodePresence(t *testing.T) {
	p := &Presence{From: "alice@diy.chat", Type: "unavailable", Status: "gone"}
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.(*Presence)
	if gp.From != p.From || gp.Type != p.Type || gp.Status != p.Status {
		t.Fatalf("round trip: %+v", gp)
	}
}

func TestEncodeDecodeIQSession(t *testing.T) {
	// Session initiation, the prototype's first exchange.
	iq := &IQ{Type: "set", ID: "sess-1", Session: &Session{}}
	data, err := Encode(iq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.(*IQ)
	if gi.Type != "set" || gi.ID != "sess-1" || gi.Session == nil {
		t.Fatalf("round trip: %+v", gi)
	}
}

func TestEncodeDecodeIQBind(t *testing.T) {
	iq := &IQ{Type: "result", ID: "bind-1", Bind: &Bind{JID: "alice@diy.chat/phone"}}
	data, _ := Encode(iq)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.(*IQ)
	if gi.Bind == nil || gi.Bind.JID != "alice@diy.chat/phone" {
		t.Fatalf("bind lost: %+v", gi)
	}
}

func TestDecodeIQError(t *testing.T) {
	iq := &IQ{Type: "error", ID: "x", Error: &Error{Type: "auth", Text: "not a member"}}
	data, _ := Encode(iq)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.(*IQ)
	if gi.Error == nil || gi.Error.Text != "not a member" {
		t.Fatalf("error payload lost: %+v", gi)
	}
}

func TestDecodeUnknownStanza(t *testing.T) {
	if _, err := Decode([]byte("<weird/>")); !errors.Is(err, ErrUnknownStanza) {
		t.Fatalf("got %v, want ErrUnknownStanza", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, in := range []string{"", "not xml", "<message", "<>"} {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) succeeded", in)
		}
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(42); !errors.Is(err, ErrUnknownStanza) {
		t.Fatalf("got %v, want ErrUnknownStanza", err)
	}
}

func TestStreamFraming(t *testing.T) {
	h := StreamHeader("alice@diy.chat", "diy.chat", "s1")
	if !strings.Contains(h, `to="diy.chat"`) || !strings.HasPrefix(h, "<stream:stream") {
		t.Fatalf("header = %q", h)
	}
	if StreamClose() != "</stream:stream>" {
		t.Fatalf("close = %q", StreamClose())
	}
}

func TestMessageBodyEscaping(t *testing.T) {
	// XML metacharacters in the body must survive the round trip and
	// must not appear raw in the encoding (injection resistance).
	m := &Message{Body: `</message><message from="evil@x">pwned`}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `<message from="evil@x">`) {
		t.Fatal("stanza injection not escaped")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*Message).Body != m.Body {
		t.Fatal("escaped body did not round trip")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(body, id string) bool {
		// XML cannot carry arbitrary control bytes; restrict to valid
		// printable input as real chat clients do.
		clean := func(s string) string {
			return strings.Map(func(r rune) rune {
				if r < ' ' || r == 0xFFFD {
					return -1
				}
				return r
			}, s)
		}
		m := &Message{Body: clean(body), ID: clean(id), Type: "chat"}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		gm := got.(*Message)
		return gm.Body == m.Body && gm.ID == m.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
