package video

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/ec2"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/pricing"
)

func newCall(t *testing.T) (*core.Cloud, *Call) {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	call, err := StartCall(cloud, "alice", "", cloud.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	return cloud, call
}

func TestFrameRelayFanOut(t *testing.T) {
	_, call := newCall(t)
	for _, p := range []string{"alice", "bob", "carol"} {
		if err := call.Join(p); err != nil {
			t.Fatal(err)
		}
	}
	frame := []byte("video-frame-0001")
	ctx := &sim.Context{Cursor: sim.NewCursor(clock.Epoch)}
	if err := call.SendFrame(ctx, "alice", frame); err != nil {
		t.Fatal(err)
	}
	if ctx.Cursor.Elapsed() == 0 {
		t.Fatal("frame relay consumed no simulated time")
	}
	for _, p := range []string{"bob", "carol"} {
		frames, err := call.RecvFrames(p)
		if err != nil || len(frames) != 1 || !bytes.Equal(frames[0], frame) {
			t.Fatalf("%s received %v, %v", p, frames, err)
		}
	}
	// The sender gets nothing back.
	own, _ := call.RecvFrames("alice")
	if len(own) != 0 {
		t.Fatal("sender received own frame")
	}
	in, out := call.TrafficBytes()
	if in != int64(len(frame)) || out != 2*int64(len(frame)) {
		t.Fatalf("traffic in=%d out=%d", in, out)
	}
}

func TestJoinLeaveSemantics(t *testing.T) {
	_, call := newCall(t)
	if err := call.Join("alice"); err != nil {
		t.Fatal(err)
	}
	if err := call.Join("alice"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup join: %v", err)
	}
	if err := call.SendFrame(nil, "stranger", []byte("x")); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("stranger send: %v", err)
	}
	if _, err := call.RecvFrames("stranger"); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("stranger recv: %v", err)
	}
	call.Leave("alice")
	if call.Participants() != 0 {
		t.Fatal("leave did not remove participant")
	}
}

func TestHourLongHDCallCostsElevenCents(t *testing.T) {
	// §6.1/§9: "a single hour-long HD call will cost roughly $0.11".
	book := pricing.Default2017()
	cost := CostOfCall(book, DefaultInstanceType, time.Hour, HDCallBandwidthMbps)
	if got := cost.RoundCents(); got != pricing.FromDollars(0.11) {
		t.Fatalf("hour-long HD call = %v, want $0.11", got)
	}
}

func TestSimulatedCallBilling(t *testing.T) {
	cloud, call := newCall(t)
	if err := call.Simulate(15*time.Minute, HDCallBandwidthMbps); err != nil {
		t.Fatal(err)
	}
	if err := call.End(cloud.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	// 15 minutes of t2.medium.
	if secs := cloud.Meter.Total(pricing.EC2Seconds); secs != 900 {
		t.Fatalf("billed %v VM seconds, want 900", secs)
	}
	// Half of 3 Mbps × 900 s = ~169 MB outbound.
	out := cloud.Meter.Total(pricing.TransferOutGB)
	if out < 0.16 || out > 0.18 {
		t.Fatalf("outbound transfer %v GB, want ≈0.169", out)
	}
	// The clock advanced with the call.
	if got := cloud.Clock.Now().Sub(clock.Epoch); got != 15*time.Minute {
		t.Fatalf("clock advanced %v", got)
	}
}

func TestEndSemantics(t *testing.T) {
	cloud, call := newCall(t)
	call.Join("alice")
	if err := call.End(cloud.Clock.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := call.End(cloud.Clock.Now()); !errors.Is(err, ErrEnded) {
		t.Fatalf("double end: %v", err)
	}
	if err := call.Join("bob"); !errors.Is(err, ErrEnded) {
		t.Fatalf("join after end: %v", err)
	}
	if err := call.SendFrame(nil, "alice", []byte("x")); !errors.Is(err, ErrEnded) {
		t.Fatalf("send after end: %v", err)
	}
	if err := call.Simulate(time.Minute, 1); !errors.Is(err, ErrEnded) {
		t.Fatalf("simulate after end: %v", err)
	}
	if cloud.EC2.Running(call.inst.ID) {
		t.Fatal("relay VM survived call end")
	}
}

func TestNoFailoverDuringOutage(t *testing.T) {
	cloud, call := newCall(t)
	call.Join("alice")
	call.Join("bob")
	cloud.Model.SetOutage(cloud.Region, true)
	err := call.SendFrame(nil, "alice", []byte("x"))
	if !errors.Is(err, ec2.ErrRegionDown) {
		t.Fatalf("send during outage: %v", err)
	}
}

func TestStartCallUnknownType(t *testing.T) {
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartCall(cloud, "alice", "t9.exotic", cloud.Clock.Now()); err == nil {
		t.Fatal("unknown instance type accepted")
	}
}

func TestRelayPing(t *testing.T) {
	cloud, call := newCall(t)
	out, err := cloud.EC2.Request(&sim.Context{Cursor: sim.NewCursor(clock.Epoch)}, call.inst.ID, "ping", nil)
	if err != nil || string(out) != "pong" {
		t.Fatalf("ping: %v %q", err, out)
	}
}
