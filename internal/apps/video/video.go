// Package video implements the paper's private video conferencing
// service (§6.1): "A video conferencing service is similar in design
// to a text-based chat service, but has stricter delay requirements
// and more demanding throughput requirements. ... Since Lambda does
// not support multiple connections yet, we use a t2.medium EC2
// instance (with 4GB of RAM), which is billed per second."
//
// A Call launches a relay VM, fans every participant's frames out to
// the other participants, and accounts per-second compute plus
// outbound transfer. Simulate models a steady call (the paper's
// 3 Mbps HD stream) without per-frame calls, for the cost analysis.
package video

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloudsim/ec2"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/pricing"
)

// HDCallBandwidthMbps is Skype's recommended bandwidth for HD video
// calls, the paper's sizing assumption.
const HDCallBandwidthMbps = 3.0

// DefaultInstanceType is the paper's relay host.
const DefaultInstanceType = "t2.medium"

// AppName labels metered usage.
const AppName = "video"

// Errors returned by calls.
var (
	ErrEnded          = errors.New("video: call has ended")
	ErrNotParticipant = errors.New("video: unknown participant")
	ErrDuplicate      = errors.New("video: participant already joined")
)

// Call is one private conference on a dedicated relay VM.
type Call struct {
	cloud *core.Cloud
	user  string
	inst  *ec2.Instance

	mu           sync.Mutex
	participants map[string][][]byte // name -> pending frames
	bytesIn      int64
	bytesOut     int64
	started      time.Time
	ended        bool
}

// StartCall launches a relay VM for the user at the given simulated
// instant.
func StartCall(cloud *core.Cloud, user, instanceType string, at time.Time) (*Call, error) {
	if instanceType == "" {
		instanceType = DefaultInstanceType
	}
	c := &Call{
		cloud:        cloud,
		user:         user,
		participants: make(map[string][][]byte),
		started:      at,
	}
	inst, err := cloud.EC2.Launch(instanceType, cloud.Region, AppName, c.relayHandler, at)
	if err != nil {
		return nil, fmt.Errorf("video: starting call: %w", err)
	}
	c.inst = inst
	return c, nil
}

// relayHandler is the code the VM runs; ops route through ec2.Request
// in frame-level mode.
func (c *Call) relayHandler(ctx *sim.Context, op string, body []byte) ([]byte, error) {
	switch op {
	case "ping":
		return []byte("pong"), nil
	default:
		return nil, fmt.Errorf("video: relay op %q not understood", op)
	}
}

// Join adds a participant.
func (c *Call) Join(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return ErrEnded
	}
	if _, dup := c.participants[name]; dup {
		return ErrDuplicate
	}
	c.participants[name] = nil
	return nil
}

// Leave removes a participant, dropping undelivered frames.
func (c *Call) Leave(name string) {
	c.mu.Lock()
	delete(c.participants, name)
	c.mu.Unlock()
}

// Participants reports who is on the call.
func (c *Call) Participants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.participants)
}

// SendFrame relays one media frame from a participant to everyone
// else. The relay region must be up — there is no failover, the
// paper's availability caveat for VM hosting.
func (c *Call) SendFrame(ctx *sim.Context, from string, frame []byte) error {
	if !c.cloud.Model.RegionUp(c.inst.Region) {
		return ec2.ErrRegionDown
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return ErrEnded
	}
	if _, ok := c.participants[from]; !ok {
		return fmt.Errorf("%w: %q", ErrNotParticipant, from)
	}
	c.bytesIn += int64(len(frame))
	for name := range c.participants {
		if name == from {
			continue
		}
		c.participants[name] = append(c.participants[name], append([]byte(nil), frame...))
		c.bytesOut += int64(len(frame))
	}
	if ctx != nil && c.cloud.Model != nil {
		ctx.Advance(c.cloud.Model.Sample(netsim.HopClientGateway)) // client-relay hop
	}
	return nil
}

// RecvFrames drains a participant's pending frames.
func (c *Call) RecvFrames(name string) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	frames, ok := c.participants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotParticipant, name)
	}
	c.participants[name] = nil
	return frames, nil
}

// Simulate models a steady call segment: every participant streams
// upstream at bandwidthMbps/participants... precisely, the relay
// carries bandwidthMbps of total traffic for the duration (the paper's
// convention: a "3 Mbps HD call"), split evenly between inbound and
// outbound. The cloud clock advances by the duration.
func (c *Call) Simulate(duration time.Duration, bandwidthMbps float64) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return ErrEnded
	}
	totalBytes := int64(bandwidthMbps / 8 * 1e6 * duration.Seconds())
	c.bytesIn += totalBytes / 2
	c.bytesOut += totalBytes / 2
	c.mu.Unlock()
	c.cloud.Clock.Advance(duration)
	return nil
}

// TrafficBytes reports the relay's inbound and outbound byte counts.
func (c *Call) TrafficBytes() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesIn, c.bytesOut
}

// End terminates the relay at the given instant, billing the VM's
// per-second compute and the outbound transfer.
func (c *Call) End(at time.Time) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return ErrEnded
	}
	c.ended = true
	out := c.bytesOut
	c.mu.Unlock()

	if err := c.cloud.EC2.Terminate(c.inst.ID, at); err != nil {
		return fmt.Errorf("video: ending call: %w", err)
	}
	c.cloud.EC2.MeterTransferOut(AppName, out)
	return nil
}

// CostOfCall computes the closed-form price of a call: instance
// seconds plus outbound transfer (half the call bandwidth), with no
// free-tier credit. Reproduces the paper's "a single hour-long HD call
// will cost roughly $0.11".
func CostOfCall(book *pricing.PriceBook, instanceType string, duration time.Duration, bandwidthMbps float64) pricing.Money {
	compute := book.EC2Hourly(instanceType).MulFloat(duration.Hours())
	outGB := bandwidthMbps / 2 / 8 * duration.Seconds() * 1e6 / 1e9
	transfer := book.TransferOutPerGB.MulFloat(outGB)
	return compute + transfer
}
