package filetransfer

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/crypto/sealedbox"
)

func newXfer(t *testing.T) (*core.Cloud, *core.Deployment) {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Install(cloud, "alice", App{})
	if err != nil {
		t.Fatal(err)
	}
	return cloud, d
}

func upload(t *testing.T, d *core.Deployment, name, to string, data []byte) {
	t.Helper()
	req, _ := json.Marshal(UploadRequest{Name: name, To: to, Data: data})
	resp, _, err := d.Invoke(d.ClientContext(), "upload", req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("upload: %v status %d %s", err, resp.Status, resp.Body)
	}
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	_, d := newXfer(t)
	payload := bytes.Repeat([]byte("media"), 100_000) // 500 KB
	upload(t, d, "vacation.mp4", "bob", payload)

	resp, stats, err := d.Invoke(d.ClientContext(), "download", []byte("vacation.mp4"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("download: %v status %d", err, resp.Status)
	}
	if !bytes.Equal(resp.Body, payload) {
		t.Fatal("download corrupted the payload")
	}
	// Buffering the file dominates the working set.
	if stats.PeakMemoryBytes < int64(len(payload)) {
		t.Fatalf("peak memory %d below payload size", stats.PeakMemoryBytes)
	}
}

func TestOfferNotification(t *testing.T) {
	cloud, d := newXfer(t)
	upload(t, d, "doc.pdf", "bob", []byte("contents"))

	// The recipient polls the offers queue and opens the notice with
	// the client-held data key.
	ctx := d.ClientContext()
	msgs, err := cloud.SQS.Receive(ctx, d.Queues[OffersQueue], 1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("offers delivered: %d", len(msgs))
	}
	if !envelope.IsSealed(msgs[0].Body) {
		t.Fatal("offer notice is plaintext")
	}
	key, err := cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := envelope.Open(key, msgs[0].Body, []byte("offer"))
	if err != nil {
		t.Fatal(err)
	}
	var offer Offer
	if err := json.Unmarshal(pt, &offer); err != nil {
		t.Fatal(err)
	}
	if offer.Name != "doc.pdf" || offer.To != "bob" || offer.From != "alice" || offer.Size != 8 {
		t.Fatalf("offer = %+v", offer)
	}
}

func TestDirectSealedFetch(t *testing.T) {
	// The "simultaneous" AirDrop path: the recipient's device reads
	// the sealed object straight from storage and opens it locally.
	cloud, d := newXfer(t)
	payload := []byte("direct download payload")
	upload(t, d, "direct.bin", "bob", payload)

	ctx := d.ClientContext()
	obj, err := cloud.S3.Get(ctx, d.Bucket, ObjectKey("direct.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !envelope.IsSealed(obj.Data) || bytes.Contains(obj.Data, payload) {
		t.Fatal("stored file not sealed")
	}
	key, err := cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := envelope.Open(key, obj.Data, []byte(ObjectKey("direct.bin")))
	if err != nil || !bytes.Equal(pt, payload) {
		t.Fatalf("direct fetch failed: %v", err)
	}
}

func TestList(t *testing.T) {
	_, d := newXfer(t)
	upload(t, d, "a.txt", "bob", []byte("a"))
	upload(t, d, "b.txt", "carol", []byte("bb"))
	resp, _, err := d.Invoke(d.ClientContext(), "list", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("list: %v status %d", err, resp.Status)
	}
	var offers []Offer
	if err := json.Unmarshal(resp.Body, &offers); err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 || offers[1].Name != "b.txt" || offers[1].Size != 2 {
		t.Fatalf("offers = %+v", offers)
	}
}

func TestSweepExpiresOldTransfers(t *testing.T) {
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Install(cloud, "alice", App{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	upload(t, d, "old.bin", "bob", []byte("old"))

	// Two hours later, a new upload arrives and a sweep runs.
	cloud.Clock.Advance(2 * time.Hour)
	upload(t, d, "fresh.bin", "bob", []byte("fresh"))
	resp, _, err := d.Invoke(d.ClientContext(), "sweep", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("sweep: %v status %d", err, resp.Status)
	}
	if string(resp.Body) != "1" {
		t.Fatalf("swept %q transfers, want 1", resp.Body)
	}
	// Old object is gone, fresh one remains.
	admin := &sim.Context{Principal: d.Role}
	if _, err := cloud.S3.Get(admin, d.Bucket, ObjectKey("old.bin")); err == nil {
		t.Fatal("expired transfer still stored")
	}
	if _, err := cloud.S3.Get(admin, d.Bucket, ObjectKey("fresh.bin")); err != nil {
		t.Fatal("fresh transfer swept")
	}
	respDl, _, _ := d.Invoke(d.ClientContext(), "download", []byte("old.bin"))
	if respDl.Status != 404 {
		t.Fatalf("expired download status %d", respDl.Status)
	}
}

func TestUploadValidation(t *testing.T) {
	_, d := newXfer(t)
	cases := []UploadRequest{
		{},                               // empty
		{Name: "x"},                      // no data
		{Name: "a/b", Data: []byte("x")}, // path traversal
	}
	for _, c := range cases {
		req, _ := json.Marshal(c)
		resp, _, _ := d.Invoke(d.ClientContext(), "upload", req)
		if resp.Status != 400 {
			t.Errorf("request %+v status %d, want 400", c, resp.Status)
		}
	}
	resp, _, _ := d.Invoke(d.ClientContext(), "upload", []byte("not json"))
	if resp.Status != 400 {
		t.Errorf("garbage request status %d", resp.Status)
	}
	resp, _, _ = d.Invoke(d.ClientContext(), "download", nil)
	if resp.Status != 400 {
		t.Errorf("empty download status %d", resp.Status)
	}
	resp, _, _ = d.Invoke(d.ClientContext(), "download", []byte("ghost.bin"))
	if resp.Status != 404 {
		t.Errorf("missing download status %d", resp.Status)
	}
}

func TestLargeFileRunsLongAndBillsAccordingly(t *testing.T) {
	// The Table 2 row models 2000 ms requests at 1 GB memory: a large
	// upload must bill multiple quanta.
	_, d := newXfer(t)
	payload := bytes.Repeat([]byte("x"), 20<<20) // 20 MB
	req, _ := json.Marshal(UploadRequest{Name: "big.iso", To: "bob", Data: payload})
	_, stats, err := d.Invoke(d.ClientContext(), "upload", req)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BilledTime < 500*time.Millisecond {
		t.Fatalf("20 MB upload billed only %v", stats.BilledTime)
	}
}

func TestExternalRecipientFlow(t *testing.T) {
	// The zero-credential AirDrop: the sender seals the file to the
	// recipient's public key and hands over a presigned link; the
	// recipient needs no cloud account at all.
	cloud, d := newXfer(t)
	pub, priv, err := sealedbox.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("for dana's eyes only")
	req, _ := json.Marshal(UploadRequest{
		Name: "secret.pdf", To: "dana@elsewhere.example",
		Data: payload, RecipientPub: pub.Bytes(),
	})
	if resp, _, err := d.Invoke(d.ClientContext(), "upload", req); err != nil || resp.Status != 200 {
		t.Fatalf("upload: %v %d", err, resp.Status)
	}
	resp, _, err := d.Invoke(d.ClientContext(), "link", []byte("secret.pdf"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("link: %v %d", err, resp.Status)
	}
	token := string(resp.Body)

	// Dana: anonymous external caller with just the token + her key.
	anon := &sim.Context{Cursor: sim.NewCursor(cloud.Clock.Now()), External: true}
	obj, err := cloud.S3.GetPresigned(anon, token)
	if err != nil {
		t.Fatal(err)
	}
	if !sealedbox.IsSealedBox(obj.Data) || bytes.Contains(obj.Data, payload) {
		t.Fatal("stored transfer is not a sealed box")
	}
	pt, err := sealedbox.Open(priv, obj.Data, []byte(ObjectKey("secret.pdf")))
	if err != nil || !bytes.Equal(pt, payload) {
		t.Fatalf("recipient open: %v", err)
	}

	// The deployment data key cannot open a recipient-sealed transfer.
	dataKey, err := cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := envelope.Open(dataKey, obj.Data, []byte(ObjectKey("secret.pdf"))); err == nil {
		t.Fatal("data key opened a recipient-sealed transfer")
	}

	// The link dies with the TTL.
	late := &sim.Context{Cursor: sim.NewCursor(cloud.Clock.Now().Add(25 * time.Hour)), External: true}
	if _, err := cloud.S3.GetPresigned(late, token); err == nil {
		t.Fatal("expired link still works")
	}
}

func TestLinkValidation(t *testing.T) {
	_, d := newXfer(t)
	resp, _, _ := d.Invoke(d.ClientContext(), "link", nil)
	if resp.Status != 400 {
		t.Fatalf("empty link status %d", resp.Status)
	}
	// Linking a missing transfer still mints a token (S3 presign does
	// not check existence, like AWS) — but redeeming it 404s.
	resp, _, _ = d.Invoke(d.ClientContext(), "link", []byte("ghost.bin"))
	if resp.Status != 200 {
		t.Fatalf("link to missing transfer status %d", resp.Status)
	}
	cloud := d.Cloud
	anon := &sim.Context{Cursor: sim.NewCursor(cloud.Clock.Now())}
	if _, err := cloud.S3.GetPresigned(anon, string(resp.Body)); err == nil {
		t.Fatal("redeemed link to a missing object")
	}
}

func TestUploadBadRecipientKey(t *testing.T) {
	_, d := newXfer(t)
	req, _ := json.Marshal(UploadRequest{Name: "x.bin", Data: []byte("x"), RecipientPub: []byte("short")})
	resp, _, _ := d.Invoke(d.ClientContext(), "upload", req)
	if resp.Status != 400 {
		t.Fatalf("bad key status %d", resp.Status)
	}
}
