// Package filetransfer implements the paper's cloud-based file
// transfer service (§6.1): "DIY can be used to create a file storage
// and transfer server, providing a service similar to Apple's AirDrop
// service. Clients connect to the service with a request to transfer a
// file by filename and a recipient. The sender uploads the file to
// temporary storage, and the receiver downloads the file
// simultaneously."
//
// Files are envelope-encrypted in temporary storage; the recipient is
// notified through an offers queue and may either download through the
// function or fetch the sealed object directly from storage and open it
// locally (the deployment grants the client principal bucket-read and
// kms:Decrypt). Transfers expire: a sweep removes objects older than
// the TTL.
package filetransfer

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/lambda"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/crypto/sealedbox"
)

// OffersQueue is the queue suffix recipients poll for transfer offers.
const OffersQueue = "offers"

// DefaultTTL is how long a transfer stays in temporary storage.
const DefaultTTL = 24 * time.Hour

// baseMemory approximates the function's resident runtime; the Table 2
// row allocates 1 GB so large files can be buffered.
const baseMemory = 35 << 20

// App is the DIY file transfer application.
type App struct {
	// TTL overrides DefaultTTL.
	TTL time.Duration
}

// Name implements core.App.
func (App) Name() string { return "filetransfer" }

// Spec implements core.App: the Table 2 file-transfer row — a 1024 MB
// function ("allocate more memory to the Lambda function to buffer the
// file"), 2 s of compute per request.
func (App) Spec() core.AppSpec {
	return core.AppSpec{
		MemoryMB:            1024,
		Timeout:             5 * time.Minute,
		Endpoint:            "/files",
		Queues:              []string{OffersQueue},
		CacheDataKeys:       true,
		ClientCanReadBucket: true,
		ClientCanDecrypt:    true,
		EstCompute:          2000 * time.Millisecond, // Table 2 row 3
		Code:                []byte("diy-filetransfer:airdrop:v1"),
	}
}

// UploadRequest is the "upload" op payload. With RecipientPub set (an
// X25519 public key), the file is sealed to the recipient instead of
// to the deployment data key, so an *external* recipient — no cloud
// account, no deployment credentials — can pick it up via a presigned
// link and open it with their private key.
type UploadRequest struct {
	Name         string `json:"name"`
	To           string `json:"to"`
	Data         []byte `json:"data"`
	RecipientPub []byte `json:"recipient_pub,omitempty"`
}

// Offer is the sealed notification posted to the offers queue and the
// manifest record.
type Offer struct {
	Name     string    `json:"name"`
	From     string    `json:"from"`
	To       string    `json:"to"`
	Size     int       `json:"size"`
	Uploaded time.Time `json:"uploaded"`
}

// manifest is the sealed transfer index.
type manifest struct {
	Offers []Offer `json:"offers"`
}

// ObjectKey is the storage key for a named transfer.
func ObjectKey(name string) string { return "xfer/" + name }

// Handler implements core.App. Operations:
//
//	op "upload":   body = UploadRequest JSON; stores the sealed file
//	               and notifies the offers queue
//	op "list":     returns the manifest JSON
//	op "download": body = name; returns the file bytes
//	op "link":     body = name; returns a presigned download token an
//	               external recipient can redeem with no credentials
//	op "sweep":    removes transfers older than the TTL
func (a App) Handler() lambda.Handler {
	ttl := a.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		h := &xferHandler{env: env, ttl: ttl}
		switch ev.Op {
		case "upload":
			return h.upload(ev.Body)
		case "list":
			return h.list()
		case "download":
			return h.download(strings.TrimSpace(string(ev.Body)))
		case "link":
			return h.link(strings.TrimSpace(string(ev.Body)))
		case "sweep":
			return h.sweep()
		default:
			return lambda.Response{Status: 400, Body: []byte("unknown op")}, nil
		}
	}
}

type xferHandler struct {
	env *lambda.Env
	ttl time.Duration
}

func (h *xferHandler) key() ([]byte, error) {
	wrapped, err := hex.DecodeString(h.env.Config(core.ConfigWrappedKey))
	if err != nil {
		return nil, fmt.Errorf("filetransfer: bad wrapped key config: %w", err)
	}
	return h.env.DataKey(wrapped)
}

func (h *xferHandler) bucket() string { return h.env.Config(core.ConfigBucket) }

func (h *xferHandler) loadManifest(key []byte) (*manifest, error) {
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), "manifest")
	if err != nil {
		return &manifest{}, nil
	}
	pt, err := envelope.Open(key, obj.Data, []byte("manifest"))
	if err != nil {
		return nil, fmt.Errorf("filetransfer: opening manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(pt, &m); err != nil {
		return nil, fmt.Errorf("filetransfer: parsing manifest: %w", err)
	}
	return &m, nil
}

func (h *xferHandler) saveManifest(key []byte, m *manifest) error {
	pt, err := json.Marshal(m)
	if err != nil {
		return err
	}
	sealed, err := envelope.Seal(key, pt, []byte("manifest"))
	if err != nil {
		return err
	}
	return h.env.S3().Put(h.env.Ctx(), h.bucket(), "manifest", sealed)
}

func (h *xferHandler) upload(body []byte) (lambda.Response, error) {
	var req UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return lambda.Response{Status: 400, Body: []byte("bad upload request")}, nil
	}
	if req.Name == "" || strings.Contains(req.Name, "/") || len(req.Data) == 0 {
		return lambda.Response{Status: 400, Body: []byte("upload needs a clean name and data")}, nil
	}
	// The function buffers the file: the reason for the 1 GB allocation.
	h.env.RecordMemory(baseMemory + int64(2*len(req.Data)))
	h.env.Compute(time.Duration(len(req.Data)/2048) * time.Microsecond) // ~0.5 GB/s AES

	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	objKey := ObjectKey(req.Name)
	var sealed []byte
	if len(req.RecipientPub) > 0 {
		pub, perr := sealedbox.ParsePublicKey(req.RecipientPub)
		if perr != nil {
			return lambda.Response{Status: 400, Body: []byte("bad recipient key")}, nil
		}
		sealed, err = sealedbox.Seal(pub, req.Data, []byte(objKey))
	} else {
		sealed, err = envelope.Seal(key, req.Data, []byte(objKey))
	}
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	if err := h.env.S3().Put(h.env.Ctx(), h.bucket(), objKey, sealed); err != nil {
		return lambda.Response{Status: 500}, err
	}

	offer := Offer{
		Name: req.Name, From: h.env.Config(core.ConfigUser), To: req.To,
		Size: len(req.Data), Uploaded: h.env.Ctx().Cursor.Now(),
	}
	m, err := h.loadManifest(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	m.Offers = append(m.Offers, offer)
	if err := h.saveManifest(key, m); err != nil {
		return lambda.Response{Status: 500}, err
	}

	// Notify the recipient (sealed, like everything leaving the
	// container).
	notice, err := json.Marshal(offer)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	sealedNotice, err := envelope.Seal(key, notice, []byte("offer"))
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	qname := h.env.Config(core.ConfigQueuePref + OffersQueue)
	if _, err := h.env.SQS().Send(h.env.Ctx(), qname, sealedNotice); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: []byte(objKey)}, nil
}

func (h *xferHandler) list() (lambda.Response, error) {
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	m, err := h.loadManifest(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	out, err := json.Marshal(m.Offers)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: out}, nil
}

func (h *xferHandler) download(name string) (lambda.Response, error) {
	if name == "" {
		return lambda.Response{Status: 400, Body: []byte("missing name")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	objKey := ObjectKey(name)
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), objKey)
	if err != nil {
		return lambda.Response{Status: 404, Body: []byte("no such transfer")}, nil
	}
	pt, err := envelope.Open(key, obj.Data, []byte(objKey))
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.RecordMemory(baseMemory + int64(2*len(pt)))
	h.env.Compute(time.Duration(len(pt)/2048) * time.Microsecond)
	return lambda.Response{Status: 200, Body: pt}, nil
}

// link mints a presigned download token for a transfer, valid for the
// service TTL: the AirDrop handoff an external recipient follows with
// no cloud credentials.
func (h *xferHandler) link(name string) (lambda.Response, error) {
	if name == "" {
		return lambda.Response{Status: 400, Body: []byte("missing name")}, nil
	}
	h.env.Compute(2 * time.Millisecond)
	token, err := h.env.S3().Presign(h.env.Ctx().Principal, h.bucket(), ObjectKey(name),
		h.env.Ctx().Cursor.Now().Add(h.ttl))
	if err != nil {
		return lambda.Response{Status: 404, Body: []byte("no such transfer")}, nil
	}
	return lambda.Response{Status: 200, Body: []byte(token)}, nil
}

// sweep enforces the temporary-storage TTL.
func (h *xferHandler) sweep() (lambda.Response, error) {
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	m, err := h.loadManifest(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	now := h.env.Ctx().Cursor.Now()
	kept := m.Offers[:0]
	removed := 0
	for _, o := range m.Offers {
		if now.Sub(o.Uploaded) > h.ttl {
			if err := h.env.S3().Delete(h.env.Ctx(), h.bucket(), ObjectKey(o.Name)); err != nil {
				return lambda.Response{Status: 500}, err
			}
			removed++
			continue
		}
		kept = append(kept, o)
	}
	m.Offers = kept
	if err := h.saveManifest(key, m); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: []byte(fmt.Sprintf("%d", removed))}, nil
}
