package email

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/crypto/sealedbox"
	"repro/internal/proto/pop3"
	"repro/internal/spam"
)

func newMailbox(t *testing.T, filter *spam.Filter) (*core.Cloud, *core.Deployment) {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Install(cloud, "alice", App{SpamFilter: filter})
	if err != nil {
		t.Fatal(err)
	}
	return cloud, d
}

func deliver(t *testing.T, cloud *core.Cloud, from, subject, body string) {
	t.Helper()
	raw := fmt.Sprintf("From: %s\r\nTo: alice@%s\r\nSubject: %s\r\nDate: Mon, 05 Jun 2017 10:00:00 -0700\r\n\r\n%s\r\n",
		from, MailDomain, subject, body)
	ctx := &sim.Context{App: "email", Cursor: sim.NewCursor(cloud.Clock.Now())}
	if err := cloud.SES.Deliver(ctx, from, "alice@"+MailDomain, []byte(raw)); err != nil {
		t.Fatal(err)
	}
}

func listEntries(t *testing.T, d *core.Deployment) []IndexEntry {
	t.Helper()
	resp, _, err := d.Invoke(d.ClientContext(), "list", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("list: %v status %d", err, resp.Status)
	}
	var entries []IndexEntry
	if err := json.Unmarshal(resp.Body, &entries); err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestInboundStoredAndListed(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	deliver(t, cloud, "bob@remote.net", "lunch?", "burgers at noon?")
	deliver(t, cloud, "carol@remote.net", "paper draft", "comments attached")

	entries := listEntries(t, d)
	if len(entries) != 2 {
		t.Fatalf("index has %d entries", len(entries))
	}
	if entries[0].From != "bob@remote.net" || entries[0].Subject != "lunch?" {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[0].ID == entries[1].ID {
		t.Fatal("duplicate ids")
	}
	if entries[0].Date.IsZero() {
		t.Fatal("date not parsed from headers")
	}
}

func TestFetchRoundTrip(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	deliver(t, cloud, "bob@remote.net", "hello", "the body text")
	entries := listEntries(t, d)
	resp, _, err := d.Invoke(d.ClientContext(), "fetch", []byte(fmt.Sprintf("%d", entries[0].ID)))
	if err != nil || resp.Status != 200 {
		t.Fatalf("fetch: %v status %d", err, resp.Status)
	}
	if !strings.Contains(string(resp.Body), "the body text") {
		t.Fatalf("fetched %q", resp.Body)
	}
}

func TestFetchErrors(t *testing.T) {
	_, d := newMailbox(t, nil)
	resp, _, _ := d.Invoke(d.ClientContext(), "fetch", []byte("999"))
	if resp.Status != 404 {
		t.Fatalf("missing id status %d", resp.Status)
	}
	resp, _, _ = d.Invoke(d.ClientContext(), "fetch", []byte("not-a-number"))
	if resp.Status != 400 {
		t.Fatalf("bad id status %d", resp.Status)
	}
}

func TestMailAtRestIsSealed(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	secret := "the acquisition price is 4.2B"
	deliver(t, cloud, "bob@remote.net", "confidential", secret)

	admin := &sim.Context{Principal: d.Role}
	keys, _ := cloud.S3.List(admin, d.Bucket, "")
	for _, k := range keys {
		obj, err := cloud.S3.Get(admin, d.Bucket, k)
		if err != nil {
			t.Fatal(err)
		}
		if !envelope.IsSealed(obj.Data) || bytes.Contains(obj.Data, []byte(secret)) {
			t.Fatalf("object %s leaks plaintext", k)
		}
	}
}

func TestDelete(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	deliver(t, cloud, "bob@remote.net", "one", "1")
	deliver(t, cloud, "carol@remote.net", "two", "2")
	entries := listEntries(t, d)
	resp, _, err := d.Invoke(d.ClientContext(), "delete", []byte(fmt.Sprintf("%d", entries[0].ID)))
	if err != nil || resp.Status != 200 {
		t.Fatalf("delete: %v status %d", err, resp.Status)
	}
	after := listEntries(t, d)
	if len(after) != 1 || after[0].Subject != "two" {
		t.Fatalf("after delete: %+v", after)
	}
	// The stored object is gone too.
	resp, _, _ = d.Invoke(d.ClientContext(), "fetch", []byte(fmt.Sprintf("%d", entries[0].ID)))
	if resp.Status != 404 {
		t.Fatalf("deleted message still fetchable: %d", resp.Status)
	}
}

func TestSpamTagging(t *testing.T) {
	cloud, d := newMailbox(t, spam.NewFilter())
	deliver(t, cloud, "matei@cs.stanford.edu", "camera ready", "deadline is friday")
	deliver(t, cloud, "winner999999@lottery.biz", "CONGRATULATIONS WINNER",
		"You won the lottery!!! Claim your FREE prize of $1,000,000 now. Act now. Wire transfer of $500,000 dollars.")

	entries := listEntries(t, d)
	if len(entries) != 2 {
		t.Fatalf("index has %d entries", len(entries))
	}
	if entries[0].Spam {
		t.Fatalf("ham tagged as spam: %+v", entries[0])
	}
	if !entries[1].Spam || len(entries[1].Rules) == 0 {
		t.Fatalf("spam not tagged: %+v", entries[1])
	}
}

func TestSendOutbound(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	req, _ := json.Marshal(SendRequest{
		To:  []string{"friend@remote.net"},
		Raw: []byte("Subject: hi\r\n\r\nsent from my DIY mailbox\r\n"),
	})
	resp, _, err := d.Invoke(d.ClientContext(), "send", req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("send: %v status %d", err, resp.Status)
	}
	out := cloud.SES.Outbox()
	if len(out) != 1 || out[0].To != "friend@remote.net" {
		t.Fatalf("outbox = %+v", out)
	}
	if out[0].From != "alice@"+MailDomain {
		t.Fatalf("sender = %q", out[0].From)
	}
}

func TestSendValidation(t *testing.T) {
	_, d := newMailbox(t, nil)
	resp, _, _ := d.Invoke(d.ClientContext(), "send", []byte("garbage"))
	if resp.Status != 400 {
		t.Fatalf("bad payload status %d", resp.Status)
	}
	req, _ := json.Marshal(SendRequest{Raw: []byte("x")})
	resp, _, _ = d.Invoke(d.ClientContext(), "send", req)
	if resp.Status != 400 {
		t.Fatalf("no recipients status %d", resp.Status)
	}
}

func TestSendToAnotherDIYUser(t *testing.T) {
	// Bob also runs DIY email on the same cloud: Alice's send lands in
	// his encrypted mailbox end to end.
	cloud, dAlice := newMailbox(t, nil)
	dBob, err := core.Install(cloud, "bob", App{})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(SendRequest{
		To:  []string{"bob@" + MailDomain},
		Raw: []byte("Subject: federated!\r\n\r\nDIY to DIY delivery\r\n"),
	})
	resp, _, err := dAlice.Invoke(dAlice.ClientContext(), "send", req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("send: %v status %d", err, resp.Status)
	}
	respList, _, err := dBob.Invoke(dBob.ClientContext(), "list", nil)
	if err != nil {
		t.Fatal(err)
	}
	var entries []IndexEntry
	json.Unmarshal(respList.Body, &entries)
	if len(entries) != 1 || entries[0].Subject != "federated!" {
		t.Fatalf("bob's index = %+v", entries)
	}
}

func TestUnknownOp(t *testing.T) {
	_, d := newMailbox(t, nil)
	resp, _, _ := d.Invoke(d.ClientContext(), "frobnicate", nil)
	if resp.Status != 400 {
		t.Fatalf("unknown op status %d", resp.Status)
	}
}

func TestPOP3RetrievalPath(t *testing.T) {
	// The full standard mail path: SMTP in (tested elsewhere), POP3
	// out via the bridge, over a real TCP socket.
	cloud, d := newMailbox(t, nil)
	deliver(t, cloud, "bob@remote.net", "pop-one", "first body")
	deliver(t, cloud, "carol@remote.net", "pop-two", "second body")

	srv := &pop3.Server{Hostname: MailDomain, Auth: POP3Auth(d, "hunter2")}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	readLine := func() string {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}
	expectOK := func() string {
		line := readLine()
		if !strings.HasPrefix(line, "+OK") {
			t.Fatalf("got %q", line)
		}
		return line
	}
	send := func(s string) { fmt.Fprintf(conn, "%s\r\n", s) }

	expectOK()
	send("USER alice")
	expectOK()
	send("PASS hunter2")
	expectOK()
	send("STAT")
	if line := expectOK(); !strings.HasPrefix(line, "+OK 2 ") {
		t.Fatalf("STAT = %q", line)
	}
	send("RETR 1")
	expectOK()
	var body strings.Builder
	for {
		l := readLine()
		if l == "." {
			break
		}
		body.WriteString(l + "\n")
	}
	if !strings.Contains(body.String(), "first body") {
		t.Fatalf("RETR body = %q", body.String())
	}
	// Delete over POP3 removes from the mailbox at QUIT.
	send("DELE 1")
	expectOK()
	send("QUIT")
	expectOK()
	if entries := listEntries(t, d); len(entries) != 1 || entries[0].Subject != "pop-two" {
		t.Fatalf("after POP3 DELE: %+v", entries)
	}
}

func TestPOP3AuthRejectsWrongCreds(t *testing.T) {
	_, d := newMailbox(t, nil)
	auth := POP3Auth(d, "secret")
	if _, err := auth("alice", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := auth("mallory", "secret"); err == nil {
		t.Fatal("wrong user accepted")
	}
	if _, err := auth("alice", "secret"); err != nil {
		t.Fatal(err)
	}
}

func TestPGPModeOnlyClientCanRead(t *testing.T) {
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := sealedbox.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Install(cloud, "alice", App{RecipientPub: &pub})
	if err != nil {
		t.Fatal(err)
	}
	secret := "pgp-protected body text"
	raw := fmt.Sprintf("From: bob@remote.net\r\nTo: alice@%s\r\nSubject: sealed\r\n\r\n%s\r\n", MailDomain, secret)
	ctx := &sim.Context{App: "email", Cursor: sim.NewCursor(cloud.Clock.Now())}
	if err := cloud.SES.Deliver(ctx, "bob@remote.net", "alice@"+MailDomain, []byte(raw)); err != nil {
		t.Fatal(err)
	}

	// Listing still works (index is under the data key).
	entries := listEntries(t, d)
	if len(entries) != 1 || entries[0].Subject != "sealed" {
		t.Fatalf("entries = %+v", entries)
	}

	// Fetch returns a sealed box the client must open locally.
	resp, _, err := d.Invoke(d.ClientContext(), "fetch", []byte("1"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("fetch: %v %d", err, resp.Status)
	}
	if resp.Attrs["X-DIY-Sealed"] != "box" {
		t.Fatal("fetch did not mark the body as sealed")
	}
	if !sealedbox.IsSealedBox(resp.Body) || bytes.Contains(resp.Body, []byte(secret)) {
		t.Fatal("fetch returned plaintext in PGP mode")
	}
	pt, err := sealedbox.Open(priv, resp.Body, []byte("mail/000001"))
	if err != nil || !strings.Contains(string(pt), secret) {
		t.Fatalf("client-side open failed: %v", err)
	}

	// The deployment data key alone cannot open the body: even a full
	// KMS compromise does not expose stored mail contents.
	admin := &sim.Context{Principal: d.Role}
	dataKey, err := cloud.KMS.Decrypt(admin, d.WrappedKey)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cloud.S3.Get(admin, d.Bucket, "mail/000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := envelope.Open(dataKey, obj.Data, []byte("mail/000001")); err == nil {
		t.Fatal("data key opened a PGP-mode body")
	}
}

func TestSpamFeedbackTraining(t *testing.T) {
	filter := spam.NewFilter()
	cloud, d := newMailbox(t, filter)

	// A borderline message the static rules miss.
	borderline := "casino bonus pharmacy rounds vigor pills discount club"
	for i := 0; i < 12; i++ {
		deliver(t, cloud, fmt.Sprintf("promo%d@remote.net", i), "weekly digest", borderline)
		deliver(t, cloud, fmt.Sprintf("colleague%d@cs.example", i), "reading group",
			"agenda for the systems meeting attached")
	}
	entries := listEntries(t, d)
	// Train: mark the digests spam, the meeting mail ham.
	for _, e := range entries {
		op := "markham"
		if strings.Contains(e.Subject, "digest") {
			op = "markspam"
		}
		resp, _, err := d.Invoke(d.ClientContext(), op, []byte(fmt.Sprintf("%d", e.ID)))
		if err != nil || resp.Status != 200 {
			t.Fatalf("%s %d: %v %d", op, e.ID, err, resp.Status)
		}
	}
	// The index tags were corrected...
	entries = listEntries(t, d)
	for _, e := range entries {
		wantSpam := strings.Contains(e.Subject, "digest")
		if e.Spam != wantSpam {
			t.Fatalf("entry %d spam=%v, want %v", e.ID, e.Spam, wantSpam)
		}
	}
	// ...and the Bayes layer now flags fresh borderline mail on its own.
	score, rules := filter.Score(&spam.Message{Subject: "another digest", Body: borderline})
	hasBayes := false
	for _, r := range rules {
		if r == "BAYES" {
			hasBayes = true
		}
	}
	if !hasBayes || score <= 0 {
		t.Fatalf("trained filter did not learn: score %.2f rules %v", score, rules)
	}
}

func TestMarkErrors(t *testing.T) {
	// No filter configured.
	_, d := newMailbox(t, nil)
	resp, _, _ := d.Invoke(d.ClientContext(), "markspam", []byte("1"))
	if resp.Status != 409 {
		t.Fatalf("no-filter mark status %d", resp.Status)
	}
	// PGP mode refuses (the server cannot read bodies).
	cloud2, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pub, _, err := sealedbox.GenerateKeys()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := core.Install(cloud2, "alice", App{SpamFilter: spam.NewFilter(), RecipientPub: &pub})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, _ = d2.Invoke(d2.ClientContext(), "markspam", []byte("1"))
	if resp.Status != 409 || !strings.Contains(string(resp.Body), "PGP") {
		t.Fatalf("PGP mark status %d %q", resp.Status, resp.Body)
	}
	// Bad and missing ids.
	cloud3, d3 := newMailbox(t, spam.NewFilter())
	_ = cloud3
	resp, _, _ = d3.Invoke(d3.ClientContext(), "markspam", []byte("zero"))
	if resp.Status != 400 {
		t.Fatalf("bad id status %d", resp.Status)
	}
	resp, _, _ = d3.Invoke(d3.ClientContext(), "markspam", []byte("42"))
	if resp.Status != 404 {
		t.Fatalf("missing id status %d", resp.Status)
	}
}

func TestInboundDedupByMessageID(t *testing.T) {
	cloud, d := newMailbox(t, nil)
	raw := "From: bob@remote.net\r\nTo: alice@" + MailDomain +
		"\r\nSubject: once\r\nMessage-Id: <abc-123@remote.net>\r\n\r\nbody\r\n"
	for i := 0; i < 3; i++ { // original + two redeliveries
		ctx := &sim.Context{App: "email", Cursor: sim.NewCursor(cloud.Clock.Now())}
		if err := cloud.SES.Deliver(ctx, "bob@remote.net", "alice@"+MailDomain, []byte(raw)); err != nil {
			t.Fatal(err)
		}
	}
	entries := listEntries(t, d)
	if len(entries) != 1 {
		t.Fatalf("index has %d entries, want 1 (dedup)", len(entries))
	}
	// Messages without a Message-ID are never deduped.
	deliver(t, cloud, "carol@remote.net", "no-id", "x")
	deliver(t, cloud, "carol@remote.net", "no-id", "x")
	if entries := listEntries(t, d); len(entries) != 3 {
		t.Fatalf("index has %d entries, want 3", len(entries))
	}
}
