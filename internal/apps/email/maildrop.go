package email

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/proto/pop3"
)

// Maildrop adapts a DIY email deployment to the POP3 server in
// internal/proto/pop3, completing the standard retrieval path: the
// user's mail client speaks POP3 to a bridge running on their own
// device, which calls the deployment's HTTPS operations; the provider
// in the middle still only ever stores ciphertext.
//
// POP3 message numbers are the mailbox index IDs, which are stable for
// the life of the mailbox.
type Maildrop struct {
	d *core.Deployment
}

// NewMaildrop returns a POP3 maildrop over the deployment.
func NewMaildrop(d *core.Deployment) *Maildrop { return &Maildrop{d: d} }

var _ pop3.Maildrop = (*Maildrop)(nil)

// POP3Auth returns an Authenticator accepting the deployment's user
// name with the given password.
func POP3Auth(d *core.Deployment, password string) pop3.Authenticator {
	return func(user, pass string) (pop3.Maildrop, error) {
		if user != d.User || pass != password {
			return nil, errors.New("email: bad credentials")
		}
		return NewMaildrop(d), nil
	}
}

func (m *Maildrop) entries() ([]IndexEntry, error) {
	resp, _, err := m.d.Invoke(m.d.ClientContext(), "list", nil)
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("email: list failed: %s", resp.Body)
	}
	var entries []IndexEntry
	if err := json.Unmarshal(resp.Body, &entries); err != nil {
		return nil, err
	}
	return entries, nil
}

// Stat implements pop3.Maildrop.
func (m *Maildrop) Stat() (count, size int, err error) {
	entries, err := m.entries()
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		size += e.Size
	}
	return len(entries), size, nil
}

// List implements pop3.Maildrop.
func (m *Maildrop) List(n int) (map[int]int, error) {
	entries, err := m.entries()
	if err != nil {
		return nil, err
	}
	out := make(map[int]int)
	for _, e := range entries {
		if n == 0 || n == e.ID {
			out[e.ID] = e.Size
		}
	}
	return out, nil
}

// Retr implements pop3.Maildrop.
func (m *Maildrop) Retr(n int) ([]byte, error) {
	resp, _, err := m.d.Invoke(m.d.ClientContext(), "fetch", []byte(fmt.Sprintf("%d", n)))
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("email: no such message %d", n)
	}
	return resp.Body, nil
}

// Dele implements pop3.Maildrop.
func (m *Maildrop) Dele(n int) error {
	resp, _, err := m.d.Invoke(m.d.ClientContext(), "delete", []byte(fmt.Sprintf("%d", n)))
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("email: delete %d failed: %s", n, resp.Body)
	}
	return nil
}
