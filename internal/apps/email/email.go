// Package email implements the paper's DIY email service (§6.1): "A
// serverless SMTP service can forward outgoing mail and encrypt and
// store incoming mail into a storage provider like Amazon S3. While
// Lambda currently does not support SMTP endpoints, we can use
// Amazon's SES service to provide the send service, and use Lambda as
// a hook to encrypt email (e.g., using PGP encryption) before storing
// it. ... DIY could also support features like spam detection using
// widely used open source detectors such as SpamAssassin."
//
// Inbound mail arrives via the SES trigger (or the real-TCP SMTP
// server in examples/email, which feeds the same handler), is scored
// by the spam filter, envelope-encrypted, and stored in the user's
// bucket. Clients list, fetch, send and delete over the HTTPS
// endpoint.
package email

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/mail"
	"strings"
	"time"

	"repro/internal/cloudsim/lambda"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/crypto/sealedbox"
	"repro/internal/spam"
)

// MailDomain is the inbound domain for DIY mailboxes.
const MailDomain = "diy-mail.example"

// baseMemory approximates the mail function's working set.
const baseMemory = 40 << 20

// App is the DIY email application.
type App struct {
	// SpamFilter, if non-nil, scores inbound mail; spam is tagged in
	// the index rather than dropped.
	SpamFilter *spam.Filter
	// RecipientPub, if non-nil, enables PGP mode: message bodies are
	// sealed to this public key instead of the deployment data key, so
	// only the user's devices — not KMS, not the function on later
	// invocations — can read stored mail. The index metadata stays
	// under the data key so list/delete still work server-side.
	RecipientPub *sealedbox.PublicKey
}

// Name implements core.App.
func (App) Name() string { return "email" }

// Spec implements core.App: the Table 2 email row — a 128 MB function,
// SES inbound trigger for <user>@diy-mail.example, HTTPS client
// endpoint.
func (a App) Spec() core.AppSpec {
	return core.AppSpec{
		MemoryMB:      128,
		Timeout:       30 * time.Second,
		Endpoint:      "/mail",
		InboundAddrs:  []string{"%USER%@" + MailDomain},
		CacheDataKeys: true,
		EstCompute:    500 * time.Millisecond, // Table 2 row 2
		Code:          []byte("diy-email:ses-hook:v1"),
	}
}

// IndexEntry is one mailbox index record (stored sealed).
type IndexEntry struct {
	ID      int       `json:"id"`
	MsgID   string    `json:"msg_id,omitempty"` // RFC 5322 Message-ID, for dedup
	From    string    `json:"from"`
	Subject string    `json:"subject"`
	Date    time.Time `json:"date"`
	Spam    bool      `json:"spam"`
	Score   float64   `json:"score,omitempty"`
	Rules   []string  `json:"rules,omitempty"`
	Size    int       `json:"size"`
}

// mailbox is the sealed mailbox metadata document.
type mailbox struct {
	NextID  int          `json:"next_id"`
	Entries []IndexEntry `json:"entries"`
}

// SendRequest is the client "send" payload.
type SendRequest struct {
	To  []string `json:"to"`
	Raw []byte   `json:"raw"` // RFC 822 message bytes
}

// Handler implements core.App. Operations:
//
//	SES trigger / op "inbound": store one inbound message
//	op "list":   return the decrypted index as JSON
//	op "fetch":  body = id; return the raw message
//	op "delete": body = id; remove message and index entry
//	op "send":   body = SendRequest JSON; relay via the send service
//	op "markspam", "markham": body = id; train the filter on the
//	             message and correct its index tag (unavailable in PGP
//	             mode, where the function cannot read stored bodies)
func (a App) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		h := &mailHandler{env: env, app: a}
		switch {
		case ev.Source == "ses" || ev.Op == "inbound":
			return h.inbound(ev)
		case ev.Op == "list":
			return h.list()
		case ev.Op == "fetch":
			return h.fetch(strings.TrimSpace(string(ev.Body)))
		case ev.Op == "delete":
			return h.delete(strings.TrimSpace(string(ev.Body)))
		case ev.Op == "send":
			return h.send(ev.Body)
		case ev.Op == "markspam":
			return h.mark(strings.TrimSpace(string(ev.Body)), true)
		case ev.Op == "markham":
			return h.mark(strings.TrimSpace(string(ev.Body)), false)
		default:
			return lambda.Response{Status: 400, Body: []byte("unknown op")}, nil
		}
	}
}

type mailHandler struct {
	env *lambda.Env
	app App
}

func (h *mailHandler) key() ([]byte, error) {
	wrapped, err := hex.DecodeString(h.env.Config(core.ConfigWrappedKey))
	if err != nil {
		return nil, fmt.Errorf("email: bad wrapped key config: %w", err)
	}
	return h.env.DataKey(wrapped)
}

func (h *mailHandler) bucket() string { return h.env.Config(core.ConfigBucket) }

func (h *mailHandler) loadBox(key []byte) (*mailbox, error) {
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), "box")
	if err != nil {
		return &mailbox{NextID: 1}, nil
	}
	pt, err := envelope.Open(key, obj.Data, []byte("box"))
	if err != nil {
		return nil, fmt.Errorf("email: opening mailbox: %w", err)
	}
	var box mailbox
	if err := json.Unmarshal(pt, &box); err != nil {
		return nil, fmt.Errorf("email: parsing mailbox: %w", err)
	}
	return &box, nil
}

func (h *mailHandler) saveBox(key []byte, box *mailbox) error {
	pt, err := json.Marshal(box)
	if err != nil {
		return err
	}
	sealed, err := envelope.Seal(key, pt, []byte("box"))
	if err != nil {
		return err
	}
	return h.env.S3().Put(h.env.Ctx(), h.bucket(), "box", sealed)
}

// inbound encrypts and stores one arriving message — the paper's
// "Lambda as a hook to encrypt email before storing it".
func (h *mailHandler) inbound(ev lambda.Event) (lambda.Response, error) {
	h.env.RecordMemory(baseMemory + int64(2*len(ev.Body)))
	h.env.Compute(10 * time.Millisecond) // parse + PGP-style encrypt

	from := ev.Attrs["from"]
	subject := ""
	msgID := ""
	date := time.Time{}
	if msg, err := mail.ReadMessage(strings.NewReader(string(ev.Body))); err == nil {
		subject = msg.Header.Get("Subject")
		msgID = msg.Header.Get("Message-Id")
		if from == "" {
			from = msg.Header.Get("From")
		}
		if d, err := msg.Header.Date(); err == nil {
			date = d
		}
	}
	if date.IsZero() {
		date = h.env.Ctx().Cursor.Now()
	}

	var isSpam bool
	var score float64
	var rules []string
	if h.app.SpamFilter != nil {
		m := &spam.Message{From: from, Subject: subject, Body: string(ev.Body)}
		score, rules = h.app.SpamFilter.Score(m)
		isSpam = score >= h.app.SpamFilter.Threshold
		h.env.Compute(5 * time.Millisecond)
	}

	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	box, err := h.loadBox(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	// Upstream mail systems redeliver: dedup by Message-ID so a
	// retried SES delivery stores exactly one copy.
	if msgID != "" {
		for _, e := range box.Entries {
			if e.MsgID == msgID {
				return lambda.Response{Status: 200,
					Body:  []byte(fmt.Sprintf("%d", e.ID)),
					Attrs: map[string]string{"X-DIY-Duplicate": "1"}}, nil
			}
		}
	}
	id := box.NextID
	box.NextID++
	box.Entries = append(box.Entries, IndexEntry{
		ID: id, MsgID: msgID, From: from, Subject: subject, Date: date,
		Spam: isSpam, Score: score, Rules: rules, Size: len(ev.Body),
	})

	msgKey := fmt.Sprintf("mail/%06d", id)
	var sealed []byte
	if h.app.RecipientPub != nil {
		sealed, err = sealedbox.Seal(*h.app.RecipientPub, ev.Body, []byte(msgKey))
	} else {
		sealed, err = envelope.Seal(key, ev.Body, []byte(msgKey))
	}
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	if err := h.env.S3().Put(h.env.Ctx(), h.bucket(), msgKey, sealed); err != nil {
		return lambda.Response{Status: 500}, err
	}
	if err := h.saveBox(key, box); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: []byte(fmt.Sprintf("%d", id))}, nil
}

func (h *mailHandler) list() (lambda.Response, error) {
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	box, err := h.loadBox(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.Compute(3 * time.Millisecond)
	out, err := json.Marshal(box.Entries)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: out}, nil
}

func (h *mailHandler) fetch(idStr string) (lambda.Response, error) {
	id, ok := parseID(idStr)
	if !ok {
		return lambda.Response{Status: 400, Body: []byte("bad id")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	msgKey := fmt.Sprintf("mail/%06d", id)
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), msgKey)
	if err != nil {
		return lambda.Response{Status: 404, Body: []byte("no such message")}, nil
	}
	h.env.Compute(5 * time.Millisecond)
	if h.app.RecipientPub != nil {
		// PGP mode: the function cannot open the body; the sealed box
		// goes to the client as-is and is opened on the device.
		return lambda.Response{Status: 200, Body: obj.Data,
			Attrs: map[string]string{"X-DIY-Sealed": "box"}}, nil
	}
	pt, err := envelope.Open(key, obj.Data, []byte(msgKey))
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: pt}, nil
}

func (h *mailHandler) delete(idStr string) (lambda.Response, error) {
	id, ok := parseID(idStr)
	if !ok {
		return lambda.Response{Status: 400, Body: []byte("bad id")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	box, err := h.loadBox(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	kept := box.Entries[:0]
	for _, e := range box.Entries {
		if e.ID != id {
			kept = append(kept, e)
		}
	}
	box.Entries = kept
	if err := h.env.S3().Delete(h.env.Ctx(), h.bucket(), fmt.Sprintf("mail/%06d", id)); err != nil {
		return lambda.Response{Status: 500}, err
	}
	if err := h.saveBox(key, box); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200}, nil
}

func (h *mailHandler) send(body []byte) (lambda.Response, error) {
	var req SendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return lambda.Response{Status: 400, Body: []byte("bad send request")}, nil
	}
	if len(req.To) == 0 {
		return lambda.Response{Status: 400, Body: []byte("no recipients")}, nil
	}
	sender := h.env.Config(core.ConfigUser) + "@" + MailDomain
	h.env.Compute(5 * time.Millisecond)
	svc := h.env.Email()
	if svc == nil {
		return lambda.Response{Status: 500, Body: []byte("no send service wired")}, nil
	}
	if err := svc.Send(h.env.Ctx(), sender, req.To, req.Raw); err != nil {
		return lambda.Response{Status: 502, Body: []byte(err.Error())}, nil
	}
	return lambda.Response{Status: 200}, nil
}

// mark trains the spam filter on a stored message and corrects its
// index tag — the feedback loop real mail services run. In PGP mode
// stored bodies are opaque to the function, so server-side training is
// impossible: the privacy/functionality tradeoff made concrete.
func (h *mailHandler) mark(idStr string, isSpam bool) (lambda.Response, error) {
	if h.app.SpamFilter == nil {
		return lambda.Response{Status: 409, Body: []byte("no spam filter configured")}, nil
	}
	if h.app.RecipientPub != nil {
		return lambda.Response{Status: 409,
			Body: []byte("PGP mode: the server cannot read bodies to train on")}, nil
	}
	id, ok := parseID(idStr)
	if !ok {
		return lambda.Response{Status: 400, Body: []byte("bad id")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	msgKey := fmt.Sprintf("mail/%06d", id)
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), msgKey)
	if err != nil {
		return lambda.Response{Status: 404, Body: []byte("no such message")}, nil
	}
	pt, err := envelope.Open(key, obj.Data, []byte(msgKey))
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	box, err := h.loadBox(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	var entry *IndexEntry
	for i := range box.Entries {
		if box.Entries[i].ID == id {
			entry = &box.Entries[i]
		}
	}
	if entry == nil {
		return lambda.Response{Status: 404, Body: []byte("no such message")}, nil
	}
	h.app.SpamFilter.Train(&spam.Message{
		From: entry.From, Subject: entry.Subject, Body: string(pt),
	}, isSpam)
	entry.Spam = isSpam
	h.env.Compute(6 * time.Millisecond)
	if err := h.saveBox(key, box); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200}, nil
}

func parseID(s string) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(s, "%d", &id); err != nil || id <= 0 {
		return 0, false
	}
	return id, true
}
