package iot

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
)

func newHome(t *testing.T) (*core.Cloud, *core.Deployment) {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Install(cloud, "alice", App{
		AlertRules: map[string]float64{"temperature_c": 60, "water_ppm": 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cloud, d
}

func do(t *testing.T, d *core.Deployment, op string, v any) (int, []byte) {
	t.Helper()
	var body []byte
	switch x := v.(type) {
	case nil:
	case []byte:
		body = x
	default:
		var err error
		body, err = json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, _, err := d.Invoke(d.ClientContext(), op, body)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return resp.Status, resp.Body
}

func dataKey(t *testing.T, d *core.Deployment) []byte {
	t.Helper()
	key, err := d.Cloud.KMS.Decrypt(d.ClientContext(), d.WrappedKey)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestRegisterAndDashboard(t *testing.T) {
	_, d := newHome(t)
	if st, _ := do(t, d, "register", Device{Name: "thermostat", Kind: "climate"}); st != 200 {
		t.Fatalf("register status %d", st)
	}
	if st, _ := do(t, d, "register", Device{Name: "doorlock", Kind: "security"}); st != 200 {
		t.Fatalf("register status %d", st)
	}
	// Duplicate registration is refused.
	if st, _ := do(t, d, "register", Device{Name: "thermostat"}); st != 409 {
		t.Fatalf("dup register status %d", st)
	}
	st, body := do(t, d, "dashboard", nil)
	if st != 200 {
		t.Fatalf("dashboard status %d", st)
	}
	var db Dashboard
	if err := json.Unmarshal(body, &db); err != nil {
		t.Fatal(err)
	}
	if len(db.Devices) != 2 || db.Devices[0].Name != "doorlock" {
		t.Fatalf("dashboard = %+v", db)
	}
}

func TestCommandRelay(t *testing.T) {
	cloud, d := newHome(t)
	do(t, d, "register", Device{Name: "thermostat", Kind: "climate"})
	if st, _ := do(t, d, "command", Command{Device: "thermostat", Action: "set", Arg: "21C"}); st != 200 {
		t.Fatalf("command status %d", st)
	}
	// The device long-polls its commands queue and opens the payload.
	ctx := d.ClientContext()
	msgs, err := cloud.SQS.Receive(ctx, d.Queues[CommandsQueue], 1, 20*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("device poll: %v, %d msgs", err, len(msgs))
	}
	var cmd Command
	if err := OpenQueueJSON(dataKey(t, d), msgs[0].Body, "command", &cmd); err != nil {
		t.Fatal(err)
	}
	if cmd.Action != "set" || cmd.Arg != "21C" {
		t.Fatalf("command = %+v", cmd)
	}
}

func TestCommandUnknownDevice(t *testing.T) {
	_, d := newHome(t)
	if st, _ := do(t, d, "command", Command{Device: "ghost", Action: "x"}); st != 404 {
		t.Fatalf("unknown device status %d", st)
	}
}

func TestQueryStatistics(t *testing.T) {
	_, d := newHome(t)
	do(t, d, "register", Device{Name: "thermostat"})
	for i := 0; i < 3; i++ {
		do(t, d, "command", Command{Device: "thermostat", Action: "read"})
	}
	_, body := do(t, d, "dashboard", nil)
	var db Dashboard
	json.Unmarshal(body, &db)
	if db.Queries != 3 || db.Devices[0].Queries != 3 {
		t.Fatalf("stats: total %d device %d, want 3/3", db.Queries, db.Devices[0].Queries)
	}
}

func TestTelemetryAndAlerts(t *testing.T) {
	cloud, d := newHome(t)
	do(t, d, "register", Device{Name: "boiler"})

	// Nominal report: no alert.
	st, body := do(t, d, "report", Report{Device: "boiler", Metrics: map[string]float64{"temperature_c": 45}})
	if st != 200 || string(body) != "0" {
		t.Fatalf("nominal report: status %d fired %s", st, body)
	}
	// Overheat: alert fires.
	st, body = do(t, d, "report", Report{Device: "boiler", Metrics: map[string]float64{"temperature_c": 95}})
	if st != 200 || string(body) != "1" {
		t.Fatalf("overheat report: status %d fired %s", st, body)
	}
	ctx := d.ClientContext()
	msgs, err := cloud.SQS.Receive(ctx, d.Queues[AlertsQueue], 1, 20*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("alert poll: %v, %d msgs", err, len(msgs))
	}
	var alert Alert
	if err := OpenQueueJSON(dataKey(t, d), msgs[0].Body, "alert", &alert); err != nil {
		t.Fatal(err)
	}
	if alert.Device != "boiler" || alert.Metric != "temperature_c" || alert.Value != 95 {
		t.Fatalf("alert = %+v", alert)
	}
	// The dashboard reflects the latest metrics and the alert count.
	_, dbBody := do(t, d, "dashboard", nil)
	var db Dashboard
	json.Unmarshal(dbBody, &db)
	if db.Alerts != 1 || db.Devices[0].Metrics["temperature_c"] != 95 {
		t.Fatalf("dashboard after alert = %+v", db)
	}
	if db.Devices[0].LastSeen.IsZero() {
		t.Fatal("last seen not updated")
	}
}

func TestReportUnknownDevice(t *testing.T) {
	_, d := newHome(t)
	if st, _ := do(t, d, "report", Report{Device: "ghost"}); st != 404 {
		t.Fatalf("unknown device report status %d", st)
	}
}

func TestValidation(t *testing.T) {
	_, d := newHome(t)
	if st, _ := do(t, d, "register", []byte("junk")); st != 400 {
		t.Fatalf("junk register status %d", st)
	}
	if st, _ := do(t, d, "command", Command{}); st != 400 {
		t.Fatalf("empty command status %d", st)
	}
	if st, _ := do(t, d, "report", []byte("junk")); st != 400 {
		t.Fatalf("junk report status %d", st)
	}
	if st, _ := do(t, d, "selfdestruct", nil); st != 400 {
		t.Fatalf("unknown op status %d", st)
	}
}

func TestRegistryAtRestIsSealed(t *testing.T) {
	cloud, d := newHome(t)
	do(t, d, "register", Device{Name: "secret-camera", Kind: "video"})
	admin := &sim.Context{Principal: d.Role}
	obj, err := cloud.S3.Get(admin, d.Bucket, "registry")
	if err != nil {
		t.Fatal(err)
	}
	if !envelope.IsSealed(obj.Data) || bytes.Contains(obj.Data, []byte("secret-camera")) {
		t.Fatal("registry leaks plaintext")
	}
}
