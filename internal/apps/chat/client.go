package chat

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/proto/xmpp"
)

// Client is one member's chat client. It tunnels XMPP stanzas through
// the deployment's HTTPS endpoint and long polls its SQS inbox for
// deliveries, decrypting them with the data key KMS releases to the
// user's client principal.
type Client struct {
	d      *core.Deployment
	member string
	jid    xmpp.JID
	seq    int

	dataKey []byte
	inbox   string
}

// Errors returned by the client.
var (
	ErrNotSessioned = errors.New("chat: session not initiated")
	ErrDenied       = errors.New("chat: server refused session")
)

// NewClient creates a client for a member of the deployment's room.
func NewClient(d *core.Deployment, member, resource string) *Client {
	return &Client{
		d:      d,
		member: member,
		jid:    xmpp.JID{Local: member, Domain: Domain, Resource: resource},
		inbox:  d.Queues[InboxQueueSuffix(member)],
	}
}

// ctx returns a fresh external client context on the cloud timeline.
func (c *Client) ctx() *sim.Context {
	ctx := c.d.ClientContext()
	return ctx
}

// Session performs XMPP session initiation over the HTTPS tunnel and
// fetches the data key from KMS. The returned stats describe the
// initiation invocation.
func (c *Client) Session() (lambda.InvocationStats, error) {
	iq := &xmpp.IQ{Type: "set", ID: "sess-1", From: c.jid.String(), Session: &xmpp.Session{}}
	resp, stats, err := c.sendStanza(iq)
	if err != nil {
		return stats, err
	}
	if resp.Status != 200 {
		return stats, fmt.Errorf("%w: %s", ErrDenied, resp.Body)
	}
	// Unwrap the deployment data key under the client's own authority.
	key, err := c.d.Cloud.KMS.Decrypt(c.ctx(), c.d.WrappedKey)
	if err != nil {
		return stats, fmt.Errorf("chat: fetching data key: %w", err)
	}
	c.dataKey = key
	return stats, nil
}

// Join announces presence.
func (c *Client) Join() error {
	resp, _, err := c.sendStanza(&xmpp.Presence{From: c.jid.String()})
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("chat: join refused: %s", resp.Body)
	}
	return nil
}

// Leave announces unavailability.
func (c *Client) Leave() error {
	resp, _, err := c.sendStanza(&xmpp.Presence{From: c.jid.String(), Type: "unavailable"})
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("chat: leave refused: %s", resp.Body)
	}
	return nil
}

// Send posts one groupchat message, returning the invocation stats
// (the Table 3 "Lambda Time Run"/"Billed" source).
func (c *Client) Send(body string) (lambda.InvocationStats, error) {
	if c.dataKey == nil {
		return lambda.InvocationStats{}, ErrNotSessioned
	}
	c.seq++
	m := &xmpp.Message{
		From: c.jid.String(), To: "room@" + Domain,
		Type: "groupchat", ID: fmt.Sprintf("%s-%d", c.member, c.seq), Body: body,
	}
	resp, stats, err := c.sendStanza(m)
	if err != nil {
		return stats, err
	}
	if resp.Status != 200 {
		return stats, fmt.Errorf("chat: send refused (%d): %s", resp.Status, resp.Body)
	}
	return stats, nil
}

// SendTimed is Send plus the end-to-end instant bookkeeping used by the
// Table 3 experiment: it returns the simulated instant at which the
// message hit the inbox queues (the end of the function run).
func (c *Client) SendTimed(body string) (stats lambda.InvocationStats, sentAt time.Time, err error) {
	ctx := c.ctx()
	if c.dataKey == nil {
		return lambda.InvocationStats{}, time.Time{}, ErrNotSessioned
	}
	c.seq++
	m := &xmpp.Message{
		From: c.jid.String(), To: "room@" + Domain,
		Type: "groupchat", ID: fmt.Sprintf("%s-%d", c.member, c.seq), Body: body,
	}
	raw, err := xmpp.Encode(m)
	if err != nil {
		return lambda.InvocationStats{}, time.Time{}, err
	}
	resp, stats, err := c.d.Invoke(ctx, "stanza", raw)
	if err != nil {
		return stats, time.Time{}, err
	}
	if resp.Status != 200 {
		return stats, time.Time{}, fmt.Errorf("chat: send refused: %s", resp.Body)
	}
	return stats, ctx.Cursor.Now(), nil
}

// SendTraced is Send with a distributed trace attached: the returned
// trace holds one span per service hop of the message's journey —
// gateway, function (with cold-start and billing-quantum sub-spans),
// KMS, S3 and the per-member SQS fan-out — each carrying the usage it
// was metered for, so the whole send can be rendered as a flame tree
// with per-hop latency and dollars. The trace is also recorded in the
// cloud's trace recorder.
func (c *Client) SendTraced(body string) (*trace.Trace, lambda.InvocationStats, error) {
	if c.dataKey == nil {
		return nil, lambda.InvocationStats{}, ErrNotSessioned
	}
	c.seq++
	m := &xmpp.Message{
		From: c.jid.String(), To: "room@" + Domain,
		Type: "groupchat", ID: fmt.Sprintf("%s-%d", c.member, c.seq), Body: body,
	}
	raw, err := xmpp.Encode(m)
	if err != nil {
		return nil, lambda.InvocationStats{}, err
	}
	ctx, tr := c.d.TracedContext("chat-send")
	resp, stats, err := c.d.Invoke(ctx, "stanza", raw)
	tr.Finish(ctx.Now())
	if err != nil {
		return tr, stats, err
	}
	if resp.Status != 200 {
		return tr, stats, fmt.Errorf("chat: send refused (%d): %s", resp.Status, resp.Body)
	}
	return tr, stats, nil
}

// ReceiveStanzas long polls the member's inbox for up to wait,
// decrypting, decoding and acknowledging every delivered stanza
// (messages and presence broadcasts alike). Pass a context from
// PollContext (or nil for a fresh one).
func (c *Client) ReceiveStanzas(ctx *sim.Context, wait time.Duration) ([]any, error) {
	if c.dataKey == nil {
		return nil, ErrNotSessioned
	}
	if ctx == nil {
		ctx = c.ctx()
	}
	msgs, err := c.d.Cloud.SQS.Receive(ctx, c.inbox, 10, wait)
	if err != nil {
		return nil, fmt.Errorf("chat: polling inbox: %w", err)
	}
	if len(msgs) > 0 && c.d.Cloud.Model != nil {
		// Response leg of the long poll back to the client device.
		ctx.Advance(c.d.Cloud.Model.Sample(netsim.HopClientGateway))
	}
	out := make([]any, 0, len(msgs))
	for _, qm := range msgs {
		pt, err := envelope.Open(c.dataKey, qm.Body, []byte("inbox:"+c.member))
		if err != nil {
			return nil, fmt.Errorf("chat: opening delivery: %w", err)
		}
		st, err := xmpp.Decode(pt)
		if err != nil {
			return nil, fmt.Errorf("chat: decoding delivery: %w", err)
		}
		out = append(out, st)
		if err := c.d.Cloud.SQS.Delete(ctx, c.inbox, qm.ID); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Receive is ReceiveStanzas filtered to chat messages; presence
// broadcasts arriving in the same poll are consumed silently.
func (c *Client) Receive(ctx *sim.Context, wait time.Duration) ([]*xmpp.Message, error) {
	stanzas, err := c.ReceiveStanzas(ctx, wait)
	if err != nil {
		return nil, err
	}
	out := make([]*xmpp.Message, 0, len(stanzas))
	for _, st := range stanzas {
		if m, ok := st.(*xmpp.Message); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// PollContext returns a client context whose cursor starts at the given
// instant, for measuring delivery latency against a send timestamp.
func (c *Client) PollContext(at time.Time) *sim.Context {
	ctx := c.d.ClientContext()
	ctx.Cursor = sim.NewCursor(at)
	return ctx
}

// Roster reports the room's members and who is currently present.
func (c *Client) Roster() (members, present []string, err error) {
	resp, _, err := c.d.Invoke(c.ctx(), "roster", []byte(c.member))
	if err != nil {
		return nil, nil, err
	}
	if resp.Status != 200 {
		return nil, nil, fmt.Errorf("chat: roster refused: %s", resp.Body)
	}
	var out struct {
		Members []string `json:"members"`
		Present []string `json:"present"`
	}
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		return nil, nil, err
	}
	return out.Members, out.Present, nil
}

// Search asks the server to grep the decrypted archive — possible
// because DIY servers, unlike end-to-end-encrypted apps, may process
// plaintext inside the trusted container (§7).
func (c *Client) Search(query string) ([]*xmpp.Message, error) {
	req, err := json.Marshal(SearchRequest{Member: c.member, Query: query})
	if err != nil {
		return nil, err
	}
	resp, _, err := c.d.Invoke(c.ctx(), "search", req)
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("chat: search refused: %s", resp.Body)
	}
	return decodeStanzaLines(resp.Body)
}

// History fetches the archived room history.
func (c *Client) History() ([]*xmpp.Message, error) {
	resp, _, err := c.d.Invoke(c.ctx(), "history", []byte(c.member))
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("chat: history refused: %s", resp.Body)
	}
	return decodeStanzaLines(resp.Body)
}

// decodeStanzaLines parses newline-separated message stanzas.
func decodeStanzaLines(body []byte) ([]*xmpp.Message, error) {
	var out []*xmpp.Message
	for _, line := range splitLines(body) {
		if len(line) == 0 {
			continue
		}
		st, err := xmpp.Decode(line)
		if err != nil {
			return nil, err
		}
		if m, ok := st.(*xmpp.Message); ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// Close zeroes the client's cached data key.
func (c *Client) Close() {
	envelope.Zero(c.dataKey)
	c.dataKey = nil
}

func (c *Client) sendStanza(st any) (lambda.Response, lambda.InvocationStats, error) {
	raw, err := xmpp.Encode(st)
	if err != nil {
		return lambda.Response{}, lambda.InvocationStats{}, err
	}
	return c.d.Invoke(c.ctx(), "stanza", raw)
}

func splitLines(b []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, ch := range b {
		if ch == '\n' {
			lines = append(lines, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		lines = append(lines, b[start:])
	}
	return lines
}
