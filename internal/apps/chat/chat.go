// Package chat implements the paper's §6.2 prototype: "an instant
// messaging server using Amazon Lambda based on the XMPP protocol. Our
// implementation supports basic session initiation and message
// exchange."
//
// Faithful to the prototype's two deviations from standard XMPP:
//
//   - stanzas are tunneled through HTTPS, because the serverless
//     platform only supports HTTP(S) endpoints;
//   - long polling is implemented by the function posting encrypted
//     messages to per-member SQS inbox queues, which each client long
//     polls (maximum 20-second poll interval).
//
// Room history is chunked, envelope-encrypted and stored in the
// deployment's bucket; inbox copies are envelope-encrypted too, and
// opened client-side with the data key released by KMS to the user's
// client principal.
package chat

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cloudsim/dynamo"
	"repro/internal/cloudsim/lambda"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/proto/xmpp"
)

// Domain is the XMPP domain of DIY chat deployments.
const Domain = "diy.chat"

// chunkLimit caps a history chunk before rolling to the next one.
const chunkLimit = 64 << 10

// baseMemory approximates the chat function's resident runtime; the
// paper measured a 51 MB peak working set on a 448 MB function.
const baseMemory = 51 << 20

// App is the group-chat DIY application. One deployment serves one
// group (the paper's example: a 15-person Slack group).
type App struct {
	// Members are the group's member names; each gets an inbox queue.
	Members []string
	// MemoryMB overrides the prototype's 448 MB allocation, for the
	// memory-latency ablation.
	MemoryMB int
	// CacheDataKeys enables warm-container key caching (off in the
	// faithful prototype configuration).
	CacheDataKeys bool
	// Backend selects the state store: "" or "s3" for object storage
	// (the prototype's choice), "dynamo" for the low-latency table
	// store the paper footnotes as an alternative.
	Backend string
}

// Name implements core.App.
func (App) Name() string { return "chat" }

// Spec implements core.App: the §6.2 deployment — a 448 MB function
// behind an HTTPS endpoint, one inbox queue per member.
func (a App) Spec() core.AppSpec {
	mem := a.MemoryMB
	if mem == 0 {
		mem = 448
	}
	queues := make([]string, 0, len(a.Members))
	for _, m := range a.Members {
		queues = append(queues, InboxQueueSuffix(m))
	}
	return core.AppSpec{
		MemoryMB:         mem,
		Timeout:          30 * time.Second,
		Endpoint:         "/xmpp",
		Queues:           queues,
		CacheDataKeys:    a.CacheDataKeys,
		ClientCanDecrypt: true,
		EstCompute:       500 * time.Millisecond, // Table 2 row 1
		UseDynamo:        a.Backend == "dynamo",
		Code:             []byte("diy-chat:xmpp-https:v1"),
	}
}

// InboxQueueSuffix names a member's inbox queue suffix.
func InboxQueueSuffix(member string) string { return "inbox." + member }

// roomDoc is the sealed room document: metadata plus the live tail of
// the history. Keeping them together means a message send costs one S3
// GET and one S3 PUT on the hot path; full chunks are archived to
// separate objects as they fill.
type roomDoc struct {
	Chunks   int            `json:"chunks"` // archived chunk count
	Messages int            `json:"messages"`
	Members  []string       `json:"members"`
	Present  []string       `json:"present"`
	Entries  []historyEntry `json:"entries"` // live tail
	// LastID maps each member to their last accepted stanza id, making
	// sends idempotent: an HTTP retry of the same stanza neither
	// duplicates history nor re-fans-out.
	LastID map[string]string `json:"last_id,omitempty"`
}

// historyEntry is one archived message.
type historyEntry struct {
	From string `json:"from"`
	Body string `json:"body"`
	Seq  int    `json:"seq"`
}

// Handler implements core.App. Operations, all tunneled over HTTPS:
//
//	op "stanza": body is one XMPP stanza —
//	    IQ set/session  -> session initiation (IQ result)
//	    presence        -> join/leave tracking
//	    message         -> archive + fan out to member inboxes
//	op "history": body is the member name; returns the room history
//	    as newline-separated XMPP <message> stanzas.
//	op "search": body is SearchRequest JSON; the function decrypts the
//	    archive inside its container and greps it — the §7 point that
//	    DIY, unlike end-to-end-encrypted apps, can host services that
//	    process plaintext server-side.
func (a App) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		h := &handler{env: env, app: a}
		switch ev.Op {
		case "stanza":
			return h.stanza(ev.Body)
		case "history":
			return h.history(strings.TrimSpace(string(ev.Body)))
		case "search":
			return h.search(ev.Body)
		case "roster":
			return h.roster(strings.TrimSpace(string(ev.Body)))
		default:
			return lambda.Response{Status: 400, Body: []byte("unknown op")}, nil
		}
	}
}

type handler struct {
	env *lambda.Env
	app App
}

func (h *handler) key() ([]byte, error) {
	wrapped, err := hex.DecodeString(h.env.Config(core.ConfigWrappedKey))
	if err != nil {
		return nil, fmt.Errorf("chat: bad wrapped key config: %w", err)
	}
	return h.env.DataKey(wrapped)
}

func (h *handler) bucket() string { return h.env.Config(core.ConfigBucket) }

// memberOf reports whether name is in the group.
func (h *handler) memberOf(name string) bool {
	for _, m := range h.app.Members {
		if m == name {
			return true
		}
	}
	return false
}

func (h *handler) stanza(body []byte) (lambda.Response, error) {
	h.env.RecordMemory(baseMemory + int64(2*len(body)))
	stanza, err := xmpp.Decode(body)
	if err != nil {
		return lambda.Response{Status: 400, Body: []byte(err.Error())}, nil
	}
	// Parsing and crypto on the container CPU.
	h.env.Compute(7 * time.Millisecond)

	switch st := stanza.(type) {
	case *xmpp.IQ:
		return h.iq(st)
	case *xmpp.Presence:
		return h.presence(st)
	case *xmpp.Message:
		return h.message(st)
	default:
		return lambda.Response{Status: 400, Body: []byte("unsupported stanza")}, nil
	}
}

// getBlob reads one sealed state blob from the configured backend,
// returning the item version for conditional writes (0 = absent or
// versionless backend).
func (h *handler) getBlob(storeKey string) ([]byte, int64, error) {
	if h.app.Backend == "dynamo" {
		it, err := h.env.Dynamo().Get(h.env.Ctx(), h.env.Config(core.ConfigTable), storeKey)
		if err != nil {
			return nil, 0, err
		}
		return it.Value, it.Version, nil
	}
	obj, err := h.env.S3().Get(h.env.Ctx(), h.bucket(), storeKey)
	if err != nil {
		return nil, 0, err
	}
	return obj.Data, 0, nil
}

// putBlob writes one sealed state blob. On the table backend the write
// is conditional on the version read earlier, giving optimistic
// concurrency; 2017 S3 had no conditional PUT, so the object backend is
// last-writer-wins — the same race the paper's real prototype had.
func (h *handler) putBlob(storeKey string, data []byte, ifVersion int64) error {
	if h.app.Backend == "dynamo" {
		return h.env.Dynamo().PutIfVersion(h.env.Ctx(), h.env.Config(core.ConfigTable), storeKey, data, ifVersion)
	}
	return h.env.S3().Put(h.env.Ctx(), h.bucket(), storeKey, data)
}

// roster returns the presence roster (JSON member list) to a member.
func (h *handler) roster(member string) (lambda.Response, error) {
	if !h.memberOf(member) {
		return lambda.Response{Status: 403, Body: []byte("not a member")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	doc, _, err := h.loadRoom(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.Compute(2 * time.Millisecond)
	out, err := json.Marshal(struct {
		Members []string `json:"members"`
		Present []string `json:"present"`
	}{Members: h.app.Members, Present: doc.Present})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: out}, nil
}

// SearchRequest is the "search" op payload.
type SearchRequest struct {
	Member string `json:"member"`
	Query  string `json:"query"`
}

// search scans the decrypted archive for a substring, case-insensitive,
// returning matches as XMPP stanzas. Plaintext exists only inside this
// invocation's container.
func (h *handler) search(body []byte) (lambda.Response, error) {
	var req SearchRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Query == "" {
		return lambda.Response{Status: 400, Body: []byte("search needs member and query")}, nil
	}
	if !h.memberOf(req.Member) {
		return lambda.Response{Status: 403, Body: []byte("not a member")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	doc, _, err := h.loadRoom(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	needle := strings.ToLower(req.Query)
	scanned := 0
	var sb strings.Builder
	emitMatches := func(entries []historyEntry) error {
		for _, e := range entries {
			scanned += len(e.Body)
			if !strings.Contains(strings.ToLower(e.Body), needle) {
				continue
			}
			out, err := xmpp.Encode(&xmpp.Message{
				From: e.From + "@" + Domain, Type: "groupchat",
				ID: fmt.Sprintf("seq-%d", e.Seq), Body: e.Body,
			})
			if err != nil {
				return err
			}
			sb.Write(out)
			sb.WriteByte('\n')
		}
		return nil
	}
	for c := 0; c < doc.Chunks; c++ {
		entries, err := h.loadArchivedChunk(key, c)
		if err != nil {
			return lambda.Response{Status: 500}, err
		}
		if err := emitMatches(entries); err != nil {
			return lambda.Response{Status: 500}, err
		}
	}
	if err := emitMatches(doc.Entries); err != nil {
		return lambda.Response{Status: 500}, err
	}
	// Scan cost on the container CPU, ~1 GB/s.
	h.env.Compute(time.Duration(scanned) * time.Nanosecond)
	h.env.RecordMemory(baseMemory + int64(scanned))
	return lambda.Response{Status: 200, Body: []byte(sb.String())}, nil
}

// loadRoom fetches and opens the room document (an empty room on first
// touch). The returned version feeds saveRoom's conditional write.
func (h *handler) loadRoom(key []byte) (*roomDoc, int64, error) {
	data, version, err := h.getBlob("room")
	if err != nil {
		return &roomDoc{Members: h.app.Members}, 0, nil
	}
	pt, err := envelope.Open(key, data, []byte("room"))
	if err != nil {
		return nil, 0, fmt.Errorf("chat: opening room doc: %w", err)
	}
	var doc roomDoc
	if err := json.Unmarshal(pt, &doc); err != nil {
		return nil, 0, fmt.Errorf("chat: parsing room doc: %w", err)
	}
	h.env.Compute(2 * time.Millisecond)
	return &doc, version, nil
}

func (h *handler) saveRoom(key []byte, doc *roomDoc, ifVersion int64) error {
	pt, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	sealed, err := envelope.Seal(key, pt, []byte("room"))
	if err != nil {
		return err
	}
	h.env.Compute(2 * time.Millisecond)
	return h.putBlob("room", sealed, ifVersion)
}

// updateRoom applies mutate under optimistic concurrency: load, apply,
// conditional save, retry on version conflict (table backend only; the
// object backend has a single attempt, last-writer-wins).
func (h *handler) updateRoom(key []byte, mutate func(*roomDoc) error) error {
	const maxAttempts = 5
	for attempt := 0; attempt < maxAttempts; attempt++ {
		doc, version, err := h.loadRoom(key)
		if err != nil {
			return err
		}
		if err := mutate(doc); err != nil {
			return err
		}
		err = h.saveRoom(key, doc, version)
		if err == nil {
			return nil
		}
		if h.app.Backend == "dynamo" && errors.Is(err, dynamo.ErrConditionFailed) {
			continue // lost the race; reload and reapply
		}
		return err
	}
	return fmt.Errorf("chat: room update contention after %d attempts", maxAttempts)
}

// iq handles session initiation: <iq type="set"><session/></iq>.
func (h *handler) iq(iq *xmpp.IQ) (lambda.Response, error) {
	if iq.Type != "set" || iq.Session == nil {
		return h.iqError(iq, "bad-request", "only session initiation is supported")
	}
	from, err := xmpp.ParseJID(iq.From)
	if err != nil || !h.memberOf(from.Local) {
		return h.iqError(iq, "auth", "not a member of this room")
	}
	resource := from.Resource
	if resource == "" {
		resource = "device"
	}
	bound := xmpp.JID{Local: from.Local, Domain: Domain, Resource: resource}
	out, err := xmpp.Encode(&xmpp.IQ{
		Type: "result", ID: iq.ID, To: iq.From,
		Bind: &xmpp.Bind{JID: bound.String()},
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200, Body: out}, nil
}

func (h *handler) iqError(iq *xmpp.IQ, typ, text string) (lambda.Response, error) {
	out, err := xmpp.Encode(&xmpp.IQ{
		Type: "error", ID: iq.ID, To: iq.From,
		Error: &xmpp.Error{Type: typ, Text: text},
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 403, Body: out}, nil
}

// presence updates the sealed presence roster.
func (h *handler) presence(p *xmpp.Presence) (lambda.Response, error) {
	from, err := xmpp.ParseJID(p.From)
	if err != nil || !h.memberOf(from.Local) {
		return lambda.Response{Status: 403, Body: []byte("not a member")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	err = h.updateRoom(key, func(doc *roomDoc) error {
		present := doc.Present[:0]
		for _, m := range doc.Present {
			if m != from.Local {
				present = append(present, m)
			}
		}
		doc.Present = present
		if p.Type != "unavailable" {
			doc.Present = append(doc.Present, from.Local)
		}
		return nil
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	// Broadcast the presence change to the other members' inboxes so
	// their clients can update rosters without polling the server.
	relayed, err := xmpp.Encode(&xmpp.Presence{
		From: from.Bare().String(), Type: p.Type, Status: p.Status,
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	if err := h.fanOut(key, from.Local, relayed); err != nil {
		return lambda.Response{Status: 500}, err
	}
	return lambda.Response{Status: 200}, nil
}

// fanOut seals a stanza into every other member's inbox queue.
func (h *handler) fanOut(key []byte, sender string, stanza []byte) error {
	for _, member := range h.app.Members {
		if member == sender {
			continue
		}
		qname := h.env.Config(core.ConfigQueuePref + InboxQueueSuffix(member))
		if qname == "" {
			continue
		}
		sealed, err := envelope.Seal(key, stanza, []byte("inbox:"+member))
		if err != nil {
			return err
		}
		if _, err := h.env.SQS().Send(h.env.Ctx(), qname, sealed); err != nil {
			return err
		}
	}
	return nil
}

// message archives a groupchat message and fans it out, encrypted, to
// every other member's inbox queue.
func (h *handler) message(m *xmpp.Message) (lambda.Response, error) {
	from, err := xmpp.ParseJID(m.From)
	if err != nil || !h.memberOf(from.Local) {
		return lambda.Response{Status: 403, Body: []byte("not a member")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}

	// One GET, append, one PUT; archive the tail when it overflows.
	// On the table backend the write is version-conditional with
	// retries, so concurrent invocations never lose an update.
	rawLen := 0
	duplicate := false
	err = h.updateRoom(key, func(doc *roomDoc) error {
		duplicate = false
		if m.ID != "" {
			if doc.LastID == nil {
				doc.LastID = make(map[string]string)
			}
			if doc.LastID[from.Local] == m.ID {
				duplicate = true // retry of an accepted stanza
				return nil
			}
			doc.LastID[from.Local] = m.ID
		}
		doc.Messages++
		doc.Entries = append(doc.Entries, historyEntry{From: from.Local, Body: m.Body, Seq: doc.Messages})
		tailBytes := 0
		for _, e := range doc.Entries {
			tailBytes += len(e.Body) + len(e.From) + 24
		}
		rawLen = tailBytes
		if tailBytes > chunkLimit {
			if err := h.archiveChunk(key, doc); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	if duplicate {
		return lambda.Response{Status: 200, Attrs: map[string]string{"X-DIY-Duplicate": "1"}}, nil
	}

	// Fan out to the other members' inboxes, sealed.
	relayed, err := xmpp.Encode(&xmpp.Message{
		From: from.Bare().String(), Type: "groupchat",
		ID: m.ID, Body: m.Body,
	})
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.Compute(4 * time.Millisecond)
	if err := h.fanOut(key, from.Local, relayed); err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.RecordMemory(baseMemory + int64(rawLen+4*len(m.Body)))
	return lambda.Response{Status: 200}, nil
}

// history returns the full archive as XMPP stanzas for a member.
func (h *handler) history(member string) (lambda.Response, error) {
	if !h.memberOf(member) {
		return lambda.Response{Status: 403, Body: []byte("not a member")}, nil
	}
	key, err := h.key()
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	doc, _, err := h.loadRoom(key)
	if err != nil {
		return lambda.Response{Status: 500}, err
	}
	var sb strings.Builder
	emit := func(entries []historyEntry) error {
		for _, e := range entries {
			out, err := xmpp.Encode(&xmpp.Message{
				From: e.From + "@" + Domain, Type: "groupchat",
				ID: fmt.Sprintf("seq-%d", e.Seq), Body: e.Body,
			})
			if err != nil {
				return err
			}
			sb.Write(out)
			sb.WriteByte('\n')
		}
		return nil
	}
	for c := 0; c < doc.Chunks; c++ {
		entries, err := h.loadArchivedChunk(key, c)
		if err != nil {
			return lambda.Response{Status: 500}, err
		}
		if err := emit(entries); err != nil {
			return lambda.Response{Status: 500}, err
		}
	}
	if err := emit(doc.Entries); err != nil {
		return lambda.Response{Status: 500}, err
	}
	h.env.Compute(6 * time.Millisecond)
	return lambda.Response{Status: 200, Body: []byte(sb.String())}, nil
}

// archiveChunk moves the live tail into an immutable archived chunk
// object and resets the tail.
func (h *handler) archiveChunk(key []byte, doc *roomDoc) error {
	pt, err := json.Marshal(doc.Entries)
	if err != nil {
		return err
	}
	chunkKey := fmt.Sprintf("history/%06d", doc.Chunks)
	sealed, err := envelope.Seal(key, pt, []byte(chunkKey))
	if err != nil {
		return err
	}
	if err := h.putBlob(chunkKey, sealed, -1); err != nil {
		return err
	}
	doc.Chunks++
	doc.Entries = nil
	return nil
}

// loadArchivedChunk reads archived chunk c.
func (h *handler) loadArchivedChunk(key []byte, c int) ([]historyEntry, error) {
	chunkKey := fmt.Sprintf("history/%06d", c)
	data, _, err := h.getBlob(chunkKey)
	if err != nil {
		return nil, fmt.Errorf("chat: reading chunk %s: %w", chunkKey, err)
	}
	pt, err := envelope.Open(key, data, []byte(chunkKey))
	if err != nil {
		return nil, fmt.Errorf("chat: opening chunk %s: %w", chunkKey, err)
	}
	var entries []historyEntry
	if err := json.Unmarshal(pt, &entries); err != nil {
		return nil, fmt.Errorf("chat: parsing chunk %s: %w", chunkKey, err)
	}
	return entries, nil
}

// Install deploys a chat room for user with the given members.
func Install(cloud *core.Cloud, user string, app App) (*core.Deployment, error) {
	return core.Install(cloud, user, app)
}
