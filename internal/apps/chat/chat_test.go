package chat

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
	"repro/internal/proto/xmpp"
)

func newRoom(t *testing.T, members ...string) (*core.Cloud, *core.Deployment) {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) == 0 {
		members = []string{"alice", "bob"}
	}
	d, err := Install(cloud, "alice", App{Members: members})
	if err != nil {
		t.Fatal(err)
	}
	return cloud, d
}

func session(t *testing.T, d *core.Deployment, member string) *Client {
	t.Helper()
	c := NewClient(d, member, "test")
	if _, err := c.Session(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSessionInitiation(t *testing.T) {
	_, d := newRoom(t)
	c := NewClient(d, "alice", "phone")
	stats, err := c.Session()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BilledTime < 100*time.Millisecond {
		t.Fatalf("billed %v", stats.BilledTime)
	}
}

func TestSessionRejectsNonMember(t *testing.T) {
	_, d := newRoom(t)
	c := NewClient(d, "mallory", "x")
	if _, err := c.Session(); err == nil {
		t.Fatal("non-member session accepted")
	}
}

func TestSendDeliverReceive(t *testing.T) {
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")

	stats, sentAt, err := alice.SendTimed("hello bob")
	if err != nil {
		t.Fatal(err)
	}
	if stats.RunTime <= 0 {
		t.Fatal("no run time recorded")
	}

	msgs, err := bob.Receive(bob.PollContext(sentAt), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Body != "hello bob" {
		t.Fatalf("bob received %v", msgs)
	}
	if msgs[0].From != "alice@"+Domain {
		t.Fatalf("from = %q", msgs[0].From)
	}

	// The sender does not receive their own message.
	own, err := alice.Receive(alice.PollContext(sentAt), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 0 {
		t.Fatalf("alice received her own message: %v", own)
	}
}

func TestGroupFanOut(t *testing.T) {
	_, d := newRoom(t, "alice", "bob", "carol", "dave")
	alice := session(t, d, "alice")
	_, sentAt, err := alice.SendTimed("team: standup at 10")
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{"bob", "carol", "dave"} {
		c := session(t, d, member)
		msgs, err := c.Receive(c.PollContext(sentAt), 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("%s received %d messages", member, len(msgs))
		}
	}
}

func TestHistory(t *testing.T) {
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")
	for _, text := range []string{"one", "two", "three"} {
		if _, err := alice.Send(text); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bob.Send("four"); err != nil {
		t.Fatal(err)
	}
	hist, err := bob.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history has %d messages", len(hist))
	}
	if hist[0].Body != "one" || hist[3].Body != "four" {
		t.Fatalf("history order: %v, %v", hist[0].Body, hist[3].Body)
	}
	if hist[3].From != "bob@"+Domain {
		t.Fatalf("history attribution: %q", hist[3].From)
	}
}

func TestHistoryChunkRolling(t *testing.T) {
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	big := strings.Repeat("x", 8<<10)
	for i := 0; i < 12; i++ { // ~96 KB total, rolls past the 64 KB chunk
		if _, err := alice.Send(big); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := alice.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 12 {
		t.Fatalf("history has %d messages across chunks", len(hist))
	}
}

func TestEverythingAtRestIsSealed(t *testing.T) {
	cloud, d := newRoom(t)
	alice := session(t, d, "alice")
	secret := "the launch code is 0000"
	if _, err := alice.Send(secret); err != nil {
		t.Fatal(err)
	}
	admin := &sim.Context{Principal: d.Role}
	keys, err := cloud.S3.List(admin, d.Bucket, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("nothing stored")
	}
	for _, k := range keys {
		obj, err := cloud.S3.Get(admin, d.Bucket, k)
		if err != nil {
			t.Fatal(err)
		}
		if !envelope.IsSealed(obj.Data) {
			t.Fatalf("object %s is not sealed", k)
		}
		if bytes.Contains(obj.Data, []byte(secret)) {
			t.Fatalf("plaintext leaked in %s", k)
		}
	}
}

func TestQueuedDeliveriesAreSealed(t *testing.T) {
	cloud, d := newRoom(t)
	alice := session(t, d, "alice")
	secret := "very private line"
	_, sentAt, err := alice.SendTimed(secret)
	if err != nil {
		t.Fatal(err)
	}
	// Raw queue inspection (as the cloud provider could do): sealed.
	ctx := &sim.Context{Principal: d.ClientRole, Cursor: sim.NewCursor(sentAt)}
	raw, err := cloud.SQS.Receive(ctx, d.Queues[InboxQueueSuffix("bob")], 1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 {
		t.Fatal("no delivery")
	}
	if !envelope.IsSealed(raw[0].Body) || bytes.Contains(raw[0].Body, []byte(secret)) {
		t.Fatal("queued delivery is not sealed")
	}
}

func TestPresenceTracking(t *testing.T) {
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	if err := alice.Leave(); err != nil {
		t.Fatal(err)
	}
	// Double leave is harmless.
	if err := alice.Leave(); err != nil {
		t.Fatal(err)
	}
}

func TestNonMemberMessageRejected(t *testing.T) {
	_, d := newRoom(t)
	mallory := NewClient(d, "mallory", "x")
	mallory.dataKey = make([]byte, envelope.KeySize) // forged key
	if _, err := mallory.Send("spam"); err == nil {
		t.Fatal("non-member send accepted")
	}
}

func TestSendWithoutSession(t *testing.T) {
	_, d := newRoom(t)
	c := NewClient(d, "alice", "x")
	if _, err := c.Send("hi"); err != ErrNotSessioned {
		t.Fatalf("got %v, want ErrNotSessioned", err)
	}
	if _, err := c.Receive(nil, 0); err != ErrNotSessioned {
		t.Fatalf("receive: got %v, want ErrNotSessioned", err)
	}
}

func TestTable3ShapeOneSend(t *testing.T) {
	// One warm send must bill 200 ms (a 100-200 ms run rounded up) and
	// the peak working set must land near the paper's 51 MB.
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	alice.Send("warm me up")
	stats, err := alice.Send("measured send")
	if err != nil {
		t.Fatal(err)
	}
	if stats.BilledTime != 200*time.Millisecond {
		t.Fatalf("billed %v, want 200ms (run %v)", stats.BilledTime, stats.RunTime)
	}
	peakMB := stats.PeakMemoryBytes >> 20
	if peakMB < 45 || peakMB > 60 {
		t.Fatalf("peak memory %d MB, want ≈51", peakMB)
	}
	if stats.ColdStart {
		t.Fatal("second send should be warm")
	}
}

func TestBadStanzasRejected(t *testing.T) {
	_, d := newRoom(t)
	resp, _, err := d.Invoke(d.ClientContext(), "stanza", []byte("not xml"))
	if err != nil || resp.Status != 400 {
		t.Fatalf("garbage stanza: %v status %d", err, resp.Status)
	}
	resp, _, err = d.Invoke(d.ClientContext(), "bogus-op", nil)
	if err != nil || resp.Status != 400 {
		t.Fatalf("bogus op: %v status %d", err, resp.Status)
	}
	// IQ other than session-set gets an XMPP error stanza.
	raw, _ := xmpp.Encode(&xmpp.IQ{Type: "get", ID: "q", From: "alice@" + Domain})
	resp, _, err = d.Invoke(d.ClientContext(), "stanza", raw)
	if err != nil || resp.Status != 403 {
		t.Fatalf("bad IQ: %v status %d", err, resp.Status)
	}
}

func TestHistoryDeniedForNonMember(t *testing.T) {
	_, d := newRoom(t)
	resp, _, err := d.Invoke(d.ClientContext(), "history", []byte("mallory"))
	if err != nil || resp.Status != 403 {
		t.Fatalf("non-member history: %v status %d", err, resp.Status)
	}
}

func TestUsageMetered(t *testing.T) {
	cloud, d := newRoom(t)
	alice := session(t, d, "alice")
	alice.Send("bill me")
	m := cloud.Meter
	if m.TotalFor(pricing.LambdaRequests, "chat") < 2 { // session + send
		t.Fatal("lambda requests not metered")
	}
	if m.TotalFor(pricing.SQSRequests, "chat") < 1 {
		t.Fatal("sqs requests not metered")
	}
	if m.TotalFor(pricing.KMSRequests, "chat") < 1 {
		t.Fatal("kms requests not metered")
	}
}

func TestDynamoBackendRoundTrip(t *testing.T) {
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Install(cloud, "alice", App{Members: []string{"alice", "bob"}, Backend: "dynamo"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Table == "" || !cloud.Dynamo.TableExists(d.Table) {
		t.Fatal("dynamo table not provisioned")
	}
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")
	secret := "fast path message"
	_, sentAt, err := alice.SendTimed(secret)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := bob.Receive(bob.PollContext(sentAt), 20*time.Second)
	if err != nil || len(msgs) != 1 || msgs[0].Body != secret {
		t.Fatalf("delivery over dynamo backend: %v %v", err, msgs)
	}
	hist, err := bob.History()
	if err != nil || len(hist) != 1 {
		t.Fatalf("history over dynamo backend: %v %v", err, hist)
	}
	// Everything in the table is sealed ciphertext.
	admin := &sim.Context{Principal: d.Role}
	keys, err := cloud.Dynamo.Query(admin, d.Table, "")
	if err != nil || len(keys) == 0 {
		t.Fatalf("table query: %v %v", err, keys)
	}
	for _, k := range keys {
		it, err := cloud.Dynamo.Get(admin, d.Table, k)
		if err != nil {
			t.Fatal(err)
		}
		if !envelope.IsSealed(it.Value) || bytes.Contains(it.Value, []byte(secret)) {
			t.Fatalf("item %s leaks plaintext", k)
		}
	}
	// And nothing leaked into S3: the bucket exists but holds no state.
	bucketKeys, _ := cloud.S3.List(admin, d.Bucket, "")
	if len(bucketKeys) != 0 {
		t.Fatalf("dynamo-backed chat wrote to S3: %v", bucketKeys)
	}
}

func TestDynamoBackendMigration(t *testing.T) {
	src, _ := core.NewCloud(core.CloudOptions{Name: "src"})
	dst, _ := core.NewCloud(core.CloudOptions{Name: "dst"})
	d, err := Install(src, "alice", App{Members: []string{"alice", "bob"}, Backend: "dynamo"})
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, d, "alice")
	if _, err := alice.Send("survives table migration"); err != nil {
		t.Fatal(err)
	}
	nd, err := core.Migrate(d, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dynamo.TableExists("alice-chat") {
		t.Fatal("source table survived migration")
	}
	alice2 := session(t, nd, "alice")
	hist, err := alice2.History()
	if err != nil || len(hist) != 1 || hist[0].Body != "survives table migration" {
		t.Fatalf("post-migration history: %v %v", err, hist)
	}
}

func TestPresenceBroadcastDelivered(t *testing.T) {
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")

	joinStart := d.Cloud.Clock.Now()
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	stanzas, err := bob.ReceiveStanzas(bob.PollContext(joinStart), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(stanzas) != 1 {
		t.Fatalf("bob received %d stanzas", len(stanzas))
	}
	p, ok := stanzas[0].(*xmpp.Presence)
	if !ok {
		t.Fatalf("stanza is %T, want *xmpp.Presence", stanzas[0])
	}
	if p.From != "alice@"+Domain || p.Type != "" {
		t.Fatalf("presence = %+v", p)
	}

	// Leave announces unavailability.
	leaveStart := d.Cloud.Clock.Now()
	if err := alice.Leave(); err != nil {
		t.Fatal(err)
	}
	stanzas, err = bob.ReceiveStanzas(bob.PollContext(leaveStart), 20*time.Second)
	if err != nil || len(stanzas) != 1 {
		t.Fatalf("leave broadcast: %v, %d stanzas", err, len(stanzas))
	}
	if p := stanzas[0].(*xmpp.Presence); p.Type != "unavailable" {
		t.Fatalf("leave presence = %+v", p)
	}
}

func TestReceiveFiltersPresenceAndAcksIt(t *testing.T) {
	// A presence broadcast followed by a message: Receive returns only
	// the message, and the presence does not reappear on the next poll.
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")
	start := d.Cloud.Clock.Now()
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Send("after join"); err != nil {
		t.Fatal(err)
	}
	msgs, err := bob.Receive(bob.PollContext(start), 20*time.Second)
	if err != nil || len(msgs) != 1 || msgs[0].Body != "after join" {
		t.Fatalf("receive: %v %v", err, msgs)
	}
	// Nothing left: the presence was acknowledged, not redelivered.
	again, err := bob.ReceiveStanzas(bob.PollContext(d.Cloud.Clock.Now().Add(time.Hour)), time.Second)
	if err != nil || len(again) != 0 {
		t.Fatalf("redelivery: %v %v", err, again)
	}
}

func TestConcurrentSendsNoLostUpdates(t *testing.T) {
	// The read-modify-write race: N concurrent sends against the table
	// backend must all land in the history (conditional writes +
	// retry). 2017 S3 had no conditional PUT, so the object backend is
	// documented last-writer-wins; the table backend must be exact.
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	members := []string{"alice", "bob", "carol", "dave"}
	d, err := Install(cloud, "team", App{Members: members, Backend: "dynamo"})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, len(members))
	for i, m := range members {
		clients[i] = session(t, d, m)
	}

	const perMember = 5
	var wg sync.WaitGroup
	errs := make(chan error, len(members)*perMember)
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < perMember; i++ {
				if _, err := c.Send(fmt.Sprintf("concurrent %d", i)); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hist, err := clients[0].History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != len(members)*perMember {
		t.Fatalf("history has %d messages, want %d (lost updates)", len(hist), len(members)*perMember)
	}
	// Sequence numbers are dense and unique.
	seen := make(map[string]bool)
	for _, m := range hist {
		if seen[m.ID] {
			t.Fatalf("duplicate seq id %s", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestIdempotentSendOnRetry(t *testing.T) {
	// An HTTP retry re-delivers the same stanza (same id): history and
	// fan-out must not duplicate.
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")

	start := d.Cloud.Clock.Now()
	stanza, err := xmpp.Encode(&xmpp.Message{
		From: "alice@" + Domain + "/phone", Type: "groupchat",
		ID: "retry-1", Body: "exactly once please",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // original + two retries
		resp, _, err := d.Invoke(d.ClientContext(), "stanza", stanza)
		if err != nil || resp.Status != 200 {
			t.Fatalf("attempt %d: %v %d", i, err, resp.Status)
		}
		if i > 0 && resp.Attrs["X-DIY-Duplicate"] != "1" {
			t.Fatalf("retry %d not flagged as duplicate", i)
		}
	}
	hist, err := alice.History()
	if err != nil || len(hist) != 1 {
		t.Fatalf("history has %d messages, want 1", len(hist))
	}
	msgs, err := bob.Receive(bob.PollContext(start), 20*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("bob received %d copies, want 1", len(msgs))
	}
	// A different id from the same sender is accepted.
	if _, err := alice.Send("new message"); err != nil {
		t.Fatal(err)
	}
	hist, _ = alice.History()
	if len(hist) != 2 {
		t.Fatalf("history has %d, want 2", len(hist))
	}
}

func TestServerSideSearch(t *testing.T) {
	// §7: E2E-encrypted apps cannot host services that process
	// plaintext; DIY can, inside the container.
	_, d := newRoom(t)
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")
	for _, text := range []string{
		"lunch at the thai place?",
		"deploy the cost table update",
		"Thai again next week",
		"privacy review notes attached",
	} {
		if _, err := alice.Send(text); err != nil {
			t.Fatal(err)
		}
	}
	// Case-insensitive substring search across the archive.
	matches, err := bob.Search("thai")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("search found %d, want 2", len(matches))
	}
	// Across chunk boundaries too.
	big := strings.Repeat("filler ", 2000)
	for i := 0; i < 8; i++ {
		alice.Send(big)
	}
	alice.Send("needle in the final chunk")
	matches, err = bob.Search("NEEDLE")
	if err != nil || len(matches) != 1 {
		t.Fatalf("cross-chunk search: %v, %d matches", err, len(matches))
	}
	// Non-members and malformed requests are refused.
	resp, _, _ := d.Invoke(d.ClientContext(), "search", []byte(`{"member":"mallory","query":"x"}`))
	if resp.Status != 403 {
		t.Fatalf("non-member search status %d", resp.Status)
	}
	resp, _, _ = d.Invoke(d.ClientContext(), "search", []byte(`{"member":"alice"}`))
	if resp.Status != 400 {
		t.Fatalf("empty query status %d", resp.Status)
	}
}

func TestRoster(t *testing.T) {
	_, d := newRoom(t, "alice", "bob", "carol")
	alice := session(t, d, "alice")
	bob := session(t, d, "bob")
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Join(); err != nil {
		t.Fatal(err)
	}
	members, present, err := alice.Roster()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("members = %v", members)
	}
	if len(present) != 2 {
		t.Fatalf("present = %v, want alice+bob", present)
	}
	if err := bob.Leave(); err != nil {
		t.Fatal(err)
	}
	_, present, _ = alice.Roster()
	if len(present) != 1 || present[0] != "alice" {
		t.Fatalf("present after leave = %v", present)
	}
	// Non-members are refused.
	resp, _, _ := d.Invoke(d.ClientContext(), "roster", []byte("mallory"))
	if resp.Status != 403 {
		t.Fatalf("non-member roster status %d", resp.Status)
	}
}
