package spam

import (
	"fmt"
	"sync"
	"testing"
)

func ham() *Message {
	return &Message{
		From:    "matei@cs.stanford.edu",
		Subject: "HotNets camera ready",
		Body:    "Hi Shoumik, the camera-ready deadline is next Friday. Can you update the cost table? Thanks.",
	}
}

func obviousSpam() *Message {
	return &Message{
		From:    "winner8374920@lottery-intl.biz",
		Subject: "CONGRATULATIONS WINNER",
		Body: "You have won the international lottery!!! Claim your FREE prize of $1,000,000 now. " +
			"Act now, limited time offer. Wire transfer of $500,000 dollars awaits. Click here!!!",
	}
}

func TestHamScoresLow(t *testing.T) {
	f := NewFilter()
	score, rules := f.Score(ham())
	if score >= DefaultThreshold {
		t.Fatalf("ham scored %.1f (rules %v)", score, rules)
	}
	if f.IsSpam(ham()) {
		t.Fatal("ham classified as spam")
	}
}

func TestObviousSpamScoresHigh(t *testing.T) {
	f := NewFilter()
	score, rules := f.Score(obviousSpam())
	if score < DefaultThreshold {
		t.Fatalf("spam scored only %.1f (rules %v)", score, rules)
	}
	if !f.IsSpam(obviousSpam()) {
		t.Fatal("obvious spam not classified")
	}
	if len(rules) < 3 {
		t.Fatalf("expected several rules to fire, got %v", rules)
	}
}

func TestIndividualRules(t *testing.T) {
	tests := []struct {
		rule string
		msg  *Message
	}{
		{"SUBJECT_ALL_CAPS", &Message{Subject: "BUY THIS NOW PLEASE"}},
		{"FREE_OFFER", &Message{Body: "get your free offer today"}},
		{"MONEY_AMOUNTS", &Message{Body: "send $500 and receive $10,000"}},
		{"EXCESSIVE_EXCLAMATION", &Message{Subject: "hello!!!"}},
		{"URGENT_ACTION", &Message{Body: "your account will be suspended"}},
		{"MANY_LINKS", &Message{Body: "http://a.b http://c.d http://e.f http://g.h http://i.j"}},
		{"LOTTERY_SCAM", &Message{Body: "claim your inheritance"}},
		{"SUSPICIOUS_SENDER", &Message{From: "user1234567@x.com"}},
	}
	f := NewFilter()
	for _, tt := range tests {
		_, matched := f.Score(tt.msg)
		found := false
		for _, m := range matched {
			if m == tt.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("rule %s did not fire on %+v (matched %v)", tt.rule, tt.msg, matched)
		}
	}
}

func TestRulesDoNotFireOnHam(t *testing.T) {
	f := NewFilter()
	_, matched := f.Score(ham())
	if len(matched) != 0 {
		t.Fatalf("rules fired on ham: %v", matched)
	}
}

func TestBayesUntrainedIsNeutral(t *testing.T) {
	f := NewFilter()
	if b := f.bayes(obviousSpam()); b != 0 {
		t.Fatalf("untrained bayes = %v, want 0", b)
	}
}

func TestBayesLearnsCorpus(t *testing.T) {
	f := NewFilter()
	// Train on a small synthetic corpus.
	for i := 0; i < 20; i++ {
		f.Train(&Message{Subject: "meeting notes", Body: fmt.Sprintf("agenda item %d for the systems reading group", i)}, false)
		f.Train(&Message{Subject: "cheap pills", Body: fmt.Sprintf("discount pharmacy viagra casino bonus round %d", i)}, true)
	}
	spammy := &Message{Subject: "pharmacy discount", Body: "casino bonus viagra"}
	hammy := &Message{Subject: "reading group", Body: "agenda for the systems meeting"}
	if b := f.bayes(spammy); b <= 0 {
		t.Fatalf("bayes on spammy text = %v, want > 0", b)
	}
	if b := f.bayes(hammy); b != 0 {
		t.Fatalf("bayes on hammy text = %v, want 0", b)
	}
	// And the pseudo-rule surfaces in Score.
	_, matched := f.Score(spammy)
	hasBayes := false
	for _, m := range matched {
		if m == "BAYES" {
			hasBayes = true
		}
	}
	if !hasBayes {
		t.Fatalf("BAYES pseudo-rule missing: %v", matched)
	}
}

func TestBayesScoreBounded(t *testing.T) {
	f := NewFilter()
	for i := 0; i < 50; i++ {
		f.Train(&Message{Body: "casino casino casino"}, true)
		f.Train(&Message{Body: "meeting meeting meeting"}, false)
	}
	b := f.bayes(&Message{Body: "casino casino casino casino casino"})
	if b <= 0 || b > 3 {
		t.Fatalf("bayes = %v, want in (0, 3]", b)
	}
}

func TestCustomThreshold(t *testing.T) {
	f := NewFilter()
	f.Threshold = 0.5
	if !f.IsSpam(&Message{Subject: "hello!!!"}) {
		t.Fatal("low threshold not honored")
	}
}

func TestTokenize(t *testing.T) {
	got := tokenize("Hello, WORLD! x a1-b2 this_is_long_but_fine " +
		"superduperextremelylongwordthatgetsdropped")
	want := map[string]bool{"hello": true, "world": true, "a1": true, "b2": true,
		"this": true, "is": true, "long": true, "but": true, "fine": true}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for _, w := range got {
		if !want[w] {
			t.Fatalf("unexpected token %q in %v", w, got)
		}
	}
}

func TestConcurrentTrainAndScore(t *testing.T) {
	f := NewFilter()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				f.Train(obviousSpam(), true)
				f.Train(ham(), false)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				f.Score(obviousSpam())
				f.IsSpam(ham())
			}
		}()
	}
	wg.Wait()
}
