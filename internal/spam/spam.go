// Package spam implements the SpamAssassin-style detector the paper
// lists as an email-service feature ("DIY could also support features
// like spam detection using widely used open source detectors such as
// SpamAssassin"). Like SpamAssassin it combines static heuristic rules,
// each contributing a score, with a trainable naive-Bayes text
// classifier; a message whose total crosses the threshold is spam.
package spam

import (
	"math"
	"regexp"
	"strings"
	"sync"
)

// DefaultThreshold is the score at which a message is classified as
// spam (SpamAssassin's long-standing default is 5.0).
const DefaultThreshold = 5.0

// Message is the parsed mail a filter scores.
type Message struct {
	From    string
	Subject string
	Body    string
}

// Rule is one heuristic check contributing Score when it matches.
type Rule struct {
	Name  string
	Score float64
	Match func(m *Message) bool
}

var (
	moneyRE   = regexp.MustCompile(`[$£€]\s?\d[\d,]*(\.\d+)?|(?i)\b(million|billion)\s+dollars?\b`)
	urlRE     = regexp.MustCompile(`(?i)\bhttps?://[^\s]+`)
	exclaimRE = regexp.MustCompile(`!{3,}`)
)

// DefaultRules returns the built-in heuristic rule set.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "SUBJECT_ALL_CAPS", Score: 1.5,
			Match: func(m *Message) bool {
				letters := 0
				upper := 0
				for _, r := range m.Subject {
					if r >= 'a' && r <= 'z' {
						letters++
					}
					if r >= 'A' && r <= 'Z' {
						letters++
						upper++
					}
				}
				return letters >= 6 && upper == letters
			},
		},
		{
			Name: "FREE_OFFER", Score: 1.8,
			Match: func(m *Message) bool {
				t := strings.ToLower(m.Subject + " " + m.Body)
				return strings.Contains(t, "free ") &&
					(strings.Contains(t, "offer") || strings.Contains(t, "click") ||
						strings.Contains(t, "winner") || strings.Contains(t, "prize"))
			},
		},
		{
			Name: "MONEY_AMOUNTS", Score: 1.2,
			Match: func(m *Message) bool {
				return len(moneyRE.FindAllString(m.Subject+" "+m.Body, 3)) >= 2
			},
		},
		{
			Name: "EXCESSIVE_EXCLAMATION", Score: 1.0,
			Match: func(m *Message) bool {
				return exclaimRE.MatchString(m.Subject + " " + m.Body)
			},
		},
		{
			Name: "URGENT_ACTION", Score: 1.3,
			Match: func(m *Message) bool {
				t := strings.ToLower(m.Subject + " " + m.Body)
				for _, kw := range []string{"act now", "urgent", "limited time", "verify your account", "suspended"} {
					if strings.Contains(t, kw) {
						return true
					}
				}
				return false
			},
		},
		{
			Name: "MANY_LINKS", Score: 1.0,
			Match: func(m *Message) bool {
				return len(urlRE.FindAllString(m.Body, 6)) >= 5
			},
		},
		{
			Name: "LOTTERY_SCAM", Score: 2.5,
			Match: func(m *Message) bool {
				t := strings.ToLower(m.Subject + " " + m.Body)
				return strings.Contains(t, "lottery") || strings.Contains(t, "inheritance") ||
					strings.Contains(t, "nigerian prince") || strings.Contains(t, "wire transfer")
			},
		},
		{
			Name: "SUSPICIOUS_SENDER", Score: 0.8,
			Match: func(m *Message) bool {
				from := strings.ToLower(m.From)
				digits := 0
				for _, r := range from {
					if r >= '0' && r <= '9' {
						digits++
					}
				}
				return digits >= 6
			},
		},
	}
}

// Filter scores messages. It is safe for concurrent use.
type Filter struct {
	Threshold float64
	rules     []Rule

	mu        sync.RWMutex
	spamWords map[string]int
	hamWords  map[string]int
	spamMsgs  int
	hamMsgs   int
}

// NewFilter returns a filter with the default rules and threshold and
// an untrained Bayes classifier.
func NewFilter() *Filter {
	return &Filter{
		Threshold: DefaultThreshold,
		rules:     DefaultRules(),
		spamWords: make(map[string]int),
		hamWords:  make(map[string]int),
	}
}

// Train feeds a labelled message to the Bayes classifier.
func (f *Filter) Train(m *Message, isSpam bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	words := tokenize(m.Subject + " " + m.Body)
	if isSpam {
		f.spamMsgs++
		for _, w := range words {
			f.spamWords[w]++
		}
	} else {
		f.hamMsgs++
		for _, w := range words {
			f.hamWords[w]++
		}
	}
}

// Score returns the message's total score and the names of the matched
// rules. The Bayes contribution appears as the pseudo-rule "BAYES"
// when the classifier leans spam.
func (f *Filter) Score(m *Message) (float64, []string) {
	var total float64
	var matched []string
	for _, r := range f.rules {
		if r.Match(m) {
			total += r.Score
			matched = append(matched, r.Name)
		}
	}
	if b := f.bayes(m); b > 0 {
		total += b
		matched = append(matched, "BAYES")
	}
	return total, matched
}

// IsSpam reports whether the message's score crosses the threshold.
func (f *Filter) IsSpam(m *Message) bool {
	score, _ := f.Score(m)
	return score >= f.Threshold
}

// bayes returns a score in [0, 3] proportional to how strongly the
// trained classifier believes the message is spam; 0 when untrained or
// leaning ham.
func (f *Filter) bayes(m *Message) float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.spamMsgs == 0 || f.hamMsgs == 0 {
		return 0
	}
	// Log-odds with Laplace smoothing.
	logOdds := math.Log(float64(f.spamMsgs)) - math.Log(float64(f.hamMsgs))
	spamTotal := 0
	for _, c := range f.spamWords {
		spamTotal += c
	}
	hamTotal := 0
	for _, c := range f.hamWords {
		hamTotal += c
	}
	vocab := float64(len(f.spamWords) + len(f.hamWords) + 1)
	for _, w := range tokenize(m.Subject + " " + m.Body) {
		pSpam := (float64(f.spamWords[w]) + 1) / (float64(spamTotal) + vocab)
		pHam := (float64(f.hamWords[w]) + 1) / (float64(hamTotal) + vocab)
		logOdds += math.Log(pSpam) - math.Log(pHam)
	}
	if logOdds <= 0 {
		return 0
	}
	// Squash: strong belief saturates at 3 points.
	return 3 * (1 - math.Exp(-logOdds/8))
}

func tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) >= 2 && len(f) <= 24 {
			out = append(out, f)
		}
	}
	return out
}
