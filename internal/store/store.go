// Package store implements the "DIY app store" the paper proposes
// (§8.1): a marketplace where "users may be able to install DIY
// applications with one click", applications "can be audited for
// security", users "can then update or delete applications (and any
// corresponding data) at any time", and the platform "report[s] their
// total resource consumption in a centralized UI".
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/pricing"
)

// Errors returned by the store.
var (
	ErrNotInCatalog = errors.New("store: app not in catalog")
	ErrNotInstalled = errors.New("store: app not installed for user")
	ErrAlreadyHave  = errors.New("store: app already installed for user")
	ErrUnaudited    = errors.New("store: app failed security review; enable AllowUnaudited to install anyway")
	ErrStaleVersion = errors.New("store: manifest version must increase")
)

// Manifest describes one published app version.
type Manifest struct {
	Name        string
	Version     int
	Publisher   string
	Description string
	// Audited reports whether the marketplace's security review (the
	// analog of iOS app review) passed.
	Audited bool
	// Permissions is the human-readable resource list shown to the
	// user before installation.
	Permissions []string
	// App is the installable implementation.
	App core.App
}

// Store is a DIY app marketplace bound to one cloud. It is safe for
// concurrent use.
type Store struct {
	cloud *Cloudish

	// AllowUnaudited permits installing apps that failed review.
	AllowUnaudited bool

	mu       sync.Mutex
	catalog  map[string]*Manifest
	installs map[string]*core.Deployment // "user/app"
}

// Cloudish is the provider the store deploys to (a thin alias so tests
// can build one store per cloud).
type Cloudish = core.Cloud

// New returns an empty store for the cloud.
func New(cloud *Cloudish) *Store {
	return &Store{
		cloud:    cloud,
		catalog:  make(map[string]*Manifest),
		installs: make(map[string]*core.Deployment),
	}
}

// Publish adds an app version to the catalog. Re-publishing requires a
// strictly increasing version.
func (s *Store) Publish(m Manifest) error {
	if m.Name == "" || m.App == nil {
		return errors.New("store: manifest needs a name and an app")
	}
	if m.Name != m.App.Name() {
		return fmt.Errorf("store: manifest name %q does not match app %q", m.Name, m.App.Name())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.catalog[m.Name]; ok && m.Version <= prev.Version {
		return fmt.Errorf("store: %s v%d after v%d: %w", m.Name, m.Version, prev.Version, ErrStaleVersion)
	}
	cp := m
	s.catalog[m.Name] = &cp
	return nil
}

// Catalog lists published manifests sorted by name.
func (s *Store) Catalog() []Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Manifest, 0, len(s.catalog))
	for _, m := range s.catalog {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Install performs the one-click installation: it provisions the app's
// function, key, bucket, queues and policies for the user.
func (s *Store) Install(user, appName string) (*core.Deployment, error) {
	s.mu.Lock()
	m, ok := s.catalog[appName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %q: %w", appName, ErrNotInCatalog)
	}
	if _, dup := s.installs[user+"/"+appName]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: %s for %s: %w", appName, user, ErrAlreadyHave)
	}
	audited := m.Audited
	app := m.App
	allow := s.AllowUnaudited
	s.mu.Unlock()

	if !audited && !allow {
		return nil, fmt.Errorf("store: %q: %w", appName, ErrUnaudited)
	}
	d, err := core.Install(s.cloud, user, app)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.installs[user+"/"+appName] = d
	s.mu.Unlock()
	return d, nil
}

// Installed returns a user's deployment of an app.
func (s *Store) Installed(user, appName string) (*core.Deployment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.installs[user+"/"+appName]
	return d, ok
}

// Uninstall removes a user's deployment, with its data if withData.
func (s *Store) Uninstall(user, appName string, withData bool) error {
	s.mu.Lock()
	d, ok := s.installs[user+"/"+appName]
	if ok {
		delete(s.installs, user+"/"+appName)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("store: %s for %s: %w", appName, user, ErrNotInstalled)
	}
	return d.Delete(withData)
}

// Upgrade moves a user's installation to the latest published version,
// preserving data.
func (s *Store) Upgrade(user, appName string) error {
	s.mu.Lock()
	m, okM := s.catalog[appName]
	d, okD := s.installs[user+"/"+appName]
	s.mu.Unlock()
	if !okM {
		return fmt.Errorf("store: %q: %w", appName, ErrNotInCatalog)
	}
	if !okD {
		return fmt.Errorf("store: %s for %s: %w", appName, user, ErrNotInstalled)
	}
	return core.Upgrade(d, m.App)
}

// ResourceReport is the per-app consumption summary the store's UI
// shows a user (§8.1, "similar to the storage management interfaces on
// current smartphones").
type ResourceReport struct {
	App            string
	LambdaRequests float64
	GBSeconds      float64
	StorageBytes   int64
	SQSRequests    float64
	KMSRequests    float64
	TransferOutGB  float64
}

// CostReport prices one app's metered usage at list price (no free
// tiers, which apply account-wide rather than per app).
type CostReport struct {
	App string
	// ListPrice is the marginal monthly cost of this app's usage.
	ListPrice pricing.Money
}

// Costs prices each installed app's usage for a user and returns the
// account's actual bill total (with free tiers) alongside.
func (s *Store) Costs(user string) ([]CostReport, pricing.Money) {
	noFree := s.cloud.Book.WithoutFreeTiers()
	meter := s.cloud.Meter
	kinds := []pricing.Kind{
		pricing.LambdaRequests, pricing.LambdaGBSeconds,
		pricing.S3StorageGBMo, pricing.S3PutRequests, pricing.S3GetRequests,
		pricing.TransferOutGB, pricing.SQSRequests, pricing.KMSRequests,
		pricing.SESMessages, pricing.DynamoWCU, pricing.DynamoRCU,
	}
	var out []CostReport
	for _, r := range s.Report(user) {
		appMeter := pricing.NewMeter()
		for _, k := range kinds {
			appMeter.Add(pricing.Usage{Kind: k, Quantity: meter.TotalFor(k, r.App)})
		}
		out = append(out, CostReport{
			App:       r.App,
			ListPrice: pricing.Compute(noFree, appMeter).Total(),
		})
	}
	return out, pricing.Compute(s.cloud.Book, meter).Total()
}

// Report aggregates the cloud meter per installed app for a user.
func (s *Store) Report(user string) []ResourceReport {
	s.mu.Lock()
	var deployments []*core.Deployment
	for key, d := range s.installs {
		if strings.HasPrefix(key, user+"/") {
			deployments = append(deployments, d)
		}
	}
	s.mu.Unlock()

	meter := s.cloud.Meter
	out := make([]ResourceReport, 0, len(deployments))
	for _, d := range deployments {
		app := d.AppName
		out = append(out, ResourceReport{
			App:            app,
			LambdaRequests: meter.TotalFor(pricing.LambdaRequests, app),
			GBSeconds:      meter.TotalFor(pricing.LambdaGBSeconds, app),
			StorageBytes:   s.cloud.S3.StorageBytes(d.Bucket),
			SQSRequests:    meter.TotalFor(pricing.SQSRequests, app),
			KMSRequests:    meter.TotalFor(pricing.KMSRequests, app),
			TransferOutGB:  meter.TotalFor(pricing.TransferOutGB, app),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}
