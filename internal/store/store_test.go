package store

import (
	"errors"
	"testing"

	"repro/internal/cloudsim/lambda"
	"repro/internal/core"
)

// versionedApp lets tests publish distinguishable versions.
type versionedApp struct {
	version string
}

func (versionedApp) Name() string { return "notes" }
func (a versionedApp) Spec() core.AppSpec {
	return core.AppSpec{Endpoint: "/api", Code: []byte("notes-" + a.version)}
}
func (a versionedApp) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		return lambda.Response{Status: 200, Body: []byte(a.version)}, nil
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	cloud, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return New(cloud)
}

func publish(t *testing.T, s *Store, version string, vnum int, audited bool) {
	t.Helper()
	err := s.Publish(Manifest{
		Name:        "notes",
		Version:     vnum,
		Publisher:   "diy-labs",
		Description: "encrypted notes",
		Audited:     audited,
		Permissions: []string{"1 storage bucket", "1 encryption key"},
		App:         versionedApp{version: version},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublishValidation(t *testing.T) {
	s := newStore(t)
	if err := s.Publish(Manifest{}); err == nil {
		t.Fatal("empty manifest accepted")
	}
	if err := s.Publish(Manifest{Name: "wrong", App: versionedApp{}}); err == nil {
		t.Fatal("name mismatch accepted")
	}
	publish(t, s, "v1", 1, true)
	// Same or lower version is rejected.
	err := s.Publish(Manifest{Name: "notes", Version: 1, App: versionedApp{version: "v1b"}})
	if !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("got %v, want ErrStaleVersion", err)
	}
}

func TestCatalogSorted(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	cat := s.Catalog()
	if len(cat) != 1 || cat[0].Name != "notes" || cat[0].Publisher != "diy-labs" {
		t.Fatalf("catalog = %+v", cat)
	}
}

func TestOneClickInstall(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	d, err := s.Install("alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := d.Invoke(d.ClientContext(), "ping", nil)
	if err != nil || string(resp.Body) != "v1" {
		t.Fatalf("invoke: %v %q", err, resp.Body)
	}
	if _, ok := s.Installed("alice", "notes"); !ok {
		t.Fatal("install not recorded")
	}
	// Double install is rejected.
	if _, err := s.Install("alice", "notes"); !errors.Is(err, ErrAlreadyHave) {
		t.Fatalf("got %v, want ErrAlreadyHave", err)
	}
	// A second user installs independently.
	if _, err := s.Install("bob", "notes"); err != nil {
		t.Fatalf("second user install: %v", err)
	}
}

func TestInstallUnknownApp(t *testing.T) {
	s := newStore(t)
	if _, err := s.Install("alice", "ghost"); !errors.Is(err, ErrNotInCatalog) {
		t.Fatalf("got %v, want ErrNotInCatalog", err)
	}
}

func TestUnauditedGate(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, false)
	if _, err := s.Install("alice", "notes"); !errors.Is(err, ErrUnaudited) {
		t.Fatalf("got %v, want ErrUnaudited", err)
	}
	s.AllowUnaudited = true
	if _, err := s.Install("alice", "notes"); err != nil {
		t.Fatalf("opt-in install failed: %v", err)
	}
}

func TestUpgradePreservesDeployment(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	d, err := s.Install("alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	publish(t, s, "v2", 2, true)
	if err := s.Upgrade("alice", "notes"); err != nil {
		t.Fatal(err)
	}
	resp, _, err := d.Invoke(d.ClientContext(), "ping", nil)
	if err != nil || string(resp.Body) != "v2" {
		t.Fatalf("post-upgrade invoke: %v %q", err, resp.Body)
	}
	// Resources survived.
	if !s.cloud.S3.BucketExists(d.Bucket) || !s.cloud.KMS.KeyExists(d.KeyID) {
		t.Fatal("upgrade destroyed data resources")
	}
	// Upgrading an uninstalled app fails.
	if err := s.Upgrade("carol", "notes"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("got %v, want ErrNotInstalled", err)
	}
}

func TestUninstallWithData(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	d, err := s.Install("alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Uninstall("alice", "notes", true); err != nil {
		t.Fatal(err)
	}
	if s.cloud.S3.BucketExists(d.Bucket) || s.cloud.KMS.KeyExists(d.KeyID) {
		t.Fatal("uninstall left data behind")
	}
	if err := s.Uninstall("alice", "notes", true); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("double uninstall: %v", err)
	}
	// And the slot is free for reinstallation.
	if _, err := s.Install("alice", "notes"); err != nil {
		t.Fatalf("reinstall after uninstall: %v", err)
	}
}

func TestResourceReport(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	d, err := s.Install("alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Invoke(d.ClientContext(), "ping", nil)
	}
	reports := s.Report("alice")
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.App != "notes" || r.LambdaRequests != 3 || r.GBSeconds <= 0 {
		t.Fatalf("report = %+v", r)
	}
	if got := s.Report("nobody"); len(got) != 0 {
		t.Fatalf("report for unknown user = %+v", got)
	}
}

func TestCosts(t *testing.T) {
	s := newStore(t)
	publish(t, s, "v1", 1, true)
	d, err := s.Install("alice", "notes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Invoke(d.ClientContext(), "ping", nil)
	}
	costs, accountTotal := s.Costs("alice")
	if len(costs) != 1 || costs[0].App != "notes" {
		t.Fatalf("costs = %+v", costs)
	}
	// List price of 10 invocations is tiny but strictly positive...
	if costs[0].ListPrice <= 0 {
		t.Fatalf("list price = %v, want > 0", costs[0].ListPrice)
	}
	// ...while the account bill stays at $0.00 inside the free tiers.
	if accountTotal != 0 {
		t.Fatalf("account total = %v, want $0.00", accountTotal)
	}
}
