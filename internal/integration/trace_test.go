package integration

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/trace"
	"repro/internal/core"
	"repro/internal/pricing"
)

// spanID identifies one expected hop in a trace.
type spanID struct{ service, op string }

// TestTracePropagation drives one traced chat send through the whole
// stack — gateway → lambda → {kms, state store} → sqs fan-out — and
// checks the resulting span tree, the cold-start annotation, and that
// the trace's cost ledger reproduces the pricing meter's charges for
// the flow exactly.
func TestTracePropagation(t *testing.T) {
	cases := []struct {
		name    string
		backend string
		members []string
		idle    time.Duration // clock advance before the traced send
		cold    bool
		// wantInside lists the lambda span's expected children in
		// order (the virtual billing-quantum sub-span excluded).
		wantInside []spanID
	}{
		{
			name:    "warm send on s3 backend",
			members: []string{"alice", "bob"},
			idle:    30 * time.Second,
			cold:    false,
			wantInside: []spanID{
				{"kms", "kms:Decrypt"},
				{"s3", "s3:GetObject"},
				{"s3", "s3:PutObject"},
				{"sqs", "sqs:SendMessage"},
			},
		},
		{
			name:    "cold send after warm pool expiry",
			members: []string{"alice", "bob"},
			idle:    10 * time.Minute, // past DefaultWarmTTL
			cold:    true,
			wantInside: []spanID{
				{"lambda", "cold-start"},
				{"kms", "kms:Decrypt"},
				{"s3", "s3:GetObject"},
				{"s3", "s3:PutObject"},
				{"sqs", "sqs:SendMessage"},
			},
		},
		{
			name:    "warm send on dynamo backend",
			backend: "dynamo",
			members: []string{"alice", "bob"},
			idle:    30 * time.Second,
			cold:    false,
			wantInside: []spanID{
				{"kms", "kms:Decrypt"},
				{"dynamo", "dynamodb:GetItem"},
				{"dynamo", "dynamodb:PutItem"},
				{"sqs", "sqs:SendMessage"},
			},
		},
		{
			name:    "fan-out to three members",
			members: []string{"alice", "bob", "carol"},
			idle:    30 * time.Second,
			cold:    false,
			wantInside: []spanID{
				{"kms", "kms:Decrypt"},
				{"s3", "s3:GetObject"},
				{"s3", "s3:PutObject"},
				{"sqs", "sqs:SendMessage"},
				{"sqs", "sqs:SendMessage"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cloud := newCloud(t)
			d, err := chat.Install(cloud, "proto", chat.App{
				Members: tc.members,
				Backend: tc.backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			alice := chat.NewClient(d, "alice", "laptop")
			if _, err := alice.Session(); err != nil {
				t.Fatal(err)
			}
			cloud.Clock.Advance(tc.idle)

			before := cloud.Meter.Snapshot()
			tr, stats, err := alice.SendTraced("hello, traced world")
			if err != nil {
				t.Fatal(err)
			}
			after := cloud.Meter.Snapshot()

			assertSpanTree(t, tr, d, stats, tc.cold, tc.wantInside)
			assertCostMatchesMeter(t, tr, cloud.Book, before, after)

			// The store folded the same trace: the latest stored view
			// agrees with the client-side object.
			last, ok := cloud.Tracer.Last()
			if !ok {
				t.Fatal("trace not recorded in the cloud's store")
			}
			if last.Name() != "chat-send" || last.Duration() != tr.Duration() {
				t.Errorf("stored trace = %q %v, want %q %v",
					last.Name(), last.Duration(), "chat-send", tr.Duration())
			}
		})
	}
}

// assertSpanTree checks the client → gateway → lambda → hops chain.
func assertSpanTree(t *testing.T, tr *trace.Trace, d *core.Deployment, stats lambda.InvocationStats, wantCold bool, wantInside []spanID) {
	t.Helper()
	root := tr.Root()
	if root.Service() != "client" || root.Op() != "chat-send" {
		t.Fatalf("root = %s %s", root.Service(), root.Op())
	}
	if root.Duration() <= 0 {
		t.Fatal("trace has no duration")
	}

	kids := root.Children()
	if len(kids) != 1 {
		t.Fatalf("root has %d children, want 1 gateway span", len(kids))
	}
	gw := kids[0]
	if gw.Service() != "gateway" || gw.Op() != d.Endpoint {
		t.Fatalf("first hop = %s %s, want gateway %s", gw.Service(), gw.Op(), d.Endpoint)
	}

	kids = gw.Children()
	if len(kids) != 1 {
		t.Fatalf("gateway has %d children, want 1 lambda span", len(kids))
	}
	fn := kids[0]
	if fn.Service() != "lambda" || fn.Op() != d.FnName {
		t.Fatalf("second hop = %s %s, want lambda %s", fn.Service(), fn.Op(), d.FnName)
	}
	if fn.Parent() != gw || gw.Parent() != root {
		t.Fatal("parent links broken")
	}

	// Invocation annotations agree with the returned stats.
	if v, _ := fn.Annotation("cold_start"); v != fmt.Sprintf("%v", wantCold) {
		t.Errorf("cold_start = %q, want %v", v, wantCold)
	}
	if stats.ColdStart != wantCold {
		t.Errorf("stats.ColdStart = %v, want %v", stats.ColdStart, wantCold)
	}
	if v, _ := fn.Annotation("billed_ms"); v != fmt.Sprintf("%d", stats.BilledTime.Milliseconds()) {
		t.Errorf("billed_ms = %q, want %d", v, stats.BilledTime.Milliseconds())
	}
	if v, _ := fn.Annotation("region"); v != stats.Region {
		t.Errorf("region = %q, want %q", v, stats.Region)
	}

	var got []spanID
	for _, c := range fn.Children() {
		if c.Op() == "billing-quantum" {
			continue // virtual padding span; presence depends on run time
		}
		got = append(got, spanID{c.Service(), c.Op()})
	}
	if len(got) != len(wantInside) {
		t.Fatalf("lambda children = %v, want %v", got, wantInside)
	}
	for i := range got {
		if got[i] != wantInside[i] {
			t.Errorf("hop %d = %v, want %v", i, got[i], wantInside[i])
		}
	}
}

// assertCostMatchesMeter prices the usage metered during the traced
// flow (meter snapshot diff) and requires the trace's own ledger to
// agree record for record and to the exact nanodollar.
func assertCostMatchesMeter(t *testing.T, tr *trace.Trace, book *pricing.PriceBook, before, after []pricing.Usage) {
	t.Helper()
	type key struct {
		kind     pricing.Kind
		resource string
		app      string
	}
	metered := make(map[key]float64)
	for _, u := range before {
		metered[key{u.Kind, u.Resource, u.App}] -= u.Quantity
	}
	for _, u := range after {
		metered[key{u.Kind, u.Resource, u.App}] += u.Quantity
	}
	for k, q := range metered {
		if q == 0 {
			delete(metered, k)
		}
	}

	var meterCost pricing.Money
	for k, q := range metered {
		meterCost += book.ListPrice(pricing.Usage{Kind: k.kind, Quantity: q, Resource: k.resource, App: k.app})
	}

	traced := tr.Usage()
	if len(traced) != len(metered) {
		t.Fatalf("trace ledger has %d usage records, meter diff has %d:\ntrace: %+v\nmeter: %+v",
			len(traced), len(metered), traced, metered)
	}
	for _, u := range traced {
		mq, ok := metered[key{u.Kind, u.Resource, u.App}]
		if !ok {
			t.Errorf("trace records %v/%s/%s, meter did not", u.Kind, u.Resource, u.App)
			continue
		}
		// The diff of two running meter totals carries float rounding
		// the trace's own sum does not; a relative epsilon absorbs it.
		// The priced totals below still must agree exactly.
		if diff := u.Quantity - mq; diff > 1e-9*u.Quantity || -diff > 1e-9*u.Quantity {
			t.Errorf("%v/%s/%s: trace %v, meter %v", u.Kind, u.Resource, u.App, u.Quantity, mq)
		}
	}

	if got := tr.Cost(book); got != meterCost {
		t.Errorf("trace cost %v != metered cost %v", got, meterCost)
	}
	// The per-span ledger sums to the same total.
	if got := tr.Root().SubtreeCost(book); got != tr.Cost(book) {
		t.Errorf("subtree cost %v != trace cost %v", got, tr.Cost(book))
	}
}
