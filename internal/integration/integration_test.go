// Package integration exercises multi-module scenarios end to end:
// several DIY apps sharing one cloud, region outages with failover,
// DDoS cost containment, wall-clock concurrent clients, and a
// month-scale combined workload priced against the paper's
// expectations.
package integration

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/apps/email"
	"repro/internal/apps/filetransfer"
	"repro/internal/apps/iot"
	"repro/internal/apps/video"
	"repro/internal/cloudsim/ec2"
	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/sim"
	"repro/internal/core"
	"repro/internal/pricing"
	"repro/internal/spam"
	"repro/internal/store"
	"repro/internal/workload"
)

func newCloud(t *testing.T) *core.Cloud {
	t.Helper()
	c, err := core.NewCloud(core.CloudOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOneUserRunsTheWholeSuite installs all four serverless apps for
// one user on one cloud, drives traffic through each, and checks that
// the store's per-app resource report decomposes the shared meter.
func TestOneUserRunsTheWholeSuite(t *testing.T) {
	cloud := newCloud(t)
	s := store.New(cloud)
	apps := []struct {
		manifest store.Manifest
	}{
		{store.Manifest{Name: "chat", Version: 1, Audited: true, App: chat.App{Members: []string{"casey", "dana"}}}},
		{store.Manifest{Name: "email", Version: 1, Audited: true, App: email.App{SpamFilter: spam.NewFilter()}}},
		{store.Manifest{Name: "filetransfer", Version: 1, Audited: true, App: filetransfer.App{}}},
		{store.Manifest{Name: "iot", Version: 1, Audited: true, App: iot.App{AlertRules: map[string]float64{"temperature_c": 60}}}},
	}
	for _, a := range apps {
		if err := s.Publish(a.manifest); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Install("casey", a.manifest.Name); err != nil {
			t.Fatal(err)
		}
	}

	// Chat traffic.
	room, _ := s.Installed("casey", "chat")
	caseyChat := chat.NewClient(room, "casey", "laptop")
	if _, err := caseyChat.Session(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := caseyChat.Send(fmt.Sprintf("msg %d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Inbound mail.
	inCtx := &sim.Context{App: "email", Cursor: sim.NewCursor(cloud.Clock.Now())}
	err := cloud.SES.Deliver(inCtx, "x@remote.net", "casey@"+email.MailDomain,
		[]byte("Subject: integration\r\n\r\nbody\r\n"))
	if err != nil {
		t.Fatal(err)
	}

	// A file transfer.
	xfer, _ := s.Installed("casey", "filetransfer")
	req, _ := json.Marshal(filetransfer.UploadRequest{Name: "a.bin", To: "dana", Data: []byte("payload")})
	if resp, _, err := xfer.Invoke(xfer.ClientContext(), "upload", req); err != nil || resp.Status != 200 {
		t.Fatalf("upload: %v %d", err, resp.Status)
	}

	// IoT traffic.
	home, _ := s.Installed("casey", "iot")
	reg, _ := json.Marshal(iot.Device{Name: "thermostat"})
	if resp, _, err := home.Invoke(home.ClientContext(), "register", reg); err != nil || resp.Status != 200 {
		t.Fatalf("register: %v %d", err, resp.Status)
	}

	// Per-app attribution: the report's lambda totals must sum to the
	// meter's global total.
	reports := s.Report("casey")
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	var sum float64
	for _, r := range reports {
		if r.LambdaRequests <= 0 {
			t.Errorf("app %s reports no requests", r.App)
		}
		sum += r.LambdaRequests
	}
	if total := cloud.Meter.Total(pricing.LambdaRequests); sum != total {
		t.Fatalf("per-app requests sum %v != meter total %v", sum, total)
	}

	// Everything fits in the free tiers.
	if got := cloud.Bill().TotalOf(pricing.LambdaRequests, pricing.LambdaGBSeconds, pricing.SQSRequests, pricing.KMSRequests); got != 0 {
		t.Fatalf("compute bill = %v, want $0.00", got)
	}
}

// TestRegionOutageFailover takes the home region down mid-conversation:
// the serverless chat fails over transparently while the EC2-hosted
// video relay goes dark — the paper's availability contrast.
func TestRegionOutageFailover(t *testing.T) {
	cloud := newCloud(t)
	room, err := chat.Install(cloud, "casey", chat.App{Members: []string{"casey", "dana"}})
	if err != nil {
		t.Fatal(err)
	}
	casey := chat.NewClient(room, "casey", "laptop")
	if _, err := casey.Session(); err != nil {
		t.Fatal(err)
	}
	call, err := video.StartCall(cloud, "casey", "", cloud.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	call.Join("casey")
	call.Join("dana")

	// Healthy: both work.
	if stats, err := casey.Send("before outage"); err != nil || stats.Region != "us-west-2" {
		t.Fatalf("pre-outage send: %v region %s", err, stats.Region)
	}
	if err := call.SendFrame(nil, "casey", []byte("frame")); err != nil {
		t.Fatal(err)
	}

	// Outage.
	cloud.Model.SetOutage("us-west-2", true)
	stats, err := casey.Send("during outage")
	if err != nil {
		t.Fatalf("chat did not fail over: %v", err)
	}
	if stats.Region != "us-east-1" {
		t.Fatalf("send ran in %s, want us-east-1", stats.Region)
	}
	if err := call.SendFrame(nil, "casey", []byte("frame")); !errors.Is(err, ec2.ErrRegionDown) {
		t.Fatalf("VM relay survived the outage: %v", err)
	}

	// Recovery: traffic returns home.
	cloud.Model.SetOutage("us-west-2", false)
	if stats, err := casey.Send("after recovery"); err != nil || stats.Region != "us-west-2" {
		t.Fatalf("post-recovery send: %v region %s", err, stats.Region)
	}
	// No message was lost across the outage.
	hist, err := casey.History()
	if err != nil || len(hist) != 3 {
		t.Fatalf("history after outage: %v, %d messages", err, len(hist))
	}
}

// TestDDoSCostContainment floods a throttled deployment and checks the
// billable damage is bounded (the §8.2 concern).
func TestDDoSCostContainment(t *testing.T) {
	cloud := newCloud(t)
	d, err := core.Install(cloud, "victim", throttledNotes{})
	if err != nil {
		t.Fatal(err)
	}
	before := cloud.Meter.Total(pricing.LambdaRequests)
	blocked := 0
	for i := 0; i < 5000; i++ {
		// Every attack request arrives at the same instant from a
		// fresh connection.
		ctx := &sim.Context{Cursor: sim.NewCursor(cloud.Clock.Now()), External: true}
		_, _, err := d.Invoke(ctx, "get", nil)
		if errors.Is(err, gateway.ErrThrottled) {
			blocked++
		}
	}
	invoked := cloud.Meter.Total(pricing.LambdaRequests) - before
	if blocked < 4900 {
		t.Fatalf("only %d of 5000 attack requests throttled", blocked)
	}
	if invoked > 100 {
		t.Fatalf("attack caused %v billed invocations", invoked)
	}
}

type throttledNotes struct{}

func (throttledNotes) Name() string { return "notes" }
func (throttledNotes) Spec() core.AppSpec {
	return core.AppSpec{Endpoint: "/api", Limit: gateway.Limit{RPS: 5, Burst: 20}}
}
func (throttledNotes) Handler() lambda.Handler {
	return func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
		env.Compute(5 * time.Millisecond)
		return lambda.Response{Status: 200}, nil
	}
}

// TestWallClockConcurrentChat drives the chat service with real
// goroutines and the SQS blocking receive path — no virtual cursors.
func TestWallClockConcurrentChat(t *testing.T) {
	cloud := newCloud(t)
	room, err := chat.Install(cloud, "casey", chat.App{Members: []string{"casey", "dana"}})
	if err != nil {
		t.Fatal(err)
	}
	casey := chat.NewClient(room, "casey", "laptop")
	dana := chat.NewClient(room, "dana", "phone")
	if _, err := casey.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := dana.Session(); err != nil {
		t.Fatal(err)
	}

	const n = 10
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := casey.Send(fmt.Sprintf("wall-clock %d", i)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	received := 0
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(10 * time.Second)
		for received < n && time.Now().Before(deadline) {
			// Wall-clock context: no cursor, SQS genuinely blocks.
			ctx := &sim.Context{Principal: room.ClientRole, App: "chat"}
			msgs, err := dana.Receive(ctx, 200*time.Millisecond)
			if err != nil {
				t.Errorf("receive: %v", err)
				return
			}
			received += len(msgs)
		}
	}()
	wg.Wait()
	if received != n {
		t.Fatalf("received %d of %d messages over the blocking path", received, n)
	}
}

// TestMonthScaleCombinedBill replays a compressed month (2 simulated
// days extrapolated ×15) of the paper's workloads across chat and
// email and confirms the total stays in the cents regime Table 2
// promises.
func TestMonthScaleCombinedBill(t *testing.T) {
	if testing.Short() {
		t.Skip("month-scale replay")
	}
	cloud := newCloud(t)
	group := workload.SlackGroup{
		Members:     []string{"m0", "m1", "m2", "m3", "m4"},
		MsgsPerWeek: 5000, Seed: 3,
	}
	room, err := chat.Install(cloud, "team", chat.App{Members: group.Members})
	if err != nil {
		t.Fatal(err)
	}
	clients := make(map[string]*chat.Client)
	for _, m := range group.Members {
		c := chat.NewClient(room, m, "d")
		if _, err := c.Session(); err != nil {
			t.Fatal(err)
		}
		clients[m] = c
	}
	days := 2 * 24 * time.Hour
	for _, ev := range group.Trace(cloud.Clock.Now(), days) {
		cloud.Clock.Set(ev.At)
		if _, err := clients[ev.From].Send(ev.Body); err != nil {
			t.Fatal(err)
		}
	}
	// Extrapolate 2 days -> 30 and accrue storage for the month.
	snap := cloud.Meter.Snapshot()
	for _, u := range snap {
		u.Quantity *= 14 // add the remaining 28 days
		cloud.Meter.Add(u)
	}
	cloud.S3.AccrueStorage(pricing.Month, "chat")

	bill := cloud.Bill()
	total := bill.Total().Dollars()
	// ~1400 msgs/day for the group: compute still free; request fees
	// put the total in the tens of cents, far below the $4.58 VM.
	if compute := bill.TotalOf(pricing.LambdaRequests, pricing.LambdaGBSeconds); compute != 0 {
		t.Errorf("compute bill %v, want $0.00", compute)
	}
	if total > 1.0 {
		t.Errorf("month total $%.2f, want well under $1", total)
	}
}
