package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func TestCursorAdvance(t *testing.T) {
	c := NewCursor(t0)
	c.Advance(50 * time.Millisecond)
	c.Advance(25 * time.Millisecond)
	if got, want := c.Elapsed(), 75*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
	if !c.Start().Equal(t0) {
		t.Fatalf("Start() = %v, want %v", c.Start(), t0)
	}
}

func TestCursorAdvanceNegativeIgnored(t *testing.T) {
	c := NewCursor(t0)
	c.Advance(-time.Second)
	if c.Elapsed() != 0 {
		t.Fatalf("negative advance changed elapsed to %v", c.Elapsed())
	}
}

func TestCursorAdvanceTo(t *testing.T) {
	c := NewCursor(t0)
	moved := c.AdvanceTo(t0.Add(time.Second))
	if moved != time.Second {
		t.Fatalf("AdvanceTo moved %v, want 1s", moved)
	}
	// Moving to an earlier instant is a no-op.
	if moved := c.AdvanceTo(t0); moved != 0 {
		t.Fatalf("AdvanceTo(earlier) moved %v, want 0", moved)
	}
	if got := c.Now(); !got.Equal(t0.Add(time.Second)) {
		t.Fatalf("Now() = %v, want %v", got, t0.Add(time.Second))
	}
}

func TestCursorFork(t *testing.T) {
	c := NewCursor(t0)
	c.Advance(time.Minute)
	f := c.Fork()
	if !f.Start().Equal(c.Now()) {
		t.Fatalf("Fork start = %v, want parent now %v", f.Start(), c.Now())
	}
	f.Advance(time.Second)
	if c.Elapsed() != time.Minute {
		t.Fatalf("advancing fork moved parent: elapsed %v", c.Elapsed())
	}
}

func TestContextAdvanceNilSafe(t *testing.T) {
	var ctx *Context
	ctx.Advance(time.Second) // must not panic
	if !ctx.Now().IsZero() {
		t.Fatalf("nil context Now() = %v, want zero", ctx.Now())
	}
	ctx2 := &Context{}
	ctx2.Advance(time.Second) // nil cursor: must not panic
	if !ctx2.Now().IsZero() {
		t.Fatalf("cursorless context Now() = %v, want zero", ctx2.Now())
	}
}

func TestContextAdvance(t *testing.T) {
	ctx := &Context{Cursor: NewCursor(t0)}
	ctx.Advance(time.Second)
	if got := ctx.Now(); !got.Equal(t0.Add(time.Second)) {
		t.Fatalf("Now() = %v, want %v", got, t0.Add(time.Second))
	}
}

func TestWithPrincipal(t *testing.T) {
	base := &Context{Principal: "a", Region: "us-west-2", Cursor: NewCursor(t0)}
	derived := base.WithPrincipal("b")
	if derived.Principal != "b" || base.Principal != "a" {
		t.Fatalf("WithPrincipal mutated wrong context: base=%q derived=%q", base.Principal, derived.Principal)
	}
	if derived.Cursor != base.Cursor {
		t.Fatal("WithPrincipal must share the cursor (same causal flow)")
	}
	if derived.Region != base.Region {
		t.Fatal("WithPrincipal must preserve region")
	}
}

func TestContextString(t *testing.T) {
	var nilCtx *Context
	if nilCtx.String() != "sim.Context(nil)" {
		t.Fatalf("nil String() = %q", nilCtx.String())
	}
	ctx := &Context{Principal: "p", Region: "r"}
	if got := ctx.String(); got != `sim.Context{principal="p" region="r"}` {
		t.Fatalf("String() = %q", got)
	}
}
