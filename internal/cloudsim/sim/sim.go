// Package sim holds the primitives shared by every simulated cloud
// service: the per-request virtual timeline (Cursor), the call
// context that identifies the caller and its network characteristics,
// and the hook threading distributed traces through every service
// hop.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cloudsim/trace"
)

// Cursor tracks simulated time along one request flow. Each service hop
// advances the cursor by its sampled latency; the total elapsed time is
// the end-to-end latency of the flow.
//
// A Cursor is intentionally not safe for concurrent use: it models a
// single causal chain of events. Fork one per concurrent flow.
type Cursor struct {
	start time.Time
	now   time.Time
}

// NewCursor returns a cursor positioned at start.
func NewCursor(start time.Time) *Cursor {
	return &Cursor{start: start, now: start}
}

// Now reports the cursor's current position on the simulated timeline.
func (c *Cursor) Now() time.Time { return c.now }

// Start reports where the cursor began.
func (c *Cursor) Start() time.Time { return c.start }

// Elapsed reports how much simulated time the flow has consumed.
func (c *Cursor) Elapsed() time.Duration { return c.now.Sub(c.start) }

// Advance moves the cursor forward by d. Negative d is ignored.
func (c *Cursor) Advance(d time.Duration) {
	if d > 0 {
		c.now = c.now.Add(d)
	}
}

// AdvanceTo moves the cursor to t if t is later than the current
// position, and reports how far it moved.
func (c *Cursor) AdvanceTo(t time.Time) time.Duration {
	if !t.After(c.now) {
		return 0
	}
	d := t.Sub(c.now)
	c.now = t
	return d
}

// Fork returns a new cursor starting at this cursor's current position,
// for modelling a concurrent downstream flow (e.g. an async delivery).
func (c *Cursor) Fork() *Cursor { return NewCursor(c.now) }

// Context identifies one simulated API call: who is calling, from which
// region, along which timeline, and with how much network bandwidth.
type Context struct {
	// Principal is the IAM principal ARN of the caller (empty for
	// anonymous external clients).
	Principal string

	// App attributes metered usage to a deployed application, feeding
	// the app store's per-app resource report. Empty for unattributed
	// administrative calls.
	App string

	// Region is the cloud region the call is directed at.
	Region string

	// Cursor is the simulated timeline of this request flow. It may be
	// nil, in which case services account latency nowhere (useful for
	// administrative setup calls that are not part of an experiment).
	Cursor *Cursor

	// IOBandwidthMBps is the caller's available network bandwidth in
	// MB/s, used to model payload transfer time. Zero means "ample":
	// the service applies only its base latency.
	IOBandwidthMBps float64

	// FunctionMemMB is set when the caller is a serverless function
	// container: the function's memory allocation, which couples to its
	// I/O latency and bandwidth (the paper's 128 MB vs 448 MB finding).
	// Zero means the caller is not a function.
	FunctionMemMB int

	// External marks calls that originate outside the cloud (an end
	// client). Data returned to an external caller is billed as
	// internet transfer out.
	External bool

	// Span is the trace span this call is currently nested under, or
	// nil when the flow is not being traced. Services open children
	// under it at every hop; see StartTrace.
	Span *trace.Span
}

// Advance moves the context's cursor, if any, forward by d.
func (c *Context) Advance(d time.Duration) {
	if c != nil && c.Cursor != nil {
		c.Cursor.Advance(d)
	}
}

// Now reports the context's current simulated time, or the zero time if
// the context carries no cursor.
func (c *Context) Now() time.Time {
	if c == nil || c.Cursor == nil {
		return time.Time{}
	}
	return c.Cursor.Now()
}

// WithPrincipal returns a copy of the context acting as principal p.
func (c Context) WithPrincipal(p string) *Context {
	c.Principal = p
	return &c
}

// StartTrace attaches a fresh trace to the context, rooted at the
// cursor's current instant, and returns it. The caller finishes the
// trace (tr.Finish(ctx.Now())) when the flow completes. Returns nil —
// and leaves the context untraced — when the context has no cursor:
// without a simulated timeline spans have no meaningful extent.
func (c *Context) StartTrace(name string) *trace.Trace {
	if c == nil || c.Cursor == nil {
		return nil
	}
	tr := trace.New(name, c.Cursor.Now())
	c.Span = tr.Root()
	return tr
}

// StartSpan opens a child span for one service hop under the
// context's current span, starting at the cursor's current instant.
// Returns nil when the flow is untraced; all trace.Span methods
// tolerate nil receivers, so call sites need no guards.
func (c *Context) StartSpan(service, op string) *trace.Span {
	if c == nil || c.Span == nil || c.Cursor == nil {
		return nil
	}
	return c.Span.StartChild(service, op, c.Cursor.Now())
}

// FinishSpan closes a span at the cursor's current instant. Safe on
// nil spans and untraced contexts.
func (c *Context) FinishSpan(s *trace.Span) {
	if s == nil || c == nil || c.Cursor == nil {
		return
	}
	s.Finish(c.Cursor.Now())
}

// PushSpan opens a child span and makes it the context's current
// span, so downstream hops made with the same context nest under it.
// The returned func restores the previous span and closes this one at
// the then-current cursor instant; defer it. On untraced flows both
// the span and the func are usable no-ops.
func (c *Context) PushSpan(service, op string) (*trace.Span, func()) {
	sp := c.StartSpan(service, op)
	if sp == nil {
		return nil, func() {}
	}
	prev := c.Span
	c.Span = sp
	return sp, func() {
		c.Span = prev
		sp.Finish(c.Cursor.Now())
	}
}

// String describes the context for logs and errors.
func (c *Context) String() string {
	if c == nil {
		return "sim.Context(nil)"
	}
	return fmt.Sprintf("sim.Context{principal=%q region=%q}", c.Principal, c.Region)
}
