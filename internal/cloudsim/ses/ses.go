// Package ses simulates the simple email service the DIY email
// application builds on. The paper: "While Lambda currently does not
// support SMTP endpoints, we can use Amazon's SES service to provide
// the send service, and use Lambda as a hook to encrypt email (e.g.,
// using PGP encryption) before storing it."
//
// Outbound: Send meters per-message pricing and delivers locally if the
// recipient has an inbound hook. Inbound: Deliver fires the Lambda
// function registered for the recipient address.
package ses

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

func init() {
	// SES calls are not IAM-authenticated: Send is reached from inside
	// an already-authorized function, Deliver models port-25 ingress.
	plane.Register(
		plane.Op{Service: "ses", Method: "Send", Action: ""},
		plane.Op{Service: "ses", Method: "Deliver", Action: ""},
	)
}

// TriggerSource is the lambda trigger source key for inbound mail.
const TriggerSource = "ses"

// Errors returned by the service.
var ErrNoHook = errors.New("ses: recipient has no inbound hook")

// Service is the simulated email service. It is safe for concurrent
// use. It implements lambda.EmailSender.
type Service struct {
	platform *lambda.Platform
	pl       *plane.Plane

	mu      sync.Mutex
	inbound map[string]bool // addresses with a registered hook
	outbox  []OutboundMail  // mail addressed outside the simulation
}

// OutboundMail records mail that left the simulated cloud (the "rest of
// the internet"), for test and example inspection.
type OutboundMail struct {
	From string
	To   string
	Raw  []byte
}

// New returns an SES wired to the lambda platform (for inbound
// triggers), the meter and the network model.
func New(platform *lambda.Platform, meter *pricing.Meter, model *netsim.Model) *Service {
	return &Service{
		platform: platform,
		pl:       plane.New(nil, meter, model),
		inbound:  make(map[string]bool),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors around every op.
func (s *Service) Plane() *plane.Plane { return s.pl }

var _ lambda.EmailSender = (*Service)(nil)

// RegisterInbound routes mail for addr to a Lambda function — the
// paper's "message arriving at port 25" event trigger.
func (s *Service) RegisterInbound(addr, fnName string) error {
	addr = normalize(addr)
	if err := s.platform.RegisterTrigger(TriggerSource, addr, fnName); err != nil {
		return err
	}
	s.mu.Lock()
	s.inbound[addr] = true
	s.mu.Unlock()
	return nil
}

// Send delivers raw mail from one sender to the recipients. Each
// recipient is one metered SES message. Recipients with inbound hooks
// receive the mail via their Lambda trigger; others leave the
// simulation into the outbox.
func (s *Service) Send(ctx *sim.Context, from string, to []string, raw []byte) error {
	// One metered SES message per recipient.
	usage := make([]pricing.Usage, len(to))
	for i := range usage {
		usage[i] = pricing.Usage{Kind: pricing.SESMessages, Quantity: 1}
	}
	return s.pl.Do(ctx, &plane.Call{
		Service:     "ses",
		Op:          "Send",
		Nest:        true,
		Annotations: []trace.Annotation{{Key: "recipients", Value: strconv.Itoa(len(to))}},
		Latency:     &plane.Latency{Hop: netsim.HopSES},
		Usage:       usage,
	}, func(*plane.Request) error {
		var firstErr error
		for _, rcpt := range to {
			if err := s.deliver(ctx, from, normalize(rcpt), raw); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
}

// Deliver injects inbound mail from the outside world for a hooked
// recipient, firing its Lambda function.
func (s *Service) Deliver(ctx *sim.Context, from, to string, raw []byte) error {
	to = normalize(to)
	s.mu.Lock()
	hooked := s.inbound[to]
	s.mu.Unlock()
	if !hooked {
		return fmt.Errorf("ses: %q: %w", to, ErrNoHook)
	}
	return s.pl.Do(ctx, &plane.Call{
		Service:     "ses",
		Op:          "Deliver",
		Nest:        true,
		Annotations: []trace.Annotation{{Key: "to", Value: to}},
		Latency:     &plane.Latency{Hop: netsim.HopSES},
	}, func(*plane.Request) error {
		_, _, err := s.platform.InvokeTrigger(ctx, TriggerSource, to, lambda.Event{
			Source: TriggerSource,
			Op:     "inbound",
			Body:   raw,
			Attrs:  map[string]string{"from": from, "to": to},
		})
		return err
	})
}

func (s *Service) deliver(ctx *sim.Context, from, to string, raw []byte) error {
	s.mu.Lock()
	hooked := s.inbound[to]
	s.mu.Unlock()
	if hooked {
		_, _, err := s.platform.InvokeTrigger(ctx, TriggerSource, to, lambda.Event{
			Source: TriggerSource,
			Op:     "inbound",
			Body:   raw,
			Attrs:  map[string]string{"from": from, "to": to},
		})
		return err
	}
	s.mu.Lock()
	s.outbox = append(s.outbox, OutboundMail{From: from, To: to, Raw: append([]byte(nil), raw...)})
	s.mu.Unlock()
	return nil
}

// Outbox returns a copy of the mail that left the simulation.
func (s *Service) Outbox() []OutboundMail {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]OutboundMail(nil), s.outbox...)
}

func normalize(addr string) string {
	return strings.ToLower(strings.TrimSpace(addr))
}
