package ses

import (
	"errors"
	"testing"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

type fixture struct {
	meter    *pricing.Meter
	platform *lambda.Platform
	ses      *Service
	received []lambda.Event
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{meter: pricing.NewMeter()}
	model := netsim.NewDefaultModel()
	f.platform = lambda.New(f.meter, model, clock.NewVirtual())
	f.ses = New(f.platform, f.meter, model)
	err := f.platform.RegisterFunction(lambda.Function{
		Name: "alice-mail-fn",
		App:  "email",
		Handler: func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
			f.received = append(f.received, ev)
			return lambda.Response{Status: 200}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ses.RegisterInbound("Alice@Example.com", "alice-mail-fn"); err != nil {
		t.Fatal(err)
	}
	return f
}

func ctx() *sim.Context {
	return &sim.Context{App: "email", Cursor: sim.NewCursor(clock.Epoch)}
}

func TestDeliverFiresTrigger(t *testing.T) {
	f := newFixture(t)
	err := f.ses.Deliver(ctx(), "bob@remote.net", "alice@example.com", []byte("Subject: hi\r\n\r\nhello"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.received) != 1 {
		t.Fatalf("received %d events", len(f.received))
	}
	ev := f.received[0]
	if ev.Source != TriggerSource || ev.Attrs["from"] != "bob@remote.net" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestDeliverAddressNormalization(t *testing.T) {
	f := newFixture(t)
	// Registered as Alice@Example.com; delivery with different casing
	// and whitespace must still route.
	if err := f.ses.Deliver(ctx(), "x@y.z", "  ALICE@EXAMPLE.COM ", []byte("m")); err != nil {
		t.Fatal(err)
	}
	if len(f.received) != 1 {
		t.Fatal("normalized address did not route")
	}
}

func TestDeliverNoHook(t *testing.T) {
	f := newFixture(t)
	err := f.ses.Deliver(ctx(), "x@y.z", "nobody@example.com", []byte("m"))
	if !errors.Is(err, ErrNoHook) {
		t.Fatalf("got %v, want ErrNoHook", err)
	}
}

func TestSendMetersPerRecipient(t *testing.T) {
	f := newFixture(t)
	err := f.ses.Send(ctx(), "alice@example.com",
		[]string{"one@remote.net", "two@remote.net", "three@remote.net"}, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.meter.TotalFor(pricing.SESMessages, "email"); got != 3 {
		t.Fatalf("metered %v messages, want 3", got)
	}
	if len(f.ses.Outbox()) != 3 {
		t.Fatalf("outbox has %d, want 3", len(f.ses.Outbox()))
	}
}

func TestSendLocalRecipientTriggersFunction(t *testing.T) {
	f := newFixture(t)
	err := f.ses.Send(ctx(), "bob@remote.net", []string{"alice@example.com"}, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.received) != 1 {
		t.Fatal("local recipient's function not invoked")
	}
	if len(f.ses.Outbox()) != 0 {
		t.Fatal("local delivery leaked to outbox")
	}
}

func TestSendAdvancesCursor(t *testing.T) {
	f := newFixture(t)
	c := ctx()
	f.ses.Send(c, "a@b.c", []string{"x@remote.net"}, []byte("m"))
	if c.Cursor.Elapsed() == 0 {
		t.Fatal("send consumed no simulated time")
	}
}

func TestRegisterInboundUnknownFunction(t *testing.T) {
	f := newFixture(t)
	if err := f.ses.RegisterInbound("x@y.z", "ghost-fn"); !errors.Is(err, lambda.ErrNoSuchFunction) {
		t.Fatalf("got %v, want ErrNoSuchFunction", err)
	}
}
