// Package ec2 simulates the VM hosting service used as the paper's
// strawman baseline (§5, Table 1) and as the host for the video
// conferencing relay (Table 2, row 5 — "Since Lambda does not support
// multiple connections yet, we use a t2.medium EC2 instance (with 4GB
// of RAM), which is billed per second").
//
// Unlike the serverless platform, a VM bills for every second it is
// running whether or not requests arrive, and provides no automatic
// failover: if its region goes down, so does the service. Those two
// properties are the paper's entire argument.
package ec2

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

func init() {
	// A VM request authenticates at the application layer (the hosted
	// handler), not via IAM.
	plane.Register(plane.Op{Service: "ec2", Method: "Request", Action: ""})
}

// InstanceType describes a VM size.
type InstanceType struct {
	Name     string
	MemoryMB int
	VCPUs    int
}

// Catalog is the 2017 t2 instance family.
var Catalog = map[string]InstanceType{
	"t2.nano":   {Name: "t2.nano", MemoryMB: 512, VCPUs: 1},
	"t2.micro":  {Name: "t2.micro", MemoryMB: 1024, VCPUs: 1},
	"t2.small":  {Name: "t2.small", MemoryMB: 2048, VCPUs: 1},
	"t2.medium": {Name: "t2.medium", MemoryMB: 4096, VCPUs: 2},
	"t2.large":  {Name: "t2.large", MemoryMB: 8192, VCPUs: 2},
}

// Errors returned by the service.
var (
	ErrNoSuchInstance = errors.New("ec2: no such instance")
	ErrUnknownType    = errors.New("ec2: unknown instance type")
	ErrRegionDown     = errors.New("ec2: region is down")
	ErrStopped        = errors.New("ec2: instance is not running")
)

// Handler is the request-serving code a VM hosts.
type Handler func(ctx *sim.Context, op string, body []byte) ([]byte, error)

// Instance is one launched VM.
type Instance struct {
	ID       string
	Type     InstanceType
	Region   string
	App      string
	Handler  Handler
	running  bool
	launched time.Time
	accrued  time.Time
}

// Service is the simulated VM platform. It is safe for concurrent use.
type Service struct {
	meter *pricing.Meter
	pl    *plane.Plane
	model *netsim.Model // availability checks + conditional latency
	clk   clock.Clock

	mu        sync.Mutex
	instances map[string]*Instance
	nextID    int64
}

// New returns a VM service wired to the meter, model and clock.
func New(meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		meter:     meter,
		pl:        plane.New(nil, meter, model),
		model:     model,
		clk:       clk,
		instances: make(map[string]*Instance),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors around every request.
func (s *Service) Plane() *plane.Plane { return s.pl }

// Launch starts a VM of the given type. at is the launch instant on the
// simulated timeline (pass the flow's cursor time, or the clock's now).
func (s *Service) Launch(typeName, region, app string, handler Handler, at time.Time) (*Instance, error) {
	it, ok := Catalog[typeName]
	if !ok {
		return nil, fmt.Errorf("ec2: %q: %w", typeName, ErrUnknownType)
	}
	if at.IsZero() {
		at = s.clk.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	inst := &Instance{
		ID:       "i-" + strconv.FormatInt(s.nextID, 10),
		Type:     it,
		Region:   region,
		App:      app,
		Handler:  handler,
		running:  true,
		launched: at,
		accrued:  at,
	}
	s.instances[inst.ID] = inst
	return inst, nil
}

// Terminate stops a VM at the given instant, billing its final usage.
func (s *Service) Terminate(id string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok {
		return fmt.Errorf("ec2: %q: %w", id, ErrNoSuchInstance)
	}
	if at.IsZero() {
		at = s.clk.Now()
	}
	s.accrueLocked(inst, at)
	inst.running = false
	delete(s.instances, id)
	return nil
}

// Accrue bills an instance's compute seconds up to the given instant.
// Experiments call it to flush per-second billing at the end of a
// simulated period.
func (s *Service) Accrue(id string, until time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	if !ok {
		return fmt.Errorf("ec2: %q: %w", id, ErrNoSuchInstance)
	}
	s.accrueLocked(inst, until)
	return nil
}

func (s *Service) accrueLocked(inst *Instance, until time.Time) {
	if !until.After(inst.accrued) {
		return
	}
	secs := until.Sub(inst.accrued).Seconds()
	inst.accrued = until
	s.meter.Add(pricing.Usage{
		Kind:     pricing.EC2Seconds,
		Quantity: secs,
		Resource: inst.Type.Name,
		App:      inst.App,
	})
}

// Running reports whether an instance exists and is running.
func (s *Service) Running(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.instances[id]
	return ok && inst.running
}

// Request delivers a request to an always-on VM server. There is no
// failover: if the VM's region is down, the request fails — the
// availability gap between the strawman and DIY.
func (s *Service) Request(ctx *sim.Context, id, op string, body []byte) ([]byte, error) {
	var out []byte
	// Latency is conditional on the instance being reachable, so it
	// stays in the handler (Call.Latency nil).
	err := s.pl.Do(ctx, &plane.Call{
		Service: "ec2",
		Op:      "Request",
		Annotations: []trace.Annotation{
			{Key: "instance", Value: id},
			{Key: "op", Value: op},
		},
	}, func(req *plane.Request) error {
		s.mu.Lock()
		inst, ok := s.instances[id]
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("ec2: %q: %w", id, ErrNoSuchInstance)
		}
		if !inst.running {
			req.Span.Annotate("error", "stopped")
			return fmt.Errorf("ec2: %q: %w", id, ErrStopped)
		}
		if s.model != nil && !s.model.RegionUp(inst.Region) {
			req.Span.Annotate("error", "region-down")
			return fmt.Errorf("ec2: %q in %s: %w", id, inst.Region, ErrRegionDown)
		}
		if s.model != nil && ctx != nil {
			ctx.Advance(s.model.Sample(netsim.HopClientGateway))
		}
		if inst.Handler == nil {
			return nil
		}
		var herr error
		out, herr = inst.Handler(ctx, op, body)
		return herr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MeterTransferOut bills internet egress from a VM (e.g. the video
// relay's outbound streams).
func (s *Service) MeterTransferOut(app string, bytes int64) {
	s.meter.Add(pricing.Usage{
		Kind:     pricing.TransferOutGB,
		Quantity: float64(bytes) / 1e9,
		App:      app,
	})
}
