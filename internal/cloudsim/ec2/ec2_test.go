package ec2

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

type fixture struct {
	meter *pricing.Meter
	model *netsim.Model
	clk   *clock.Virtual
	ec2   *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{meter: pricing.NewMeter(), model: netsim.NewDefaultModel(), clk: clock.NewVirtual()}
	f.ec2 = New(f.meter, f.model, f.clk)
	return f
}

func TestLaunchUnknownType(t *testing.T) {
	f := newFixture(t)
	if _, err := f.ec2.Launch("t9.mega", "us-west-2", "x", nil, clock.Epoch); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("got %v, want ErrUnknownType", err)
	}
}

func TestPerSecondBilling(t *testing.T) {
	// The paper's §6.1: a 15-minute t2.medium call billed per second.
	f := newFixture(t)
	inst, err := f.ec2.Launch("t2.medium", "us-west-2", "video", nil, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	end := clock.Epoch.Add(15 * time.Minute)
	if err := f.ec2.Terminate(inst.ID, end); err != nil {
		t.Fatal(err)
	}
	if got := f.meter.Total(pricing.EC2Seconds); got != 900 {
		t.Fatalf("billed %v seconds, want 900", got)
	}
	by := f.meter.ByResource(pricing.EC2Seconds)
	if by["t2.medium"] != 900 {
		t.Fatalf("per-type seconds = %v", by)
	}
	// Priced: 0.25 h × $0.0464 ≈ $0.0116 — the paper's "$0.01" compute.
	bill := pricing.Compute(pricing.Default2017(), f.meter)
	if got := bill.Total().RoundCents(); got != pricing.FromDollars(0.01) {
		t.Fatalf("15-min t2.medium = %v, want $0.01", got)
	}
}

func TestMonthLongNanoMatchesTable1(t *testing.T) {
	// Table 1 compute row: a t2.nano running the whole month = $4.32.
	f := newFixture(t)
	inst, _ := f.ec2.Launch("t2.nano", "us-west-2", "email", nil, clock.Epoch)
	f.ec2.Accrue(inst.ID, clock.Epoch.Add(pricing.Month))
	bill := pricing.Compute(pricing.Default2017(), f.meter)
	if got := bill.Total().RoundCents(); got != pricing.FromDollars(4.32) {
		t.Fatalf("month of t2.nano = %v, want $4.32", got)
	}
}

func TestAccrueIdempotentOverTime(t *testing.T) {
	f := newFixture(t)
	inst, _ := f.ec2.Launch("t2.nano", "us-west-2", "x", nil, clock.Epoch)
	mid := clock.Epoch.Add(time.Hour)
	f.ec2.Accrue(inst.ID, mid)
	f.ec2.Accrue(inst.ID, mid) // same instant: no double billing
	f.ec2.Accrue(inst.ID, clock.Epoch)
	if got := f.meter.Total(pricing.EC2Seconds); got != 3600 {
		t.Fatalf("billed %v, want 3600", got)
	}
	f.ec2.Accrue(inst.ID, mid.Add(time.Hour))
	if got := f.meter.Total(pricing.EC2Seconds); got != 7200 {
		t.Fatalf("billed %v, want 7200", got)
	}
}

func TestRequestServing(t *testing.T) {
	f := newFixture(t)
	inst, _ := f.ec2.Launch("t2.medium", "us-west-2", "video", func(ctx *sim.Context, op string, body []byte) ([]byte, error) {
		return append([]byte(op+":"), body...), nil
	}, clock.Epoch)
	ctx := &sim.Context{Cursor: sim.NewCursor(clock.Epoch), External: true}
	out, err := f.ec2.Request(ctx, inst.ID, "relay", []byte("frame"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "relay:frame" {
		t.Fatalf("out = %q", out)
	}
	if ctx.Cursor.Elapsed() == 0 {
		t.Fatal("request consumed no simulated time")
	}
}

func TestNoFailover(t *testing.T) {
	// The strawman's availability gap: region down means service down.
	f := newFixture(t)
	inst, _ := f.ec2.Launch("t2.nano", "us-west-2", "email", nil, clock.Epoch)
	f.model.SetOutage("us-west-2", true)
	_, err := f.ec2.Request(&sim.Context{}, inst.ID, "ping", nil)
	if !errors.Is(err, ErrRegionDown) {
		t.Fatalf("got %v, want ErrRegionDown", err)
	}
}

func TestTerminateLifecycle(t *testing.T) {
	f := newFixture(t)
	inst, _ := f.ec2.Launch("t2.nano", "us-west-2", "x", nil, clock.Epoch)
	if !f.ec2.Running(inst.ID) {
		t.Fatal("instance not running after launch")
	}
	f.ec2.Terminate(inst.ID, clock.Epoch.Add(time.Second))
	if f.ec2.Running(inst.ID) {
		t.Fatal("instance running after terminate")
	}
	if _, err := f.ec2.Request(&sim.Context{}, inst.ID, "ping", nil); !errors.Is(err, ErrNoSuchInstance) {
		t.Fatalf("got %v, want ErrNoSuchInstance", err)
	}
	if err := f.ec2.Terminate(inst.ID, clock.Epoch); !errors.Is(err, ErrNoSuchInstance) {
		t.Fatalf("double terminate: %v", err)
	}
	if err := f.ec2.Accrue(inst.ID, clock.Epoch); !errors.Is(err, ErrNoSuchInstance) {
		t.Fatalf("accrue after terminate: %v", err)
	}
}

func TestMeterTransferOut(t *testing.T) {
	f := newFixture(t)
	f.ec2.MeterTransferOut("video", 1_350_000_000) // 1.35 GB relay hour
	if got := f.meter.Total(pricing.TransferOutGB); math.Abs(got-1.35) > 1e-9 {
		t.Fatalf("transfer = %v GB, want 1.35", got)
	}
}

func TestCatalogSizes(t *testing.T) {
	// The paper calls out the t2.medium's 4 GB of RAM.
	if Catalog["t2.medium"].MemoryMB != 4096 {
		t.Fatalf("t2.medium memory = %d", Catalog["t2.medium"].MemoryMB)
	}
	if Catalog["t2.nano"].MemoryMB != 512 {
		t.Fatalf("t2.nano memory = %d", Catalog["t2.nano"].MemoryMB)
	}
}
