package kms

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	iam   *iam.Service
	meter *pricing.Meter
	kms   *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{iam: iam.New(), meter: pricing.NewMeter()}
	f.kms = New(f.iam, f.meter, netsim.NewDefaultModel(), nil)
	if err := f.kms.CreateKey("alice-chat", false); err != nil {
		t.Fatal(err)
	}
	err := f.iam.PutRole(&iam.Role{
		Name: "chat-fn",
		Policies: []iam.Policy{{
			Name: "kms-access",
			Statements: []iam.Statement{
				iam.AllowStatement(
					[]string{ActionGenerateDataKey, ActionDecrypt},
					[]string{Resource("alice-chat")},
				),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) ctx() *sim.Context {
	return &sim.Context{Principal: "chat-fn", App: "chat", Region: "us-west-2", Cursor: sim.NewCursor(t0)}
}

func TestGenerateAndDecryptDataKey(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	pt, wrapped, err := f.kms.GenerateDataKey(ctx, "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != envelope.KeySize {
		t.Fatalf("data key length %d", len(pt))
	}
	if bytes.Contains(wrapped, pt) {
		t.Fatal("plaintext data key leaked into wrapped blob")
	}
	got, err := f.kms.Decrypt(ctx, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("decrypted data key differs from generated one")
	}
}

func TestDecryptDeniedWithoutGrant(t *testing.T) {
	// The heart of the threat model: a principal without kms:Decrypt on
	// the master key must never receive the plaintext data key.
	f := newFixture(t)
	_, wrapped, err := f.kms.GenerateDataKey(f.ctx(), "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	attacker := &sim.Context{Principal: "attacker", Cursor: sim.NewCursor(t0)}
	if _, err := f.kms.Decrypt(attacker, wrapped); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("attacker decrypt: got %v, want ErrDenied", err)
	}
	// Even a real role without the grant is denied.
	f.iam.PutRole(&iam.Role{Name: "other-fn"})
	other := &sim.Context{Principal: "other-fn", Cursor: sim.NewCursor(t0)}
	if _, err := f.kms.Decrypt(other, wrapped); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("ungratned role decrypt: got %v, want ErrDenied", err)
	}
}

func TestGenerateDeniedForForeignKey(t *testing.T) {
	f := newFixture(t)
	if err := f.kms.CreateKey("bob-chat", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.kms.GenerateDataKey(f.ctx(), "bob-chat"); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("foreign key: got %v, want ErrDenied", err)
	}
}

func TestCreateKeyValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.kms.CreateKey("", false); err == nil {
		t.Fatal("empty key id accepted")
	}
	if err := f.kms.CreateKey("alice-chat", false); err == nil {
		t.Fatal("duplicate key id accepted")
	}
}

func TestCustomerManagedKeyMetersMonthlyCharge(t *testing.T) {
	f := newFixture(t)
	before := f.meter.Total(pricing.KMSCustomerKeys)
	if err := f.kms.CreateKey("cmk", true); err != nil {
		t.Fatal(err)
	}
	if got := f.meter.Total(pricing.KMSCustomerKeys) - before; got != 1 {
		t.Fatalf("customer key months metered = %v, want 1", got)
	}
	// The default (provider-managed) key in the fixture metered nothing.
	if before != 0 {
		t.Fatalf("provider-managed key metered %v key-months", before)
	}
}

func TestDeleteKeyMakesDataUnrecoverable(t *testing.T) {
	f := newFixture(t)
	_, wrapped, err := f.kms.GenerateDataKey(f.ctx(), "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.kms.DeleteKey("alice-chat"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.kms.Decrypt(f.ctx(), wrapped); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("decrypt after delete: got %v, want ErrKeyNotFound", err)
	}
	if err := f.kms.DeleteKey("alice-chat"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: got %v, want ErrKeyNotFound", err)
	}
	if f.kms.KeyExists("alice-chat") {
		t.Fatal("key still exists after delete")
	}
}

func TestDecryptMalformedBlob(t *testing.T) {
	f := newFixture(t)
	for _, blob := range [][]byte{nil, {1}, {0, 200, 'x'}} {
		if _, err := f.kms.Decrypt(f.ctx(), blob); !errors.Is(err, ErrBadBlob) {
			t.Fatalf("blob %v: got %v, want ErrBadBlob", blob, err)
		}
	}
}

func TestDecryptTamperedBlob(t *testing.T) {
	f := newFixture(t)
	_, wrapped, err := f.kms.GenerateDataKey(f.ctx(), "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	wrapped[len(wrapped)-1] ^= 0xff
	if _, err := f.kms.Decrypt(f.ctx(), wrapped); err == nil {
		t.Fatal("tampered blob decrypted")
	}
}

func TestReWrap(t *testing.T) {
	f := newFixture(t)
	if err := f.kms.CreateKey("alice-chat-v2", false); err != nil {
		t.Fatal(err)
	}
	f.iam.PutRole(&iam.Role{
		Name: "migrator",
		Policies: []iam.Policy{{
			Name: "migrate",
			Statements: []iam.Statement{
				iam.AllowStatement(
					[]string{ActionDecrypt, ActionGenerateDataKey},
					[]string{Resource("alice-chat"), Resource("alice-chat-v2")},
				),
			},
		}},
	})
	ctx := &sim.Context{Principal: "migrator", Cursor: sim.NewCursor(t0)}

	orig, wrapped, err := f.kms.GenerateDataKey(f.ctx(), "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	rewrapped, err := f.kms.ReWrap(ctx, wrapped, "alice-chat-v2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.kms.Decrypt(ctx, rewrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("rewrap changed the data key")
	}
	// The old grant holder cannot decrypt the rewrapped blob unless it
	// also holds the new key (chat-fn only has alice-chat).
	if _, err := f.kms.Decrypt(f.ctx(), rewrapped); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("old role decrypting rewrapped blob: got %v, want ErrDenied", err)
	}
}

func TestImportWrapped(t *testing.T) {
	f := newFixture(t)
	dk, err := envelope.NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := f.kms.ImportWrapped(f.ctx(), dk, "alice-chat")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.kms.Decrypt(f.ctx(), wrapped)
	if err != nil || !bytes.Equal(got, dk) {
		t.Fatalf("import round trip failed: %v", err)
	}
}

func TestAuditLogRecordsDenials(t *testing.T) {
	f := newFixture(t)
	f.kms.GenerateDataKey(f.ctx(), "alice-chat")
	attacker := &sim.Context{Principal: "mallory", Cursor: sim.NewCursor(t0)}
	f.kms.GenerateDataKey(attacker, "alice-chat")

	audit := f.kms.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(audit))
	}
	if !audit[0].Allowed || audit[0].Principal != "chat-fn" {
		t.Fatalf("first entry wrong: %+v", audit[0])
	}
	if audit[1].Allowed || audit[1].Principal != "mallory" {
		t.Fatalf("denial not audited: %+v", audit[1])
	}
}

func TestCallsAdvanceCursorAndMeter(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.kms.GenerateDataKey(ctx, "alice-chat")
	if ctx.Cursor.Elapsed() == 0 {
		t.Fatal("KMS call consumed no simulated time")
	}
	if got := f.meter.TotalFor(pricing.KMSRequests, "chat"); got != 1 {
		t.Fatalf("metered requests for chat = %v, want 1", got)
	}
}

func TestNilContextSafe(t *testing.T) {
	f := newFixture(t)
	// Administrative calls may pass a nil context; they are denied (no
	// principal) but must not panic.
	if _, _, err := f.kms.GenerateDataKey(nil, "alice-chat"); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("nil ctx: got %v, want ErrDenied", err)
	}
}
