// Package kms simulates the key management service at the center of
// DIY's threat model. Master keys are generated inside the service and
// never exported by any API: callers receive data keys (for envelope
// encryption) either wrapped under a master key or, if and only if IAM
// authorizes them, in plaintext for the duration of a function
// invocation.
//
// Every call is authenticated against IAM, metered for billing, and
// recorded in an append-only audit log — the properties the paper
// cites when it argues a KMS is "a hardened, audited system whose main
// goal is securing encryption keys".
package kms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/logs"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

func init() {
	plane.Register(
		plane.Op{Service: "kms", Method: "GenerateDataKey", Action: ActionGenerateDataKey},
		plane.Op{Service: "kms", Method: "Decrypt", Action: ActionDecrypt},
		plane.Op{Service: "kms", Method: "ReWrap", Action: ActionGenerateDataKey},
		plane.Op{Service: "kms", Method: "ImportWrapped", Action: ActionGenerateDataKey},
	)
}

// Actions checked against IAM.
const (
	ActionGenerateDataKey = "kms:GenerateDataKey"
	ActionDecrypt         = "kms:Decrypt"
	ActionDescribe        = "kms:DescribeKey"
)

// Errors returned by the service.
var (
	ErrKeyNotFound = errors.New("kms: key not found")
	ErrBadBlob     = errors.New("kms: malformed wrapped key blob")
)

// AuditEntry records one API call against a key.
type AuditEntry struct {
	Time      time.Time
	Principal string
	Action    string
	KeyID     string
	Allowed   bool
}

type masterKey struct {
	id              string
	material        []byte // never leaves the service
	customerManaged bool
}

// Service is the simulated KMS. It is safe for concurrent use.
type Service struct {
	meter *pricing.Meter
	pl    *plane.Plane
	clk   clock.Clock

	mu    sync.Mutex
	keys  map[string]*masterKey
	audit []AuditEntry
	logs  *logs.Service
}

// New returns a KMS wired to the given IAM, meter, network model and
// clock (nil defaults to the wall clock); the clock timestamps audit
// entries for calls that carry no simulated timeline.
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		meter: meter,
		pl:    plane.New(iamSvc, meter, model),
		clk:   clk,
		keys:  make(map[string]*masterKey),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors around every op.
func (s *Service) Plane() *plane.Plane { return s.pl }

// CreateKey provisions a master key with the given id. Customer-managed
// keys carry the monthly per-key charge; provider-managed default keys
// (customerManaged=false) do not. The key material is generated inside
// the service and is never returned by any API.
func (s *Service) CreateKey(id string, customerManaged bool) error {
	if id == "" {
		return errors.New("kms: key id must be non-empty")
	}
	material, err := envelope.NewDataKey()
	if err != nil {
		return fmt.Errorf("kms: creating master key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.keys[id]; exists {
		return fmt.Errorf("kms: key %q already exists", id)
	}
	s.keys[id] = &masterKey{id: id, material: material, customerManaged: customerManaged}
	if customerManaged {
		s.meter.Add(pricing.Usage{Kind: pricing.KMSCustomerKeys, Quantity: 1})
	}
	return nil
}

// DeleteKey schedules a master key for deletion (immediately, in the
// simulation). All data wrapped under it becomes unrecoverable — this
// is the "delete data for good" control DIY gives users.
func (s *Service) DeleteKey(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mk, ok := s.keys[id]
	if !ok {
		return ErrKeyNotFound
	}
	envelope.Zero(mk.material)
	delete(s.keys, id)
	return nil
}

// KeyExists reports whether a key id is provisioned.
func (s *Service) KeyExists(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.keys[id]
	return ok
}

// Resource returns the IAM resource string for a key id.
func Resource(keyID string) string { return "key/" + keyID }

// GenerateDataKey returns a fresh data key both in plaintext (for
// immediate use inside the calling container) and wrapped under the
// master key (for storage alongside the ciphertext). Requires
// kms:GenerateDataKey on the key.
func (s *Service) GenerateDataKey(ctx *sim.Context, keyID string) (plaintext, wrapped []byte, err error) {
	err = s.do(ctx, ActionGenerateDataKey, keyID, func(*plane.Request) error {
		mk, lerr := s.lookup(keyID)
		if lerr != nil {
			return lerr
		}
		dk, derr := envelope.NewDataKey()
		if derr != nil {
			return derr
		}
		w, werr := s.wrap(mk, dk)
		if werr != nil {
			return werr
		}
		plaintext, wrapped = dk, w
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return plaintext, wrapped, nil
}

// Decrypt unwraps a data key blob produced by GenerateDataKey. The key
// id is read from the blob itself, and the caller must hold kms:Decrypt
// on that key.
func (s *Service) Decrypt(ctx *sim.Context, wrapped []byte) ([]byte, error) {
	keyID, sealed, err := splitBlob(wrapped)
	if err != nil {
		return nil, err
	}
	var dk []byte
	err = s.do(ctx, ActionDecrypt, keyID, func(*plane.Request) error {
		mk, lerr := s.lookup(keyID)
		if lerr != nil {
			return lerr
		}
		d, oerr := envelope.Open(mk.material, sealed, []byte("kms:"+keyID))
		if oerr != nil {
			return fmt.Errorf("kms: unwrapping data key: %w", oerr)
		}
		dk = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dk, nil
}

// ReWrap unwraps a data key and wraps it under another master key,
// without ever exposing the data key to the caller. This is the
// primitive behind DIY's provider-migration story: ciphertext moves
// as-is and only the wrapped key changes custody.
func (s *Service) ReWrap(ctx *sim.Context, wrapped []byte, newKeyID string) ([]byte, error) {
	dk, err := s.Decrypt(ctx, wrapped)
	if err != nil {
		return nil, err
	}
	defer envelope.Zero(dk)
	var out []byte
	err = s.do(ctx, ActionGenerateDataKey, newKeyID, func(*plane.Request) error {
		mk, lerr := s.lookup(newKeyID)
		if lerr != nil {
			return lerr
		}
		w, werr := s.wrap(mk, dk)
		if werr != nil {
			return werr
		}
		out = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ImportWrapped wraps an externally supplied data key under a master
// key. Cross-cloud migration uses it on the destination side.
func (s *Service) ImportWrapped(ctx *sim.Context, dataKey []byte, keyID string) ([]byte, error) {
	var out []byte
	err := s.do(ctx, ActionGenerateDataKey, keyID, func(*plane.Request) error {
		mk, lerr := s.lookup(keyID)
		if lerr != nil {
			return lerr
		}
		w, werr := s.wrap(mk, dataKey)
		if werr != nil {
			return werr
		}
		out = w
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetLogs wires a log service; every audit entry is then also emitted
// as a structured event into the "kms/audit" log group, so the
// "hardened, audited system" evidence trail the paper's trust argument
// rests on is queryable alongside the rest of the log plane. The
// in-memory log behind Audit() remains the source of truth.
func (s *Service) SetLogs(l *logs.Service) {
	s.mu.Lock()
	s.logs = l
	s.mu.Unlock()
}

// Audit returns a copy of the audit log.
func (s *Service) Audit() []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AuditEntry(nil), s.audit...)
}

// do routes one key API call through the request plane and appends the
// audit entry once the call settles: an entry is recorded whether the
// call was allowed or denied, timestamped after the call's latency on
// the flow's timeline (or on the service clock for calls that carry no
// timeline). Allowed reflects only the IAM decision — a failed lookup
// after authorization still audits as allowed, as the real service
// logs the authenticated attempt.
func (s *Service) do(ctx *sim.Context, action, keyID string, h plane.HandlerFunc) error {
	err := s.pl.Do(ctx, &plane.Call{
		Service:     "kms",
		Op:          action,
		Action:      action,
		Resource:    Resource(keyID),
		Annotations: []trace.Annotation{{Key: "key_id", Value: keyID}},
		Latency:     &plane.Latency{Hop: netsim.HopKMS},
		Usage:       []pricing.Usage{{Kind: pricing.KMSRequests, Quantity: 1}},
	}, h)
	principal := ""
	if ctx != nil {
		principal = ctx.Principal
	}
	at := ctx.Now()
	if at.IsZero() {
		at = s.clk.Now()
	}
	entry := AuditEntry{
		Time:      at,
		Principal: principal,
		Action:    action,
		KeyID:     keyID,
		Allowed:   !errors.Is(err, iam.ErrDenied),
	}
	s.mu.Lock()
	s.audit = append(s.audit, entry)
	lg := s.logs
	s.mu.Unlock()
	if lg != nil {
		lg.PutEvents(logs.LogGroupKMSAudit, "audit", logs.Event{
			Time: entry.Time,
			Message: fmt.Sprintf("principal=%s action=%s key=%s allowed=%t",
				entry.Principal, entry.Action, entry.KeyID, entry.Allowed),
			Fields: map[string]string{
				"principal": entry.Principal,
				"action":    entry.Action,
				"key_id":    entry.KeyID,
				"allowed":   fmt.Sprintf("%t", entry.Allowed),
			},
		})
	}
	return err
}

func (s *Service) lookup(keyID string) (*masterKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mk, ok := s.keys[keyID]
	if !ok {
		return nil, fmt.Errorf("kms: %q: %w", keyID, ErrKeyNotFound)
	}
	return mk, nil
}

// wrap seals a data key under a master key and prefixes the key id so
// Decrypt can locate the master key from the blob alone.
func (s *Service) wrap(mk *masterKey, dataKey []byte) ([]byte, error) {
	sealed, err := envelope.Seal(mk.material, dataKey, []byte("kms:"+mk.id))
	if err != nil {
		return nil, fmt.Errorf("kms: wrapping data key: %w", err)
	}
	idBytes := []byte(mk.id)
	out := make([]byte, 0, 2+len(idBytes)+len(sealed))
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(idBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, idBytes...)
	return append(out, sealed...), nil
}

func splitBlob(blob []byte) (keyID string, sealed []byte, err error) {
	if len(blob) < 2 {
		return "", nil, ErrBadBlob
	}
	n := int(binary.BigEndian.Uint16(blob[:2]))
	if len(blob) < 2+n {
		return "", nil, ErrBadBlob
	}
	return string(blob[2 : 2+n]), blob[2+n:], nil
}
