// Package kms simulates the key management service at the center of
// DIY's threat model. Master keys are generated inside the service and
// never exported by any API: callers receive data keys (for envelope
// encryption) either wrapped under a master key or, if and only if IAM
// authorizes them, in plaintext for the duration of a function
// invocation.
//
// Every call is authenticated against IAM, metered for billing, and
// recorded in an append-only audit log — the properties the paper
// cites when it argues a KMS is "a hardened, audited system whose main
// goal is securing encryption keys".
package kms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

// Actions checked against IAM.
const (
	ActionGenerateDataKey = "kms:GenerateDataKey"
	ActionDecrypt         = "kms:Decrypt"
	ActionDescribe        = "kms:DescribeKey"
)

// Errors returned by the service.
var (
	ErrKeyNotFound = errors.New("kms: key not found")
	ErrBadBlob     = errors.New("kms: malformed wrapped key blob")
)

// AuditEntry records one API call against a key.
type AuditEntry struct {
	Time      time.Time
	Principal string
	Action    string
	KeyID     string
	Allowed   bool
}

type masterKey struct {
	id              string
	material        []byte // never leaves the service
	customerManaged bool
}

// Service is the simulated KMS. It is safe for concurrent use.
type Service struct {
	iam   *iam.Service
	meter *pricing.Meter
	model *netsim.Model

	mu    sync.Mutex
	keys  map[string]*masterKey
	audit []AuditEntry
}

// New returns a KMS wired to the given IAM, meter and network model.
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model) *Service {
	return &Service{
		iam:   iamSvc,
		meter: meter,
		model: model,
		keys:  make(map[string]*masterKey),
	}
}

// CreateKey provisions a master key with the given id. Customer-managed
// keys carry the monthly per-key charge; provider-managed default keys
// (customerManaged=false) do not. The key material is generated inside
// the service and is never returned by any API.
func (s *Service) CreateKey(id string, customerManaged bool) error {
	if id == "" {
		return errors.New("kms: key id must be non-empty")
	}
	material, err := envelope.NewDataKey()
	if err != nil {
		return fmt.Errorf("kms: creating master key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.keys[id]; exists {
		return fmt.Errorf("kms: key %q already exists", id)
	}
	s.keys[id] = &masterKey{id: id, material: material, customerManaged: customerManaged}
	if customerManaged {
		s.meter.Add(pricing.Usage{Kind: pricing.KMSCustomerKeys, Quantity: 1})
	}
	return nil
}

// DeleteKey schedules a master key for deletion (immediately, in the
// simulation). All data wrapped under it becomes unrecoverable — this
// is the "delete data for good" control DIY gives users.
func (s *Service) DeleteKey(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mk, ok := s.keys[id]
	if !ok {
		return ErrKeyNotFound
	}
	envelope.Zero(mk.material)
	delete(s.keys, id)
	return nil
}

// KeyExists reports whether a key id is provisioned.
func (s *Service) KeyExists(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.keys[id]
	return ok
}

// Resource returns the IAM resource string for a key id.
func Resource(keyID string) string { return "key/" + keyID }

// GenerateDataKey returns a fresh data key both in plaintext (for
// immediate use inside the calling container) and wrapped under the
// master key (for storage alongside the ciphertext). Requires
// kms:GenerateDataKey on the key.
func (s *Service) GenerateDataKey(ctx *sim.Context, keyID string) (plaintext, wrapped []byte, err error) {
	if err := s.begin(ctx, ActionGenerateDataKey, keyID); err != nil {
		return nil, nil, err
	}
	mk, err := s.lookup(keyID)
	if err != nil {
		return nil, nil, err
	}
	dk, err := envelope.NewDataKey()
	if err != nil {
		return nil, nil, err
	}
	w, err := s.wrap(mk, dk)
	if err != nil {
		return nil, nil, err
	}
	return dk, w, nil
}

// Decrypt unwraps a data key blob produced by GenerateDataKey. The key
// id is read from the blob itself, and the caller must hold kms:Decrypt
// on that key.
func (s *Service) Decrypt(ctx *sim.Context, wrapped []byte) ([]byte, error) {
	keyID, sealed, err := splitBlob(wrapped)
	if err != nil {
		return nil, err
	}
	if err := s.begin(ctx, ActionDecrypt, keyID); err != nil {
		return nil, err
	}
	mk, err := s.lookup(keyID)
	if err != nil {
		return nil, err
	}
	dk, err := envelope.Open(mk.material, sealed, []byte("kms:"+keyID))
	if err != nil {
		return nil, fmt.Errorf("kms: unwrapping data key: %w", err)
	}
	return dk, nil
}

// ReWrap unwraps a data key and wraps it under another master key,
// without ever exposing the data key to the caller. This is the
// primitive behind DIY's provider-migration story: ciphertext moves
// as-is and only the wrapped key changes custody.
func (s *Service) ReWrap(ctx *sim.Context, wrapped []byte, newKeyID string) ([]byte, error) {
	dk, err := s.Decrypt(ctx, wrapped)
	if err != nil {
		return nil, err
	}
	defer envelope.Zero(dk)
	if err := s.begin(ctx, ActionGenerateDataKey, newKeyID); err != nil {
		return nil, err
	}
	mk, err := s.lookup(newKeyID)
	if err != nil {
		return nil, err
	}
	return s.wrap(mk, dk)
}

// ImportWrapped wraps an externally supplied data key under a master
// key. Cross-cloud migration uses it on the destination side.
func (s *Service) ImportWrapped(ctx *sim.Context, dataKey []byte, keyID string) ([]byte, error) {
	if err := s.begin(ctx, ActionGenerateDataKey, keyID); err != nil {
		return nil, err
	}
	mk, err := s.lookup(keyID)
	if err != nil {
		return nil, err
	}
	return s.wrap(mk, dataKey)
}

// Audit returns a copy of the audit log.
func (s *Service) Audit() []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AuditEntry(nil), s.audit...)
}

// begin performs the per-call bookkeeping: tracing, latency,
// metering, IAM, and audit logging.
func (s *Service) begin(ctx *sim.Context, action, keyID string) error {
	sp := ctx.StartSpan("kms", action)
	defer ctx.FinishSpan(sp)
	sp.Annotate("key_id", keyID)
	if s.model != nil {
		ctx.Advance(s.model.Sample(netsim.HopKMS))
	}
	var app string
	if ctx != nil {
		app = ctx.App
	}
	usage := pricing.Usage{Kind: pricing.KMSRequests, Quantity: 1, App: app}
	s.meter.Add(usage)
	sp.AddUsage(usage)

	principal := ""
	if ctx != nil {
		principal = ctx.Principal
	}
	err := s.iam.Authorize(principal, action, Resource(keyID))
	if err != nil {
		sp.Annotate("error", "access-denied")
	}
	s.mu.Lock()
	s.audit = append(s.audit, AuditEntry{
		Time:      ctx.Now(),
		Principal: principal,
		Action:    action,
		KeyID:     keyID,
		Allowed:   err == nil,
	})
	s.mu.Unlock()
	return err
}

func (s *Service) lookup(keyID string) (*masterKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mk, ok := s.keys[keyID]
	if !ok {
		return nil, fmt.Errorf("kms: %q: %w", keyID, ErrKeyNotFound)
	}
	return mk, nil
}

// wrap seals a data key under a master key and prefixes the key id so
// Decrypt can locate the master key from the blob alone.
func (s *Service) wrap(mk *masterKey, dataKey []byte) ([]byte, error) {
	sealed, err := envelope.Seal(mk.material, dataKey, []byte("kms:"+mk.id))
	if err != nil {
		return nil, fmt.Errorf("kms: wrapping data key: %w", err)
	}
	idBytes := []byte(mk.id)
	out := make([]byte, 0, 2+len(idBytes)+len(sealed))
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(idBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, idBytes...)
	return append(out, sealed...), nil
}

func splitBlob(blob []byte) (keyID string, sealed []byte, err error) {
	if len(blob) < 2 {
		return "", nil, ErrBadBlob
	}
	n := int(binary.BigEndian.Uint16(blob[:2]))
	if len(blob) < 2+n {
		return "", nil, ErrBadBlob
	}
	return string(blob[2 : 2+n]), blob[2+n:], nil
}
