package kms

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/logs"
)

// The audit log's structured twin: with a log service wired, every
// AuditEntry is also emitted into the "kms/audit" group, in order,
// with matching fields — allowed and denied calls alike.
func TestAuditEntriesFlowIntoLogGroup(t *testing.T) {
	f := newFixture(t)
	lg := logs.New(clock.NewVirtual())
	f.kms.SetLogs(lg)

	ctx := f.ctx()
	if _, _, err := f.kms.GenerateDataKey(ctx, "alice-chat"); err != nil {
		t.Fatal(err)
	}
	// A denied call (no role) must audit and log too.
	bad := f.ctx()
	bad.Principal = "mallory"
	if _, _, err := f.kms.GenerateDataKey(bad, "alice-chat"); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}

	audit := f.kms.Audit()
	evs := lg.Events(logs.LogGroupKMSAudit, time.Time{}, time.Time{})
	if len(audit) != 2 || len(evs) != 2 {
		t.Fatalf("audit entries = %d, log events = %d, want 2 and 2", len(audit), len(evs))
	}
	for i, e := range evs {
		want := audit[i]
		if !e.Time.Equal(want.Time) {
			t.Errorf("event %d time = %v, audit %v", i, e.Time, want.Time)
		}
		if e.Fields["principal"] != want.Principal ||
			e.Fields["action"] != want.Action ||
			e.Fields["key_id"] != want.KeyID {
			t.Errorf("event %d fields = %v, audit entry %+v", i, e.Fields, want)
		}
	}
	if evs[0].Fields["allowed"] != "true" || evs[1].Fields["allowed"] != "false" {
		t.Fatalf("allowed fields = %q, %q", evs[0].Fields["allowed"], evs[1].Fields["allowed"])
	}

	// The evidence trail is queryable: count denials by principal.
	res, err := lg.Query(logs.LogGroupKMSAudit,
		`filter allowed = "false" | stats count(*) as denied by principal`,
		time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, "principal") != "mallory" || res.Value(0, "denied") != "1" {
		t.Fatalf("denial query rows = %v", res.Rows)
	}
}

// Without a log service the audit log alone remains the record — the
// default for standalone service construction.
func TestAuditWithoutLogServiceStillRecords(t *testing.T) {
	f := newFixture(t)
	if _, _, err := f.kms.GenerateDataKey(f.ctx(), "alice-chat"); err != nil {
		t.Fatal(err)
	}
	if got := len(f.kms.Audit()); got != 1 {
		t.Fatalf("audit entries = %d, want 1", got)
	}
}
