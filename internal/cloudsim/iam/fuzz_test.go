package iam

import (
	"strings"
	"testing"
)

// FuzzMatch checks the pattern matcher never panics and holds its
// basic laws: "*" matches everything; a literal matches itself.
func FuzzMatch(f *testing.F) {
	f.Add("kms:*", "kms:Decrypt")
	f.Add("bucket/*/audit", "bucket/a/audit")
	f.Add("", "")
	f.Add("***", "x")
	f.Fuzz(func(t *testing.T, pattern, value string) {
		Match(pattern, value)
		if !Match("*", value) {
			t.Fatalf("* failed to match %q", value)
		}
		if !strings.Contains(value, "*") && !Match(value, value) {
			t.Fatalf("literal %q failed to match itself", value)
		}
	})
}
