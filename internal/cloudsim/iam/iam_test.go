package iam

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func newTestService(t *testing.T) *Service {
	t.Helper()
	s := New()
	err := s.PutRole(&Role{
		Name: "chat-fn",
		Policies: []Policy{{
			Name: "chat-least-privilege",
			Statements: []Statement{
				AllowStatement(
					[]string{"kms:Decrypt", "kms:GenerateDataKey"},
					[]string{"key/alice-chat"},
				),
				AllowStatement(
					[]string{"s3:*"},
					[]string{"bucket/alice-chat/*"},
				),
				DenyStatement(
					[]string{"s3:DeleteObject"},
					[]string{"bucket/alice-chat/audit/*"},
				),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAuthorizeAllow(t *testing.T) {
	s := newTestService(t)
	if err := s.Authorize("chat-fn", "kms:Decrypt", "key/alice-chat"); err != nil {
		t.Fatalf("expected allow, got %v", err)
	}
	if err := s.Authorize("chat-fn", "s3:GetObject", "bucket/alice-chat/room/1"); err != nil {
		t.Fatalf("wildcard action/resource should allow, got %v", err)
	}
}

func TestAuthorizeDenyUnknownPrincipal(t *testing.T) {
	s := newTestService(t)
	err := s.Authorize("nobody", "kms:Decrypt", "key/alice-chat")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("unknown principal: got %v, want ErrDenied", err)
	}
}

func TestAuthorizeDenyForeignResource(t *testing.T) {
	// The crux of DIY least privilege: the chat function must NOT be
	// able to touch another user's key or bucket.
	s := newTestService(t)
	if err := s.Authorize("chat-fn", "kms:Decrypt", "key/bob-chat"); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign key access: got %v, want ErrDenied", err)
	}
	if err := s.Authorize("chat-fn", "s3:GetObject", "bucket/bob-chat/room/1"); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign bucket access: got %v, want ErrDenied", err)
	}
}

func TestExplicitDenyWins(t *testing.T) {
	s := newTestService(t)
	// s3:* allows DeleteObject on the bucket, but the audit prefix has
	// an explicit Deny, which must win.
	err := s.Authorize("chat-fn", "s3:DeleteObject", "bucket/alice-chat/audit/log1")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("explicit deny did not win: %v", err)
	}
	if err := s.Authorize("chat-fn", "s3:DeleteObject", "bucket/alice-chat/room/1"); err != nil {
		t.Fatalf("delete outside denied prefix should be allowed: %v", err)
	}
}

func TestDenyErrorIsDescriptive(t *testing.T) {
	s := newTestService(t)
	err := s.Authorize("chat-fn", "kms:Decrypt", "key/bob-chat")
	if err == nil || !strings.Contains(err.Error(), "chat-fn") || !strings.Contains(err.Error(), "kms:Decrypt") {
		t.Fatalf("denial error not descriptive: %v", err)
	}
}

func TestPutRoleValidation(t *testing.T) {
	s := New()
	if err := s.PutRole(nil); err == nil {
		t.Fatal("nil role accepted")
	}
	if err := s.PutRole(&Role{}); err == nil {
		t.Fatal("unnamed role accepted")
	}
}

func TestDeleteRole(t *testing.T) {
	s := newTestService(t)
	s.DeleteRole("chat-fn")
	if _, ok := s.Role("chat-fn"); ok {
		t.Fatal("role survived deletion")
	}
	if err := s.Authorize("chat-fn", "kms:Decrypt", "key/alice-chat"); !errors.Is(err, ErrDenied) {
		t.Fatal("deleted role still authorized")
	}
	s.DeleteRole("chat-fn") // idempotent
}

func TestRolesCount(t *testing.T) {
	s := newTestService(t)
	if s.Roles() != 1 {
		t.Fatalf("Roles() = %d, want 1", s.Roles())
	}
}

func TestMatch(t *testing.T) {
	tests := []struct {
		pattern, value string
		want           bool
	}{
		{"*", "anything", true},
		{"*", "", true},
		{"kms:Decrypt", "kms:Decrypt", true},
		{"kms:Decrypt", "kms:Encrypt", false},
		{"kms:*", "kms:Decrypt", true},
		{"kms:*", "s3:GetObject", false},
		{"bucket/a/*", "bucket/a/x/y", true},
		{"bucket/a/*", "bucket/b/x", false},
		{"bucket/*/audit", "bucket/a/audit", true},
		{"bucket/*/audit", "bucket/a/audit/x", false},
		{"*suffix", "has-suffix", true},
		{"*suffix", "suffix-not", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, tt := range tests {
		if got := Match(tt.pattern, tt.value); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.pattern, tt.value, got, tt.want)
		}
	}
}

func TestMatchLiteralProperty(t *testing.T) {
	// Property: a pattern without '*' matches exactly itself.
	f := func(s string) bool {
		if strings.Contains(s, "*") {
			return true // skip
		}
		return Match(s, s) && (s == "" || !Match(s, s+"x"))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchPrefixWildcardProperty(t *testing.T) {
	// Property: "p*" matches p + any suffix.
	f := func(p, suffix string) bool {
		if strings.Contains(p, "*") || strings.Contains(suffix, "*") {
			return true
		}
		return Match(p+"*", p+suffix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAuthorize(t *testing.T) {
	s := newTestService(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				s.Authorize("chat-fn", "kms:Decrypt", "key/alice-chat")
				s.PutRole(&Role{Name: "scratch"})
				s.Role("scratch")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
