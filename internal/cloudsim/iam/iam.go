// Package iam implements the identity and access layer the simulated
// KMS, S3 and SQS services use to authenticate callers. DIY's privacy
// argument hinges on this: the key management service releases a data
// key only to the specific function role the user installed, so the
// policy evaluator is part of the trusted computing base.
//
// The model follows AWS IAM's shape: principals assume roles; roles
// carry policies; a policy is a list of statements allowing or denying
// actions on resources, with '*' wildcards. An explicit Deny always
// wins; absent any matching Allow, the request is denied.
package iam

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Effect is a statement's disposition.
type Effect string

// Statement effects.
const (
	Allow Effect = "Allow"
	Deny  Effect = "Deny"
)

// Statement grants or denies a set of actions on a set of resources.
// Actions look like "kms:Decrypt"; resources are ARN-ish strings such
// as "key/alice-chat" or "bucket/alice-mail/*".
type Statement struct {
	Effect    Effect
	Actions   []string
	Resources []string
}

// Policy is an ordered list of statements.
type Policy struct {
	Name       string
	Statements []Statement
}

// Role is an assumable identity carrying policies.
type Role struct {
	Name     string
	Policies []Policy
}

// ErrDenied is returned when policy evaluation denies a request.
var ErrDenied = errors.New("iam: access denied")

// Service stores roles and evaluates access. It is safe for concurrent
// use.
type Service struct {
	mu    sync.RWMutex
	roles map[string]*Role
}

// New returns an empty IAM service.
func New() *Service {
	return &Service{roles: make(map[string]*Role)}
}

// PutRole creates or replaces a role.
func (s *Service) PutRole(r *Role) error {
	if r == nil || r.Name == "" {
		return errors.New("iam: role must have a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *r
	s.roles[r.Name] = &cp
	return nil
}

// DeleteRole removes a role. Deleting an absent role is a no-op.
func (s *Service) DeleteRole(name string) {
	s.mu.Lock()
	delete(s.roles, name)
	s.mu.Unlock()
}

// Role returns a role by name.
func (s *Service) Role(name string) (*Role, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.roles[name]
	return r, ok
}

// Roles reports how many roles exist (for TCB accounting and tests).
func (s *Service) Roles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.roles)
}

// Authorize evaluates whether the principal (a role name) may perform
// action on resource. It returns nil if allowed and an error wrapping
// ErrDenied otherwise.
func (s *Service) Authorize(principal, action, resource string) error {
	s.mu.RLock()
	role, ok := s.roles[principal]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("iam: unknown principal %q performing %s on %s: %w",
			principal, action, resource, ErrDenied)
	}
	allowed := false
	for _, p := range role.Policies {
		for _, st := range p.Statements {
			if !matchAny(st.Actions, action) || !matchAny(st.Resources, resource) {
				continue
			}
			if st.Effect == Deny {
				return fmt.Errorf("iam: %q explicitly denied %s on %s by policy %q: %w",
					principal, action, resource, p.Name, ErrDenied)
			}
			allowed = true
		}
	}
	if !allowed {
		return fmt.Errorf("iam: %q has no policy allowing %s on %s: %w",
			principal, action, resource, ErrDenied)
	}
	return nil
}

// matchAny reports whether any pattern matches the value.
func matchAny(patterns []string, value string) bool {
	for _, p := range patterns {
		if Match(p, value) {
			return true
		}
	}
	return false
}

// Match reports whether an IAM-style pattern matches a value. '*'
// matches any run of characters (including '/'); all other characters
// match literally. The empty pattern matches only the empty value.
func Match(pattern, value string) bool {
	// Fast paths.
	if pattern == "*" {
		return true
	}
	if !strings.Contains(pattern, "*") {
		return pattern == value
	}
	parts := strings.Split(pattern, "*")
	// First segment must prefix-match.
	if !strings.HasPrefix(value, parts[0]) {
		return false
	}
	value = value[len(parts[0]):]
	// Middle segments must appear in order.
	for _, seg := range parts[1 : len(parts)-1] {
		idx := strings.Index(value, seg)
		if idx < 0 {
			return false
		}
		value = value[idx+len(seg):]
	}
	// Last segment must suffix-match.
	return strings.HasSuffix(value, parts[len(parts)-1])
}

// AllowStatement is a convenience constructor for an Allow statement.
func AllowStatement(actions, resources []string) Statement {
	return Statement{Effect: Allow, Actions: actions, Resources: resources}
}

// DenyStatement is a convenience constructor for a Deny statement.
func DenyStatement(actions, resources []string) Statement {
	return Statement{Effect: Deny, Actions: actions, Resources: resources}
}
