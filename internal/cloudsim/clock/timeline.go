package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Timeline is a shard-local discrete-event queue driving a virtual
// clock: the fleet engine's unit of time. Events are executed in
// (instant, insertion order) — a deterministic total order — and each
// pop moves the underlying Virtual clock to the event's instant before
// the event runs, so Waiter/OnTick semantics are exactly those of a
// hand-advanced clock: waiters release and tick hooks (the telemetry
// flush boundary) fire on every move, on the goroutine draining the
// timeline. One shard drains one timeline at a time, so events never
// race each other; the internal lock only guards Schedule calls made
// from inside running events.
type Timeline struct {
	v   *Virtual
	mu  sync.Mutex
	h   eventHeap
	seq uint64
}

// event is one scheduled callback. seq breaks ties among events at the
// same instant: first scheduled runs first, always.
type event struct {
	at  time.Time
	seq uint64
	fn  func(now time.Time)
}

// NewTimeline returns a timeline whose clock starts at Epoch.
func NewTimeline() *Timeline { return NewTimelineAt(Epoch) }

// NewTimelineAt returns a timeline whose clock starts at start.
func NewTimelineAt(start time.Time) *Timeline {
	return &Timeline{v: NewVirtualAt(start)}
}

// Clock returns the virtual clock the timeline drives. Inject it into
// whatever the events operate on (a Cloud, a service); the timeline
// moves it.
func (t *Timeline) Clock() *Virtual { return t.v }

// Now implements Clock.
func (t *Timeline) Now() time.Time { return t.v.Now() }

// After implements Waiter by delegating to the underlying clock, so a
// Timeline can stand anywhere a Virtual does.
func (t *Timeline) After(d time.Duration) <-chan time.Time { return t.v.After(d) }

// Schedule enqueues fn to run at instant at. An instant at or before
// the current virtual time runs at the current time (the timeline is
// monotonic, like the clock under it). Nil fns are ignored. Events may
// schedule further events; ordering stays deterministic because ties
// resolve by scheduling order.
func (t *Timeline) Schedule(at time.Time, fn func(now time.Time)) {
	if fn == nil {
		return
	}
	t.mu.Lock()
	heap.Push(&t.h, event{at: at, seq: t.seq, fn: fn})
	t.seq++
	t.mu.Unlock()
}

// ScheduleAfter enqueues fn d after the current virtual instant.
func (t *Timeline) ScheduleAfter(d time.Duration, fn func(now time.Time)) {
	t.Schedule(t.v.Now().Add(d), fn)
}

// Step pops the earliest event, moves the clock to its instant, and
// runs it. It reports false when the queue is empty.
func (t *Timeline) Step() bool {
	t.mu.Lock()
	if len(t.h) == 0 {
		t.mu.Unlock()
		return false
	}
	ev := heap.Pop(&t.h).(event)
	t.mu.Unlock()
	t.v.Set(ev.at)
	ev.fn(t.v.Now())
	return true
}

// Run drains the queue — including events scheduled by events — and
// reports how many it executed.
func (t *Timeline) Run() int {
	n := 0
	for t.Step() {
		n++
	}
	return n
}

// RunUntil executes every event at or before end, leaves later events
// queued, finally moves the clock to end, and reports how many events
// it executed.
func (t *Timeline) RunUntil(end time.Time) int {
	n := 0
	for {
		t.mu.Lock()
		ready := len(t.h) > 0 && !t.h[0].at.After(end)
		t.mu.Unlock()
		if !ready {
			break
		}
		t.Step()
		n++
	}
	t.v.Set(end)
	return n
}

// Pending reports how many events are queued.
func (t *Timeline) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.h)
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
