package clock

import (
	"testing"
	"time"
)

// TestTimelineOrder pins the execution order: by instant, ties by
// scheduling order, and events scheduled in the past run immediately at
// the current (monotonic) instant.
func TestTimelineOrder(t *testing.T) {
	tl := NewTimeline()
	var got []int
	rec := func(id int) func(time.Time) {
		return func(time.Time) { got = append(got, id) }
	}
	at := func(d time.Duration) time.Time { return Epoch.Add(d) }

	tl.Schedule(at(3*time.Second), rec(3))
	tl.Schedule(at(1*time.Second), rec(1))
	tl.Schedule(at(2*time.Second), rec(2))
	tl.Schedule(at(2*time.Second), rec(20)) // same instant: after rec(2)

	if n := tl.Run(); n != 4 {
		t.Fatalf("Run executed %d events, want 4", n)
	}
	want := []int{1, 2, 20, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if now := tl.Now(); !now.Equal(at(3 * time.Second)) {
		t.Fatalf("clock at %v after Run, want %v", now, at(3*time.Second))
	}

	// An event in the past executes at the current instant.
	fired := time.Time{}
	tl.Schedule(at(1*time.Second), func(now time.Time) { fired = now })
	tl.Run()
	if !fired.Equal(at(3 * time.Second)) {
		t.Fatalf("past event ran at %v, want current instant %v", fired, at(3*time.Second))
	}
}

// TestTimelineEventsScheduleEvents checks the DES pattern the fleet
// account drivers use: each event schedules its successor.
func TestTimelineEventsScheduleEvents(t *testing.T) {
	tl := NewTimeline()
	end := Epoch.Add(10 * time.Second)
	count := 0
	var step func(now time.Time)
	step = func(now time.Time) {
		count++
		next := now.Add(3 * time.Second)
		if next.Before(end) {
			tl.Schedule(next, step)
		}
	}
	tl.Schedule(Epoch.Add(1*time.Second), step)
	// Arrivals land at 1s, 4s, 7s; the next would be 10s, which is not
	// before the horizon, so the chain stops at three events.
	if n := tl.Run(); n != 3 || count != 3 {
		t.Fatalf("chained run executed %d events (callbacks %d), want 3", n, count)
	}
}

// TestTimelinePreservesClockSemantics checks that OnTick hooks and
// waiters on the driven clock behave exactly as under manual Advance.
func TestTimelinePreservesClockSemantics(t *testing.T) {
	tl := NewTimeline()
	ticks := 0
	tl.Clock().OnTick(func(time.Time) { ticks++ })

	release := tl.Clock().After(5 * time.Second)
	tl.Schedule(Epoch.Add(2*time.Second), func(time.Time) {})
	tl.Schedule(Epoch.Add(6*time.Second), func(time.Time) {})
	tl.Run()

	if ticks != 2 {
		t.Fatalf("OnTick fired %d times, want 2 (one per clock move)", ticks)
	}
	select {
	case at := <-release:
		if want := Epoch.Add(6 * time.Second); !at.Equal(want) {
			t.Fatalf("waiter released at %v, want %v", at, want)
		}
	default:
		t.Fatal("waiter not released by the timeline crossing its deadline")
	}
}

// TestTimelineRunUntil pins the window semantics RunFleet relies on:
// events past the horizon stay queued, and the clock lands exactly on
// the horizon.
func TestTimelineRunUntil(t *testing.T) {
	tl := NewTimeline()
	ran := 0
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 9 * time.Second} {
		tl.Schedule(Epoch.Add(d), func(time.Time) { ran++ })
	}
	end := Epoch.Add(5 * time.Second)
	if n := tl.RunUntil(end); n != 2 || ran != 2 {
		t.Fatalf("RunUntil executed %d events (callbacks %d), want 2", n, ran)
	}
	if p := tl.Pending(); p != 1 {
		t.Fatalf("%d events pending after RunUntil, want 1", p)
	}
	if now := tl.Now(); !now.Equal(end) {
		t.Fatalf("clock at %v after RunUntil, want %v", now, end)
	}
}
