package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallNow(t *testing.T) {
	var w Wall
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("NewVirtual().Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !v.Now().Equal(want) {
		t.Fatalf("after Advance(90s): Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual()
	v.Advance(-time.Hour)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("negative Advance moved the clock to %v", v.Now())
	}
}

func TestVirtualSetMonotonic(t *testing.T) {
	v := NewVirtual()
	later := Epoch.Add(time.Hour)
	v.Set(later)
	if !v.Now().Equal(later) {
		t.Fatalf("Set(later): Now() = %v, want %v", v.Now(), later)
	}
	v.Set(Epoch) // earlier: must be ignored
	if !v.Now().Equal(later) {
		t.Fatalf("Set(earlier) rewound the clock to %v", v.Now())
	}
}

func TestVirtualAtCustomStart(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtualAt(start)
	if !v.Now().Equal(start) {
		t.Fatalf("NewVirtualAt: Now() = %v, want %v", v.Now(), start)
	}
}

func TestVirtualAfterConcurrentWaiters(t *testing.T) {
	// Many goroutines park at staggered deadlines; one Advance past all
	// of them must release every waiter with the post-advance time.
	v := NewVirtual()
	const waiters = 16
	results := make(chan time.Time, waiters)
	var ready sync.WaitGroup
	for i := 0; i < waiters; i++ {
		d := time.Duration(i+1) * time.Second
		ready.Add(1)
		go func() {
			ch := v.After(d)
			ready.Done()
			results <- <-ch
		}()
	}
	ready.Wait()
	for v.Waiters() < waiters {
		time.Sleep(time.Millisecond) // let every goroutine register
	}
	v.Advance(waiters * time.Second)
	want := Epoch.Add(waiters * time.Second)
	for i := 0; i < waiters; i++ {
		if got := <-results; !got.Equal(want) {
			t.Fatalf("waiter released at %v, want %v", got, want)
		}
	}
	if v.Waiters() != 0 {
		t.Fatalf("%d waiters still registered after release", v.Waiters())
	}
}

func TestVirtualAfterPartialRelease(t *testing.T) {
	// An Advance that crosses only some deadlines releases only those
	// waiters; the rest stay parked until a later Advance or Set.
	v := NewVirtual()
	early := v.After(time.Second)
	late := v.After(time.Minute)

	v.Advance(10 * time.Second)
	if got := <-early; !got.Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("early waiter released at %v", got)
	}
	select {
	case got := <-late:
		t.Fatalf("late waiter released prematurely at %v", got)
	default:
	}

	v.Set(Epoch.Add(2 * time.Minute))
	if got := <-late; !got.Equal(Epoch.Add(2 * time.Minute)) {
		t.Fatalf("late waiter released at %v", got)
	}
}

func TestAfterZeroAndNegative(t *testing.T) {
	// Zero/negative waits are immediately ready on both implementations
	// (After never blocks the caller; the channel is pre-filled).
	v := NewVirtual()
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case got := <-v.After(d):
			if !got.Equal(Epoch) {
				t.Fatalf("Virtual.After(%v) delivered %v, want %v", d, got, Epoch)
			}
		default:
			t.Fatalf("Virtual.After(%v) not immediately ready", d)
		}
	}
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case <-Wall{}.After(d):
		case <-time.After(time.Second):
			t.Fatalf("Wall.After(%v) did not fire promptly", d)
		}
	}
}

func TestWallVirtualInterfaceAgreement(t *testing.T) {
	// Both implementations satisfy Waiter, and clock.After routes
	// through the implementation rather than the fallback; semantics
	// agree: the delivered instant is never before the deadline on the
	// clock's own timeline, and Now never runs backwards.
	var _ Waiter = Wall{}
	var _ Waiter = NewVirtual()

	check := func(name string, c Clock, advance func()) {
		t.Helper()
		start := c.Now()
		const d = 20 * time.Millisecond
		ch := After(c, d)
		if advance != nil {
			advance()
		}
		got := <-ch
		if got.Before(start.Add(d)) {
			t.Fatalf("%s: After(%v) delivered %v, before deadline %v", name, d, got, start.Add(d))
		}
		if c.Now().Before(start) {
			t.Fatalf("%s: Now ran backwards: %v < %v", name, c.Now(), start)
		}
	}
	v := NewVirtual()
	check("Virtual", v, func() {
		for v.Waiters() == 0 {
			time.Sleep(time.Millisecond)
		}
		v.Advance(time.Hour)
	})
	check("Wall", Wall{}, nil)
}

// bareClock implements Clock but not Waiter, forcing clock.After onto
// its wall-timer fallback.
type bareClock struct{}

func (bareClock) Now() time.Time { return Epoch }

func TestAfterFallbackForBareClock(t *testing.T) {
	select {
	case <-After(bareClock{}, time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After fallback did not fire for a non-Waiter clock")
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	const workers, steps = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				v.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Millisecond)
	if !v.Now().Equal(want) {
		t.Fatalf("concurrent advance: Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualOnTick(t *testing.T) {
	v := NewVirtual()
	var got []time.Time
	v.OnTick(func(at time.Time) { got = append(got, at) })

	v.Advance(time.Minute)
	v.Set(Epoch.Add(time.Hour))
	if want := []time.Time{Epoch.Add(time.Minute), Epoch.Add(time.Hour)}; len(got) != len(want) {
		t.Fatalf("hooks fired %d times, want %d", len(got), len(want))
	} else {
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("hook %d fired at %v, want %v", i, got[i], want[i])
			}
		}
	}

	// Non-movements are not ticks: a hook that fired for them would turn
	// no-op Set calls into flush boundaries and make batching timing
	// depend on redundant calls.
	v.Advance(-time.Minute)
	v.Set(Epoch) // earlier than current time: ignored
	if len(got) != 2 {
		t.Fatalf("non-moving Advance/Set fired hooks: %d total firings, want 2", len(got))
	}
}

// TestVirtualOnTickReentrant proves a tick hook may read the clock:
// hooks run outside the mutex, so a hook calling Now (as the telemetry
// flush boundary does transitively) must not deadlock.
func TestVirtualOnTickReentrant(t *testing.T) {
	v := NewVirtual()
	var seen time.Time
	v.OnTick(func(at time.Time) { seen = v.Now() })
	v.Advance(time.Second)
	if !seen.Equal(Epoch.Add(time.Second)) {
		t.Fatalf("hook read Now() = %v, want %v", seen, Epoch.Add(time.Second))
	}
}
