package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallNow(t *testing.T) {
	var w Wall
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("NewVirtual().Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !v.Now().Equal(want) {
		t.Fatalf("after Advance(90s): Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual()
	v.Advance(-time.Hour)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("negative Advance moved the clock to %v", v.Now())
	}
}

func TestVirtualSetMonotonic(t *testing.T) {
	v := NewVirtual()
	later := Epoch.Add(time.Hour)
	v.Set(later)
	if !v.Now().Equal(later) {
		t.Fatalf("Set(later): Now() = %v, want %v", v.Now(), later)
	}
	v.Set(Epoch) // earlier: must be ignored
	if !v.Now().Equal(later) {
		t.Fatalf("Set(earlier) rewound the clock to %v", v.Now())
	}
}

func TestVirtualAtCustomStart(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtualAt(start)
	if !v.Now().Equal(start) {
		t.Fatalf("NewVirtualAt: Now() = %v, want %v", v.Now(), start)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	const workers, steps = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				v.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Millisecond)
	if !v.Now().Equal(want) {
		t.Fatalf("concurrent advance: Now() = %v, want %v", v.Now(), want)
	}
}
