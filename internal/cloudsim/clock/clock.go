// Package clock provides the time sources used by the cloud simulator.
//
// Every simulated service takes a Clock rather than calling time.Now
// directly, so a full month of billed usage or a 20-second SQS long poll
// can be simulated in microseconds of test time while remaining faithful
// on the simulated timeline.
package clock

import (
	"sync"
	"time"
)

// Clock is a readable time source.
type Clock interface {
	// Now reports the current time on this clock's timeline.
	Now() time.Time
}

// Waiter is a Clock whose timeline can be waited on. Both Wall and
// *Virtual implement it, so services that block (e.g. an SQS long
// poll in wall mode) never have to reach for the time package: they
// wait on whatever clock was injected, and a virtual clock releases
// them when Advance or Set crosses the deadline.
type Waiter interface {
	Clock
	// After returns a channel that delivers the clock's then-current
	// time once d has elapsed on the clock's timeline. Non-positive d
	// yields an immediately ready channel.
	After(d time.Duration) <-chan time.Time
}

// After waits for d on c's own timeline when c implements Waiter and
// falls back to a real timer otherwise, so callers can block on any
// injected Clock without importing the time package's wall-clock
// functions themselves.
func After(c Clock, d time.Duration) <-chan time.Time {
	if w, ok := c.(Waiter); ok {
		return w.After(d)
	}
	return time.After(d)
}

// Wall is a Clock backed by the real system clock.
type Wall struct{}

// Now implements Clock using time.Now.
func (Wall) Now() time.Time { return time.Now() }

// After implements Waiter using a real timer.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Epoch is the default start time for virtual clocks: midnight UTC on the
// first day of a 30-day simulated billing month.
var Epoch = time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a manually advanced Clock. The zero value is not ready for
// use; construct one with NewVirtual. Virtual is safe for concurrent use.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
	ticks   []func(time.Time)
}

// waiter is one goroutine blocked in After until the virtual timeline
// reaches at.
type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a virtual clock positioned at start.
func NewVirtualAt(start time.Time) *Virtual { return &Virtual{now: start} }

// Now reports the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d and releases any waiters whose
// deadlines the move crosses. Negative d is ignored: simulated time
// never flows backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.fireLocked()
	now, ticks := v.now, v.ticks
	v.mu.Unlock()
	for _, fn := range ticks {
		fn(now)
	}
}

// Set jumps the clock to t if t is later than the current virtual time,
// releasing any waiters the jump crosses. Earlier values are ignored so
// the timeline stays monotonic.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	moved := t.After(v.now)
	if moved {
		v.now = t
		v.fireLocked()
	}
	now, ticks := v.now, v.ticks
	v.mu.Unlock()
	if moved {
		for _, fn := range ticks {
			fn(now)
		}
	}
}

// OnTick registers a hook called after every timeline move (Advance or
// Set that actually changed the clock), with the new virtual time.
// Hooks run outside the clock's lock, in registration order, on the
// goroutine that moved the clock — so a hook may read the clock or
// drive other services, but moves are serialized per caller exactly
// like the Advance calls themselves. The telemetry planes use this as
// their deterministic flush boundary: pending interceptor batches
// drain whenever the simulation's timeline steps forward.
func (v *Virtual) OnTick(fn func(time.Time)) {
	if fn == nil {
		return
	}
	v.mu.Lock()
	v.ticks = append(v.ticks, fn)
	v.mu.Unlock()
}

// After implements Waiter: the returned channel delivers the virtual
// time once the timeline reaches now+d via Advance or Set. Non-positive
// d completes immediately at the current virtual instant.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	if d <= 0 {
		ch <- v.now
	} else {
		v.waiters = append(v.waiters, waiter{at: v.now.Add(d), ch: ch})
	}
	v.mu.Unlock()
	return ch
}

// Waiters reports how many goroutines are currently parked in After.
// Tests use it to advance the clock only once a blocked caller has
// registered, keeping virtual-time tests free of real sleeps.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// fireLocked delivers the current time to every waiter whose deadline
// has been reached. Caller holds v.mu.
func (v *Virtual) fireLocked() {
	kept := v.waiters[:0]
	for _, w := range v.waiters {
		if w.at.After(v.now) {
			kept = append(kept, w)
			continue
		}
		w.ch <- v.now // buffered: never blocks
	}
	v.waiters = kept
}
