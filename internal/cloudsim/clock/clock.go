// Package clock provides the time sources used by the cloud simulator.
//
// Every simulated service takes a Clock rather than calling time.Now
// directly, so a full month of billed usage or a 20-second SQS long poll
// can be simulated in microseconds of test time while remaining faithful
// on the simulated timeline.
package clock

import (
	"sync"
	"time"
)

// Clock is a readable time source.
type Clock interface {
	// Now reports the current time on this clock's timeline.
	Now() time.Time
}

// Wall is a Clock backed by the real system clock.
type Wall struct{}

// Now implements Clock using time.Now.
func (Wall) Now() time.Time { return time.Now() }

// Epoch is the default start time for virtual clocks: midnight UTC on the
// first day of a 30-day simulated billing month.
var Epoch = time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a manually advanced Clock. The zero value is not ready for
// use; construct one with NewVirtual. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a virtual clock positioned at start.
func NewVirtualAt(start time.Time) *Virtual { return &Virtual{now: start} }

// Now reports the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. Negative d is ignored: simulated
// time never flows backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set jumps the clock to t if t is later than the current virtual time.
// Earlier values are ignored so the timeline stays monotonic.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}
