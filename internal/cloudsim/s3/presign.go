package s3

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// Presigned URLs: a principal with read access mints a time-limited
// capability token; anyone holding it can fetch the object with no
// cloud credentials at all. The file-transfer app uses this to hand a
// download link to an external recipient — combined with a sealed box
// addressed to the recipient's key, the whole AirDrop flow needs no
// account on the receiving side.

// Errors returned by the presign API.
var (
	ErrBadToken     = errors.New("s3: malformed presigned token")
	ErrTokenExpired = errors.New("s3: presigned token expired")
)

// Presign mints a token authorizing GETs of one object until expires.
// The signer must itself be authorized to read the object: a presigned
// URL delegates the signer's authority, it does not create any.
func (s *Service) Presign(principal, bucketName, key string, expires time.Time) (string, error) {
	if err := s.iam.Authorize(principal, ActionGet, ObjectResource(bucketName, key)); err != nil {
		return "", fmt.Errorf("s3: presign: %w", err)
	}
	payload := fmt.Sprintf("%s\x00%s\x00%d", bucketName, key, expires.Unix())
	mac := s.sign(payload)
	return base64.RawURLEncoding.EncodeToString([]byte(payload + "\x00" + string(mac))), nil
}

// GetPresigned fetches an object with a presigned token. The caller
// needs no principal; the payload is billed as internet egress for
// external callers, like any other external GET.
func (s *Service) GetPresigned(ctx *sim.Context, token string) (*Object, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return nil, ErrBadToken
	}
	parts := strings.SplitN(string(raw), "\x00", 4)
	if len(parts) != 4 {
		return nil, ErrBadToken
	}
	bucketName, key, expStr, mac := parts[0], parts[1], parts[2], parts[3]
	payload := fmt.Sprintf("%s\x00%s\x00%s", bucketName, key, expStr)
	if !hmac.Equal([]byte(mac), s.sign(payload)) {
		return nil, ErrBadToken
	}
	expUnix, err := strconv.ParseInt(expStr, 10, 64)
	if err != nil {
		return nil, ErrBadToken
	}
	now := s.clk.Now()
	if ctx != nil && ctx.Cursor != nil {
		now = ctx.Cursor.Now()
	}
	if now.After(time.Unix(expUnix, 0)) {
		return nil, fmt.Errorf("s3: %s/%s: %w", bucketName, key, ErrTokenExpired)
	}

	s.mu.RLock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("s3: %q: %w", bucketName, ErrNoSuchBucket)
	}
	o, ok := b.objects[key]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("s3: %s/%s: %w", bucketName, key, ErrNoSuchKey)
	}
	cp := *o
	cp.Data = append([]byte(nil), o.Data...)
	s.mu.RUnlock()

	// The token itself is the authorization, so the plane call carries
	// no IAM action; the hop is still traced, latency-modeled, and
	// metered like any other GET.
	size := int64(len(cp.Data))
	c := call("", "", size, pricing.S3GetRequests)
	c.Op = "GetPresigned"
	err = s.pl.Do(ctx, c, func(req *plane.Request) error {
		if ctx != nil && ctx.External {
			req.MeterUsage(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: float64(size) / 1e9})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &cp, nil
}

func (s *Service) sign(payload string) []byte {
	s.mu.Lock()
	if s.presignSecret == nil {
		s.presignSecret = make([]byte, 32)
		if _, err := rand.Read(s.presignSecret); err != nil {
			// Out of entropy is unrecoverable for a simulator.
			panic(fmt.Sprintf("s3: presign secret: %v", err))
		}
	}
	secret := s.presignSecret
	s.mu.Unlock()
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(payload))
	return mac.Sum(nil)
}
