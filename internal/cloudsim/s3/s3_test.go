package s3

import (
	"bytes"
	"encoding/base64"
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

type fixture struct {
	iam   *iam.Service
	meter *pricing.Meter
	clk   *clock.Virtual
	s3    *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{iam: iam.New(), meter: pricing.NewMeter(), clk: clock.NewVirtual()}
	f.s3 = New(f.iam, f.meter, netsim.NewDefaultModel(), f.clk)
	if err := f.s3.CreateBucket("alice-chat"); err != nil {
		t.Fatal(err)
	}
	err := f.iam.PutRole(&iam.Role{
		Name: "chat-fn",
		Policies: []iam.Policy{{
			Name: "bucket-access",
			Statements: []iam.Statement{
				iam.AllowStatement([]string{"s3:*"}, []string{"bucket/alice-chat", "bucket/alice-chat/*"}),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) ctx() *sim.Context {
	return &sim.Context{
		Principal: "chat-fn",
		App:       "chat",
		Region:    "us-west-2",
		Cursor:    sim.NewCursor(clock.Epoch),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	data := []byte("ciphertext bytes")
	if err := f.s3.Put(ctx, "alice-chat", "room/1", data); err != nil {
		t.Fatal(err)
	}
	obj, err := f.s3.Get(ctx, "alice-chat", "room/1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obj.Data, data) {
		t.Fatalf("Get returned %q", obj.Data)
	}
	if obj.Version == 0 {
		t.Fatal("object has no version")
	}
	if !obj.Modified.Equal(clock.Epoch) {
		t.Fatalf("Modified = %v, want clock epoch", obj.Modified)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.s3.Put(ctx, "alice-chat", "k", []byte("original"))
	obj, _ := f.s3.Get(ctx, "alice-chat", "k")
	obj.Data[0] = 'X'
	again, _ := f.s3.Get(ctx, "alice-chat", "k")
	if string(again.Data) != "original" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestPutOverwriteBumpsVersion(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.s3.Put(ctx, "alice-chat", "k", []byte("v1"))
	o1, _ := f.s3.Get(ctx, "alice-chat", "k")
	f.s3.Put(ctx, "alice-chat", "k", []byte("v2"))
	o2, _ := f.s3.Get(ctx, "alice-chat", "k")
	if o2.Version <= o1.Version {
		t.Fatalf("version did not advance: %d then %d", o1.Version, o2.Version)
	}
	if string(o2.Data) != "v2" {
		t.Fatalf("overwrite lost: %q", o2.Data)
	}
}

func TestGetMissing(t *testing.T) {
	f := newFixture(t)
	if _, err := f.s3.Get(f.ctx(), "alice-chat", "nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("got %v, want ErrNoSuchKey", err)
	}
	if _, err := f.s3.Get(f.ctx(), "no-bucket", "k"); !errors.Is(err, iam.ErrDenied) {
		// The role has no grant on other buckets: IAM denies first.
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.s3.Put(ctx, "alice-chat", "k", []byte("x"))
	if err := f.s3.Delete(ctx, "alice-chat", "k"); err != nil {
		t.Fatal(err)
	}
	if err := f.s3.Delete(ctx, "alice-chat", "k"); err != nil {
		t.Fatalf("second delete errored: %v", err)
	}
	if _, err := f.s3.Get(ctx, "alice-chat", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatal("object survived delete")
	}
}

func TestListPrefix(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	for _, k := range []string{"room/2", "room/1", "meta/config"} {
		f.s3.Put(ctx, "alice-chat", k, []byte("x"))
	}
	keys, err := f.s3.List(ctx, "alice-chat", "room/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "room/1" || keys[1] != "room/2" {
		t.Fatalf("List = %v", keys)
	}
	all, _ := f.s3.List(ctx, "alice-chat", "")
	if len(all) != 3 {
		t.Fatalf("List all = %v", all)
	}
}

func TestIAMDeniesForeignBucket(t *testing.T) {
	f := newFixture(t)
	f.s3.CreateBucket("bob-mail")
	if err := f.s3.Put(f.ctx(), "bob-mail", "k", []byte("x")); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("foreign bucket put: got %v, want ErrDenied", err)
	}
}

func TestBucketLifecycle(t *testing.T) {
	f := newFixture(t)
	if err := f.s3.CreateBucket("alice-chat"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.s3.CreateBucket(""); err == nil {
		t.Fatal("empty bucket name accepted")
	}
	if err := f.s3.CreateBucket("a/b"); err == nil {
		t.Fatal("slash in bucket name accepted")
	}
	f.s3.Put(f.ctx(), "alice-chat", "k", []byte("x"))
	if err := f.s3.DeleteBucket("alice-chat", false); !errors.Is(err, ErrBucketNotEmpty) {
		t.Fatalf("non-empty delete: %v", err)
	}
	if err := f.s3.DeleteBucket("alice-chat", true); err != nil {
		t.Fatal(err)
	}
	if f.s3.BucketExists("alice-chat") {
		t.Fatal("bucket survived forced delete")
	}
	if err := f.s3.DeleteBucket("alice-chat", true); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("delete absent bucket: %v", err)
	}
}

func TestRequestsMetered(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.s3.Put(ctx, "alice-chat", "k", []byte("x"))
	f.s3.Get(ctx, "alice-chat", "k")
	f.s3.Get(ctx, "alice-chat", "k")
	if got := f.meter.TotalFor(pricing.S3PutRequests, "chat"); got != 1 {
		t.Fatalf("PUT requests = %v, want 1", got)
	}
	if got := f.meter.TotalFor(pricing.S3GetRequests, "chat"); got != 2 {
		t.Fatalf("GET requests = %v, want 2", got)
	}
}

func TestExternalGetMetersTransferOut(t *testing.T) {
	f := newFixture(t)
	internal := f.ctx()
	payload := make([]byte, 2_000_000) // 2 MB
	f.s3.Put(internal, "alice-chat", "big", payload)

	f.s3.Get(internal, "alice-chat", "big")
	if got := f.meter.Total(pricing.TransferOutGB); got != 0 {
		t.Fatalf("internal GET billed transfer: %v GB", got)
	}

	external := f.ctx()
	external.External = true
	f.s3.Get(external, "alice-chat", "big")
	if got := f.meter.Total(pricing.TransferOutGB); got != 0.002 {
		t.Fatalf("external GET transfer = %v GB, want 0.002", got)
	}
}

func TestMemoryCoupledLatency(t *testing.T) {
	// The §6.2 observation: the same S3 call is much slower from a
	// 128 MB container than from a 448 MB one.
	f := newFixture(t)
	data := make([]byte, 256<<10)
	f.s3.Put(f.ctx(), "alice-chat", "k", data)

	elapsed := func(memMB int) time.Duration {
		ctx := f.ctx()
		ctx.FunctionMemMB = memMB
		if _, err := f.s3.Get(ctx, "alice-chat", "k"); err != nil {
			t.Fatal(err)
		}
		return ctx.Cursor.Elapsed()
	}
	var small, ref time.Duration
	// Average over several calls to smooth sampling noise.
	for i := 0; i < 32; i++ {
		small += elapsed(128)
		ref += elapsed(448)
	}
	if float64(small) < 1.8*float64(ref) {
		t.Fatalf("128 MB calls (%v) not significantly slower than 448 MB (%v)", small, ref)
	}
}

func TestStorageAccounting(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.s3.CreateBucket("other")
	f.iam.PutRole(&iam.Role{Name: "admin", Policies: []iam.Policy{{
		Name:       "all",
		Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
	}}})
	admin := &sim.Context{Principal: "admin", Cursor: sim.NewCursor(clock.Epoch)}

	f.s3.Put(ctx, "alice-chat", "a", make([]byte, 1000))
	f.s3.Put(admin, "other", "b", make([]byte, 500))
	if got := f.s3.StorageBytes("alice-chat"); got != 1000 {
		t.Fatalf("bucket bytes = %d", got)
	}
	if got := f.s3.StorageBytes(""); got != 1500 {
		t.Fatalf("total bytes = %d", got)
	}

	// Accrue one full month: GB-months must equal the stored GB.
	f.s3.AccrueStorage(pricing.Month, "chat")
	if got := f.meter.Total(pricing.S3StorageGBMo); got != 1500.0/1e9 {
		t.Fatalf("accrued %v GB-months", got)
	}
}

func TestSealedWritesPolicy(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	if err := f.s3.SetRequireSealed("alice-chat", true); err != nil {
		t.Fatal(err)
	}
	// Plaintext is rejected.
	if err := f.s3.Put(ctx, "alice-chat", "k", []byte("plaintext secret")); !errors.Is(err, ErrPlaintextRejected) {
		t.Fatalf("plaintext put: got %v, want ErrPlaintextRejected", err)
	}
	// Sealed ciphertext is accepted.
	key, err := envelope.NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := envelope.Seal(key, []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.s3.Put(ctx, "alice-chat", "k", sealed); err != nil {
		t.Fatal(err)
	}
	// Policy can be lifted.
	if err := f.s3.SetRequireSealed("alice-chat", false); err != nil {
		t.Fatal(err)
	}
	if err := f.s3.Put(ctx, "alice-chat", "k2", []byte("plain ok now")); err != nil {
		t.Fatal(err)
	}
	// Unknown bucket errors.
	if err := f.s3.SetRequireSealed("ghost", true); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("got %v, want ErrNoSuchBucket", err)
	}
}

func TestNilContextDenied(t *testing.T) {
	f := newFixture(t)
	if err := f.s3.Put(nil, "alice-chat", "k", []byte("x")); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("nil ctx: got %v, want ErrDenied", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := newFixture(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(n int) {
			defer func() { done <- struct{}{} }()
			ctx := f.ctx()
			for j := 0; j < 200; j++ {
				f.s3.Put(ctx, "alice-chat", "k", []byte("x"))
				f.s3.Get(ctx, "alice-chat", "k")
				f.s3.List(ctx, "alice-chat", "")
				f.s3.StorageBytes("")
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestPresignedDownload(t *testing.T) {
	f := newFixture(t)
	owner := f.ctx()
	payload := make([]byte, 100_000)
	if err := f.s3.Put(owner, "alice-chat", "share/file", payload); err != nil {
		t.Fatal(err)
	}
	token, err := f.s3.Presign("chat-fn", "alice-chat", "share/file", clock.Epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	// A caller with NO principal at all fetches with the token.
	anon := &sim.Context{Cursor: sim.NewCursor(clock.Epoch), External: true}
	obj, err := f.s3.GetPresigned(anon, token)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Data) != len(payload) {
		t.Fatalf("got %d bytes", len(obj.Data))
	}
	// External egress is billed.
	if got := f.meter.Total(pricing.TransferOutGB); got != 0.0001 {
		t.Fatalf("transfer = %v GB, want 0.0001", got)
	}
}

func TestPresignRequiresAuthority(t *testing.T) {
	f := newFixture(t)
	f.s3.Put(f.ctx(), "alice-chat", "k", []byte("x"))
	// A principal without read access cannot mint a token.
	if _, err := f.s3.Presign("mallory", "alice-chat", "k", clock.Epoch.Add(time.Hour)); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestPresignedTokenExpiry(t *testing.T) {
	f := newFixture(t)
	f.s3.Put(f.ctx(), "alice-chat", "k", []byte("x"))
	token, err := f.s3.Presign("chat-fn", "alice-chat", "k", clock.Epoch.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	late := &sim.Context{Cursor: sim.NewCursor(clock.Epoch.Add(2 * time.Minute))}
	if _, err := f.s3.GetPresigned(late, token); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("got %v, want ErrTokenExpired", err)
	}
	// Before expiry it still works.
	early := &sim.Context{Cursor: sim.NewCursor(clock.Epoch.Add(30 * time.Second))}
	if _, err := f.s3.GetPresigned(early, token); err != nil {
		t.Fatal(err)
	}
}

func TestPresignedTokenForgeryRejected(t *testing.T) {
	f := newFixture(t)
	f.s3.Put(f.ctx(), "alice-chat", "k", []byte("x"))
	f.s3.CreateBucket("private")
	token, _ := f.s3.Presign("chat-fn", "alice-chat", "k", clock.Epoch.Add(time.Hour))

	// Garbage and truncations.
	for _, bad := range []string{"", "!!!", token[:len(token)/2]} {
		if _, err := f.s3.GetPresigned(f.ctx(), bad); !errors.Is(err, ErrBadToken) {
			t.Fatalf("token %q: got %v, want ErrBadToken", bad, err)
		}
	}
	// Re-targeting the token to another object breaks the MAC.
	raw, _ := base64.RawURLEncoding.DecodeString(token)
	forged := bytes.Replace(raw, []byte("share/file"), []byte("private"), 1)
	forged = bytes.Replace(forged, []byte("k\x00"), []byte("x\x00"), 1)
	if _, err := f.s3.GetPresigned(f.ctx(), base64.RawURLEncoding.EncodeToString(forged)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("forged token: got %v, want ErrBadToken", err)
	}
	// Extending the expiry breaks the MAC too.
	parts := bytes.SplitN(raw, []byte{0}, 4)
	parts[2] = []byte("9999999999")
	extended := bytes.Join(parts, []byte{0})
	if _, err := f.s3.GetPresigned(f.ctx(), base64.RawURLEncoding.EncodeToString(extended)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("extended token: got %v, want ErrBadToken", err)
	}
}

func TestPresignedMissingObject(t *testing.T) {
	f := newFixture(t)
	f.s3.Put(f.ctx(), "alice-chat", "gone", []byte("x"))
	token, _ := f.s3.Presign("chat-fn", "alice-chat", "gone", clock.Epoch.Add(time.Hour))
	f.s3.Delete(f.ctx(), "alice-chat", "gone")
	if _, err := f.s3.GetPresigned(f.ctx(), token); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("got %v, want ErrNoSuchKey", err)
	}
}
