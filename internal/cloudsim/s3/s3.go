// Package s3 simulates the object storage service where DIY
// applications keep their encrypted state. It provides buckets of
// versioned objects with IAM-authenticated access, request/storage/
// transfer metering, and the memory-coupled I/O latency model the
// paper's prototype observed ("API calls to S3 took significantly
// longer when we allocated less memory to the function").
package s3

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/sortutil"
	"repro/internal/cloudsim/trace"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

func init() {
	plane.Register(
		plane.Op{Service: "s3", Method: "Put", Action: ActionPut},
		plane.Op{Service: "s3", Method: "Get", Action: ActionGet},
		plane.Op{Service: "s3", Method: "Delete", Action: ActionDelete},
		plane.Op{Service: "s3", Method: "List", Action: ActionList},
		plane.Op{Service: "s3", Method: "GetPresigned", Action: ""},
	)
}

// Actions checked against IAM.
const (
	ActionPut    = "s3:PutObject"
	ActionGet    = "s3:GetObject"
	ActionDelete = "s3:DeleteObject"
	ActionList   = "s3:ListBucket"
)

// Errors returned by the service.
var (
	ErrNoSuchBucket   = errors.New("s3: no such bucket")
	ErrNoSuchKey      = errors.New("s3: no such key")
	ErrBucketExists   = errors.New("s3: bucket already exists")
	ErrBucketNotEmpty = errors.New("s3: bucket not empty")
	// ErrPlaintextRejected is returned when a bucket with the
	// sealed-writes policy receives data that does not carry the
	// envelope-encryption header — the enforcement behind the paper's
	// "the user configures a storage provider ... to store encrypted
	// users data".
	ErrPlaintextRejected = errors.New("s3: bucket policy rejects plaintext objects")
)

// Object is a stored object and its metadata.
type Object struct {
	Key      string
	Data     []byte
	Modified time.Time
	Version  int64
}

type bucket struct {
	objects       map[string]*Object
	version       int64
	requireSealed bool
}

// Service is the simulated object store. It is safe for concurrent use.
type Service struct {
	iam   *iam.Service
	meter *pricing.Meter
	pl    *plane.Plane
	clk   clock.Clock

	mu            sync.RWMutex
	buckets       map[string]*bucket
	presignSecret []byte
}

// New returns an object store wired to IAM, the meter, the network
// model and a clock for object modification timestamps.
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		iam:     iamSvc,
		meter:   meter,
		pl:      plane.New(iamSvc, meter, model),
		clk:     clk,
		buckets: make(map[string]*bucket),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors (fault injection, concurrency limits) around every op.
func (s *Service) Plane() *plane.Plane { return s.pl }

// call builds the plane descriptor for one object-store op. Every S3
// call pays the memory-coupled base latency plus payload transfer
// time, and meters one request of the given kind.
func call(action, resource string, payload int64, reqKind pricing.Kind) *plane.Call {
	c := &plane.Call{
		Service:  "s3",
		Op:       action,
		Action:   action,
		Resource: resource,
		Latency:  &plane.Latency{Hop: netsim.HopS3, MemoryCoupled: true, TransferBytes: payload},
		Usage:    []pricing.Usage{{Kind: reqKind, Quantity: 1}},
	}
	if payload > 0 {
		c.Annotations = []trace.Annotation{{Key: "bytes", Value: strconv.FormatInt(payload, 10)}}
	}
	return c
}

// ObjectResource returns the IAM resource string for one object.
func ObjectResource(bucketName, key string) string {
	return "bucket/" + bucketName + "/" + key
}

// BucketResource returns the IAM resource string for bucket-level
// operations.
func BucketResource(bucketName string) string { return "bucket/" + bucketName }

// CreateBucket provisions an empty bucket.
func (s *Service) CreateBucket(name string) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("s3: invalid bucket name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("s3: %q: %w", name, ErrBucketExists)
	}
	s.buckets[name] = &bucket{objects: make(map[string]*Object)}
	return nil
}

// DeleteBucket removes an empty bucket; with force it removes the
// bucket and everything in it (the app-store "delete app and its
// data" path).
func (s *Service) DeleteBucket(name string, force bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("s3: %q: %w", name, ErrNoSuchBucket)
	}
	if len(b.objects) > 0 && !force {
		return fmt.Errorf("s3: %q: %w", name, ErrBucketNotEmpty)
	}
	delete(s.buckets, name)
	return nil
}

// SetRequireSealed enables or disables the sealed-writes policy on a
// bucket: with it on, every Put must carry the envelope-encryption
// header. DIY deployments enable it on their state buckets.
func (s *Service) SetRequireSealed(name string, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("s3: %q: %w", name, ErrNoSuchBucket)
	}
	b.requireSealed = on
	return nil
}

// BucketExists reports whether the named bucket exists.
func (s *Service) BucketExists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.buckets[name]
	return ok
}

// Put stores an object, overwriting any previous version. Buckets
// with the sealed-writes policy reject payloads that are not envelope
// ciphertext.
func (s *Service) Put(ctx *sim.Context, bucketName, key string, data []byte) error {
	return s.pl.Do(ctx, call(ActionPut, ObjectResource(bucketName, key), int64(len(data)), pricing.S3PutRequests), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.buckets[bucketName]
		if !ok {
			return fmt.Errorf("s3: %q: %w", bucketName, ErrNoSuchBucket)
		}
		if b.requireSealed && !envelope.IsSealed(data) {
			return fmt.Errorf("s3: %s/%s: %w", bucketName, key, ErrPlaintextRejected)
		}
		b.version++
		b.objects[key] = &Object{
			Key:      key,
			Data:     append([]byte(nil), data...),
			Modified: s.clk.Now(),
			Version:  b.version,
		}
		return nil
	})
}

// Get retrieves an object. External callers are billed internet
// transfer out for the payload.
func (s *Service) Get(ctx *sim.Context, bucketName, key string) (*Object, error) {
	s.mu.RLock()
	var size int64
	if b, ok := s.buckets[bucketName]; ok {
		if o, ok := b.objects[key]; ok {
			size = int64(len(o.Data))
		}
	}
	s.mu.RUnlock()

	var out *Object
	err := s.pl.Do(ctx, call(ActionGet, ObjectResource(bucketName, key), size, pricing.S3GetRequests), func(req *plane.Request) error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		b, ok := s.buckets[bucketName]
		if !ok {
			return fmt.Errorf("s3: %q: %w", bucketName, ErrNoSuchBucket)
		}
		o, ok := b.objects[key]
		if !ok {
			return fmt.Errorf("s3: %s/%s: %w", bucketName, key, ErrNoSuchKey)
		}
		if ctx != nil && ctx.External {
			req.MeterUsage(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: float64(size) / 1e9})
		}
		cp := *o
		cp.Data = append([]byte(nil), o.Data...)
		out = &cp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes an object. Deleting an absent key is not an error,
// matching S3 semantics.
func (s *Service) Delete(ctx *sim.Context, bucketName, key string) error {
	return s.pl.Do(ctx, call(ActionDelete, ObjectResource(bucketName, key), 0, pricing.S3PutRequests), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		b, ok := s.buckets[bucketName]
		if !ok {
			return fmt.Errorf("s3: %q: %w", bucketName, ErrNoSuchBucket)
		}
		delete(b.objects, key)
		return nil
	})
}

// List returns the keys in a bucket with the given prefix, sorted.
func (s *Service) List(ctx *sim.Context, bucketName, prefix string) ([]string, error) {
	var keys []string
	err := s.pl.Do(ctx, call(ActionList, BucketResource(bucketName), 0, pricing.S3GetRequests), func(*plane.Request) error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		b, ok := s.buckets[bucketName]
		if !ok {
			return fmt.Errorf("s3: %q: %w", bucketName, ErrNoSuchBucket)
		}
		keys = make([]string, 0, len(b.objects))
		for _, k := range sortutil.SortedKeys(b.objects) {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// StorageBytes reports the total bytes currently stored in a bucket
// ("" for all buckets).
func (s *Service) StorageBytes(bucketName string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for name, b := range s.buckets {
		if bucketName != "" && name != bucketName {
			continue
		}
		for _, o := range b.objects {
			total += int64(len(o.Data))
		}
	}
	return total
}

// AccrueStorage meters GB-month storage usage for the current contents
// held over the given duration. Experiments call it to integrate the
// storage gauge over the simulated month.
func (s *Service) AccrueStorage(d time.Duration, app string) {
	gb := float64(s.StorageBytes("")) / 1e9
	months := float64(d) / float64(pricing.Month)
	s.meter.Add(pricing.Usage{Kind: pricing.S3StorageGBMo, Quantity: gb * months, App: app})
}

