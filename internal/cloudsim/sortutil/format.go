package sortutil

import (
	"fmt"
	"time"
)

// FormatDuration renders a simulated-timeline duration the way every
// observability surface (trace renders, the fleet trace dashboard)
// prints one: "0ms" for non-positive values, microsecond precision
// below one millisecond, millisecond precision from there up. The
// trace store and the control tower both delegate here so a span
// printed per-account and the same span rolled up fleet-wide never
// disagree on rounding.
func FormatDuration(d time.Duration) string {
	if d <= 0 {
		return "0ms"
	}
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// FormatMoneyNanos renders a nanodollar amount at eight decimal
// places — span-scale costs sit far below the bill's cent resolution —
// using only integer arithmetic: the amount is rounded half-up to
// 1e-8 dollars and split digit-exactly, so no float64 conversion can
// drift the last digit between renderers the way the old
// Sprintf("%.8f", Dollars()) path could.
func FormatMoneyNanos(nanos int64) string {
	neg := ""
	if nanos < 0 {
		neg, nanos = "-", -nanos
	}
	h := (nanos + 5) / 10 // hundredths of a microdollar, rounded half up
	return fmt.Sprintf("%s$%d.%08d", neg, h/100_000_000, h%100_000_000)
}
