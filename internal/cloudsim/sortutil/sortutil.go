// Package sortutil holds the one helper the determinism discipline
// leans on everywhere: iterate maps in sorted key order. Go randomizes
// map iteration per run, so any map range whose order can reach
// observable output — a ledger line, a log event, a metric sample,
// rendered text — must walk SortedKeys(m) instead. The maporder
// analyzer (internal/analysis) enforces the rule; this package is the
// shared fix, replacing the ad-hoc collect-append-sort triple at each
// site.
package sortutil

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. The result is a fresh
// slice; callers may keep or mutate it.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
