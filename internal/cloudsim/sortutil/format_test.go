package sortutil

import (
	"testing"
	"time"
)

func TestFormatDurationBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{-time.Second, "0ms"},
		{0, "0ms"},
		{time.Nanosecond, "0s"}, // rounds to zero microseconds
		{499 * time.Nanosecond, "0s"},
		{500 * time.Nanosecond, "1µs"},
		{time.Microsecond, "1µs"},
		{999 * time.Microsecond, "999µs"},
		{999*time.Microsecond + 500*time.Nanosecond, "1ms"}, // still <1ms: µs precision
		{time.Millisecond, "1ms"},
		{time.Millisecond + 499*time.Microsecond, "1ms"},
		{time.Millisecond + 500*time.Microsecond, "2ms"},
		{211 * time.Millisecond, "211ms"},
		{999 * time.Millisecond, "999ms"},
		{1234 * time.Millisecond, "1.234s"},
		{90 * time.Second, "1m30s"},
		{time.Hour + 30*time.Minute, "1h30m0s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatMoneyNanosBoundaries(t *testing.T) {
	cases := []struct {
		nanos int64
		want  string
	}{
		{0, "$0.00000000"},
		{1, "$0.00000000"},  // 0.1e-8 dollars rounds down
		{4, "$0.00000000"},  // 0.4e-8 rounds down
		{5, "$0.00000001"},  // 0.5e-8 rounds half up
		{9, "$0.00000001"},
		{10, "$0.00000001"}, // exactly 1e-8 dollars
		{15, "$0.00000002"},
		{1_820, "$0.00000182"},             // the demo trace's span scale
		{999_999_994, "$0.99999999"},       // just below a dollar
		{999_999_995, "$1.00000000"},       // rounding carries across the point
		{1_000_000_000, "$1.00000000"},     // one dollar exactly
		{12_345_678_912, "$12.34567891"},   // digit-exact, no float drift
		{-5, "-$0.00000001"},
		{-10_000_000_000, "-$10.00000000"},
	}
	for _, c := range cases {
		if got := FormatMoneyNanos(c.nanos); got != c.want {
			t.Errorf("FormatMoneyNanos(%d) = %q, want %q", c.nanos, got, c.want)
		}
	}
}
