package lambda

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// This file implements the platform extension the paper asks for in
// §8.3: "It would be interesting to expand cloud platforms so they can
// efficiently [host] arbitrary TCP servers with the same availability
// guarantees as current serverless platforms. ... a second limitation
// we found is that platforms do not easily support long idle
// connections (the function is billed while the HTTP request is
// active). Being able to suspend the user's container while a TCP
// connection remains open [Picocenter, 41] could further improve these
// platforms' programmability and performance."
//
// A Connection binds a function container to a long-lived logical TCP
// connection. While the connection is idle past the suspend threshold
// the container is swapped out: the connection stays open but billing
// stops. Traffic swaps it back in at a resume latency far below a cold
// start. The streaming ablation in internal/experiments quantifies the
// win over both per-request invocation and a naive always-active
// connection.

// DefaultSuspendAfter is how long a connection may idle before its
// container is suspended.
const DefaultSuspendAfter = 2 * time.Second

// resumeFraction scales the cold-start latency down to a swap-in
// (Picocenter restores paged state rather than building a container).
const resumeFraction = 0.25

// Errors returned by connections.
var (
	ErrConnClosed = errors.New("lambda: connection closed")
)

// ConnState is a connection's lifecycle state.
type ConnState int

// Connection states.
const (
	ConnActive ConnState = iota
	ConnSuspended
	ConnClosed
)

// ConnStats reports a connection's accounting at close.
type ConnStats struct {
	// Wall is the total open duration on the simulated timeline.
	Wall time.Duration
	// BilledActive is the container-attached time actually billed.
	BilledActive time.Duration
	// GBSeconds is the billed compute.
	GBSeconds float64
	// Suspends and Resumes count swap-outs and swap-ins.
	Suspends int
	Resumes  int
	// Messages is the number of events processed.
	Messages int
}

// Connection is a long-lived logical TCP connection served by a
// function container with suspend/resume. Not safe for concurrent use:
// it models one ordered byte stream.
type Connection struct {
	platform *Platform
	fn       Function
	cont     *container

	state        ConnState
	suspendAfter time.Duration
	openedAt     time.Time
	activeSince  time.Time
	lastActivity time.Time
	billed       time.Duration
	suspends     int
	resumes      int
	messages     int
}

// OpenConnection establishes a connection to a function at the
// caller's current simulated instant. The container cold-starts and
// stays attached until the connection idles past suspendAfter
// (DefaultSuspendAfter if zero).
func (p *Platform) OpenConnection(ctx *sim.Context, fnName string, suspendAfter time.Duration) (*Connection, error) {
	p.mu.Lock()
	st, ok := p.fns[fnName]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("lambda: %q: %w", fnName, ErrNoSuchFunction)
	}
	fn := st.fn
	p.mu.Unlock()

	if suspendAfter <= 0 {
		suspendAfter = DefaultSuspendAfter
	}
	sp := ctx.StartSpan("lambda", "OpenConnection")
	defer ctx.FinishSpan(sp)
	sp.Annotate("function", fnName)
	if ctx != nil {
		ctx.Advance(p.sample(netsim.HopGatewayDispatch))
		ctx.Advance(p.sample(netsim.HopColdStart))
	}
	now := p.instant(ctx)
	cont, _ := p.acquireContainer(st, fn.Regions[0], now)
	return &Connection{
		platform:     p,
		fn:           fn,
		cont:         cont,
		state:        ConnActive,
		suspendAfter: suspendAfter,
		openedAt:     now,
		activeSince:  now,
		lastActivity: now,
	}, nil
}

// State reports the connection's state as of the given instant,
// accounting for lazy suspension.
func (c *Connection) State(at time.Time) ConnState {
	if c.state == ConnClosed {
		return ConnClosed
	}
	if c.state == ConnActive && at.Sub(c.lastActivity) > c.suspendAfter {
		return ConnSuspended
	}
	return c.state
}

// Send delivers one event over the connection at the context's current
// instant, resuming the container if it was suspended. The handler
// runs exactly as in a regular invocation (same Env, same service
// latencies); the caller's cursor absorbs resume latency plus run time.
func (c *Connection) Send(ctx *sim.Context, event Event) (Response, error) {
	if c.state == ConnClosed {
		return Response{}, ErrConnClosed
	}
	sp := ctx.StartSpan("lambda", "ConnectionSend")
	defer ctx.FinishSpan(sp)
	sp.Annotate("function", c.fn.Name)
	now := c.platform.instant(ctx)
	c.settleTo(now)

	if c.state == ConnSuspended {
		// Swap the container back in.
		resume := time.Duration(float64(c.platform.sample(netsim.HopColdStart)) * resumeFraction)
		if ctx != nil {
			ctx.Advance(resume)
		}
		c.resumes++
		c.state = ConnActive
		c.activeSince = c.platform.instant(ctx)
		sp.Annotate("resumed", "true")
	}

	invCursor := sim.NewCursor(c.platform.instant(ctx))
	env := &Env{
		platform: c.platform,
		fn:       &c.fn,
		cont:     c.cont,
		ctx: &sim.Context{
			Principal:     c.fn.Role,
			App:           c.fn.App,
			Region:        c.cont.region,
			Cursor:        invCursor,
			FunctionMemMB: c.fn.MemoryMB,
			// Nest the handler's downstream hops under this send's
			// span, so traced streaming flows attribute cost per hop
			// exactly like regular invocations.
			Span: sp,
		},
	}
	resp, err := c.fn.Handler(env, event)
	env.finish()
	if ctx != nil {
		ctx.Advance(invCursor.Elapsed())
	}
	c.messages++
	c.lastActivity = invCursor.Now()
	if c.lastActivity.Before(c.platform.instant(ctx)) {
		c.lastActivity = c.platform.instant(ctx)
	}
	return resp, err
}

// settleTo applies lazy suspension up to the instant now: if the
// connection idled past the threshold, billing stopped at
// lastActivity+suspendAfter.
func (c *Connection) settleTo(now time.Time) {
	if c.state != ConnActive || !now.After(c.lastActivity) {
		return
	}
	idleLimit := c.lastActivity.Add(c.suspendAfter)
	if now.After(idleLimit) {
		c.billed += idleLimit.Sub(c.activeSince)
		c.state = ConnSuspended
		c.suspends++
	}
}

// Close ends the connection at the given instant, accrues the final
// active interval, meters the usage, and scrubs the container.
func (c *Connection) Close(at time.Time) (ConnStats, error) {
	if c.state == ConnClosed {
		return ConnStats{}, ErrConnClosed
	}
	c.settleTo(at)
	if c.state == ConnActive {
		end := at
		if end.Before(c.lastActivity) {
			end = c.lastActivity
		}
		c.billed += end.Sub(c.activeSince)
	}
	c.state = ConnClosed

	billedQ := billQuantum(c.billed)
	stats := ConnStats{
		Wall:         at.Sub(c.openedAt),
		BilledActive: billedQ,
		GBSeconds:    billedQ.Seconds() * float64(c.fn.MemoryMB) / 1024.0,
		Suspends:     c.suspends,
		Resumes:      c.resumes,
		Messages:     c.messages,
	}
	// One platform request per connection establishment plus one per
	// swap-in, and the billed GB-seconds.
	c.platform.meter.Add(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: float64(1 + c.resumes), App: c.fn.App})
	c.platform.meter.Add(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: stats.GBSeconds, App: c.fn.App})

	c.platform.mu.Lock()
	c.cont.busy = false
	c.cont.scrub()
	c.platform.mu.Unlock()
	return stats, nil
}
