package lambda

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

func streamFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	f.register(t, Function{Name: "tcp-fn", MemoryMB: 128, Handler: func(env *Env, ev Event) (Response, error) {
		env.Compute(20 * time.Millisecond)
		return Response{Status: 200, Body: ev.Body}, nil
	}})
	return f
}

func TestConnectionSendReceive(t *testing.T) {
	f := streamFixture(t)
	ctx := f.ctx()
	conn, err := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Send(ctx, Event{Body: []byte("ping")})
	if err != nil || string(resp.Body) != "ping" {
		t.Fatalf("send: %v %q", err, resp.Body)
	}
	stats, err := conn.Close(ctx.Cursor.Now())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 || stats.Resumes != 0 || stats.Suspends != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestOpenConnectionUnknownFunction(t *testing.T) {
	f := streamFixture(t)
	if _, err := f.platform.OpenConnection(f.ctx(), "ghost", 0); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("got %v, want ErrNoSuchFunction", err)
	}
}

func TestIdleSuspendStopsBilling(t *testing.T) {
	// The §8.3 payoff: a connection open for an hour with sparse
	// traffic bills only the active slivers, not the hour.
	f := streamFixture(t)
	ctx := f.ctx()
	conn, err := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 10 messages spaced 6 minutes apart.
	for i := 0; i < 10; i++ {
		ctx.Cursor.Advance(6 * time.Minute)
		if _, err := conn.Send(ctx, Event{Body: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := conn.Close(ctx.Cursor.Now())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Wall < time.Hour {
		t.Fatalf("wall = %v, want ≥ 1h", stats.Wall)
	}
	// Each gap triggers a suspend, each message after one a resume.
	if stats.Suspends != 10 || stats.Resumes != 10 {
		t.Fatalf("suspends=%d resumes=%d, want 10/10", stats.Suspends, stats.Resumes)
	}
	// Billed: ~10 × (1 s idle threshold + ~20-50 ms run) ≈ 11 s, vs
	// the 3600 s a naive always-active connection would bill.
	if stats.BilledActive > 30*time.Second {
		t.Fatalf("billed %v, want a few seconds (suspend broken)", stats.BilledActive)
	}
	if stats.BilledActive < 5*time.Second {
		t.Fatalf("billed %v, suspiciously low", stats.BilledActive)
	}
}

func TestAlwaysActiveWithoutTraffic(t *testing.T) {
	// Traffic within the idle threshold never suspends.
	f := streamFixture(t)
	ctx := f.ctx()
	conn, err := f.platform.OpenConnection(ctx, "tcp-fn", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ctx.Cursor.Advance(time.Second)
		if _, err := conn.Send(ctx, Event{}); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := conn.Close(ctx.Cursor.Now())
	if stats.Suspends != 0 || stats.Resumes != 0 {
		t.Fatalf("chatty connection suspended: %+v", stats)
	}
	// Billed ≈ the whole wall time (always attached).
	if stats.BilledActive < stats.Wall-time.Second {
		t.Fatalf("billed %v of wall %v", stats.BilledActive, stats.Wall)
	}
}

func TestResumeFasterThanColdStart(t *testing.T) {
	f := streamFixture(t)
	ctx := f.ctx()
	conn, err := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Warm send latency.
	before := ctx.Cursor.Elapsed()
	conn.Send(ctx, Event{})
	warm := ctx.Cursor.Elapsed() - before

	// Suspended send latency (includes swap-in).
	ctx.Cursor.Advance(time.Minute)
	before = ctx.Cursor.Elapsed()
	conn.Send(ctx, Event{})
	resumed := ctx.Cursor.Elapsed() - before

	if resumed <= warm {
		t.Fatalf("resume (%v) should cost more than warm (%v)", resumed, warm)
	}
	// But far less than a cold start (~250 ms median): the swap-in is
	// a quarter of it.
	if resumed-warm > 150*time.Millisecond {
		t.Fatalf("resume overhead %v, want ≪ cold start", resumed-warm)
	}
	conn.Close(ctx.Cursor.Now())
}

func TestConnectionMetering(t *testing.T) {
	f := streamFixture(t)
	ctx := f.ctx()
	before := f.meter.Total(pricing.LambdaGBSeconds)
	conn, _ := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	ctx.Cursor.Advance(time.Minute)
	conn.Send(ctx, Event{}) // one resume
	stats, _ := conn.Close(ctx.Cursor.Now())
	if got := f.meter.Total(pricing.LambdaGBSeconds) - before; got != stats.GBSeconds {
		t.Fatalf("metered %v GB-s, stats say %v", got, stats.GBSeconds)
	}
	// 1 open + 1 resume = 2 requests.
	if got := f.meter.Total(pricing.LambdaRequests); got != 2 {
		t.Fatalf("requests = %v, want 2", got)
	}
}

func TestClosedConnectionRefusesUse(t *testing.T) {
	f := streamFixture(t)
	ctx := f.ctx()
	conn, _ := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	if _, err := conn.Close(ctx.Cursor.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(ctx, Event{}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := conn.Close(ctx.Cursor.Now()); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestConnectionStateReporting(t *testing.T) {
	f := streamFixture(t)
	ctx := f.ctx()
	conn, _ := f.platform.OpenConnection(ctx, "tcp-fn", time.Second)
	now := ctx.Cursor.Now()
	if conn.State(now) != ConnActive {
		t.Fatal("fresh connection not active")
	}
	if conn.State(now.Add(time.Minute)) != ConnSuspended {
		t.Fatal("idle connection not reported suspended")
	}
	conn.Close(now)
	if conn.State(now) != ConnClosed {
		t.Fatal("closed connection not reported closed")
	}
}

func TestConnectionHandlerUsesServices(t *testing.T) {
	// Connection-served handlers get the same Env: S3 access works and
	// accrues latency into the caller's timeline.
	f := newFixture(t)
	f.register(t, Function{Name: "state-fn", MemoryMB: 448, Role: "fn-role", Handler: func(env *Env, ev Event) (Response, error) {
		if err := env.S3().Put(env.Ctx(), "b", "conn-state", ev.Body); err != nil {
			return Response{Status: 500}, err
		}
		return Response{Status: 200}, nil
	}})
	ctx := f.ctx()
	conn, err := f.platform.OpenConnection(ctx, "state-fn", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(ctx, Event{Body: []byte("persisted")}); err != nil {
		t.Fatal(err)
	}
	conn.Close(ctx.Cursor.Now())
	obj, err := f.s3.Get(&sim.Context{Principal: "fn-role", Cursor: sim.NewCursor(clock.Epoch)}, "b", "conn-state")
	if err != nil || string(obj.Data) != "persisted" {
		t.Fatalf("state write through connection failed: %v", err)
	}
}
