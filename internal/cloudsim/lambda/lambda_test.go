package lambda

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/kms"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/s3"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/sqs"
	"repro/internal/pricing"
)

type fixture struct {
	iam      *iam.Service
	meter    *pricing.Meter
	model    *netsim.Model
	clk      *clock.Virtual
	kms      *kms.Service
	s3       *s3.Service
	sqs      *sqs.Service
	platform *Platform
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		iam:   iam.New(),
		meter: pricing.NewMeter(),
		model: netsim.NewDefaultModel(),
		clk:   clock.NewVirtual(),
	}
	f.kms = kms.New(f.iam, f.meter, f.model, nil)
	f.s3 = s3.New(f.iam, f.meter, f.model, f.clk)
	f.sqs = sqs.New(f.iam, f.meter, f.model, f.clk)
	f.platform = New(f.meter, f.model, f.clk)
	f.platform.SetServices(Services{KMS: f.kms, S3: f.s3, SQS: f.sqs})

	if err := f.kms.CreateKey("k", false); err != nil {
		t.Fatal(err)
	}
	if err := f.s3.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	err := f.iam.PutRole(&iam.Role{
		Name: "fn-role",
		Policies: []iam.Policy{{
			Name: "all",
			Statements: []iam.Statement{
				iam.AllowStatement([]string{"kms:*", "s3:*", "sqs:*"}, []string{"*"}),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) register(t *testing.T, fn Function) {
	t.Helper()
	if fn.Role == "" {
		fn.Role = "fn-role"
	}
	if err := f.platform.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) ctx() *sim.Context {
	return &sim.Context{Cursor: sim.NewCursor(clock.Epoch), External: true}
}

func echoHandler(env *Env, ev Event) (Response, error) {
	env.Compute(10 * time.Millisecond)
	return Response{Status: 200, Body: ev.Body}, nil
}

func TestRegisterValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.platform.RegisterFunction(Function{}); err == nil {
		t.Fatal("unnamed function accepted")
	}
	if err := f.platform.RegisterFunction(Function{Name: "x"}); err == nil {
		t.Fatal("handlerless function accepted")
	}
	f.register(t, Function{Name: "dup", Handler: echoHandler})
	if err := f.platform.RegisterFunction(Function{Name: "dup", Handler: echoHandler, Role: "fn-role"}); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestMemoryClampingAndRounding(t *testing.T) {
	f := newFixture(t)
	cases := []struct{ in, want int }{
		{0, 128}, {100, 128}, {130, 192}, {448, 448}, {2000, 1536}, {1535, 1536},
	}
	for i, c := range cases {
		name := string(rune('a' + i))
		f.register(t, Function{Name: name, Handler: echoHandler, MemoryMB: c.in})
		got, _ := f.platform.Function(name)
		if got.MemoryMB != c.want {
			t.Errorf("memory %d clamped to %d, want %d", c.in, got.MemoryMB, c.want)
		}
	}
}

func TestInvokeEcho(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "echo", Handler: echoHandler, MemoryMB: 128})
	resp, stats, err := f.platform.Invoke(f.ctx(), "echo", Event{Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, []byte("hi")) {
		t.Fatalf("resp = %+v", resp)
	}
	if stats.RunTime < 10*time.Millisecond {
		t.Fatalf("run time %v below declared compute", stats.RunTime)
	}
	if !stats.ColdStart {
		t.Fatal("first invocation must be a cold start")
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	f := newFixture(t)
	if _, _, err := f.platform.Invoke(f.ctx(), "ghost", Event{}); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("got %v, want ErrNoSuchFunction", err)
	}
}

func TestBillingQuantum(t *testing.T) {
	// The paper's Table 3: a 134 ms run bills 200 ms.
	tests := []struct {
		run, want time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond},
		{101 * time.Millisecond, 200 * time.Millisecond},
		{134 * time.Millisecond, 200 * time.Millisecond},
		{200 * time.Millisecond, 200 * time.Millisecond},
		{1999 * time.Millisecond, 2000 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := billQuantum(tt.run); got != tt.want {
			t.Errorf("billQuantum(%v) = %v, want %v", tt.run, got, tt.want)
		}
	}
}

func TestGBSecondsAccounting(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: func(env *Env, ev Event) (Response, error) {
		env.Compute(450 * time.Millisecond)
		return Response{Status: 200}, nil
	}, MemoryMB: 512})
	_, stats, err := f.platform.Invoke(f.ctx(), "fn", Event{})
	if err != nil {
		t.Fatal(err)
	}
	// 450 ms + cold start (~250 ms) rounds to a 100 ms multiple; at
	// 512 MB that is billed/1000ms * 0.5 GB.
	wantGBs := stats.BilledTime.Seconds() * 0.5
	if stats.GBSeconds != wantGBs {
		t.Fatalf("GBSeconds = %v, want %v", stats.GBSeconds, wantGBs)
	}
	if got := f.meter.Total(pricing.LambdaGBSeconds); got != wantGBs {
		t.Fatalf("metered GB-s = %v, want %v", got, wantGBs)
	}
	if got := f.meter.Total(pricing.LambdaRequests); got != 1 {
		t.Fatalf("metered requests = %v, want 1", got)
	}
}

func TestWarmAndColdStarts(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: echoHandler})
	ctx := f.ctx()
	_, s1, _ := f.platform.Invoke(ctx, "fn", Event{})
	_, s2, _ := f.platform.Invoke(ctx, "fn", Event{})
	if !s1.ColdStart {
		t.Fatal("first invocation should cold start")
	}
	if s2.ColdStart {
		t.Fatal("second invocation on the same timeline should reuse the warm container")
	}
	if s1.RunTime <= s2.RunTime {
		t.Fatalf("cold run (%v) should exceed warm run (%v)", s1.RunTime, s2.RunTime)
	}
	inv, cold := f.platform.Stats("fn")
	if inv != 2 || cold != 1 {
		t.Fatalf("stats = %d invocations, %d cold; want 2, 1", inv, cold)
	}
}

func TestWarmPoolTTLEviction(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: echoHandler})
	f.platform.SetWarmTTL(time.Minute)

	ctx := f.ctx()
	f.platform.Invoke(ctx, "fn", Event{})
	if f.platform.WarmContainers("fn") != 1 {
		t.Fatal("container not retained")
	}
	// After 10 idle minutes on the timeline, the container is stale:
	// the next invocation cold-starts and eviction collects the corpse.
	ctx.Cursor.Advance(10 * time.Minute)
	_, stats, _ := f.platform.Invoke(ctx, "fn", Event{})
	if !stats.ColdStart {
		t.Fatal("stale container reused past TTL")
	}
	if n := f.platform.WarmContainers("fn"); n != 1 {
		t.Fatalf("warm containers = %d, want 1 (stale one evicted)", n)
	}
}

func TestConcurrentInvocationsScaleOut(t *testing.T) {
	// Two invocations whose containers are simultaneously busy must get
	// separate containers (auto-scaling).
	f := newFixture(t)
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	f.register(t, Function{Name: "fn", Handler: func(env *Env, ev Event) (Response, error) {
		started <- struct{}{}
		<-release
		return Response{Status: 200}, nil
	}})
	done := make(chan InvocationStats, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, st, _ := f.platform.Invoke(f.ctx(), "fn", Event{})
			done <- st
		}()
	}
	<-started
	<-started
	close(release)
	s1, s2 := <-done, <-done
	if !s1.ColdStart || !s2.ColdStart {
		t.Fatal("concurrent invocations should each cold start a container")
	}
	if f.platform.WarmContainers("fn") != 2 {
		t.Fatalf("warm containers = %d, want 2", f.platform.WarmContainers("fn"))
	}
}

func TestTimeout(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "slow", Timeout: time.Second, Handler: func(env *Env, ev Event) (Response, error) {
		env.Compute(5 * time.Second)
		return Response{Status: 200}, nil
	}})
	_, stats, err := f.platform.Invoke(f.ctx(), "slow", Event{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if stats.RunTime > time.Second {
		t.Fatalf("billed run time %v exceeds the timeout", stats.RunTime)
	}
}

func TestHandlerServiceCallsAccrueRunTime(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", MemoryMB: 448, Handler: func(env *Env, ev Event) (Response, error) {
		if err := env.S3().Put(env.Ctx(), "b", "k", []byte("data")); err != nil {
			return Response{Status: 500}, err
		}
		if _, err := env.S3().Get(env.Ctx(), "b", "k"); err != nil {
			return Response{Status: 500}, err
		}
		return Response{Status: 200}, nil
	}})
	ctx := f.ctx()
	_, s1, err := f.platform.Invoke(ctx, "fn", Event{})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := f.platform.Invoke(ctx, "fn", Event{}) // warm
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	// Warm run time ≈ two S3 calls at 448 MB (≈27 ms median each).
	if s2.RunTime < 20*time.Millisecond || s2.RunTime > 200*time.Millisecond {
		t.Fatalf("warm run with two S3 calls = %v, outside plausible band", s2.RunTime)
	}
}

func TestCallerCursorAbsorbsExecution(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: func(env *Env, ev Event) (Response, error) {
		env.Compute(300 * time.Millisecond)
		return Response{Status: 200}, nil
	}})
	ctx := f.ctx()
	_, stats, _ := f.platform.Invoke(ctx, "fn", Event{})
	if ctx.Cursor.Elapsed() < stats.RunTime {
		t.Fatalf("caller elapsed %v < run time %v", ctx.Cursor.Elapsed(), stats.RunTime)
	}
}

func TestRegionFailover(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{
		Name: "fn", Handler: echoHandler,
		Regions: []string{"us-west-2", "us-east-1"},
	})
	ctx := f.ctx()
	_, stats, err := f.platform.Invoke(ctx, "fn", Event{})
	if err != nil || stats.Region != "us-west-2" {
		t.Fatalf("healthy: region %q err %v", stats.Region, err)
	}

	f.model.SetOutage("us-west-2", true)
	_, stats, err = f.platform.Invoke(f.ctx(), "fn", Event{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Region != "us-east-1" {
		t.Fatalf("failover region = %q, want us-east-1", stats.Region)
	}

	f.model.SetOutage("us-east-1", true)
	if _, _, err := f.platform.Invoke(f.ctx(), "fn", Event{}); !errors.Is(err, ErrAllRegionsDown) {
		t.Fatalf("both down: got %v, want ErrAllRegionsDown", err)
	}
}

func TestPeakMemoryReported(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: func(env *Env, ev Event) (Response, error) {
		env.RecordMemory(20 << 20)
		env.RecordMemory(51 << 20)
		env.RecordMemory(30 << 20)
		return Response{Status: 200}, nil
	}})
	_, stats, _ := f.platform.Invoke(f.ctx(), "fn", Event{})
	if stats.PeakMemoryBytes != 51<<20 {
		t.Fatalf("peak = %d, want 51 MiB", stats.PeakMemoryBytes)
	}
}

func TestDataKeyCachingSkipsKMS(t *testing.T) {
	f := newFixture(t)
	admin := &sim.Context{Principal: "fn-role", Cursor: sim.NewCursor(clock.Epoch)}
	_, wrapped, err := f.kms.GenerateDataKey(admin, "k")
	if err != nil {
		t.Fatal(err)
	}

	f.register(t, Function{Name: "cached", CacheDataKeys: true, Handler: func(env *Env, ev Event) (Response, error) {
		if _, err := env.DataKey(wrapped); err != nil {
			return Response{Status: 500}, err
		}
		return Response{Status: 200}, nil
	}})

	before := f.meter.Total(pricing.KMSRequests)
	ctx := f.ctx()
	for i := 0; i < 5; i++ {
		if _, _, err := f.platform.Invoke(ctx, "cached", Event{}); err != nil {
			t.Fatal(err)
		}
	}
	kmsCalls := f.meter.Total(pricing.KMSRequests) - before
	if kmsCalls != 1 {
		t.Fatalf("KMS calls with caching = %v, want 1 (cold start only)", kmsCalls)
	}
}

func TestNoCachingCallsKMSEveryTime(t *testing.T) {
	f := newFixture(t)
	admin := &sim.Context{Principal: "fn-role", Cursor: sim.NewCursor(clock.Epoch)}
	_, wrapped, err := f.kms.GenerateDataKey(admin, "k")
	if err != nil {
		t.Fatal(err)
	}
	f.register(t, Function{Name: "uncached", Handler: func(env *Env, ev Event) (Response, error) {
		if _, err := env.DataKey(wrapped); err != nil {
			return Response{Status: 500}, err
		}
		return Response{Status: 200}, nil
	}})
	before := f.meter.Total(pricing.KMSRequests)
	ctx := f.ctx()
	for i := 0; i < 5; i++ {
		f.platform.Invoke(ctx, "uncached", Event{})
	}
	if got := f.meter.Total(pricing.KMSRequests) - before; got != 5 {
		t.Fatalf("KMS calls without caching = %v, want 5", got)
	}
}

func TestRemoveFunctionScrubs(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "fn", Handler: echoHandler})
	f.platform.Invoke(f.ctx(), "fn", Event{})
	if err := f.platform.RemoveFunction("fn"); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.platform.Function("fn"); ok {
		t.Fatal("function survived removal")
	}
	if _, _, err := f.platform.Invoke(f.ctx(), "fn", Event{}); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatal("removed function still invokable")
	}
	if err := f.platform.RemoveFunction("fn"); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestTriggers(t *testing.T) {
	f := newFixture(t)
	f.register(t, Function{Name: "mailer", Handler: echoHandler})
	if err := f.platform.RegisterTrigger("ses", "alice@example.com", "mailer"); err != nil {
		t.Fatal(err)
	}
	if err := f.platform.RegisterTrigger("ses", "x", "ghost"); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("trigger to missing function: %v", err)
	}
	resp, _, err := f.platform.InvokeTrigger(f.ctx(), "ses", "alice@example.com", Event{Body: []byte("mail")})
	if err != nil || string(resp.Body) != "mail" {
		t.Fatalf("trigger invoke: %v %q", err, resp.Body)
	}
	if _, _, err := f.platform.InvokeTrigger(f.ctx(), "ses", "bob@example.com", Event{}); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("unknown trigger: %v", err)
	}
	// Removing the function removes its triggers.
	f.platform.RemoveFunction("mailer")
	if _, ok := f.platform.TriggerTarget("ses", "alice@example.com"); ok {
		t.Fatal("trigger survived function removal")
	}
}

func TestMeasurement(t *testing.T) {
	a := Function{Code: []byte("code-v1")}
	b := Function{Code: []byte("code-v2")}
	if a.Measurement() == b.Measurement() {
		t.Fatal("different code has identical measurement")
	}
	if a.Measurement() != a.Measurement() {
		t.Fatal("measurement not deterministic")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	f := newFixture(t)
	boom := errors.New("boom")
	f.register(t, Function{Name: "fail", Handler: func(env *Env, ev Event) (Response, error) {
		return Response{Status: 500}, boom
	}})
	_, stats, err := f.platform.Invoke(f.ctx(), "fail", Event{})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Failed invocations are still billed.
	if stats.BilledTime == 0 || f.meter.Total(pricing.LambdaRequests) != 1 {
		t.Fatal("failed invocation not billed")
	}
}

func TestEnvLogs(t *testing.T) {
	f := newFixture(t)
	var captured []string
	f.register(t, Function{Name: "fn", Handler: func(env *Env, ev Event) (Response, error) {
		env.Logf("processing %d bytes", len(ev.Body))
		captured = env.Logs()
		return Response{Status: 200}, nil
	}})
	f.platform.Invoke(f.ctx(), "fn", Event{Body: []byte("12345")})
	if len(captured) != 1 || captured[0] != "processing 5 bytes" {
		t.Fatalf("logs = %v", captured)
	}
}

func TestBillQuantumProperties(t *testing.T) {
	// Properties: billed >= run; billed - run < quantum (for positive
	// runs); billed is a positive quantum multiple.
	f := func(ms uint32) bool {
		run := time.Duration(ms%600_000) * time.Millisecond
		billed := billQuantum(run)
		if billed < run {
			return false
		}
		if run > 0 && billed-run >= pricing.BillingQuantum {
			return false
		}
		return billed > 0 && billed%pricing.BillingQuantum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvocationAccountingConsistency(t *testing.T) {
	// Property: for any declared compute, the metered GB-seconds equal
	// billed seconds times memory GB.
	f := newFixture(t)
	mems := []int{128, 256, 448, 1024}
	for i, mem := range mems {
		name := fmt.Sprintf("acct-%d", i)
		computeMs := 37 + i*113
		f.register(t, Function{Name: name, MemoryMB: mem, Handler: func(env *Env, ev Event) (Response, error) {
			env.Compute(time.Duration(computeMs) * time.Millisecond)
			return Response{Status: 200}, nil
		}})
		before := f.meter.Total(pricing.LambdaGBSeconds)
		_, stats, err := f.platform.Invoke(f.ctx(), name, Event{})
		if err != nil {
			t.Fatal(err)
		}
		metered := f.meter.Total(pricing.LambdaGBSeconds) - before
		want := stats.BilledTime.Seconds() * float64(mem) / 1024
		if math.Abs(metered-want) > 1e-9 || math.Abs(stats.GBSeconds-want) > 1e-9 {
			t.Fatalf("mem %d: metered %v, stats %v, want %v", mem, metered, stats.GBSeconds, want)
		}
	}
}

func TestConcurrencyLimit(t *testing.T) {
	f := newFixture(t)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	f.register(t, Function{Name: "slowpoke", Handler: func(env *Env, ev Event) (Response, error) {
		started <- struct{}{}
		<-release
		return Response{Status: 200}, nil
	}})
	f.platform.SetConcurrencyLimit(2)

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := f.platform.Invoke(f.ctx(), "slowpoke", Event{})
			done <- err
		}()
	}
	<-started
	<-started
	if got := f.platform.Concurrent(); got != 2 {
		t.Fatalf("concurrent = %d, want 2", got)
	}
	// The third invocation is throttled, not queued.
	if _, _, err := f.platform.Invoke(f.ctx(), "slowpoke", Event{}); !errors.Is(err, ErrConcurrencyLimit) {
		t.Fatalf("got %v, want ErrConcurrencyLimit", err)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Capacity is released afterwards.
	if _, _, err := f.platform.Invoke(f.ctx(), "slowpoke2", Event{}); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("unexpected error: %v", err)
	}
	f.register(t, Function{Name: "quick", Handler: echoHandler})
	if _, _, err := f.platform.Invoke(f.ctx(), "quick", Event{}); err != nil {
		t.Fatalf("post-release invoke: %v", err)
	}
	if got := f.platform.Concurrent(); got != 0 {
		t.Fatalf("concurrent after drain = %d", got)
	}
	// Non-positive restores the default.
	f.platform.SetConcurrencyLimit(0)
}
