// Package lambda simulates the serverless computing platform at the
// heart of DIY: functions registered with a memory allocation, invoked
// per request in isolated containers, billed in 100 ms increments of
// GB-seconds, scaled and georeplicated transparently.
//
// The simulator reproduces the cost- and latency-relevant mechanics of
// 2017 AWS Lambda:
//
//   - pay-per-request billing ($0.20/M requests + $0.00001667/GB-s,
//     metered through internal/pricing);
//   - execution time billed in 100 ms quanta — the reason the paper's
//     chat prototype runs 134 ms but bills 200 ms;
//   - cold starts when no warm container exists, with a configurable
//     warm-pool TTL;
//   - I/O bandwidth and latency proportional to the memory allocation
//     (via sim.Context.FunctionMemMB, consumed by the S3 simulator);
//   - multi-region replicas with transparent failover when a region is
//     down.
package lambda

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/logs"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

func init() {
	// Invocations authenticate at the trigger (gateway, SES hook), not
	// via IAM; the invoked function then acts as its own IAM role.
	plane.Register(
		plane.Op{Service: "lambda", Method: "Invoke", Action: ""},
		plane.Op{Service: "lambda", Method: "InvokeTrigger", Action: ""},
	)
}

// Memory limits of the 2017 platform: "Lambda allocates functions a
// limited amount of memory (128MB to 1.5GB at the time of writing)".
const (
	MinMemoryMB = 128
	MaxMemoryMB = 1536
)

// DefaultWarmTTL is how long an idle container stays warm.
const DefaultWarmTTL = 5 * time.Minute

// DefaultTimeout is the maximum function execution time.
const DefaultTimeout = 5 * time.Minute

// DefaultConcurrencyLimit is the 2017 account-wide concurrent
// execution limit.
const DefaultConcurrencyLimit = 1000

// Errors returned by the platform.
var (
	ErrNoSuchFunction = errors.New("lambda: no such function")
	ErrAllRegionsDown = errors.New("lambda: no healthy region")
	ErrTimeout        = errors.New("lambda: function timed out")
	// ErrConcurrencyLimit is the platform-side throttle when the
	// account's concurrent executions are exhausted (a 429 on AWS).
	ErrConcurrencyLimit = errors.New("lambda: concurrent execution limit reached")
)

// Event is the input delivered to a function invocation.
type Event struct {
	// Source identifies the trigger class: "https", "ses", "schedule".
	Source string
	// Path is the HTTPS endpoint path for gateway-triggered events.
	Path string
	// Op is the application-level operation name.
	Op string
	// Body is the request payload.
	Body []byte
	// Attrs carries string metadata (headers, sender address, ...).
	Attrs map[string]string
}

// Response is a function's reply.
type Response struct {
	Status int
	Body   []byte
	Attrs  map[string]string
}

// Handler is the code of a serverless function. Its service calls go
// through the Env so latency, billing and the threat-model boundary are
// enforced by the runtime.
type Handler func(env *Env, event Event) (Response, error)

// Function is a registered serverless function.
type Function struct {
	Name string
	// Handler runs for each request.
	Handler Handler
	// MemoryMB is the container memory allocation; it determines both
	// the GB-seconds price and the I/O performance.
	MemoryMB int
	// Timeout bounds execution time (DefaultTimeout if zero).
	Timeout time.Duration
	// Role is the IAM principal the function's service calls act as.
	Role string
	// App labels metered usage for the app store's resource report.
	App string
	// Regions lists the regions the function is replicated to, in
	// preference order. Empty means []string{"us-west-2"}.
	Regions []string
	// Code is the deployment package bytes; its SHA-256 is the
	// function's attestation measurement. The paper assumes function
	// code "may be unencrypted and accessible by adversaries" but is
	// faithfully executed — the hash is what an enclave would attest.
	Code []byte
	// CacheDataKeys lets warm containers retain unwrapped data keys
	// between invocations, the standard KMS data-key-caching practice
	// that keeps marginal KMS request cost at zero. Keys are scrubbed
	// when the container is evicted.
	CacheDataKeys bool
	// Config is the function's environment configuration (bucket
	// names, wrapped key blobs, queue names), the analog of Lambda
	// environment variables. Note the paper's assumption: stored
	// function configuration "may be unencrypted and accessible by
	// adversaries", which is why only the *wrapped* data key may be
	// placed here.
	Config map[string]string
}

// Measurement returns the SHA-256 of the deployment package, the value
// a hardware enclave would attest (§3.3 "Securing DIY with Enclaves").
func (f *Function) Measurement() [32]byte { return sha256.Sum256(f.Code) }

// InvocationStats reports one invocation's accounting.
type InvocationStats struct {
	// RunTime is the modelled execution duration (compute + service
	// I/O) — the paper's "Lambda Time Run".
	RunTime time.Duration
	// BilledTime is RunTime rounded up to the 100 ms quantum — the
	// paper's "Lambda Time Billed".
	BilledTime time.Duration
	// GBSeconds is the billed compute: BilledTime × memory.
	GBSeconds float64
	// ColdStart reports whether a new container was provisioned.
	ColdStart bool
	// PeakMemoryBytes is the handler-reported peak working set.
	PeakMemoryBytes int64
	// Region is where the invocation ran.
	Region string
}

// container is one warm execution environment.
type container struct {
	id       int64
	region   string
	busy     bool
	lastUsed time.Time
	cache    map[string][]byte
}

func (c *container) scrub() {
	for k, v := range c.cache {
		envelope.Zero(v)
		delete(c.cache, k)
	}
}

// functionState tracks a registered function and its containers.
type functionState struct {
	fn          Function
	containers  []*container
	invocations int64
	coldStarts  int64
}

// Platform is the simulated serverless platform. It is safe for
// concurrent use.
type Platform struct {
	meter *pricing.Meter
	pl    *plane.Plane
	model *netsim.Model
	clk   clock.Clock

	mu       sync.Mutex
	services Services
	fns      map[string]*functionState
	triggers map[string]string // "source/key" -> function name
	nextCID  int64
	warmTTL  time.Duration

	concLimit  int
	concurrent int
	metrics    *metrics.Service
	logs       *logs.Service
	nextReqID  int64
}

// New returns a platform wired to the meter, the network model and a
// clock (used for warm-pool aging in wall-clock mode).
func New(meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Platform {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Platform{
		meter:     meter,
		pl:        plane.New(nil, meter, model),
		model:     model,
		clk:       clk,
		fns:       make(map[string]*functionState),
		triggers:  make(map[string]string),
		warmTTL:   DefaultWarmTTL,
		concLimit: DefaultConcurrencyLimit,
	}
}

// Plane exposes the platform's request plane so wiring code can attach
// interceptors around every invocation.
func (p *Platform) Plane() *plane.Plane { return p.pl }

// SetMetrics wires a monitoring service; each invocation then
// publishes lambda.run.ms, lambda.billed.ms, lambda.peak.mb and
// lambda.cold samples under the function's name (the CloudWatch
// statistics the paper's Table 3 was measured from).
func (p *Platform) SetMetrics(m *metrics.Service) {
	p.mu.Lock()
	p.metrics = m
	p.mu.Unlock()
}

// SetLogs wires a log service; each invocation then writes the
// platform's START/END/REPORT lines — the 2017 service's shape, with
// Duration, Billed Duration (the 100 ms quantum), Memory Size, Max
// Memory Used, and Init Duration on cold starts — into log group
// "lambda/<function>", the simulator's /aws/lambda/<function>. These
// lines are the operator-facing evidence of per-invoke billing the
// paper's Table 3 numbers would be read from on real AWS.
func (p *Platform) SetLogs(l *logs.Service) {
	p.mu.Lock()
	p.logs = l
	p.mu.Unlock()
}

// SetConcurrencyLimit overrides the account's concurrent execution
// limit (non-positive restores the default).
func (p *Platform) SetConcurrencyLimit(n int) {
	if n <= 0 {
		n = DefaultConcurrencyLimit
	}
	p.mu.Lock()
	p.concLimit = n
	p.mu.Unlock()
}

// Concurrent reports the number of in-flight invocations.
func (p *Platform) Concurrent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.concurrent
}

// SetWarmTTL overrides the warm-pool idle TTL (for the cold-start
// ablation).
func (p *Platform) SetWarmTTL(d time.Duration) {
	p.mu.Lock()
	p.warmTTL = d
	p.mu.Unlock()
}

// RegisterFunction installs a function. The memory allocation is
// clamped into the platform's limits and rounded up to a 64 MB step.
func (p *Platform) RegisterFunction(fn Function) error {
	if fn.Name == "" {
		return errors.New("lambda: function must have a name")
	}
	if fn.Handler == nil {
		return fmt.Errorf("lambda: function %q has no handler", fn.Name)
	}
	if fn.MemoryMB < MinMemoryMB {
		fn.MemoryMB = MinMemoryMB
	}
	if fn.MemoryMB > MaxMemoryMB {
		fn.MemoryMB = MaxMemoryMB
	}
	if rem := fn.MemoryMB % 64; rem != 0 {
		fn.MemoryMB += 64 - rem
	}
	if fn.Timeout <= 0 {
		fn.Timeout = DefaultTimeout
	}
	if len(fn.Regions) == 0 {
		fn.Regions = []string{"us-west-2"}
	}
	if len(fn.Code) == 0 {
		fn.Code = []byte("package:" + fn.Name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.fns[fn.Name]; exists {
		return fmt.Errorf("lambda: function %q already registered", fn.Name)
	}
	p.fns[fn.Name] = &functionState{fn: fn}
	return nil
}

// RemoveFunction deletes a function, scrubbing all its containers.
func (p *Platform) RemoveFunction(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.fns[name]
	if !ok {
		return fmt.Errorf("lambda: %q: %w", name, ErrNoSuchFunction)
	}
	for _, c := range st.containers {
		c.scrub()
	}
	delete(p.fns, name)
	for k, v := range p.triggers {
		if v == name {
			delete(p.triggers, k)
		}
	}
	return nil
}

// Function returns a copy of a registered function's definition.
func (p *Platform) Function(name string) (Function, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.fns[name]
	if !ok {
		return Function{}, false
	}
	return st.fn, true
}

// ReplaceCode swaps a function's deployment package without going
// through the owner's deployment flow — the adversarial action (a
// compromised marketplace or provider-side tamper) that enclave
// attestation (§3.3/§8.2) exists to detect. The handler is also
// replaced when newHandler is non-nil.
func (p *Platform) ReplaceCode(fnName string, code []byte, newHandler Handler) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.fns[fnName]
	if !ok {
		return fmt.Errorf("lambda: %q: %w", fnName, ErrNoSuchFunction)
	}
	st.fn.Code = append([]byte(nil), code...)
	if newHandler != nil {
		st.fn.Handler = newHandler
	}
	return nil
}

// UpdateConfig merges key/value pairs into a function's environment
// configuration (e.g. rebinding the wrapped data key after migration).
func (p *Platform) UpdateConfig(fnName string, kv map[string]string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.fns[fnName]
	if !ok {
		return fmt.Errorf("lambda: %q: %w", fnName, ErrNoSuchFunction)
	}
	if st.fn.Config == nil {
		st.fn.Config = make(map[string]string)
	}
	for k, v := range kv {
		st.fn.Config[k] = v
	}
	// Config changes invalidate warm containers (new deployment).
	for _, c := range st.containers {
		c.scrub()
	}
	st.containers = nil
	return nil
}

// RegisterTrigger routes events of the given source and key (e.g.
// source "ses", key "alice@example.com") to a function.
func (p *Platform) RegisterTrigger(source, key, fnName string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fns[fnName]; !ok {
		return fmt.Errorf("lambda: trigger target %q: %w", fnName, ErrNoSuchFunction)
	}
	p.triggers[source+"/"+key] = fnName
	return nil
}

// TriggerTarget resolves a trigger to its function name.
func (p *Platform) TriggerTarget(source, key string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn, ok := p.triggers[source+"/"+key]
	return fn, ok
}

// InvokeTrigger fires the function registered for a trigger.
func (p *Platform) InvokeTrigger(ctx *sim.Context, source, key string, event Event) (Response, InvocationStats, error) {
	fnName, ok := p.TriggerTarget(source, key)
	if !ok {
		return Response{}, InvocationStats{}, fmt.Errorf("lambda: no trigger %s/%s: %w", source, key, ErrNoSuchFunction)
	}
	return p.Invoke(ctx, fnName, event)
}

// Invoke runs a function for one event. The caller's cursor (if any)
// advances by the dispatch latency plus the function's full run time.
func (p *Platform) Invoke(ctx *sim.Context, fnName string, event Event) (Response, InvocationStats, error) {
	p.mu.Lock()
	st, ok := p.fns[fnName]
	if !ok {
		p.mu.Unlock()
		return Response{}, InvocationStats{}, fmt.Errorf("lambda: %q: %w", fnName, ErrNoSuchFunction)
	}
	if p.concurrent >= p.concLimit {
		p.mu.Unlock()
		return Response{}, InvocationStats{}, fmt.Errorf("lambda: %d executions in flight: %w", p.concLimit, ErrConcurrencyLimit)
	}
	p.concurrent++
	defer func() {
		p.mu.Lock()
		p.concurrent--
		p.mu.Unlock()
	}()
	fn := st.fn
	warmTTL := p.warmTTL
	p.mu.Unlock()

	var resp Response
	var stats InvocationStats
	// The plane opens the lambda span covering dispatch plus the whole
	// execution (closed at the caller's cursor once the run time has
	// been absorbed); billing stays in the handler because GB-seconds
	// are attributed to the function's app, not the caller's, and the
	// quantum is known only after the run.
	err := p.pl.Do(ctx, &plane.Call{Service: "lambda", Op: fnName}, func(preq *plane.Request) error {
		lsp := preq.Span

		// Region selection with transparent failover: first healthy
		// replica wins; a failed-over request pays inter-region latency.
		region, hops, err := p.pickRegion(fn.Regions)
		if err != nil {
			lsp.Annotate("error", "all-regions-down")
			return err
		}
		if ctx != nil {
			for i := 0; i < hops; i++ {
				ctx.Advance(p.sample(netsim.HopInterRegion))
			}
			ctx.Advance(p.sample(netsim.HopGatewayDispatch))
		}

		// The invocation runs on its own cursor forked from the caller so
		// run time is measured independently of upstream latency.
		start := p.instant(ctx)
		invCursor := sim.NewCursor(start)

		cont, cold := p.acquireContainer(st, region, start)
		stats = InvocationStats{ColdStart: cold, Region: region}
		lsp.Annotate("region", region)
		lsp.Annotate("memory_mb", strconv.Itoa(fn.MemoryMB))
		lsp.Annotate("cold_start", strconv.FormatBool(cold))
		var initDur time.Duration
		if cold {
			csp := lsp.StartChild("lambda", "cold-start", invCursor.Now())
			initDur = p.sample(netsim.HopColdStart)
			invCursor.Advance(initDur)
			csp.Finish(invCursor.Now())
		}

		env := &Env{
			platform: p,
			fn:       &fn,
			cont:     cont,
			ctx: &sim.Context{
				Principal:     fn.Role,
				App:           fn.App,
				Region:        region,
				Cursor:        invCursor,
				FunctionMemMB: fn.MemoryMB,
				// Downstream service hops made from inside the container
				// nest under the invocation's span on its own timeline.
				Span: lsp,
			},
		}

		var herr error
		resp, herr = fn.Handler(env, event)
		env.finish()

		run := invCursor.Elapsed()
		timedOut := run > fn.Timeout
		if timedOut {
			run = fn.Timeout
		}
		stats.RunTime = run
		stats.BilledTime = billQuantum(run)
		stats.GBSeconds = stats.BilledTime.Seconds() * float64(fn.MemoryMB) / 1024.0
		stats.PeakMemoryBytes = env.peakMemory

		lsp.Annotate("run_ms", strconv.FormatInt(run.Milliseconds(), 10))
		lsp.Annotate("billed_ms", strconv.FormatInt(stats.BilledTime.Milliseconds(), 10))
		if pad := stats.BilledTime - run; pad > 0 {
			// The billing quantum's padding is virtual: nothing executes
			// during it, but the GB-seconds charge covers it, so it gets a
			// span of its own for honest cost attribution. It may extend
			// past the parent's end, like X-Ray's in-progress segments.
			qsp := lsp.StartChild("lambda", "billing-quantum", start.Add(run))
			qsp.Annotate("padding_ms", strconv.FormatInt(pad.Milliseconds(), 10))
			qsp.Finish(start.Add(stats.BilledTime))
		}

		// Metering: one request plus billed GB-seconds, attributed to the
		// function's app (not the invoking caller's, hence MeterUsageAs);
		// mirrored into the span so the trace's ledger matches the meter
		// record-for-record, and visible to the request's interceptors
		// so the cost series covers the invocation charge.
		preq.MeterUsageAs(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1, App: fn.App})
		preq.MeterUsageAs(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: stats.GBSeconds, App: fn.App})

		// The caller's timeline absorbs the whole execution.
		if ctx != nil {
			ctx.Advance(run)
		}

		// Publish monitoring samples.
		p.mu.Lock()
		mon := p.metrics
		p.mu.Unlock()
		if mon != nil {
			mon.Record(fnName, metrics.MetricLambdaRunMs, start, float64(stats.RunTime)/float64(time.Millisecond))
			mon.Record(fnName, metrics.MetricLambdaBilledMs, start, float64(stats.BilledTime)/float64(time.Millisecond))
			mon.Record(fnName, metrics.MetricLambdaPeakMB, start, float64(stats.PeakMemoryBytes)/(1<<20))
			coldVal := 0.0
			if stats.ColdStart {
				coldVal = 1
			}
			mon.Record(fnName, metrics.MetricLambdaCold, start, coldVal)
		}

		// Write the platform's log lines. The request id is minted from a
		// platform counter only when a log service is wired, and the
		// whole block is read-only otherwise — no meter, rand, or cursor
		// effect — so logging on vs off cannot move the ledger.
		p.mu.Lock()
		lg := p.logs
		var reqID string
		if lg != nil {
			p.nextReqID++
			reqID = fmt.Sprintf("00000000-0000-4000-8000-%012x", p.nextReqID)
		}
		p.mu.Unlock()
		if lg != nil {
			stream := start.UTC().Format("2006/01/02") +
				fmt.Sprintf("/[$LATEST]container-%06d", cont.id)
			report := fmt.Sprintf(
				"REPORT RequestId: %s\tDuration: %.2f ms\tBilled Duration: %d ms\tMemory Size: %d MB\tMax Memory Used: %d MB",
				reqID, float64(run)/float64(time.Millisecond),
				stats.BilledTime.Milliseconds(), fn.MemoryMB, stats.PeakMemoryBytes>>20)
			if cold {
				report += fmt.Sprintf("\tInit Duration: %.2f ms",
					float64(initDur)/float64(time.Millisecond))
			}
			endAt := start.Add(run)
			lg.PutEvents(logs.LambdaGroup(fnName), stream,
				logs.Event{Time: start, Message: "START RequestId: " + reqID + " Version: $LATEST"},
				logs.Event{Time: endAt, Message: "END RequestId: " + reqID},
				logs.Event{Time: endAt, Message: report},
			)
		}

		// Release the container.
		p.mu.Lock()
		st.invocations++
		if cold {
			st.coldStarts++
		}
		cont.busy = false
		cont.lastUsed = maxTime(p.instant(ctx), invCursor.Now())
		if !fn.CacheDataKeys {
			cont.scrub()
		}
		p.mu.Unlock()

		// Evict containers idle beyond the TTL so their cached secrets die.
		p.evictIdle(st, warmTTL, cont.lastUsed)

		if timedOut {
			resp = Response{}
			return fmt.Errorf("lambda: %q after %v: %w", fnName, fn.Timeout, ErrTimeout)
		}
		return herr
	})
	return resp, stats, err
}

// Stats reports a function's lifetime invocation and cold-start counts.
func (p *Platform) Stats(fnName string) (invocations, coldStarts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.fns[fnName]; ok {
		return st.invocations, st.coldStarts
	}
	return 0, 0
}

// WarmContainers reports how many warm containers a function holds.
func (p *Platform) WarmContainers(fnName string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.fns[fnName]; ok {
		return len(st.containers)
	}
	return 0
}

func (p *Platform) pickRegion(regions []string) (region string, hops int, err error) {
	for i, r := range regions {
		if p.model == nil || p.model.RegionUp(r) {
			return r, i, nil
		}
	}
	return "", 0, ErrAllRegionsDown
}

func (p *Platform) acquireContainer(st *functionState, region string, now time.Time) (*container, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range st.containers {
		if c.busy || c.region != region {
			continue
		}
		if p.warmTTL > 0 && now.Sub(c.lastUsed) > p.warmTTL {
			continue // stale; eviction will collect it
		}
		c.busy = true
		return c, false
	}
	p.nextCID++
	c := &container{
		id:       p.nextCID,
		region:   region,
		busy:     true,
		lastUsed: now,
		cache:    make(map[string][]byte),
	}
	st.containers = append(st.containers, c)
	return c, true
}

func (p *Platform) evictIdle(st *functionState, ttl time.Duration, now time.Time) {
	if ttl <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := st.containers[:0]
	for _, c := range st.containers {
		if !c.busy && now.Sub(c.lastUsed) > ttl {
			c.scrub()
			continue
		}
		kept = append(kept, c)
	}
	st.containers = kept
}

func (p *Platform) sample(h netsim.Hop) time.Duration {
	if p.model == nil {
		return 0
	}
	return p.model.Sample(h)
}

func (p *Platform) instant(ctx *sim.Context) time.Time {
	if ctx != nil && ctx.Cursor != nil {
		return ctx.Cursor.Now()
	}
	return p.clk.Now()
}

// billQuantum rounds a run time up to the 100 ms billing increment.
// Every invocation bills at least one quantum.
func billQuantum(run time.Duration) time.Duration {
	if run <= 0 {
		return pricing.BillingQuantum
	}
	q := pricing.BillingQuantum
	n := (run + q - 1) / q
	return n * q
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
