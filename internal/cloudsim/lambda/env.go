package lambda

import (
	"fmt"
	"time"

	"repro/internal/cloudsim/dynamo"
	"repro/internal/cloudsim/kms"
	"repro/internal/cloudsim/s3"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/sqs"
	"repro/internal/crypto/envelope"
)

// EmailSender is the outbound-email capability exposed to functions.
// It is an interface so the lambda package does not depend on the ses
// package (which depends on lambda for inbound triggers).
type EmailSender interface {
	Send(ctx *sim.Context, from string, to []string, raw []byte) error
}

// Services bundles the cloud services functions may call.
type Services struct {
	KMS    *kms.Service
	S3     *s3.Service
	SQS    *sqs.Service
	Dynamo *dynamo.Service
	Email  EmailSender
}

// SetServices wires the platform's service handles, exposed to handlers
// through their Env.
func (p *Platform) SetServices(s Services) {
	p.mu.Lock()
	p.services = s
	p.mu.Unlock()
}

// Env is the execution environment handed to a Handler. It carries the
// invocation's identity (the function's IAM role), its simulated
// timeline, and the container-local state. All service calls made
// through the Env are authenticated, metered and latency-accounted.
type Env struct {
	platform *Platform
	fn       *Function
	cont     *container
	ctx      *sim.Context

	peakMemory int64
	secrets    [][]byte
	logs       []string
}

// Ctx returns the invocation's call context: principal = the function's
// role, cursor = the invocation timeline, memory = the allocation.
func (e *Env) Ctx() *sim.Context { return e.ctx }

// KMS returns the key management service handle.
func (e *Env) KMS() *kms.Service { return e.platform.servicesSnapshot().KMS }

// S3 returns the object store handle.
func (e *Env) S3() *s3.Service { return e.platform.servicesSnapshot().S3 }

// SQS returns the queue service handle.
func (e *Env) SQS() *sqs.Service { return e.platform.servicesSnapshot().SQS }

// Dynamo returns the low-latency table store handle, or nil if the
// platform has none wired.
func (e *Env) Dynamo() *dynamo.Service { return e.platform.servicesSnapshot().Dynamo }

// Email returns the outbound email service, or nil if none is wired.
func (e *Env) Email() EmailSender { return e.platform.servicesSnapshot().Email }

// MemoryMB reports the container's memory allocation.
func (e *Env) MemoryMB() int { return e.fn.MemoryMB }

// Config returns a function environment value ("" if unset).
func (e *Env) Config(key string) string { return e.fn.Config[key] }

// Region reports where this invocation is running.
func (e *Env) Region() string { return e.ctx.Region }

// Compute declares d of modelled CPU work (encryption, parsing,
// application logic), advancing the invocation timeline. The handler's
// real Go execution time on the test machine is deliberately not used:
// run time must be deterministic and calibrated to the 2017 platform.
func (e *Env) Compute(d time.Duration) { e.ctx.Advance(d) }

// RecordMemory reports a working-set size; the invocation's peak is
// exposed in InvocationStats (the paper's "Peak Memory Used" row).
func (e *Env) RecordMemory(bytes int64) {
	if bytes > e.peakMemory {
		e.peakMemory = bytes
	}
}

// TrackSecret registers key material to be zeroed when the invocation
// finishes, enforcing the paper's "the function only contains the key
// in its memory during execution".
func (e *Env) TrackSecret(secret []byte) { e.secrets = append(e.secrets, secret) }

// DataKey returns the plaintext data key for a wrapped blob. With
// CacheDataKeys enabled, warm containers reuse the unwrapped key and
// skip the KMS round trip; otherwise every invocation calls KMS and the
// key is scrubbed at invocation end.
func (e *Env) DataKey(wrapped []byte) ([]byte, error) {
	cacheKey := string(wrapped)
	if e.fn.CacheDataKeys {
		e.platform.mu.Lock()
		cached, ok := e.cont.cache[cacheKey]
		e.platform.mu.Unlock()
		if ok {
			return cached, nil
		}
	}
	dk, err := e.KMS().Decrypt(e.ctx, wrapped)
	if err != nil {
		return nil, fmt.Errorf("lambda: unwrapping data key: %w", err)
	}
	if e.fn.CacheDataKeys {
		e.platform.mu.Lock()
		e.cont.cache[cacheKey] = dk
		e.platform.mu.Unlock()
	} else {
		e.TrackSecret(dk)
	}
	return dk, nil
}

// Logf records a diagnostic line on the invocation.
func (e *Env) Logf(format string, args ...any) {
	e.logs = append(e.logs, fmt.Sprintf(format, args...))
}

// Logs returns the lines recorded during the invocation.
func (e *Env) Logs() []string { return e.logs }

// finish scrubs per-invocation secrets.
func (e *Env) finish() {
	for _, s := range e.secrets {
		envelope.Zero(s)
	}
	e.secrets = nil
}

func (p *Platform) servicesSnapshot() Services {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.services
}
