package dynamo

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/crypto/envelope"
	"repro/internal/pricing"
)

type fixture struct {
	iam    *iam.Service
	meter  *pricing.Meter
	dynamo *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{iam: iam.New(), meter: pricing.NewMeter()}
	f.dynamo = New(f.iam, f.meter, netsim.NewDefaultModel(), nil)
	if err := f.dynamo.CreateTable("alice-chat"); err != nil {
		t.Fatal(err)
	}
	err := f.iam.PutRole(&iam.Role{
		Name: "fn",
		Policies: []iam.Policy{{
			Name: "table-access",
			Statements: []iam.Statement{
				iam.AllowStatement([]string{"dynamodb:*"}, []string{"table/alice-chat"}),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) ctx() *sim.Context {
	return &sim.Context{Principal: "fn", App: "chat", Cursor: sim.NewCursor(clock.Epoch)}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	if err := f.dynamo.Put(ctx, "alice-chat", "room", []byte("v")); err != nil {
		t.Fatal(err)
	}
	it, err := f.dynamo.Get(ctx, "alice-chat", "room")
	if err != nil || string(it.Value) != "v" {
		t.Fatalf("get: %v %q", err, it.Value)
	}
	if it.Version == 0 || !it.Modified.Equal(ctx.Cursor.Now()) && it.Modified.IsZero() {
		t.Fatalf("metadata: %+v", it)
	}
	// Returned value is a copy.
	it.Value[0] = 'X'
	again, _ := f.dynamo.Get(ctx, "alice-chat", "room")
	if string(again.Value) != "v" {
		t.Fatal("internal buffer exposed")
	}
}

func TestGetMissing(t *testing.T) {
	f := newFixture(t)
	if _, err := f.dynamo.Get(f.ctx(), "alice-chat", "nope"); !errors.Is(err, ErrNoSuchItem) {
		t.Fatalf("got %v, want ErrNoSuchItem", err)
	}
}

func TestConditionalWrites(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	// Create-if-absent.
	if err := f.dynamo.PutIfVersion(ctx, "alice-chat", "k", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	// Second create fails.
	if err := f.dynamo.PutIfVersion(ctx, "alice-chat", "k", []byte("v1b"), 0); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("got %v, want ErrConditionFailed", err)
	}
	it, _ := f.dynamo.Get(ctx, "alice-chat", "k")
	// Update at the right version succeeds.
	if err := f.dynamo.PutIfVersion(ctx, "alice-chat", "k", []byte("v2"), it.Version); err != nil {
		t.Fatal(err)
	}
	// Update at the stale version fails (lost-update protection).
	if err := f.dynamo.PutIfVersion(ctx, "alice-chat", "k", []byte("v3"), it.Version); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("stale write: got %v, want ErrConditionFailed", err)
	}
	got, _ := f.dynamo.Get(ctx, "alice-chat", "k")
	if string(got.Value) != "v2" {
		t.Fatalf("value = %q", got.Value)
	}
}

func TestQueryPrefix(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	for _, k := range []string{"msg/2", "msg/1", "meta"} {
		f.dynamo.Put(ctx, "alice-chat", k, []byte("x"))
	}
	keys, err := f.dynamo.Query(ctx, "alice-chat", "msg/")
	if err != nil || len(keys) != 2 || keys[0] != "msg/1" {
		t.Fatalf("query: %v %v", err, keys)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.dynamo.Put(ctx, "alice-chat", "k", []byte("x"))
	if err := f.dynamo.Delete(ctx, "alice-chat", "k"); err != nil {
		t.Fatal(err)
	}
	if err := f.dynamo.Delete(ctx, "alice-chat", "k"); err != nil {
		t.Fatal(err)
	}
}

func TestIAMDenied(t *testing.T) {
	f := newFixture(t)
	evil := &sim.Context{Principal: "mallory", Cursor: sim.NewCursor(clock.Epoch)}
	if err := f.dynamo.Put(evil, "alice-chat", "k", []byte("x")); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestTableLifecycle(t *testing.T) {
	f := newFixture(t)
	if err := f.dynamo.CreateTable("alice-chat"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("dup create: %v", err)
	}
	if err := f.dynamo.CreateTable("a/b"); err == nil {
		t.Fatal("bad name accepted")
	}
	if err := f.dynamo.DeleteTable("alice-chat"); err != nil {
		t.Fatal(err)
	}
	if f.dynamo.TableExists("alice-chat") {
		t.Fatal("table survived delete")
	}
	if err := f.dynamo.DeleteTable("alice-chat"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSealedPolicy(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.dynamo.SetRequireSealed("alice-chat", envelope.IsSealed)
	if err := f.dynamo.Put(ctx, "alice-chat", "k", []byte("plaintext")); !errors.Is(err, ErrPlaintextRejected) {
		t.Fatalf("got %v, want ErrPlaintextRejected", err)
	}
	key, _ := envelope.NewDataKey()
	sealed, _ := envelope.Seal(key, []byte("x"), nil)
	if err := f.dynamo.Put(ctx, "alice-chat", "k", sealed); err != nil {
		t.Fatal(err)
	}
	// Lift the policy.
	f.dynamo.SetRequireSealed("alice-chat", nil)
	if err := f.dynamo.Put(ctx, "alice-chat", "k2", []byte("ok now")); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityUnitsMetered(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	// A 3 KB write = 3 WCU; reading it back = 1 RCU (under 4 KB).
	f.dynamo.Put(ctx, "alice-chat", "k", make([]byte, 3<<10))
	f.dynamo.Get(ctx, "alice-chat", "k")
	if got := f.meter.TotalFor(pricing.DynamoWCU, "chat"); got != 3 {
		t.Fatalf("WCU = %v, want 3", got)
	}
	if got := f.meter.TotalFor(pricing.DynamoRCU, "chat"); got != 1 {
		t.Fatalf("RCU = %v, want 1", got)
	}
	// Pricing: well within the free 25-unit allowance.
	bill := pricing.Compute(pricing.Default2017(), f.meter)
	if bill.TotalOf(pricing.DynamoRCU, pricing.DynamoWCU) != 0 {
		t.Fatal("free tier not applied")
	}
}

func TestFasterThanS3(t *testing.T) {
	// The footnote's point: the same logical op is several times
	// faster on the table store.
	f := newFixture(t)
	dCtx := f.ctx()
	dCtx.FunctionMemMB = 448
	var dynamoTime, s3Median time.Duration
	for i := 0; i < 32; i++ {
		before := dCtx.Cursor.Elapsed()
		f.dynamo.Get(dCtx, "alice-chat", "absent") // latency applies regardless
		dynamoTime += dCtx.Cursor.Elapsed() - before
	}
	model := netsim.NewDefaultModel()
	s3Median = model.Median(netsim.HopS3) * 32
	if dynamoTime*2 >= s3Median {
		t.Fatalf("dynamo 32 ops took %v, not ≪ S3's %v", dynamoTime, s3Median)
	}
}

func TestStorageBytes(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx()
	f.dynamo.Put(ctx, "alice-chat", "a", make([]byte, 100))
	f.dynamo.Put(ctx, "alice-chat", "b", make([]byte, 50))
	if got := f.dynamo.StorageBytes("alice-chat"); got != 150 {
		t.Fatalf("bytes = %d", got)
	}
	if got := f.dynamo.StorageBytes(""); got != 150 {
		t.Fatalf("all bytes = %d", got)
	}
}

func TestCapacityUnitRounding(t *testing.T) {
	if readUnits(0) != 1 || readUnits(1) != 1 || readUnits(4096) != 1 || readUnits(4097) != 2 {
		t.Fatal("read unit rounding wrong")
	}
	if writeUnits(0) != 1 || writeUnits(1024) != 1 || writeUnits(1025) != 2 {
		t.Fatal("write unit rounding wrong")
	}
}
