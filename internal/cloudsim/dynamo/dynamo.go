// Package dynamo simulates the low-latency key-value alternative to
// object storage that the paper's evaluation footnotes: "Amazon
// DynamoDB is a low-latency alternative to S3."
//
// Tables hold versioned items with conditional writes; per-item
// operations are several times faster than S3 calls and are priced in
// provisioned read/write capacity units, with the 2017 always-free
// allowance of 25 RCU + 25 WCU that keeps personal-scale DIY services
// at $0.00. The chat application can run against either backend; the
// backend ablation in internal/experiments compares them.
package dynamo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/sortutil"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

func init() {
	plane.Register(
		plane.Op{Service: "dynamo", Method: "Get", Action: ActionGet},
		plane.Op{Service: "dynamo", Method: "Put", Action: ActionPut},
		plane.Op{Service: "dynamo", Method: "PutIfVersion", Action: ActionPut},
		plane.Op{Service: "dynamo", Method: "Delete", Action: ActionDelete},
		plane.Op{Service: "dynamo", Method: "Query", Action: ActionQuery},
	)
}

// Actions checked against IAM.
const (
	ActionGet    = "dynamodb:GetItem"
	ActionPut    = "dynamodb:PutItem"
	ActionDelete = "dynamodb:DeleteItem"
	ActionQuery  = "dynamodb:Query"
)

// ItemUnitBytes is the capacity-unit accounting granularity: one write
// unit per 1 KB, one read unit per 4 KB (2017 DynamoDB pricing model).
const (
	WriteUnitBytes = 1 << 10
	ReadUnitBytes  = 4 << 10
)

// Errors returned by the service.
var (
	ErrNoSuchTable       = errors.New("dynamo: no such table")
	ErrNoSuchItem        = errors.New("dynamo: no such item")
	ErrTableExists       = errors.New("dynamo: table already exists")
	ErrConditionFailed   = errors.New("dynamo: conditional check failed")
	ErrPlaintextRejected = errors.New("dynamo: table policy rejects plaintext items")
)

// Item is one stored item.
type Item struct {
	Key      string
	Value    []byte
	Version  int64
	Modified time.Time
}

type table struct {
	items         map[string]*Item
	version       int64
	requireSealed bool
	sealedCheck   func([]byte) bool
}

// Service is the simulated table store. It is safe for concurrent use.
type Service struct {
	pl  *plane.Plane
	clk clock.Clock

	mu     sync.Mutex
	tables map[string]*table
}

// New returns a table store wired to IAM, the meter, the network model
// and a clock (nil defaults to the wall clock) used for item
// modification timestamps on flows that carry no simulated timeline.
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		pl:     plane.New(iamSvc, meter, model),
		clk:    clk,
		tables: make(map[string]*table),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors around every op.
func (s *Service) Plane() *plane.Plane { return s.pl }

// call builds the plane descriptor for one table op: a quarter of an
// S3 hop with the same memory coupling, priced in capacity units.
func call(action, tableName string, rcu, wcu float64) *plane.Call {
	c := &plane.Call{
		Service:     "dynamo",
		Op:          action,
		Action:      action,
		Resource:    Resource(tableName),
		Annotations: []trace.Annotation{{Key: "table", Value: tableName}},
		Latency:     &plane.Latency{Hop: netsim.HopS3, Scale: 0.25, MemoryCoupled: true},
	}
	if rcu > 0 {
		c.Usage = append(c.Usage, pricing.Usage{Kind: pricing.DynamoRCU, Quantity: rcu})
	}
	if wcu > 0 {
		c.Usage = append(c.Usage, pricing.Usage{Kind: pricing.DynamoWCU, Quantity: wcu})
	}
	return c
}

// Resource returns the IAM resource string for a table.
func Resource(name string) string { return "table/" + name }

// CreateTable provisions an empty table.
func (s *Service) CreateTable(name string) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("dynamo: invalid table name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("dynamo: %q: %w", name, ErrTableExists)
	}
	s.tables[name] = &table{items: make(map[string]*Item)}
	return nil
}

// DeleteTable removes a table and its items.
func (s *Service) DeleteTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("dynamo: %q: %w", name, ErrNoSuchTable)
	}
	delete(s.tables, name)
	return nil
}

// TableExists reports whether the table exists.
func (s *Service) TableExists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tables[name]
	return ok
}

// SetRequireSealed enables the ciphertext-only policy on a table,
// using the given predicate (envelope.IsSealed in DIY deployments).
func (s *Service) SetRequireSealed(name string, check func([]byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("dynamo: %q: %w", name, ErrNoSuchTable)
	}
	t.requireSealed = check != nil
	t.sealedCheck = check
	return nil
}

// Get retrieves an item.
func (s *Service) Get(ctx *sim.Context, tableName, key string) (*Item, error) {
	s.mu.Lock()
	var size int
	if t, ok := s.tables[tableName]; ok {
		if it, ok := t.items[key]; ok {
			size = len(it.Value)
		}
	}
	s.mu.Unlock()
	var out *Item
	err := s.pl.Do(ctx, call(ActionGet, tableName, readUnits(size), 0), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tables[tableName]
		if !ok {
			return fmt.Errorf("dynamo: %q: %w", tableName, ErrNoSuchTable)
		}
		it, ok := t.items[key]
		if !ok {
			return fmt.Errorf("dynamo: %s/%s: %w", tableName, key, ErrNoSuchItem)
		}
		cp := *it
		cp.Value = append([]byte(nil), it.Value...)
		out = &cp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Put stores an item unconditionally.
func (s *Service) Put(ctx *sim.Context, tableName, key string, value []byte) error {
	return s.put(ctx, tableName, key, value, -1)
}

// PutIfVersion stores an item only if its current version matches
// expect (0 = must not exist): the conditional write DIY apps use for
// read-modify-write safety under concurrent invocations.
func (s *Service) PutIfVersion(ctx *sim.Context, tableName, key string, value []byte, expect int64) error {
	return s.put(ctx, tableName, key, value, expect)
}

func (s *Service) put(ctx *sim.Context, tableName, key string, value []byte, expect int64) error {
	return s.pl.Do(ctx, call(ActionPut, tableName, 0, writeUnits(len(value))), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tables[tableName]
		if !ok {
			return fmt.Errorf("dynamo: %q: %w", tableName, ErrNoSuchTable)
		}
		if t.requireSealed && !t.sealedCheck(value) {
			return fmt.Errorf("dynamo: %s/%s: %w", tableName, key, ErrPlaintextRejected)
		}
		cur, exists := t.items[key]
		if expect >= 0 {
			switch {
			case expect == 0 && exists:
				return fmt.Errorf("dynamo: %s/%s exists (version %d): %w", tableName, key, cur.Version, ErrConditionFailed)
			case expect > 0 && (!exists || cur.Version != expect):
				got := int64(0)
				if exists {
					got = cur.Version
				}
				return fmt.Errorf("dynamo: %s/%s version %d != %d: %w", tableName, key, got, expect, ErrConditionFailed)
			}
		}
		t.version++
		t.items[key] = &Item{
			Key:     key,
			Value:   append([]byte(nil), value...),
			Version: t.version,
			Modified: func() time.Time {
				if ctx != nil && ctx.Cursor != nil {
					return ctx.Cursor.Now()
				}
				return s.clk.Now()
			}(),
		}
		return nil
	})
}

// Delete removes an item; deleting an absent key is a no-op.
func (s *Service) Delete(ctx *sim.Context, tableName, key string) error {
	return s.pl.Do(ctx, call(ActionDelete, tableName, 0, 1), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tables[tableName]
		if !ok {
			return fmt.Errorf("dynamo: %q: %w", tableName, ErrNoSuchTable)
		}
		delete(t.items, key)
		return nil
	})
}

// Query returns the keys with the given prefix, sorted.
func (s *Service) Query(ctx *sim.Context, tableName, prefix string) ([]string, error) {
	var keys []string
	err := s.pl.Do(ctx, call(ActionQuery, tableName, 1, 0), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		t, ok := s.tables[tableName]
		if !ok {
			return fmt.Errorf("dynamo: %q: %w", tableName, ErrNoSuchTable)
		}
		for _, k := range sortutil.SortedKeys(t.items) {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// StorageBytes reports the bytes stored in a table ("" for all).
func (s *Service) StorageBytes(tableName string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for name, t := range s.tables {
		if tableName != "" && name != tableName {
			continue
		}
		for _, it := range t.items {
			total += int64(len(it.Value))
		}
	}
	return total
}

func readUnits(bytes int) float64 {
	if bytes <= 0 {
		return 1
	}
	return float64((bytes + ReadUnitBytes - 1) / ReadUnitBytes)
}

func writeUnits(bytes int) float64 {
	if bytes <= 0 {
		return 1
	}
	return float64((bytes + WriteUnitBytes - 1) / WriteUnitBytes)
}
