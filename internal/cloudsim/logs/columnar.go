package logs

import (
	"sort"
	"strconv"
	"strings"
)

// This file is the columnar Insights evaluator. Query pipelines run
// here by default: instead of materializing one map per event (the
// legacy row evaluator, kept as queryRows for differential testing),
// the executor works over the store's columns directly —
//
//   - sel holds the indices of currently-selected events in the
//     group's merged order; filter/limit compact it, sort permutes it;
//   - parse writes its captures into derived columns (value + set
//     bitmap) kept aligned with sel, and the capture spans are
//     substrings of the stored message, never copies;
//   - builtins (@timestamp, @message, @logGroup, @logStream) and
//     structured fields are read straight off the stream columns, with
//     @timestamp rendering memoized per event on first touch;
//   - stats aggregates by scanning column values per bucket, then
//     hands its aggregate rows to the legacy row stages for any
//     post-stats pipeline tail.
//
// The two evaluators must agree cell-for-cell on every pipeline —
// TestColumnarMatchesRows pins it, including the parse edge cases
// (adjacent wildcards, no-match rows, multi-capture ordering).

// litGlob is a parse glob compiled to a literal scanner: a leading
// literal, then one segment per wildcard, each terminated by the next
// literal. Matching is a sequence of strings.Index calls — no regexp
// machinery, no per-row submatch allocation. It is exactly equivalent
// to the lazy-capture regex the row path compiles: the unanchored
// match starts at the earliest occurrence of the leading literal, each
// non-final capture takes the shortest span to the next literal's
// earliest occurrence, and a trailing wildcard captures greedily to
// the end. (Earliest-occurrence scanning is complete: failing from the
// earliest positions means every later start fails too, so no
// backtracking is needed.)
type litGlob struct {
	lead string
	segs []globSeg
}

// globSeg is one wildcard: its capture ends at lit's next occurrence
// ("" for adjacent wildcards, which capture empty), or runs to the end
// of the input when greedy (trailing wildcard).
type globSeg struct {
	lit    string
	greedy bool
}

// compileGlob translates a parse glob into a literal scanner. Callers
// have already validated that the glob contains at least one "*".
func compileGlob(glob string) litGlob {
	parts := strings.SplitAfter(glob, "*")
	var g litGlob
	for i, part := range parts {
		star := strings.HasSuffix(part, "*")
		lit := part
		if star {
			lit = strings.TrimSuffix(part, "*")
		}
		if i == 0 {
			g.lead = lit
		} else if lit != "" || star {
			// A literal (possibly empty, for adjacent stars) terminates
			// the previous wildcard's capture.
			if lit != "" {
				g.segs[len(g.segs)-1].lit = lit
			}
		}
		if star {
			greedy := i == len(parts)-2 && parts[len(parts)-1] == ""
			g.segs = append(g.segs, globSeg{greedy: greedy})
		}
	}
	return g
}

// match appends the glob's captures on s to out and reports whether
// the glob matched. Captures are substrings of s.
func (g litGlob) match(s string, out []string) ([]string, bool) {
	pos := 0
	if g.lead != "" {
		i := strings.Index(s, g.lead)
		if i < 0 {
			return out, false
		}
		pos = i + len(g.lead)
	}
	for _, seg := range g.segs {
		switch {
		case seg.greedy:
			out = append(out, s[pos:])
			pos = len(s)
		case seg.lit == "":
			out = append(out, "")
		default:
			i := strings.Index(s[pos:], seg.lit)
			if i < 0 {
				return out, false
			}
			out = append(out, s[pos:pos+i])
			pos += i + len(seg.lit)
		}
	}
	return out, true
}

// dcol is one derived (parse-produced) column, aligned with the
// executor's selection: vals[i] belongs to selected row i, and set[i]
// distinguishes "parse matched here" from "fall through to the
// underlying event field" — real Insights leaves unmatched rows'
// fields unset rather than blanking them.
type dcol struct {
	vals []string
	set  []bool
}

// colExec evaluates the columnar stage prefix of a pipeline.
type colExec struct {
	groupName string
	refs      []eventRef // windowed merged order, immutable
	sel       []int32    // indices into refs, in current row order
	derived   map[string]*dcol
	tsMemo    []string // aligned with refs; "" = not yet rendered
}

func newColExec(groupName string, refs []eventRef) *colExec {
	sel := make([]int32, len(refs))
	for i := range sel {
		sel[i] = int32(i)
	}
	return &colExec{groupName: groupName, refs: refs, sel: sel}
}

// lookup resolves a column value for selected row i with the same
// precedence the row evaluator's map ends up with: parse-derived
// bindings first, then structured event fields, then the builtins
// (the row path writes builtins into the map before copying Fields
// over them, so an event field shadows a same-named builtin). ok
// reports presence (count(f) semantics).
func (ex *colExec) lookup(name string, i int) (string, bool) {
	if d := ex.derived[name]; d != nil && d.set[i] {
		return d.vals[i], true
	}
	ref := ex.refs[ex.sel[i]]
	for _, f := range ref.st.fieldsAt(ref.i) {
		if f.k == name {
			return f.v, true
		}
	}
	switch name {
	case "@timestamp":
		return ex.timestamp(ex.sel[i]), true
	case "@message":
		return ref.st.msgs[ref.i], true
	case "@logGroup":
		return ex.groupName, true
	case "@logStream":
		return ref.st.name, true
	}
	return "", false
}

// timestamp renders (and memoizes) the @timestamp string for the event
// at refs position ri. Rendering is deferred to first touch so
// pipelines that never read @timestamp pay nothing for it.
func (ex *colExec) timestamp(ri int32) string {
	if ex.tsMemo == nil {
		ex.tsMemo = make([]string, len(ex.refs))
	}
	if ex.tsMemo[ri] == "" {
		ref := ex.refs[ri]
		ex.tsMemo[ri] = ref.st.times[ref.i].UTC().Format("2006-01-02 15:04:05.000")
	}
	return ex.tsMemo[ri]
}

// applyFilter keeps the selected rows matching the predicate,
// compacting sel and every derived column in one pass.
func (ex *colExec) applyFilter(f *filterStage) {
	n := 0
	for i := range ex.sel {
		v, _ := ex.lookup(f.field, i)
		if !f.match(v) {
			continue
		}
		ex.sel[n] = ex.sel[i]
		for _, d := range ex.derived {
			d.vals[n], d.set[n] = d.vals[i], d.set[i]
		}
		n++
	}
	ex.sel = ex.sel[:n]
	for _, d := range ex.derived {
		d.vals, d.set = d.vals[:n], d.set[:n]
	}
}

// applyParse runs the glob over the source column, binding captures
// into derived columns. Rows the glob misses keep their previous
// binding (or fall through to the event field), like the row path.
func (ex *colExec) applyParse(p *parseStage) {
	if ex.derived == nil {
		ex.derived = make(map[string]*dcol)
	}
	cols := make([]*dcol, len(p.names))
	for i, name := range p.names {
		d := ex.derived[name]
		if d == nil {
			d = &dcol{vals: make([]string, len(ex.sel)), set: make([]bool, len(ex.sel))}
			ex.derived[name] = d
		}
		cols[i] = d
	}
	var caps []string
	for i := range ex.sel {
		src, _ := ex.lookup(p.field, i)
		var ok bool
		caps, ok = p.lg.match(src, caps[:0])
		if !ok {
			continue
		}
		for j, d := range cols {
			d.vals[i] = strings.TrimSpace(caps[j])
			d.set[i] = true
		}
	}
}

// applySort reorders the selection (and derived columns) by the same
// comparator as the row path: numeric when both cells parse, else
// lexicographic, stable.
func (ex *colExec) applySort(st *sortStage) {
	n := len(ex.sel)
	vals := make([]string, n)
	for i := range vals {
		vals[i], _ = ex.lookup(st.field, i)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		a, b := vals[perm[i]], vals[perm[j]]
		less := a < b
		if fa, errA := strconv.ParseFloat(a, 64); errA == nil {
			if fb, errB := strconv.ParseFloat(b, 64); errB == nil {
				less = fa < fb
			}
		}
		if st.desc {
			return !less && a != b
		}
		return less
	})
	newSel := make([]int32, n)
	for i, p := range perm {
		newSel[i] = ex.sel[p]
	}
	ex.sel = newSel
	for _, d := range ex.derived {
		nv := make([]string, n)
		ns := make([]bool, n)
		for i, p := range perm {
			nv[i], ns[i] = d.vals[p], d.set[p]
		}
		d.vals, d.set = nv, ns
	}
}

// applyLimit truncates the selection and derived columns.
func (ex *colExec) applyLimit(l *limitStage) {
	if len(ex.sel) <= l.n {
		return
	}
	ex.sel = ex.sel[:l.n]
	for _, d := range ex.derived {
		d.vals, d.set = d.vals[:l.n], d.set[:l.n]
	}
}

// applyStats buckets the selection and computes the aggregates,
// producing plain rows — the pipeline continues row-wise from here
// (post-stats stages see aggregate rows, not events).
func (ex *colExec) applyStats(st *statsStage) ([]row, []string) {
	type colBucket struct {
		byVals []string
		idxs   []int
	}
	buckets := map[string]*colBucket{}
	var keys []string
	if len(st.by) == 0 {
		// Ungrouped stats always yield exactly one row, even over an
		// empty scan — count(*) of nothing is 0, not no-answer.
		buckets[""] = &colBucket{}
		keys = append(keys, "")
	}
	for i := range ex.sel {
		byVals := make([]string, len(st.by))
		for j, f := range st.by {
			byVals[j], _ = ex.lookup(f, i)
		}
		key := strings.Join(byVals, "\x00")
		b, ok := buckets[key]
		if !ok {
			b = &colBucket{byVals: byVals}
			buckets[key] = b
			keys = append(keys, key)
		}
		b.idxs = append(b.idxs, i)
	}
	sort.Strings(keys)
	columns := append([]string(nil), st.by...)
	for _, a := range st.aggs {
		columns = append(columns, a.alias)
	}
	var out []row
	for _, key := range keys {
		b := buckets[key]
		r := row{}
		for i, f := range st.by {
			r[f] = b.byVals[i]
		}
		for _, a := range st.aggs {
			r[a.alias] = ex.computeAgg(a, b.idxs)
		}
		out = append(out, r)
	}
	return out, columns
}

// computeAgg mirrors aggregate.compute over column lookups: count(f)
// counts presence, numeric aggregates skip unset or unparsable cells.
func (ex *colExec) computeAgg(a aggregate, idxs []int) string {
	if a.fn == "count" {
		if a.field == "*" {
			return strconv.Itoa(len(idxs))
		}
		n := 0
		for _, i := range idxs {
			if _, ok := ex.lookup(a.field, i); ok {
				n++
			}
		}
		return strconv.Itoa(n)
	}
	var vals []float64
	for _, i := range idxs {
		v, ok := ex.lookup(a.field, i)
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		vals = append(vals, f)
	}
	return renderAgg(a, vals)
}

// materializeRows converts the current selection into the final result
// cells for the given output columns.
func (ex *colExec) materializeRows(columns []string) [][]string {
	if len(ex.sel) == 0 {
		return nil
	}
	out := make([][]string, 0, len(ex.sel))
	for i := range ex.sel {
		cells := make([]string, len(columns))
		for c, name := range columns {
			cells[c], _ = ex.lookup(name, i)
		}
		out = append(out, cells)
	}
	return out
}

// runColumnar evaluates the pipeline: columnar stages until the first
// stats, then the legacy row stages for anything after it.
func runColumnar(groupName string, refs []eventRef, stages []stage) (*QueryResult, error) {
	ex := newColExec(groupName, refs)
	columns := []string{"@timestamp", "@message"}
	var rows []row
	rowMode := false
	for _, st := range stages {
		if rowMode {
			var err error
			rows, columns, err = st.apply(rows, columns)
			if err != nil {
				return nil, err
			}
			continue
		}
		switch t := st.(type) {
		case *fieldsStage:
			columns = append([]string(nil), t.names...)
		case *filterStage:
			ex.applyFilter(t)
		case *parseStage:
			ex.applyParse(t)
		case *sortStage:
			ex.applySort(t)
		case *limitStage:
			ex.applyLimit(t)
		case *statsStage:
			rows, columns = ex.applyStats(t)
			rowMode = true
		}
	}
	res := &QueryResult{Columns: columns}
	if rowMode {
		for _, r := range rows {
			cells := make([]string, len(columns))
			for i, c := range columns {
				cells[i] = r[c]
			}
			res.Rows = append(res.Rows, cells)
		}
	} else {
		res.Rows = ex.materializeRows(columns)
	}
	return res, nil
}
