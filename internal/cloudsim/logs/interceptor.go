package logs

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/plane"
	"repro/internal/pricing"
)

// PlaneInterceptor returns a plane.Use interceptor that appends one
// structured log event per call routed through the plane it is
// installed on — the logs-side twin of metrics.PlaneInterceptor. The
// event lands in group "plane/<service>", stream "<op>", timestamped
// at the flow cursor's post-call instant (falling back to the service
// clock for cursor-less flows), with the outcome, principal, app,
// consumed latency, and the call's list-priced cost as structured
// fields plus a compact key=value message rendering.
//
// Like the metrics interceptor it only reads the request — it never
// meters, samples randomness, or advances a cursor — so installing it
// cannot move a ledger-parity golden by a nanodollar
// (TestLogsPreserveLedger proves bit-identity with logging off).
func PlaneInterceptor(s *Service, book *pricing.PriceBook, clk clock.Clock) plane.Interceptor {
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)

			at := req.Ctx.Now()
			if at.IsZero() && clk != nil {
				at = clk.Now()
			}
			outcome := "ok"
			switch {
			case errors.Is(err, iam.ErrDenied):
				outcome = "denied"
			case err != nil:
				outcome = "error"
			}
			var cost pricing.Money
			for _, u := range req.Metered() {
				cost += book.ListPrice(u)
			}
			fields := map[string]string{
				"service":          req.Call.Service,
				"op":               req.Call.Op,
				"outcome":          outcome,
				"cost_nanodollars": strconv.FormatInt(cost.Nanodollars(), 10),
			}
			if req.Ctx != nil {
				if req.Ctx.Principal != "" {
					fields["principal"] = req.Ctx.Principal
				}
				if req.Ctx.App != "" {
					fields["app"] = req.Ctx.App
				}
			}
			latency := "-"
			if start := req.Start(); !start.IsZero() && !at.Before(start) {
				ms := float64(at.Sub(start)) / float64(time.Millisecond)
				latency = strconv.FormatFloat(ms, 'f', 3, 64)
				fields["latency_ms"] = latency
			}
			if err != nil {
				fields["error"] = err.Error()
			}
			msg := fmt.Sprintf("%s:%s outcome=%s latency_ms=%s cost_nanodollars=%d principal=%s",
				req.Call.Service, req.Call.Op, outcome, latency,
				cost.Nanodollars(), fields["principal"])
			s.PutEvents(PlaneGroup(req.Call.Service), req.Call.Op,
				Event{Time: at, Message: msg, Fields: fields})
			return err
		}
	}
}
