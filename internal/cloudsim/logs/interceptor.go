package logs

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/plane"
	"repro/internal/pricing"
)

// PlaneInterceptor returns a plane.Use interceptor that appends one
// structured log event per call routed through the plane it is
// installed on — the logs-side twin of metrics.PlaneInterceptor. The
// event lands in group "plane/<service>", stream "<op>", timestamped
// at the flow cursor's post-call instant (falling back to the service
// clock for cursor-less flows), with the outcome, principal, app,
// consumed latency, and the call's list-priced cost as structured
// fields plus a compact key=value message rendering.
//
// Like the metrics interceptor it only reads the request — it never
// meters, samples randomness, or advances a cursor — so installing it
// cannot move a ledger-parity golden by a nanodollar
// (TestLogsPreserveLedger proves bit-identity with logging off).
//
// The hot path is allocation-lean: a pooled encoder renders the
// message with append-style formatting (the numeric field values are
// substrings of the message, not separate allocations), fields go into
// typed slots instead of a map, group names intern once per service,
// and the finished event is staged in a Batch drained at clock ticks.
// The `hotpath` diylint analyzer keeps fmt formatting and map literals
// out of this path.
func PlaneInterceptor(s *Service, book *pricing.PriceBook, clk clock.Clock) plane.Interceptor {
	pub := &logPublisher{
		batch:  s.NewBatch(),
		book:   book,
		clk:    clk,
		groups: make(map[string]string),
	}
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)
			pub.publish(req, err)
			return err
		}
	}
}

// encoder is a reusable message/field-slot builder. Pooled so
// concurrent flows each grab their own scratch buffers instead of
// allocating per event.
type encoder struct {
	buf    []byte
	fields []field
}

var encPool = sync.Pool{New: func() any { return new(encoder) }}

// logPublisher is the per-interceptor publication state.
type logPublisher struct {
	batch *Batch
	book  *pricing.PriceBook
	clk   clock.Clock

	mu     sync.Mutex
	groups map[string]string // service -> interned "plane/<service>"
}

// group interns the plane log-group name for a service, building the
// string once per service rather than once per call.
func (p *logPublisher) group(service string) string {
	p.mu.Lock()
	g, ok := p.groups[service]
	if !ok {
		g = PlaneGroup(service)
		p.groups[service] = g
	}
	p.mu.Unlock()
	return g
}

// publish encodes and stages the call's event. The message rendering
// is byte-identical to the historical
//
//	"%s:%s outcome=%s latency_ms=%s cost_nanodollars=%d principal=%s"
//
// Sprintf (log-stream determinism goldens pin it), built with append
// formatting into a pooled buffer instead.
func (p *logPublisher) publish(req *plane.Request, err error) {
	at := req.Ctx.Now()
	if at.IsZero() && p.clk != nil {
		at = p.clk.Now()
	}
	outcome := "ok"
	switch {
	case errors.Is(err, iam.ErrDenied):
		outcome = "denied"
	case err != nil:
		outcome = "error"
	}
	var cost pricing.Money
	for _, u := range req.Metered() {
		cost += p.book.ListPrice(u)
	}
	costNanos := cost.Nanodollars()
	principal, app := "", ""
	if req.Ctx != nil {
		principal, app = req.Ctx.Principal, req.Ctx.App
	}
	measurable := false
	var ms float64
	if start := req.Start(); !start.IsZero() && !at.Before(start) {
		measurable = true
		ms = float64(at.Sub(start)) / float64(time.Millisecond)
	}

	enc := encPool.Get().(*encoder)
	b := enc.buf[:0]
	b = append(b, req.Call.Service...)
	b = append(b, ':')
	b = append(b, req.Call.Op...)
	b = append(b, " outcome="...)
	b = append(b, outcome...)
	b = append(b, " latency_ms="...)
	latLo := len(b)
	if measurable {
		b = strconv.AppendFloat(b, ms, 'f', 3, 64)
	} else {
		b = append(b, '-')
	}
	latHi := len(b)
	b = append(b, " cost_nanodollars="...)
	costLo := len(b)
	b = strconv.AppendInt(b, costNanos, 10)
	costHi := len(b)
	b = append(b, " principal="...)
	b = append(b, principal...)
	enc.buf = b
	msg := string(b)

	fs := enc.fields[:0]
	fs = append(fs,
		field{k: "service", v: req.Call.Service},
		field{k: "op", v: req.Call.Op},
		field{k: "outcome", v: outcome},
		field{k: "cost_nanodollars", v: msg[costLo:costHi]},
	)
	if principal != "" {
		fs = append(fs, field{k: "principal", v: principal})
	}
	if app != "" {
		fs = append(fs, field{k: "app", v: app})
	}
	if measurable {
		fs = append(fs, field{k: "latency_ms", v: msg[latLo:latHi]})
	}
	if err != nil {
		fs = append(fs, field{k: "error", v: err.Error()})
	}
	enc.fields = fs

	p.batch.Log(p.group(req.Call.Service), req.Call.Op, at, msg, fs)
	encPool.Put(enc)
}
