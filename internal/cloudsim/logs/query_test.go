package logs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
)

// reportLines populates a group with Lambda-shaped REPORT lines.
func reportLines(s *Service, n int) {
	for i := 0; i < n; i++ {
		run := 100.0 + float64(i) // ms
		billed := 100 * (int(run)/100 + 1)
		msg := fmt.Sprintf(
			"REPORT RequestId: req-%03d\tDuration: %.2f ms\tBilled Duration: %d ms\tMemory Size: 448 MB\tMax Memory Used: %d MB",
			i, run, billed, 40+i%12)
		if i == 0 {
			msg += "\tInit Duration: 350.00 ms"
		}
		s.PutEvents("lambda/fn", "2017/06/01/[$LATEST]container-000001",
			Event{Time: clock.Epoch.Add(time.Duration(i) * time.Second), Message: "START RequestId: req"},
			Event{Time: clock.Epoch.Add(time.Duration(i) * time.Second), Message: msg},
		)
	}
}

func TestQueryFilterParseStats(t *testing.T) {
	s := New(clock.NewVirtual())
	reportLines(s, 7)

	res, err := s.Query("lambda/fn",
		`filter @message like "REPORT" | parse @message "Billed Duration: * ms" as billed_ms | stats count(*) as n, pct(billed_ms, 50) as med, min(billed_ms) as lo, max(billed_ms) as hi`,
		time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, "n"); got != "7" {
		t.Fatalf("count = %q, want 7", got)
	}
	// Billed durations are all 200 ms for runs 100..106 ms.
	if got := res.Value(0, "med"); got != "200" {
		t.Fatalf("median billed = %q, want 200", got)
	}
	if res.Value(0, "lo") != "200" || res.Value(0, "hi") != "200" {
		t.Fatalf("min/max = %q/%q", res.Value(0, "lo"), res.Value(0, "hi"))
	}
}

func TestQueryParseBindsInOrder(t *testing.T) {
	s := New(clock.NewVirtual())
	s.PutEvents("g/p", "s", Event{Time: clock.Epoch, Message: "a=1 b=2"})
	res, err := s.Query("g/p", `parse @message "a=* b=*" as a, b | fields a, b`, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, "a") != "1" || res.Value(0, "b") != "2" {
		t.Fatalf("parse bound a=%q b=%q", res.Value(0, "a"), res.Value(0, "b"))
	}
}

func TestQueryStatsByGroupsAndSorts(t *testing.T) {
	s := New(clock.NewVirtual())
	for i, op := range []string{"Get", "Put", "Get", "Get", "Put", "Del"} {
		s.PutEvents("g/s", "s", Event{
			Time:    clock.Epoch.Add(time.Duration(i) * time.Second),
			Message: op,
			Fields:  map[string]string{"op": op, "ms": fmt.Sprintf("%d", 10*(i+1))},
		})
	}
	res, err := s.Query("g/s",
		`stats count(*) as n, sum(ms) as total, avg(ms) as mean by op | sort n desc | limit 2`,
		time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit 2 returned %d rows", len(res.Rows))
	}
	if res.Value(0, "op") != "Get" || res.Value(0, "n") != "3" {
		t.Fatalf("top row = %v", res.Rows[0])
	}
	if res.Value(0, "total") != "80" || res.Value(0, "mean") == "" {
		t.Fatalf("sum/avg = %q/%q", res.Value(0, "total"), res.Value(0, "mean"))
	}
}

func TestQueryFilterOperators(t *testing.T) {
	s := New(clock.NewVirtual())
	for i := 1; i <= 5; i++ {
		s.PutEvents("g/f", "s", Event{
			Time:    clock.Epoch.Add(time.Duration(i) * time.Second),
			Message: fmt.Sprintf("n=%d", i),
			Fields:  map[string]string{"n": fmt.Sprintf("%d", i)},
		})
	}
	cases := []struct {
		q    string
		want int
	}{
		{`filter n >= 3 | stats count(*) as c`, 3},
		{`filter n < 2 | stats count(*) as c`, 1},
		{`filter n != 5 | stats count(*) as c`, 4},
		{`filter n = 4 | stats count(*) as c`, 1},
	}
	for _, tc := range cases {
		res, err := s.Query("g/f", tc.q, time.Time{}, time.Time{})
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if got := res.Value(0, "c"); got != fmt.Sprintf("%d", tc.want) {
			t.Errorf("%s -> %q, want %d", tc.q, got, tc.want)
		}
	}
}

func TestQueryWindowRestrictsScan(t *testing.T) {
	s := New(clock.NewVirtual())
	reportLines(s, 10)
	from := clock.Epoch.Add(5 * time.Second)
	res, err := s.Query("lambda/fn", `filter @message like "REPORT" | stats count(*) as n`, from, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, "n"); got != "5" {
		t.Fatalf("windowed count = %q, want 5", got)
	}
}

func TestQueryErrors(t *testing.T) {
	s := New(clock.NewVirtual())
	for _, q := range []string{
		"",
		"fields",
		"frobnicate x",
		"filter a ~ b",
		`parse @message "no wildcards" as x`,
		`parse @message "*" as a, b`,
		"stats wibble(x)",
		"stats pct(x)",
		"limit -1",
		"sort a sideways",
		`filter @message like "unterminated`,
	} {
		if _, err := s.Query("g/none", q, time.Time{}, time.Time{}); err == nil {
			t.Errorf("query %q: expected error", q)
		}
	}
}

func TestQueryRender(t *testing.T) {
	s := New(clock.NewVirtual())
	s.PutEvents("g/r", "s", Event{Time: clock.Epoch, Message: "hello", Fields: map[string]string{"k": "v"}})
	res, err := s.Query("g/r", "fields @timestamp, k", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "@timestamp") || !strings.Contains(out, "2017-06-01 00:00:00.000") {
		t.Fatalf("render:\n%s", out)
	}
	var empty *QueryResult
	if empty.Render() != "(no results)\n" {
		t.Fatalf("nil render = %q", empty.Render())
	}
}
