// Package logs simulates CloudWatch Logs, the third leg of the
// observability stack (traces §6, metrics §8, logs §9 of DESIGN.md).
// On real AWS the paper's headline numbers are exactly what an
// operator reads off this service: Lambda's `REPORT RequestId: …
// Duration … Billed Duration … Max Memory Used` lines are the primary
// operator-facing evidence of per-invoke billing.
//
// The simulator stores append-only structured events in log groups and
// streams, stamped with virtual-clock timestamps and deterministic
// sequence tokens, under per-group retention policies. A single plane
// interceptor (PlaneInterceptor) auto-emits one event per service API
// call, the lambda platform writes real-shaped START/END/REPORT lines
// per invocation, and a Logs Insights-style query engine (query.go)
// answers `fields | filter | parse | stats | sort | limit` pipelines
// over the stored events. Ingest and storage are billed at the 2017
// CloudWatch Logs rates through the same PriceBook/meter/bill engine
// as every other service.
//
// Logging is read-only with respect to the economy: nothing in this
// package touches the account meter, samples randomness, or advances a
// flow cursor, so a run with logging on is bit-identical to one with
// logging off (TestLogsPreserveLedger proves it).
package logs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/pricing"
)

// EventOverheadBytes is the per-event ingestion overhead CloudWatch
// Logs adds to the message payload when metering ingested bytes (26
// bytes per event, per the 2017 pricing page).
const EventOverheadBytes = 26

// Event is one structured log event as handed to PutEvents.
type Event struct {
	// Time is the event timestamp on the emitter's (virtual) timeline.
	Time time.Time
	// Message is the log line. Lambda platform lines are plain text in
	// the real service's shape; plane events carry a compact key=value
	// rendering of Fields.
	Message string
	// Fields is the event's structured payload; the query engine
	// exposes each key as a queryable field. Nil for plain lines, whose
	// fields are extracted with `parse` instead.
	Fields map[string]string
}

// StoredEvent is an event at rest: the payload plus its storage
// coordinates and deterministic per-stream sequence number.
type StoredEvent struct {
	Event
	Group  string
	Stream string
	Seq    int64
}

// stream is one append-only event sequence inside a group.
type stream struct {
	name    string
	events  []StoredEvent
	nextSeq int64
}

// group is a named set of streams under one retention policy.
type group struct {
	name      string
	streams   map[string]*stream
	retention time.Duration // 0 = keep forever
}

// GroupInfo summarizes one log group for inventory listings.
type GroupInfo struct {
	Name      string
	Streams   int
	Events    int
	Bytes     int64
	Retention time.Duration
}

// Service is the simulated CloudWatch Logs store. It is safe for
// concurrent use.
type Service struct {
	clk clock.Clock

	mu            sync.Mutex
	groups        map[string]*group
	ingestedBytes int64
	storedBytes   int64
}

// New returns an empty log service over the given clock (nil defaults
// to the wall clock); the clock timestamps events whose emitter passes
// a zero time.
func New(clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{clk: clk, groups: make(map[string]*group)}
}

// CreateGroup provisions a log group. Creating an existing group is a
// no-op, as emitters and operators race benignly to ensure their group
// exists.
func (s *Service) CreateGroup(name string) {
	s.mu.Lock()
	s.ensureGroup(name)
	s.mu.Unlock()
}

// SetRetention sets a group's retention policy (0 keeps events
// forever), creating the group if needed. Expiry happens when
// ApplyRetention is called with a later virtual instant — retention is
// explicit and clock-driven, never a background timer, so runs stay
// deterministic.
func (s *Service) SetRetention(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.ensureGroup(name).retention = d
	s.mu.Unlock()
}

// Retention reports a group's retention policy (0 = keep forever).
func (s *Service) Retention(name string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[name]; ok {
		return g.retention
	}
	return 0
}

// PutEvents appends events to a stream, creating group and stream on
// first use, and returns the stream's next sequence token. Events with
// a zero Time are stamped with the service clock. Ingested bytes
// (message + fields + the per-event overhead) accrue to the usage
// inventory that Usage() prices.
func (s *Service) PutEvents(groupName, streamName string, events ...Event) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.ensureGroup(groupName)
	st, ok := g.streams[streamName]
	if !ok {
		st = &stream{name: streamName}
		g.streams[streamName] = st
	}
	for _, e := range events {
		if e.Time.IsZero() {
			e.Time = s.clk.Now()
		}
		b := eventBytes(e)
		s.ingestedBytes += b
		s.storedBytes += b
		st.events = append(st.events, StoredEvent{
			Event:  e,
			Group:  groupName,
			Stream: streamName,
			Seq:    st.nextSeq,
		})
		st.nextSeq++
	}
	return sequenceToken(groupName, streamName, st.nextSeq)
}

// sequenceToken renders the deterministic upload token for a stream
// position — the same (group, stream, event count) always yields the
// same token, so identically-seeded runs produce identical tokens.
func sequenceToken(group, stream string, next int64) string {
	return fmt.Sprintf("%s/%s@%08d", group, stream, next)
}

// SequenceToken reports a stream's current upload token without
// writing ("" for an unknown stream).
func (s *Service) SequenceToken(groupName, streamName string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupName]
	if !ok {
		return ""
	}
	st, ok := g.streams[streamName]
	if !ok {
		return ""
	}
	return sequenceToken(groupName, streamName, st.nextSeq)
}

// Groups lists every log group name, sorted.
func (s *Service) Groups() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.groups))
	for name := range s.groups {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Streams lists a group's stream names, sorted.
func (s *Service) Streams(groupName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupName]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.streams))
	for name := range g.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Inventory summarizes every group (streams, events, stored bytes),
// sorted by group name.
func (s *Service) Inventory() []GroupInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GroupInfo, 0, len(s.groups))
	for _, g := range s.groups {
		info := GroupInfo{Name: g.name, Streams: len(g.streams), Retention: g.retention}
		for _, st := range g.streams {
			info.Events += len(st.events)
			for _, e := range st.events {
				info.Bytes += eventBytes(e.Event)
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Events returns a group's events within [from, to] (zero times mean
// unbounded), merged across streams in deterministic order: timestamp,
// then stream name, then sequence number.
func (s *Service) Events(groupName string, from, to time.Time) []StoredEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupName]
	if !ok {
		return nil
	}
	var out []StoredEvent
	for _, st := range g.streams {
		for _, e := range st.events {
			if !from.IsZero() && e.Time.Before(from) {
				continue
			}
			if !to.IsZero() && e.Time.After(to) {
				continue
			}
			out = append(out, e)
		}
	}
	sortEvents(out)
	return out
}

// Tail returns a group's last n events in deterministic order (all of
// them when n <= 0 or exceeds the count).
func (s *Service) Tail(groupName string, n int) []StoredEvent {
	all := s.Events(groupName, time.Time{}, time.Time{})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// ApplyRetention expires every event older than its group's retention
// window as of now, releasing the stored bytes. Groups with no policy
// keep everything. Explicitly driven — call it when the virtual clock
// has moved — so two identically-seeded runs expire identically.
func (s *Service) ApplyRetention(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.groups {
		if g.retention <= 0 {
			continue
		}
		cutoff := now.Add(-g.retention)
		for _, st := range g.streams {
			kept := st.events[:0]
			for _, e := range st.events {
				if e.Time.Before(cutoff) {
					s.storedBytes -= eventBytes(e.Event)
					continue
				}
				kept = append(kept, e)
			}
			st.events = kept
		}
	}
}

// IngestedBytes reports the total bytes ever ingested (message +
// fields + per-event overhead) — the quantity CloudWatch Logs billed
// $0.50/GB for in 2017.
func (s *Service) IngestedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestedBytes
}

// StoredBytes reports the bytes currently at rest after retention —
// the $0.03/GB-month storage quantity.
func (s *Service) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storedBytes
}

// Usage reports the log plane's inventory as meterable usage: GB
// ingested and GB-months stored, the 2017 CloudWatch Logs billing
// dimensions. Like the metrics inventory, it is not pushed into the
// account meter automatically (the paper's Tables 1–3 predate the
// observability layer); callers price it on demand via
// PriceBook.ListPrice or a scratch meter, which keeps logging
// bit-invisible to the ledger goldens.
func (s *Service) Usage() []pricing.Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	const gb = 1 << 30
	return []pricing.Usage{
		{Kind: pricing.CWLogsIngestGB, Quantity: float64(s.ingestedBytes) / gb, Resource: "cloudwatch-logs"},
		{Kind: pricing.CWLogsStorageGBMo, Quantity: float64(s.storedBytes) / gb, Resource: "cloudwatch-logs"},
	}
}

// Dump renders every stored event as one line per event in a stable
// order — the byte-identical artifact scripts/check.sh diffs across
// two identically-seeded runs.
func (s *Service) Dump() []string {
	var out []string
	for _, g := range s.Groups() {
		for _, e := range s.Events(g, time.Time{}, time.Time{}) {
			out = append(out, fmt.Sprintf("%s %s seq=%06d t=%d %s",
				e.Group, e.Stream, e.Seq, e.Time.UnixNano(), e.Message))
		}
	}
	return out
}

// ensureGroup returns the named group, creating it if absent. Caller
// holds s.mu.
func (s *Service) ensureGroup(name string) *group {
	g, ok := s.groups[name]
	if !ok {
		g = &group{name: name, streams: make(map[string]*stream)}
		s.groups[name] = g
	}
	return g
}

// eventBytes is the metered size of one event.
func eventBytes(e Event) int64 {
	n := int64(len(e.Message)) + EventOverheadBytes
	for k, v := range e.Fields {
		n += int64(len(k) + len(v))
	}
	return n
}

// sortEvents orders events deterministically: timestamp, stream,
// sequence. Two concurrent flows can land events at the same virtual
// instant; the (stream, seq) tiebreak keeps merged output stable.
func sortEvents(evs []StoredEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		return a.Seq < b.Seq
	})
}
