// Package logs simulates CloudWatch Logs, the third leg of the
// observability stack (traces §6, metrics §8, logs §9 of DESIGN.md).
// On real AWS the paper's headline numbers are exactly what an
// operator reads off this service: Lambda's `REPORT RequestId: …
// Duration … Billed Duration … Max Memory Used` lines are the primary
// operator-facing evidence of per-invoke billing.
//
// The simulator stores append-only structured events in log groups and
// streams, stamped with virtual-clock timestamps and deterministic
// sequence tokens, under per-group retention policies. A single plane
// interceptor (PlaneInterceptor) auto-emits one event per service API
// call, the lambda platform writes real-shaped START/END/REPORT lines
// per invocation, and a Logs Insights-style query engine (query.go)
// answers `fields | filter | parse | stats | sort | limit` pipelines
// over the stored events. Ingest and storage are billed at the 2017
// CloudWatch Logs rates through the same PriceBook/meter/bill engine
// as every other service.
//
// Storage is columnar: each stream keeps parallel arrays (timestamps,
// messages, sequence numbers) plus one shared key/value arena for
// structured fields, and each group caches its deterministic merged
// order. The Insights engine (columnar.go) scans those columns
// directly — no per-event map is materialized on the query path — and
// the plane interceptor stages events through a Batch (batch.go)
// drained at virtual-clock ticks and forced before every read, so
// batching is invisible to queries and goldens.
//
// Logging is read-only with respect to the economy: nothing in this
// package touches the account meter, samples randomness, or advances a
// flow cursor, so a run with logging on is bit-identical to one with
// logging off (TestLogsPreserveLedger proves it).
package logs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/sortutil"
	"repro/internal/pricing"
)

// EventOverheadBytes is the per-event ingestion overhead CloudWatch
// Logs adds to the message payload when metering ingested bytes (26
// bytes per event, per the 2017 pricing page).
const EventOverheadBytes = 26

// Event is one structured log event as handed to PutEvents.
type Event struct {
	// Time is the event timestamp on the emitter's (virtual) timeline.
	Time time.Time
	// Message is the log line. Lambda platform lines are plain text in
	// the real service's shape; plane events carry a compact key=value
	// rendering of Fields.
	Message string
	// Fields is the event's structured payload; the query engine
	// exposes each key as a queryable field. Nil for plain lines, whose
	// fields are extracted with `parse` instead.
	Fields map[string]string
}

// StoredEvent is an event at rest: the payload plus its storage
// coordinates and deterministic per-stream sequence number.
type StoredEvent struct {
	Event
	Group  string
	Stream string
	Seq    int64
}

// field is one structured key/value slot at rest. Events store their
// fields as contiguous runs in the stream's shared arena instead of
// per-event maps.
type field struct{ k, v string }

// stream is one append-only event sequence inside a group, stored as
// parallel columns. Event i is (times[i], msgs[i], seqs[i]) with
// structured fields fields[fieldLo[i]:fieldHi[i]].
type stream struct {
	name    string
	times   []time.Time
	msgs    []string
	seqs    []int64
	fieldLo []int32
	fieldHi []int32
	fields  []field
	nextSeq int64
}

// fieldsAt returns event i's structured fields (a view into the
// arena — callers must not mutate or retain it across ingests).
func (st *stream) fieldsAt(i int32) []field {
	return st.fields[st.fieldLo[i]:st.fieldHi[i]]
}

// eventRef addresses one stored event: a stream plus a column index.
type eventRef struct {
	st *stream
	i  int32
}

// group is a named set of streams under one retention policy.
type group struct {
	name      string
	streams   map[string]*stream
	retention time.Duration // 0 = keep forever
	// merged caches every event in the group's deterministic order
	// (timestamp, then stream name, then sequence). nil = needs
	// rebuilding after an ingest or retention sweep.
	merged []eventRef
}

// mergedRefs returns the group's events in deterministic order,
// rebuilding the cache if an ingest invalidated it.
func (g *group) mergedRefs() []eventRef {
	if g.merged != nil {
		return g.merged
	}
	total := 0
	for _, st := range g.streams {
		total += len(st.times)
	}
	refs := make([]eventRef, 0, total)
	for _, st := range g.streams {
		for i := range st.times {
			refs = append(refs, eventRef{st: st, i: int32(i)})
		}
	}
	// (time, stream, seq) is a total order — two events in one stream
	// never share a seq — so the map's iteration order cannot leak.
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		at, bt := a.st.times[a.i], b.st.times[b.i]
		if !at.Equal(bt) {
			return at.Before(bt)
		}
		if a.st.name != b.st.name {
			return a.st.name < b.st.name
		}
		return a.st.seqs[a.i] < b.st.seqs[b.i]
	})
	g.merged = refs
	return refs
}

// windowRefs returns the subrange of the merged order with timestamps
// in [from, to] (zero times mean unbounded).
func (g *group) windowRefs(from, to time.Time) []eventRef {
	refs := g.mergedRefs()
	lo, hi := 0, len(refs)
	if !from.IsZero() {
		lo = sort.Search(len(refs), func(i int) bool {
			return !refs[i].st.times[refs[i].i].Before(from)
		})
	}
	if !to.IsZero() {
		hi = sort.Search(len(refs), func(i int) bool {
			return refs[i].st.times[refs[i].i].After(to)
		})
	}
	if hi < lo {
		hi = lo
	}
	return refs[lo:hi]
}

// GroupInfo summarizes one log group for inventory listings.
type GroupInfo struct {
	Name      string
	Streams   int
	Events    int
	Bytes     int64
	Retention time.Duration
}

// Service is the simulated CloudWatch Logs store. It is safe for
// concurrent use.
type Service struct {
	clk clock.Clock

	mu            sync.Mutex
	groups        map[string]*group
	batches       []*Batch
	ingestedBytes int64
	storedBytes   int64

	// Self-telemetry counters (see SelfStats).
	ingestedEvents int64
	flushes        int64
}

// New returns an empty log service over the given clock (nil defaults
// to the wall clock); the clock timestamps events whose emitter passes
// a zero time.
func New(clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{clk: clk, groups: make(map[string]*group)}
}

// CreateGroup provisions a log group. Creating an existing group is a
// no-op, as emitters and operators race benignly to ensure their group
// exists.
func (s *Service) CreateGroup(name string) {
	s.mu.Lock()
	s.ensureGroupLocked(name)
	s.mu.Unlock()
}

// SetRetention sets a group's retention policy (0 keeps events
// forever), creating the group if needed. Expiry happens when
// ApplyRetention is called with a later virtual instant — retention is
// explicit and clock-driven, never a background timer, so runs stay
// deterministic.
func (s *Service) SetRetention(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.ensureGroupLocked(name).retention = d
	s.mu.Unlock()
}

// Retention reports a group's retention policy (0 = keep forever).
func (s *Service) Retention(name string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[name]; ok {
		return g.retention
	}
	return 0
}

// PutEvents appends events to a stream, creating group and stream on
// first use, and returns the stream's next sequence token. Events with
// a zero Time are stamped with the service clock. Ingested bytes
// (message + fields + the per-event overhead) accrue to the usage
// inventory that Usage() prices.
func (s *Service) PutEvents(groupName, streamName string, events ...Event) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.ensureGroupLocked(groupName)
	st := s.ensureStreamLocked(g, streamName)
	for _, e := range events {
		fs := sortedFields(e.Fields)
		s.appendLocked(g, st, e.Time, e.Message, fs)
	}
	return sequenceToken(groupName, streamName, st.nextSeq)
}

// sortedFields converts a public Fields map into arena slots, sorted
// by key so identical maps always store identically.
func sortedFields(m map[string]string) []field {
	if len(m) == 0 {
		return nil
	}
	fs := make([]field, 0, len(m))
	for k, v := range m {
		fs = append(fs, field{k: k, v: v})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].k < fs[j].k })
	return fs
}

// appendLocked lands one event in a stream's columns, stamping a zero
// timestamp with the service clock, assigning the next sequence
// number, and accruing the ingest/storage byte inventory. Caller
// holds s.mu.
func (s *Service) appendLocked(g *group, st *stream, at time.Time, msg string, fs []field) {
	if at.IsZero() {
		at = s.clk.Now()
	}
	b := int64(len(msg)) + EventOverheadBytes
	for _, f := range fs {
		b += int64(len(f.k) + len(f.v))
	}
	s.ingestedBytes += b
	s.storedBytes += b
	s.ingestedEvents++
	st.times = append(st.times, at)
	st.msgs = append(st.msgs, msg)
	st.seqs = append(st.seqs, st.nextSeq)
	st.nextSeq++
	lo := int32(len(st.fields))
	st.fields = append(st.fields, fs...)
	st.fieldLo = append(st.fieldLo, lo)
	st.fieldHi = append(st.fieldHi, int32(len(st.fields)))
	g.merged = nil
}

// sequenceToken renders the deterministic upload token for a stream
// position — the same (group, stream, event count) always yields the
// same token, so identically-seeded runs produce identical tokens.
func sequenceToken(group, stream string, next int64) string {
	return fmt.Sprintf("%s/%s@%08d", group, stream, next)
}

// SequenceToken reports a stream's current upload token without
// writing ("" for an unknown stream).
func (s *Service) SequenceToken(groupName, streamName string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	g, ok := s.groups[groupName]
	if !ok {
		return ""
	}
	st, ok := g.streams[streamName]
	if !ok {
		return ""
	}
	return sequenceToken(groupName, streamName, st.nextSeq)
}

// Groups lists every log group name, sorted.
func (s *Service) Groups() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return sortutil.SortedKeys(s.groups)
}

// Streams lists a group's stream names, sorted.
func (s *Service) Streams(groupName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	g, ok := s.groups[groupName]
	if !ok {
		return nil
	}
	return sortutil.SortedKeys(g.streams)
}

// Inventory summarizes every group (streams, events, stored bytes),
// sorted by group name.
func (s *Service) Inventory() []GroupInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	out := make([]GroupInfo, 0, len(s.groups))
	for _, name := range sortutil.SortedKeys(s.groups) {
		g := s.groups[name]
		info := GroupInfo{Name: g.name, Streams: len(g.streams), Retention: g.retention}
		for _, stName := range sortutil.SortedKeys(g.streams) {
			st := g.streams[stName]
			info.Events += len(st.times)
			for i := range st.msgs {
				info.Bytes += storedEventBytes(st, int32(i))
			}
		}
		out = append(out, info)
	}
	return out
}

// storedEventBytes is the metered size of the event at ref position i.
func storedEventBytes(st *stream, i int32) int64 {
	n := int64(len(st.msgs[i])) + EventOverheadBytes
	for _, f := range st.fieldsAt(i) {
		n += int64(len(f.k) + len(f.v))
	}
	return n
}

// materialize rehydrates one stored event into the public shape,
// rebuilding its Fields map (nil when the event has none).
func materialize(groupName string, ref eventRef) StoredEvent {
	st := ref.st
	e := StoredEvent{
		Event:  Event{Time: st.times[ref.i], Message: st.msgs[ref.i]},
		Group:  groupName,
		Stream: st.name,
		Seq:    st.seqs[ref.i],
	}
	if fs := st.fieldsAt(ref.i); len(fs) > 0 {
		m := make(map[string]string, len(fs))
		for _, f := range fs {
			m[f.k] = f.v
		}
		e.Fields = m
	}
	return e
}

// Events returns a group's events within [from, to] (zero times mean
// unbounded), merged across streams in deterministic order: timestamp,
// then stream name, then sequence number.
func (s *Service) Events(groupName string, from, to time.Time) []StoredEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	g, ok := s.groups[groupName]
	if !ok {
		return nil
	}
	refs := g.windowRefs(from, to)
	if len(refs) == 0 {
		return nil
	}
	out := make([]StoredEvent, 0, len(refs))
	for _, ref := range refs {
		out = append(out, materialize(groupName, ref))
	}
	return out
}

// Tail returns a group's last n events in deterministic order (all of
// them when n <= 0 or exceeds the count).
func (s *Service) Tail(groupName string, n int) []StoredEvent {
	all := s.Events(groupName, time.Time{}, time.Time{})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// ApplyRetention expires every event older than its group's retention
// window as of now, releasing the stored bytes. Groups with no policy
// keep everything. Explicitly driven — call it when the virtual clock
// has moved — so two identically-seeded runs expire identically.
// Pending batches flush first, so an event published just before the
// clock crossed its expiry is ingested (and billed) before it expires,
// exactly as under unbatched publication.
func (s *Service) ApplyRetention(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	for _, g := range s.groups {
		if g.retention <= 0 {
			continue
		}
		cutoff := now.Add(-g.retention)
		for _, st := range g.streams {
			n, fn := 0, int32(0)
			for i := range st.times {
				if st.times[i].Before(cutoff) {
					s.storedBytes -= storedEventBytes(st, int32(i))
					g.merged = nil
					continue
				}
				fs := st.fieldsAt(int32(i))
				st.times[n] = st.times[i]
				st.msgs[n] = st.msgs[i]
				st.seqs[n] = st.seqs[i]
				copy(st.fields[fn:], fs)
				st.fieldLo[n] = fn
				fn += int32(len(fs))
				st.fieldHi[n] = fn
				n++
			}
			st.times = st.times[:n]
			st.msgs = st.msgs[:n]
			st.seqs = st.seqs[:n]
			st.fieldLo = st.fieldLo[:n]
			st.fieldHi = st.fieldHi[:n]
			st.fields = st.fields[:fn]
		}
	}
}

// IngestedBytes reports the total bytes ever ingested (message +
// fields + per-event overhead) — the quantity CloudWatch Logs billed
// $0.50/GB for in 2017.
func (s *Service) IngestedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.ingestedBytes
}

// StoredBytes reports the bytes currently at rest after retention —
// the $0.03/GB-month storage quantity.
func (s *Service) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.storedBytes
}

// Usage reports the log plane's inventory as meterable usage: GB
// ingested and GB-months stored, the 2017 CloudWatch Logs billing
// dimensions. Like the metrics inventory, it is not pushed into the
// account meter automatically (the paper's Tables 1–3 predate the
// observability layer); callers price it on demand via
// PriceBook.ListPrice or a scratch meter, which keeps logging
// bit-invisible to the ledger goldens.
func (s *Service) Usage() []pricing.Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	const gb = 1 << 30
	return []pricing.Usage{
		{Kind: pricing.CWLogsIngestGB, Quantity: float64(s.ingestedBytes) / gb, Resource: "cloudwatch-logs"},
		{Kind: pricing.CWLogsStorageGBMo, Quantity: float64(s.storedBytes) / gb, Resource: "cloudwatch-logs"},
	}
}

// Dump renders every stored event as one line per event in a stable
// order — the byte-identical artifact scripts/check.sh diffs across
// two identically-seeded runs.
func (s *Service) Dump() []string {
	var out []string
	for _, g := range s.Groups() {
		for _, e := range s.Events(g, time.Time{}, time.Time{}) {
			out = append(out, fmt.Sprintf("%s %s seq=%06d t=%d %s",
				e.Group, e.Stream, e.Seq, e.Time.UnixNano(), e.Message))
		}
	}
	return out
}

// ensureGroupLocked returns the named group, creating it if absent. Caller
// holds s.mu.
func (s *Service) ensureGroupLocked(name string) *group {
	g, ok := s.groups[name]
	if !ok {
		g = &group{name: name, streams: make(map[string]*stream)}
		s.groups[name] = g
	}
	return g
}

// ensureStreamLocked returns the named stream in g, creating it if absent.
// Caller holds s.mu.
func (s *Service) ensureStreamLocked(g *group, name string) *stream {
	st, ok := g.streams[name]
	if !ok {
		st = &stream{name: name}
		g.streams[name] = st
	}
	return st
}

// eventBytes is the metered size of one public-shape event.
func eventBytes(e Event) int64 {
	n := int64(len(e.Message)) + EventOverheadBytes
	for k, v := range e.Fields {
		n += int64(len(k) + len(v))
	}
	return n
}
