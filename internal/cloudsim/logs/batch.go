package logs

import (
	"sync"
	"time"
)

// pendingEvent is one staged event awaiting flush: interned group and
// stream names, the encoded message, and a field run in the batch's
// arena. No maps, no per-event allocations.
type pendingEvent struct {
	group, stream    string
	at               time.Time
	msg              string
	fieldLo, fieldHi int32
}

// logBatchCap is the pending-event count at which a Batch
// self-flushes. Buffers are retained and swapped, never regrown, so
// steady-state staging is two slice appends.
const logBatchCap = 1024

// Batch is a publisher-side staging buffer for log events — the logs
// twin of metrics.Batch. The plane interceptor appends here on the hot
// path; pending events drain into the store in arrival order when the
// simulation clock ticks (core wires clock.OnTick to FlushBatches),
// when the buffer fills, or — forced — before any read, so sequence
// numbers, byte inventories, and query results are exactly what
// unbatched ingestion would produce.
type Batch struct {
	svc         *Service
	mu          sync.Mutex
	buf         []pendingEvent
	fields      []field
	spareBuf    []pendingEvent
	spareFields []field
}

// NewBatch returns a staging buffer draining into s. The service
// tracks every batch it hands out and drains them all on FlushBatches
// (and before every read).
func (s *Service) NewBatch() *Batch {
	b := &Batch{
		svc:      s,
		buf:      make([]pendingEvent, 0, logBatchCap),
		spareBuf: make([]pendingEvent, 0, logBatchCap),
	}
	s.mu.Lock()
	s.batches = append(s.batches, b)
	s.mu.Unlock()
	return b
}

// Log stages one event. A zero at is stamped with the service clock
// now — at staging time, not flush time — matching unbatched
// PutEvents stamping. The fields slice is copied into the batch's
// arena, so callers may reuse it immediately.
func (b *Batch) Log(group, stream string, at time.Time, msg string, fs []field) {
	if at.IsZero() {
		at = b.svc.clk.Now()
	}
	b.mu.Lock()
	lo := int32(len(b.fields))
	b.fields = append(b.fields, fs...)
	b.buf = append(b.buf, pendingEvent{
		group: group, stream: stream, at: at, msg: msg,
		fieldLo: lo, fieldHi: int32(len(b.fields)),
	})
	full := len(b.buf) >= logBatchCap
	b.mu.Unlock()
	// Self-flush outside b.mu: the flush path locks svc.mu then b.mu,
	// so Log must never hold b.mu while entering it.
	if full {
		b.svc.FlushBatches()
	}
}

// FlushBatches drains every pending batch into the store. Core wiring
// calls it from the virtual clock's OnTick hook; every read API also
// forces it, so batching is invisible to queries, dumps, inventories,
// and retention.
func (s *Service) FlushBatches() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked drains all batches in registration order, assigning
// sequence numbers in staging order. Caller holds s.mu.
func (s *Service) flushLocked() {
	for _, b := range s.batches {
		b.mu.Lock()
		pending, fields := b.buf, b.fields
		b.buf, b.fields = b.spareBuf[:0], b.spareFields[:0]
		b.spareBuf, b.spareFields = pending, fields
		b.mu.Unlock()
		if len(pending) == 0 {
			continue
		}
		for _, e := range pending {
			g := s.ensureGroupLocked(e.group)
			st := s.ensureStreamLocked(g, e.stream)
			s.appendLocked(g, st, e.at, e.msg, fields[e.fieldLo:e.fieldHi])
		}
		s.flushes++
	}
}

// SelfStats is the log plane's observation of itself.
type SelfStats struct {
	// Events counts events ingested into the store (batched and
	// direct).
	Events int64
	// Bytes is the cumulative ingested byte count (same quantity as
	// IngestedBytes).
	Bytes int64
	// Flushes counts non-empty batch drains.
	Flushes int64
}

// SelfStats reports the service's self-telemetry counters. It does not
// force a flush — reading the telemetry plane must not perturb it.
func (s *Service) SelfStats() SelfStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SelfStats{
		Events:  s.ingestedEvents,
		Bytes:   s.ingestedBytes,
		Flushes: s.flushes,
	}
}
