package logs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements a CloudWatch Logs Insights-style query engine
// over stored events. A query is a pipeline of stages separated by
// `|`:
//
//	fields @timestamp, @message
//	filter <field> <op> <value>     op: = != > >= < <= like
//	parse <field> "<glob>" as a, b  each * captures one field
//	stats <agg>[, <agg>...] [by f1, f2]
//	                                agg: count(*) count(f) sum(f)
//	                                     avg(f) min(f) max(f) pct(f, p)
//	sort <field> [asc|desc]
//	limit <n>
//
// Example — the paper's Table 3 median billed duration, from Lambda
// REPORT lines alone:
//
//	filter @message like "REPORT" |
//	parse @message "Billed Duration: * ms" as billed_ms |
//	stats pct(billed_ms, 50) as med_billed_ms
//
// Built-in fields: @timestamp, @message, @logGroup, @logStream.
// Structured events additionally expose every Fields key. Evaluation
// is fully deterministic: events are scanned in the store's merged
// order, stats groups sort by key, and numbers render via
// strconv.FormatFloat with exact shortest form.

// QueryResult is a table of rows produced by a query pipeline.
type QueryResult struct {
	Columns []string
	Rows    [][]string
}

// Value returns the named column of row i ("" when absent), a
// convenience for single-cell Insights results.
func (r *QueryResult) Value(i int, column string) string {
	if r == nil || i < 0 || i >= len(r.Rows) {
		return ""
	}
	for c, name := range r.Columns {
		if name == column && c < len(r.Rows[i]) {
			return r.Rows[i][c]
		}
	}
	return ""
}

// Render formats the result as an aligned text table.
func (r *QueryResult) Render() string {
	if r == nil || len(r.Columns) == 0 {
		return "(no results)\n"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// row is one event (or aggregate) flowing through the pipeline.
type row map[string]string

// Query runs an Insights-style pipeline over one group's events in
// [from, to] (zero times mean unbounded). Evaluation is columnar
// (columnar.go): the pipeline scans the store's column arrays under
// the service lock instead of materializing a map per event. The
// legacy row evaluator survives as queryRows; TestColumnarMatchesRows
// pins the two cell-for-cell.
func (s *Service) Query(group, query string, from, to time.Time) (*QueryResult, error) {
	stages, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	var refs []eventRef
	if g, ok := s.groups[group]; ok {
		refs = g.windowRefs(from, to)
	}
	return runColumnar(group, refs, stages)
}

// queryRows is the legacy row-at-a-time evaluator: every event
// becomes a map, every stage transforms the row slice. Kept (test-only
// in spirit, but exercised by the differential suite) as the
// readable reference semantics the columnar path must reproduce.
func (s *Service) queryRows(group, query string, from, to time.Time) (*QueryResult, error) {
	stages, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	events := s.Events(group, from, to)
	rows := make([]row, 0, len(events))
	for _, e := range events {
		r := row{
			"@timestamp": e.Time.UTC().Format("2006-01-02 15:04:05.000"),
			"@message":   e.Message,
			"@logGroup":  e.Group,
			"@logStream": e.Stream,
		}
		for k, v := range e.Fields {
			r[k] = v
		}
		rows = append(rows, r)
	}
	columns := []string{"@timestamp", "@message"}
	for _, st := range stages {
		rows, columns, err = st.apply(rows, columns)
		if err != nil {
			return nil, err
		}
	}
	res := &QueryResult{Columns: columns}
	for _, r := range rows {
		cells := make([]string, len(columns))
		for i, c := range columns {
			cells[i] = r[c]
		}
		res.Rows = append(res.Rows, cells)
	}
	return res, nil
}

// stage is one parsed pipeline step.
type stage interface {
	apply(rows []row, columns []string) ([]row, []string, error)
}

// parseQuery splits a pipeline on unquoted '|' and parses each stage.
func parseQuery(q string) ([]stage, error) {
	parts := splitTop(q, '|')
	if len(parts) == 0 {
		return nil, fmt.Errorf("logs: empty query")
	}
	var stages []stage
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("logs: empty pipeline stage")
		}
		verb := p
		rest := ""
		if i := strings.IndexAny(p, " \t"); i >= 0 {
			verb, rest = p[:i], strings.TrimSpace(p[i+1:])
		}
		var (
			st  stage
			err error
		)
		switch verb {
		case "fields":
			st, err = parseFields(rest)
		case "filter":
			st, err = parseFilter(rest)
		case "parse":
			st, err = parseParse(rest)
		case "stats":
			st, err = parseStats(rest)
		case "sort":
			st, err = parseSort(rest)
		case "limit":
			st, err = parseLimit(rest)
		default:
			err = fmt.Errorf("logs: unknown stage %q", verb)
		}
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
	}
	return stages, nil
}

// splitTop splits s on sep occurrences outside double quotes and
// parentheses.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inQuote = !inQuote
		case inQuote:
		case s[i] == '(':
			depth++
		case s[i] == ')':
			depth--
		case s[i] == sep && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// ---- fields ----

type fieldsStage struct{ names []string }

func parseFields(rest string) (stage, error) {
	names := splitNames(rest)
	if len(names) == 0 {
		return nil, fmt.Errorf("logs: fields needs at least one field")
	}
	return &fieldsStage{names: names}, nil
}

func (f *fieldsStage) apply(rows []row, _ []string) ([]row, []string, error) {
	return rows, append([]string(nil), f.names...), nil
}

// ---- filter ----

type filterStage struct {
	field, op, value string
}

func parseFilter(rest string) (stage, error) {
	toks, err := tokens(rest)
	if err != nil {
		return nil, err
	}
	if len(toks) != 3 {
		return nil, fmt.Errorf("logs: filter wants `<field> <op> <value>`, got %q", rest)
	}
	switch toks[1] {
	case "=", "!=", ">", ">=", "<", "<=", "like":
	default:
		return nil, fmt.Errorf("logs: filter operator %q not supported", toks[1])
	}
	return &filterStage{field: toks[0], op: toks[1], value: toks[2]}, nil
}

func (f *filterStage) apply(rows []row, columns []string) ([]row, []string, error) {
	out := rows[:0]
	for _, r := range rows {
		if f.match(r[f.field]) {
			out = append(out, r)
		}
	}
	return out, columns, nil
}

func (f *filterStage) match(got string) bool {
	if f.op == "like" {
		return strings.Contains(got, f.value)
	}
	// Compare numerically when both sides parse; fall back to strings.
	if a, errA := strconv.ParseFloat(got, 64); errA == nil {
		if b, errB := strconv.ParseFloat(f.value, 64); errB == nil {
			switch f.op {
			case "=":
				return a == b
			case "!=":
				return a != b
			case ">":
				return a > b
			case ">=":
				return a >= b
			case "<":
				return a < b
			case "<=":
				return a <= b
			}
		}
	}
	switch f.op {
	case "=":
		return got == f.value
	case "!=":
		return got != f.value
	case ">":
		return got > f.value
	case ">=":
		return got >= f.value
	case "<":
		return got < f.value
	case "<=":
		return got <= f.value
	}
	return false
}

// ---- parse ----

type parseStage struct {
	field string
	re    *regexp.Regexp // row path
	lg    litGlob        // columnar path: literal scanner, same semantics
	names []string
}

func parseParse(rest string) (stage, error) {
	toks, err := tokens(rest)
	if err != nil {
		return nil, err
	}
	// <field> "<glob>" as a, b — tokens() keeps the glob as one token.
	if len(toks) < 4 || toks[2] != "as" {
		return nil, fmt.Errorf("logs: parse wants `<field> \"<glob>\" as <names>`, got %q", rest)
	}
	glob := toks[1]
	names := splitNames(strings.Join(toks[3:], " "))
	stars := strings.Count(glob, "*")
	if stars == 0 || stars != len(names) {
		return nil, fmt.Errorf("logs: parse glob has %d wildcards for %d names", stars, len(names))
	}
	// Glob → unanchored regex: each * followed by a literal captures
	// lazily, so "Billed Duration: * ms" pulls out just the number; a
	// trailing * captures greedily to the end of the message.
	var re strings.Builder
	parts := strings.SplitAfter(glob, "*")
	for i, part := range parts {
		if !strings.HasSuffix(part, "*") {
			re.WriteString(regexp.QuoteMeta(part))
			continue
		}
		re.WriteString(regexp.QuoteMeta(strings.TrimSuffix(part, "*")))
		if i == len(parts)-2 && parts[len(parts)-1] == "" {
			re.WriteString("(.*)")
		} else {
			re.WriteString("(.*?)")
		}
	}
	compiled, err := regexp.Compile(re.String())
	if err != nil {
		return nil, fmt.Errorf("logs: parse glob %q: %v", glob, err)
	}
	return &parseStage{field: toks[0], re: compiled, lg: compileGlob(glob), names: names}, nil
}

func (p *parseStage) apply(rows []row, columns []string) ([]row, []string, error) {
	for _, r := range rows {
		m := p.re.FindStringSubmatch(r[p.field])
		if m == nil {
			continue // no match: fields stay unset, like real Insights
		}
		for i, name := range p.names {
			r[name] = strings.TrimSpace(m[i+1])
		}
	}
	return rows, columns, nil
}

// ---- stats ----

type aggregate struct {
	fn    string // count, sum, avg, min, max, pct
	field string // "*" for count(*)
	pct   float64
	alias string
}

type statsStage struct {
	aggs []aggregate
	by   []string
}

func parseStats(rest string) (stage, error) {
	aggsPart, byPart := rest, ""
	if i := lastIndexTop(rest, " by "); i >= 0 {
		aggsPart, byPart = rest[:i], rest[i+len(" by "):]
	}
	var st statsStage
	for _, raw := range splitTop(aggsPart, ',') {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		agg, err := parseAggregate(raw)
		if err != nil {
			return nil, err
		}
		st.aggs = append(st.aggs, agg)
	}
	if len(st.aggs) == 0 {
		return nil, fmt.Errorf("logs: stats needs at least one aggregate")
	}
	if byPart != "" {
		st.by = splitNames(byPart)
	}
	return &st, nil
}

// parseAggregate parses `fn(args) [as alias]`.
func parseAggregate(s string) (aggregate, error) {
	expr, alias := s, ""
	if i := lastIndexTop(s, " as "); i >= 0 {
		expr, alias = strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+len(" as "):])
	}
	open := strings.IndexByte(expr, '(')
	if open < 0 || !strings.HasSuffix(expr, ")") {
		return aggregate{}, fmt.Errorf("logs: bad aggregate %q", s)
	}
	fn := strings.TrimSpace(expr[:open])
	args := splitTop(expr[open+1:len(expr)-1], ',')
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	a := aggregate{fn: fn, alias: alias}
	if a.alias == "" {
		a.alias = expr
	}
	switch fn {
	case "count", "sum", "avg", "min", "max":
		if len(args) != 1 || args[0] == "" {
			return aggregate{}, fmt.Errorf("logs: %s wants one argument in %q", fn, s)
		}
		a.field = args[0]
		if fn != "count" && a.field == "*" {
			return aggregate{}, fmt.Errorf("logs: %s(*) not supported", fn)
		}
	case "pct":
		if len(args) != 2 {
			return aggregate{}, fmt.Errorf("logs: pct wants (field, percentile) in %q", s)
		}
		a.field = args[0]
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil || p < 0 || p > 100 {
			return aggregate{}, fmt.Errorf("logs: bad percentile in %q", s)
		}
		a.pct = p
	default:
		return aggregate{}, fmt.Errorf("logs: unknown aggregate %q", fn)
	}
	return a, nil
}

func (st *statsStage) apply(rows []row, _ []string) ([]row, []string, error) {
	type bucket struct {
		byVals []string
		rows   []row
	}
	buckets := map[string]*bucket{}
	var keys []string
	if len(st.by) == 0 {
		// Ungrouped stats always yield exactly one row, even over an
		// empty scan — count(*) of nothing is 0, not no-answer.
		buckets[""] = &bucket{byVals: nil}
		keys = append(keys, "")
	}
	for _, r := range rows {
		byVals := make([]string, len(st.by))
		for i, f := range st.by {
			byVals[i] = r[f]
		}
		key := strings.Join(byVals, "\x00")
		b, ok := buckets[key]
		if !ok {
			b = &bucket{byVals: byVals}
			buckets[key] = b
			keys = append(keys, key)
		}
		b.rows = append(b.rows, r)
	}
	sort.Strings(keys)
	columns := append([]string(nil), st.by...)
	for _, a := range st.aggs {
		columns = append(columns, a.alias)
	}
	var out []row
	for _, key := range keys {
		b := buckets[key]
		r := row{}
		for i, f := range st.by {
			r[f] = b.byVals[i]
		}
		for _, a := range st.aggs {
			r[a.alias] = a.compute(b.rows)
		}
		out = append(out, r)
	}
	return out, columns, nil
}

// compute evaluates one aggregate over a bucket. Non-numeric (or
// unset) values are skipped for the numeric aggregates, mirroring
// Insights, which treats unparsed rows as missing data.
func (a aggregate) compute(rows []row) string {
	if a.fn == "count" {
		n := 0
		for _, r := range rows {
			if a.field == "*" {
				n++
			} else if _, ok := r[a.field]; ok {
				n++
			}
		}
		return strconv.Itoa(n)
	}
	var vals []float64
	for _, r := range rows {
		v, ok := r[a.field]
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		vals = append(vals, f)
	}
	return renderAgg(a, vals)
}

// renderAgg evaluates a numeric aggregate over the collected values —
// shared by the row and columnar paths so their arithmetic and
// formatting cannot drift.
func renderAgg(a aggregate, vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	var res float64
	switch a.fn {
	case "sum", "avg":
		for _, v := range vals {
			res += v
		}
		if a.fn == "avg" {
			res /= float64(len(vals))
		}
	case "min":
		res = vals[0]
		for _, v := range vals[1:] {
			if v < res {
				res = v
			}
		}
	case "max":
		res = vals[0]
		for _, v := range vals[1:] {
			if v > res {
				res = v
			}
		}
	case "pct":
		// Nearest-rank on the sorted sample — the same convention as
		// metrics.Percentile, so logs- and metrics-derived medians agree.
		sort.Float64s(vals)
		rank := int((a.pct*float64(len(vals)) + 99) / 100)
		if rank < 1 {
			rank = 1
		}
		if rank > len(vals) {
			rank = len(vals)
		}
		res = vals[rank-1]
	}
	return strconv.FormatFloat(res, 'g', -1, 64)
}

// ---- sort ----

type sortStage struct {
	field string
	desc  bool
}

func parseSort(rest string) (stage, error) {
	toks, err := tokens(rest)
	if err != nil {
		return nil, err
	}
	st := &sortStage{}
	switch len(toks) {
	case 1:
		st.field = toks[0]
	case 2:
		st.field = toks[0]
		switch toks[1] {
		case "asc":
		case "desc":
			st.desc = true
		default:
			return nil, fmt.Errorf("logs: sort direction %q not supported", toks[1])
		}
	default:
		return nil, fmt.Errorf("logs: sort wants `<field> [asc|desc]`, got %q", rest)
	}
	return st, nil
}

func (st *sortStage) apply(rows []row, columns []string) ([]row, []string, error) {
	f := st.field
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i][f], rows[j][f]
		less := a < b
		if fa, errA := strconv.ParseFloat(a, 64); errA == nil {
			if fb, errB := strconv.ParseFloat(b, 64); errB == nil {
				less = fa < fb
			}
		}
		if st.desc {
			return !less && a != b
		}
		return less
	})
	return rows, columns, nil
}

// ---- limit ----

type limitStage struct{ n int }

func parseLimit(rest string) (stage, error) {
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("logs: limit wants a non-negative integer, got %q", rest)
	}
	return &limitStage{n: n}, nil
}

func (l *limitStage) apply(rows []row, columns []string) ([]row, []string, error) {
	if len(rows) > l.n {
		rows = rows[:l.n]
	}
	return rows, columns, nil
}

// ---- lexing helpers ----

// splitNames splits a comma-separated name list.
func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// tokens splits on whitespace, keeping double-quoted spans (quotes
// stripped) as single tokens.
func tokens(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			if inQuote {
				out = append(out, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case inQuote:
			cur.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("logs: unterminated quote in %q", s)
	}
	flush()
	return out, nil
}

// lastIndexTop finds the last occurrence of sub outside quotes and
// parentheses (for splitting `... by ...` and `... as ...`).
func lastIndexTop(s, sub string) int {
	depth := 0
	inQuote := false
	last := -1
	for i := 0; i+len(sub) <= len(s); i++ {
		switch {
		case s[i] == '"':
			inQuote = !inQuote
			continue
		case inQuote:
			continue
		case s[i] == '(':
			depth++
			continue
		case s[i] == ')':
			depth--
			continue
		}
		if depth == 0 && s[i:i+len(sub)] == sub {
			last = i
		}
	}
	return last
}
