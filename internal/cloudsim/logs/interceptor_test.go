package logs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

func logPlane(t *testing.T, s *Service, authorize bool) *plane.Plane {
	t.Helper()
	iamSvc := iam.New()
	if authorize {
		err := iamSvc.PutRole(&iam.Role{
			Name: "fn",
			Policies: []iam.Policy{{
				Name:       "all",
				Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p := plane.New(iamSvc, pricing.NewMeter(), netsim.NewDefaultModel())
	p.Use(PlaneInterceptor(s, pricing.Default2017(), clock.NewVirtual()))
	return p
}

func TestPlaneInterceptorEmitsEvents(t *testing.T) {
	s := New(clock.NewVirtual())
	p := logPlane(t, s, true)
	ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(clock.Epoch)}

	call := &plane.Call{
		Service:  "s3",
		Op:       "s3:GetObject",
		Action:   "s3:GetObject",
		Resource: "bucket/x",
		Latency:  &plane.Latency{Hop: netsim.HopS3},
		Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}
	for i := 0; i < 3; i++ {
		if err := p.Do(ctx, call, func(*plane.Request) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("s3: no such key")
	if err := p.Do(ctx, call, func(*plane.Request) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}

	evs := s.Events(PlaneGroup("s3"), time.Time{}, time.Time{})
	if len(evs) != 4 {
		t.Fatalf("emitted %d events, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Stream != "s3:GetObject" {
			t.Fatalf("event stream = %q", e.Stream)
		}
		if e.Fields["principal"] != "fn" || e.Fields["app"] != "app" {
			t.Fatalf("event fields = %v", e.Fields)
		}
		// Each GET meters one S3 GET request at list price: $0.0004/1000
		// = 400 nanodollars.
		if e.Fields["cost_nanodollars"] != "400" {
			t.Fatalf("cost field = %q, want 400", e.Fields["cost_nanodollars"])
		}
		if e.Fields["latency_ms"] == "" {
			t.Fatalf("missing latency field: %v", e.Fields)
		}
		// Timestamps sit on the flow's simulated timeline.
		if e.Time.Before(clock.Epoch) || e.Time.After(ctx.Now()) {
			t.Fatalf("event time %v outside flow timeline", e.Time)
		}
	}
	if evs[3].Fields["outcome"] != "error" || evs[3].Fields["error"] == "" {
		t.Fatalf("failed call fields = %v", evs[3].Fields)
	}
	if evs[0].Fields["outcome"] != "ok" {
		t.Fatalf("ok call fields = %v", evs[0].Fields)
	}

	// The emitted events answer Insights queries.
	res, err := s.Query(PlaneGroup("s3"),
		`stats count(*) as n, sum(cost_nanodollars) as nanos by outcome | sort outcome`,
		time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, "outcome") != "error" || res.Value(0, "n") != "1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Value(1, "outcome") != "ok" || res.Value(1, "nanos") != "1200" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPlaneInterceptorLogsDenials(t *testing.T) {
	s := New(clock.NewVirtual())
	p := logPlane(t, s, false) // no roles: denied
	ctx := &sim.Context{Principal: "nobody", Cursor: sim.NewCursor(clock.Epoch)}
	err := p.Do(ctx, &plane.Call{
		Service:  "kms",
		Op:       "kms:Decrypt",
		Action:   "kms:Decrypt",
		Resource: "key/k",
		Usage:    []pricing.Usage{{Kind: pricing.KMSRequests, Quantity: 1}},
	}, func(*plane.Request) error {
		t.Error("handler ran on a denied call")
		return nil
	})
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	evs := s.Events(PlaneGroup("kms"), time.Time{}, time.Time{})
	if len(evs) != 1 {
		t.Fatalf("emitted %d events, want 1", len(evs))
	}
	if evs[0].Fields["outcome"] != "denied" {
		t.Fatalf("outcome = %q, want denied", evs[0].Fields["outcome"])
	}
	// Denied calls are billed on AWS: $0.03/10k = 3000 nanodollars.
	if evs[0].Fields["cost_nanodollars"] != "3000" {
		t.Fatalf("cost = %q, want 3000", evs[0].Fields["cost_nanodollars"])
	}
}

// Cursor-less flows fall back to the service clock so their events
// still land on the timeline.
func TestPlaneInterceptorClockFallback(t *testing.T) {
	s := New(clock.NewVirtual())
	clk := clock.NewVirtual()
	clk.Advance(42 * time.Minute)
	p := plane.New(nil, nil, nil)
	p.Use(PlaneInterceptor(s, pricing.Default2017(), clk))
	if err := p.Do(nil, &plane.Call{Service: "svc", Op: "Op"}, func(*plane.Request) error { return nil }); err != nil {
		t.Fatal(err)
	}
	evs := s.Events(PlaneGroup("svc"), time.Time{}, time.Time{})
	if len(evs) != 1 {
		t.Fatalf("emitted %d events, want 1", len(evs))
	}
	if want := clock.Epoch.Add(42 * time.Minute); !evs[0].Time.Equal(want) {
		t.Fatalf("event time = %v, want clock fallback %v", evs[0].Time, want)
	}
	// No cursor means no observable latency: the field must stay unset
	// rather than record a bogus zero.
	if _, ok := evs[0].Fields["latency_ms"]; ok {
		t.Fatalf("latency field on cursor-less flow: %v", evs[0].Fields)
	}
}
