// Benchmarks for the log plane's hot paths: event ingestion through
// the plane interceptor (the per-call overhead every service API pays
// when logging is on) and a full Insights pipeline scan (filter +
// parse + stats) over a populated group. scripts/bench.sh snapshots
// these numbers into BENCH_cloudsim.json.
package logs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/logs"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// BenchmarkLogsIngest measures one plane.Do with the log interceptor
// installed — the marginal cost of the evidence trail per API call.
func BenchmarkLogsIngest(b *testing.B) {
	iamSvc := iam.New()
	err := iamSvc.PutRole(&iam.Role{
		Name: "fn",
		Policies: []iam.Policy{{
			Name:       "all",
			Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	p := plane.New(iamSvc, pricing.NewMeter(), netsim.NewDefaultModel())
	p.Use(logs.PlaneInterceptor(logs.New(clock.NewVirtual()), pricing.Default2017(), clock.NewVirtual()))
	ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(clock.Epoch)}
	call := &plane.Call{
		Service:  "s3",
		Op:       "s3:GetObject",
		Action:   "s3:GetObject",
		Resource: "bucket/x",
		Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}
	handler := func(*plane.Request) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Do(ctx, call, handler); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsightsScan measures the Table 3 Insights pipeline —
// filter, parse, percentile stats — over 10k Lambda REPORT lines.
func BenchmarkInsightsScan(b *testing.B) {
	s := logs.New(clock.NewVirtual())
	for i := 0; i < 10_000; i++ {
		s.PutEvents("lambda/fn", "2017/06/01/[$LATEST]container-000001", logs.Event{
			Time: clock.Epoch.Add(time.Duration(i) * time.Second),
			Message: fmt.Sprintf(
				"REPORT RequestId: req-%06d\tDuration: %d.50 ms\tBilled Duration: %d ms\tMemory Size: 448 MB\tMax Memory Used: %d MB",
				i, 100+i%100, 200+100*(i%2), 40+i%12),
		})
	}
	const q = `filter @message like "REPORT" | parse @message "Billed Duration: * ms" as billed_ms | stats count(*) as n, pct(billed_ms, 50) as med`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Query("lambda/fn", q, time.Time{}, time.Time{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Value(0, "n") != "10000" {
			b.Fatalf("scan returned %q rows", res.Value(0, "n"))
		}
	}
}
