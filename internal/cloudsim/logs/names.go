// Log group name registry. Mirrors the metric-name registry in
// internal/cloudsim/metrics/names.go: every log group name used by
// simulator or application code is minted here, either as a LogGroup*
// constant or by a builder function, and the diylint `loggroup`
// analyzer rejects ad-hoc string literals at emit sites. A typo'd
// group name would silently fork the evidence trail into a parallel
// group nobody queries — the same failure mode as a typo-split metric
// series.
//
// Convention: lowercase slash-separated segments, `<plane>/<entity>`
// (e.g. "kms/audit", "lambda/chat-fn", "plane/s3").
package logs

import "regexp"

// Registered log group names. Prefix LogGroup, value lowercase
// slash-separated — both enforced by diylint.
const (
	// LogGroupKMSAudit receives one structured event per KMS API call,
	// mirroring the in-memory AuditEntry log that backs the paper's
	// "hardened, audited system" trust argument (§3).
	LogGroupKMSAudit = "kms/audit"
)

// groupRE is the naming convention: lowercase slash-separated
// segments, each starting with a letter, digits and dashes allowed.
var groupRE = regexp.MustCompile(`^[a-z][a-z0-9-]*(/[a-z][a-z0-9-]*)+$`)

// ValidGroupName reports whether a log group name follows the
// registry convention.
func ValidGroupName(name string) bool {
	return groupRE.MatchString(name)
}

// PlaneGroup is the log group the plane interceptor writes a
// service's request events into: "plane/<service>".
func PlaneGroup(service string) string {
	return "plane/" + service
}

// LambdaGroup is the log group a function's platform lines
// (START/END/REPORT) land in: "lambda/<function>" — the simulator's
// analogue of /aws/lambda/<function>.
func LambdaGroup(fn string) string {
	return "lambda/" + fn
}

// Names lists the registered constant group names (builders like
// PlaneGroup and LambdaGroup mint per-entity names on top).
func Names() []string {
	return []string{LogGroupKMSAudit}
}
