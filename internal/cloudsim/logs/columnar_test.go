package logs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
)

// mixedGroup populates a group with the shapes the query engine meets
// in practice: structured plane events with fields, bare text lines,
// REPORT-style lines with numeric payloads, and multiple streams so
// the merged order matters.
func mixedGroup(s *Service) {
	at := func(i int) time.Time { return clock.Epoch.Add(time.Duration(i) * time.Second) }
	for i := 0; i < 25; i++ {
		s.PutEvents("g/mixed", "alpha", Event{
			Time:    at(i),
			Message: fmt.Sprintf("s3:GetObject outcome=ok latency_ms=%d.250 cost_nanodollars=%d", i, 400+i),
			Fields:  map[string]string{"service": "s3", "outcome": "ok", "op": "s3:GetObject"},
		})
	}
	for i := 0; i < 10; i++ {
		s.PutEvents("g/mixed", "beta", Event{
			Time:    at(2 * i),
			Message: fmt.Sprintf("REPORT Duration: %d.00 ms Billed Duration: %d ms", 90+i, 100*(1+(90+i)/100)),
		})
	}
	s.PutEvents("g/mixed", "beta",
		Event{Time: at(5), Message: "plain line with no equals signs"},
		Event{Time: at(6), Message: "outcome=denied snooping attempt", Fields: map[string]string{"outcome": "denied"}},
	)
}

// TestColumnarMatchesRows is the differential gate for the columnar
// executor: every query runs through both the columnar path (Query)
// and the retained row-at-a-time reference (queryRows), and the
// rendered tables must match byte for byte — columns, order, and cell
// formatting.
func TestColumnarMatchesRows(t *testing.T) {
	s := New(clock.NewVirtual())
	mixedGroup(s)

	queries := []string{
		`fields @timestamp, @message`,
		`filter @message like "REPORT"`,
		`filter outcome = "ok" | fields @logStream, @message`,
		`filter @logStream = "beta" | sort @timestamp desc | limit 5`,
		`parse @message "latency_ms=* cost_nanodollars=*" as lat, cost | fields lat, cost`,
		`parse @message "Billed Duration: * ms" as billed | filter billed != "" | stats count(*) as n, min(billed) as lo, max(billed) as hi, pct(billed, 50) as med`,
		`filter @message like "outcome=" | stats count(*) as n by outcome | sort n desc`,
		`stats count(*) as n, avg(cost_nanodollars) as c by service`,
		`parse @message "outcome=* " as oc | sort oc asc | limit 9`,
		`filter cost_nanodollars > 410 | stats sum(cost_nanodollars) as total`,
		`fields @logGroup, @logStream, outcome | sort @logStream asc | limit 30`,
		`filter @message like "nosuchthing"`,
		`filter @message like "nosuchthing" | stats count(*) as n`,
	}
	var zero time.Time
	for _, q := range queries {
		col, err := s.Query("g/mixed", q, zero, zero)
		if err != nil {
			t.Fatalf("columnar %q: %v", q, err)
		}
		ref, err := s.queryRows("g/mixed", q, zero, zero)
		if err != nil {
			t.Fatalf("rows %q: %v", q, err)
		}
		if got, want := col.Render(), ref.Render(); got != want {
			t.Errorf("query %q diverges\n--- columnar ---\n%s--- rows ---\n%s", q, got, want)
		}
	}

	// Windowed queries must agree too (the window trims the scan before
	// the pipeline sees it).
	from, to := clock.Epoch.Add(4*time.Second), clock.Epoch.Add(12*time.Second)
	for _, q := range queries[:6] {
		col, err := s.Query("g/mixed", q, from, to)
		if err != nil {
			t.Fatalf("columnar windowed %q: %v", q, err)
		}
		ref, err := s.queryRows("g/mixed", q, from, to)
		if err != nil {
			t.Fatalf("rows windowed %q: %v", q, err)
		}
		if got, want := col.Render(), ref.Render(); got != want {
			t.Errorf("windowed query %q diverges\n--- columnar ---\n%s--- rows ---\n%s", q, got, want)
		}
	}
}

// TestParseEdgeCases pins the glob scanner's corner semantics on both
// executors: empty globs are rejected at parse time, adjacent
// wildcards yield an empty first capture, unmatched rows leave their
// fields unset, and multi-capture globs bind names left to right.
func TestParseEdgeCases(t *testing.T) {
	s := New(clock.NewVirtual())
	s.PutEvents("g/edge", "s",
		Event{Time: clock.Epoch, Message: "a=1 b=2 c=3"},
		Event{Time: clock.Epoch.Add(time.Second), Message: "unrelated line"},
		Event{Time: clock.Epoch.Add(2 * time.Second), Message: "a=9 b=8 c=7"},
	)
	var zero time.Time

	// A glob with no wildcard cannot bind any name: parse-time error.
	if _, err := s.Query("g/edge", `parse @message "a=1" as x`, zero, zero); err == nil {
		t.Error("wildcard-less glob: want error, got none")
	}
	// Wildcard/name count mismatch: parse-time error.
	if _, err := s.Query("g/edge", `parse @message "a=* b=*" as x`, zero, zero); err == nil {
		t.Error("2 wildcards for 1 name: want error, got none")
	}

	// Adjacent wildcards: the first capture is the shortest possible
	// match — empty — the second runs lazily to the next literal, and
	// the trailing wildcard is greedy to the end of the line.
	res, err := s.Query("g/edge", `parse @message "a=** b=*" as x, y, z | fields x, y, z | limit 1`, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, "x") != "" || res.Value(0, "y") != "1" || res.Value(0, "z") != "2 c=3" {
		t.Errorf("adjacent wildcards bound x=%q y=%q z=%q, want \"\", \"1\", \"2 c=3\"",
			res.Value(0, "x"), res.Value(0, "y"), res.Value(0, "z"))
	}

	// Unmatched rows keep their fields unset: the middle event has no
	// "a=" so its x renders empty while matched neighbors bind.
	res, err = s.Query("g/edge", `parse @message "a=* b=*" as x, y | fields @message, x, y`, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("parse dropped rows: got %d, want 3 (unmatched rows pass through)", len(res.Rows))
	}
	if res.Value(0, "x") != "1" || res.Value(1, "x") != "" || res.Value(2, "x") != "9" {
		t.Errorf("x column = %q,%q,%q, want 1,\"\",9", res.Value(0, "x"), res.Value(1, "x"), res.Value(2, "x"))
	}

	// Multi-capture ordering: names bind to wildcards strictly left to
	// right even when the captures look alike.
	res, err = s.Query("g/edge", `parse @message "a=* b=* c=*" as first, second, third | fields first, second, third | limit 1`, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, "first") != "1" || res.Value(0, "second") != "2" || res.Value(0, "third") != "3" {
		t.Errorf("multi-capture bound %q,%q,%q, want 1,2,3",
			res.Value(0, "first"), res.Value(0, "second"), res.Value(0, "third"))
	}

	// A trailing wildcard is greedy: it takes everything to the end of
	// the line, embedded delimiters included.
	res, err = s.Query("g/edge", `parse @message "a=*" as rest | fields rest | limit 1`, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, "rest"); got != "1 b=2 c=3" {
		t.Errorf("trailing wildcard captured %q, want %q", got, "1 b=2 c=3")
	}

	// Each edge case must agree with the row reference as well.
	for _, q := range []string{
		`parse @message "a=** b=*" as x, y, z | fields x, y, z`,
		`parse @message "a=* b=*" as x, y | fields @message, x, y`,
		`parse @message "a=*" as rest | fields rest`,
	} {
		col, err := s.Query("g/edge", q, zero, zero)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := s.queryRows("g/edge", q, zero, zero)
		if err != nil {
			t.Fatal(err)
		}
		if col.Render() != ref.Render() {
			t.Errorf("edge query %q: columnar and row paths disagree\n--- columnar ---\n%s--- rows ---\n%s",
				q, col.Render(), ref.Render())
		}
	}
}

// TestLitGlobMatchesRegex fuzzes the literal-scanner glob matcher
// against the compiled-regex reference across messages built from a
// small alphabet, so every capture-boundary case the scanner special-
// cases (lead literal offset, lazy middles, greedy tail, adjacent
// stars) is cross-checked.
func TestLitGlobMatchesRegex(t *testing.T) {
	globs := []string{
		"a=*",
		"a=* b=*",
		"*=b",
		"**",
		"a=**",
		"x* y*z",
		"* ms",
		"Billed Duration: * ms",
	}
	msgs := []string{
		"",
		"a=1",
		"a=1 b=2",
		"a= b=",
		"b=2 a=1",
		"x1 y2z",
		"x y z",
		"Billed Duration: 200 ms",
		"REPORT Billed Duration: 200 ms extra",
		"aa=11 bb=22",
		"a=1 b=2 a=3 b=4",
	}
	for _, glob := range globs {
		st, err := parseParse(fmt.Sprintf("@message %q as %s", glob, names(strings.Count(glob, "*"))))
		if err != nil {
			t.Fatalf("glob %q: %v", glob, err)
		}
		ps := st.(*parseStage)
		caps := make([]string, strings.Count(glob, "*"))
		for _, msg := range msgs {
			m := ps.re.FindStringSubmatch(msg)
			caps, ok := ps.lg.match(msg, caps[:0])
			if (m != nil) != ok {
				t.Errorf("glob %q on %q: scanner matched=%v, regex matched=%v", glob, msg, ok, m != nil)
				continue
			}
			if m == nil {
				continue
			}
			for i := range caps {
				if caps[i] != m[i+1] {
					t.Errorf("glob %q on %q: capture %d = %q (scanner) vs %q (regex)", glob, msg, i, caps[i], m[i+1])
				}
			}
		}
	}
}

// names returns "v0, v1, ..." for n parse bindings.
func names(n int) string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%d", i)
	}
	return strings.Join(out, ", ")
}
