package logs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/pricing"
)

func at(d time.Duration) time.Time { return clock.Epoch.Add(d) }

func TestPutEventsSequenceTokens(t *testing.T) {
	s := New(clock.NewVirtual())
	tok := s.PutEvents("plane/s3", "Get", Event{Time: at(0), Message: "one"})
	if tok != "plane/s3/Get@00000001" {
		t.Fatalf("token after one event = %q", tok)
	}
	tok = s.PutEvents("plane/s3", "Get",
		Event{Time: at(time.Second), Message: "two"},
		Event{Time: at(2 * time.Second), Message: "three"})
	if tok != "plane/s3/Get@00000003" {
		t.Fatalf("token after three events = %q", tok)
	}
	if got := s.SequenceToken("plane/s3", "Get"); got != tok {
		t.Fatalf("SequenceToken = %q, want %q", got, tok)
	}
	if got := s.SequenceToken("plane/s3", "Put"); got != "" {
		t.Fatalf("SequenceToken for unknown stream = %q, want empty", got)
	}
	evs := s.Events("plane/s3", time.Time{}, time.Time{})
	if len(evs) != 3 {
		t.Fatalf("stored %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestZeroTimeStampedByClock(t *testing.T) {
	clk := clock.NewVirtual()
	clk.Advance(42 * time.Second)
	s := New(clk)
	s.PutEvents("plane/s3", "Get", Event{Message: "unstamped"})
	evs := s.Events("plane/s3", time.Time{}, time.Time{})
	if len(evs) != 1 || !evs[0].Time.Equal(at(42*time.Second)) {
		t.Fatalf("event time = %v, want clock instant %v", evs[0].Time, at(42*time.Second))
	}
}

func TestEventsMergeAcrossStreamsDeterministically(t *testing.T) {
	s := New(clock.NewVirtual())
	// Interleave two streams; same-instant events tie-break on stream
	// name then sequence.
	s.PutEvents("g/a", "s2", Event{Time: at(2 * time.Second), Message: "s2-late"})
	s.PutEvents("g/a", "s1", Event{Time: at(time.Second), Message: "s1-early"})
	s.PutEvents("g/a", "s2", Event{Time: at(time.Second), Message: "s2-early"})
	var got []string
	for _, e := range s.Events("g/a", time.Time{}, time.Time{}) {
		got = append(got, e.Message)
	}
	want := "s1-early s2-early s2-late"
	if strings.Join(got, " ") != want {
		t.Fatalf("merged order = %q, want %q", strings.Join(got, " "), want)
	}
}

func TestEventsWindowAndTail(t *testing.T) {
	s := New(clock.NewVirtual())
	for i := 0; i < 5; i++ {
		s.PutEvents("g/w", "s", Event{Time: at(time.Duration(i) * time.Minute), Message: strings.Repeat("x", i+1)})
	}
	evs := s.Events("g/w", at(time.Minute), at(3*time.Minute))
	if len(evs) != 3 {
		t.Fatalf("window returned %d events, want 3", len(evs))
	}
	tail := s.Tail("g/w", 2)
	if len(tail) != 2 || tail[1].Message != "xxxxx" {
		t.Fatalf("tail = %+v", tail)
	}
	if got := len(s.Tail("g/w", 0)); got != 5 {
		t.Fatalf("Tail(0) returned %d events, want all 5", got)
	}
}

func TestRetentionExpiresOldEvents(t *testing.T) {
	s := New(clock.NewVirtual())
	s.SetRetention("g/r", time.Hour)
	if got := s.Retention("g/r"); got != time.Hour {
		t.Fatalf("Retention = %v", got)
	}
	s.PutEvents("g/r", "s", Event{Time: at(0), Message: "old"})
	s.PutEvents("g/r", "s", Event{Time: at(2 * time.Hour), Message: "new"})
	stored := s.StoredBytes()
	s.ApplyRetention(at(2*time.Hour + time.Minute))
	evs := s.Events("g/r", time.Time{}, time.Time{})
	if len(evs) != 1 || evs[0].Message != "new" {
		t.Fatalf("after retention: %+v", evs)
	}
	if s.StoredBytes() >= stored {
		t.Fatalf("stored bytes did not shrink: %d -> %d", stored, s.StoredBytes())
	}
	// Ingested bytes are cumulative: retention frees storage, not the
	// ingest charge already incurred.
	if s.IngestedBytes() != stored {
		t.Fatalf("ingested bytes %d changed by retention (want %d)", s.IngestedBytes(), stored)
	}
}

func TestIngestAccountingAndBillLines(t *testing.T) {
	s := New(clock.NewVirtual())
	e := Event{Time: at(0), Message: "hello", Fields: map[string]string{"k": "vv"}}
	s.PutEvents("g/b", "s", e)
	want := int64(len("hello")) + int64(len("k")+len("vv")) + EventOverheadBytes
	if s.IngestedBytes() != want {
		t.Fatalf("ingested %d bytes, want %d", s.IngestedBytes(), want)
	}

	// Usage prices through the standard bill engine with the 2017
	// CloudWatch Logs rates and free tiers.
	book := pricing.Default2017()
	meter := pricing.NewMeter()
	for _, u := range s.Usage() {
		meter.Add(u)
	}
	bill := pricing.Compute(book, meter)
	ingest := bill.Line(pricing.CWLogsIngestGB)
	if ingest.Quantity <= 0 {
		t.Fatalf("no cloudwatch logs ingest line in bill:\n%s", bill)
	}
	if ingest.Billable != 0 || ingest.Cost != 0 {
		t.Fatalf("tiny ingest should sit inside the 5 GB free tier: %+v", ingest)
	}

	// Above the free tier the list price applies: 6 GB ingested bills
	// 1 GB at $0.50.
	m2 := pricing.NewMeter()
	m2.Add(pricing.Usage{Kind: pricing.CWLogsIngestGB, Quantity: 6})
	m2.Add(pricing.Usage{Kind: pricing.CWLogsStorageGBMo, Quantity: 7})
	b2 := pricing.Compute(book, m2)
	if got := b2.Line(pricing.CWLogsIngestGB).Cost; got != pricing.FromDollars(0.50) {
		t.Fatalf("6 GB ingest cost = %v, want $0.50", got)
	}
	if got := b2.Line(pricing.CWLogsStorageGBMo).Cost; got != pricing.FromDollars(0.06) {
		t.Fatalf("7 GB-mo storage cost = %v, want $0.06", got)
	}

	// ListPrice ignores free tiers entirely.
	lp := book.ListPrice(pricing.Usage{Kind: pricing.CWLogsIngestGB, Quantity: 2})
	if lp != pricing.FromDollars(1.00) {
		t.Fatalf("list price of 2 GB ingest = %v, want $1.00", lp)
	}
	nf := book.WithoutFreeTiers()
	if nf.CWLogsFreeIngestGB != 0 || nf.CWLogsFreeStorageGB != 0 {
		t.Fatalf("WithoutFreeTiers kept logs free tiers: %+v", nf)
	}
}

func TestInventoryAndDump(t *testing.T) {
	s := New(clock.NewVirtual())
	s.PutEvents("g/a", "s1", Event{Time: at(0), Message: "m1"})
	s.PutEvents("g/a", "s2", Event{Time: at(time.Second), Message: "m2"})
	s.PutEvents("g/b", "s1", Event{Time: at(2 * time.Second), Message: "m3"})
	inv := s.Inventory()
	if len(inv) != 2 || inv[0].Name != "g/a" || inv[0].Streams != 2 || inv[0].Events != 2 {
		t.Fatalf("inventory = %+v", inv)
	}
	if got := s.Groups(); len(got) != 2 || got[0] != "g/a" || got[1] != "g/b" {
		t.Fatalf("groups = %v", got)
	}
	if got := s.Streams("g/a"); len(got) != 2 || got[0] != "s1" {
		t.Fatalf("streams = %v", got)
	}
	dump := s.Dump()
	if len(dump) != 3 || !strings.Contains(dump[0], "m1") {
		t.Fatalf("dump = %v", dump)
	}
}

func TestValidGroupName(t *testing.T) {
	for _, name := range []string{LogGroupKMSAudit, PlaneGroup("s3"), LambdaGroup("chat-fn"), "a/b/c-d"} {
		if !ValidGroupName(name) {
			t.Errorf("ValidGroupName(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", "noslash", "KMS/Audit", "kms/", "/audit", "kms audit", "kms/Audit"} {
		if ValidGroupName(name) {
			t.Errorf("ValidGroupName(%q) = true, want false", name)
		}
	}
	for _, name := range Names() {
		if !ValidGroupName(name) {
			t.Errorf("registered name %q violates the convention", name)
		}
	}
}
