package sqs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

type fixture struct {
	iam   *iam.Service
	meter *pricing.Meter
	sqs   *Service
	clk   *clock.Virtual
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{iam: iam.New(), meter: pricing.NewMeter(), clk: clock.NewVirtual()}
	f.sqs = New(f.iam, f.meter, netsim.NewDefaultModel(), f.clk)
	if err := f.sqs.CreateQueue("alice-inbox"); err != nil {
		t.Fatal(err)
	}
	err := f.iam.PutRole(&iam.Role{
		Name: "chat-fn",
		Policies: []iam.Policy{{
			Name: "queue-access",
			Statements: []iam.Statement{
				iam.AllowStatement([]string{"sqs:*"}, []string{"queue/alice-inbox"}),
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) vctx() *sim.Context {
	return &sim.Context{Principal: "chat-fn", App: "chat", Cursor: sim.NewCursor(clock.Epoch)}
}

// wctx is a wall-clock (blocking) context.
func (f *fixture) wctx() *sim.Context {
	return &sim.Context{Principal: "chat-fn", App: "chat"}
}

func TestSendReceiveVirtual(t *testing.T) {
	f := newFixture(t)
	sender := f.vctx()
	id, err := f.sqs.Send(sender, "alice-inbox", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty message id")
	}

	receiver := f.vctx()
	msgs, err := f.sqs.Receive(receiver, "alice-inbox", 10, MaxWait)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Body) != "hello" {
		t.Fatalf("Receive = %v", msgs)
	}
	if receiver.Cursor.Elapsed() == 0 {
		t.Fatal("receive consumed no simulated time")
	}
	// Delivery must not have charged the receiver the full 20 s wait:
	// the message was already there.
	if receiver.Cursor.Elapsed() > time.Second {
		t.Fatalf("delivery of a waiting message took %v", receiver.Cursor.Elapsed())
	}
}

func TestReceiveEmptyConsumesFullWait(t *testing.T) {
	f := newFixture(t)
	ctx := f.vctx()
	msgs, err := f.sqs.Receive(ctx, "alice-inbox", 1, MaxWait)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != nil {
		t.Fatalf("got %v from empty queue", msgs)
	}
	if ctx.Cursor.Elapsed() < MaxWait {
		t.Fatalf("empty long poll elapsed %v, want >= %v", ctx.Cursor.Elapsed(), MaxWait)
	}
}

func TestReceiveFutureMessageWithinWindow(t *testing.T) {
	// A message sent 5 simulated seconds after the poll begins must be
	// delivered by a 20 s long poll at roughly its arrival time.
	f := newFixture(t)
	sender := f.vctx()
	sender.Cursor.Advance(5 * time.Second)
	if _, err := f.sqs.Send(sender, "alice-inbox", []byte("later")); err != nil {
		t.Fatal(err)
	}

	receiver := f.vctx() // poll starts at epoch
	msgs, err := f.sqs.Receive(receiver, "alice-inbox", 1, MaxWait)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	el := receiver.Cursor.Elapsed()
	if el < 5*time.Second || el > 6*time.Second {
		t.Fatalf("delivery at %v, want just after the 5s arrival", el)
	}
}

func TestReceiveMessageBeyondWindow(t *testing.T) {
	f := newFixture(t)
	sender := f.vctx()
	sender.Cursor.Advance(25 * time.Second) // beyond the 20 s window
	f.sqs.Send(sender, "alice-inbox", []byte("too late"))

	receiver := f.vctx()
	msgs, err := f.sqs.Receive(receiver, "alice-inbox", 1, MaxWait)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != nil {
		t.Fatalf("received a message outside the poll window: %v", msgs)
	}
}

func TestVisibilityTimeout(t *testing.T) {
	f := newFixture(t)
	f.sqs.Send(f.vctx(), "alice-inbox", []byte("x"))

	r1 := f.vctx()
	msgs, _ := f.sqs.Receive(r1, "alice-inbox", 1, time.Second)
	if len(msgs) != 1 {
		t.Fatal("first receive failed")
	}
	// A second receiver polling shortly after sees nothing: in flight.
	r2 := f.vctx()
	again, _ := f.sqs.Receive(r2, "alice-inbox", 1, time.Second)
	if len(again) != 0 {
		t.Fatal("in-flight message visible to second receiver")
	}
	// After the visibility timeout it reappears (at-least-once).
	r3 := f.vctx()
	r3.Cursor.Advance(DefaultVisibility + time.Minute)
	reappeared, _ := f.sqs.Receive(r3, "alice-inbox", 1, time.Second)
	if len(reappeared) != 1 {
		t.Fatal("message did not reappear after visibility timeout")
	}
}

func TestDeleteMessage(t *testing.T) {
	f := newFixture(t)
	id, _ := f.sqs.Send(f.vctx(), "alice-inbox", []byte("x"))
	if err := f.sqs.Delete(f.vctx(), "alice-inbox", id); err != nil {
		t.Fatal(err)
	}
	if f.sqs.Len("alice-inbox") != 0 {
		t.Fatal("message survived delete")
	}
	// Unknown id is a no-op.
	if err := f.sqs.Delete(f.vctx(), "alice-inbox", "m-999"); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMessages(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		f.sqs.Send(f.vctx(), "alice-inbox", []byte("x"))
	}
	msgs, _ := f.sqs.Receive(f.vctx(), "alice-inbox", 3, time.Second)
	if len(msgs) != 3 {
		t.Fatalf("Receive(max=3) returned %d", len(msgs))
	}
	// max <= 0 defaults to 1.
	msgs, _ = f.sqs.Receive(f.vctx(), "alice-inbox", 0, time.Second)
	if len(msgs) != 1 {
		t.Fatalf("Receive(max=0) returned %d", len(msgs))
	}
}

func TestWaitClamping(t *testing.T) {
	f := newFixture(t)
	ctx := f.vctx()
	// Waits beyond the SQS maximum are clamped to 20 s.
	f.sqs.Receive(ctx, "alice-inbox", 1, time.Hour)
	if el := ctx.Cursor.Elapsed(); el > MaxWait+time.Second {
		t.Fatalf("wait not clamped: elapsed %v", el)
	}
	// Negative waits behave as immediate polls.
	ctx2 := f.vctx()
	if _, err := f.sqs.Receive(ctx2, "alice-inbox", 1, -time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestIAMDenied(t *testing.T) {
	f := newFixture(t)
	evil := &sim.Context{Principal: "mallory", Cursor: sim.NewCursor(clock.Epoch)}
	if _, err := f.sqs.Send(evil, "alice-inbox", []byte("spam")); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("send: got %v, want ErrDenied", err)
	}
	if _, err := f.sqs.Receive(evil, "alice-inbox", 1, 0); !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("receive: got %v, want ErrDenied", err)
	}
}

func TestQueueLifecycle(t *testing.T) {
	f := newFixture(t)
	if err := f.sqs.CreateQueue("alice-inbox"); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.sqs.CreateQueue(""); err == nil {
		t.Fatal("empty queue name accepted")
	}
	if err := f.sqs.DeleteQueue("alice-inbox"); err != nil {
		t.Fatal(err)
	}
	if f.sqs.QueueExists("alice-inbox") {
		t.Fatal("queue survived delete")
	}
	if err := f.sqs.DeleteQueue("alice-inbox"); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestRequestsMetered(t *testing.T) {
	f := newFixture(t)
	f.sqs.Send(f.vctx(), "alice-inbox", []byte("x"))
	f.sqs.Receive(f.vctx(), "alice-inbox", 1, 0)
	if got := f.meter.TotalFor(pricing.SQSRequests, "chat"); got != 2 {
		t.Fatalf("metered = %v, want 2", got)
	}
}

func TestBlockingReceiveDeliversOnSend(t *testing.T) {
	// Wall-clock mode: a blocked long poll wakes when a message lands.
	f := newFixture(t)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []Message
	var rerr error
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		got, rerr = f.sqs.Receive(f.wctx(), "alice-inbox", 1, 5*time.Second)
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the poller block
	if _, err := f.sqs.Send(f.wctx(), "alice-inbox", []byte("wake up")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != 1 || string(got[0].Body) != "wake up" {
		t.Fatalf("blocking receive got %v", got)
	}
}

func TestBlockingReceiveTimesOut(t *testing.T) {
	// The blocking path now parks on the injected clock, so an empty
	// poll resolves by advancing virtual time — deterministically, with
	// no real waiting.
	f := newFixture(t)
	start := f.clk.Now()
	done := make(chan struct{})
	var got []Message
	var rerr error
	go func() {
		defer close(done)
		got, rerr = f.sqs.Receive(f.wctx(), "alice-inbox", 1, 50*time.Millisecond)
	}()
	for f.clk.Waiters() == 0 {
		time.Sleep(time.Millisecond) // let the poller park on the clock
	}
	f.clk.Advance(50 * time.Millisecond)
	<-done
	if rerr != nil || got != nil {
		t.Fatalf("got %v, %v", got, rerr)
	}
	if elapsed := f.clk.Now().Sub(start); elapsed != 50*time.Millisecond {
		t.Fatalf("poll consumed %v of virtual time, want 50ms", elapsed)
	}
}

func TestBlockingReceiveImmediate(t *testing.T) {
	f := newFixture(t)
	f.sqs.Send(f.wctx(), "alice-inbox", []byte("x"))
	got, err := f.sqs.Receive(f.wctx(), "alice-inbox", 1, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("immediate receive: %v, %v", got, err)
	}
}

func TestConcurrentSendReceive(t *testing.T) {
	f := newFixture(t)
	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			f.sqs.Send(f.wctx(), "alice-inbox", []byte("m"))
		}
	}()
	received := 0
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(5 * time.Second)
		for received < n && time.Now().Before(deadline) {
			msgs, err := f.sqs.Receive(f.wctx(), "alice-inbox", 10, 100*time.Millisecond)
			if err != nil {
				return
			}
			for _, m := range msgs {
				f.sqs.Delete(f.wctx(), "alice-inbox", m.ID)
				received++
			}
		}
	}()
	wg.Wait()
	if received != n {
		t.Fatalf("received %d of %d", received, n)
	}
}

func TestDeliveryOrderPreserved(t *testing.T) {
	// Messages sent in cursor order arrive in that order within one
	// receive batch.
	f := newFixture(t)
	sender := f.vctx()
	for i := 0; i < 8; i++ {
		sender.Cursor.Advance(time.Second)
		if _, err := f.sqs.Send(sender, "alice-inbox", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	receiver := f.vctx()
	receiver.Cursor.Advance(time.Minute)
	msgs, err := f.sqs.Receive(receiver, "alice-inbox", 10, time.Second)
	if err != nil || len(msgs) != 8 {
		t.Fatalf("received %d: %v", len(msgs), err)
	}
	for i, m := range msgs {
		if m.Body[0] != byte('a'+i) {
			t.Fatalf("order broken at %d: %q", i, m.Body)
		}
	}
}

func TestAtLeastOnceProperty(t *testing.T) {
	// Property: an undeleted message is always redelivered after its
	// visibility timeout, for any receive pattern.
	f := newFixture(t)
	id, _ := f.sqs.Send(f.vctx(), "alice-inbox", []byte("sticky"))
	for round := 0; round < 5; round++ {
		ctx := f.vctx()
		ctx.Cursor.Advance(time.Duration(round+1) * (DefaultVisibility + time.Minute))
		msgs, err := f.sqs.Receive(ctx, "alice-inbox", 1, time.Second)
		if err != nil || len(msgs) != 1 || msgs[0].ID != id {
			t.Fatalf("round %d: %v %v", round, err, msgs)
		}
	}
	// Deleting ends the cycle.
	f.sqs.Delete(f.vctx(), "alice-inbox", id)
	ctx := f.vctx()
	ctx.Cursor.Advance(100 * DefaultVisibility)
	if msgs, _ := f.sqs.Receive(ctx, "alice-inbox", 1, time.Second); len(msgs) != 0 {
		t.Fatal("deleted message redelivered")
	}
}

func TestDeadLetterRedrive(t *testing.T) {
	f := newFixture(t)
	if err := f.sqs.CreateQueue("alice-dlq"); err != nil {
		t.Fatal(err)
	}
	f.iam.PutRole(&iam.Role{
		Name: "ops",
		Policies: []iam.Policy{{
			Name:       "all-queues",
			Statements: []iam.Statement{iam.AllowStatement([]string{"sqs:*"}, []string{"queue/*"})},
		}},
	})
	opsCtx := func(at time.Duration) *sim.Context {
		c := &sim.Context{Principal: "ops", Cursor: sim.NewCursor(clock.Epoch)}
		c.Cursor.Advance(at)
		return c
	}

	// Policy validation.
	if err := f.sqs.SetRedrivePolicy("alice-inbox", "alice-dlq", 0); err == nil {
		t.Fatal("zero maxReceives accepted")
	}
	if err := f.sqs.SetRedrivePolicy("ghost", "alice-dlq", 2); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("unknown queue: %v", err)
	}
	if err := f.sqs.SetRedrivePolicy("alice-inbox", "ghost", 2); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("unknown dlq: %v", err)
	}
	if err := f.sqs.SetRedrivePolicy("alice-inbox", "alice-dlq", 2); err != nil {
		t.Fatal(err)
	}

	// A poison message: received twice, never deleted.
	if _, err := f.sqs.Send(opsCtx(0), "alice-inbox", []byte("poison")); err != nil {
		t.Fatal(err)
	}
	gap := DefaultVisibility + time.Minute
	for round := 1; round <= 2; round++ {
		msgs, err := f.sqs.Receive(opsCtx(time.Duration(round)*gap), "alice-inbox", 1, time.Second)
		if err != nil || len(msgs) != 1 {
			t.Fatalf("round %d: %v %d msgs", round, err, len(msgs))
		}
	}
	// Third attempt: the message has moved to the DLQ.
	msgs, err := f.sqs.Receive(opsCtx(3*gap), "alice-inbox", 1, time.Second)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("poison still delivered: %v %d", err, len(msgs))
	}
	dead, err := f.sqs.Receive(opsCtx(3*gap), "alice-dlq", 1, time.Second)
	if err != nil || len(dead) != 1 || string(dead[0].Body) != "poison" {
		t.Fatalf("dlq: %v %v", err, dead)
	}

	// Healthy messages (deleted after receipt) never redrive.
	id, _ := f.sqs.Send(opsCtx(4*gap), "alice-inbox", []byte("healthy"))
	got, _ := f.sqs.Receive(opsCtx(4*gap+time.Minute), "alice-inbox", 1, time.Second)
	if len(got) != 1 {
		t.Fatal("healthy message not delivered")
	}
	f.sqs.Delete(opsCtx(4*gap+2*time.Minute), "alice-inbox", id)
	if f.sqs.Len("alice-dlq") != 1 {
		t.Fatalf("dlq grew unexpectedly: %d", f.sqs.Len("alice-dlq"))
	}
}
