// Package sqs simulates the queue service the chat prototype uses for
// message delivery. The paper's §6.2 design: "We implement long polling
// by having the serverless function post encrypted messages to Amazon's
// Simple Queue Service, which the client then long polls" with "the
// maximum 20 second poll interval".
//
// The simulator supports both execution modes used in this repo:
//
//   - virtual-time flows (ctx.Cursor set): Receive resolves analytically
//     against the flow's timeline, so a 20-second long poll costs no
//     real time;
//   - wall-clock flows (ctx.Cursor nil): Receive genuinely blocks until
//     a message arrives or the wait expires, for the runnable examples
//     that drive concurrent goroutine clients.
package sqs

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

func init() {
	plane.Register(
		plane.Op{Service: "sqs", Method: "Send", Action: ActionSend},
		plane.Op{Service: "sqs", Method: "Receive", Action: ActionReceive},
		plane.Op{Service: "sqs", Method: "Delete", Action: ActionDelete},
	)
}

// MaxWait is SQS's maximum long-poll interval.
const MaxWait = 20 * time.Second

// DefaultVisibility is the default visibility timeout applied to
// received messages.
const DefaultVisibility = 30 * time.Second

// Actions checked against IAM.
const (
	ActionSend    = "sqs:SendMessage"
	ActionReceive = "sqs:ReceiveMessage"
	ActionDelete  = "sqs:DeleteMessage"
)

// Errors returned by the service.
var (
	ErrNoSuchQueue = errors.New("sqs: no such queue")
	ErrQueueExists = errors.New("sqs: queue already exists")
)

// Message is a queued message as seen by a receiver.
type Message struct {
	ID   string
	Body []byte
	// Sent is the simulated instant the message entered the queue.
	Sent time.Time
}

type message struct {
	id        string
	body      []byte
	sent      time.Time
	visibleAt time.Time // in-flight until this instant
	receives  int
}

type queue struct {
	msgs   []*message
	notify chan struct{}
	// Redrive policy: after maxReceives deliveries without deletion a
	// message moves to the dead-letter queue instead of reappearing.
	dlq         string
	maxReceives int
}

// Service is the simulated queue service. It is safe for concurrent use.
type Service struct {
	pl    *plane.Plane
	model *netsim.Model // delivery-hop sampling inside the poll
	clk   clock.Clock

	mu     sync.Mutex
	queues map[string]*queue
	nextID int64
}

// New returns a queue service wired to IAM, the meter, the network
// model and a clock.
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		pl:     plane.New(iamSvc, meter, model),
		model:  model,
		clk:    clk,
		queues: make(map[string]*queue),
	}
}

// Plane exposes the service's request plane so wiring code can attach
// interceptors around every op.
func (s *Service) Plane() *plane.Plane { return s.pl }

// call builds the plane descriptor for one queue API call.
func call(action, name string) *plane.Call {
	return &plane.Call{
		Service:     "sqs",
		Op:          action,
		Action:      action,
		Resource:    Resource(name),
		Annotations: []trace.Annotation{{Key: "queue", Value: name}},
		Usage:       []pricing.Usage{{Kind: pricing.SQSRequests, Quantity: 1}},
	}
}

// Resource returns the IAM resource string for a queue.
func Resource(name string) string { return "queue/" + name }

// SetRedrivePolicy routes messages that have been received maxReceives
// times without deletion to the dead-letter queue — how a DIY
// deployment quarantines poison messages (e.g. a command no device
// ever acknowledges) instead of redelivering them forever.
func (s *Service) SetRedrivePolicy(name, dlqName string, maxReceives int) error {
	if maxReceives <= 0 {
		return errors.New("sqs: maxReceives must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
	}
	if _, ok := s.queues[dlqName]; !ok {
		return fmt.Errorf("sqs: dead-letter %q: %w", dlqName, ErrNoSuchQueue)
	}
	q.dlq = dlqName
	q.maxReceives = maxReceives
	return nil
}

// redriveLocked moves a poison message to the queue's DLQ. Caller
// holds the service lock.
func (s *Service) redriveLocked(q *queue, idx int) {
	m := q.msgs[idx]
	q.msgs = append(q.msgs[:idx], q.msgs[idx+1:]...)
	dq, ok := s.queues[q.dlq]
	if !ok {
		return // DLQ deleted since configuration; drop the message
	}
	m.receives = 0
	m.visibleAt = time.Time{}
	dq.msgs = append(dq.msgs, m)
	close(dq.notify)
	dq.notify = make(chan struct{})
}

// CreateQueue provisions an empty queue.
func (s *Service) CreateQueue(name string) error {
	if name == "" {
		return errors.New("sqs: queue name must be non-empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; ok {
		return fmt.Errorf("sqs: %q: %w", name, ErrQueueExists)
	}
	s.queues[name] = &queue{notify: make(chan struct{})}
	return nil
}

// DeleteQueue removes a queue and its messages.
func (s *Service) DeleteQueue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
	}
	close(q.notify) // release any wall-clock waiters
	delete(s.queues, name)
	return nil
}

// QueueExists reports whether the named queue exists.
func (s *Service) QueueExists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.queues[name]
	return ok
}

// Len reports how many messages are currently queued (including
// in-flight ones).
func (s *Service) Len(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return 0
	}
	return len(q.msgs)
}

// Send enqueues a message. The message becomes visible at the sender's
// current simulated instant plus the queue-delivery latency.
func (s *Service) Send(ctx *sim.Context, name string, body []byte) (string, error) {
	c := call(ActionSend, name)
	c.Annotations = append(c.Annotations, trace.Annotation{Key: "bytes", Value: strconv.Itoa(len(body))})
	c.Latency = &plane.Latency{Hop: netsim.HopSQSSend}
	var id string
	err := s.pl.Do(ctx, c, func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		q, ok := s.queues[name]
		if !ok {
			return fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
		}
		s.nextID++
		id = "m-" + strconv.FormatInt(s.nextID, 10)
		q.msgs = append(q.msgs, &message{
			id:   id,
			body: append([]byte(nil), body...),
			sent: s.instant(ctx),
		})
		// Wake wall-clock long pollers.
		close(q.notify)
		q.notify = make(chan struct{})
		return nil
	})
	if err != nil {
		return "", err
	}
	return id, nil
}

// Receive long-polls the queue for up to wait, returning at most max
// messages. Received messages become invisible to other receivers for
// DefaultVisibility; they must be deleted once processed or they will
// reappear (at-least-once delivery).
func (s *Service) Receive(ctx *sim.Context, name string, max int, wait time.Duration) ([]Message, error) {
	c := call(ActionReceive, name)
	c.Latency = &plane.Latency{Hop: netsim.HopSQSPoll}
	var msgs []Message
	err := s.pl.Do(ctx, c, func(req *plane.Request) error {
		if max <= 0 {
			max = 1
		}
		if wait < 0 {
			wait = 0
		}
		if wait > MaxWait {
			wait = MaxWait
		}
		var rerr error
		if ctx != nil && ctx.Cursor != nil {
			msgs, rerr = s.receiveVirtual(ctx, name, max, wait)
		} else {
			msgs, rerr = s.receiveBlocking(ctx, name, max, wait)
		}
		req.Span.Annotate("messages", strconv.Itoa(len(msgs)))
		return rerr
	})
	return msgs, err
}

// receiveVirtual resolves the long poll on the flow's virtual timeline:
// if a message is (or becomes) visible within the wait window, the
// cursor advances to the delivery instant; otherwise it advances by the
// full wait.
func (s *Service) receiveVirtual(ctx *sim.Context, name string, max int, wait time.Duration) ([]Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return nil, fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
	}
	pollStart := ctx.Cursor.Now()
	deadline := pollStart.Add(wait)

	// Redrive poison messages before delivery.
	if q.dlq != "" {
		for i := 0; i < len(q.msgs); {
			if q.msgs[i].receives >= q.maxReceives && !q.msgs[i].visibleAt.After(pollStart) {
				s.redriveLocked(q, i)
				continue
			}
			i++
		}
	}

	var got []Message
	var deliveredAt time.Time
	for _, m := range q.msgs {
		if len(got) >= max {
			break
		}
		// A message is receivable if it is visible (not in flight) and
		// exists by the poll deadline.
		avail := m.sent
		if m.visibleAt.After(avail) {
			avail = m.visibleAt
		}
		if avail.After(deadline) {
			continue
		}
		if avail.After(deliveredAt) {
			deliveredAt = avail
		}
		got = append(got, Message{ID: m.id, Body: append([]byte(nil), m.body...), Sent: m.sent})
	}
	if len(got) == 0 {
		ctx.Cursor.AdvanceTo(deadline)
		return nil, nil
	}
	// The poll completes when the latest delivered message arrived
	// (never earlier than the poll start) plus delivery latency.
	ctx.Cursor.AdvanceTo(deliveredAt)
	ctx.Cursor.Advance(s.sample(netsim.HopSQSDeliver))
	// Mark in-flight.
	invisibleUntil := ctx.Cursor.Now().Add(DefaultVisibility)
	for _, gm := range got {
		for _, m := range q.msgs {
			if m.id == gm.ID {
				m.visibleAt = invisibleUntil
				m.receives++
			}
		}
	}
	return got, nil
}

// receiveBlocking genuinely blocks until a message arrives or the wait
// expires. All time flows through the injected clock: deadlines are
// computed on s.clk's timeline and the poll parks on clock.After, so a
// replay driven by a *clock.Virtual stays on the virtual timeline
// (Advance releases the poll) instead of silently consuming real time.
func (s *Service) receiveBlocking(ctx *sim.Context, name string, max int, wait time.Duration) ([]Message, error) {
	deadline := s.clk.Now().Add(wait)
	for {
		s.mu.Lock()
		q, ok := s.queues[name]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
		}
		now := s.clk.Now()
		if q.dlq != "" {
			for i := 0; i < len(q.msgs); {
				if q.msgs[i].receives >= q.maxReceives && !q.msgs[i].visibleAt.After(now) {
					s.redriveLocked(q, i)
					continue
				}
				i++
			}
		}
		var got []Message
		for _, m := range q.msgs {
			if len(got) >= max {
				break
			}
			if m.visibleAt.After(now) {
				continue
			}
			m.visibleAt = now.Add(DefaultVisibility)
			m.receives++
			got = append(got, Message{ID: m.id, Body: append([]byte(nil), m.body...), Sent: m.sent})
		}
		notify := q.notify
		s.mu.Unlock()
		if len(got) > 0 || wait == 0 {
			return got, nil
		}
		remaining := deadline.Sub(now)
		if remaining <= 0 {
			return nil, nil
		}
		select {
		case <-notify:
		case <-clock.After(s.clk, remaining):
			return nil, nil
		}
	}
}

// Delete removes a received message by id. Deleting an unknown id is a
// no-op, matching SQS semantics.
func (s *Service) Delete(ctx *sim.Context, name, id string) error {
	return s.pl.Do(ctx, call(ActionDelete, name), func(*plane.Request) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		q, ok := s.queues[name]
		if !ok {
			return fmt.Errorf("sqs: %q: %w", name, ErrNoSuchQueue)
		}
		for i, m := range q.msgs {
			if m.id == id {
				q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
				break
			}
		}
		return nil
	})
}

func (s *Service) sample(h netsim.Hop) time.Duration {
	if s.model == nil {
		return 0
	}
	return s.model.Sample(h)
}

// instant reports the caller's current simulated time, falling back to
// the service clock for wall-mode callers.
func (s *Service) instant(ctx *sim.Context) time.Time {
	if ctx != nil && ctx.Cursor != nil {
		return ctx.Cursor.Now()
	}
	return s.clk.Now()
}
