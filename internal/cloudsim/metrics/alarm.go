package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the CloudWatch-style alarm state machine. An alarm
// watches one windowed statistic of one series, evaluates it over a
// fixed period grid anchored at the alarm's creation instant, and
// transitions between OK, ALARM, and INSUFFICIENT_DATA when the last
// EvalPeriods datapoints agree. Evaluation is driven explicitly
// (Service.EvaluateAlarms with a clock reading) rather than by a
// background goroutine, so identically-seeded simulations produce
// bit-identical transition logs — scripts/check.sh diffs two runs.

// AlarmState is an alarm's current state.
type AlarmState string

const (
	StateOK           AlarmState = "OK"
	StateAlarm        AlarmState = "ALARM"
	StateInsufficient AlarmState = "INSUFFICIENT_DATA"
)

// Stat selects the windowed statistic an alarm evaluates.
type Stat string

const (
	StatCount Stat = "count"
	StatSum   Stat = "sum"
	StatAvg   Stat = "avg"
	StatMin   Stat = "min"
	StatMax   Stat = "max"
)

// Comparison relates the evaluated statistic to the threshold; the
// datapoint breaches when the relation holds.
type Comparison string

const (
	GreaterThanThreshold          Comparison = ">"
	GreaterThanOrEqualToThreshold Comparison = ">="
	LessThanThreshold             Comparison = "<"
	LessThanOrEqualToThreshold    Comparison = "<="
)

// MissingPolicy says how an evaluation period with no samples counts.
type MissingPolicy string

const (
	// MissingMissing (the default) counts the period as missing data:
	// EvalPeriods consecutive empty periods transition the alarm to
	// INSUFFICIENT_DATA; a mix of empty and sampled periods leaves the
	// state unchanged.
	MissingMissing MissingPolicy = "missing"
	// MissingNotBreaching counts an empty period as within threshold.
	MissingNotBreaching MissingPolicy = "notBreaching"
	// MissingBreaching counts an empty period as breaching.
	MissingBreaching MissingPolicy = "breaching"
)

// AlarmConfig describes one alarm.
type AlarmConfig struct {
	// Name identifies the alarm; unique per service.
	Name string
	// Namespace and Metric select the watched series. Metric must be a
	// registered name (see names.go).
	Namespace string
	Metric    string
	// Stat is the windowed statistic to evaluate.
	Stat Stat
	// Period is the width of one evaluation window; the grid of period
	// boundaries is anchored at the alarm's creation instant.
	Period time.Duration
	// EvalPeriods is how many consecutive agreeing datapoints it takes
	// to transition (CloudWatch's "datapoints to alarm", with M == N).
	EvalPeriods int
	// Comparison and Threshold define when a datapoint breaches.
	Comparison Comparison
	Threshold  float64
	// Missing says how empty periods count; zero value means
	// MissingMissing.
	Missing MissingPolicy
}

// Transition is one recorded state change.
type Transition struct {
	At     time.Time
	Alarm  string
	From   AlarmState
	To     AlarmState
	Reason string
}

func (t Transition) String() string {
	return fmt.Sprintf("%s %s %s -> %s: %s",
		t.At.UTC().Format(time.RFC3339), t.Alarm, t.From, t.To, t.Reason)
}

// Alarm is one installed alarm. All state is guarded by mu; evaluation
// happens only inside Service.EvaluateAlarms.
type Alarm struct {
	svc    *Service
	cfg    AlarmConfig
	action func(Transition)

	mu          sync.Mutex
	state       AlarmState
	next        time.Time // boundary ending the next unevaluated period
	recent      []string  // last <=EvalPeriods datapoints: "ok"|"breaching"|"missing"
	transitions []Transition
}

// Config returns the alarm's configuration.
func (a *Alarm) Config() AlarmConfig { return a.cfg }

// State returns the alarm's current state.
func (a *Alarm) State() AlarmState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Transitions returns a copy of the alarm's state-change log in
// evaluation order.
func (a *Alarm) Transitions() []Transition {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Transition(nil), a.transitions...)
}

// PutAlarm installs an alarm. The period grid is anchored at `at`
// (the first evaluation covers [at, at+Period)); alarms start in
// INSUFFICIENT_DATA like CloudWatch's. The action hook, if non-nil, is
// called once per transition, after the transition is recorded and
// outside the alarm's lock.
func (s *Service) PutAlarm(cfg AlarmConfig, at time.Time, action func(Transition)) (*Alarm, error) {
	if cfg.Name == "" || cfg.Namespace == "" {
		return nil, fmt.Errorf("metrics: alarm needs a name and a namespace")
	}
	if !Registered(cfg.Metric) {
		return nil, fmt.Errorf("metrics: alarm %q watches unregistered metric %q", cfg.Name, cfg.Metric)
	}
	switch cfg.Stat {
	case StatCount, StatSum, StatAvg, StatMin, StatMax:
	default:
		return nil, fmt.Errorf("metrics: alarm %q: unknown stat %q", cfg.Name, cfg.Stat)
	}
	switch cfg.Comparison {
	case GreaterThanThreshold, GreaterThanOrEqualToThreshold, LessThanThreshold, LessThanOrEqualToThreshold:
	default:
		return nil, fmt.Errorf("metrics: alarm %q: unknown comparison %q", cfg.Name, cfg.Comparison)
	}
	if cfg.Period <= 0 || cfg.EvalPeriods < 1 {
		return nil, fmt.Errorf("metrics: alarm %q: period and evaluation periods must be positive", cfg.Name)
	}
	if cfg.Missing == "" {
		cfg.Missing = MissingMissing
	}
	a := &Alarm{
		svc:    s,
		cfg:    cfg,
		action: action,
		state:  StateInsufficient,
		next:   at.Add(cfg.Period),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, other := range s.alarms {
		if other.cfg.Name == cfg.Name {
			return nil, fmt.Errorf("metrics: alarm %q already exists", cfg.Name)
		}
	}
	s.alarms = append(s.alarms, a)
	return a, nil
}

// Alarms returns the installed alarms sorted by name.
func (s *Service) Alarms() []*Alarm {
	s.mu.Lock()
	out := append([]*Alarm(nil), s.alarms...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}

// AlarmCount reports how many alarms are installed — what CloudWatch
// bills by.
func (s *Service) AlarmCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.alarms)
}

// EvaluateAlarms catches every alarm up to now: each period that has
// fully elapsed since the last evaluation is evaluated in order, so a
// single call after a long simulated stretch replays the whole grid
// deterministically. Transitions fire their action hooks in evaluation
// order.
func (s *Service) EvaluateAlarms(now time.Time) {
	for _, a := range s.Alarms() {
		var fired []Transition
		a.mu.Lock()
		for !a.next.After(now) {
			if t, ok := a.step(a.next); ok {
				fired = append(fired, t)
			}
			a.next = a.next.Add(a.cfg.Period)
		}
		a.mu.Unlock()
		if a.action != nil {
			for _, t := range fired {
				a.action(t)
			}
		}
	}
}

// step evaluates the period ending at boundary `end` and returns the
// transition if one fired. Called with a.mu held.
func (a *Alarm) step(end time.Time) (Transition, bool) {
	cfg := a.cfg
	from := end.Add(-cfg.Period)
	to := end.Add(-time.Nanosecond) // stats windows are inclusive; periods are [from, end)
	n := a.svc.Count(cfg.Namespace, cfg.Metric, from, to)

	kind := "missing"
	var val float64
	if n == 0 {
		switch cfg.Missing {
		case MissingNotBreaching:
			kind = "ok"
		case MissingBreaching:
			kind = "breaching"
		}
	} else {
		switch cfg.Stat {
		case StatCount:
			val = float64(n)
		case StatSum:
			val = a.svc.Sum(cfg.Namespace, cfg.Metric, from, to)
		case StatAvg:
			val = a.svc.Avg(cfg.Namespace, cfg.Metric, from, to)
		case StatMin:
			val = a.svc.Min(cfg.Namespace, cfg.Metric, from, to)
		case StatMax:
			val = a.svc.Max(cfg.Namespace, cfg.Metric, from, to)
		}
		if breaches(val, cfg.Comparison, cfg.Threshold) {
			kind = "breaching"
		} else {
			kind = "ok"
		}
	}

	a.recent = append(a.recent, kind)
	if len(a.recent) > cfg.EvalPeriods {
		a.recent = a.recent[len(a.recent)-cfg.EvalPeriods:]
	}
	if len(a.recent) < cfg.EvalPeriods {
		return Transition{}, false // still warming up; stays INSUFFICIENT_DATA
	}

	next := a.state
	switch {
	case allKind(a.recent, "breaching"):
		next = StateAlarm
	case allKind(a.recent, "ok"):
		next = StateOK
	case allKind(a.recent, "missing"):
		next = StateInsufficient
		// A mix leaves the state unchanged: with M==N semantics the
		// last EvalPeriods datapoints must agree to move.
	}
	if next == a.state {
		return Transition{}, false
	}
	reason := fmt.Sprintf("no data for %d period(s)", cfg.EvalPeriods)
	if kind != "missing" {
		reason = fmt.Sprintf("%s(%s/%s) = %g %s %g for %d period(s)",
			cfg.Stat, cfg.Namespace, cfg.Metric, val, cfg.Comparison, cfg.Threshold, cfg.EvalPeriods)
		if next == StateOK {
			reason = fmt.Sprintf("%s(%s/%s) = %g within threshold %g for %d period(s)",
				cfg.Stat, cfg.Namespace, cfg.Metric, val, cfg.Threshold, cfg.EvalPeriods)
		}
	}
	t := Transition{At: end, Alarm: cfg.Name, From: a.state, To: next, Reason: reason}
	a.state = next
	a.transitions = append(a.transitions, t)
	return t, true
}

func breaches(v float64, cmp Comparison, threshold float64) bool {
	switch cmp {
	case GreaterThanThreshold:
		return v > threshold
	case GreaterThanOrEqualToThreshold:
		return v >= threshold
	case LessThanThreshold:
		return v < threshold
	case LessThanOrEqualToThreshold:
		return v <= threshold
	}
	return false
}

func allKind(kinds []string, want string) bool {
	for _, k := range kinds {
		if k != want {
			return false
		}
	}
	return len(kinds) > 0
}
