package metrics

import "sync"

// Fleet-scale allocation recycling. A fleet run builds and discards
// one Service per account — tens of thousands of 16 KiB column chunks
// and pairs of batch staging buffers, each zeroed by the allocator and
// scanned into cache just to hold a few dozen samples. The pools below
// recycle both across accounts. Reuse is safe without clearing: every
// read of chunk columns is bounded by the owning series' sample count
// (sx.n), which starts at zero for a fresh series, and batch buffers
// are always appended from length zero — stale bytes beyond the
// high-water mark are never observed, so replay identity is untouched
// (the telemetry-on ledger parity test runs entirely on pooled
// storage).

// chunkPool recycles column chunks across Services. A checkout is
// owned by exactly one series on one account's store; no sim state
// survives the round trip.
var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// newChunk draws a (possibly dirty — see above) chunk from the pool.
func newChunk() *chunk { return chunkPool.Get().(*chunk) }

// sampleBufPool recycles Batch staging buffers (batchCap-sized sample
// slices), pooled as pointers so the slice header itself does not
// allocate on the way in.
var sampleBufPool = sync.Pool{New: func() any {
	s := make([]sample, 0, batchCap)
	return &s
}}

func newSampleBuf() []sample  { return (*(sampleBufPool.Get().(*[]sample)))[:0] }
func putSampleBuf(s []sample) { s = s[:0]; sampleBufPool.Put(&s) }

// Recycle returns the service's storage — every series' chunks and
// every batch's staging buffers — to the process-wide pools and leaves
// the service empty. Callers that are done with a short-lived store
// (the fleet engine, once an account's series are reduced) call it
// instead of leaving the chunks to the garbage collector; the service
// must not be used afterwards except to be dropped.
func (s *Service) Recycle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sx := range s.series {
		for _, c := range sx.chunks {
			chunkPool.Put(c)
		}
		sx.chunks = nil
		sx.n = 0
	}
	s.series = nil
	s.index = nil
	for _, b := range s.batches {
		b.mu.Lock()
		if b.buf != nil {
			putSampleBuf(b.buf)
			b.buf = nil
		}
		if b.spare != nil {
			putSampleBuf(b.spare)
			b.spare = nil
		}
		b.mu.Unlock()
	}
	s.batches = nil
	s.alarms = nil
}
