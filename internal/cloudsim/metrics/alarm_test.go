package metrics

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pricing"
)

func latencyAlarm(period time.Duration, evalPeriods int, threshold float64) AlarmConfig {
	return AlarmConfig{
		Name:        "latency-high",
		Namespace:   "lambda/chat-fn",
		Metric:      MetricPlaneLatencyMs,
		Stat:        StatAvg,
		Period:      period,
		EvalPeriods: evalPeriods,
		Comparison:  GreaterThanThreshold,
		Threshold:   threshold,
	}
}

func TestAlarmLifecycle(t *testing.T) {
	s := New()
	var fired []Transition
	a, err := s.PutAlarm(latencyAlarm(time.Minute, 2, 100), t0, func(tr Transition) {
		fired = append(fired, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.State() != StateInsufficient {
		t.Fatalf("initial state = %s", a.State())
	}

	// Two healthy periods -> OK.
	s.Record("lambda/chat-fn", MetricPlaneLatencyMs, t0.Add(30*time.Second), 40)
	s.Record("lambda/chat-fn", MetricPlaneLatencyMs, t0.Add(90*time.Second), 60)
	s.EvaluateAlarms(t0.Add(2 * time.Minute))
	if a.State() != StateOK {
		t.Fatalf("after healthy periods state = %s", a.State())
	}

	// One breaching period is not enough with EvalPeriods=2...
	s.Record("lambda/chat-fn", MetricPlaneLatencyMs, t0.Add(150*time.Second), 500)
	s.EvaluateAlarms(t0.Add(3 * time.Minute))
	if a.State() != StateOK {
		t.Fatalf("after one breach state = %s", a.State())
	}
	// ...two consecutive are.
	s.Record("lambda/chat-fn", MetricPlaneLatencyMs, t0.Add(210*time.Second), 400)
	s.EvaluateAlarms(t0.Add(4 * time.Minute))
	if a.State() != StateAlarm {
		t.Fatalf("after two breaches state = %s", a.State())
	}

	// Default missing policy: two empty periods -> INSUFFICIENT_DATA.
	s.EvaluateAlarms(t0.Add(6 * time.Minute))
	if a.State() != StateInsufficient {
		t.Fatalf("after missing data state = %s", a.State())
	}

	trs := a.Transitions()
	if len(trs) != 3 || len(fired) != 3 {
		t.Fatalf("transitions = %d, fired = %d, want 3/3", len(trs), len(fired))
	}
	want := []struct{ from, to AlarmState }{
		{StateInsufficient, StateOK},
		{StateOK, StateAlarm},
		{StateAlarm, StateInsufficient},
	}
	for i, w := range want {
		if trs[i].From != w.from || trs[i].To != w.to {
			t.Errorf("transition %d = %s -> %s, want %s -> %s", i, trs[i].From, trs[i].To, w.from, w.to)
		}
	}
}

// A single EvaluateAlarms call after a long simulated stretch must
// replay every elapsed period in order — the catch-up produces the
// same log as per-period evaluation.
func TestAlarmCatchUpEvaluation(t *testing.T) {
	record := func(s *Service) {
		for i := 0; i < 10; i++ {
			v := 10.0
			if i >= 4 && i <= 6 {
				v = 900 // minutes 4..6 breach
			}
			s.Record("lambda/chat-fn", MetricPlaneLatencyMs, t0.Add(time.Duration(i)*time.Minute+30*time.Second), v)
		}
	}

	stepwise := New()
	record(stepwise)
	aStep, _ := stepwise.PutAlarm(latencyAlarm(time.Minute, 2, 100), t0, nil)
	for i := 1; i <= 10; i++ {
		stepwise.EvaluateAlarms(t0.Add(time.Duration(i) * time.Minute))
	}

	batch := New()
	record(batch)
	aBatch, _ := batch.PutAlarm(latencyAlarm(time.Minute, 2, 100), t0, nil)
	batch.EvaluateAlarms(t0.Add(10 * time.Minute))

	sLog, bLog := aStep.Transitions(), aBatch.Transitions()
	if len(sLog) != len(bLog) {
		t.Fatalf("stepwise %d transitions, batch %d", len(sLog), len(bLog))
	}
	for i := range sLog {
		if sLog[i].String() != bLog[i].String() {
			t.Errorf("transition %d differs:\n  stepwise: %s\n  batch:    %s", i, sLog[i], bLog[i])
		}
	}
	if aBatch.State() != StateOK {
		t.Fatalf("final state = %s", aBatch.State())
	}
}

func TestAlarmMissingPolicies(t *testing.T) {
	s := New()
	nb := latencyAlarm(time.Minute, 1, 100)
	nb.Name = "nb"
	nb.Missing = MissingNotBreaching
	br := latencyAlarm(time.Minute, 1, 100)
	br.Name = "br"
	br.Missing = MissingBreaching
	aNB, _ := s.PutAlarm(nb, t0, nil)
	aBR, _ := s.PutAlarm(br, t0, nil)
	s.EvaluateAlarms(t0.Add(time.Minute))
	if aNB.State() != StateOK {
		t.Errorf("notBreaching empty period -> %s, want OK", aNB.State())
	}
	if aBR.State() != StateAlarm {
		t.Errorf("breaching empty period -> %s, want ALARM", aBR.State())
	}
}

func TestAlarmComparisons(t *testing.T) {
	cases := []struct {
		cmp    Comparison
		v      float64
		breach bool
	}{
		{GreaterThanThreshold, 101, true},
		{GreaterThanThreshold, 100, false},
		{GreaterThanOrEqualToThreshold, 100, true},
		{GreaterThanOrEqualToThreshold, 99, false},
		{LessThanThreshold, 99, true},
		{LessThanThreshold, 100, false},
		{LessThanOrEqualToThreshold, 100, true},
		{LessThanOrEqualToThreshold, 101, false},
	}
	for i, c := range cases {
		s := New()
		cfg := latencyAlarm(time.Minute, 1, 100)
		cfg.Name = fmt.Sprintf("cmp-%d", i)
		cfg.Comparison = c.cmp
		a, err := s.PutAlarm(cfg, t0, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.Record(cfg.Namespace, cfg.Metric, t0.Add(30*time.Second), c.v)
		s.EvaluateAlarms(t0.Add(time.Minute))
		want := StateOK
		if c.breach {
			want = StateAlarm
		}
		if a.State() != want {
			t.Errorf("case %d: %g %s 100 -> %s, want %s", i, c.v, c.cmp, a.State(), want)
		}
	}
}

func TestAlarmValidation(t *testing.T) {
	s := New()
	bad := []AlarmConfig{
		{},
		{Name: "a", Namespace: "ns", Metric: "not.registered", Stat: StatAvg, Period: time.Minute, EvalPeriods: 1, Comparison: GreaterThanThreshold},
		{Name: "a", Namespace: "ns", Metric: MetricPlaneLatencyMs, Stat: "median", Period: time.Minute, EvalPeriods: 1, Comparison: GreaterThanThreshold},
		{Name: "a", Namespace: "ns", Metric: MetricPlaneLatencyMs, Stat: StatAvg, Period: time.Minute, EvalPeriods: 1, Comparison: "!="},
		{Name: "a", Namespace: "ns", Metric: MetricPlaneLatencyMs, Stat: StatAvg, Period: 0, EvalPeriods: 1, Comparison: GreaterThanThreshold},
		{Name: "a", Namespace: "ns", Metric: MetricPlaneLatencyMs, Stat: StatAvg, Period: time.Minute, EvalPeriods: 0, Comparison: GreaterThanThreshold},
	}
	for i, cfg := range bad {
		if _, err := s.PutAlarm(cfg, t0, nil); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := s.PutAlarm(latencyAlarm(time.Minute, 1, 100), t0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutAlarm(latencyAlarm(time.Minute, 1, 100), t0, nil); err == nil {
		t.Error("duplicate alarm name accepted")
	}
	if n := s.AlarmCount(); n != 1 {
		t.Fatalf("alarm count = %d", n)
	}
}

// The budget alarm fires within one period of the cumulative spend
// gauge crossing the budget, and quiet periods count as not breaching.
func TestBudgetAlarm(t *testing.T) {
	s := New()
	cfg := BudgetAlarm("monthly-budget", pricing.FromDollars(0.001), time.Hour)
	a, err := s.PutAlarm(cfg, t0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spend climbs 250 microdollars per hour.
	var cum int64
	for h := 0; h < 8; h++ {
		cum += 250_000
		s.Record(AccountNamespace, MetricAccountCostNanos, t0.Add(time.Duration(h)*time.Hour+time.Minute), float64(cum))
	}
	s.EvaluateAlarms(t0.Add(3 * time.Hour))
	if a.State() != StateOK {
		t.Fatalf("under budget state = %s", a.State())
	}
	s.EvaluateAlarms(t0.Add(8 * time.Hour))
	if a.State() != StateAlarm {
		t.Fatalf("over budget state = %s", a.State())
	}
	// The transition lands on the boundary ending the first period
	// whose Max exceeded $0.001 (cumulative hits 1,250,000 nano at h=4).
	trs := a.Transitions()
	last := trs[len(trs)-1]
	if !last.At.Equal(t0.Add(5 * time.Hour)) {
		t.Fatalf("alarm fired at %v", last.At)
	}
}

// The determinism gate: the same seeded scenario must produce a
// bit-identical transition log every run. scripts/check.sh runs this
// test twice and diffs the logged "transition:" lines across the two
// processes; in-process we also compare two runs directly.
func TestAlarmTransitionsDeterministic(t *testing.T) {
	scenario := func(seed int64) []string {
		s := New()
		cfgLat := latencyAlarm(time.Minute, 2, 120)
		cfgBudget := BudgetAlarm("budget", pricing.Money(2_000_000), 5*time.Minute)
		aLat, err := s.PutAlarm(cfgLat, t0, nil)
		if err != nil {
			t.Fatal(err)
		}
		aBudget, err := s.PutAlarm(cfgBudget, t0, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var cum float64
		for i := 0; i < 600; i++ {
			at := t0.Add(time.Duration(i) * 6 * time.Second)
			lat := 20 + 200*rng.Float64()
			s.Record("lambda/chat-fn", MetricPlaneLatencyMs, at, lat)
			cum += 1000 * rng.Float64()
			s.Record(AccountNamespace, MetricAccountCostNanos, at, cum)
			if i%50 == 0 {
				s.EvaluateAlarms(at)
			}
		}
		s.EvaluateAlarms(t0.Add(time.Hour + 5*time.Minute))
		var log []string
		for _, tr := range append(aLat.Transitions(), aBudget.Transitions()...) {
			log = append(log, tr.String())
		}
		return log
	}

	first := scenario(7)
	second := scenario(7)
	if len(first) == 0 {
		t.Fatal("scenario produced no transitions")
	}
	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("run divergence at %d:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
		t.Logf("transition: %s", first[i])
	}
}
