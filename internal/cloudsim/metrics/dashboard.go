package metrics

import (
	"fmt"
	"strings"
	"time"
)

// OpStat summarizes one plane namespace over a window — one row of the
// `diyctl metrics` top table.
type OpStat struct {
	Namespace string
	Requests  float64
	Errors    float64
	Denials   float64
	P50Ms     float64
	P99Ms     float64
	// CostNanos is the summed list price of the namespace's calls, in
	// nanodollars (divide by Requests for $/req).
	CostNanos float64
}

// TopTable aggregates the interceptor-published plane series into
// per-(service, op) rows, sorted by namespace. Namespaces without a
// plane.requests series (e.g. the account rollup or per-function
// lambda series) are skipped.
func (s *Service) TopTable(from, to time.Time) []OpStat {
	var rows []OpStat
	for _, ns := range s.Namespaces() {
		n := s.Count(ns, MetricPlaneRequests, from, to)
		if n == 0 {
			continue
		}
		rows = append(rows, OpStat{
			Namespace: ns,
			Requests:  float64(n),
			Errors:    s.Sum(ns, MetricPlaneErrors, from, to),
			Denials:   s.Sum(ns, MetricPlaneDenials, from, to),
			P50Ms:     s.Percentile(ns, MetricPlaneLatencyMs, from, to, 50),
			P99Ms:     s.Percentile(ns, MetricPlaneLatencyMs, from, to, 99),
			CostNanos: s.Sum(ns, MetricPlaneCostNanos, from, to),
		})
	}
	return rows
}

// Exposition renders every series' windowed count/sum/max in the
// Prometheus text format, one family per registered metric name with
// the namespace as a label:
//
//	plane_requests_count{ns="s3/s3:GetObject"} 42
//
// Output is sorted (namespace within metric) so it diffs cleanly
// between runs.
func (s *Service) Exposition(from, to time.Time) string {
	var sb strings.Builder
	for _, metric := range Names() {
		flat := strings.ReplaceAll(metric, ".", "_")
		wrote := false
		for _, ns := range s.Namespaces() {
			n := s.Count(ns, metric, from, to)
			if n == 0 {
				continue
			}
			if !wrote {
				fmt.Fprintf(&sb, "# TYPE %s summary\n", flat)
				wrote = true
			}
			esc := escapeLabel(ns)
			fmt.Fprintf(&sb, "%s_count{ns=\"%s\"} %d\n", flat, esc, n)
			fmt.Fprintf(&sb, "%s_sum{ns=\"%s\"} %g\n", flat, esc, s.Sum(ns, metric, from, to))
			fmt.Fprintf(&sb, "%s_max{ns=\"%s\"} %g\n", flat, esc, s.Max(ns, metric, from, to))
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: exactly backslash, double quote, and line feed get a
// backslash escape, everything else passes through verbatim. (Go's %q
// is close but not conformant — it escapes tabs, non-ASCII, and other
// control bytes that Prometheus expects raw.)
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
