package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBatchInvisibleToReads pins the batching contract: every read API
// forces a flush, so a batched store answers every query exactly like
// an unbatched one — no caller can observe staging.
func TestBatchInvisibleToReads(t *testing.T) {
	direct := New()
	batched := New()
	b := batched.NewBatch()
	h := batched.Handle("svc/op", MetricPlaneLatencyMs)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		v := rng.Float64() * 100
		direct.Record("svc/op", MetricPlaneLatencyMs, at, v)
		b.Add(h, at, v)
	}

	var zero time.Time
	if got, want := batched.Count("svc/op", MetricPlaneLatencyMs, zero, zero), direct.Count("svc/op", MetricPlaneLatencyMs, zero, zero); got != want {
		t.Fatalf("batched Count = %d, direct = %d", got, want)
	}
	for _, stat := range []struct {
		name string
		fn   func(*Service) float64
	}{
		{"Sum", func(s *Service) float64 { return s.Sum("svc/op", MetricPlaneLatencyMs, zero, zero) }},
		{"Min", func(s *Service) float64 { return s.Min("svc/op", MetricPlaneLatencyMs, zero, zero) }},
		{"Max", func(s *Service) float64 { return s.Max("svc/op", MetricPlaneLatencyMs, zero, zero) }},
		{"Avg", func(s *Service) float64 { return s.Avg("svc/op", MetricPlaneLatencyMs, zero, zero) }},
		{"P99", func(s *Service) float64 { return s.Percentile("svc/op", MetricPlaneLatencyMs, zero, zero, 99) }},
	} {
		if got, want := stat.fn(batched), stat.fn(direct); got != want {
			t.Errorf("batched %s = %v, direct = %v", stat.name, got, want)
		}
	}
}

// TestBatchSelfFlushAtCapacity proves a batch drains itself when the
// staging buffer fills, so an idle clock cannot grow pending samples
// without bound.
func TestBatchSelfFlushAtCapacity(t *testing.T) {
	s := New()
	b := s.NewBatch()
	h := s.Handle("svc/op", MetricPlaneRequests)
	for i := 0; i < batchCap*2; i++ {
		b.Add(h, t0.Add(time.Duration(i)*time.Millisecond), 1)
	}
	st := s.SelfStats()
	if st.Flushes == 0 {
		t.Fatalf("no self-flush after %d staged samples (cap %d)", batchCap*2, batchCap)
	}
	// SelfStats itself must not flush: the residue below capacity stays
	// pending until a tick or a read.
	if st.BatchedSamples == int64(batchCap*2) {
		t.Fatalf("SelfStats observed all %d samples drained; reading self-telemetry must not force a flush", batchCap*2)
	}
	s.FlushBatches()
	if got := s.SelfStats().BatchedSamples; got != int64(batchCap*2) {
		t.Fatalf("after explicit flush: %d samples drained, want %d", got, batchCap*2)
	}
}

// TestHandleInterningInvisible pins that interning a handle is free:
// until a sample lands, the series does not exist for listings,
// counts, or the inventory bill.
func TestHandleInterningInvisible(t *testing.T) {
	s := New()
	h := s.Handle("svc/op", MetricPlaneRequests)
	if got := s.SeriesCount(); got != 0 {
		t.Fatalf("SeriesCount = %d after interning only, want 0", got)
	}
	if got := s.Metrics("svc/op"); len(got) != 0 {
		t.Fatalf("Metrics listed %v for an unsampled series", got)
	}
	if got := s.Namespaces(); len(got) != 0 {
		t.Fatalf("Namespaces listed %v for an unsampled series", got)
	}
	s.NewBatch().Add(h, t0, 1)
	if got := s.SeriesCount(); got != 1 {
		t.Fatalf("SeriesCount = %d after first sample, want 1", got)
	}
	// Re-interning resolves to the same handle.
	if h2 := s.Handle("svc/op", MetricPlaneRequests); h2 != h {
		t.Fatalf("re-interning returned handle %d, want %d", h2, h)
	}
}

// TestBatchConcurrentPublishers drives many goroutines through one
// service's batches while a reader forces flushes, checking the final
// count. Run under -race this is also the data-race gate for the
// staging path.
func TestBatchConcurrentPublishers(t *testing.T) {
	s := New()
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := s.NewBatch()
			h := s.Handle("svc/op", MetricPlaneRequests)
			for i := 0; i < per; i++ {
				b.Add(h, t0.Add(time.Duration(g*per+i)*time.Millisecond), 1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.SeriesCount() // forces a flush under the hood
			}
		}
	}()
	wg.Wait()
	close(done)
	var zero time.Time
	if got := s.Count("svc/op", MetricPlaneRequests, zero, zero); got != goroutines*per {
		t.Fatalf("Count = %d after concurrent publication, want %d", got, goroutines*per)
	}
}

// TestChunkedStatsAgainstBruteForce crosses chunk and bucket
// boundaries (several thousand samples, shuffled arrival order) and
// compares every windowed statistic against a straight recomputation,
// so the chunked columns, the out-of-order shift path, and the bucket
// pre-aggregation all agree with the obvious implementation.
func TestChunkedStatsAgainstBruteForce(t *testing.T) {
	s := New()
	const n = 3 * chunkLen // three full chunks and change
	rng := rand.New(rand.NewSource(42))
	type dat struct {
		at time.Time
		v  float64
	}
	all := make([]dat, n)
	for i := range all {
		all[i] = dat{at: t0.Add(time.Duration(i) * time.Second), v: rng.Float64() * 1000}
	}
	// Publish in shuffled order: exercises the insert-shift path across
	// chunk boundaries and the bucket invalidation it triggers.
	perm := rng.Perm(n)
	for _, i := range perm {
		s.Record("svc/op", MetricPlaneLatencyMs, all[i].at, all[i].v)
	}

	windows := []struct{ lo, hi int }{
		{0, n},                           // everything
		{0, 10},                          // inside the first bucket
		{bucketSize - 3, bucketSize + 3}, // straddling a bucket edge
		{chunkLen - 5, chunkLen + 5},     // straddling a chunk edge
		{chunkLen, 2 * chunkLen},         // exactly one whole chunk
		{17, n - 17},                     // partial edges both sides
	}
	for _, w := range windows {
		from, to := all[w.lo].at, all[w.hi-1].at
		var sum, min, max float64
		for i := w.lo; i < w.hi; i++ {
			v := all[i].v
			sum += v
			if i == w.lo || v < min {
				min = v
			}
			if i == w.lo || v > max {
				max = v
			}
		}
		if got := s.Count("svc/op", MetricPlaneLatencyMs, from, to); got != w.hi-w.lo {
			t.Errorf("window [%d,%d): Count = %d, want %d", w.lo, w.hi, got, w.hi-w.lo)
		}
		if got := s.Min("svc/op", MetricPlaneLatencyMs, from, to); got != min {
			t.Errorf("window [%d,%d): Min = %v, want %v", w.lo, w.hi, got, min)
		}
		if got := s.Max("svc/op", MetricPlaneLatencyMs, from, to); got != max {
			t.Errorf("window [%d,%d): Max = %v, want %v", w.lo, w.hi, got, max)
		}
		// Bucketed summation reorders float adds, so compare against the
		// in-order sum with a relative tolerance instead of bit equality.
		if got := s.Sum("svc/op", MetricPlaneLatencyMs, from, to); !closeEnough(got, sum) {
			t.Errorf("window [%d,%d): Sum = %v, want %v", w.lo, w.hi, got, sum)
		}
	}
}

func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}
