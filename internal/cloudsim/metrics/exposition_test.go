package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateExposition = flag.Bool("update-exposition-golden", false,
	"rewrite testdata/exposition.golden from current output")

// TestExpositionGolden pins the Prometheus text format byte for byte:
// the exposition is the scrape surface an external system would parse,
// so family naming, label quoting, value formatting, and sort order
// are all contract. Samples are hand-placed on the virtual timeline —
// any change to the rendering shows up as a golden diff.
func TestExpositionGolden(t *testing.T) {
	s := New()
	// Two plane namespaces plus a lambda function namespace, with
	// values chosen to exercise integer, fractional, and %g-notable
	// (large and sub-1) renderings.
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		s.Record("s3/s3:GetObject", MetricPlaneRequests, at, 1)
		s.Record("s3/s3:GetObject", MetricPlaneLatencyMs, at, 12.5+float64(i))
		s.Record("s3/s3:GetObject", MetricPlaneCostNanos, at, 400)
	}
	s.Record("kms/kms:Decrypt", MetricPlaneRequests, t0, 1)
	s.Record("kms/kms:Decrypt", MetricPlaneDenials, t0, 1)
	s.Record("kms/kms:Decrypt", MetricPlaneCostNanos, t0, 3000)
	s.Record("lambda/proto-chat", MetricLambdaRunMs, t0, 133.54)
	s.Record("lambda/proto-chat", MetricLambdaBilledMs, t0, 200)
	s.Record("lambda/proto-chat", MetricLambdaPeakMB, t0, 51)
	s.Record("lambda/proto-chat", MetricLambdaCold, t0, 0)
	s.Record(AccountNamespace, MetricAccountCostNanos, t0, 1200)
	s.Record(AccountNamespace, MetricAccountCostNanos, t0.Add(time.Minute), 4200)
	// Label values with the three characters the Prometheus text format
	// escapes (backslash, double quote, newline) — nothing stops an app
	// from naming a resource this way, and an unescaped scrape line is
	// unparseable.
	s.Record(`s3/s3:GetObject "quoted\weird`+"\n"+`name"`, MetricPlaneRequests, t0, 1)

	var zero time.Time
	got := s.Exposition(zero, zero)

	// Windowing is part of the surface too: a scrape of a window with
	// no samples is empty, not a page of zero-valued families.
	if empty := s.Exposition(t0.Add(time.Hour), t0.Add(2*time.Hour)); empty != "" {
		t.Errorf("empty-window exposition rendered %d bytes, want none", len(empty))
	}

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *updateExposition {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/cloudsim/metrics -update-exposition-golden`): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
	// Structural spot checks so a regenerated golden cannot silently
	// drop the families the dashboard reads.
	for _, line := range []string{
		`# TYPE plane_requests summary`,
		`plane_requests_count{ns="s3/s3:GetObject"} 3`,
		`plane_latency_ms_sum{ns="s3/s3:GetObject"} 40.5`,
		`plane_denials_count{ns="kms/kms:Decrypt"} 1`,
		`lambda_run_ms_max{ns="lambda/proto-chat"} 133.54`,
		`account_cost_nanodollars_max{ns="account"} 4200`,
		`plane_requests_count{ns="s3/s3:GetObject \"quoted\\weird\nname\""} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q", line)
		}
	}
}
