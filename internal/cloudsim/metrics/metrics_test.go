package metrics

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func seeded() *Service {
	s := New()
	for i, v := range []float64{120, 130, 134, 140, 400} {
		s.Record("chat-fn", "run-ms", t0.Add(time.Duration(i)*time.Minute), v)
	}
	return s
}

func TestCountSumMax(t *testing.T) {
	s := seeded()
	if got := s.Count("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 5 {
		t.Fatalf("count = %d", got)
	}
	if got := s.Sum("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 924 {
		t.Fatalf("sum = %v", got)
	}
	if got := s.Max("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 400 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Max("chat-fn", "absent", time.Time{}, time.Time{}); got != 0 {
		t.Fatalf("absent max = %v", got)
	}
}

func TestWindowing(t *testing.T) {
	s := seeded()
	// Only the middle three samples (minutes 1..3).
	from, to := t0.Add(time.Minute), t0.Add(3*time.Minute)
	if got := s.Count("chat-fn", "run-ms", from, to); got != 3 {
		t.Fatalf("windowed count = %d", got)
	}
	if got := s.Max("chat-fn", "run-ms", from, to); got != 140 {
		t.Fatalf("windowed max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	s := seeded()
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 50); got != 134 {
		t.Fatalf("p50 = %v, want 134", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 99); got != 400 {
		t.Fatalf("p99 = %v, want 400", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 0); got != 120 {
		t.Fatalf("p0 = %v, want 120", got)
	}
	if got := s.Percentile("none", "run-ms", time.Time{}, time.Time{}, 50); got != 0 {
		t.Fatalf("empty p50 = %v", got)
	}
}

// Nearest-rank percentile: rank ceil(p/100*n), so the p50 of an
// even-sized window is the n/2-th value, not the (n/2+1)-th, and the
// p100 is exactly the maximum.
func TestPercentileNearestRank(t *testing.T) {
	s := New()
	for i, v := range []float64{10, 20, 30, 40} {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Minute), v)
	}
	cases := []struct {
		p    int
		want float64
	}{
		{0, 10},   // clamped to rank 1
		{25, 10},  // ceil(0.25*4) = 1
		{50, 20},  // ceil(0.5*4) = 2 — the old idx=n*p/100 formula said 30
		{75, 30},  // ceil(0.75*4) = 3
		{90, 40},  // ceil(0.9*4) = 4
		{100, 40}, // rank n, the maximum
	}
	for _, c := range cases {
		if got := s.Percentile("ns", "m", time.Time{}, time.Time{}, c.p); got != c.want {
			t.Errorf("p%d = %v, want %v", c.p, got, c.want)
		}
	}
	one := New()
	one.Record("ns", "m", t0, 7)
	if got := one.Percentile("ns", "m", time.Time{}, time.Time{}, 50); got != 7 {
		t.Errorf("single-sample p50 = %v, want 7", got)
	}
}

// Max must not report 0 for a window whose samples are all negative
// (e.g. a clock-skew or error-delta gauge).
func TestMaxAllNegative(t *testing.T) {
	s := New()
	for i, v := range []float64{-30, -5, -12} {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Minute), v)
	}
	if got := s.Max("ns", "m", time.Time{}, time.Time{}); got != -5 {
		t.Fatalf("all-negative max = %v, want -5", got)
	}
}

// The window bounds must behave identically now that the from bound is
// binary-searched: inclusive on both ends, unbounded on zero times.
func TestWindowBounds(t *testing.T) {
	s := seeded()
	// Exactly-on-boundary samples are included.
	from, to := t0.Add(time.Minute), t0.Add(3*time.Minute)
	if got := s.Sum("chat-fn", "run-ms", from, to); got != 130+134+140 {
		t.Fatalf("inclusive window sum = %v", got)
	}
	// from after the last sample, and to before the first: empty.
	if got := s.Count("chat-fn", "run-ms", t0.Add(time.Hour), time.Time{}); got != 0 {
		t.Fatalf("late-from count = %d", got)
	}
	if got := s.Count("chat-fn", "run-ms", time.Time{}, t0.Add(-time.Minute)); got != 0 {
		t.Fatalf("early-to count = %d", got)
	}
	// Half-open bounds.
	if got := s.Count("chat-fn", "run-ms", t0.Add(4*time.Minute), time.Time{}); got != 1 {
		t.Fatalf("from-only count = %d", got)
	}
	if got := s.Count("chat-fn", "run-ms", time.Time{}, t0); got != 1 {
		t.Fatalf("to-only count = %d", got)
	}
}

// BenchmarkWindowNarrow is the regression benchmark for the window
// lookup: a narrow window over a long append-ordered series should
// cost O(log n + w), not O(n).
func BenchmarkWindowNarrow(b *testing.B) {
	s := New()
	const n = 100_000
	for i := 0; i < n; i++ {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	from := t0.Add((n - 50) * time.Second)
	to := t0.Add((n - 40) * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Count("ns", "m", from, to); got != 11 {
			b.Fatalf("count = %d", got)
		}
	}
}

func TestMetricsListing(t *testing.T) {
	s := seeded()
	s.Record("chat-fn", "billed-ms", t0, 200)
	s.Record("other-fn", "run-ms", t0, 1)
	got := s.Metrics("chat-fn")
	if len(got) != 2 || got[0] != "billed-ms" || got[1] != "run-ms" {
		t.Fatalf("metrics = %v", got)
	}
	if len(s.Metrics("ghost")) != 0 {
		t.Fatal("listing for unknown namespace")
	}
}

func TestConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Record("ns", "m", t0, float64(j))
				s.Percentile("ns", "m", time.Time{}, time.Time{}, 50)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Count("ns", "m", time.Time{}, time.Time{}); got != 1600 {
		t.Fatalf("count = %d", got)
	}
}
