package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func seeded() *Service {
	s := New()
	for i, v := range []float64{120, 130, 134, 140, 400} {
		s.Record("chat-fn", "run-ms", t0.Add(time.Duration(i)*time.Minute), v)
	}
	return s
}

func TestCountSumMax(t *testing.T) {
	s := seeded()
	if got := s.Count("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 5 {
		t.Fatalf("count = %d", got)
	}
	if got := s.Sum("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 924 {
		t.Fatalf("sum = %v", got)
	}
	if got := s.Max("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 400 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Max("chat-fn", "absent", time.Time{}, time.Time{}); got != 0 {
		t.Fatalf("absent max = %v", got)
	}
}

func TestWindowing(t *testing.T) {
	s := seeded()
	// Only the middle three samples (minutes 1..3).
	from, to := t0.Add(time.Minute), t0.Add(3*time.Minute)
	if got := s.Count("chat-fn", "run-ms", from, to); got != 3 {
		t.Fatalf("windowed count = %d", got)
	}
	if got := s.Max("chat-fn", "run-ms", from, to); got != 140 {
		t.Fatalf("windowed max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	s := seeded()
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 50); got != 134 {
		t.Fatalf("p50 = %v, want 134", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 99); got != 400 {
		t.Fatalf("p99 = %v, want 400", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 0); got != 120 {
		t.Fatalf("p0 = %v, want 120", got)
	}
	if got := s.Percentile("none", "run-ms", time.Time{}, time.Time{}, 50); got != 0 {
		t.Fatalf("empty p50 = %v", got)
	}
}

// Nearest-rank percentile: rank ceil(p/100*n), so the p50 of an
// even-sized window is the n/2-th value, not the (n/2+1)-th, and the
// p100 is exactly the maximum.
func TestPercentileNearestRank(t *testing.T) {
	s := New()
	for i, v := range []float64{10, 20, 30, 40} {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Minute), v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10},    // clamped to rank 1
		{25, 10},   // ceil(0.25*4) = 1
		{50, 20},   // ceil(0.5*4) = 2 — the old idx=n*p/100 formula said 30
		{75, 30},   // ceil(0.75*4) = 3
		{90, 40},   // ceil(0.9*4) = 4
		{99.9, 40}, // fractional p: ceil(0.999*4) = 4
		{100, 40},  // rank n, the maximum
	}
	for _, c := range cases {
		if got := s.Percentile("ns", "m", time.Time{}, time.Time{}, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	one := New()
	one.Record("ns", "m", t0, 7)
	if got := one.Percentile("ns", "m", time.Time{}, time.Time{}, 50); got != 7 {
		t.Errorf("single-sample p50 = %v, want 7", got)
	}
}

// NearestRank is the one shared rank formula (fleet stats reads its
// sorted samples through it too); pin the edge cases, in particular
// the float-noise one: 1000*99.9/100 evaluates to 999.0000000000001
// in IEEE 754, and a bare Ceil would skip past the true rank.
func TestNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 50, 0},        // empty: callers guard, but stay in range
		{1, 0, 0},         // clamped up to rank 1
		{1, 100, 0},       // single sample is every percentile
		{4, 50, 1},        // ceil(2) = rank 2
		{4, 50.1, 2},      // just past the boundary: rank 3
		{1000, 99.9, 998}, // exactly rank 999 despite float noise
		{1000, 100, 999},
		{10, 120, 9}, // out-of-range p clamps to rank n
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.p); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// Max must not report 0 for a window whose samples are all negative
// (e.g. a clock-skew or error-delta gauge).
func TestMaxAllNegative(t *testing.T) {
	s := New()
	for i, v := range []float64{-30, -5, -12} {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Minute), v)
	}
	if got := s.Max("ns", "m", time.Time{}, time.Time{}); got != -5 {
		t.Fatalf("all-negative max = %v, want -5", got)
	}
}

// The window bounds must behave identically now that the from bound is
// binary-searched: inclusive on both ends, unbounded on zero times.
func TestWindowBounds(t *testing.T) {
	s := seeded()
	// Exactly-on-boundary samples are included.
	from, to := t0.Add(time.Minute), t0.Add(3*time.Minute)
	if got := s.Sum("chat-fn", "run-ms", from, to); got != 130+134+140 {
		t.Fatalf("inclusive window sum = %v", got)
	}
	// from after the last sample, and to before the first: empty.
	if got := s.Count("chat-fn", "run-ms", t0.Add(time.Hour), time.Time{}); got != 0 {
		t.Fatalf("late-from count = %d", got)
	}
	if got := s.Count("chat-fn", "run-ms", time.Time{}, t0.Add(-time.Minute)); got != 0 {
		t.Fatalf("early-to count = %d", got)
	}
	// Half-open bounds.
	if got := s.Count("chat-fn", "run-ms", t0.Add(4*time.Minute), time.Time{}); got != 1 {
		t.Fatalf("from-only count = %d", got)
	}
	if got := s.Count("chat-fn", "run-ms", time.Time{}, t0); got != 1 {
		t.Fatalf("to-only count = %d", got)
	}
}

// BenchmarkWindowNarrow is the regression benchmark for the window
// lookup: a narrow window over a long append-ordered series should
// cost O(log n + w), not O(n).
func BenchmarkWindowNarrow(b *testing.B) {
	s := New()
	const n = 100_000
	for i := 0; i < n; i++ {
		s.Record("ns", "m", t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	from := t0.Add((n - 50) * time.Second)
	to := t0.Add((n - 40) * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Count("ns", "m", from, to); got != 11 {
			b.Fatalf("count = %d", got)
		}
	}
}

func TestMetricsListing(t *testing.T) {
	s := seeded()
	s.Record("chat-fn", "billed-ms", t0, 200)
	s.Record("other-fn", "run-ms", t0, 1)
	got := s.Metrics("chat-fn")
	if len(got) != 2 || got[0] != "billed-ms" || got[1] != "run-ms" {
		t.Fatalf("metrics = %v", got)
	}
	if len(s.Metrics("ghost")) != 0 {
		t.Fatal("listing for unknown namespace")
	}
}

// Regression: window binary-searches on timestamp order, but samples
// from concurrent request flows can arrive out of order — Record must
// insertion-sort them into place or every windowed stat silently lies.
func TestRecordOutOfOrder(t *testing.T) {
	s := New()
	// Publish in scrambled order, including a duplicate timestamp.
	mins := []int{3, 0, 4, 1, 4, 2}
	for _, m := range mins {
		s.Record("ns", "m", t0.Add(time.Duration(m)*time.Minute), float64(m))
	}
	// The window [1m, 3m] must see exactly minutes 1, 2, 3 regardless of
	// arrival order; before the fix the binary search skipped samples
	// stranded before an earlier-timestamped neighbour.
	if got := s.Count("ns", "m", t0.Add(time.Minute), t0.Add(3*time.Minute)); got != 3 {
		t.Fatalf("windowed count = %d, want 3", got)
	}
	if got := s.Sum("ns", "m", t0.Add(time.Minute), t0.Add(3*time.Minute)); got != 1+2+3 {
		t.Fatalf("windowed sum = %v, want 6", got)
	}
	// The full series must be sorted.
	all := s.window("ns", "m", time.Time{}, time.Time{})
	for i := 1; i < len(all); i++ {
		if all[i-1].At.After(all[i].At) {
			t.Fatalf("series out of order at %d: %v > %v", i, all[i-1].At, all[i].At)
		}
	}
	// Stability: equal timestamps keep arrival order (both minute-4
	// samples, first-recorded first). Both have value 4 here, so order
	// them by a second series with distinct values.
	s2 := New()
	s2.Record("ns", "m", t0, 1)
	s2.Record("ns", "m", t0.Add(time.Minute), 2)
	s2.Record("ns", "m", t0.Add(time.Minute), 3)
	got := s2.window("ns", "m", time.Time{}, time.Time{})
	if got[1].Value != 2 || got[2].Value != 3 {
		t.Fatalf("equal-timestamp order not stable: %v", got)
	}
}

// Property test: all five windowed statistics must agree with a
// brute-force reference over random series and random windows,
// including out-of-order recording.
func TestStatsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		s := New()
		n := 1 + rng.Intn(60)
		type sample struct {
			at time.Time
			v  float64
		}
		samples := make([]sample, n)
		for i := range samples {
			samples[i] = sample{
				at: t0.Add(time.Duration(rng.Intn(120)) * time.Second),
				v:  math.Round(rng.Float64()*200-50) / 2,
			}
			s.Record("ns", "m", samples[i].at, samples[i].v)
		}
		for w := 0; w < 10; w++ {
			from := t0.Add(time.Duration(rng.Intn(130)-5) * time.Second)
			to := from.Add(time.Duration(rng.Intn(90)) * time.Second)
			var in []float64
			for _, sm := range samples {
				if !sm.at.Before(from) && !sm.at.After(to) {
					in = append(in, sm.v)
				}
			}
			wantCount := len(in)
			var wantSum float64
			wantMin, wantMax := 0.0, 0.0
			if wantCount > 0 {
				wantMin, wantMax = in[0], in[0]
			}
			for _, v := range in {
				wantSum += v
				if v < wantMin {
					wantMin = v
				}
				if v > wantMax {
					wantMax = v
				}
			}
			wantAvg := 0.0
			if wantCount > 0 {
				wantAvg = wantSum / float64(wantCount)
			}
			if got := s.Count("ns", "m", from, to); got != wantCount {
				t.Fatalf("trial %d: count = %d, want %d", trial, got, wantCount)
			}
			if got := s.Sum("ns", "m", from, to); math.Abs(got-wantSum) > 1e-9 {
				t.Fatalf("trial %d: sum = %v, want %v", trial, got, wantSum)
			}
			if got := s.Min("ns", "m", from, to); got != wantMin {
				t.Fatalf("trial %d: min = %v, want %v", trial, got, wantMin)
			}
			if got := s.Max("ns", "m", from, to); got != wantMax {
				t.Fatalf("trial %d: max = %v, want %v", trial, got, wantMax)
			}
			if got := s.Avg("ns", "m", from, to); math.Abs(got-wantAvg) > 1e-9 {
				t.Fatalf("trial %d: avg = %v, want %v", trial, got, wantAvg)
			}
			// Percentiles against a sorted copy, every decile.
			if wantCount > 0 {
				sorted := append([]float64(nil), in...)
				sort.Float64s(sorted)
				for p := 0; p <= 100; p += 10 {
					rank := (p*wantCount + 99) / 100
					if rank < 1 {
						rank = 1
					}
					if got, want := s.Percentile("ns", "m", from, to, float64(p)), sorted[rank-1]; got != want {
						t.Fatalf("trial %d: p%d = %v, want %v", trial, p, got, want)
					}
				}
			}
		}
	}
}

// Every registered metric name must be well-formed and unique — the
// same contract the metricname analyzer enforces statically.
func TestRegistry(t *testing.T) {
	names := Names()
	seen := make(map[string]bool)
	for _, n := range names {
		if !ValidName(n) {
			t.Errorf("registered name %q is not lowercase dot-separated", n)
		}
		if seen[n] {
			t.Errorf("registered name %q is duplicated", n)
		}
		seen[n] = true
		if !Registered(n) {
			t.Errorf("Registered(%q) = false for a listed name", n)
		}
	}
	if Registered("plane.requets") {
		t.Error("typo'd name reported as registered")
	}
	for bad, why := range map[string]string{
		"Plane.Requests": "uppercase",
		"plane":          "no dot",
		"plane..req":     "empty segment",
		"plane.9req":     "segment starts with a digit",
		"plane.req-ms":   "dash",
	} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true (%s)", bad, why)
		}
	}
}

func TestNamespaces(t *testing.T) {
	s := seeded()
	s.Record("other-fn", "run-ms", t0, 1)
	got := s.Namespaces()
	if len(got) != 2 || got[0] != "chat-fn" || got[1] != "other-fn" {
		t.Fatalf("namespaces = %v", got)
	}
	if s.SeriesCount() != 2 {
		t.Fatalf("series count = %d", s.SeriesCount())
	}
}

func TestConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Record("ns", "m", t0, float64(j))
				s.Percentile("ns", "m", time.Time{}, time.Time{}, 50)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Count("ns", "m", time.Time{}, time.Time{}); got != 1600 {
		t.Fatalf("count = %d", got)
	}
}
