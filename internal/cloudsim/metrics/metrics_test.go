package metrics

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func seeded() *Service {
	s := New()
	for i, v := range []float64{120, 130, 134, 140, 400} {
		s.Record("chat-fn", "run-ms", t0.Add(time.Duration(i)*time.Minute), v)
	}
	return s
}

func TestCountSumMax(t *testing.T) {
	s := seeded()
	if got := s.Count("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 5 {
		t.Fatalf("count = %d", got)
	}
	if got := s.Sum("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 924 {
		t.Fatalf("sum = %v", got)
	}
	if got := s.Max("chat-fn", "run-ms", time.Time{}, time.Time{}); got != 400 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Max("chat-fn", "absent", time.Time{}, time.Time{}); got != 0 {
		t.Fatalf("absent max = %v", got)
	}
}

func TestWindowing(t *testing.T) {
	s := seeded()
	// Only the middle three samples (minutes 1..3).
	from, to := t0.Add(time.Minute), t0.Add(3*time.Minute)
	if got := s.Count("chat-fn", "run-ms", from, to); got != 3 {
		t.Fatalf("windowed count = %d", got)
	}
	if got := s.Max("chat-fn", "run-ms", from, to); got != 140 {
		t.Fatalf("windowed max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	s := seeded()
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 50); got != 134 {
		t.Fatalf("p50 = %v, want 134", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 99); got != 400 {
		t.Fatalf("p99 = %v, want 400", got)
	}
	if got := s.Percentile("chat-fn", "run-ms", time.Time{}, time.Time{}, 0); got != 120 {
		t.Fatalf("p0 = %v, want 120", got)
	}
	if got := s.Percentile("none", "run-ms", time.Time{}, time.Time{}, 50); got != 0 {
		t.Fatalf("empty p50 = %v", got)
	}
}

func TestMetricsListing(t *testing.T) {
	s := seeded()
	s.Record("chat-fn", "billed-ms", t0, 200)
	s.Record("other-fn", "run-ms", t0, 1)
	got := s.Metrics("chat-fn")
	if len(got) != 2 || got[0] != "billed-ms" || got[1] != "run-ms" {
		t.Fatalf("metrics = %v", got)
	}
	if len(s.Metrics("ghost")) != 0 {
		t.Fatal("listing for unknown namespace")
	}
}

func TestConcurrent(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Record("ns", "m", t0, float64(j))
				s.Percentile("ns", "m", time.Time{}, time.Time{}, 50)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Count("ns", "m", time.Time{}, time.Time{}); got != 1600 {
		t.Fatalf("count = %d", got)
	}
}
