package metrics

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

func obsPlane(t *testing.T, s *Service, authorize bool) *plane.Plane {
	t.Helper()
	iamSvc := iam.New()
	if authorize {
		err := iamSvc.PutRole(&iam.Role{
			Name: "fn",
			Policies: []iam.Policy{{
				Name:       "all",
				Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p := plane.New(iamSvc, pricing.NewMeter(), netsim.NewDefaultModel())
	p.Use(PlaneInterceptor(s, pricing.Default2017(), clock.NewVirtual()))
	return p
}

func TestPlaneInterceptorPublishesRED(t *testing.T) {
	s := New()
	p := obsPlane(t, s, true)
	ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(t0)}

	call := &plane.Call{
		Service:  "s3",
		Op:       "s3:GetObject",
		Action:   "s3:GetObject",
		Resource: "bucket/x",
		Latency:  &plane.Latency{Hop: netsim.HopS3},
		Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}
	for i := 0; i < 3; i++ {
		if err := p.Do(ctx, call, func(*plane.Request) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("s3: no such key")
	if err := p.Do(ctx, call, func(*plane.Request) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}

	const ns = "s3/s3:GetObject"
	var zero time.Time
	if got := s.Count(ns, MetricPlaneRequests, zero, zero); got != 4 {
		t.Errorf("requests = %d, want 4 (errors count too)", got)
	}
	if got := s.Sum(ns, MetricPlaneErrors, zero, zero); got != 1 {
		t.Errorf("errors = %v, want 1", got)
	}
	if got := s.Sum(ns, MetricPlaneDenials, zero, zero); got != 0 {
		t.Errorf("denials = %v, want 0", got)
	}
	if got := s.Count(ns, MetricPlaneLatencyMs, zero, zero); got != 4 {
		t.Errorf("latency samples = %d, want 4", got)
	}
	if got := s.Min(ns, MetricPlaneLatencyMs, zero, zero); got <= 0 {
		t.Errorf("min latency = %v ms, want > 0", got)
	}
	// Each GET meters one S3 GET request: $0.0004/1000 = 400 nano.
	if got := s.Sum(ns, MetricPlaneCostNanos, zero, zero); got != 4*400 {
		t.Errorf("cost = %v nanodollars, want 1600", got)
	}
	// The account gauge is cumulative: last sample equals the total.
	if got := s.Max(AccountNamespace, MetricAccountCostNanos, zero, zero); got != 4*400 {
		t.Errorf("account gauge max = %v, want 1600", got)
	}
	// Sample timestamps sit at the post-call cursor instants, inside
	// the flow's simulated timeline.
	if got := s.Count(ns, MetricPlaneRequests, t0.Add(time.Nanosecond), ctx.Now()); got != 4 {
		t.Errorf("samples outside the flow's timeline: %d in-window, want 4", got)
	}
}

func TestPlaneInterceptorCountsDenials(t *testing.T) {
	s := New()
	p := obsPlane(t, s, false) // no roles: denied
	ctx := &sim.Context{Principal: "nobody", Cursor: sim.NewCursor(t0)}
	err := p.Do(ctx, &plane.Call{
		Service:  "kms",
		Op:       "kms:Decrypt",
		Action:   "kms:Decrypt",
		Resource: "key/k",
		Usage:    []pricing.Usage{{Kind: pricing.KMSRequests, Quantity: 1}},
	}, func(*plane.Request) error {
		t.Error("handler ran on a denied call")
		return nil
	})
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	const ns = "kms/kms:Decrypt"
	var zero time.Time
	if got := s.Sum(ns, MetricPlaneDenials, zero, zero); got != 1 {
		t.Errorf("denials = %v, want 1", got)
	}
	if got := s.Sum(ns, MetricPlaneErrors, zero, zero); got != 0 {
		t.Errorf("errors = %v, want 0 (denials are their own series)", got)
	}
	// Denied calls are billed on AWS, so the cost series sees the fee:
	// $0.03/10k = 3000 nanodollars.
	if got := s.Sum(ns, MetricPlaneCostNanos, zero, zero); got != 3000 {
		t.Errorf("denied-call cost = %v nanodollars, want 3000", got)
	}
}

// Cursor-less flows fall back to the service clock so their samples
// still land somewhere alarms can see.
func TestPlaneInterceptorClockFallback(t *testing.T) {
	s := New()
	clk := clock.NewVirtual()
	clk.Advance(42 * time.Minute)
	p := plane.New(nil, nil, nil)
	p.Use(PlaneInterceptor(s, pricing.Default2017(), clk))
	if err := p.Do(nil, &plane.Call{Service: "svc", Op: "Op"}, func(*plane.Request) error { return nil }); err != nil {
		t.Fatal(err)
	}
	at := clock.Epoch.Add(42 * time.Minute)
	if got := s.Count("svc/Op", MetricPlaneRequests, at, at); got != 1 {
		t.Errorf("fallback-timestamped sample not found at %v", at)
	}
	// No cursor means no observable latency: the series must stay
	// empty rather than record a bogus zero.
	if got := s.Count("svc/Op", MetricPlaneLatencyMs, time.Time{}, time.Time{}); got != 0 {
		t.Errorf("latency samples on a cursor-less flow = %d, want 0", got)
	}
}

func TestServiceUsagePricing(t *testing.T) {
	s := New()
	for i := 0; i < 12; i++ {
		s.Record("ns", MetricPlaneRequests, t0.Add(time.Duration(i)*time.Minute), 1)
	}
	s.Record("ns", MetricPlaneLatencyMs, t0, 5)
	if _, err := s.PutAlarm(BudgetAlarm("b", pricing.FromDollars(1), time.Hour), t0, nil); err != nil {
		t.Fatal(err)
	}

	us := s.Usage()
	if len(us) != 2 {
		t.Fatalf("usage records = %d", len(us))
	}
	book := pricing.Default2017()
	var list pricing.Money
	for _, u := range us {
		list += book.ListPrice(u)
	}
	// 2 series × $0.30 + 1 alarm × $0.10 at list price.
	if want := pricing.FromDollars(0.70); list != want {
		t.Errorf("list price = %v, want %v", list, want)
	}

	// Through the bill engine the 10/10 free tier eats everything.
	m := pricing.NewMeter()
	for _, u := range us {
		m.Add(u)
	}
	bill := pricing.Compute(book, m)
	if got := bill.TotalOf(pricing.CWMetricMonths, pricing.CWAlarmMonths); got != 0 {
		t.Errorf("billed = %v, want $0 inside the free tier", got)
	}

	// Beyond the free tier: 25 metrics and 12 alarms bill the excess
	// 15 × $0.30 + 2 × $0.10 = $4.70.
	m2 := pricing.NewMeter()
	m2.Add(pricing.Usage{Kind: pricing.CWMetricMonths, Quantity: 25})
	m2.Add(pricing.Usage{Kind: pricing.CWAlarmMonths, Quantity: 12})
	if got, want := pricing.Compute(book, m2).TotalOf(pricing.CWMetricMonths, pricing.CWAlarmMonths), pricing.FromDollars(4.70); got != want {
		t.Errorf("beyond-free-tier bill = %v, want %v", got, want)
	}
}
