package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// sample is one pending batched datum: a resolved series handle plus
// the timestamped value, 24 pointer-free bytes — the GC never scans a
// staging buffer.
type sample struct {
	h  Handle
	at int64 // UnixNano
	v  float64
}

// batchCap is the pending-buffer size at which a Batch self-flushes.
// Buffers are allocated once at this capacity and swapped, never
// grown, so the steady-state publish cost is exactly one slice append.
const batchCap = 4096

// Batch is a publisher-side staging buffer for samples. The plane
// interceptors append into a Batch on the hot path instead of
// inserting into the store; pending samples drain into the series in
// arrival order when the simulation clock ticks (core wires
// clock.OnTick to FlushBatches), when the buffer fills, or — forced —
// before any read, so queries and alarms always see exactly the state
// an unbatched store would have.
type Batch struct {
	svc   *Service
	mu    sync.Mutex
	buf   []sample
	spare []sample
}

// NewBatch returns a staging buffer draining into s. The service
// tracks every batch it hands out and drains them all on
// FlushBatches (and before every read).
func (s *Service) NewBatch() *Batch {
	b := &Batch{
		svc:   s,
		buf:   newSampleBuf(),
		spare: newSampleBuf(),
	}
	s.mu.Lock()
	s.batches = append(s.batches, b)
	s.mu.Unlock()
	return b
}

// Add stages one sample for the series h. Samples drain in Add order
// at the next flush boundary.
func (b *Batch) Add(h Handle, at time.Time, v float64) {
	b.addMany([]sample{{h: h, at: at.UnixNano(), v: v}})
}

// addMany stages a burst of samples under one lock — the interceptor
// publishes a call's whole sample set (up to six series) in one append
// from a stack buffer. The flush trigger fires a few entries shy of
// capacity so a burst landing near the brim never regrows the buffer.
func (b *Batch) addMany(ss []sample) {
	b.mu.Lock()
	b.buf = append(b.buf, ss...)
	full := len(b.buf) >= batchCap-8
	b.mu.Unlock()
	// Self-flush outside b.mu: the flush path locks svc.mu then b.mu,
	// so staging must never hold b.mu while entering it.
	if full {
		b.svc.FlushBatches()
	}
}

// FlushBatches drains every pending batch into the series store. Core
// wiring calls it from the virtual clock's OnTick hook, making clock
// movement the deterministic publication boundary; every read API
// also forces it, so batching is invisible to queries, alarms, and
// goldens.
func (s *Service) FlushBatches() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked drains all batches in registration order. Caller holds
// s.mu. Each batch's buffer is swapped out under the batch's own lock
// and ingested afterwards, so concurrent publishers only ever contend
// on the cheap buffer swap.
func (s *Service) flushLocked() {
	for _, b := range s.batches {
		b.mu.Lock()
		pending := b.buf
		b.buf = b.spare[:0]
		b.spare = pending
		b.mu.Unlock()
		if len(pending) == 0 {
			continue
		}
		for _, e := range pending {
			s.insertLocked(e.h, e.at, e.v)
		}
		s.batchedSamples += int64(len(pending))
		s.flushes++
	}
}

// SelfStats is the metrics plane's observation of itself.
type SelfStats struct {
	// BatchedSamples counts samples that arrived through a Batch.
	BatchedSamples int64
	// Flushes counts non-empty batch drains.
	Flushes int64
	// OverheadNs is cumulative host-clock time spent inside the plane
	// interceptor's publish step. Zero unless SetHostClock was called:
	// the simulator measures its own cost only when a real-time source
	// is explicitly injected, keeping simulated runs deterministic.
	OverheadNs int64
}

// SelfStats reports the service's self-telemetry counters. It does not
// force a flush — reading the telemetry plane must not perturb it.
func (s *Service) SelfStats() SelfStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SelfStats{
		BatchedSamples: s.batchedSamples,
		Flushes:        s.flushes,
		OverheadNs:     atomic.LoadInt64(&s.overheadNs),
	}
}

// addOverhead accumulates host-clock interceptor time.
func (s *Service) addOverhead(ns int64) {
	if ns > 0 {
		atomic.AddInt64(&s.overheadNs, ns)
	}
}

// hostClock, when set, is a real-time nanosecond source used solely to
// measure the interceptor's own overhead (SelfStats.OverheadNs).
var hostClock atomic.Value // of func() int64

// SetHostClock injects a host (wall) nanosecond clock for interceptor
// overhead measurement. The simulator core never sets one — simulated
// runs measure zero overhead and stay deterministic; diyctl injects
// time.Now-based nanos so interactive runs can report the telemetry
// tax in `diyctl metrics`.
func SetHostClock(fn func() int64) {
	if fn == nil {
		return
	}
	hostClock.Store(fn)
}

// hostNow reads the injected host clock, or 0 when none is set.
func hostNow() int64 {
	if fn, ok := hostClock.Load().(func() int64); ok {
		return fn()
	}
	return 0
}

// HostNow exposes the injected host clock to the rest of the module:
// nanoseconds from the SetHostClock source, or 0 when none is set.
// The fleet control tower times its host-side phases (profile
// generation, shard drain, aggregation, per-account install vs replay)
// through this so simulated and test runs — which never inject a host
// clock — measure zero everywhere and stay bit-identical, while
// interactive diyctl runs see real durations.
func HostNow() int64 { return hostNow() }
