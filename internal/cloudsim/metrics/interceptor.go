package metrics

import (
	"errors"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/plane"
	"repro/internal/pricing"
)

// PlaneInterceptor returns a plane.Use interceptor that auto-publishes
// RED and cost series for every call routed through the plane it is
// installed on — no per-service instrumentation:
//
//	<service>/<op>  plane.requests          1 per call
//	<service>/<op>  plane.errors            1 per failed call
//	<service>/<op>  plane.denials           1 per IAM-denied call
//	<service>/<op>  plane.latency.ms        cursor time consumed by the call
//	<service>/<op>  plane.cost.nanodollars  list price of the call's metered usage
//	account         account.cost.nanodollars  cumulative priced spend (gauge)
//
// Samples are timestamped at the flow cursor's post-call instant;
// cursor-less flows fall back to the service clock so alarms still see
// them. The interceptor only reads the request — it never meters or
// mutates — so installing it cannot move a ledger-parity golden by a
// nanodollar (scripts/check.sh proves this each run).
func PlaneInterceptor(s *Service, book *pricing.PriceBook, clk clock.Clock) plane.Interceptor {
	var mu sync.Mutex // pairs the cumulative-spend add with its Record
	var cum int64
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)

			ns := req.Call.Service + "/" + req.Call.Op
			at := req.Ctx.Now()
			if at.IsZero() && clk != nil {
				at = clk.Now()
			}
			s.Record(ns, MetricPlaneRequests, at, 1)
			switch {
			case errors.Is(err, iam.ErrDenied):
				s.Record(ns, MetricPlaneDenials, at, 1)
			case err != nil:
				s.Record(ns, MetricPlaneErrors, at, 1)
			}
			if start := req.Start(); !start.IsZero() && !at.Before(start) {
				s.Record(ns, MetricPlaneLatencyMs, at,
					float64(at.Sub(start))/float64(time.Millisecond))
			}
			var cost pricing.Money
			for _, u := range req.Metered() {
				cost += book.ListPrice(u)
			}
			s.Record(ns, MetricPlaneCostNanos, at, float64(cost.Nanodollars()))
			mu.Lock()
			cum += cost.Nanodollars()
			total := cum
			mu.Unlock()
			s.Record(AccountNamespace, MetricAccountCostNanos, at, float64(total))
			return err
		}
	}
}

// BudgetAlarm returns the configuration for a monthly-cost budget
// alarm over the cumulative spend gauge PlaneInterceptor publishes:
// Max over each period climbs with the ledger, so the alarm fires
// within one period of list-price spend crossing the budget. Periods
// with no API calls count as not breaching (no spend means no news,
// not missing data).
func BudgetAlarm(name string, budget pricing.Money, period time.Duration) AlarmConfig {
	return AlarmConfig{
		Name:        name,
		Namespace:   AccountNamespace,
		Metric:      MetricAccountCostNanos,
		Stat:        StatMax,
		Period:      period,
		EvalPeriods: 1,
		Comparison:  GreaterThanThreshold,
		Threshold:   float64(budget.Nanodollars()),
		Missing:     MissingNotBreaching,
	}
}

// Usage reports the monitoring inventory as meterable usage — one
// custom-metric month per stored series and one alarm-month per alarm,
// the quantities CloudWatch billed by in 2017. The inventory is
// deliberately not pushed into the account meter automatically (the
// paper's Tables 1–3 predate the observability layer); callers price
// it on demand via PriceBook.ListPrice or a scratch meter.
func (s *Service) Usage() []pricing.Usage {
	return []pricing.Usage{
		{Kind: pricing.CWMetricMonths, Quantity: float64(s.SeriesCount()), Resource: "cloudwatch"},
		{Kind: pricing.CWAlarmMonths, Quantity: float64(s.AlarmCount()), Resource: "cloudwatch"},
	}
}
