package metrics

import (
	"errors"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/plane"
	"repro/internal/pricing"
)

// PlaneInterceptor returns a plane.Use interceptor that auto-publishes
// RED and cost series for every call routed through the plane it is
// installed on — no per-service instrumentation:
//
//	<service>/<op>  plane.requests          1 per call
//	<service>/<op>  plane.errors            1 per failed call
//	<service>/<op>  plane.denials           1 per IAM-denied call
//	<service>/<op>  plane.latency.ms        cursor time consumed by the call
//	<service>/<op>  plane.cost.nanodollars  list price of the call's metered usage
//	account         account.cost.nanodollars  cumulative priced spend (gauge)
//
// Samples are timestamped at the flow cursor's post-call instant;
// cursor-less flows fall back to the service clock so alarms still see
// them. The interceptor only reads the request — it never meters or
// mutates — so installing it cannot move a ledger-parity golden by a
// nanodollar (scripts/check.sh proves this each run).
//
// The hot path is interned and batched: each (service, op) resolves
// its five series handles once, publication is a buffer append drained
// at clock ticks (see Batch), and no names are formatted per call —
// the `hotpath` diylint analyzer keeps it that way.
func PlaneInterceptor(s *Service, book *pricing.PriceBook, clk clock.Clock) plane.Interceptor {
	pub := &publisher{
		svc:       s,
		book:      book,
		clk:       clk,
		batch:     s.NewBatch(),
		account:   s.Handle(AccountNamespace, MetricAccountCostNanos),
		byService: make(map[string]map[string]*opHandles),
	}
	return func(next plane.HandlerFunc) plane.HandlerFunc {
		return func(req *plane.Request) error {
			err := next(req)
			pub.publish(req, err)
			return err
		}
	}
}

// opHandles caches the five resolved series handles for one
// (service, op) namespace, so steady-state publication does no key
// building or map insertion — two map reads and five buffer appends.
type opHandles struct {
	requests Handle
	errs     Handle
	denials  Handle
	latency  Handle
	cost     Handle
}

// publisher is the per-interceptor publication state, shared by every
// call on every plane the interceptor instance is installed on (core
// installs one instance fleet-wide, so the cumulative gauge spans the
// whole account).
type publisher struct {
	svc     *Service
	book    *pricing.PriceBook
	clk     clock.Clock
	batch   *Batch
	account Handle

	mu        sync.Mutex
	byService map[string]map[string]*opHandles
	cum       int64
}

// publish emits the call's samples as one burst staged from a stack
// buffer — a single batch append per call. Holding p.mu across the
// burst pairs each cumulative-gauge update with its sample (the gauge
// series stays monotone) and keeps one call's samples adjacent in the
// batch.
func (p *publisher) publish(req *plane.Request, err error) {
	t0 := hostNow()
	at := req.Ctx.Now()
	if at.IsZero() && p.clk != nil {
		at = p.clk.Now()
	}
	atNs := at.UnixNano()
	var burst [6]sample
	n := 0
	p.mu.Lock()
	h := p.resolveLocked(req.Call.Service, req.Call.Op)
	burst[n] = sample{h: h.requests, at: atNs, v: 1}
	n++
	switch {
	case errors.Is(err, iam.ErrDenied):
		burst[n] = sample{h: h.denials, at: atNs, v: 1}
		n++
	case err != nil:
		burst[n] = sample{h: h.errs, at: atNs, v: 1}
		n++
	}
	if start := req.Start(); !start.IsZero() && !at.Before(start) {
		burst[n] = sample{h: h.latency, at: atNs,
			v: float64(at.Sub(start)) / float64(time.Millisecond)}
		n++
	}
	var cost pricing.Money
	for _, u := range req.Metered() {
		cost += p.book.ListPrice(u)
	}
	burst[n] = sample{h: h.cost, at: atNs, v: float64(cost.Nanodollars())}
	n++
	p.cum += cost.Nanodollars()
	burst[n] = sample{h: p.account, at: atNs, v: float64(p.cum)}
	n++
	p.batch.addMany(burst[:n])
	p.mu.Unlock()
	if t0 != 0 {
		p.svc.addOverhead(hostNow() - t0)
	}
}

// resolveLocked interns the five series handles for (service, op),
// building the "service/op" namespace string only on first sight.
// Caller holds p.mu.
func (p *publisher) resolveLocked(service, op string) *opHandles {
	ops := p.byService[service]
	if ops == nil {
		ops = make(map[string]*opHandles)
		p.byService[service] = ops
	}
	h := ops[op]
	if h == nil {
		ns := service + "/" + op
		h = &opHandles{
			requests: p.svc.Handle(ns, MetricPlaneRequests),
			errs:     p.svc.Handle(ns, MetricPlaneErrors),
			denials:  p.svc.Handle(ns, MetricPlaneDenials),
			latency:  p.svc.Handle(ns, MetricPlaneLatencyMs),
			cost:     p.svc.Handle(ns, MetricPlaneCostNanos),
		}
		ops[op] = h
	}
	return h
}

// BudgetAlarm returns the configuration for a monthly-cost budget
// alarm over the cumulative spend gauge PlaneInterceptor publishes:
// Max over each period climbs with the ledger, so the alarm fires
// within one period of list-price spend crossing the budget. Periods
// with no API calls count as not breaching (no spend means no news,
// not missing data).
func BudgetAlarm(name string, budget pricing.Money, period time.Duration) AlarmConfig {
	return AlarmConfig{
		Name:        name,
		Namespace:   AccountNamespace,
		Metric:      MetricAccountCostNanos,
		Stat:        StatMax,
		Period:      period,
		EvalPeriods: 1,
		Comparison:  GreaterThanThreshold,
		Threshold:   float64(budget.Nanodollars()),
		Missing:     MissingNotBreaching,
	}
}

// Usage reports the monitoring inventory as meterable usage — one
// custom-metric month per stored series and one alarm-month per alarm,
// the quantities CloudWatch billed by in 2017. The inventory is
// deliberately not pushed into the account meter automatically (the
// paper's Tables 1–3 predate the observability layer); callers price
// it on demand via PriceBook.ListPrice or a scratch meter.
func (s *Service) Usage() []pricing.Usage {
	return []pricing.Usage{
		{Kind: pricing.CWMetricMonths, Quantity: float64(s.SeriesCount()), Resource: "cloudwatch"},
		{Kind: pricing.CWAlarmMonths, Quantity: float64(s.AlarmCount()), Resource: "cloudwatch"},
	}
}

// SelfPublish records the service's self-telemetry counters as metric
// series under TelemetryNamespace, timestamped at. The telemetry plane
// observes itself through the same registry it serves — `diyctl
// metrics` surfaces these like any other series. Opt-in (core publishes
// only when CloudOptions.SelfTelemetry is set) because the series
// count feeds the CloudWatch inventory bill.
func (s *Service) SelfPublish(at time.Time) {
	st := s.SelfStats()
	s.Record(TelemetryNamespace, MetricTelemetrySamples, at, float64(st.BatchedSamples))
	s.Record(TelemetryNamespace, MetricTelemetryFlushes, at, float64(st.Flushes))
	s.Record(TelemetryNamespace, MetricTelemetryOverheadNs, at, float64(st.OverheadNs))
}
