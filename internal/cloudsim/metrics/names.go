package metrics

import (
	"regexp"
	"sort"
)

// This file is the central registry of metric series names. Every name
// published through Service.Record in non-test code must be one of the
// Metric* constants below — a typo'd name would silently split a
// series into two (half the samples under "lambda.billed.ms", half
// under "lambda.billedms", and every windowed stat quietly wrong). The
// `metricname` diylint analyzer enforces both halves of the contract:
// Record call sites must pass a registry constant, and the constants
// themselves must be unique lowercase dot-separated identifiers.

// AccountNamespace is the namespace for account-wide rollup series
// (the per-(service, op) plane series use "service/op" namespaces).
const AccountNamespace = "account"

// TelemetryNamespace is the namespace for the telemetry plane's
// self-observation series (the telemetry.self.* family).
const TelemetryNamespace = "telemetry"

// FleetNamespace is the namespace the fleet control tower publishes
// the engine's own virtual-time counters into (the fleet.* family,
// plus the per-account cost distribution). Fleet-level rollups of the
// plane series live under "fleet/<service>/<op>" namespaces, the way
// per-account plane series live under "<service>/<op>".
const FleetNamespace = "fleet"

const (
	// Plane series, auto-published by PlaneInterceptor into a
	// "service/op" namespace for every call routed through plane.Do.
	MetricPlaneRequests  = "plane.requests"
	MetricPlaneErrors    = "plane.errors"
	MetricPlaneDenials   = "plane.denials"
	MetricPlaneLatencyMs = "plane.latency.ms"
	MetricPlaneCostNanos = "plane.cost.nanodollars"

	// MetricAccountCostNanos is a cumulative gauge of everything
	// PlaneInterceptor has priced so far, in nanodollars, under
	// AccountNamespace. The monthly budget alarm watches its Max.
	MetricAccountCostNanos = "account.cost.nanodollars"

	// Lambda per-invocation series, published by the lambda platform
	// into a per-function namespace.
	MetricLambdaRunMs    = "lambda.run.ms"
	MetricLambdaBilledMs = "lambda.billed.ms"
	MetricLambdaPeakMB   = "lambda.peak.mb"
	MetricLambdaCold     = "lambda.cold"

	// Self-telemetry gauges under TelemetryNamespace: the telemetry
	// plane observing its own work. Published on demand by
	// Service.SelfPublish / logs ingest stats (opt-in via
	// core.CloudOptions.SelfTelemetry — the series feed the CloudWatch
	// inventory bill, so the default stays off and ledger goldens
	// unmoved).
	MetricTelemetrySamples    = "telemetry.self.samples"
	MetricTelemetryFlushes    = "telemetry.self.flushes"
	MetricTelemetryEvents     = "telemetry.self.events"
	MetricTelemetryBytes      = "telemetry.self.bytes"
	MetricTelemetryOverheadNs = "telemetry.self.overhead.ns"

	// Fleet engine self-telemetry under FleetNamespace, published by
	// the control tower (internal/fleet/telemetry) at the virtual end
	// of a run: one sample per shard, in shard order, all virtual-time
	// — they are part of nothing the replay-identity goldens pin, but
	// they are themselves bit-identical across replays.
	MetricFleetShardEvents   = "fleet.shard.events"     // timeline events popped
	MetricFleetShardAccounts = "fleet.shard.accounts"   // accounts completed
	MetricFleetShardRequests = "fleet.shard.requests"   // workload arrivals served
	MetricFleetShardCold     = "fleet.shard.coldstarts" // cold containers hit
	MetricFleetHorizonNs     = "fleet.horizon.ns"       // virtual time drained
)

// nameRE is the shape every registered name must have: lowercase
// dot-separated identifiers, each starting with a letter.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)+$`)

var registered = []string{
	MetricPlaneRequests,
	MetricPlaneErrors,
	MetricPlaneDenials,
	MetricPlaneLatencyMs,
	MetricPlaneCostNanos,
	MetricAccountCostNanos,
	MetricLambdaRunMs,
	MetricLambdaBilledMs,
	MetricLambdaPeakMB,
	MetricLambdaCold,
	MetricTelemetrySamples,
	MetricTelemetryFlushes,
	MetricTelemetryEvents,
	MetricTelemetryBytes,
	MetricTelemetryOverheadNs,
	MetricFleetShardEvents,
	MetricFleetShardAccounts,
	MetricFleetShardRequests,
	MetricFleetShardCold,
	MetricFleetHorizonNs,
}

// Names returns every registered metric name, sorted.
func Names() []string {
	out := append([]string(nil), registered...)
	sort.Strings(out)
	return out
}

// Registered reports whether name is in the registry.
func Registered(name string) bool {
	for _, n := range registered {
		if n == name {
			return true
		}
	}
	return false
}

// ValidName reports whether name is a well-formed series name
// (lowercase dot-separated identifiers). The registry test and the
// metricname analyzer both check registered constants against it.
func ValidName(name string) bool { return nameRE.MatchString(name) }
