// Package metrics simulates the monitoring service the paper's
// prototype measurements came from (Table 3's "Med. Lambda Time
// Billed/Run" and "Peak Memory Used" are CloudWatch statistics on real
// AWS). The lambda platform publishes one datum per invocation, and
// the plane interceptor (see PlaneInterceptor) auto-publishes RED and
// cost series for every service API call; the experiment harness, the
// alarm state machine (alarm.go), and `diyctl metrics` query windowed
// statistics over the stored series.
//
// Storage is built for a hot write path: each (namespace, metric)
// series is interned to an integer Handle once, and samples live in
// fixed-size pointer-free column chunks (nanosecond timestamps and
// values side by side). Chunks are never reallocated, so a
// million-sample series costs zero copy-on-growth and the garbage
// collector never scans the data. Fixed-width sample buckets carry
// pre-aggregated sum/min/max so wide windows are answered from bucket
// aggregates instead of a full scan. Publishers on the request plane
// append through a Batch (batch.go) and pay a buffer append per
// sample; pending buffers drain at virtual-clock ticks and are
// force-flushed before any read, so every query and alarm evaluation
// sees exactly the samples an unbatched store would.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/cloudsim/sortutil"
)

// Datum is one recorded sample.
type Datum struct {
	At    time.Time
	Value float64
}

// Handle is an interned reference to one (namespace, metric) series.
// Resolving a handle once and publishing through it skips the
// per-call key build and map lookup of Record.
type Handle int32

// Chunked column geometry: chunkLen samples per chunk, bucketSize
// samples per pre-aggregation bucket. bucketSize divides chunkLen so a
// bucket never straddles a chunk boundary.
const (
	chunkShift = 10
	chunkLen   = 1 << chunkShift // 1024 samples, 16 KiB per chunk
	chunkMask  = chunkLen - 1

	// bucketSize is the width, in samples, of one pre-aggregation
	// bucket. Series shorter than a bucket are always scanned linearly,
	// so small windows and small series keep bit-identical float
	// accumulation order; only windows spanning whole buckets of a long
	// series read the pre-aggregated sums.
	bucketSize = 256
)

// chunk is one fixed-size run of a series' columns. Allocated once,
// never copied, and — being pointer-free — never scanned by the GC.
type chunk struct {
	ats  [chunkLen]int64 // UnixNano
	vals [chunkLen]float64
}

// bucket pre-aggregates one fixed-width run of a series' samples.
type bucket struct {
	sum, min, max float64
}

// series is one stored time series: timestamp-ordered samples in
// chunked columns plus lazily built bucket aggregates.
type series struct {
	namespace string
	metric    string
	chunks    []*chunk
	n         int // total samples
	// buckets[i] covers samples [i*bucketSize, (i+1)*bucketSize). Only
	// the first validBuckets entries are current; an out-of-order
	// insert truncates validity back to its insertion point and the
	// tail is rebuilt on demand.
	buckets      []bucket
	validBuckets int
}

func (sx *series) at(i int) int64    { return sx.chunks[i>>chunkShift].ats[i&chunkMask] }
func (sx *series) val(i int) float64 { return sx.chunks[i>>chunkShift].vals[i&chunkMask] }

func (sx *series) set(i int, ns int64, v float64) {
	c := sx.chunks[i>>chunkShift]
	c.ats[i&chunkMask] = ns
	c.vals[i&chunkMask] = v
}

// Service stores time-series samples by (namespace, metric) and hosts
// the alarms that watch them (alarm.go). It is safe for concurrent
// use.
type Service struct {
	mu      sync.Mutex
	series  []*series
	index   map[string]Handle
	batches []*Batch
	alarms  []*Alarm

	// Self-telemetry counters (see SelfStats): how much work the
	// telemetry plane itself has done.
	batchedSamples int64
	flushes        int64
	overheadNs     int64 // atomic; host-clock interceptor overhead, see SetHostClock
}

// New returns an empty metrics service.
func New() *Service {
	return &Service{index: make(map[string]Handle)}
}

func key(namespace, metric string) string { return namespace + "\x00" + metric }

// Handle interns a (namespace, metric) series and returns its handle.
// The series itself stays invisible to listings, counts, and the
// exposition until its first sample lands — interning is free.
func (s *Service) Handle(namespace, metric string) Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handleLocked(namespace, metric)
}

// handleLocked resolves or creates the series for (namespace, metric).
// Caller holds s.mu.
func (s *Service) handleLocked(namespace, metric string) Handle {
	k := key(namespace, metric)
	if h, ok := s.index[k]; ok {
		return h
	}
	h := Handle(len(s.series))
	s.series = append(s.series, &series{namespace: namespace, metric: metric})
	s.index[k] = h
	return h
}

// Record stores one sample, keeping the series ordered by timestamp.
// Most publishers emit in clock order so the common case is a plain
// append into the current chunk, but concurrent request flows each
// carry their own cursor and can land samples slightly out of order;
// those are shifted into place (stably: a sample never moves past an
// equal timestamp) so the windowed statistics' binary search stays
// correct.
func (s *Service) Record(namespace, metric string, at time.Time, value float64) {
	s.mu.Lock()
	s.insertLocked(s.handleLocked(namespace, metric), at.UnixNano(), value)
	s.mu.Unlock()
}

// insertLocked places one sample into a series in timestamp order.
// Caller holds s.mu.
func (s *Service) insertLocked(h Handle, ns int64, value float64) {
	sx := s.series[h]
	n := sx.n
	if n&chunkMask == 0 && n>>chunkShift == len(sx.chunks) {
		sx.chunks = append(sx.chunks, newChunk())
	}
	if n == 0 || sx.at(n-1) <= ns {
		// In-order append — the steady state. No data moves, no bucket
		// invalidation (existing buckets cover earlier samples only).
		sx.set(n, ns, value)
		sx.n = n + 1
		return
	}
	// Out-of-order: shift the tail right one slot and drop the sample
	// at its timestamp position (after any equal timestamps, keeping
	// arrival order stable).
	pos := sort.Search(n, func(i int) bool { return sx.at(i) > ns })
	for i := n; i > pos; i-- {
		sx.set(i, sx.at(i-1), sx.val(i-1))
	}
	sx.set(pos, ns, value)
	sx.n = n + 1
	if vb := pos / bucketSize; vb < sx.validBuckets {
		sx.validBuckets = vb
	}
}

// ensureBuckets (re)builds bucket aggregates so that at least the
// first want full buckets are valid.
func (sx *series) ensureBuckets(want int) {
	full := sx.n / bucketSize
	if want > full {
		want = full
	}
	for i := sx.validBuckets; i < want; i++ {
		base := i * bucketSize
		c := sx.chunks[base>>chunkShift]
		vals := c.vals[base&chunkMask : base&chunkMask+bucketSize]
		b := bucket{sum: 0, min: vals[0], max: vals[0]}
		for _, v := range vals {
			b.sum += v
			if v < b.min {
				b.min = v
			}
			if v > b.max {
				b.max = v
			}
		}
		if i < len(sx.buckets) {
			sx.buckets[i] = b
		} else {
			sx.buckets = append(sx.buckets, b)
		}
	}
	if want > sx.validBuckets {
		sx.validBuckets = want
	}
}

// lookupLocked returns the series for (namespace, metric), or nil.
// Caller holds s.mu.
func (s *Service) lookupLocked(namespace, metric string) *series {
	if h, ok := s.index[key(namespace, metric)]; ok {
		return s.series[h]
	}
	return nil
}

// bounds locates the half-open index range [lo, hi) of samples within
// [from, to] (zero times mean unbounded). The series is
// timestamp-ordered, so both bounds are binary searches.
func (sx *series) bounds(from, to time.Time) (lo, hi int) {
	lo, hi = 0, sx.n
	if !from.IsZero() {
		f := from.UnixNano()
		lo = sort.Search(sx.n, func(i int) bool { return sx.at(i) >= f })
	}
	if !to.IsZero() {
		t := to.UnixNano()
		hi = sort.Search(sx.n, func(i int) bool { return sx.at(i) > t })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// window returns a copy of the samples within [from, to]. It exists
// for tests and debugging; the statistics below aggregate in place
// without copying.
func (s *Service) window(namespace, metric string, from, to time.Time) []Datum {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	sx := s.lookupLocked(namespace, metric)
	if sx == nil {
		return nil
	}
	lo, hi := sx.bounds(from, to)
	if lo == hi {
		return nil
	}
	out := make([]Datum, hi-lo)
	for i := range out {
		out[i] = Datum{At: time.Unix(0, sx.at(lo+i)).UTC(), Value: sx.val(lo + i)}
	}
	return out
}

// statRange aggregates sum/min/max over samples [lo, hi), reading
// whole pre-aggregated buckets for the interior and scanning only the
// two partial edges. ok is false for an empty range.
func (sx *series) statRange(lo, hi int) (sum, min, max float64, ok bool) {
	if lo >= hi {
		return 0, 0, 0, false
	}
	first := true
	acc := func(s, mn, mx float64) {
		sum += s
		if first || mn < min {
			min = mn
		}
		if first || mx > max {
			max = mx
		}
		first = false
	}
	bLo := (lo + bucketSize - 1) / bucketSize
	bHi := hi / bucketSize
	if bLo >= bHi {
		// Window inside one bucket (or a short series): plain scan in
		// timestamp order.
		for i := lo; i < hi; i++ {
			v := sx.val(i)
			acc(v, v, v)
		}
		return sum, min, max, true
	}
	for i := lo; i < bLo*bucketSize; i++ {
		v := sx.val(i)
		acc(v, v, v)
	}
	sx.ensureBuckets(bHi)
	for i := bLo; i < bHi; i++ {
		b := sx.buckets[i]
		acc(b.sum, b.min, b.max)
	}
	for i := bHi * bucketSize; i < hi; i++ {
		v := sx.val(i)
		acc(v, v, v)
	}
	return sum, min, max, true
}

// stat runs fn over the windowed range of a series with batches
// flushed, under the service lock.
func (s *Service) stat(namespace, metric string, from, to time.Time, fn func(sx *series, lo, hi int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	sx := s.lookupLocked(namespace, metric)
	if sx == nil {
		return
	}
	lo, hi := sx.bounds(from, to)
	fn(sx, lo, hi)
}

// Count reports how many samples landed in the window.
func (s *Service) Count(namespace, metric string, from, to time.Time) int {
	var n int
	s.stat(namespace, metric, from, to, func(_ *series, lo, hi int) { n = hi - lo })
	return n
}

// Sum reports the window's total.
func (s *Service) Sum(namespace, metric string, from, to time.Time) float64 {
	var sum float64
	s.stat(namespace, metric, from, to, func(sx *series, lo, hi int) {
		sum, _, _, _ = sx.statRange(lo, hi)
	})
	return sum
}

// Max reports the window's maximum (0 for an empty window).
func (s *Service) Max(namespace, metric string, from, to time.Time) float64 {
	var max float64
	s.stat(namespace, metric, from, to, func(sx *series, lo, hi int) {
		_, _, mx, ok := sx.statRange(lo, hi)
		if ok {
			max = mx
		}
	})
	return max
}

// Min reports the window's minimum (0 for an empty window).
func (s *Service) Min(namespace, metric string, from, to time.Time) float64 {
	var min float64
	s.stat(namespace, metric, from, to, func(sx *series, lo, hi int) {
		_, mn, _, ok := sx.statRange(lo, hi)
		if ok {
			min = mn
		}
	})
	return min
}

// Avg reports the window's arithmetic mean (0 for an empty window).
func (s *Service) Avg(namespace, metric string, from, to time.Time) float64 {
	var avg float64
	s.stat(namespace, metric, from, to, func(sx *series, lo, hi int) {
		sum, _, _, ok := sx.statRange(lo, hi)
		if ok {
			avg = sum / float64(hi-lo)
		}
	})
	return avg
}

// NearestRank returns the zero-based index of the p-th percentile in
// an ascending n-sample set, under the nearest-rank definition: the
// smallest value with at least p% of the samples at or below it, i.e.
// rank ceil(p/100·n). p is in percent and may be fractional (99.9).
// This is the single percentile-index implementation in the module —
// Percentile below and the fleet engine's cost/latency summaries both
// read through it, so the two percentile surfaces can never disagree
// by an off-by-one again.
//
// The small epsilon absorbs binary-representation excess in the
// product: 99.9/100·1000 evaluates to 999.0000000000001, whose bare
// ceiling (1000) would skip past the correct rank 999. Integer p is
// unaffected — any true fractional part is at least ~1/100, ten
// million times the epsilon.
func NearestRank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	rank := int(math.Ceil(float64(n)*p/100 - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank - 1
}

// Percentile reports the p-th percentile (nearest rank) of the window,
// 0 for an empty window. p is in percent and may be fractional: p99.9
// asks for the smallest value covering 99.9% of the samples.
func (s *Service) Percentile(namespace, metric string, from, to time.Time, p float64) float64 {
	var vals []float64
	s.stat(namespace, metric, from, to, func(sx *series, lo, hi int) {
		if lo == hi {
			return
		}
		vals = make([]float64, 0, hi-lo)
		for i := lo; i < hi; {
			c := sx.chunks[i>>chunkShift]
			off := i & chunkMask
			end := chunkLen
			if hi-i < end-off {
				end = off + (hi - i)
			}
			vals = append(vals, c.vals[off:end]...)
			i += end - off
		}
	})
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[NearestRank(len(vals), p)]
}

// SeriesStat summarizes one stored series: its identity plus
// whole-series aggregates. Last is the most recent sample's value —
// for cumulative gauges (account.cost.nanodollars) it is the final
// reading.
type SeriesStat struct {
	Namespace string
	Metric    string
	Count     int
	Sum       float64
	Min       float64
	Max       float64
	Last      float64
}

// SeriesStats returns one summary per series holding at least one
// sample, in series-creation order. Within a single-threaded
// simulation (one account's cloud) creation order is deterministic, so
// the fleet control tower can fold a finished account's store into its
// rollups without sorting or per-series window queries.
func (s *Service) SeriesStats() []SeriesStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	out := make([]SeriesStat, 0, len(s.series))
	for _, sx := range s.series {
		if sx.n == 0 {
			continue
		}
		sum, min, max, _ := sx.statRange(0, sx.n)
		out = append(out, SeriesStat{
			Namespace: sx.namespace,
			Metric:    sx.metric,
			Count:     sx.n,
			Sum:       sum,
			Min:       min,
			Max:       max,
			Last:      sx.val(sx.n - 1),
		})
	}
	return out
}

// Metrics lists the metric names recorded under a namespace, sorted.
// Interned-but-empty series are invisible until their first sample.
func (s *Service) Metrics(namespace string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	var out []string
	for _, sx := range s.series {
		if sx.namespace == namespace && sx.n > 0 {
			out = append(out, sx.metric)
		}
	}
	sort.Strings(out)
	return out
}

// Namespaces lists every namespace with at least one recorded series,
// sorted.
func (s *Service) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	seen := make(map[string]bool)
	for _, sx := range s.series {
		if sx.n > 0 {
			seen[sx.namespace] = true
		}
	}
	return sortutil.SortedKeys(seen)
}

// SeriesCount reports how many distinct (namespace, metric) series
// hold at least one sample — the "custom metric" count CloudWatch
// bills by. Interned handles with no samples yet cost nothing.
func (s *Service) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	n := 0
	for _, sx := range s.series {
		if sx.n > 0 {
			n++
		}
	}
	return n
}
