// Package metrics simulates the monitoring service the paper's
// prototype measurements came from (Table 3's "Med. Lambda Time
// Billed/Run" and "Peak Memory Used" are CloudWatch statistics on real
// AWS). The lambda platform publishes one datum per invocation; the
// experiment harness and the app store's dashboards query counts,
// sums and percentiles over time windows.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// Datum is one recorded sample.
type Datum struct {
	At    time.Time
	Value float64
}

// Service stores time-series samples by (namespace, metric). It is
// safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	series map[string][]Datum
}

// New returns an empty metrics service.
func New() *Service {
	return &Service{series: make(map[string][]Datum)}
}

func key(namespace, metric string) string { return namespace + "\x00" + metric }

// Record appends one sample.
func (s *Service) Record(namespace, metric string, at time.Time, value float64) {
	s.mu.Lock()
	k := key(namespace, metric)
	s.series[k] = append(s.series[k], Datum{At: at, Value: value})
	s.mu.Unlock()
}

// window returns the samples within [from, to] (zero times mean
// unbounded). Samples arrive in timestamp order (the lambda platform
// publishes them as the simulated clock advances), so the from bound
// is located by binary search; only the to bound needs a scan, and
// that scan stops at the first sample past it.
func (s *Service) window(namespace, metric string, from, to time.Time) []Datum {
	s.mu.Lock()
	defer s.mu.Unlock()
	series := s.series[key(namespace, metric)]
	lo := 0
	if !from.IsZero() {
		lo = sort.Search(len(series), func(i int) bool {
			return !series[i].At.Before(from)
		})
	}
	var out []Datum
	for _, d := range series[lo:] {
		if !to.IsZero() && d.At.After(to) {
			break
		}
		out = append(out, d)
	}
	return out
}

// Count reports how many samples landed in the window.
func (s *Service) Count(namespace, metric string, from, to time.Time) int {
	return len(s.window(namespace, metric, from, to))
}

// Sum reports the window's total.
func (s *Service) Sum(namespace, metric string, from, to time.Time) float64 {
	var sum float64
	for _, d := range s.window(namespace, metric, from, to) {
		sum += d.Value
	}
	return sum
}

// Max reports the window's maximum (0 for an empty window).
func (s *Service) Max(namespace, metric string, from, to time.Time) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	max := data[0].Value
	for _, d := range data[1:] {
		if d.Value > max {
			max = d.Value
		}
	}
	return max
}

// Percentile reports the p-th percentile (nearest rank) of the window,
// 0 for an empty window.
func (s *Service) Percentile(namespace, metric string, from, to time.Time, p int) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	vals := make([]float64, len(data))
	for i, d := range data {
		vals[i] = d.Value
	}
	sort.Float64s(vals)
	// Nearest-rank definition: the smallest value with at least p% of
	// the samples at or below it, i.e. rank ceil(p/100 * n).
	rank := (p*len(vals) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}

// Metrics lists the metric names recorded under a namespace, sorted.
func (s *Service) Metrics(namespace string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	prefix := namespace + "\x00"
	for k := range s.series {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k[len(prefix):])
		}
	}
	sort.Strings(out)
	return out
}
