// Package metrics simulates the monitoring service the paper's
// prototype measurements came from (Table 3's "Med. Lambda Time
// Billed/Run" and "Peak Memory Used" are CloudWatch statistics on real
// AWS). The lambda platform publishes one datum per invocation, and
// the plane interceptor (see PlaneInterceptor) auto-publishes RED and
// cost series for every service API call; the experiment harness, the
// alarm state machine (alarm.go), and `diyctl metrics` query windowed
// statistics over the stored series.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// Datum is one recorded sample.
type Datum struct {
	At    time.Time
	Value float64
}

// Service stores time-series samples by (namespace, metric) and hosts
// the alarms that watch them (alarm.go). It is safe for concurrent
// use.
type Service struct {
	mu     sync.Mutex
	series map[string][]Datum
	alarms []*Alarm
}

// New returns an empty metrics service.
func New() *Service {
	return &Service{series: make(map[string][]Datum)}
}

func key(namespace, metric string) string { return namespace + "\x00" + metric }

// Record stores one sample, keeping the series ordered by timestamp.
// Most publishers emit in clock order so the common case is a plain
// append, but concurrent request flows each carry their own cursor and
// can land samples slightly out of order; those are insertion-sorted
// into place (stably: a sample never moves past an equal timestamp)
// so window's binary search stays correct.
func (s *Service) Record(namespace, metric string, at time.Time, value float64) {
	s.mu.Lock()
	k := key(namespace, metric)
	series := append(s.series[k], Datum{})
	i := len(series) - 1
	for i > 0 && series[i-1].At.After(at) {
		series[i] = series[i-1]
		i--
	}
	series[i] = Datum{At: at, Value: value}
	s.series[k] = series
	s.mu.Unlock()
}

// window returns the samples within [from, to] (zero times mean
// unbounded). Record keeps each series in timestamp order, so the from
// bound is located by binary search; only the to bound needs a scan,
// and that scan stops at the first sample past it.
func (s *Service) window(namespace, metric string, from, to time.Time) []Datum {
	s.mu.Lock()
	defer s.mu.Unlock()
	series := s.series[key(namespace, metric)]
	lo := 0
	if !from.IsZero() {
		lo = sort.Search(len(series), func(i int) bool {
			return !series[i].At.Before(from)
		})
	}
	var out []Datum
	for _, d := range series[lo:] {
		if !to.IsZero() && d.At.After(to) {
			break
		}
		out = append(out, d)
	}
	return out
}

// Count reports how many samples landed in the window.
func (s *Service) Count(namespace, metric string, from, to time.Time) int {
	return len(s.window(namespace, metric, from, to))
}

// Sum reports the window's total.
func (s *Service) Sum(namespace, metric string, from, to time.Time) float64 {
	var sum float64
	for _, d := range s.window(namespace, metric, from, to) {
		sum += d.Value
	}
	return sum
}

// Max reports the window's maximum (0 for an empty window).
func (s *Service) Max(namespace, metric string, from, to time.Time) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	max := data[0].Value
	for _, d := range data[1:] {
		if d.Value > max {
			max = d.Value
		}
	}
	return max
}

// Min reports the window's minimum (0 for an empty window).
func (s *Service) Min(namespace, metric string, from, to time.Time) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	min := data[0].Value
	for _, d := range data[1:] {
		if d.Value < min {
			min = d.Value
		}
	}
	return min
}

// Avg reports the window's arithmetic mean (0 for an empty window).
func (s *Service) Avg(namespace, metric string, from, to time.Time) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, d := range data {
		sum += d.Value
	}
	return sum / float64(len(data))
}

// Percentile reports the p-th percentile (nearest rank) of the window,
// 0 for an empty window.
func (s *Service) Percentile(namespace, metric string, from, to time.Time, p int) float64 {
	data := s.window(namespace, metric, from, to)
	if len(data) == 0 {
		return 0
	}
	vals := make([]float64, len(data))
	for i, d := range data {
		vals[i] = d.Value
	}
	sort.Float64s(vals)
	// Nearest-rank definition: the smallest value with at least p% of
	// the samples at or below it, i.e. rank ceil(p/100 * n).
	rank := (p*len(vals) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}

// Metrics lists the metric names recorded under a namespace, sorted.
func (s *Service) Metrics(namespace string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	prefix := namespace + "\x00"
	for k := range s.series {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k[len(prefix):])
		}
	}
	sort.Strings(out)
	return out
}

// Namespaces lists every namespace with at least one recorded series,
// sorted.
func (s *Service) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	for k := range s.series {
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				seen[k[:i]] = true
				break
			}
		}
	}
	out := make([]string, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// SeriesCount reports how many distinct (namespace, metric) series the
// service stores — the "custom metric" count CloudWatch bills by.
func (s *Service) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}
