// Package gateway simulates the HTTPS front end that triggers DIY
// functions: "Lambda only supports HTTP(S)-based endpoints", so every
// client interaction — including the chat prototype's XMPP stanzas —
// tunnels through endpoints registered here.
//
// The gateway also hosts the request throttle the paper proposes
// against DDoS cost attacks (§8.2: "These attacks may be mitigated by
// throttling requests using tools provided by the cloud provider"), a
// token bucket per endpoint.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

func init() {
	// Gateway ingress authenticates at the application layer (TLS +
	// app-level auth inside the function), not via IAM.
	plane.Register(plane.Op{Service: "gateway", Method: "Handle", Action: ""})
}

// Errors returned by the gateway.
var (
	ErrNoSuchEndpoint = errors.New("gateway: no such endpoint")
	ErrThrottled      = errors.New("gateway: request throttled")
)

// Limit configures an endpoint's token-bucket throttle. The zero value
// means unlimited.
type Limit struct {
	// RPS is the sustained refill rate in requests per second.
	RPS float64
	// Burst is the bucket capacity.
	Burst float64
}

// Request is one client call to an endpoint.
type Request struct {
	Path  string
	Op    string
	Body  []byte
	Attrs map[string]string
}

type endpoint struct {
	fnName string
	limit  Limit

	tokens   float64
	lastFill time.Time

	requests  int64
	rejected  int64
	totalTime time.Duration
}

// Service is the simulated API gateway. It is safe for concurrent use.
type Service struct {
	platform *lambda.Platform
	pl       *plane.Plane
	model    *netsim.Model // per-leg samples inside the handler
	clk      clock.Clock

	mu        sync.Mutex
	endpoints map[string]*endpoint
	throttled int64
}

// New returns a gateway in front of the platform.
func New(platform *lambda.Platform, meter *pricing.Meter, model *netsim.Model, clk clock.Clock) *Service {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Service{
		platform:  platform,
		pl:        plane.New(nil, meter, model),
		model:     model,
		clk:       clk,
		endpoints: make(map[string]*endpoint),
	}
}

// Plane exposes the gateway's request plane so wiring code can attach
// interceptors around every request.
func (s *Service) Plane() *plane.Plane { return s.pl }

// RegisterEndpoint routes HTTPS requests for path to a function, with
// an optional throttle.
func (s *Service) RegisterEndpoint(path, fnName string, limit Limit) error {
	if path == "" {
		return errors.New("gateway: endpoint path must be non-empty")
	}
	if _, ok := s.platform.Function(fnName); !ok {
		return fmt.Errorf("gateway: endpoint %q target %q: %w", path, fnName, lambda.ErrNoSuchFunction)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[path] = &endpoint{fnName: fnName, limit: limit, tokens: limit.Burst}
	return nil
}

// RemoveEndpoint deletes an endpoint; removing an absent path is a
// no-op.
func (s *Service) RemoveEndpoint(path string) {
	s.mu.Lock()
	delete(s.endpoints, path)
	s.mu.Unlock()
}

// EndpointStats summarizes one endpoint's traffic.
type EndpointStats struct {
	Requests int64
	Rejected int64
	MeanRun  time.Duration
}

// Stats reports an endpoint's served/rejected counts and mean run time
// (the gateway-side observability pane of the §8.1 app store).
func (s *Service) Stats(path string) (EndpointStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[path]
	if !ok {
		return EndpointStats{}, false
	}
	st := EndpointStats{Requests: ep.requests, Rejected: ep.rejected}
	if ep.requests > 0 {
		st.MeanRun = ep.totalTime / time.Duration(ep.requests)
	}
	return st, true
}

// Throttled reports how many requests the gateway has rejected.
func (s *Service) Throttled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.throttled
}

// Handle routes one client request through TLS termination, the
// throttle, and the function invocation, metering the response payload
// as internet transfer out for external callers.
func (s *Service) Handle(ctx *sim.Context, req Request) (lambda.Response, lambda.InvocationStats, error) {
	var resp lambda.Response
	var stats lambda.InvocationStats
	// The throttle runs before any latency is paid and the two wire
	// legs bracket the invocation, so the whole call body is the
	// handler stage: the plane contributes the span and the seam.
	err := s.pl.Do(ctx, &plane.Call{Service: "gateway", Op: req.Path, Nest: true}, func(preq *plane.Request) error {
		sp := preq.Span
		now := s.instant(ctx)
		s.mu.Lock()
		ep, ok := s.endpoints[req.Path]
		if !ok {
			s.mu.Unlock()
			sp.Annotate("error", "no-such-endpoint")
			return fmt.Errorf("gateway: %q: %w", req.Path, ErrNoSuchEndpoint)
		}
		if !ep.take(now) {
			s.throttled++
			ep.rejected++
			s.mu.Unlock()
			sp.Annotate("error", "throttled")
			resp = lambda.Response{Status: http.StatusTooManyRequests}
			return fmt.Errorf("gateway: %q: %w", req.Path, ErrThrottled)
		}
		ep.requests++
		fnName := ep.fnName
		s.mu.Unlock()

		// Client -> gateway leg (TLS-protected on the real platform).
		if s.model != nil && ctx != nil {
			ctx.Advance(s.model.Sample(netsim.HopClientGateway))
		}

		var err error
		resp, stats, err = s.platform.Invoke(ctx, fnName, lambda.Event{
			Source: "https",
			Path:   req.Path,
			Op:     req.Op,
			Body:   req.Body,
			Attrs:  req.Attrs,
		})
		s.mu.Lock()
		if e, ok := s.endpoints[req.Path]; ok {
			e.totalTime += stats.RunTime
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}

		// Gateway -> client leg plus egress billing.
		if ctx != nil && ctx.External {
			if s.model != nil {
				ctx.Advance(s.model.Sample(netsim.HopClientGateway))
			}
			if n := len(resp.Body); n > 0 {
				preq.MeterUsage(pricing.Usage{
					Kind:     pricing.TransferOutGB,
					Quantity: float64(n) / 1e9,
				})
			}
		}
		return nil
	})
	return resp, stats, err
}

// take consumes one token, refilling by elapsed time since the last
// fill. Caller holds the service lock.
func (ep *endpoint) take(now time.Time) bool {
	if ep.limit.RPS <= 0 && ep.limit.Burst <= 0 {
		return true // unlimited
	}
	if ep.lastFill.IsZero() {
		ep.lastFill = now
	}
	if now.After(ep.lastFill) {
		ep.tokens += now.Sub(ep.lastFill).Seconds() * ep.limit.RPS
		if ep.tokens > ep.limit.Burst {
			ep.tokens = ep.limit.Burst
		}
		ep.lastFill = now
	}
	if ep.tokens < 1 {
		return false
	}
	ep.tokens--
	return true
}

func (s *Service) instant(ctx *sim.Context) time.Time {
	if ctx != nil && ctx.Cursor != nil {
		return ctx.Cursor.Now()
	}
	return s.clk.Now()
}

// ServeHTTP adapts the gateway to net/http so the runnable examples can
// drive DIY apps over real sockets. The request path selects the
// endpoint; the "X-DIY-Op" header selects the operation; the body is
// the payload. Requests run in wall-clock mode.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "request too large", http.StatusRequestEntityTooLarge)
		return
	}
	attrs := make(map[string]string)
	for k := range r.Header {
		attrs[k] = r.Header.Get(k)
	}
	resp, _, err := s.Handle(&sim.Context{External: true}, Request{
		Path:  r.URL.Path,
		Op:    r.Header.Get("X-DIY-Op"),
		Body:  body,
		Attrs: attrs,
	})
	switch {
	case errors.Is(err, ErrNoSuchEndpoint):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrThrottled):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := resp.Status
	if status == 0 {
		status = http.StatusOK
	}
	for k, v := range resp.Attrs {
		w.Header().Set(k, v)
	}
	w.WriteHeader(status)
	w.Write(resp.Body)
}
