package gateway

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

type fixture struct {
	meter    *pricing.Meter
	model    *netsim.Model
	platform *lambda.Platform
	gw       *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{meter: pricing.NewMeter(), model: netsim.NewDefaultModel()}
	clk := clock.NewVirtual()
	f.platform = lambda.New(f.meter, f.model, clk)
	f.gw = New(f.platform, f.meter, f.model, clk)
	err := f.platform.RegisterFunction(lambda.Function{
		Name: "chat-fn",
		App:  "chat",
		Handler: func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
			env.Compute(5 * time.Millisecond)
			return lambda.Response{Status: 200, Body: append([]byte("op="+ev.Op+" "), ev.Body...)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.gw.RegisterEndpoint("/chat", "chat-fn", Limit{}); err != nil {
		t.Fatal(err)
	}
	return f
}

func extCtx() *sim.Context {
	return &sim.Context{App: "chat", Cursor: sim.NewCursor(clock.Epoch), External: true}
}

func TestHandleRoutesToFunction(t *testing.T) {
	f := newFixture(t)
	ctx := extCtx()
	resp, stats, err := f.gw.Handle(ctx, Request{Path: "/chat", Op: "send", Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "op=send hi" {
		t.Fatalf("resp = %+v", resp)
	}
	if stats.BilledTime < 100*time.Millisecond {
		t.Fatalf("billed %v", stats.BilledTime)
	}
	// E2E latency includes both client legs plus execution.
	if ctx.Cursor.Elapsed() <= stats.RunTime {
		t.Fatalf("E2E %v not greater than run %v", ctx.Cursor.Elapsed(), stats.RunTime)
	}
}

func TestHandleUnknownEndpoint(t *testing.T) {
	f := newFixture(t)
	_, _, err := f.gw.Handle(extCtx(), Request{Path: "/nope"})
	if !errors.Is(err, ErrNoSuchEndpoint) {
		t.Fatalf("got %v, want ErrNoSuchEndpoint", err)
	}
}

func TestRegisterEndpointValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.gw.RegisterEndpoint("", "chat-fn", Limit{}); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := f.gw.RegisterEndpoint("/x", "ghost", Limit{}); !errors.Is(err, lambda.ErrNoSuchFunction) {
		t.Fatalf("got %v, want ErrNoSuchFunction", err)
	}
}

func TestRemoveEndpoint(t *testing.T) {
	f := newFixture(t)
	f.gw.RemoveEndpoint("/chat")
	if _, _, err := f.gw.Handle(extCtx(), Request{Path: "/chat"}); !errors.Is(err, ErrNoSuchEndpoint) {
		t.Fatal("endpoint survived removal")
	}
	f.gw.RemoveEndpoint("/chat") // idempotent
}

func TestThrottleBurstThenRefill(t *testing.T) {
	f := newFixture(t)
	if err := f.gw.RegisterEndpoint("/limited", "chat-fn", Limit{RPS: 1, Burst: 3}); err != nil {
		t.Fatal(err)
	}
	ctx := extCtx()
	// The first 3 requests drain the burst; note each request advances
	// the cursor only slightly (sub-second), refilling < 1 token.
	okCount, throttledCount := 0, 0
	for i := 0; i < 5; i++ {
		_, _, err := f.gw.Handle(ctx, Request{Path: "/limited"})
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrThrottled):
			throttledCount++
		default:
			t.Fatal(err)
		}
	}
	if okCount < 3 || throttledCount == 0 {
		t.Fatalf("ok=%d throttled=%d; want >=3 ok and some throttled", okCount, throttledCount)
	}
	if f.gw.Throttled() != int64(throttledCount) {
		t.Fatalf("Throttled() = %d, want %d", f.gw.Throttled(), throttledCount)
	}
	// After 10 simulated seconds the bucket refills.
	ctx.Cursor.Advance(10 * time.Second)
	if _, _, err := f.gw.Handle(ctx, Request{Path: "/limited"}); err != nil {
		t.Fatalf("request after refill throttled: %v", err)
	}
}

func TestThrottleCapsDDoSCost(t *testing.T) {
	// §8.2: DDoS attacks impose financial cost; the throttle bounds the
	// number of billed invocations no matter how many requests arrive.
	f := newFixture(t)
	if err := f.gw.RegisterEndpoint("/t", "chat-fn", Limit{RPS: 10, Burst: 10}); err != nil {
		t.Fatal(err)
	}
	before := f.meter.Total(pricing.LambdaRequests)
	ctx := extCtx() // all within one instant: only the burst passes
	for i := 0; i < 1000; i++ {
		c := &sim.Context{Cursor: sim.NewCursor(ctx.Cursor.Start()), External: true}
		f.gw.Handle(c, Request{Path: "/t"})
	}
	invoked := f.meter.Total(pricing.LambdaRequests) - before
	if invoked > 30 {
		t.Fatalf("DDoS burst caused %v billed invocations; throttle ineffective", invoked)
	}
}

func TestExternalResponseMetersTransfer(t *testing.T) {
	f := newFixture(t)
	big := make([]byte, 1_000_000)
	f.platform.RegisterFunction(lambda.Function{
		Name: "big-fn", App: "chat",
		Handler: func(env *lambda.Env, ev lambda.Event) (lambda.Response, error) {
			return lambda.Response{Status: 200, Body: big}, nil
		},
	})
	f.gw.RegisterEndpoint("/big", "big-fn", Limit{})

	f.gw.Handle(extCtx(), Request{Path: "/big"})
	if got := f.meter.Total(pricing.TransferOutGB); got < 0.0009 || got > 0.0012 {
		t.Fatalf("transfer metered %v GB, want ~0.001", got)
	}

	// Internal (non-external) calls are not billed egress.
	before := f.meter.Total(pricing.TransferOutGB)
	internal := &sim.Context{Cursor: sim.NewCursor(clock.Epoch)}
	f.gw.Handle(internal, Request{Path: "/big"})
	if got := f.meter.Total(pricing.TransferOutGB); got != before {
		t.Fatal("internal call billed egress")
	}
}

func TestServeHTTP(t *testing.T) {
	f := newFixture(t)
	srv := httptest.NewServer(f.gw)
	defer srv.Close()

	req, _ := http.NewRequest("POST", srv.URL+"/chat", strings.NewReader("hello"))
	req.Header.Set("X-DIY-Op", "send")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "op=send hello" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}

	// Unknown path maps to 404.
	r2, err := http.Post(srv.URL+"/ghost", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", r2.StatusCode)
	}
}

func TestServeHTTPThrottled(t *testing.T) {
	f := newFixture(t)
	f.gw.RegisterEndpoint("/tight", "chat-fn", Limit{RPS: 0.001, Burst: 1})
	srv := httptest.NewServer(f.gw)
	defer srv.Close()
	r1, err := http.Post(srv.URL+"/tight", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	r2, err := http.Post(srv.URL+"/tight", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r1.StatusCode != 200 || r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("statuses %d, %d; want 200, 429", r1.StatusCode, r2.StatusCode)
	}
}

func TestEndpointStats(t *testing.T) {
	f := newFixture(t)
	if err := f.gw.RegisterEndpoint("/stat", "chat-fn", Limit{RPS: 1, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := extCtx()
	served, rejected := 0, 0
	for i := 0; i < 5; i++ {
		if _, _, err := f.gw.Handle(ctx, Request{Path: "/stat"}); err == nil {
			served++
		} else {
			rejected++
		}
	}
	st, ok := f.gw.Stats("/stat")
	if !ok {
		t.Fatal("stats missing")
	}
	if st.Requests != int64(served) || st.Rejected != int64(rejected) {
		t.Fatalf("stats = %+v, want %d served %d rejected", st, served, rejected)
	}
	if st.MeanRun <= 0 {
		t.Fatalf("mean run = %v", st.MeanRun)
	}
	if _, ok := f.gw.Stats("/ghost"); ok {
		t.Fatal("stats for unknown endpoint")
	}
}
