package netsim

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestHopString(t *testing.T) {
	if HopKMS.String() != "kms" {
		t.Fatalf("HopKMS.String() = %q", HopKMS.String())
	}
	if got := Hop(99).String(); got != "hop(99)" {
		t.Fatalf("unknown hop String() = %q", got)
	}
}

func TestSampleDeterministicAcrossModels(t *testing.T) {
	a := NewDefaultModel()
	b := NewDefaultModel()
	for i := 0; i < 100; i++ {
		if av, bv := a.Sample(HopS3), b.Sample(HopS3); av != bv {
			t.Fatalf("sample %d diverged: %v vs %v (same seed)", i, av, bv)
		}
	}
}

func TestSampleMedianCalibrated(t *testing.T) {
	m := NewDefaultModel()
	const n = 20001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = m.Sample(HopS3)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	med := samples[n/2]
	want := m.Median(HopS3)
	// Log-normal sampling around the median: the empirical median must
	// land within 5% of the configured one.
	if ratio := float64(med) / float64(want); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("empirical median %v vs configured %v (ratio %.3f)", med, want, ratio)
	}
}

func TestSampleZeroSigmaIsExact(t *testing.T) {
	p := DefaultParams()
	p.Hops[HopKMS].Sigma = 0
	m := NewModel(p)
	for i := 0; i < 10; i++ {
		if got := m.Sample(HopKMS); got != p.Hops[HopKMS].Median {
			t.Fatalf("zero-sigma sample = %v, want %v", got, p.Hops[HopKMS].Median)
		}
	}
}

func TestSampleInvalidHop(t *testing.T) {
	m := NewDefaultModel()
	if m.Sample(Hop(-1)) != 0 || m.Sample(Hop(1000)) != 0 {
		t.Fatal("invalid hop must sample 0")
	}
	if m.Median(Hop(-1)) != 0 {
		t.Fatal("invalid hop must have 0 median")
	}
}

func TestMemoryLatencyFactor(t *testing.T) {
	tests := []struct {
		mem, ref int
		want     float64
	}{
		{448, 448, 1.0},
		{128, 448, 3.5},
		{224, 448, 2.0},
		{896, 448, 0.75},  // clamped low
		{64, 448, 4.0},    // clamped high
		{0, 448, 3.5},     // zero memory defaults to 128
		{448, 0, 1.0},     // zero ref defaults to 448
		{1536, 448, 0.75}, // clamp
	}
	for _, tt := range tests {
		if got := MemoryLatencyFactor(tt.mem, tt.ref); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("MemoryLatencyFactor(%d,%d) = %v, want %v", tt.mem, tt.ref, got, tt.want)
		}
	}
}

func TestBandwidthProportionalToMemory(t *testing.T) {
	if b1536 := BandwidthMBps(1536); math.Abs(b1536-35.0) > 1e-9 {
		t.Fatalf("BandwidthMBps(1536) = %v, want 35", b1536)
	}
	b128 := BandwidthMBps(128)
	b448 := BandwidthMBps(448)
	if ratio := b448 / b128; math.Abs(ratio-448.0/128.0) > 1e-9 {
		t.Fatalf("bandwidth not proportional: 448/128 ratio = %v", ratio)
	}
	if BandwidthMBps(0) != BandwidthMBps(128) {
		t.Fatal("zero memory must default to the 128 MB floor")
	}
}

func TestTransferTime(t *testing.T) {
	if TransferTime(0, 10) != 0 {
		t.Fatal("zero bytes must take zero time")
	}
	if TransferTime(100, 0) != 0 {
		t.Fatal("zero bandwidth means ample: zero time")
	}
	// 10 MB at 10 MB/s = 1 s.
	if got := TransferTime(10e6, 10); got != time.Second {
		t.Fatalf("TransferTime(10MB, 10MB/s) = %v, want 1s", got)
	}
}

func TestS3LatencyMemoryCoupling(t *testing.T) {
	// The paper's key empirical observation: S3 calls from a 128 MB
	// function are significantly slower than from 448 MB.
	p := DefaultParams()
	for i := range p.Hops {
		p.Hops[i].Sigma = 0 // deterministic for the comparison
	}
	m := NewModel(p)
	small := m.S3Latency(128, 1024)
	ref := m.S3Latency(448, 1024)
	if float64(small) < 2.5*float64(ref) {
		t.Fatalf("128 MB S3 latency %v not significantly slower than 448 MB %v", small, ref)
	}
}

func TestS3LatencyPayloadCost(t *testing.T) {
	p := DefaultParams()
	for i := range p.Hops {
		p.Hops[i].Sigma = 0
	}
	m := NewModel(p)
	tiny := m.S3Latency(448, 0)
	big := m.S3Latency(448, 50<<20) // 50 MB payload
	if big <= tiny {
		t.Fatalf("payload transfer cost missing: %v <= %v", big, tiny)
	}
}

func TestInterRegion(t *testing.T) {
	m := NewDefaultModel()
	if m.InterRegion("us-west-2", "us-west-2") != 0 {
		t.Fatal("same-region hop must be free")
	}
	if m.InterRegion("us-west-2", "eu-west-1") == 0 {
		t.Fatal("cross-region hop must cost latency")
	}
}

func TestOutages(t *testing.T) {
	m := NewDefaultModel()
	if !m.RegionUp("us-west-2") {
		t.Fatal("regions start healthy")
	}
	m.SetOutage("us-west-2", true)
	if m.RegionUp("us-west-2") {
		t.Fatal("outage not recorded")
	}
	m.SetOutage("us-west-2", false)
	if !m.RegionUp("us-west-2") {
		t.Fatal("recovery not recorded")
	}
}

func TestConcurrentSampling(t *testing.T) {
	m := NewDefaultModel()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				m.Sample(HopS3)
				m.S3Latency(448, 100)
				m.RegionUp("us-west-2")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
