// Package netsim models the network behaviour of the simulated cloud:
// per-hop latency distributions, the coupling between a serverless
// function's memory allocation and its I/O bandwidth, inter-region
// latency, and region fault injection.
//
// All sampling is driven by a seeded generator so experiments are
// reproducible run to run.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Hop identifies one network/service hop whose latency the model samples.
type Hop int

// The hops that occur in a DIY request flow (paper Figure 1 plus the
// SQS long-poll delivery path of the §6.2 chat prototype).
const (
	// HopClientGateway is the client's HTTPS request reaching the
	// platform's front-end endpoint.
	HopClientGateway Hop = iota
	// HopGatewayDispatch is the platform routing an event to a warm
	// function container.
	HopGatewayDispatch
	// HopColdStart is the extra delay of provisioning a fresh container.
	HopColdStart
	// HopKMS is one API call to the key management service.
	HopKMS
	// HopS3 is the base latency of one object-store API call,
	// excluding payload transfer time.
	HopS3
	// HopSQSSend is posting one message to a queue.
	HopSQSSend
	// HopSQSDeliver is a queued message becoming visible to an
	// outstanding long poll.
	HopSQSDeliver
	// HopSQSPoll is the overhead of initiating a receive call.
	HopSQSPoll
	// HopSES is one call to the email send service.
	HopSES
	// HopInterRegion is one cross-region forwarding step.
	HopInterRegion
	numHops
)

var hopNames = [...]string{
	HopClientGateway:   "client-gateway",
	HopGatewayDispatch: "gateway-dispatch",
	HopColdStart:       "cold-start",
	HopKMS:             "kms",
	HopS3:              "s3",
	HopSQSSend:         "sqs-send",
	HopSQSDeliver:      "sqs-deliver",
	HopSQSPoll:         "sqs-poll",
	HopSES:             "ses",
	HopInterRegion:     "inter-region",
}

// String returns the hop's name.
func (h Hop) String() string {
	if h < 0 || int(h) >= len(hopNames) {
		return fmt.Sprintf("hop(%d)", int(h))
	}
	return hopNames[h]
}

// HopParams describes one hop's latency distribution: a median and a
// multiplicative jitter fraction. Samples are drawn log-normally around
// the median so the distribution has the heavy right tail real cloud
// RPCs exhibit, while the median stays exactly calibrated.
type HopParams struct {
	Median time.Duration
	// Sigma is the log-normal shape parameter; 0 yields the median
	// deterministically. Typical cloud API calls sit near 0.2–0.4.
	Sigma float64
}

// Params configures a Model.
type Params struct {
	Seed int64
	Hops [numHops]HopParams
	// RefMemoryMB is the function memory size at which S3 base latency
	// is exactly the configured median (the paper's 448 MB prototype).
	RefMemoryMB int
	// InterRegionRTT is the median RTT between distinct regions.
	InterRegionRTT time.Duration
}

// DefaultParams returns hop latencies calibrated so the §6.2 chat
// prototype reproduces the paper's Table 3 medians (run 134 ms, billed
// 200 ms, E2E 211 ms) on the simulated us-west-2.
func DefaultParams() Params {
	p := Params{
		Seed:           1,
		RefMemoryMB:    448,
		InterRegionRTT: 60 * time.Millisecond,
	}
	p.Hops[HopClientGateway] = HopParams{Median: 16 * time.Millisecond, Sigma: 0.15}
	p.Hops[HopGatewayDispatch] = HopParams{Median: 9 * time.Millisecond, Sigma: 0.15}
	p.Hops[HopColdStart] = HopParams{Median: 250 * time.Millisecond, Sigma: 0.25}
	p.Hops[HopKMS] = HopParams{Median: 14 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopS3] = HopParams{Median: 44 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopSQSSend] = HopParams{Median: 13 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopSQSDeliver] = HopParams{Median: 36 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopSQSPoll] = HopParams{Median: 8 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopSES] = HopParams{Median: 40 * time.Millisecond, Sigma: 0.2}
	p.Hops[HopInterRegion] = HopParams{Median: 60 * time.Millisecond, Sigma: 0.2}
	return p
}

// Model samples hop latencies and tracks region health. It is safe for
// concurrent use.
type Model struct {
	mu      sync.Mutex
	rng     *rand.Rand
	params  Params
	outages map[string]bool
}

// NewModel returns a model using the given parameters.
func NewModel(p Params) *Model {
	if p.RefMemoryMB <= 0 {
		p.RefMemoryMB = 448
	}
	return &Model{
		rng:     rand.New(rand.NewSource(p.Seed)),
		params:  p,
		outages: make(map[string]bool),
	}
}

// NewDefaultModel returns a model with DefaultParams.
func NewDefaultModel() *Model { return NewModel(DefaultParams()) }

// Sample draws one latency for hop h.
func (m *Model) Sample(h Hop) time.Duration {
	if h < 0 || h >= numHops {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sampleLocked(m.params.Hops[h])
}

func (m *Model) sampleLocked(hp HopParams) time.Duration {
	if hp.Median <= 0 {
		return 0
	}
	if hp.Sigma == 0 {
		return hp.Median
	}
	f := math.Exp(hp.Sigma * m.rng.NormFloat64())
	return time.Duration(float64(hp.Median) * f)
}

// Median reports the configured median latency for hop h, with no
// sampling noise. Useful for closed-form cost/latency analysis.
func (m *Model) Median(h Hop) time.Duration {
	if h < 0 || h >= numHops {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.params.Hops[h].Median
}

// S3Latency samples the latency of one object-store API call issued by a
// function with memMB of allocated memory, transferring payload bytes.
//
// Two memory couplings are modelled, both observed by the paper's
// prototype ("API calls to S3 took significantly longer when we
// allocated less memory to the function"):
//
//   - the per-request base latency scales up as memory shrinks below the
//     reference allocation (448 MB), because Lambda provisions network
//     and CPU proportionally to memory;
//   - payload transfer time is payload size divided by the
//     memory-proportional bandwidth.
func (m *Model) S3Latency(memMB int, payloadBytes int64) time.Duration {
	m.mu.Lock()
	base := m.sampleLocked(m.params.Hops[HopS3])
	m.mu.Unlock()
	scaled := time.Duration(float64(base) * MemoryLatencyFactor(memMB, m.params.RefMemoryMB))
	return scaled + TransferTime(payloadBytes, BandwidthMBps(memMB))
}

// MemoryLatencyFactor reports the multiplicative penalty on per-request
// base latency for a function with memMB of memory relative to refMB.
// The factor is clamped to [0.75, 4.0]: more memory than the reference
// helps a little; much less hurts a lot.
func MemoryLatencyFactor(memMB, refMB int) float64 {
	if memMB <= 0 {
		memMB = 128
	}
	if refMB <= 0 {
		refMB = 448
	}
	f := float64(refMB) / float64(memMB)
	return math.Min(4.0, math.Max(0.75, f))
}

// BandwidthMBps reports the modelled network bandwidth, in MB/s,
// available to a function with memMB of allocated memory. Calibrated to
// 2017 Lambda measurements: roughly proportional to memory, ~35 MB/s at
// the 1536 MB ceiling.
func BandwidthMBps(memMB int) float64 {
	if memMB <= 0 {
		memMB = 128
	}
	const mbpsPerMB = 35.0 / 1536.0
	return mbpsPerMB * float64(memMB)
}

// TransferTime reports how long a payload of n bytes takes at bw MB/s.
// A zero or negative bandwidth means "ample" and costs no time.
func TransferTime(n int64, bw float64) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	seconds := float64(n) / (bw * 1e6)
	return time.Duration(seconds * float64(time.Second))
}

// InterRegion samples the latency of one cross-region hop; zero if the
// regions are the same.
func (m *Model) InterRegion(from, to string) time.Duration {
	if from == to {
		return 0
	}
	return m.Sample(HopInterRegion)
}

// SetOutage marks a region as down (true) or healthy (false).
func (m *Model) SetOutage(region string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if down {
		m.outages[region] = true
	} else {
		delete(m.outages, region)
	}
}

// RegionUp reports whether a region is currently healthy.
func (m *Model) RegionUp(region string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.outages[region]
}
