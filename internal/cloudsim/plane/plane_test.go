package plane

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func allowAll(t *testing.T) *iam.Service {
	t.Helper()
	svc := iam.New()
	err := svc.PutRole(&iam.Role{
		Name: "fn",
		Policies: []iam.Policy{{
			Name:       "all",
			Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func tracedCtx() (*sim.Context, *trace.Trace) {
	ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(t0)}
	tr := ctx.StartTrace("test")
	return ctx, tr
}

// TestPipelineOrder drives one fully-featured call and checks each
// stage's observable effect: the span opens at the call instant with
// the call's annotations, the IAM decision lands as a zero-duration
// child span before any latency is paid, the cursor advances, the
// request fee reaches both the meter and the span ledger, and the
// handler runs last (observing the post-latency cursor).
func TestPipelineOrder(t *testing.T) {
	meter := pricing.NewMeter()
	p := New(allowAll(t), meter, netsim.NewDefaultModel())
	ctx, tr := tracedCtx()

	var handlerAt time.Time
	err := p.Do(ctx, &Call{
		Service:     "svc",
		Op:          "Op",
		Action:      "svc:Op",
		Resource:    "thing/x",
		Annotations: []trace.Annotation{{Key: "k", Value: "v"}},
		Latency:     &Latency{Hop: netsim.HopS3},
		Usage:       []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}, func(req *Request) error {
		handlerAt = ctx.Now()
		if req.Span == nil {
			t.Error("handler got no span")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !handlerAt.After(t0) {
		t.Errorf("handler ran at %v; want after latency advanced the cursor past %v", handlerAt, t0)
	}

	sp := tr.Find("svc", "Op")
	if sp == nil {
		t.Fatal("no svc/Op span recorded")
	}
	if got, ok := sp.Annotation("k"); !ok || got != "v" {
		t.Errorf("call annotation = %q, %v", got, ok)
	}
	if sp.Start() != t0 {
		t.Errorf("span opened at %v, want call instant %v", sp.Start(), t0)
	}
	if sp.End() != handlerAt {
		t.Errorf("span closed at %v, want handler-return instant %v", sp.End(), handlerAt)
	}

	asp := tr.Find("iam", "svc:Op")
	if asp == nil {
		t.Fatal("no iam child span recorded")
	}
	if asp.Parent() != sp {
		t.Error("iam span is not a child of the call span")
	}
	if asp.Start() != t0 || asp.Duration() != 0 {
		t.Errorf("iam span [%v +%v]; want zero-duration at the call instant (before latency)", asp.Start(), asp.Duration())
	}
	if res, _ := asp.Annotation("result"); res != "allow" {
		t.Errorf("iam result = %q, want allow", res)
	}

	if got := meter.Total(pricing.S3GetRequests); got != 1 {
		t.Errorf("metered %v requests, want 1", got)
	}
	us := sp.Usage()
	if len(us) != 1 || us[0].Kind != pricing.S3GetRequests || us[0].App != "app" {
		t.Errorf("span ledger = %+v, want one app-stamped request fee", us)
	}
}

// TestDeniedCallStillMetersAndPaysLatency: AWS bills and delays denied
// API calls, so stages 3 and 4 run even when authorization fails — but
// the handler must not.
func TestDeniedCallStillMetersAndPaysLatency(t *testing.T) {
	meter := pricing.NewMeter()
	p := New(iam.New(), meter, netsim.NewDefaultModel()) // no roles: everything denied
	ctx, tr := tracedCtx()

	ran := false
	err := p.Do(ctx, &Call{
		Service:  "svc",
		Op:       "Op",
		Action:   "svc:Op",
		Resource: "thing/x",
		Latency:  &Latency{Hop: netsim.HopS3},
		Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}, func(*Request) error {
		ran = true
		return nil
	})
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if ran {
		t.Error("handler ran on a denied call")
	}
	if got := meter.Total(pricing.S3GetRequests); got != 1 {
		t.Errorf("denied call metered %v requests, want 1", got)
	}
	if !ctx.Now().After(t0) {
		t.Error("denied call paid no latency")
	}
	sp := tr.Find("svc", "Op")
	if msg, _ := sp.Annotation("error"); msg != "access-denied" {
		t.Errorf("error annotation = %q, want access-denied", msg)
	}
	if res, _ := tr.Find("iam", "svc:Op").Annotation("result"); res != "deny" {
		t.Errorf("iam result = %q, want deny", res)
	}
}

// TestNilIAMFailsClosed: an authenticated Call on a plane with no IAM
// service must deny, not silently allow.
func TestNilIAMFailsClosed(t *testing.T) {
	p := New(nil, nil, nil)
	err := p.Do(nil, &Call{Service: "svc", Op: "Op", Action: "svc:Op"}, func(*Request) error {
		t.Error("handler ran")
		return nil
	})
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
}

// TestInterceptorSeam: Use-registered interceptors wrap the handler
// stage in registration order, first registered outermost, and can
// short-circuit it.
func TestInterceptorSeam(t *testing.T) {
	p := New(nil, nil, nil)
	var order []string
	mk := func(name string) Interceptor {
		return func(next HandlerFunc) HandlerFunc {
			return func(req *Request) error {
				order = append(order, name+">")
				err := next(req)
				order = append(order, "<"+name)
				return err
			}
		}
	}
	p.Use(mk("outer"), mk("inner"))
	err := p.Do(nil, &Call{Service: "svc", Op: "Op"}, func(*Request) error {
		order = append(order, "handler")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"outer>", "inner>", "handler", "<inner", "<outer"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}

	boom := errors.New("injected")
	p2 := New(nil, nil, nil)
	p2.Use(func(HandlerFunc) HandlerFunc {
		return func(*Request) error { return boom }
	})
	err = p2.Do(nil, &Call{Service: "svc", Op: "Op"}, func(*Request) error {
		t.Error("short-circuited handler ran")
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// TestInterceptorSeesDenial: interceptors wrap the handler stage even
// when authorization fails — the wrapped stage returns ErrDenied with
// the service handler skipped — so observability interceptors can
// count denials.
func TestInterceptorSeesDenial(t *testing.T) {
	meter := pricing.NewMeter()
	p := New(iam.New(), meter, netsim.NewDefaultModel()) // no roles: everything denied
	var observed error
	calls := 0
	p.Use(func(next HandlerFunc) HandlerFunc {
		return func(req *Request) error {
			calls++
			observed = next(req)
			return observed
		}
	})
	ctx, _ := tracedCtx()
	err := p.Do(ctx, &Call{
		Service:  "svc",
		Op:       "Op",
		Action:   "svc:Op",
		Resource: "thing/x",
		Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}, func(*Request) error {
		t.Error("handler ran on a denied call")
		return nil
	})
	if !errors.Is(err, iam.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if calls != 1 {
		t.Fatalf("interceptor ran %d times, want 1", calls)
	}
	if !errors.Is(observed, iam.ErrDenied) {
		t.Errorf("interceptor observed %v, want ErrDenied", observed)
	}
}

// TestRequestObservability: Start reports the pre-latency cursor
// instant and Metered accumulates the request fee plus handler-metered
// usage, so interceptors can derive latency and cost per call.
func TestRequestObservability(t *testing.T) {
	meter := pricing.NewMeter()
	p := New(allowAll(t), meter, netsim.NewDefaultModel())
	ctx, _ := tracedCtx()

	var req *Request
	p.Use(func(next HandlerFunc) HandlerFunc {
		return func(r *Request) error {
			req = r
			return next(r)
		}
	})
	err := p.Do(ctx, &Call{
		Service: "svc",
		Op:      "Op",
		Action:  "svc:Op",
		Latency: &Latency{Hop: netsim.HopS3},
		Usage:   []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}, func(r *Request) error {
		r.MeterUsage(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: 2})
		r.MeterUsageAs(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1, App: "fn-app"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if req.Start() != t0 {
		t.Errorf("Start() = %v, want the call instant %v", req.Start(), t0)
	}
	if !ctx.Now().After(req.Start()) {
		t.Error("cursor did not advance past Start(); latency unobservable")
	}
	us := req.Metered()
	if len(us) != 3 {
		t.Fatalf("Metered() = %d records, want request fee + 2 handler records", len(us))
	}
	if us[0].Kind != pricing.S3GetRequests || us[0].App != "app" {
		t.Errorf("request fee = %+v", us[0])
	}
	if us[1].Kind != pricing.TransferOutGB || us[1].App != "app" {
		t.Errorf("MeterUsage record = %+v, want app restamped", us[1])
	}
	if us[2].Kind != pricing.LambdaRequests || us[2].App != "fn-app" {
		t.Errorf("MeterUsageAs record = %+v, want caller's attribution kept", us[2])
	}
	// Both meter paths really metered.
	if meter.Total(pricing.TransferOutGB) != 2 || meter.Total(pricing.LambdaRequests) != 1 {
		t.Error("handler-metered usage missing from the meter")
	}
}

// TestHandlerErrorAnnotation: a failing handler annotates the span
// with its error, but never overwrites an annotation the handler set
// itself.
func TestHandlerErrorAnnotation(t *testing.T) {
	p := New(nil, nil, nil)
	ctx, tr := tracedCtx()
	wantErr := errors.New("svc: thing exploded")
	if err := p.Do(ctx, &Call{Service: "svc", Op: "Op"}, func(*Request) error {
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if msg, _ := tr.Find("svc", "Op").Annotation("error"); msg != wantErr.Error() {
		t.Errorf("error annotation = %q, want %q", msg, wantErr.Error())
	}

	ctx2, tr2 := tracedCtx()
	p.Do(ctx2, &Call{Service: "svc", Op: "Short"}, func(req *Request) error {
		req.Span.Annotate("error", "short-token")
		return wantErr
	})
	if msg, _ := tr2.Find("svc", "Short").Annotation("error"); msg != "short-token" {
		t.Errorf("handler's own error annotation was overwritten: %q", msg)
	}
}

// TestLatencyModel: the latency stage reproduces the service formulas —
// scale factor, memory coupling against the 448 MB reference, and
// payload transfer at the allocation's bandwidth — against an
// identically-seeded model.
func TestLatencyModel(t *testing.T) {
	const memMB = 128
	const payload = int64(1 << 20)
	p := New(nil, nil, netsim.NewDefaultModel())
	ref := netsim.NewDefaultModel() // same seed, same stream

	ctx := &sim.Context{Cursor: sim.NewCursor(t0), FunctionMemMB: memMB}
	err := p.Do(ctx, &Call{
		Service: "svc",
		Op:      "Op",
		Latency: &Latency{Hop: netsim.HopS3, MemoryCoupled: true, TransferBytes: payload},
	}, func(*Request) error { return nil })
	if err != nil {
		t.Fatal(err)
	}

	d := ref.Sample(netsim.HopS3)
	d = time.Duration(float64(d) * netsim.MemoryLatencyFactor(memMB, RefMemoryMB))
	d += netsim.TransferTime(payload, netsim.BandwidthMBps(memMB))
	if got := ctx.Cursor.Elapsed(); got != d {
		t.Errorf("latency = %v, want %v", got, d)
	}

	// Scale divides the base sample like dynamo's quarter-hop.
	p2 := New(nil, nil, netsim.NewDefaultModel())
	ref2 := netsim.NewDefaultModel()
	ctx2 := &sim.Context{Cursor: sim.NewCursor(t0)}
	if err := p2.Do(ctx2, &Call{Service: "svc", Op: "Op", Latency: &Latency{Hop: netsim.HopS3, Scale: 0.25}},
		func(*Request) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(ref2.Sample(netsim.HopS3)) * 0.25)
	if got := ctx2.Cursor.Elapsed(); got != want {
		t.Errorf("scaled latency = %v, want %v", got, want)
	}
}

// TestNilSafety: untraced, meterless, modelless planes and nil
// contexts must all be usable no-ops around the handler.
func TestNilSafety(t *testing.T) {
	p := New(nil, nil, nil)
	ran := false
	err := p.Do(nil, &Call{
		Service: "svc",
		Op:      "Op",
		Latency: &Latency{Hop: netsim.HopS3},
		Usage:   []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
	}, func(req *Request) error {
		ran = true
		req.MeterUsage(pricing.Usage{Kind: pricing.TransferOutGB, Quantity: 1}) // nil meter: no-op
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("err = %v, ran = %v", err, ran)
	}
}

// TestRegistry: Register/Ops is sorted and append-only.
func TestRegistry(t *testing.T) {
	before := len(Ops())
	Register(Op{Service: "ztest", Method: "B"}, Op{Service: "ztest", Method: "A"})
	ops := Ops()
	if len(ops) != before+2 {
		t.Fatalf("Ops() grew by %d, want 2", len(ops)-before)
	}
	for i := 1; i < len(ops); i++ {
		a, b := ops[i-1], ops[i]
		if a.Service > b.Service || (a.Service == b.Service && a.Method > b.Method) {
			t.Fatalf("Ops() not sorted at %d: %+v > %+v", i, a, b)
		}
	}
}
