// Package plane implements the shared request plane every simulated
// cloud service routes its public API calls through. The paper's cost
// and privacy arguments rest on every service hop being traced,
// authenticated, latency-modeled, and metered; before this package each
// service re-implemented that path in its own private `begin` helper
// with drifting conventions. The plane fixes one pipeline, in one
// documented order, for all of them:
//
//	trace span open ──► IAM authorization ──► latency sampling ──► meter ──► handler ──► span close
//	                    (child "iam" span)     (memory-coupled       (mirrored into
//	                                            + payload transfer)   the span ledger)
//
// Ordering contract:
//
//  1. Trace: a span for the hop opens at the caller's cursor instant
//     and closes when the call returns, annotated with the error when
//     the call fails. Calls with Nest set push the span so downstream
//     hops made with the same context nest under it.
//  2. Authorization: the IAM decision is recorded as a zero-duration
//     "iam" child span on traced flows, so `diyctl trace` shows where
//     denials happen. Denial does NOT short-circuit the next two
//     stages — AWS delays and bills denied API calls, so the simulator
//     must too.
//  3. Latency: one sample of the call's hop distribution, scaled by
//     the caller's memory allocation when the hop is memory-coupled
//     (the paper's 128 MB vs 448 MB finding) plus payload transfer
//     time at the caller's bandwidth, advances the flow's cursor.
//  4. Metering: the call's request-fee usage is added to the global
//     meter and mirrored into the span's ledger so per-request cost
//     attribution matches the bill record for record.
//  5. Handler: the service's state-mutating closure runs only if
//     authorization passed. Registered interceptors wrap this stage —
//     the seam where fault injection, concurrency limits, and per-op
//     metrics land without touching eight services.
package plane

import (
	"sort"
	"sync"
	"time"

	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

// RefMemoryMB is the function allocation at which the memory-coupled
// latency factor is 1.0 — the paper's 448 MB prototype allocation.
const RefMemoryMB = 448

// Latency describes how a call consumes simulated time.
type Latency struct {
	// Hop selects the base latency distribution to sample.
	Hop netsim.Hop
	// Scale multiplies the sampled base (0 means 1.0). DynamoDB uses
	// 0.25: a table op is a quarter of an S3 call.
	Scale float64
	// MemoryCoupled scales the base by the caller's function memory
	// allocation relative to RefMemoryMB, and defaults the transfer
	// bandwidth from the allocation when the caller has none set.
	MemoryCoupled bool
	// TransferBytes adds payload transfer time at the caller's
	// bandwidth on top of the base latency.
	TransferBytes int64
}

// Call describes one service API call to the request plane.
type Call struct {
	// Service and Op name the trace span ("s3", "s3:PutObject").
	Service string
	Op      string
	// Action is the IAM action to authorize, or "" for calls that are
	// not IAM-authenticated (gateway ingress, VM requests, email).
	Action string
	// Resource is the IAM resource the action targets.
	Resource string
	// Nest pushes the span onto the context so downstream hops made
	// during the handler nest under it (gateway, ses). Without it the
	// span is a leaf and downstream spans stay siblings (ec2, lambda
	// wire their children explicitly).
	Nest bool
	// Annotations are attached to the span at open.
	Annotations []trace.Annotation
	// Latency is the call's time cost; nil when the op's latency is
	// conditional and applied inside the handler (gateway's throttle
	// runs before any latency is paid; ec2 checks instance state
	// first; SQS delivery latency depends on message availability).
	Latency *Latency
	// Usage is the call's request-fee metering, emitted on success and
	// error alike. The caller's app attribution is stamped on here.
	Usage []pricing.Usage
}

// Request is the in-flight view of a Call handed to the handler and to
// interceptors.
type Request struct {
	Ctx  *sim.Context
	Call *Call
	// Span is the call's open span (nil on untraced flows; all its
	// methods are nil-safe).
	Span    *trace.Span
	plane   *Plane
	start   time.Time
	authErr error
	handler HandlerFunc
	metered []pricing.Usage
	// meteredBuf backs metered for the common case (a call fee plus at
	// most one handler-metered record) so the hot path allocates the
	// Request and nothing else.
	meteredBuf [2]pricing.Usage
}

// Start reports the flow-cursor instant at which the call entered the
// plane (zero on cursor-less flows). Interceptors subtract it from the
// cursor's position after the handler to observe the call's full
// simulated latency.
func (r *Request) Start() time.Time { return r.start }

// Metered returns every usage record metered through this request so
// far — the request fee plus anything the handler added — so
// interceptors can price or aggregate per-call usage. The slice is the
// request's own; do not mutate it.
func (r *Request) Metered() []pricing.Usage { return r.metered }

// MeterUsage meters additional usage discovered during the handler
// (e.g. transfer-out for an external read), stamped with the caller's
// app attribution and mirrored into the span's ledger like the
// request fee.
func (r *Request) MeterUsage(u pricing.Usage) {
	if r.Ctx != nil {
		u.App = r.Ctx.App
	} else {
		u.App = ""
	}
	r.MeterUsageAs(u)
}

// MeterUsageAs is MeterUsage without the app restamping: the usage is
// attributed exactly as the caller built it. Lambda uses it to bill
// invocations to the function's own app rather than the invoking
// caller's.
func (r *Request) MeterUsageAs(u pricing.Usage) {
	if r.plane.meter != nil {
		r.plane.meter.Add(u)
	}
	r.Span.AddUsage(u)
	r.metered = append(r.metered, u)
}

// HandlerFunc is the service-specific stage of a call.
type HandlerFunc func(*Request) error

// Interceptor wraps the handler stage of every call routed through a
// plane. Interceptors run after authorization, latency, and metering,
// in registration order (the first registered is outermost). They see
// denied calls — the wrapped stage returns the authorization error
// with the service handler skipped — so cross-cutting observers can
// count denials.
//
// The wrapping happens once, at Use time: the factory is called with
// the downstream stage and the HandlerFunc it returns is reused for
// every subsequent call, possibly concurrently. Per-call state belongs
// on the *Request, not in variables captured at wrap time.
type Interceptor func(next HandlerFunc) HandlerFunc

// Plane is one service's request pipeline. A nil model disables the
// latency stage; a nil meter disables metering; a nil iam with an
// authenticated Call fails closed.
type Plane struct {
	iam   *iam.Service
	meter *pricing.Meter
	model *netsim.Model
	extra []Interceptor
	// chain is the handler stage with every registered interceptor
	// pre-composed around it, rebuilt on Use. Composing at registration
	// rather than per call keeps plane.Do free of closure allocations.
	chain HandlerFunc
}

// New returns a request plane over the given IAM, meter, and network
// model (any of which may be nil for services that do not use them).
func New(iamSvc *iam.Service, meter *pricing.Meter, model *netsim.Model) *Plane {
	return &Plane{iam: iamSvc, meter: meter, model: model, chain: dispatch}
}

// dispatch is the innermost stage: surface the authorization verdict,
// then run the service handler. It reads per-call state off the
// Request so the composed chain can be built once and shared.
func dispatch(r *Request) error {
	if r.authErr != nil {
		return r.authErr
	}
	return r.handler(r)
}

// Use registers interceptors around the handler stage and re-composes
// the chain. Call it during wiring, before the plane serves requests;
// Do reads the composed chain without locking. Each interceptor
// factory runs once, here — see Interceptor.
func (p *Plane) Use(is ...Interceptor) {
	p.extra = append(p.extra, is...)
	p.chain = dispatch
	for i := len(p.extra) - 1; i >= 0; i-- {
		p.chain = p.extra[i](p.chain)
	}
}

// Do runs one call through the pipeline: span, authorization, latency,
// metering, then the handler (wrapped by any registered interceptors).
// It returns the authorization error — with the handler skipped — when
// the caller is denied, otherwise the handler's error.
func (p *Plane) Do(ctx *sim.Context, call *Call, h HandlerFunc) error {
	// Stage 1: trace.
	var sp *trace.Span
	if call.Nest {
		pushed, done := ctx.PushSpan(call.Service, call.Op)
		sp = pushed
		defer done()
	} else {
		sp = ctx.StartSpan(call.Service, call.Op)
		defer ctx.FinishSpan(sp)
	}
	for _, a := range call.Annotations {
		sp.Annotate(a.Key, a.Value)
	}
	req := &Request{Ctx: ctx, Call: call, Span: sp, plane: p, start: ctx.Now(), handler: h}
	req.metered = req.meteredBuf[:0]

	// Stage 2: authorization.
	var authErr error
	if call.Action != "" {
		principal := ""
		if ctx != nil {
			principal = ctx.Principal
		}
		if p.iam == nil {
			authErr = iam.ErrDenied
		} else {
			authErr = p.iam.Authorize(principal, call.Action, call.Resource)
		}
		if sp != nil {
			asp := sp.StartChild("iam", call.Action, ctx.Now())
			if authErr != nil {
				asp.Annotate("result", "deny")
			} else {
				asp.Annotate("result", "allow")
			}
			asp.Finish(ctx.Now())
		}
		if authErr != nil {
			sp.Annotate("error", "access-denied")
		}
	}

	// Stage 3: latency. Runs even when denied: the round trip happens
	// before the service refuses.
	p.advance(ctx, call.Latency)

	// Stage 4: metering. Denied calls are billed too.
	var app string
	if ctx != nil {
		app = ctx.App
	}
	for _, u := range call.Usage {
		u.App = app
		if p.meter != nil {
			p.meter.Add(u)
		}
		sp.AddUsage(u)
		req.metered = append(req.metered, u)
	}

	// Stage 5: handler, wrapped by the pre-composed interceptor chain.
	// The innermost stage (dispatch) returns the authorization error
	// without running the service handler, so interceptors observe
	// denied calls too — fleet-wide observability counts denials
	// without a side channel — while the handler itself still runs only
	// when authorization passed.
	req.authErr = authErr
	err := p.chain(req)
	if err != nil && sp != nil {
		if _, ok := sp.Annotation("error"); !ok {
			sp.Annotate("error", err.Error())
		}
	}
	return err
}

// advance applies the call's latency to the flow's timeline.
func (p *Plane) advance(ctx *sim.Context, l *Latency) {
	if l == nil || p.model == nil {
		return
	}
	d := p.model.Sample(l.Hop)
	if l.Scale > 0 {
		d = time.Duration(float64(d) * l.Scale)
	}
	var bw float64
	var mem int
	if ctx != nil {
		bw, mem = ctx.IOBandwidthMBps, ctx.FunctionMemMB
	}
	if l.MemoryCoupled && mem > 0 {
		d = time.Duration(float64(d) * netsim.MemoryLatencyFactor(mem, RefMemoryMB))
		if bw == 0 {
			bw = netsim.BandwidthMBps(mem)
		}
	}
	if l.TransferBytes > 0 {
		d += netsim.TransferTime(l.TransferBytes, bw)
	}
	ctx.Advance(d)
}

// Op is one registered public service operation. Services register
// their ops at init so the conformance suite can enumerate the whole
// API surface and fail when an op lacks coverage.
type Op struct {
	// Service is the span service name ("s3").
	Service string
	// Method is the exported Go method implementing the op ("Put").
	Method string
	// Action is the IAM action the op authorizes, "" when the op is
	// not IAM-authenticated.
	Action string
}

var (
	regMu    sync.Mutex
	registry []Op
)

// Register records service ops in the global registry. Called from
// service package init functions.
func Register(ops ...Op) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, ops...)
}

// Ops returns the registered operations sorted by service and method.
func Ops() []Op {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Op(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Method < out[j].Method
	})
	return out
}
