// Benchmarks for the request-plane hot path: one plane.Do with no
// latency model engaged, under growing interceptor chains. The
// "metrics" case installs the real CloudWatch-sim interceptor, so the
// delta against "none" is the all-in cost of auto-published RED+cost
// series per call. scripts/bench.sh snapshots these numbers into
// BENCH_cloudsim.json.
package plane_test

import (
	"testing"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

// benchPlane builds a plane with an allow-all role for "fn" and the
// given interceptor chain.
func benchPlane(b *testing.B, extra []plane.Interceptor) *plane.Plane {
	b.Helper()
	iamSvc := iam.New()
	err := iamSvc.PutRole(&iam.Role{
		Name: "fn",
		Policies: []iam.Policy{{
			Name:       "all",
			Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	p := plane.New(iamSvc, pricing.NewMeter(), netsim.NewDefaultModel())
	p.Use(extra...)
	return p
}

// passthrough is an interceptor that adds one frame and nothing else —
// the floor cost of lengthening the chain.
func passthrough(next plane.HandlerFunc) plane.HandlerFunc {
	return func(r *plane.Request) error { return next(r) }
}

func BenchmarkDoInterceptors(b *testing.B) {
	cases := []struct {
		name  string
		chain func() []plane.Interceptor
	}{
		{"none", func() []plane.Interceptor { return nil }},
		{"one", func() []plane.Interceptor {
			return []plane.Interceptor{passthrough}
		}},
		{"two", func() []plane.Interceptor {
			return []plane.Interceptor{passthrough, passthrough}
		}},
		{"metrics", func() []plane.Interceptor {
			return []plane.Interceptor{metrics.PlaneInterceptor(
				metrics.New(), pricing.Default2017(), clock.NewVirtual())}
		}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			p := benchPlane(b, bc.chain())
			ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(t0)}
			// No Latency on the call: the sleep model would dominate
			// and the pipeline overhead is what is being measured.
			call := &plane.Call{
				Service:  "s3",
				Op:       "s3:GetObject",
				Action:   "s3:GetObject",
				Resource: "bucket/x",
				Usage:    []pricing.Usage{{Kind: pricing.S3GetRequests, Quantity: 1}},
			}
			handler := func(*plane.Request) error { return nil }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Do(ctx, call, handler); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
