// Conformance suite for the request plane: every public service
// operation registered in the plane's op registry is driven through a
// live service wiring and checked for the pipeline invariants —
// exactly the expected span fan-out under the trace root, ErrDenied
// with no state change for denied principals, and request-fee metering
// on both the success and the denial path. A registry entry without a
// scenario (or vice versa) fails the suite, so a service cannot add an
// op that silently skips the plane.
package plane_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloudsim/dynamo"
	"repro/internal/cloudsim/ec2"
	"repro/internal/cloudsim/gateway"
	"repro/internal/cloudsim/iam"
	"repro/internal/cloudsim/kms"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/netsim"
	"repro/internal/cloudsim/plane"
	"repro/internal/cloudsim/ses"
	"repro/internal/cloudsim/sqs"
	"repro/internal/cloudsim/s3"
	"repro/internal/cloudsim/sim"
	"repro/internal/pricing"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

// world is one fully-wired simulated cloud with seeded state for every
// service op: a bucket with an object, a table with an item, a queue,
// a key with a wrapped blob, a function behind an endpoint and an SES
// hook, and a running VM.
type world struct {
	iam    *iam.Service
	meter  *pricing.Meter
	s3     *s3.Service
	kms    *kms.Service
	dynamo *dynamo.Service
	sqs    *sqs.Service
	lambda *lambda.Platform
	ses    *ses.Service
	gw     *gateway.Service
	ec2    *ec2.Service

	token   string // presigned GET capability for b/o
	wrapped []byte // data key wrapped under key k
	instID  string // running VM
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{iam: iam.New(), meter: pricing.NewMeter()}
	model := netsim.NewDefaultModel()
	w.s3 = s3.New(w.iam, w.meter, model, nil)
	w.kms = kms.New(w.iam, w.meter, model, nil)
	w.dynamo = dynamo.New(w.iam, w.meter, model, nil)
	w.sqs = sqs.New(w.iam, w.meter, model, nil)
	w.lambda = lambda.New(w.meter, model, nil)
	w.ses = ses.New(w.lambda, w.meter, model)
	w.gw = gateway.New(w.lambda, w.meter, model, nil)
	w.ec2 = ec2.New(w.meter, model, nil)

	err := w.iam.PutRole(&iam.Role{
		Name: "fn",
		Policies: []iam.Policy{{
			Name:       "all",
			Statements: []iam.Statement{iam.AllowStatement([]string{"*"}, []string{"*"})},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup := &sim.Context{Principal: "fn", Cursor: sim.NewCursor(t0)}

	if err := w.s3.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := w.s3.Put(setup, "b", "o", []byte("object")); err != nil {
		t.Fatal(err)
	}
	if w.token, err = w.s3.Presign("fn", "b", "o", t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := w.dynamo.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := w.dynamo.Put(setup, "t", "k1", []byte("item")); err != nil {
		t.Fatal(err)
	}
	if err := w.sqs.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := w.kms.CreateKey("k", false); err != nil {
		t.Fatal(err)
	}
	if _, w.wrapped, err = w.kms.GenerateDataKey(setup, "k"); err != nil {
		t.Fatal(err)
	}
	err = w.lambda.RegisterFunction(lambda.Function{
		Name: "fn1",
		Handler: func(env *lambda.Env, event lambda.Event) (lambda.Response, error) {
			return lambda.Response{Body: []byte("ok")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.gw.RegisterEndpoint("/ep", "fn1", gateway.Limit{}); err != nil {
		t.Fatal(err)
	}
	if err := w.ses.RegisterInbound("a@example.com", "fn1"); err != nil {
		t.Fatal(err)
	}
	inst, err := w.ec2.Launch("t2.medium", "us-west-2", "app", nil, t0)
	if err != nil {
		t.Fatal(err)
	}
	w.instID = inst.ID
	return w
}

// scenario drives one registered op and declares its conformance
// expectations.
type scenario struct {
	invoke func(w *world, ctx *sim.Context) error
	// fee is the op's request-fee kind, metered on success and on
	// denial alike ("" for ops with no per-request fee).
	fee pricing.Kind
	// spans is the number of spans the op opens directly under the
	// trace root (composite kms.ReWrap makes two plane calls).
	spans int
	// unchanged probes, after a denied call, that the op mutated no
	// state (nil when the op is read-only or has nothing observable).
	unchanged func(w *world) error
}

var scenarios = map[string]scenario{
	"s3.Put": {
		invoke: func(w *world, ctx *sim.Context) error { return w.s3.Put(ctx, "b", "new", []byte("x")) },
		fee:    pricing.S3PutRequests,
		unchanged: func(w *world) error {
			if n := w.s3.StorageBytes("b"); n != int64(len("object")) {
				return fmt.Errorf("bucket grew to %d bytes after denied Put", n)
			}
			return nil
		},
	},
	"s3.Get": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.s3.Get(ctx, "b", "o"); return err },
		fee:    pricing.S3GetRequests,
	},
	"s3.Delete": {
		invoke: func(w *world, ctx *sim.Context) error { return w.s3.Delete(ctx, "b", "o") },
		fee:    pricing.S3PutRequests,
		unchanged: func(w *world) error {
			if n := w.s3.StorageBytes("b"); n != int64(len("object")) {
				return fmt.Errorf("bucket shrank to %d bytes after denied Delete", n)
			}
			return nil
		},
	},
	"s3.List": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.s3.List(ctx, "b", ""); return err },
		fee:    pricing.S3GetRequests,
	},
	"s3.GetPresigned": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.s3.GetPresigned(ctx, w.token); return err },
		fee:    pricing.S3GetRequests,
	},
	"kms.GenerateDataKey": {
		invoke: func(w *world, ctx *sim.Context) error { _, _, err := w.kms.GenerateDataKey(ctx, "k"); return err },
		fee:    pricing.KMSRequests,
	},
	"kms.Decrypt": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.kms.Decrypt(ctx, w.wrapped); return err },
		fee:    pricing.KMSRequests,
	},
	"kms.ReWrap": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.kms.ReWrap(ctx, w.wrapped, "k"); return err },
		fee:    pricing.KMSRequests,
		spans:  2, // Decrypt + GenerateDataKey, each a plane call
	},
	"kms.ImportWrapped": {
		invoke: func(w *world, ctx *sim.Context) error {
			_, err := w.kms.ImportWrapped(ctx, []byte("0123456789abcdef0123456789abcdef"), "k")
			return err
		},
		fee: pricing.KMSRequests,
	},
	"dynamo.Get": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.dynamo.Get(ctx, "t", "k1"); return err },
		fee:    pricing.DynamoRCU,
	},
	"dynamo.Put": {
		invoke: func(w *world, ctx *sim.Context) error { return w.dynamo.Put(ctx, "t", "k2", []byte("x")) },
		fee:    pricing.DynamoWCU,
		unchanged: func(w *world) error {
			if n := w.dynamo.StorageBytes("t"); n != int64(len("item")) {
				return fmt.Errorf("table at %d bytes after denied Put", n)
			}
			return nil
		},
	},
	"dynamo.PutIfVersion": {
		invoke: func(w *world, ctx *sim.Context) error {
			return w.dynamo.PutIfVersion(ctx, "t", "k2", []byte("x"), 0)
		},
		fee: pricing.DynamoWCU,
		unchanged: func(w *world) error {
			if n := w.dynamo.StorageBytes("t"); n != int64(len("item")) {
				return fmt.Errorf("table at %d bytes after denied PutIfVersion", n)
			}
			return nil
		},
	},
	"dynamo.Delete": {
		invoke: func(w *world, ctx *sim.Context) error { return w.dynamo.Delete(ctx, "t", "k1") },
		fee:    pricing.DynamoWCU,
		unchanged: func(w *world) error {
			if n := w.dynamo.StorageBytes("t"); n != int64(len("item")) {
				return fmt.Errorf("table at %d bytes after denied Delete", n)
			}
			return nil
		},
	},
	"dynamo.Query": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.dynamo.Query(ctx, "t", ""); return err },
		fee:    pricing.DynamoRCU,
	},
	"sqs.Send": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.sqs.Send(ctx, "q", []byte("m")); return err },
		fee:    pricing.SQSRequests,
		unchanged: func(w *world) error {
			if n := w.sqs.Len("q"); n != 0 {
				return fmt.Errorf("queue has %d messages after denied Send", n)
			}
			return nil
		},
	},
	"sqs.Receive": {
		invoke: func(w *world, ctx *sim.Context) error { _, err := w.sqs.Receive(ctx, "q", 1, 0); return err },
		fee:    pricing.SQSRequests,
	},
	"sqs.Delete": {
		invoke: func(w *world, ctx *sim.Context) error { return w.sqs.Delete(ctx, "q", "m-1") },
		fee:    pricing.SQSRequests,
	},
	"ses.Send": {
		invoke: func(w *world, ctx *sim.Context) error {
			return w.ses.Send(ctx, "me@example.com", []string{"out@example.net"}, []byte("mail"))
		},
		fee: pricing.SESMessages,
	},
	"ses.Deliver": {
		invoke: func(w *world, ctx *sim.Context) error {
			return w.ses.Deliver(ctx, "out@example.net", "a@example.com", []byte("mail"))
		},
	},
	"gateway.Handle": {
		invoke: func(w *world, ctx *sim.Context) error {
			_, _, err := w.gw.Handle(ctx, gateway.Request{Path: "/ep", Op: "ping"})
			return err
		},
	},
	"lambda.Invoke": {
		invoke: func(w *world, ctx *sim.Context) error {
			_, _, err := w.lambda.Invoke(ctx, "fn1", lambda.Event{Op: "ping"})
			return err
		},
		fee: pricing.LambdaRequests,
	},
	"lambda.InvokeTrigger": {
		invoke: func(w *world, ctx *sim.Context) error {
			_, _, err := w.lambda.InvokeTrigger(ctx, "ses", "a@example.com", lambda.Event{Op: "ping"})
			return err
		},
		fee: pricing.LambdaRequests,
	},
	"ec2.Request": {
		invoke: func(w *world, ctx *sim.Context) error {
			_, err := w.ec2.Request(ctx, w.instID, "ping", nil)
			return err
		},
	},
}

// TestRegistryCoverage pins the registry and the scenario table to each
// other: an op without a scenario, or a scenario for an unregistered
// op, is a conformance gap.
func TestRegistryCoverage(t *testing.T) {
	registered := make(map[string]plane.Op)
	for _, op := range plane.Ops() {
		key := op.Service + "." + op.Method
		if op.Service == "ztest" {
			continue // plane's own registry unit test
		}
		registered[key] = op
		if _, ok := scenarios[key]; !ok {
			t.Errorf("registered op %s has no conformance scenario", key)
		}
	}
	for key := range scenarios {
		if _, ok := registered[key]; !ok {
			t.Errorf("scenario %s covers no registered op", key)
		}
	}
}

// TestConformance drives every registered op through the pipeline
// invariants.
func TestConformance(t *testing.T) {
	for _, op := range plane.Ops() {
		if op.Service == "ztest" {
			continue
		}
		op := op
		key := op.Service + "." + op.Method
		sc, ok := scenarios[key]
		if !ok {
			continue // TestRegistryCoverage reports the gap
		}

		t.Run(key+"/traced", func(t *testing.T) {
			w := newWorld(t)
			ctx := &sim.Context{Principal: "fn", App: "app", Cursor: sim.NewCursor(t0)}
			tr := ctx.StartTrace(key)
			before := w.meter.Snapshot()
			if err := sc.invoke(w, ctx); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			wantSpans := sc.spans
			if wantSpans == 0 {
				wantSpans = 1
			}
			if got := len(tr.Root().Children()); got != wantSpans {
				t.Errorf("%s opened %d root spans, want %d", key, got, wantSpans)
			}
			if sc.fee != "" && quantity(w.meter.Snapshot(), sc.fee) <= quantity(before, sc.fee) {
				t.Errorf("%s metered no %s on success", key, sc.fee)
			}
		})

		if op.Action == "" {
			continue // not IAM-authenticated; no denial path
		}
		t.Run(key+"/denied", func(t *testing.T) {
			w := newWorld(t)
			ctx := &sim.Context{Principal: "nobody", Cursor: sim.NewCursor(t0)}
			before := quantity(w.meter.Snapshot(), sc.fee)
			err := sc.invoke(w, ctx)
			if !errors.Is(err, iam.ErrDenied) {
				t.Fatalf("%s with unknown principal: err = %v, want ErrDenied", key, err)
			}
			if sc.fee != "" && quantity(w.meter.Snapshot(), sc.fee) <= before {
				t.Errorf("%s metered no %s on denial; AWS bills denied calls", key, sc.fee)
			}
			if sc.unchanged != nil {
				if perr := sc.unchanged(w); perr != nil {
					t.Errorf("%s mutated state before authorization: %v", key, perr)
				}
			}
		})
	}
}

func quantity(snapshot []pricing.Usage, k pricing.Kind) float64 {
	var total float64
	for _, u := range snapshot {
		if u.Kind == k {
			total += u.Quantity
		}
	}
	return total
}
