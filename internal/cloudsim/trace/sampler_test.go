package trace

import (
	"testing"
	"time"
)

// decideSeq replays one arrival sequence through a store and returns
// the boolean keep/drop decisions in order.
func decideSeq(s *Store, service, op string, arrivals []time.Time) []bool {
	out := make([]bool, len(arrivals))
	for i, at := range arrivals {
		out[i] = s.Decide(service, op, at)
	}
	return out
}

// TestSamplerDeterministicReplay is the unit form of the fleet's
// replay contract: a sampler's decisions are a pure function of (seed,
// arrival sequence). Per-account decision streams are sequential, so
// identical seeds replaying identical workloads keep identical trace
// sets at any GOMAXPROCS — the fleet golden enforces the end-to-end
// form; this pins the primitive it rests on.
func TestSamplerDeterministicReplay(t *testing.T) {
	arrivals := make([]time.Time, 500)
	for i := range arrivals {
		// Several arrivals per virtual second, uneven spacing.
		arrivals[i] = t0.Add(time.Duration(i) * 237 * time.Millisecond)
	}
	a := decideSeq(NewStore(&SamplerConfig{Seed: 42}), "client", "op-chat", arrivals)
	b := decideSeq(NewStore(&SamplerConfig{Seed: 42}), "client", "op-chat", arrivals)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identically-seeded samplers", i)
		}
	}
	// A different seed draws a different coin stream. The reservoir
	// keeps the first arrival of every second regardless of seed, so
	// compare the whole sequence and require at least one divergence.
	c := decideSeq(NewStore(&SamplerConfig{Seed: 43}), "client", "op-chat", arrivals)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision sequences over 500 arrivals")
	}
}

// TestSamplerReservoirRefill pins the virtual-second reservoir: with
// rate 0 the first Reservoir arrivals of each second are kept, every
// later arrival in that second is dropped, and crossing a second
// boundary refills the reservoir.
func TestSamplerReservoirRefill(t *testing.T) {
	s := NewStore(&SamplerConfig{Seed: 1, Rules: []Rule{{Reservoir: 2, Rate: 0}}})
	sec := func(n int, off time.Duration) time.Time { return t0.Add(time.Duration(n)*time.Second + off) }
	checks := []struct {
		at   time.Time
		want bool
	}{
		{sec(0, 0), true},                       // reservoir slot 1
		{sec(0, 100 * time.Millisecond), true},  // reservoir slot 2
		{sec(0, 200 * time.Millisecond), false}, // reservoir exhausted
		{sec(0, 900 * time.Millisecond), false},
		{sec(1, 0), true}, // next virtual second: refilled
		{sec(1, time.Millisecond), true},
		{sec(1, 2 * time.Millisecond), false},
		{sec(5, 0), true}, // gaps refill too
	}
	for i, c := range checks {
		if got := s.Decide("svc", "op", c.at); got != c.want {
			t.Errorf("decision %d at %v = %v, want %v", i, c.at, got, c.want)
		}
	}
	st := s.Stats()
	if st.Decided != int64(len(checks)) || st.Kept != 5 {
		t.Errorf("stats = %+v, want 8 decided / 5 kept", st)
	}
}

// TestSamplerRateEdges pins the 0% and 100% rate edges: rate 0 keeps
// only the reservoir, rate 1 keeps everything past it.
func TestSamplerRateEdges(t *testing.T) {
	// 20 arrivals inside one virtual second.
	arrivals := make([]time.Time, 20)
	for i := range arrivals {
		arrivals[i] = t0.Add(time.Duration(i) * 10 * time.Millisecond)
	}
	none := decideSeq(NewStore(&SamplerConfig{Rules: []Rule{{Reservoir: 1, Rate: 0}}}), "s", "o", arrivals)
	all := decideSeq(NewStore(&SamplerConfig{Rules: []Rule{{Reservoir: 1, Rate: 1}}}), "s", "o", arrivals)
	for i := range arrivals {
		if wantNone := i == 0; none[i] != wantNone {
			t.Errorf("rate-0 decision %d = %v, want %v", i, none[i], wantNone)
		}
		if !all[i] {
			t.Errorf("rate-1 decision %d dropped", i)
		}
	}
	// A mid rate keeps strictly between the two over enough draws.
	long := make([]time.Time, 400)
	for i := range long {
		long[i] = t0.Add(time.Duration(i) * 2 * time.Millisecond) // one virtual second
	}
	mid := decideSeq(NewStore(&SamplerConfig{Seed: 9, Rules: []Rule{{Reservoir: 1, Rate: 0.5}}}), "s", "o", long)
	kept := 0
	for _, k := range mid {
		if k {
			kept++
		}
	}
	if kept <= 1 || kept >= len(long) {
		t.Errorf("rate-0.5 kept %d of %d", kept, len(long))
	}
}

// TestSamplerRuleMatching pins rule dispatch: first match wins, empty
// fields are wildcards, and a request matching no rule is dropped.
func TestSamplerRuleMatching(t *testing.T) {
	s := NewStore(&SamplerConfig{Rules: []Rule{
		{Service: "client", Op: "op-iot", Reservoir: 0, Rate: 0}, // drop iot outright
		{Service: "client", Reservoir: 1000, Rate: 1},            // keep the rest of client
	}})
	if s.Decide("client", "op-iot", t0) {
		t.Error("op-iot matched the wrong rule (first match must win)")
	}
	if !s.Decide("client", "op-chat", t0) {
		t.Error("op-chat should fall through to the wildcard-op rule")
	}
	if s.Decide("gateway", "op-chat", t0) {
		t.Error("a request matching no rule must be dropped")
	}
	st := s.Stats()
	if st.Decided != 3 || st.Kept != 1 {
		t.Errorf("stats = %+v, want 3 decided / 1 kept", st)
	}
}

// TestSamplerDefault pins the no-config defaults: a nil SamplerConfig
// keeps everything (the single-account default), and an empty rule
// list means X-Ray's 2017 default of 1/s reservoir + 5%.
func TestSamplerDefault(t *testing.T) {
	keepAll := NewStore(nil)
	for i := 0; i < 50; i++ {
		if !keepAll.Decide("any", "thing", t0.Add(time.Duration(i)*time.Millisecond)) {
			t.Fatal("nil-config store dropped a trace")
		}
	}

	// Empty rules = DefaultRule. 1000 arrivals spread over 10 virtual
	// seconds: the reservoir keeps exactly 10 (one per second) and the
	// 5% coin keeps roughly 5% of the remaining 990.
	def := NewStore(&SamplerConfig{Seed: 7})
	kept := 0
	for i := 0; i < 1000; i++ {
		if def.Decide("client", "op-chat", t0.Add(time.Duration(i)*10*time.Millisecond)) {
			kept++
		}
	}
	if kept < 30 || kept > 130 {
		t.Errorf("default rule kept %d of 1000, want ~10 + 5%% of 990", kept)
	}
	if r := DefaultRule(); r.Reservoir != 1 || r.Rate != 0.05 {
		t.Errorf("DefaultRule = %+v", r)
	}
}

// TestSamplerIndependentRuleStreams: two rules with identical match
// patterns still draw independent coin streams (the rule index is
// folded into the seed), so reordering unrelated rules cannot silently
// correlate their decisions.
func TestSamplerIndependentRuleStreams(t *testing.T) {
	arrivals := make([]time.Time, 300)
	for i := range arrivals {
		arrivals[i] = t0.Add(time.Duration(i) * time.Millisecond)
	}
	// Same pattern, same rate, different rule position.
	first := decideSeq(NewStore(&SamplerConfig{Seed: 5, Rules: []Rule{
		{Service: "a", Reservoir: 0, Rate: 0.5},
	}}), "a", "x", arrivals)
	second := decideSeq(NewStore(&SamplerConfig{Seed: 5, Rules: []Rule{
		{Service: "zzz", Reservoir: 0, Rate: 0}, // never matches "a"
		{Service: "a", Reservoir: 0, Rate: 0.5},
	}}), "a", "x", arrivals)
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("rule position did not perturb the coin stream (index not folded into seed)")
	}
}
