package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pricing"
)

// fixtureStore builds a store with two hand-shaped traces:
//
//	t0+0s:  chat-send 200ms — gateway → lambda → kms, lambda billed
//	t0+10s: chat-send 600ms — gateway → lambda → s3 (error, cold start)
func fixtureStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(nil)

	a := New("chat-send", t0)
	gw := a.Root().StartChild("gateway", "/u/chat", t0.Add(10*time.Millisecond))
	fn := gw.StartChild("lambda", "u-chat", t0.Add(20*time.Millisecond))
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1})
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: 0.0875})
	kms := fn.StartChild("kms", "kms:Decrypt", t0.Add(30*time.Millisecond))
	kms.AddUsage(pricing.Usage{Kind: pricing.KMSRequests, Quantity: 1})
	kms.Finish(t0.Add(40 * time.Millisecond))
	fn.Finish(t0.Add(180 * time.Millisecond))
	gw.Finish(t0.Add(190 * time.Millisecond))
	a.Finish(t0.Add(200 * time.Millisecond))
	s.Record(a)

	b := New("chat-send", t0.Add(10*time.Second))
	bgw := b.Root().StartChild("gateway", "/u/chat", t0.Add(10*time.Second+10*time.Millisecond))
	bfn := bgw.StartChild("lambda", "u-chat", t0.Add(10*time.Second+20*time.Millisecond))
	bfn.Annotate("cold_start", "true")
	bfn.AddUsage(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1})
	bs3 := bfn.StartChild("s3", "s3:GetObject", t0.Add(10*time.Second+40*time.Millisecond))
	bs3.Annotate("error", "s3: no such key")
	bs3.AddUsage(pricing.Usage{Kind: pricing.S3GetRequests, Quantity: 1})
	bs3.Finish(t0.Add(10*time.Second + 400*time.Millisecond))
	bfn.Finish(t0.Add(10*time.Second + 580*time.Millisecond))
	bgw.Finish(t0.Add(10*time.Second + 590*time.Millisecond))
	b.Finish(t0.Add(10*time.Second + 600*time.Millisecond))
	s.Record(b)
	return s
}

func TestServiceMapDerivation(t *testing.T) {
	s := fixtureStore(t)
	book := pricing.Default2017()
	m := s.ServiceMap(book, time.Time{}, time.Time{})
	if m.Traces != 2 {
		t.Fatalf("traces = %d", m.Traces)
	}
	// client, gateway, lambda, kms, s3.
	if len(m.Nodes) != 5 {
		t.Fatalf("nodes = %d: %+v", len(m.Nodes), m.Nodes)
	}
	byName := make(map[string]MapNode)
	for _, n := range m.Nodes {
		byName[n.Service] = n
	}
	if n := byName["lambda"]; n.Requests != 2 || n.Errors != 0 || n.Cost <= 0 {
		t.Errorf("lambda node = %+v", n)
	}
	if n := byName["s3"]; n.Requests != 1 || n.Errors != 1 {
		t.Errorf("s3 node = %+v", n)
	}
	if n := byName["gateway"]; n.Total != 180*time.Millisecond+580*time.Millisecond {
		t.Errorf("gateway total = %v", n.Total)
	}
	// client→gateway, gateway→lambda, lambda→kms, lambda→s3.
	if len(m.Edges) != 4 {
		t.Fatalf("edges = %d: %+v", len(m.Edges), m.Edges)
	}
	var ls3 *MapEdge
	for i := range m.Edges {
		if m.Edges[i].From == "lambda" && m.Edges[i].To == "s3" {
			ls3 = &m.Edges[i]
		}
	}
	if ls3 == nil || ls3.Requests != 1 || ls3.Errors != 1 {
		t.Errorf("lambda->s3 edge = %+v", ls3)
	}
	out := m.Render()
	for _, frag := range []string{"service map — 2 traces, 5 services, 4 edges", "lambda -> s3", "SERVICE"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestServiceMapMerge(t *testing.T) {
	s := fixtureStore(t)
	book := pricing.Default2017()
	// Split the window in two, merge, and require the same rollup as
	// one whole-window scan — the control tower's per-account merge in
	// miniature.
	whole := s.ServiceMap(book, time.Time{}, time.Time{})
	first := s.ServiceMap(book, time.Time{}, t0.Add(time.Second))
	second := s.ServiceMap(book, t0.Add(time.Second), time.Time{})
	first.Merge(second)
	first.Merge(nil) // nil-safe
	if got, want := first.Render(), whole.Render(); got != want {
		t.Errorf("merged map diverges from whole-window map:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCriticalPathExtraction(t *testing.T) {
	s := fixtureStore(t)
	views := s.Stored()
	path := views[0].CriticalPath()
	// client → gateway → lambda → kms, each keeping its self time.
	want := []PathStep{
		{"client", "chat-send", 20 * time.Millisecond},
		{"gateway", "/u/chat", 20 * time.Millisecond},
		{"lambda", "u-chat", 150 * time.Millisecond},
		{"kms", "kms:Decrypt", 10 * time.Millisecond},
	}
	if len(path) != len(want) {
		t.Fatalf("path = %+v", path)
	}
	for i, st := range path {
		if st != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, st, want[i])
		}
	}
	var total time.Duration
	for _, st := range path {
		total += st.Self
	}
	if total != views[0].Duration() {
		t.Errorf("self times sum to %v, root duration is %v", total, views[0].Duration())
	}
}

func TestCriticalProfileAndMerge(t *testing.T) {
	s := fixtureStore(t)
	whole := s.CriticalProfile(time.Time{}, time.Time{})
	if whole.Traces != 2 {
		t.Fatalf("traces = %d", whole.Traces)
	}
	// 200ms root → 100-250ms bucket; 600ms root → 500ms-1s bucket.
	if whole.Hist[2] != 1 || whole.Hist[4] != 1 {
		t.Errorf("histogram = %v", whole.Hist)
	}
	// Both traces route through lambda u-chat.
	found := false
	for _, st := range whole.Steps {
		if st.Service == "lambda" && st.Op == "u-chat" {
			found = st.Count == 2
		}
	}
	if !found {
		t.Errorf("lambda u-chat not hit twice: %+v", whole.Steps)
	}
	// Split-window merge equals the whole-window profile.
	first := s.CriticalProfile(time.Time{}, t0.Add(time.Second))
	second := s.CriticalProfile(t0.Add(time.Second), time.Time{})
	first.Merge(second)
	first.Merge(nil)
	if got, want := first.Render(), whole.Render(); got != want {
		t.Errorf("merged profile diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFilterQueries(t *testing.T) {
	s := fixtureStore(t)
	book := pricing.Default2017()
	cases := []struct {
		expr string
		want int
	}{
		{`service(kms)`, 1},
		{`service("s3")`, 1},
		{`service(gateway)`, 2},
		{`service(dynamo)`, 0},
		{`duration > 500ms`, 1},
		{`duration <= 200ms`, 1},
		{`duration = 600ms`, 1},
		{`annotation.cold_start = true`, 1},
		{`annotation.cold_start != true`, 0}, // only the cold trace has the key at all
		{`annotation.error != ""`, 1},
		{`cost > $0.0000001`, 2},
		{`cost > $1`, 0},
		{`service(kms) AND duration > 500ms`, 0},
		{`service(kms) OR duration > 500ms`, 2},
		{`NOT service(kms)`, 1},
		{`not (service(kms) or service(s3))`, 0},
		{`service(s3) and annotation.cold_start = true and duration >= 600ms`, 1},
	}
	for _, c := range cases {
		got, err := s.Query(c.expr, book, time.Time{}, time.Time{})
		if err != nil {
			t.Errorf("query %q: %v", c.expr, err)
			continue
		}
		if len(got) != c.want {
			t.Errorf("query %q matched %d traces, want %d", c.expr, len(got), c.want)
		}
	}

	for _, bad := range []string{
		`frobnicate(kms)`,
		`service(kms) extra`,
		`duration > fast`,
		`cost > $abc`,
		`annotation.key > 3`,
		`(service(kms)`,
	} {
		if _, err := s.Query(bad, book, time.Time{}, time.Time{}); err == nil {
			t.Errorf("query %q: expected an error", bad)
		}
	}
}

// TestScanAccounting pins the billed scan dimension: every candidate
// trace a read visits counts once, match or not, and failed parses
// scan nothing.
func TestScanAccounting(t *testing.T) {
	s := fixtureStore(t)
	book := pricing.Default2017()
	base := s.Stats().Scanned
	if _, err := s.Query(`service(dynamo)`, book, time.Time{}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Scanned - base; got != 2 {
		t.Errorf("zero-match query scanned %d, want 2 (scanning bills, matching doesn't)", got)
	}
	base = s.Stats().Scanned
	if _, err := s.Query(`bogus!`, book, time.Time{}, time.Time{}); err == nil {
		t.Fatal("bogus query parsed")
	}
	if got := s.Stats().Scanned - base; got != 0 {
		t.Errorf("failed parse scanned %d traces", got)
	}
	base = s.Stats().Scanned
	s.ServiceMap(book, time.Time{}, time.Time{})
	s.CriticalProfile(time.Time{}, time.Time{})
	if _, ok := s.Last(); !ok {
		t.Fatal("no last trace")
	}
	if got := s.Stats().Scanned - base; got != 5 {
		t.Errorf("map+profile+last scanned %d, want 2+2+1", got)
	}
	// The inventory prices recorded and scanned counts, and nothing is
	// ever metered into an account automatically.
	var recorded, scanned float64
	for _, u := range s.Usage() {
		switch u.Kind {
		case pricing.XRayTracesRecorded:
			recorded = u.Quantity
		case pricing.XRayTracesScanned:
			scanned = u.Quantity
		}
	}
	if recorded != 2 || scanned != float64(s.Stats().Scanned) {
		t.Errorf("usage inventory recorded=%v scanned=%v, stats %+v", recorded, scanned, s.Stats())
	}
}
