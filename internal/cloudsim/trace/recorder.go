package trace

import "sync"

// DefaultCapacity is the Recorder's default ring size.
const DefaultCapacity = 256

// Recorder collects finished traces in a bounded ring, oldest evicted
// first — the simulated X-Ray backend the diyctl trace subcommand and
// the trace-derived experiments query. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	traces []*Trace
	cap    int
}

// NewRecorder returns a recorder keeping up to capacity traces
// (DefaultCapacity if non-positive).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity}
}

// Record stores a finished trace, evicting the oldest beyond the
// capacity. Nil traces are ignored.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.traces = append(r.traces, t)
	if len(r.traces) > r.cap {
		over := len(r.traces) - r.cap
		r.traces = append(r.traces[:0:0], r.traces[over:]...)
	}
	r.mu.Unlock()
}

// Traces returns a copy of the retained traces, oldest first.
func (r *Recorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.traces...)
}

// Last returns the most recently recorded trace, or nil.
func (r *Recorder) Last() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) == 0 {
		return nil
	}
	return r.traces[len(r.traces)-1]
}

// Len reports how many traces are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
