package trace

import (
	"sync"
	"time"
)

// Rule configures head-based sampling for requests whose root span
// matches (Service, Op); an empty field matches anything. The shape
// mirrors X-Ray's: every virtual second a reservoir of Reservoir
// traces is kept outright, then Rate of the overflow is kept by a
// deterministic per-rule coin.
type Rule struct {
	Service   string
	Op        string
	Reservoir int     // traces kept per virtual second before Rate applies
	Rate      float64 // fraction of post-reservoir traces kept (0 none, 1 all)
}

// DefaultRule is X-Ray's 2017 default: one trace per second plus 5%
// of additional requests.
func DefaultRule() Rule { return Rule{Reservoir: 1, Rate: 0.05} }

// SamplerConfig seeds a deterministic head-based sampler. Rules are
// consulted in order and the first match decides; a request matching
// no rule is dropped. An empty rule list means DefaultRule for every
// request. Fleet accounts seed this from their workload substream
// partition (workload.Substream(seed, "trace")) so identical fleet
// seeds replay identical kept-trace sets at any GOMAXPROCS.
type SamplerConfig struct {
	Seed  int64
	Rules []Rule
}

// sampler is the compiled, stateful form of a SamplerConfig. A nil
// sampler keeps every trace — the single-account default, where the
// operator wants each request explained.
type sampler struct {
	mu    sync.Mutex
	rules []ruleState
}

// ruleState carries one rule's reservoir fill for the current virtual
// second and its counter-based coin stream. The coin is
// splitmix64(seed+n) — a pure function of the rule's substream seed
// and how many post-reservoir draws preceded it — so decisions depend
// only on the deterministic arrival sequence, never on host
// scheduling.
type ruleState struct {
	rule   Rule
	seed   uint64
	n      uint64
	second int64 // unix second the reservoir count belongs to
	taken  int
	primed bool // second is valid (distinguishes from a real second 0)
}

// splitmix64 is the splitmix64 output finalizer, the same avalanche
// bijection the workload generator's Substream machinery uses; copied
// here so the cloudsim layer stays free of generator-layer imports.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ruleTag hashes a rule's match pattern (FNV-1a over "service/op") so
// the per-rule coin streams of one sampler are mutually independent.
func ruleTag(service, op string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(service); i++ {
		h = (h ^ uint64(service[i])) * prime
	}
	h = (h ^ uint64('/')) * prime
	for i := 0; i < len(op); i++ {
		h = (h ^ uint64(op[i])) * prime
	}
	return h
}

func newSampler(cfg *SamplerConfig) *sampler {
	if cfg == nil {
		return nil
	}
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = []Rule{DefaultRule()}
	}
	s := &sampler{rules: make([]ruleState, len(rules))}
	for i, r := range rules {
		s.rules[i] = ruleState{
			rule: r,
			// Fold the rule index in so two identically-patterned rules
			// still draw from independent streams.
			seed: splitmix64(uint64(cfg.Seed) ^ ruleTag(r.Service, r.Op) ^ splitmix64(uint64(i))),
		}
	}
	return s
}

// decide reports whether a request named (service, op) arriving at
// the given virtual instant is kept. Nil samplers keep everything.
func (s *sampler) decide(service, op string, at time.Time) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.rules {
		st := &s.rules[i]
		r := st.rule
		if r.Service != "" && r.Service != service {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if sec := at.Unix(); !st.primed || sec != st.second {
			st.primed, st.second, st.taken = true, sec, 0
		}
		if st.taken < r.Reservoir {
			st.taken++
			return true
		}
		if r.Rate <= 0 {
			return false
		}
		if r.Rate >= 1 {
			return true
		}
		u := float64(splitmix64(st.seed+st.n)>>11) / (1 << 53)
		st.n++
		return u < r.Rate
	}
	return false
}
