package trace

import (
	"testing"
	"time"

	"repro/internal/pricing"
)

// benchTrace builds one finished chat-shaped trace (client → gateway →
// lambda → {kms, s3}) starting at the given instant.
func benchTrace(start time.Time) *Trace {
	tr := New("chat-send", start)
	gw := tr.Root().StartChild("gateway", "/u/chat", start.Add(time.Millisecond))
	fn := gw.StartChild("lambda", "u-chat", start.Add(2*time.Millisecond))
	fn.Annotate("cold_start", "false")
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1})
	kms := fn.StartChild("kms", "kms:Decrypt", start.Add(3*time.Millisecond))
	kms.AddUsage(pricing.Usage{Kind: pricing.KMSRequests, Quantity: 1})
	kms.Finish(start.Add(5 * time.Millisecond))
	s3 := fn.StartChild("s3", "s3:PutObject", start.Add(6*time.Millisecond))
	s3.AddUsage(pricing.Usage{Kind: pricing.S3PutRequests, Quantity: 1})
	s3.Finish(start.Add(40 * time.Millisecond))
	fn.Finish(start.Add(120 * time.Millisecond))
	gw.Finish(start.Add(130 * time.Millisecond))
	tr.Finish(start.Add(140 * time.Millisecond))
	return tr
}

// BenchmarkTraceRecord prices the store's publish path: one sampling
// decision, one five-span trace built and staged, one amortized share
// of the tick-boundary columnar fold. This is the per-request cost a
// traced account adds, gated in BENCH_cloudsim.json.
func BenchmarkTraceRecord(b *testing.B) {
	s := NewStore(nil)
	at := t0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Bound the columns: restart the store every ~100k folds so the
		// benchmark measures steady-state publication, not the memory of
		// an unboundedly growing run.
		if i%100_000 == 0 && i > 0 {
			b.StopTimer()
			s = NewStore(nil)
			b.StartTimer()
		}
		at = at.Add(40 * time.Second)
		if s.Decide("client", "chat-send", at) {
			s.Record(benchTrace(at))
		}
		if i%64 == 63 {
			s.Flush() // the clock-tick drain, amortized
		}
	}
}

// BenchmarkServiceMap prices the analytics scan: deriving the service
// graph (RED+cost per node and edge) over a 1024-trace store.
func BenchmarkServiceMap(b *testing.B) {
	s := NewStore(nil)
	at := t0
	for i := 0; i < 1024; i++ {
		at = at.Add(40 * time.Second)
		s.Record(benchTrace(at))
	}
	s.Flush()
	book := pricing.Default2017()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := s.ServiceMap(book, time.Time{}, time.Time{})
		if m.Traces != 1024 {
			b.Fatalf("map saw %d traces", m.Traces)
		}
	}
}
