// Package trace implements an X-Ray-style distributed tracing
// subsystem for the simulated cloud. A Trace holds a tree of Spans,
// one per service hop of a request flow (gateway, lambda — including
// cold-start and billing-quantum sub-spans — s3, kms, dynamo, sqs,
// ses), each with start/end instants on the simulated timeline,
// string annotations (cold_start, billed_ms, region, bytes, ...) and
// the usage records the hop pushed into the pricing meter.
//
// The usage records double as a per-trace cost ledger: pricing each
// span's usage at list price (free tiers apply account-wide, not per
// request) attributes the request fee, GB-seconds and per-call
// charges to the exact hop that incurred them, so one chat message
// can be printed as a flame-style tree carrying both latency and
// dollars. The paper's Table 3 was measured from aggregate CloudWatch
// statistics; traces answer the question those aggregates cannot:
// *why* did this request take 827 ms, and what did it cost?
//
// A Trace models a single causal request chain, like sim.Cursor, but
// is internally locked so concurrent flows may safely share a Store
// and read finished traces from other goroutines. The Store is the
// X-Ray-sim backend proper: head-sampled (see SamplerConfig) traces
// folded into columnar storage at clock ticks, priced at 2017 X-Ray
// rates, and queried for service maps, critical paths and filter
// expressions.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cloudsim/sortutil"
	"repro/internal/pricing"
)

// Annotation is one key/value pair attached to a span.
type Annotation struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace: a service hop, a
// sub-segment of one (cold start, billing quantum), or the client
// root. All methods are nil-safe so untraced flows cost one pointer
// check per hop.
type Span struct {
	tr     *Trace
	parent *Span

	service string
	op      string
	start   time.Time
	end     time.Time

	annotations []Annotation
	usage       []pricing.Usage
	children    []*Span
}

// Trace is a tree of spans rooted at the client request.
type Trace struct {
	mu   sync.Mutex
	name string
	root *Span

	// slab is the current span allocation chunk. Spans are handed out
	// slot by slot and a fresh fixed-capacity chunk replaces a full one,
	// so span pointers stay stable while a whole request flow costs one
	// or two allocations instead of one per hop — tracing a request must
	// stay cheap enough to leave on fleet-wide.
	slab []Span
}

// spanChunk sizes the slab: a chat-shaped flow (gateway, lambda and
// its sub-segments, per-hop IAM checks) runs about a dozen spans.
const spanChunk = 16

// newSpanLocked hands out the next slab slot, minting a new chunk when
// the current one is full. Never growing a chunk in place is what
// keeps previously returned *Span values valid.
func (t *Trace) newSpanLocked() *Span {
	if len(t.slab) == cap(t.slab) {
		t.slab = make([]Span, 0, spanChunk)
	}
	t.slab = append(t.slab, Span{})
	return &t.slab[len(t.slab)-1]
}

// New starts a trace whose root span (service "client", op name)
// opens at start.
func New(name string, start time.Time) *Trace {
	t := &Trace{name: name}
	t.root = t.newSpanLocked()
	*t.root = Span{tr: t, service: "client", op: name, start: start}
	return t
}

// Name reports the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish closes the root span at the given instant.
func (t *Trace) Finish(at time.Time) { t.Root().Finish(at) }

// Duration reports the root span's duration.
func (t *Trace) Duration() time.Duration { return t.Root().Duration() }

// Spans returns every span in the trace in preorder (parent before
// children, siblings in creation order).
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	var walk func(s *Span)
	walk = func(s *Span) {
		out = append(out, s)
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Find returns the first span (preorder) matching service and, if op
// is non-empty, op. Nil if none matches.
func (t *Trace) Find(service, op string) *Span {
	for _, s := range t.Spans() {
		if s.service == service && (op == "" || s.op == op) {
			return s
		}
	}
	return nil
}

// FindAll returns every span (preorder) for a service.
func (t *Trace) FindAll(service string) []*Span {
	var out []*Span
	for _, s := range t.Spans() {
		if s.service == service {
			out = append(out, s)
		}
	}
	return out
}

// Usage aggregates the whole trace's usage records by (kind,
// resource, app), in the pricing meter's snapshot order — the same
// shape a meter diff across the request would produce, so the two can
// be compared record for record.
func (t *Trace) Usage() []pricing.Usage {
	type key struct {
		kind     pricing.Kind
		resource string
		app      string
	}
	sums := make(map[key]float64)
	for _, s := range t.Spans() {
		for _, u := range s.Usage() {
			sums[key{u.Kind, u.Resource, u.App}] += u.Quantity
		}
	}
	out := make([]pricing.Usage, 0, len(sums))
	for k, q := range sums {
		out = append(out, pricing.Usage{Kind: k.kind, Quantity: q, Resource: k.resource, App: k.app})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.App < b.App
	})
	return out
}

// Cost prices the whole trace at the book's list price (no free
// tiers), aggregating usage first so the arithmetic matches pricing a
// meter diff of the same flow.
func (t *Trace) Cost(book *pricing.PriceBook) pricing.Money {
	var total pricing.Money
	for _, u := range t.Usage() {
		total += book.ListPrice(u)
	}
	return total
}

// StartChild opens a sub-span under s at the given instant. Returns
// nil (safely chainable) when s is nil.
func (s *Span) StartChild(service, op string, at time.Time) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	c := s.tr.newSpanLocked()
	*c = Span{tr: s.tr, parent: s, service: service, op: op, start: at}
	if s.children == nil {
		s.children = make([]*Span, 0, 4)
	}
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// Finish closes the span at the given instant (clamped to the span's
// start so a span never ends before it began).
func (s *Span) Finish(at time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if at.Before(s.start) {
		at = s.start
	}
	s.end = at
	s.tr.mu.Unlock()
}

// Annotate attaches a key/value pair. Re-annotating a key overwrites
// its value.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i, a := range s.annotations {
		if a.Key == key {
			s.annotations[i].Value = value
			return
		}
	}
	if s.annotations == nil {
		s.annotations = make([]Annotation, 0, 4)
	}
	s.annotations = append(s.annotations, Annotation{Key: key, Value: value})
}

// Annotation reports the value for a key and whether it was set.
func (s *Span) Annotation(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for _, a := range s.annotations {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Annotations returns a copy of the span's annotations in insertion
// order.
func (s *Span) Annotations() []Annotation {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]Annotation(nil), s.annotations...)
}

// AddUsage attributes one metered usage record to this span — the
// cost-ledger entry mirroring the service's meter.Add call.
func (s *Span) AddUsage(u pricing.Usage) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.usage == nil {
		s.usage = make([]pricing.Usage, 0, 2)
	}
	s.usage = append(s.usage, u)
	s.tr.mu.Unlock()
}

// Usage returns a copy of the span's own usage records (children not
// included).
func (s *Span) Usage() []pricing.Usage {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]pricing.Usage(nil), s.usage...)
}

// Cost prices this span's own usage at list price.
func (s *Span) Cost(book *pricing.PriceBook) pricing.Money {
	var total pricing.Money
	for _, u := range s.Usage() {
		total += book.ListPrice(u)
	}
	return total
}

// SubtreeCost prices this span and everything under it.
func (s *Span) SubtreeCost(book *pricing.PriceBook) pricing.Money {
	if s == nil {
		return 0
	}
	total := s.Cost(book)
	for _, c := range s.Children() {
		total += c.SubtreeCost(book)
	}
	return total
}

// Service reports the span's service name.
func (s *Span) Service() string {
	if s == nil {
		return ""
	}
	return s.service
}

// Op reports the span's operation name.
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

// Start reports when the span opened on the simulated timeline.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// End reports when the span closed (zero if still open).
func (s *Span) End() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.end
}

// Duration reports the span's duration (zero while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns a copy of the span's direct children in creation
// order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Parent returns the span's parent (nil for the root).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Render prints the trace as a flame-style tree: one line per span
// with its offset from the trace start, duration, annotations and
// per-span list-price cost, followed by the trace's total cost.
//
//	chat-send  211ms  $0.00000182
//	├─ gateway /casey/chat/xmpp  +0ms 195ms
//	│  └─ lambda casey-chat  +16ms 179ms  cold_start=false ... $0.00000166
//	│     ├─ kms kms:Decrypt  +25ms 14ms  $0.00000300
//	...
func (t *Trace) Render(book *pricing.PriceBook) string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	root := t.Root()
	fmt.Fprintf(&sb, "%s  %s  %s\n", t.name, fmtDur(root.Duration()), fmtCost(t.Cost(book)))
	children := root.Children()
	for i, c := range children {
		t.renderSpan(&sb, book, c, "", i == len(children)-1, root.Start())
	}
	return sb.String()
}

func (t *Trace) renderSpan(sb *strings.Builder, book *pricing.PriceBook, s *Span, prefix string, last bool, t0 time.Time) {
	branch, cont := "├─ ", "│  "
	if last {
		branch, cont = "└─ ", "   "
	}
	fmt.Fprintf(sb, "%s%s%s %s  +%s %s", prefix, branch, s.Service(), s.Op(),
		fmtDur(s.Start().Sub(t0)), fmtDur(s.Duration()))
	for _, a := range s.Annotations() {
		fmt.Fprintf(sb, "  %s=%s", a.Key, a.Value)
	}
	if c := s.Cost(book); c != 0 {
		fmt.Fprintf(sb, "  %s", fmtCost(c))
	}
	sb.WriteByte('\n')
	children := s.Children()
	for i, c := range children {
		t.renderSpan(sb, book, c, prefix+cont, i == len(children)-1, t0)
	}
}

// fmtDur and fmtCost delegate to the shared sortutil formatters so
// trace renders, the fleet trace dashboard and every other
// observability surface agree digit-for-digit on rounding.
func fmtDur(d time.Duration) string { return sortutil.FormatDuration(d) }

// fmtCost prints a span-scale amount: nanodollar sums far below the
// bill's cent resolution, so render micro-dollar precision.
func fmtCost(m pricing.Money) string { return sortutil.FormatMoneyNanos(m.Nanodollars()) }
