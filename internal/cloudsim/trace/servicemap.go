package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cloudsim/sortutil"
	"repro/internal/pricing"
)

// MapNode is one service in a service map with its RED+cost rollup:
// how many spans the service served, how many carried an error
// annotation, their summed duration, and their summed list-price
// cost.
type MapNode struct {
	Service  string
	Requests int
	Errors   int
	Total    time.Duration
	Cost     pricing.Money
}

// MapEdge is one caller→callee relation: a segment whose parent
// belongs to a different service. Stats aggregate over the callee
// segments.
type MapEdge struct {
	From, To string
	Requests int
	Errors   int
	Total    time.Duration
	Cost     pricing.Money
}

// ServiceMap is the X-Ray-style service graph derived from stored
// traces: nodes are services, edges are observed caller→callee hops.
// Node and edge order is the deterministic first-seen order of the
// scan that built the map; Render sorts for display.
type ServiceMap struct {
	Traces int
	Nodes  []MapNode
	Edges  []MapEdge
}

// ServiceMap derives the service graph from the stored traces whose
// root started in [from, to] (zero bounds are open). Costs price each
// segment's own usage at the book's list price. The scan counts every
// visited trace toward the scanned dimension.
func (s *Store) ServiceMap(book *pricing.PriceBook, from, to time.Time) *ServiceMap {
	if s == nil {
		return &ServiceMap{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	rows := s.windowLocked(from, to)
	s.scanned += int64(len(rows))

	m := &ServiceMap{Traces: len(rows)}
	nodeIdx := make(map[string]int)
	edgeIdx := make(map[[2]string]int)
	for _, row := range rows {
		lo, hi := s.segLo[row], s.segHi[row]
		for i := lo; i < hi; i++ {
			svc := s.svcs[s.segSvc[i]]
			dur := s.durLocked(i)
			cost := s.segCostLocked(i, book)
			isErr := s.hasAnnotationLocked(i, "error")

			ni, ok := nodeIdx[svc]
			if !ok {
				ni = len(m.Nodes)
				nodeIdx[svc] = ni
				m.Nodes = append(m.Nodes, MapNode{Service: svc})
			}
			n := &m.Nodes[ni]
			n.Requests++
			n.Total += dur
			n.Cost += cost
			if isErr {
				n.Errors++
			}

			p := s.segParent[i]
			if p < 0 {
				continue
			}
			from := s.svcs[s.segSvc[lo+p]]
			if from == svc {
				continue // sub-segment of the same service, not a hop
			}
			k := [2]string{from, svc}
			ei, ok := edgeIdx[k]
			if !ok {
				ei = len(m.Edges)
				edgeIdx[k] = ei
				m.Edges = append(m.Edges, MapEdge{From: from, To: svc})
			}
			e := &m.Edges[ei]
			e.Requests++
			e.Total += dur
			e.Cost += cost
			if isErr {
				e.Errors++
			}
		}
	}
	return m
}

func (s *Store) hasAnnotationLocked(seg int32, key string) bool {
	for a := s.annoLo[seg]; a < s.annoHi[seg]; a++ {
		if s.annoKeys[a] == key {
			return true
		}
	}
	return false
}

// Merge folds another service map into m — the control tower's
// fleet-wide rollup of per-account maps. Merging in a fixed order
// (the fleet merges account-index order) keeps node and edge order
// deterministic.
func (m *ServiceMap) Merge(o *ServiceMap) {
	if o == nil {
		return
	}
	m.Traces += o.Traces
	for _, on := range o.Nodes {
		found := false
		for i := range m.Nodes {
			if m.Nodes[i].Service == on.Service {
				m.Nodes[i].Requests += on.Requests
				m.Nodes[i].Errors += on.Errors
				m.Nodes[i].Total += on.Total
				m.Nodes[i].Cost += on.Cost
				found = true
				break
			}
		}
		if !found {
			m.Nodes = append(m.Nodes, on)
		}
	}
	for _, oe := range o.Edges {
		found := false
		for i := range m.Edges {
			if m.Edges[i].From == oe.From && m.Edges[i].To == oe.To {
				m.Edges[i].Requests += oe.Requests
				m.Edges[i].Errors += oe.Errors
				m.Edges[i].Total += oe.Total
				m.Edges[i].Cost += oe.Cost
				found = true
				break
			}
		}
		if !found {
			m.Edges = append(m.Edges, oe)
		}
	}
}

// Render prints the map as an aligned text exposition: nodes sorted
// by request count (descending, then name), edges by (from, to).
func (m *ServiceMap) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "service map — %d traces, %d services, %d edges\n",
		m.Traces, len(m.Nodes), len(m.Edges))

	nodes := append([]MapNode(nil), m.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Requests != nodes[j].Requests {
			return nodes[i].Requests > nodes[j].Requests
		}
		return nodes[i].Service < nodes[j].Service
	})
	fmt.Fprintf(&sb, "  %-10s %9s %7s %11s %11s %14s\n", "SERVICE", "SPANS", "ERRORS", "AVG", "TOTAL", "COST")
	for _, n := range nodes {
		avg := time.Duration(0)
		if n.Requests > 0 {
			avg = n.Total / time.Duration(n.Requests)
		}
		fmt.Fprintf(&sb, "  %-10s %9d %7d %11s %11s %14s\n", n.Service, n.Requests, n.Errors,
			sortutil.FormatDuration(avg), sortutil.FormatDuration(n.Total),
			sortutil.FormatMoneyNanos(n.Cost.Nanodollars()))
	}

	edges := append([]MapEdge(nil), m.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		avg := time.Duration(0)
		if e.Requests > 0 {
			avg = e.Total / time.Duration(e.Requests)
		}
		fmt.Fprintf(&sb, "  %-21s %9d %7d %11s %14s\n",
			e.From+" -> "+e.To, e.Requests, e.Errors,
			sortutil.FormatDuration(avg), sortutil.FormatMoneyNanos(e.Cost.Nanodollars()))
	}
	return sb.String()
}
