package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pricing"
)

// Store is the X-Ray-sim backend: head-sampled traces staged on the
// hot path and folded into columnar storage at the clock's tick
// boundary, so recording a trace is a pointer append and reads never
// observe a half-published one. It replaces the old bounded Recorder
// ring.
//
// The layout follows the logs store's shape: service and operation
// names are interned once into string tables, each stored trace is a
// contiguous block of preorder segment rows in parallel arrays
// (service/op handles, instants, block-relative parent links,
// annotation and usage arena ranges), and time-window reads binary
// search a cached start-time order.
//
// Like the metrics and logs services, the store is read-only over the
// simulated economy: it never touches the account meter and its
// Usage() inventory (traces recorded, traces scanned — X-Ray's two
// billable dimensions) is priced only when a caller asks, so tracing
// on versus off is ledger-bit-identical. All methods are nil-safe so
// a cloud built with tracing disabled costs untraced flows nothing.
type Store struct {
	mu      sync.Mutex
	sampler *sampler

	// pending holds kept traces staged by Record, drained into the
	// columns by Flush (wired to clock.OnTick) or forced before any
	// read. Traces whose root is still open stay staged.
	pending []*Trace

	// Interned name tables. Handles index svcs/ops.
	svcIDs map[string]int32
	svcs   []string
	opIDs  map[string]int32
	ops    []string

	// Per-trace columns, one row per stored trace in publication order.
	rootStart []int64 // root span start, UnixNano
	rootEnd   []int64
	segLo     []int32 // the trace's segment block is [segLo, segHi)
	segHi     []int32

	// Per-segment columns, preorder within each trace's block.
	segSvc    []int32
	segOp     []int32
	segParent []int32 // block-relative parent index; -1 at the root
	segStart  []int64
	segEnd    []int64 // noEnd while the span was never finished
	annoLo    []int32 // annotation arena range
	annoHi    []int32
	useLo     []int32 // usage arena range
	useHi     []int32

	// Arenas shared by every segment.
	annoKeys []string
	annoVals []string
	usages   []pricing.Usage

	// byStart caches trace rows ordered by (rootStart, row) for
	// binary-searched windows; nil means rebuild on next read.
	byStart []int32

	// Counters: sampling decisions, decisions that kept the trace,
	// and traces touched by retrieval/analytics reads (the billed
	// scan dimension). Stored-trace count is len(rootStart).
	decided int64
	kept    int64
	scanned int64
}

// noEnd marks a segment whose span was never finished.
const noEnd = int64(-1) << 62

// StoreStats summarizes the store's sampling and scan counters.
type StoreStats struct {
	Decided int64 // head-sampling decisions taken
	Kept    int64 // decisions that kept the trace
	Stored  int64 // traces folded into columnar storage
	Scanned int64 // traces touched by retrieval and analytics reads
}

// NewStore returns an empty store sampling by cfg. A nil cfg keeps
// every recorded trace — the single-account default.
func NewStore(cfg *SamplerConfig) *Store {
	return &Store{
		sampler: newSampler(cfg),
		svcIDs:  make(map[string]int32),
		opIDs:   make(map[string]int32),
	}
}

// Decide takes the head-based sampling decision for a request named
// (service, op) arriving at the given virtual instant: true means the
// caller should build and Record a trace, false means the flow runs
// untraced (nil-safe spans make that nearly free). A nil store keeps
// deciding true so flows still build client-side traces when storage
// is disabled.
func (s *Store) Decide(service, op string, at time.Time) bool {
	if s == nil {
		return true
	}
	keep := s.sampler.decide(service, op, at)
	s.mu.Lock()
	s.decided++
	if keep {
		s.kept++
	}
	s.mu.Unlock()
	return keep
}

// Record stages a kept trace for publication. The trace is folded
// into columnar storage at the next Flush once its root span has
// finished; recording is a single pointer append so the hot path
// never touches the columns readers scan. Nil stores and traces are
// no-ops.
func (s *Store) Record(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, t)
	s.mu.Unlock()
}

// Flush drains staged traces into columnar storage. The cloud wires
// this to clock.OnTick so publication happens at deterministic
// timeline steps; every read also forces it, so reads are always
// consistent with everything recorded before them.
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

func (s *Store) flushLocked() {
	if len(s.pending) == 0 {
		return
	}
	kept := s.pending[:0]
	for _, tr := range s.pending {
		if tr.Root().End().IsZero() {
			kept = append(kept, tr)
			continue
		}
		s.foldLocked(tr)
	}
	for i := len(kept); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = kept
}

// foldLocked copies one finished trace into the columns: interned
// handles, preorder segment rows, arena-packed annotations and usage.
// It holds the trace's own lock across the walk and reads the raw span
// fields directly — the accessor methods each copy their slice, which
// would cost three allocations per segment on the publish path.
func (s *Store) foldLocked(tr *Trace) {
	base := int32(len(s.segSvc))
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var walk func(sp *Span, parent int32)
	walk = func(sp *Span, parent int32) {
		idx := int32(len(s.segSvc)) - base
		s.segSvc = append(s.segSvc, internLocked(s.svcIDs, &s.svcs, sp.service))
		s.segOp = append(s.segOp, internLocked(s.opIDs, &s.ops, sp.op))
		s.segParent = append(s.segParent, parent)
		s.segStart = append(s.segStart, sp.start.UnixNano())
		if sp.end.IsZero() {
			s.segEnd = append(s.segEnd, noEnd)
		} else {
			s.segEnd = append(s.segEnd, sp.end.UnixNano())
		}
		al := int32(len(s.annoKeys))
		for _, a := range sp.annotations {
			s.annoKeys = append(s.annoKeys, a.Key)
			s.annoVals = append(s.annoVals, a.Value)
		}
		s.annoLo = append(s.annoLo, al)
		s.annoHi = append(s.annoHi, int32(len(s.annoKeys)))
		ul := int32(len(s.usages))
		s.usages = append(s.usages, sp.usage...)
		s.useLo = append(s.useLo, ul)
		s.useHi = append(s.useHi, int32(len(s.usages)))
		for _, c := range sp.children {
			walk(c, idx)
		}
	}
	walk(tr.root, -1)
	s.rootStart = append(s.rootStart, tr.root.start.UnixNano())
	s.rootEnd = append(s.rootEnd, tr.root.end.UnixNano())
	s.segLo = append(s.segLo, base)
	s.segHi = append(s.segHi, int32(len(s.segSvc)))
	s.byStart = nil
}

func internLocked(ids map[string]int32, tab *[]string, name string) int32 {
	if h, ok := ids[name]; ok {
		return h
	}
	h := int32(len(*tab))
	*tab = append(*tab, name)
	ids[name] = h
	return h
}

// Len reports how many kept traces the store holds: stored rows plus
// still-open staged ones.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return len(s.rootStart) + len(s.pending)
}

// Stats reports the sampling and scan counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return StoreStats{
		Decided: s.decided,
		Kept:    s.kept,
		Stored:  int64(len(s.rootStart)),
		Scanned: s.scanned,
	}
}

// Usage reports the store's billable X-Ray inventory: traces recorded
// into storage and traces retrieved or scanned by reads. Like the
// metrics and logs services, the inventory is never pushed into the
// account meter automatically — tracing must not move the ledger.
func (s *Store) Usage() []pricing.Usage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return []pricing.Usage{
		{Kind: pricing.XRayTracesRecorded, Quantity: float64(len(s.rootStart)), Resource: "xray"},
		{Kind: pricing.XRayTracesScanned, Quantity: float64(s.scanned), Resource: "xray"},
	}
}

// orderLocked returns trace rows ordered by (root start, row),
// rebuilding the cache if ingestion invalidated it.
func (s *Store) orderLocked() []int32 {
	if s.byStart == nil {
		s.byStart = make([]int32, len(s.rootStart))
		for i := range s.byStart {
			s.byStart[i] = int32(i)
		}
		sort.Slice(s.byStart, func(i, j int) bool {
			a, b := s.byStart[i], s.byStart[j]
			if s.rootStart[a] != s.rootStart[b] {
				return s.rootStart[a] < s.rootStart[b]
			}
			return a < b
		})
	}
	return s.byStart
}

// windowLocked returns the rows whose root start falls in [from, to]
// (zero bounds are open) in start order, via binary search on the
// cached order.
func (s *Store) windowLocked(from, to time.Time) []int32 {
	ord := s.orderLocked()
	lo := 0
	if !from.IsZero() {
		f := from.UnixNano()
		lo = sort.Search(len(ord), func(i int) bool { return s.rootStart[ord[i]] >= f })
	}
	hi := len(ord)
	if !to.IsZero() {
		t := to.UnixNano()
		hi = sort.Search(len(ord), func(i int) bool { return s.rootStart[ord[i]] > t })
	}
	if lo >= hi {
		return nil
	}
	return ord[lo:hi]
}

// Stored returns a view of every stored trace in start order. The
// retrieval counts toward the scanned dimension.
func (s *Store) Stored() []TraceView {
	return s.Window(time.Time{}, time.Time{})
}

// Window returns views of the stored traces whose root started in
// [from, to] (zero bounds are open), in start order. The retrieval
// counts toward the scanned dimension.
func (s *Store) Window(from, to time.Time) []TraceView {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	rows := s.windowLocked(from, to)
	s.scanned += int64(len(rows))
	out := make([]TraceView, len(rows))
	for i, r := range rows {
		out[i] = TraceView{s: s, row: r}
	}
	return out
}

// Last returns the most recently stored trace, if any. The retrieval
// counts one scanned trace.
func (s *Store) Last() (TraceView, bool) {
	if s == nil {
		return TraceView{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	if len(s.rootStart) == 0 {
		return TraceView{}, false
	}
	s.scanned++
	return TraceView{s: s, row: int32(len(s.rootStart) - 1)}, true
}

// TraceView is a handle onto one stored trace. The zero value is
// invalid; obtain views from Stored, Window, Last or Query.
type TraceView struct {
	s   *Store
	row int32
}

// SegmentView is a handle onto one stored segment (span) of a trace.
type SegmentView struct {
	s   *Store
	seg int32 // absolute segment index
	lo  int32 // owning trace's block start, for parent/child resolution
}

// Name reports the trace's name (the root segment's op).
func (v TraceView) Name() string {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.ops[v.s.segOp[v.s.segLo[v.row]]]
}

// Start reports when the trace's root span opened.
func (v TraceView) Start() time.Time {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return time.Unix(0, v.s.rootStart[v.row]).UTC()
}

// End reports when the trace's root span closed.
func (v TraceView) End() time.Time {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return time.Unix(0, v.s.rootEnd[v.row]).UTC()
}

// Duration reports the root span's duration.
func (v TraceView) Duration() time.Duration {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.durLocked(v.s.segLo[v.row])
}

// Root returns the root segment.
func (v TraceView) Root() SegmentView {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	lo := v.s.segLo[v.row]
	return SegmentView{s: v.s, seg: lo, lo: lo}
}

// Segments returns every segment in preorder (parent before children,
// siblings in creation order) — the order they were folded in.
func (v TraceView) Segments() []SegmentView {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	lo, hi := v.s.segLo[v.row], v.s.segHi[v.row]
	out := make([]SegmentView, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, SegmentView{s: v.s, seg: i, lo: lo})
	}
	return out
}

// Find returns the first segment (preorder) matching service and, if
// op is non-empty, op.
func (v TraceView) Find(service, op string) (SegmentView, bool) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	lo, hi := v.s.segLo[v.row], v.s.segHi[v.row]
	for i := lo; i < hi; i++ {
		if v.s.svcs[v.s.segSvc[i]] == service && (op == "" || v.s.ops[v.s.segOp[i]] == op) {
			return SegmentView{s: v.s, seg: i, lo: lo}, true
		}
	}
	return SegmentView{}, false
}

// FindAll returns every segment (preorder) for a service.
func (v TraceView) FindAll(service string) []SegmentView {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	lo, hi := v.s.segLo[v.row], v.s.segHi[v.row]
	var out []SegmentView
	for i := lo; i < hi; i++ {
		if v.s.svcs[v.s.segSvc[i]] == service {
			out = append(out, SegmentView{s: v.s, seg: i, lo: lo})
		}
	}
	return out
}

// Usage aggregates the whole trace's usage records by (kind,
// resource, app) in the pricing meter's snapshot order, exactly as
// Trace.Usage does for a live trace.
func (v TraceView) Usage() []pricing.Usage {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.traceUsageLocked(v.row)
}

// Cost prices the whole trace at the book's list price.
func (v TraceView) Cost(book *pricing.PriceBook) pricing.Money {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.traceCostLocked(v.row, book)
}

// Render prints the stored trace as the same flame-style tree
// Trace.Render prints for a live one.
func (v TraceView) Render(book *pricing.PriceBook) string {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	s := v.s
	lo := s.segLo[v.row]
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %s  %s\n", s.ops[s.segOp[lo]], fmtDur(s.durLocked(lo)),
		fmtCost(s.traceCostLocked(v.row, book)))
	kids := s.childrenLocked(v.row)
	t0 := s.segStart[lo]
	for i, c := range kids[0] {
		s.renderSegLocked(&sb, book, kids, c, lo, "", i == len(kids[0])-1, t0)
	}
	return sb.String()
}

// childrenLocked builds the block-relative child lists of one stored
// trace: kids[i] are the children of segment i, in creation order.
func (s *Store) childrenLocked(row int32) [][]int32 {
	lo, hi := s.segLo[row], s.segHi[row]
	kids := make([][]int32, hi-lo)
	for i := lo + 1; i < hi; i++ {
		p := s.segParent[i]
		kids[p] = append(kids[p], i-lo)
	}
	return kids
}

func (s *Store) renderSegLocked(sb *strings.Builder, book *pricing.PriceBook, kids [][]int32, rel, lo int32, prefix string, last bool, t0 int64) {
	branch, cont := "├─ ", "│  "
	if last {
		branch, cont = "└─ ", "   "
	}
	i := lo + rel
	fmt.Fprintf(sb, "%s%s%s %s  +%s %s", prefix, branch, s.svcs[s.segSvc[i]], s.ops[s.segOp[i]],
		fmtDur(time.Duration(s.segStart[i]-t0)), fmtDur(s.durLocked(i)))
	for a := s.annoLo[i]; a < s.annoHi[i]; a++ {
		fmt.Fprintf(sb, "  %s=%s", s.annoKeys[a], s.annoVals[a])
	}
	if c := s.segCostLocked(i, book); c != 0 {
		fmt.Fprintf(sb, "  %s", fmtCost(c))
	}
	sb.WriteByte('\n')
	for j, c := range kids[rel] {
		s.renderSegLocked(sb, book, kids, c, lo, prefix+cont, j == len(kids[rel])-1, t0)
	}
}

func (s *Store) durLocked(seg int32) time.Duration {
	if s.segEnd[seg] == noEnd {
		return 0
	}
	return time.Duration(s.segEnd[seg] - s.segStart[seg])
}

func (s *Store) segCostLocked(seg int32, book *pricing.PriceBook) pricing.Money {
	var total pricing.Money
	for u := s.useLo[seg]; u < s.useHi[seg]; u++ {
		total += book.ListPrice(s.usages[u])
	}
	return total
}

func (s *Store) traceUsageLocked(row int32) []pricing.Usage {
	type key struct {
		kind     pricing.Kind
		resource string
		app      string
	}
	sums := make(map[key]float64)
	lo, hi := s.segLo[row], s.segHi[row]
	for i := lo; i < hi; i++ {
		for u := s.useLo[i]; u < s.useHi[i]; u++ {
			rec := s.usages[u]
			sums[key{rec.Kind, rec.Resource, rec.App}] += rec.Quantity
		}
	}
	out := make([]pricing.Usage, 0, len(sums))
	for k, q := range sums {
		out = append(out, pricing.Usage{Kind: k.kind, Quantity: q, Resource: k.resource, App: k.app})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.App < b.App
	})
	return out
}

func (s *Store) traceCostLocked(row int32, book *pricing.PriceBook) pricing.Money {
	var total pricing.Money
	for _, u := range s.traceUsageLocked(row) {
		total += book.ListPrice(u)
	}
	return total
}

// Service reports the segment's service name.
func (g SegmentView) Service() string {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.svcs[g.s.segSvc[g.seg]]
}

// Op reports the segment's operation name.
func (g SegmentView) Op() string {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.ops[g.s.segOp[g.seg]]
}

// Start reports when the segment opened on the simulated timeline.
func (g SegmentView) Start() time.Time {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return time.Unix(0, g.s.segStart[g.seg]).UTC()
}

// End reports when the segment closed (zero if it never finished).
func (g SegmentView) End() time.Time {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	if g.s.segEnd[g.seg] == noEnd {
		return time.Time{}
	}
	return time.Unix(0, g.s.segEnd[g.seg]).UTC()
}

// Duration reports the segment's duration (zero if it never finished).
func (g SegmentView) Duration() time.Duration {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.durLocked(g.seg)
}

// Annotation reports the value for a key and whether it was set.
func (g SegmentView) Annotation(key string) (string, bool) {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	for a := g.s.annoLo[g.seg]; a < g.s.annoHi[g.seg]; a++ {
		if g.s.annoKeys[a] == key {
			return g.s.annoVals[a], true
		}
	}
	return "", false
}

// Annotations returns the segment's annotations in insertion order.
func (g SegmentView) Annotations() []Annotation {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	lo, hi := g.s.annoLo[g.seg], g.s.annoHi[g.seg]
	out := make([]Annotation, 0, hi-lo)
	for a := lo; a < hi; a++ {
		out = append(out, Annotation{Key: g.s.annoKeys[a], Value: g.s.annoVals[a]})
	}
	return out
}

// Usage returns a copy of the segment's own usage records.
func (g SegmentView) Usage() []pricing.Usage {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return append([]pricing.Usage(nil), g.s.usages[g.s.useLo[g.seg]:g.s.useHi[g.seg]]...)
}

// Cost prices this segment's own usage at list price.
func (g SegmentView) Cost(book *pricing.PriceBook) pricing.Money {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.segCostLocked(g.seg, book)
}

// Parent returns the segment's parent, false at the root.
func (g SegmentView) Parent() (SegmentView, bool) {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	p := g.s.segParent[g.seg]
	if p < 0 {
		return SegmentView{}, false
	}
	return SegmentView{s: g.s, seg: g.lo + p, lo: g.lo}, true
}
