package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/pricing"
)

// Query evaluates an X-Ray-style filter expression over the stored
// traces whose root started in [from, to] (zero bounds are open) and
// returns the matches in start order. Every candidate trace counts
// toward the scanned dimension whether or not it matches — scanning
// is what X-Ray bills.
//
// Grammar (keywords case-insensitive, AND binds tighter than OR):
//
//	expr    := or
//	or      := and ("OR" and)*
//	and     := unary ("AND" unary)*
//	unary   := "NOT" unary | "(" expr ")" | primary
//	primary := "service" "(" string ")"
//	         | "duration" cmp durationLiteral      e.g. duration > 500ms
//	         | "cost" cmp moneyLiteral             e.g. cost > $0.001
//	         | "annotation" "." key ("="|"!=") value
//	cmp     := "=" | "!=" | ">" | ">=" | "<" | "<="
//
// service(...) matches traces containing a segment of that service;
// duration compares the root span; cost compares the trace's
// list-price total against the book; annotation compares the value
// (as a string) on any segment, e.g. annotation.cold_start = true.
func (s *Store) Query(expr string, book *pricing.PriceBook, from, to time.Time) ([]TraceView, error) {
	if s == nil {
		return nil, nil
	}
	p := &filterParser{toks: lexFilter(expr), book: book}
	pred, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("filter %q: %w", expr, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("filter %q: trailing input at %q", expr, p.peek().text)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	rows := s.windowLocked(from, to)
	s.scanned += int64(len(rows))
	var out []TraceView
	for _, row := range rows {
		if pred(s, row) {
			out = append(out, TraceView{s: s, row: row})
		}
	}
	return out, nil
}

// filterPred evaluates one predicate against a stored trace row. The
// store's lock is held by Query while predicates run.
type filterPred func(s *Store, row int32) bool

type filterToken struct {
	kind filterTokKind
	text string
}

type filterTokKind int

const (
	tokEOF filterTokKind = iota
	tokIdent
	tokString
	tokNumber // bare number, duration (500ms) or money ($0.001)
	tokOp     // = != > >= < <= ( ) .
)

func lexFilter(src string) []filterToken {
	var toks []filterToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '.':
			toks = append(toks, filterToken{tokOp, string(c)})
			i++
		case c == '=':
			toks = append(toks, filterToken{tokOp, "="})
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, filterToken{tokOp, "!="})
			i += 2
		case c == '>' || c == '<':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, filterToken{tokOp, op})
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			toks = append(toks, filterToken{tokString, src[i+1 : min(j, len(src))]})
			i = j + 1
		case c == '$' || c >= '0' && c <= '9':
			j := i
			if c == '$' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] >= 'a' && src[j] <= 'z' || src[j] == 'µ') {
				j++
			}
			toks = append(toks, filterToken{tokNumber, src[i:j]})
			i = j
		default:
			j := i
			for j < len(src) && (src[j] >= 'a' && src[j] <= 'z' || src[j] >= 'A' && src[j] <= 'Z' ||
				src[j] >= '0' && src[j] <= '9' || src[j] == '_' || src[j] == '-') {
				j++
			}
			if j == i {
				j++ // unknown byte: emit it and let the parser reject
			}
			toks = append(toks, filterToken{tokIdent, src[i:j]})
			i = j
		}
	}
	return append(toks, filterToken{kind: tokEOF})
}

type filterParser struct {
	toks []filterToken
	pos  int
	book *pricing.PriceBook
}

func (p *filterParser) peek() filterToken { return p.toks[p.pos] }
func (p *filterParser) next() filterToken { t := p.toks[p.pos]; p.pos++; return t }
func (p *filterParser) eof() bool         { return p.peek().kind == tokEOF }

func (p *filterParser) accept(kind filterTokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || strings.EqualFold(t.text, text)) {
		p.pos++
		return true
	}
	return false
}

func (p *filterParser) expect(kind filterTokKind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("expected %q, found %q", text, p.peek().text)
	}
	return nil
}

func (p *filterParser) parseOr() (filterPred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(s *Store, row int32) bool { return l(s, row) || r(s, row) }
	}
	return left, nil
}

func (p *filterParser) parseAnd() (filterPred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(s *Store, row int32) bool { return l(s, row) && r(s, row) }
	}
	return left, nil
}

func (p *filterParser) parseUnary() (filterPred, error) {
	if p.accept(tokIdent, "not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(s *Store, row int32) bool { return !inner(s, row) }, nil
	}
	if p.accept(tokOp, "(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parsePrimary()
}

func (p *filterParser) parsePrimary() (filterPred, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected a predicate, found %q", t.text)
	}
	switch strings.ToLower(t.text) {
	case "service":
		if err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		name := p.next()
		if name.kind != tokString && name.kind != tokIdent {
			return nil, fmt.Errorf("service(...) wants a name, found %q", name.text)
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		svc := name.text
		return func(s *Store, row int32) bool {
			for i := s.segLo[row]; i < s.segHi[row]; i++ {
				if s.svcs[s.segSvc[i]] == svc {
					return true
				}
			}
			return false
		}, nil

	case "duration":
		op, lit, err := p.cmpAndLiteral()
		if err != nil {
			return nil, err
		}
		want, err := time.ParseDuration(lit)
		if err != nil {
			return nil, fmt.Errorf("bad duration %q: %w", lit, err)
		}
		return func(s *Store, row int32) bool {
			return cmpInt64(int64(s.durLocked(s.segLo[row])), int64(want), op)
		}, nil

	case "cost":
		op, lit, err := p.cmpAndLiteral()
		if err != nil {
			return nil, err
		}
		dollars, err := strconv.ParseFloat(strings.TrimPrefix(lit, "$"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad money %q: %w", lit, err)
		}
		want := pricing.FromDollars(dollars)
		book := p.book
		if book == nil {
			book = pricing.Default2017()
		}
		return func(s *Store, row int32) bool {
			return cmpInt64(s.traceCostLocked(row, book).Nanodollars(), want.Nanodollars(), op)
		}, nil

	case "annotation":
		if err := p.expect(tokOp, "."); err != nil {
			return nil, err
		}
		key := p.next()
		if key.kind != tokIdent {
			return nil, fmt.Errorf("annotation wants a key, found %q", key.text)
		}
		op := p.next()
		if op.kind != tokOp || op.text != "=" && op.text != "!=" {
			return nil, fmt.Errorf("annotation.%s wants = or !=, found %q", key.text, op.text)
		}
		val := p.next()
		if val.kind != tokString && val.kind != tokIdent && val.kind != tokNumber {
			return nil, fmt.Errorf("annotation.%s wants a value, found %q", key.text, val.text)
		}
		k, want, eq := key.text, val.text, op.text == "="
		return func(s *Store, row int32) bool {
			for i := s.segLo[row]; i < s.segHi[row]; i++ {
				for a := s.annoLo[i]; a < s.annoHi[i]; a++ {
					if s.annoKeys[a] == k {
						if (s.annoVals[a] == want) == eq {
							return true
						}
					}
				}
			}
			return false
		}, nil
	}
	return nil, fmt.Errorf("unknown predicate %q", t.text)
}

func (p *filterParser) cmpAndLiteral() (string, string, error) {
	op := p.next()
	if op.kind != tokOp || op.text == "(" || op.text == ")" || op.text == "." {
		return "", "", fmt.Errorf("expected a comparison, found %q", op.text)
	}
	lit := p.next()
	if lit.kind != tokNumber {
		return "", "", fmt.Errorf("expected a literal after %q, found %q", op.text, lit.text)
	}
	return op.text, lit.text, nil
}

func cmpInt64(got, want int64, op string) bool {
	switch op {
	case "=":
		return got == want
	case "!=":
		return got != want
	case ">":
		return got > want
	case ">=":
		return got >= want
	case "<":
		return got < want
	case "<=":
		return got <= want
	}
	return false
}
