package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cloudsim/sortutil"
)

// PathStep is one hop of a trace's critical path with the wall time
// attributed to it: the step's own duration minus the duration of the
// child chosen to continue the path (a leaf keeps its whole
// duration). Cold-start and billing-quantum sub-segments appear as
// their own steps, so the attribution separates "waiting for a
// sandbox" and "paying the 100 ms quantum" from real work.
type PathStep struct {
	Service string
	Op      string
	Self    time.Duration
}

// CriticalPath extracts the trace's critical path: starting at the
// root, repeatedly descend into the longest-duration child (ties
// break on earlier start, then creation order), attributing to each
// step its self time along the chain.
func (v TraceView) CriticalPath() []PathStep {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.criticalPathLocked(v.row)
}

func (s *Store) criticalPathLocked(row int32) []PathStep {
	kids := s.childrenLocked(row)
	lo := s.segLo[row]
	var path []PathStep
	rel := int32(0)
	for {
		i := lo + rel
		step := PathStep{Service: s.svcs[s.segSvc[i]], Op: s.ops[s.segOp[i]], Self: s.durLocked(i)}
		next := int32(-1)
		var nextDur time.Duration
		var nextStart int64
		for _, c := range kids[rel] {
			ci := lo + c
			d, st := s.durLocked(ci), s.segStart[ci]
			if next < 0 || d > nextDur || (d == nextDur && st < nextStart) {
				next, nextDur, nextStart = c, d, st
			}
		}
		if next >= 0 {
			if step.Self > nextDur {
				step.Self -= nextDur
			} else {
				step.Self = 0
			}
		}
		path = append(path, step)
		if next < 0 {
			return path
		}
		rel = next
	}
}

// CriticalStat aggregates the self time one (service, op) contributed
// across many critical paths.
type CriticalStat struct {
	Service string
	Op      string
	Count   int
	Self    time.Duration
}

// histBounds are the root-duration histogram bucket upper bounds; a
// final open bucket catches everything slower.
var histBounds = [...]time.Duration{
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// HistBuckets is the number of root-duration histogram buckets.
const HistBuckets = len(histBounds) + 1

// CriticalProfile aggregates critical-path extraction over a set of
// traces: per-(service, op) self-time attribution plus a
// root-duration histogram. Step order is first-seen scan order;
// Render sorts for display.
type CriticalProfile struct {
	Traces int
	Steps  []CriticalStat
	Hist   [HistBuckets]int
}

// CriticalProfile extracts and aggregates the critical path of every
// stored trace whose root started in [from, to] (zero bounds are
// open). The scan counts every visited trace toward the scanned
// dimension.
func (s *Store) CriticalProfile(from, to time.Time) *CriticalProfile {
	if s == nil {
		return &CriticalProfile{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	rows := s.windowLocked(from, to)
	s.scanned += int64(len(rows))

	p := &CriticalProfile{Traces: len(rows)}
	idx := make(map[[2]string]int)
	for _, row := range rows {
		for _, step := range s.criticalPathLocked(row) {
			k := [2]string{step.Service, step.Op}
			si, ok := idx[k]
			if !ok {
				si = len(p.Steps)
				idx[k] = si
				p.Steps = append(p.Steps, CriticalStat{Service: step.Service, Op: step.Op})
			}
			p.Steps[si].Count++
			p.Steps[si].Self += step.Self
		}
		p.Hist[histBucket(s.durLocked(s.segLo[row]))]++
	}
	return p
}

func histBucket(d time.Duration) int {
	for i, b := range histBounds {
		if d < b {
			return i
		}
	}
	return len(histBounds)
}

// Merge folds another profile into p — the control tower's fleet-wide
// rollup of per-account profiles.
func (p *CriticalProfile) Merge(o *CriticalProfile) {
	if o == nil {
		return
	}
	p.Traces += o.Traces
	for _, os := range o.Steps {
		found := false
		for i := range p.Steps {
			if p.Steps[i].Service == os.Service && p.Steps[i].Op == os.Op {
				p.Steps[i].Count += os.Count
				p.Steps[i].Self += os.Self
				found = true
				break
			}
		}
		if !found {
			p.Steps = append(p.Steps, os)
		}
	}
	for i, n := range o.Hist {
		p.Hist[i] += n
	}
}

// Render prints the profile: steps sorted by total self time
// (descending, then service/op), then the root-duration histogram.
func (p *CriticalProfile) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path — %d traces\n", p.Traces)
	steps := append([]CriticalStat(nil), p.Steps...)
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].Self != steps[j].Self {
			return steps[i].Self > steps[j].Self
		}
		if steps[i].Service != steps[j].Service {
			return steps[i].Service < steps[j].Service
		}
		return steps[i].Op < steps[j].Op
	})
	fmt.Fprintf(&sb, "  %-28s %9s %11s %11s\n", "STEP", "HITS", "AVG SELF", "TOTAL SELF")
	for _, st := range steps {
		avg := time.Duration(0)
		if st.Count > 0 {
			avg = st.Self / time.Duration(st.Count)
		}
		fmt.Fprintf(&sb, "  %-28s %9d %11s %11s\n", st.Service+" "+st.Op, st.Count,
			sortutil.FormatDuration(avg), sortutil.FormatDuration(st.Self))
	}
	labels := [HistBuckets]string{"<50ms", "50-100ms", "100-250ms", "250-500ms", "500ms-1s", ">=1s"}
	sb.WriteString("  duration histogram:")
	for i, n := range p.Hist {
		fmt.Fprintf(&sb, "  %s=%d", labels[i], n)
	}
	sb.WriteByte('\n')
	return sb.String()
}
