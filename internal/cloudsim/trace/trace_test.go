package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pricing"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func TestSpanTree(t *testing.T) {
	tr := New("req", t0)
	if tr.Name() != "req" {
		t.Fatalf("name = %q", tr.Name())
	}
	root := tr.Root()
	gw := root.StartChild("gateway", "/x", t0.Add(5*time.Millisecond))
	fn := gw.StartChild("lambda", "fn", t0.Add(10*time.Millisecond))
	kms := fn.StartChild("kms", "Decrypt", t0.Add(20*time.Millisecond))
	kms.Finish(t0.Add(30 * time.Millisecond))
	fn.Finish(t0.Add(150 * time.Millisecond))
	gw.Finish(t0.Add(160 * time.Millisecond))
	tr.Finish(t0.Add(170 * time.Millisecond))

	spans := tr.Spans()
	want := []string{"client", "gateway", "lambda", "kms"}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(spans), len(want))
	}
	for i, s := range spans {
		if s.Service() != want[i] {
			t.Errorf("span %d service = %q, want %q", i, s.Service(), want[i])
		}
	}
	if d := tr.Duration(); d != 170*time.Millisecond {
		t.Errorf("trace duration = %v", d)
	}
	if d := kms.Duration(); d != 10*time.Millisecond {
		t.Errorf("kms duration = %v", d)
	}
	if got := tr.Find("lambda", "fn"); got != fn {
		t.Error("Find(lambda, fn) missed")
	}
	if got := tr.Find("kms", ""); got != kms {
		t.Error("Find(kms, *) missed")
	}
	if tr.Find("dynamo", "") != nil {
		t.Error("Find for absent service should be nil")
	}
	if kms.Parent() != fn || fn.Parent() != gw || root.Parent() != nil {
		t.Error("parent links wrong")
	}
}

func TestFinishClamp(t *testing.T) {
	tr := New("req", t0)
	s := tr.Root().StartChild("s3", "Get", t0.Add(time.Second))
	s.Finish(t0) // earlier than start: clamped
	if s.End() != s.Start() {
		t.Fatalf("end = %v, want clamp to start %v", s.End(), s.Start())
	}
	if s.Duration() != 0 {
		t.Fatalf("duration = %v, want 0", s.Duration())
	}
}

func TestAnnotations(t *testing.T) {
	tr := New("req", t0)
	s := tr.Root().StartChild("lambda", "fn", t0)
	s.Annotate("cold_start", "true")
	s.Annotate("region", "us-west-2")
	s.Annotate("cold_start", "false") // overwrite, not duplicate
	if v, ok := s.Annotation("cold_start"); !ok || v != "false" {
		t.Fatalf("cold_start = %q, %v", v, ok)
	}
	if got := s.Annotations(); len(got) != 2 {
		t.Fatalf("annotations = %v", got)
	}
	if _, ok := s.Annotation("absent"); ok {
		t.Fatal("absent annotation reported present")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var s *Span
	// None of these may panic, and the zero values must be sane.
	s = tr.Root()
	s = s.StartChild("a", "b", t0)
	s.Finish(t0)
	s.Annotate("k", "v")
	s.AddUsage(pricing.Usage{Kind: pricing.KMSRequests, Quantity: 1})
	if s.Duration() != 0 || s.Service() != "" || s.Op() != "" {
		t.Fatal("nil span yielded non-zero values")
	}
	if len(s.Usage()) != 0 || len(s.Annotations()) != 0 || len(s.Children()) != 0 {
		t.Fatal("nil span yielded contents")
	}
	if tr.Spans() != nil || tr.Name() != "" || tr.Duration() != 0 {
		t.Fatal("nil trace yielded contents")
	}
	tr.Finish(t0)
	if tr.Render(pricing.Default2017()) != "" {
		t.Fatal("nil trace rendered")
	}
	if tr.Cost(pricing.Default2017()) != 0 {
		t.Fatal("nil trace cost")
	}
}

func TestUsageAggregationAndCost(t *testing.T) {
	book := pricing.Default2017()
	tr := New("req", t0)
	fn := tr.Root().StartChild("lambda", "fn", t0)
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1, App: "chat"})
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: 0.0875, App: "chat"})
	s3a := fn.StartChild("s3", "Put", t0)
	s3a.AddUsage(pricing.Usage{Kind: pricing.S3PutRequests, Quantity: 1, App: "chat"})
	s3b := fn.StartChild("s3", "Put", t0)
	s3b.AddUsage(pricing.Usage{Kind: pricing.S3PutRequests, Quantity: 1, App: "chat"})

	agg := tr.Usage()
	// Same-key records merge: the two S3 puts become one record.
	var puts float64
	for _, u := range agg {
		if u.Kind == pricing.S3PutRequests {
			puts += u.Quantity
		}
	}
	if puts != 2 {
		t.Fatalf("aggregated puts = %v", puts)
	}
	if len(agg) != 3 {
		t.Fatalf("aggregated records = %d, want 3", len(agg))
	}

	want := book.ListPrice(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1}) +
		book.ListPrice(pricing.Usage{Kind: pricing.LambdaGBSeconds, Quantity: 0.0875}) +
		book.ListPrice(pricing.Usage{Kind: pricing.S3PutRequests, Quantity: 2})
	if got := tr.Cost(book); got != want {
		t.Fatalf("trace cost = %v, want %v", got, want)
	}
	// Per-span and subtree attribution.
	if fn.Cost(book) >= tr.Cost(book) {
		t.Fatal("lambda span alone should cost less than the whole trace")
	}
	if fn.SubtreeCost(book) != tr.Cost(book) {
		t.Fatalf("subtree cost %v != trace cost %v", fn.SubtreeCost(book), tr.Cost(book))
	}
}

func TestRender(t *testing.T) {
	book := pricing.Default2017()
	tr := New("chat-send", t0)
	gw := tr.Root().StartChild("gateway", "/u/chat", t0.Add(time.Millisecond))
	fn := gw.StartChild("lambda", "u-chat", t0.Add(20*time.Millisecond))
	fn.Annotate("cold_start", "true")
	fn.AddUsage(pricing.Usage{Kind: pricing.LambdaRequests, Quantity: 1})
	fn.Finish(t0.Add(200 * time.Millisecond))
	gw.Finish(t0.Add(210 * time.Millisecond))
	tr.Finish(t0.Add(211 * time.Millisecond))

	out := tr.Render(book)
	for _, frag := range []string{
		"chat-send  211ms",
		"└─ gateway /u/chat  +1ms 209ms",
		"└─ lambda u-chat  +20ms 180ms  cold_start=true",
		"$0.00000020", // one request at $0.20/M
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q in:\n%s", frag, out)
		}
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore(nil) // nil sampler: keep everything
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("fresh store has a last trace")
	}
	a, b := New("a", t0), New("b", t0.Add(time.Second))
	a.Finish(t0.Add(100 * time.Millisecond))
	b.Finish(t0.Add(1100 * time.Millisecond))
	s.Record(a)
	s.Record(b)
	s.Record(nil) // nil traces are ignored
	if got := s.Len(); got != 2 {
		t.Fatalf("len = %d", got)
	}
	views := s.Stored()
	if len(views) != 2 || views[0].Name() != "a" || views[1].Name() != "b" {
		t.Fatalf("stored = %v", views)
	}
	if views[0].Duration() != 100*time.Millisecond {
		t.Fatalf("duration = %v", views[0].Duration())
	}
	last, ok := s.Last()
	if !ok || last.Name() != "b" {
		t.Fatal("last != b")
	}
	// An unfinished trace stays staged, invisible to reads, until
	// finished and re-flushed.
	c := New("c", t0.Add(2*time.Second))
	s.Record(c)
	if got := len(s.Stored()); got != 2 {
		t.Fatalf("open trace leaked into storage: %d stored", got)
	}
	c.Finish(t0.Add(3 * time.Second))
	if got := len(s.Stored()); got != 3 {
		t.Fatalf("finished trace not folded: %d stored", got)
	}
	// Time windows binary-search root starts, bounds inclusive.
	win := s.Window(t0.Add(time.Second), t0.Add(2*time.Second))
	if len(win) != 2 || win[0].Name() != "b" || win[1].Name() != "c" {
		t.Fatalf("window = %d traces", len(win))
	}
	var nilStore *Store
	nilStore.Record(a)
	nilStore.Flush()
	if nilStore.Len() != 0 || nilStore.Stored() != nil || !nilStore.Decide("x", "y", t0) {
		t.Fatal("nil store misbehaved")
	}
}

func TestConcurrentTraceAccess(t *testing.T) {
	// A reader walking the trace while another goroutine appends spans
	// must be race-free (the store makes traces visible across
	// goroutines).
	tr := New("req", t0)
	root := tr.Root()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := root.StartChild("s3", "Get", t0)
			s.Annotate("k", "v")
			s.AddUsage(pricing.Usage{Kind: pricing.S3GetRequests, Quantity: 1})
			s.Finish(t0.Add(time.Millisecond))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr.Spans()
			tr.Usage()
			tr.Cost(pricing.Default2017())
		}
	}()
	wg.Wait()
	if got := len(tr.FindAll("s3")); got != 200 {
		t.Fatalf("spans = %d", got)
	}
}
