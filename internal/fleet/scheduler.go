package fleet

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet/telemetry"
	"repro/internal/workload"
)

// The scheduler is where the determinism contract is enforced
// mechanically. Accounts hash-partition into Config.Shards logical
// shards — a pure function of (Seed, account index, Shards), never of
// worker count. Workers pull whole shards off a channel and simulate
// that shard's accounts sequentially in index order. Because the shard
// assignment is fixed and each account writes only its own slot of the
// pre-sized outcome slice, the slice contents after the join are
// identical no matter which worker ran which shard, or in what order —
// worker count and goroutine scheduling can change only wall-clock
// time, never a byte of output.

// accountOutcome is one account's raw simulation product, deposited in
// the outcome slot owned by that account.
type accountOutcome struct {
	stats     AccountStats
	latencies []time.Duration
	samples   []reqSample
	// events counts the timeline events the account's replay popped —
	// engine self-telemetry, surfaced per shard by the control tower.
	events int
	err    error
}

// reqSample pairs one request's inter-request gap with whether it hit
// a cold container, feeding the gap-bucket histogram.
type reqSample struct {
	gap  time.Duration
	cold bool
}

// shardOf assigns an account index to a logical shard: splitmix-mixed
// so adjacent indices spread across shards, seeded so distinct fleets
// partition differently, and independent of worker count by
// construction.
func shardOf(seed int64, index, shards int) int {
	root := uint64(workload.AccountSeed(seed, index))
	return int(root % uint64(shards))
}

// workers resolves the worker-goroutine count.
func workers(cfg *Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runShards simulates every profile and returns the outcomes in
// profile (account-index) order.
func runShards(cfg *Config, shared *core.Shared, profiles []workload.AccountProfile) []accountOutcome {
	// Group profile positions by shard, preserving index order within
	// each shard.
	shards := make([][]int, cfg.Shards)
	for pos, p := range profiles {
		s := shardOf(cfg.Seed, p.Index, cfg.Shards)
		shards[s] = append(shards[s], pos)
	}

	// Precomputed pprof label values, so the hot loop never formats.
	shardNames := make([]string, cfg.Shards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("%03d", i)
	}

	out := make([]accountOutcome, len(profiles))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := workers(cfg); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sid := range jobs {
				// Label the whole shard drain for CPU profiles: samples
				// attribute to their shard, and within it to the
				// install/drain phase set per account.
				pprof.Do(context.Background(), pprof.Labels("shard", shardNames[sid]), func(context.Context) {
					drainShard(cfg, shared, profiles, shards[sid], sid, out)
				})
			}
		}()
	}
	for sid, shard := range shards {
		if len(shard) > 0 {
			jobs <- sid
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// drainShard simulates one logical shard's accounts sequentially in
// index order, depositing each outcome in its owned slot, and reports
// the shard's virtual-time totals to the control tower.
func drainShard(cfg *Config, shared *core.Shared, profiles []workload.AccountProfile, shard []int, sid int, out []accountOutcome) {
	var sc telemetry.ShardCounters
	for _, pos := range shard {
		o := simulateAccount(cfg, shared, profiles[pos], pos)
		out[pos] = o
		if o.err != nil {
			continue
		}
		sc.Accounts++
		sc.Requests += o.stats.Requests
		sc.ColdStarts += o.stats.ColdStarts
		sc.Events += o.events
		sc.HorizonNs += int64(cfg.Span)
	}
	if cfg.Tower != nil {
		cfg.Tower.ObserveShard(sid, sc)
	}
}
