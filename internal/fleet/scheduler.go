package fleet

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// The scheduler is where the determinism contract is enforced
// mechanically. Accounts hash-partition into Config.Shards logical
// shards — a pure function of (Seed, account index, Shards), never of
// worker count. Workers pull whole shards off a channel and simulate
// that shard's accounts sequentially in index order. Because the shard
// assignment is fixed and each account writes only its own slot of the
// pre-sized outcome slice, the slice contents after the join are
// identical no matter which worker ran which shard, or in what order —
// worker count and goroutine scheduling can change only wall-clock
// time, never a byte of output.

// accountOutcome is one account's raw simulation product, deposited in
// the outcome slot owned by that account.
type accountOutcome struct {
	stats     AccountStats
	latencies []time.Duration
	samples   []reqSample
	err       error
}

// reqSample pairs one request's inter-request gap with whether it hit
// a cold container, feeding the gap-bucket histogram.
type reqSample struct {
	gap  time.Duration
	cold bool
}

// shardOf assigns an account index to a logical shard: splitmix-mixed
// so adjacent indices spread across shards, seeded so distinct fleets
// partition differently, and independent of worker count by
// construction.
func shardOf(seed int64, index, shards int) int {
	root := uint64(workload.AccountSeed(seed, index))
	return int(root % uint64(shards))
}

// workers resolves the worker-goroutine count.
func workers(cfg *Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runShards simulates every profile and returns the outcomes in
// profile (account-index) order.
func runShards(cfg *Config, shared *core.Shared, profiles []workload.AccountProfile) []accountOutcome {
	// Group profile positions by shard, preserving index order within
	// each shard.
	shards := make([][]int, cfg.Shards)
	for pos, p := range profiles {
		s := shardOf(cfg.Seed, p.Index, cfg.Shards)
		shards[s] = append(shards[s], pos)
	}

	out := make([]accountOutcome, len(profiles))
	jobs := make(chan []int)
	var wg sync.WaitGroup
	for w := workers(cfg); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range jobs {
				for _, pos := range shard {
					out[pos] = simulateAccount(cfg, shared, profiles[pos])
				}
			}
		}()
	}
	for _, shard := range shards {
		if len(shard) > 0 {
			jobs <- shard
		}
	}
	close(jobs)
	wg.Wait()
	return out
}
