// Package fleet scales the single-account simulator to the paper's
// premise: millions of people, each running their own DIY serverless
// deployment. It is a discrete-event engine driving N independent
// accounts — each with its own Cloud, meter, virtual timeline, and
// partitioned PRNG streams — hash-partitioned into a fixed number of
// logical shards that run on however many worker goroutines the host
// offers.
//
// The determinism contract: a fleet run is a pure function of
// (Accounts, MaxSimulated, Seed, Span, Shards) and replays
// bit-identically regardless of Workers or GOMAXPROCS. Accounts never
// interact, per-account results land in a slice slot owned by exactly
// one account, and every cross-account aggregate is either
// order-insensitive or merged in account-index order after the workers
// join. Fleets larger than MaxSimulated are sampled by a deterministic
// stride and extrapolated — and the scaling is always reported, never
// silent.
package fleet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cloudsim/metrics"
	"repro/internal/core"
	"repro/internal/fleet/telemetry"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// Config parameterizes a fleet run. The zero value is usable: a
// 1,000-account fleet over 30 simulated minutes.
type Config struct {
	// Accounts is the fleet size the run models (default 1,000). Sizes
	// above MaxSimulated are sampled, with the scaling reported in
	// Result.ScalingNote.
	Accounts int
	// MaxSimulated caps the number of accounts actually simulated
	// (default 10,000).
	MaxSimulated int
	// Seed is the fleet master seed every per-account stream partition
	// derives from (default 1).
	Seed int64
	// Span is each account's simulated activity window, starting at
	// clock.Epoch (default 30 minutes).
	Span time.Duration
	// Shards is the number of logical shards accounts hash-partition
	// into (default 64). It is part of the replay identity — results
	// are independent of Workers, not of Shards.
	Shards int
	// Workers is the number of worker goroutines draining shards
	// (default GOMAXPROCS). It never affects results.
	Workers int
	// Book overrides the price book (Default2017 if nil).
	Book *pricing.PriceBook
	// CaptureLedgers keeps each simulated account's full metered
	// ledger on its AccountStats — parity tests use it; large fleets
	// should leave it off.
	CaptureLedgers bool
	// Trace turns on per-account head-sampled distributed tracing:
	// each account's cloud gets an X-Ray-sim store whose sampler
	// (reservoir 1/s + 5%, the X-Ray default rule) is seeded from
	// workload.Substream(profile.Seed, "trace"), and every workload
	// request runs under a TracedContext. Tracing is read-only over
	// the economy — the trace parity test pins ledger goldens
	// bit-identical with it on. Pair with Tower to roll the sampled
	// traces into fleet-wide service maps and critical-path profiles.
	Trace bool
	// Profile overrides the account-profile distribution (tests use it
	// to pin identical seeds on two accounts). Nil means
	// workload.Profile.
	Profile func(base int64, index int) workload.AccountProfile
	// Tower, when non-nil, turns on the fleet control tower: engine
	// self-telemetry, per-account CloudWatch observability, and
	// cross-account rollups. It never affects results — the telemetry
	// parity test pins ledger goldens bit-identical with it on.
	Tower *telemetry.Tower
}

// AccountStats is one simulated account's outcome.
type AccountStats struct {
	// Index is the account's fleet position.
	Index int
	// Kind is the app the account ran.
	Kind workload.AppKind
	// Requests is the number of workload arrivals served in the span.
	Requests int
	// ColdStarts counts requests that hit a cold Lambda container.
	ColdStarts int
	// MonthlyCost is the span's metered usage priced at list price (no
	// free tier — the marginal-cost view) and extrapolated to the
	// 30-day month.
	MonthlyCost pricing.Money
	// Ledger is the account's full metered ledger; "" unless
	// Config.CaptureLedgers.
	Ledger string
}

// GapBucket aggregates cold-start behaviour over one inter-request-gap
// band — the fleet extension of Figure 1's cold-start story, with the
// Lambda warm-container TTL as the knee.
type GapBucket struct {
	// Label names the band, e.g. "2m-5m".
	Label string
	// UpTo is the band's exclusive upper bound (0 for the open tail).
	UpTo time.Duration
	// Requests and ColdStarts count simulated requests whose gap since
	// the account's previous request fell in the band.
	Requests   int
	ColdStarts int
}

// Result is a fleet run's aggregate outcome. Everything here is
// bit-identical across replays at any worker count.
type Result struct {
	// Accounts echoes the modelled fleet size; Simulated is how many
	// accounts actually ran (less than Accounts when sampled).
	Accounts  int
	Simulated int
	// ScaleFactor is Accounts/Simulated, the extrapolation multiplier
	// for fleet-wide totals.
	ScaleFactor float64
	// ScalingNote is non-empty whenever Simulated < Accounts: sampling
	// is always reported, never silent.
	ScalingNote string
	// Seed, Span, Shards echo the replay identity.
	Seed   int64
	Span   time.Duration
	Shards int

	// PerAccount holds each simulated account's outcome in account
	// order.
	PerAccount []AccountStats
	// Latencies is every simulated request's end-to-end latency,
	// merged in account order (unsorted).
	Latencies []time.Duration
	// GapBuckets is the cold-start-fraction-vs-inter-request-gap
	// histogram over all simulated requests.
	GapBuckets []GapBucket
	// MixCounts counts simulated accounts by app kind.
	MixCounts [workload.NumKinds]int
	// TotalRequests and TotalColdStarts sum over simulated accounts
	// (multiply by ScaleFactor for the modelled fleet).
	TotalRequests   int
	TotalColdStarts int

	// Sorted percentile caches, built once per distribution: reports
	// ask for three or more percentiles of the same samples.
	sortedCosts     []pricing.Money
	sortedLatencies []time.Duration
}

// month is the simulator's billing month (matching pricing's 30-day
// convention), used to extrapolate span usage to a monthly bill.
const month = 30 * 24 * time.Hour

// gapBounds are the inter-request-gap band edges. The 5-minute edge is
// the Lambda warm-container TTL: the curve's knee.
var gapBounds = []time.Duration{
	time.Minute,
	2 * time.Minute,
	5 * time.Minute,
	10 * time.Minute,
	30 * time.Minute,
}

// newGapBuckets builds the empty histogram.
func newGapBuckets() []GapBucket {
	out := make([]GapBucket, 0, len(gapBounds)+1)
	prev := time.Duration(0)
	for _, b := range gapBounds {
		out = append(out, GapBucket{Label: fmt.Sprintf("%v-%v", prev, b), UpTo: b})
		prev = b
	}
	out[0].Label = fmt.Sprintf("<%v", gapBounds[0])
	out = append(out, GapBucket{Label: fmt.Sprintf(">%v", prev), UpTo: 0})
	return out
}

// bucketFor returns the histogram index for a gap.
func bucketFor(gap time.Duration) int {
	for i, b := range gapBounds {
		if gap < b {
			return i
		}
	}
	return len(gapBounds)
}

// Run executes the fleet and aggregates its results deterministically.
func Run(cfg Config) (*Result, error) {
	if cfg.Accounts <= 0 {
		cfg.Accounts = 1000
	}
	if cfg.MaxSimulated <= 0 {
		cfg.MaxSimulated = 10000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Span <= 0 {
		cfg.Span = 30 * time.Minute
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.Book == nil {
		cfg.Book = pricing.Default2017()
	}
	profileFn := cfg.Profile
	if profileFn == nil {
		profileFn = workload.Profile
	}

	// Sample oversized fleets by a deterministic stride over account
	// indices, so the sampled sub-fleet of a given size is always the
	// same set of accounts.
	stride := 1
	if cfg.Accounts > cfg.MaxSimulated {
		stride = int(math.Ceil(float64(cfg.Accounts) / float64(cfg.MaxSimulated)))
	}
	// Host-clock phase marks: all zero (and so all phase timings zero)
	// unless a host clock was injected via metrics.SetHostClock, which
	// simulated runs never do.
	hostProfiles := metrics.HostNow()
	var profiles []workload.AccountProfile
	for i := 0; i < cfg.Accounts; i += stride {
		profiles = append(profiles, profileFn(cfg.Seed, i))
	}
	if cfg.Tower != nil {
		cfg.Tower.Begin(len(profiles), cfg.Shards, cfg.Seed, cfg.Span)
	}

	res := &Result{
		Accounts:    cfg.Accounts,
		Simulated:   len(profiles),
		ScaleFactor: float64(cfg.Accounts) / float64(len(profiles)),
		Seed:        cfg.Seed,
		Span:        cfg.Span,
		Shards:      cfg.Shards,
		GapBuckets:  newGapBuckets(),
	}
	if stride > 1 {
		res.ScalingNote = fmt.Sprintf(
			"sampled: simulating %d of %d accounts (every %dth); fleet totals extrapolate ×%.1f",
			res.Simulated, cfg.Accounts, stride, res.ScaleFactor)
	}

	// The immutable cross-account state: one price book, one base
	// latency model, one attestation keypair for the whole fleet.
	shared, err := core.NewShared(cfg.Book, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}

	hostDrain := metrics.HostNow()
	outcomes := runShards(&cfg, shared, profiles)
	hostAggregate := metrics.HostNow()

	// Aggregation: strictly in account-index order, after the barrier.
	// Errors resolve deterministically to the lowest-indexed failure.
	for _, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("fleet: %w", o.err)
		}
		res.PerAccount = append(res.PerAccount, o.stats)
		res.Latencies = append(res.Latencies, o.latencies...)
		res.MixCounts[o.stats.Kind]++
		res.TotalRequests += o.stats.Requests
		res.TotalColdStarts += o.stats.ColdStarts
		for _, s := range o.samples {
			b := bucketFor(s.gap)
			res.GapBuckets[b].Requests++
			if s.cold {
				res.GapBuckets[b].ColdStarts++
			}
		}
	}

	// Sort the percentile inputs once, here, so every later
	// Cost/LatencyPercentile query is a single indexed read.
	costs := make([]pricing.Money, 0, len(res.PerAccount))
	for _, a := range res.PerAccount {
		costs = append(costs, a.MonthlyCost)
	}
	res.sortedCosts = sortedMoney(costs)
	res.sortedLatencies = sortedDurations(res.Latencies)

	if cfg.Tower != nil {
		cfg.Tower.ObservePhases(telemetry.PhaseTimings{
			ProfilesNs:  hostDrain - hostProfiles,
			DrainNs:     hostAggregate - hostDrain,
			AggregateNs: metrics.HostNow() - hostAggregate,
		})
		cfg.Tower.Finalize()
	}
	return res, nil
}

// CostPercentile reports the p-th percentile (nearest-rank) of the
// per-account monthly cost distribution.
func (r *Result) CostPercentile(p float64) pricing.Money {
	if r.sortedCosts == nil && len(r.PerAccount) > 0 {
		// Hand-built Result (tests): build the cache lazily.
		costs := make([]pricing.Money, 0, len(r.PerAccount))
		for _, a := range r.PerAccount {
			costs = append(costs, a.MonthlyCost)
		}
		r.sortedCosts = sortedMoney(costs)
	}
	return moneyPercentileSorted(r.sortedCosts, p)
}

// LatencyPercentile reports the p-th percentile (nearest-rank) of the
// fleet-wide request latency distribution.
func (r *Result) LatencyPercentile(p float64) time.Duration {
	if r.sortedLatencies == nil && len(r.Latencies) > 0 {
		r.sortedLatencies = sortedDurations(r.Latencies)
	}
	return durationPercentileSorted(r.sortedLatencies, p)
}
