package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/apps/email"
	"repro/internal/apps/filetransfer"
	"repro/internal/apps/iot"
	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/lambda"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/sim"
	"repro/internal/cloudsim/trace"
	"repro/internal/core"
	"repro/internal/fleet/telemetry"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// operator is every account's user name. The DIY operator *is* the
// account; a constant name keeps resource names (buckets, functions,
// queues) — and so ledgers — a function of the workload alone, which is
// what makes "two identically-seeded accounts produce bit-identical
// ledgers" a meaningful isolation property.
const operator = "op"

// accountSim drives one account's deployment through its simulated
// span as a chain of timeline events: each arrival serves a request
// and schedules the next. Its mutable fields are written only under mu
// (or from *Locked methods whose callers hold it): the struct is
// shard-private today, but the scheduler's workers are exactly the
// concurrency seam the shardsafe analyzer guards, and the lock keeps
// that guarantee mechanical rather than situational.
type accountSim struct {
	mu      sync.Mutex
	cfg     *Config
	profile workload.AccountProfile

	tl    *clock.Timeline
	cloud *core.Cloud
	dep   *core.Deployment
	end   time.Time

	arrivals *workload.Poisson
	payload  *rand.Rand
	lastAt   time.Time

	// chat peers (KindChat only).
	owner, peer *chat.Client

	stats     AccountStats
	latencies []time.Duration
	samples   []reqSample
	err       error
}

// simulateAccount builds one account's private world — timeline, cloud
// wired from the shared immutable bundle, deployment — replays its
// span, and returns the outcome. slot is the account's position in the
// simulated sub-fleet (its outcome-slice index).
//
// The pprof phase labels and metrics.HostNow marks attribute the
// account's host-clock cost to its two halves: NewCloud + app install
// versus the request-plane replay — the split the ROADMAP's ~100
// µs/request headroom question needs. HostNow is zero (and the labels
// free) in simulated runs with no injected host clock.
func simulateAccount(cfg *Config, shared *core.Shared, profile workload.AccountProfile, slot int) accountOutcome {
	var a *accountSim
	var err error
	installStart := metrics.HostNow()
	pprof.Do(context.Background(), pprof.Labels("phase", "install"), func(context.Context) {
		a, err = newAccountSim(cfg, shared, profile)
	})
	if err != nil {
		return accountOutcome{err: fmt.Errorf("account %06d (%v): %w", profile.Index, profile.Kind, err)}
	}
	drainStart := metrics.HostNow()
	var events int
	pprof.Do(context.Background(), pprof.Labels("phase", "drain"), func(context.Context) {
		a.scheduleNext()
		events = a.tl.RunUntil(a.end)
	})
	drainEnd := metrics.HostNow()
	o := a.outcome()
	o.events = events
	if cfg.Tower != nil && o.err == nil {
		// Reduce the account's CloudWatch series while the store is hot,
		// then recycle its chunks and batch buffers (below) — the fleet
		// builds and drops one store per account, and pooling that
		// storage is what keeps the telemetry bench within budget.
		cfg.Tower.ObserveAccount(a.cloud.Metrics, telemetry.AccountObservation{
			Slot:             slot,
			Index:            profile.Index,
			Kind:             profile.Kind.String(),
			Requests:         o.stats.Requests,
			ColdStarts:       o.stats.ColdStarts,
			Events:           events,
			MonthlyCostNanos: o.stats.MonthlyCost.Nanodollars(),
			InstallHostNs:    drainStart - installStart,
			DrainHostNs:      drainEnd - drainStart,
		})
		if cfg.Trace {
			// Reduce the account's sampled traces to its service map and
			// critical-path profile while the store is hot; the tower
			// merges them in slot order at Finalize. The rollup reads
			// bump the scanned dimension before Stats is taken, so the
			// dashboard's scan count includes them — deterministically.
			st := a.cloud.Tracer
			smap := st.ServiceMap(cfg.Book, time.Time{}, time.Time{})
			crit := st.CriticalProfile(time.Time{}, time.Time{})
			stats := st.Stats()
			var list int64
			for _, u := range st.Usage() {
				list += cfg.Book.ListPrice(u).Nanodollars()
			}
			cfg.Tower.ObserveTraces(telemetry.TraceObservation{
				Slot:      slot,
				Decided:   stats.Decided,
				Kept:      stats.Kept,
				Stored:    stats.Stored,
				Scanned:   stats.Scanned,
				ListNanos: list,
				Map:       smap,
				Crit:      crit,
			})
		}
	}
	a.cloud.Metrics.Recycle()
	return o
}

// newAccountSim wires the account: an injected shard-local timeline,
// per-account netsim/arrival/payload streams derived from the
// account's seed partition, and the app installation + warmup.
func newAccountSim(cfg *Config, shared *core.Shared, profile workload.AccountProfile) (*accountSim, error) {
	tl := clock.NewTimeline()
	params := shared.Params
	params.Seed = workload.Substream(profile.Seed, "netsim")
	// With tracing on, each account gets an X-Ray-sim store whose
	// head sampler draws from its own "trace" seed partition — two
	// identically-seeded accounts keep identical trace sets.
	var sampling *trace.SamplerConfig
	if cfg.Trace {
		sampling = &trace.SamplerConfig{Seed: workload.Substream(profile.Seed, "trace")}
	}
	cloud, err := core.NewCloud(core.CloudOptions{
		Name:      fmt.Sprintf("fleet-%06d", profile.Index),
		Shared:    shared,
		Clock:     tl.Clock(),
		NetParams: &params,
		// With a control tower attached, each account publishes its
		// CloudWatch plane series for the cross-account rollups. The
		// interceptor is read-only over the request path, so enabling it
		// never moves a ledger. Logging stays off either way: the fleet
		// reads no logs, and ingest would dominate the span's cost.
		DisableObservability: cfg.Tower == nil,
		DisableLogging:       true,
		DisableTracing:       !cfg.Trace,
		TraceSampling:        sampling,
	})
	if err != nil {
		return nil, err
	}
	a := &accountSim{
		cfg:     cfg,
		profile: profile,
		tl:      tl,
		cloud:   cloud,
		end:     clock.Epoch.Add(cfg.Span),
		payload: rand.New(rand.NewSource(workload.Substream(profile.Seed, "payload"))),
	}

	switch profile.Kind {
	case workload.KindChat:
		d, err := chat.Install(cloud, operator, chat.App{
			Members:  []string{"owner", "peer"},
			MemoryMB: 448,
		})
		if err != nil {
			return nil, err
		}
		a.dep = d
		a.owner = chat.NewClient(d, "owner", "laptop")
		a.peer = chat.NewClient(d, "peer", "phone")
		if _, err := a.owner.Session(); err != nil {
			return nil, err
		}
		if _, err := a.peer.Session(); err != nil {
			return nil, err
		}
	case workload.KindEmail:
		d, err := core.Install(cloud, operator, email.App{})
		if err != nil {
			return nil, err
		}
		a.dep = d
	case workload.KindFiledrop:
		d, err := core.Install(cloud, operator, filetransfer.App{})
		if err != nil {
			return nil, err
		}
		a.dep = d
	case workload.KindIoT:
		d, err := core.Install(cloud, operator, iot.App{
			AlertRules: map[string]float64{"temperature_c": 60},
		})
		if err != nil {
			return nil, err
		}
		a.dep = d
		dev, _ := json.Marshal(iot.Device{Name: "sensor", Kind: "thermo"})
		if err := a.invokeOK("register", dev); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown app kind %d", profile.Kind)
	}

	// The warmup above (installs, sessions, device registration) ran at
	// Epoch; the first arrival's inter-request gap measures from here.
	a.lastAt = cloud.Clock.Now()
	a.arrivals = workload.NewPoisson(
		workload.Substream(profile.Seed, "arrivals"),
		profile.RequestsPerDay,
		a.lastAt,
	)
	return a, nil
}

// invokeOK sends one op and verifies the app accepted it.
func (a *accountSim) invokeOK(op string, body []byte) error {
	ctx := a.dep.ClientContext()
	resp, _, err := a.dep.Invoke(ctx, op, body)
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("op %s: status %d: %s", op, resp.Status, resp.Body)
	}
	return nil
}

// scheduleNext queues the next arrival, if it falls inside the span.
func (a *accountSim) scheduleNext() {
	next := a.arrivals.Next()
	if next.Before(a.end) {
		a.tl.Schedule(next, a.step)
	}
}

// step is one timeline event: serve the arrival, then schedule the
// next one. Errors latch and stop the chain.
func (a *accountSim) step(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return
	}
	if err := a.requestLocked(now); err != nil {
		a.err = err
		return
	}
	a.scheduleNext()
}

// requestLocked serves one workload arrival for the account's app
// kind. Caller holds a.mu.
func (a *accountSim) requestLocked(now time.Time) error {
	gap := now.Sub(a.lastAt)
	a.lastAt = now
	switch a.profile.Kind {
	case workload.KindChat:
		return a.chatRequestLocked(now, gap)
	case workload.KindEmail:
		return a.emailRequestLocked(now, gap)
	case workload.KindFiledrop:
		return a.filedropRequestLocked(now, gap)
	default:
		return a.iotRequestLocked(now, gap)
	}
}

// requestContextLocked returns the arrival's client context. With
// tracing on it is a TracedContext: the head-sampling decision is
// taken up front and an unsampled request carries a nil (still
// nil-safe) trace. Caller holds a.mu and finishes the returned trace
// when the flow completes.
func (a *accountSim) requestContextLocked(op string) (*sim.Context, *trace.Trace) {
	if !a.cfg.Trace {
		return a.dep.ClientContext(), nil
	}
	return a.dep.TracedContext(op)
}

// chatRequestLocked is the Table 3 flow at fleet scale: owner sends,
// peer's outstanding long poll delivers, E2E latency runs from send
// initiation to decrypted delivery.
func (a *accountSim) chatRequestLocked(now time.Time, gap time.Duration) error {
	body := a.bodyLocked()
	var stats lambda.InvocationStats
	var err error
	if a.cfg.Trace {
		_, stats, err = a.owner.SendTraced(body)
	} else {
		stats, _, err = a.owner.SendTimed(body)
	}
	if err != nil {
		return fmt.Errorf("chat send %d: %w", a.stats.Requests, err)
	}
	pollCtx := a.peer.PollContext(now)
	msgs, err := a.peer.Receive(pollCtx, 20*time.Second)
	if err != nil {
		return fmt.Errorf("chat receive %d: %w", a.stats.Requests, err)
	}
	if len(msgs) != 1 {
		return fmt.Errorf("chat receive %d: got %d messages, want 1", a.stats.Requests, len(msgs))
	}
	a.recordLocked(gap, stats.ColdStart, pollCtx.Cursor.Now().Sub(now))
	return nil
}

// emailRequestLocked delivers one inbound message through the SES
// trigger. Deliver does not surface InvocationStats, so cold starts
// come from the function's platform counters.
func (a *accountSim) emailRequestLocked(now time.Time, gap time.Duration) error {
	raw := fmt.Sprintf("From: friend@example.org\r\nSubject: note %d\r\n\r\n%s",
		a.stats.Requests, a.bodyLocked())
	_, coldBefore := a.cloud.Lambda.Stats(a.dep.FnName)
	ctx, tr := a.requestContextLocked("email-inbound")
	err := a.cloud.SES.Deliver(ctx, "friend@example.org", operator+"@"+email.MailDomain, []byte(raw))
	tr.Finish(ctx.Now())
	if err != nil {
		return fmt.Errorf("email inbound %d: %w", a.stats.Requests, err)
	}
	_, coldAfter := a.cloud.Lambda.Stats(a.dep.FnName)
	a.recordLocked(gap, coldAfter > coldBefore, ctx.Cursor.Now().Sub(now))
	return nil
}

// filedropRequestLocked uploads one file and verifies the offer was
// accepted.
func (a *accountSim) filedropRequestLocked(now time.Time, gap time.Duration) error {
	req, err := json.Marshal(filetransfer.UploadRequest{
		Name: fmt.Sprintf("drop-%06d", a.stats.Requests),
		To:   "peer",
		Data: []byte(a.bodyLocked()),
	})
	if err != nil {
		return err
	}
	ctx, tr := a.requestContextLocked("filedrop-upload")
	resp, stats, err := a.dep.Invoke(ctx, "upload", req)
	tr.Finish(ctx.Now())
	if err != nil {
		return fmt.Errorf("filedrop upload %d: %w", a.stats.Requests, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("filedrop upload %d: status %d: %s", a.stats.Requests, resp.Status, resp.Body)
	}
	a.recordLocked(gap, stats.ColdStart, ctx.Cursor.Now().Sub(now))
	return nil
}

// iotRequestLocked alternates device telemetry reports with an
// occasional dashboard read — the §6.1 controller workload.
func (a *accountSim) iotRequestLocked(now time.Time, gap time.Duration) error {
	op, body := "report", []byte(nil)
	if a.stats.Requests%12 == 11 {
		op = "dashboard"
	} else {
		b, err := json.Marshal(iot.Report{
			Device:  "sensor",
			Metrics: map[string]float64{"temperature_c": 20 + 30*a.payload.Float64()},
		})
		if err != nil {
			return err
		}
		body = b
	}
	ctx, tr := a.requestContextLocked("iot-" + op)
	resp, stats, err := a.dep.Invoke(ctx, op, body)
	tr.Finish(ctx.Now())
	if err != nil {
		return fmt.Errorf("iot %s %d: %w", op, a.stats.Requests, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("iot %s %d: status %d: %s", op, a.stats.Requests, resp.Status, resp.Body)
	}
	a.recordLocked(gap, stats.ColdStart, ctx.Cursor.Now().Sub(now))
	return nil
}

// bodyLocked draws a payload whose length varies around the profile's
// mean from the account's payload stream. Caller holds a.mu.
func (a *accountSim) bodyLocked() string {
	n := a.profile.BodyBytes/2 + a.payload.Intn(a.profile.BodyBytes)
	return strings.Repeat("x", n)
}

// recordLocked books one served request. Caller holds a.mu.
func (a *accountSim) recordLocked(gap time.Duration, cold bool, latency time.Duration) {
	a.stats.Requests++
	if cold {
		a.stats.ColdStarts++
	}
	a.latencies = append(a.latencies, latency)
	a.samples = append(a.samples, reqSample{gap: gap, cold: cold})
}

// outcome prices the account's span at list price, extrapolates to the
// month, and packages the raw result.
func (a *accountSim) outcome() accountOutcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return accountOutcome{err: fmt.Errorf("account %06d (%v): %w", a.profile.Index, a.profile.Kind, a.err)}
	}
	var span pricing.Money
	for _, u := range a.cloud.Meter.Snapshot() {
		span += a.cfg.Book.ListPrice(u)
	}
	a.stats.Index = a.profile.Index
	a.stats.Kind = a.profile.Kind
	a.stats.MonthlyCost = span.MulFloat(float64(month) / float64(a.cfg.Span))
	if a.cfg.CaptureLedgers {
		a.stats.Ledger = renderLedger(a.cloud.Meter)
	}
	return accountOutcome{stats: a.stats, latencies: a.latencies, samples: a.samples}
}

// renderLedger formats a meter snapshot as one line per usage
// dimension — the bit-identical comparison form the isolation and
// parity tests diff.
func renderLedger(m *pricing.Meter) string {
	var sb strings.Builder
	for _, u := range m.Snapshot() {
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%.9f\n", u.Kind, u.Resource, u.App, u.Quantity)
	}
	return sb.String()
}
