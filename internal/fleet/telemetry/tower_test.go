package telemetry_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/metrics"
	"repro/internal/fleet/telemetry"
)

// fixtureAccounts is a small synthetic fleet: two app kinds spread
// over two service namespaces, with one account (index 3) carrying a
// deliberately identical monthly cost to index 4 to exercise the
// top-N tie break.
const fixtureAccounts = 6

func observeFixtureAccount(tw *telemetry.Tower, i int) {
	svc := metrics.New()
	at := clock.Epoch.Add(time.Minute)
	ns := "lambda/Invoke"
	kind := "blog"
	if i%2 == 1 {
		ns = "s3/PutObject"
		kind = "drive"
	}
	svc.Record(ns, metrics.MetricPlaneRequests, at, float64(10+i))
	svc.Record(ns, metrics.MetricPlaneErrors, at, float64(i%2))
	svc.Record(ns, metrics.MetricPlaneDenials, at, 0)
	svc.Record(ns, metrics.MetricPlaneLatencyMs, at, float64(3*(10+i)))
	svc.Record(ns, metrics.MetricPlaneCostNanos, at, float64(1_000_000*(i+1)))
	svc.Record(metrics.AccountNamespace, metrics.MetricAccountCostNanos, at, float64(500_000*(i+1)))
	monthly := int64(1_000_000_000) * int64(i+1)
	if i == 3 {
		monthly = 5_000_000_000 // ties with index 4
	}
	tw.ObserveAccount(svc, telemetry.AccountObservation{
		Slot: i, Index: i, Kind: kind,
		Requests: 10 + i, ColdStarts: i % 3, Events: 100 + i,
		MonthlyCostNanos: monthly,
	})
}

func runFixture(accountOrder, shardOrder []int) *telemetry.Tower {
	tw := telemetry.NewTower(telemetry.Options{TopN: 3})
	tw.Begin(fixtureAccounts, len(shardOrder), 42, time.Hour)
	for _, i := range accountOrder {
		observeFixtureAccount(tw, i)
	}
	for _, s := range shardOrder {
		tw.ObserveShard(s, telemetry.ShardCounters{
			Accounts: 3, Requests: 30 + s, ColdStarts: s,
			Events: 300 + s, HorizonNs: int64(3 * time.Hour),
		})
	}
	tw.Finalize()
	return tw
}

// TestDashboardOrderIndependent drives the same synthetic fleet
// through two towers with the accounts and shards observed in opposite
// orders — the worker-completion races the real scheduler produces —
// and requires byte-identical dashboards: Finalize merges in
// account-index order, never arrival order.
func TestDashboardOrderIndependent(t *testing.T) {
	forward := runFixture([]int{0, 1, 2, 3, 4, 5}, []int{0, 1})
	reverse := runFixture([]int{5, 3, 1, 4, 2, 0}, []int{1, 0})
	a, b := forward.RenderDashboard(), reverse.RenderDashboard()
	if a != b {
		t.Fatalf("dashboard depends on observation order:\n--- forward ---\n%s--- reverse ---\n%s", a, b)
	}
	for _, want := range []string{
		"Fleet control tower — 6 accounts, 2 shards, seed 42, span 1h0m0s",
		"s3/PutObject", "lambda/Invoke",
		"account span spend",
		"top 3 accounts by monthly cost:",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("dashboard missing %q:\n%s", want, a)
		}
	}
	// The tie at $5/mo (indices 3 and 4) must resolve by fleet index
	// ascending: #000003 before #000004, after the $6/mo leader.
	i5 := strings.Index(a, "#000005")
	i3 := strings.Index(a, "#000003")
	i4 := strings.Index(a, "#000004")
	if i5 < 0 || i3 < 0 || i4 < 0 || !(i5 < i3 && i3 < i4) {
		t.Errorf("top-N order wrong (want #000005 < #000003 < #000004):\n%s", a)
	}
}

// TestFinalizeIdempotent proves a double Finalize cannot double the
// fleet series — the engine calls it once, but diyctl's watcher
// teardown makes a second call cheap to reach.
func TestFinalizeIdempotent(t *testing.T) {
	tw := runFixture([]int{0, 1, 2, 3, 4, 5}, []int{0, 1})
	before := tw.RenderDashboard()
	tw.Finalize()
	if after := tw.RenderDashboard(); after != before {
		t.Fatalf("second Finalize changed the dashboard:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

// TestProgressCounters checks the live snapshot the -watch goroutine
// polls: running totals across ObserveAccount/ObserveShard.
func TestProgressCounters(t *testing.T) {
	tw := telemetry.NewTower(telemetry.Options{})
	tw.Begin(4, 2, 7, time.Hour)
	p := tw.Progress()
	if p.AccountsDone != 0 || p.AccountsTotal != 4 || p.ShardsTotal != 2 {
		t.Fatalf("fresh progress = %+v", p)
	}
	observeFixtureAccount(tw, 0)
	observeFixtureAccount(tw, 1)
	tw.ObserveShard(0, telemetry.ShardCounters{Accounts: 2, Requests: 21, Events: 201})
	p = tw.Progress()
	if p.AccountsDone != 2 || p.ShardsDone != 1 {
		t.Fatalf("mid-run progress = %+v", p)
	}
	if want := (10 + 0) + (10 + 1); p.Requests != want {
		t.Fatalf("progress requests = %d, want %d", p.Requests, want)
	}
	if want := int64((100 + 0) + (100 + 1)); p.Events != want {
		t.Fatalf("progress events = %d, want %d", p.Events, want)
	}
}

// TestFleetStoreRollups reads the merged series back through the
// tower's store: sums across accounts land under fleet/<ns>, and the
// per-shard counters publish one sample per shard.
func TestFleetStoreRollups(t *testing.T) {
	tw := runFixture([]int{0, 1, 2, 3, 4, 5}, []int{0, 1})
	st := tw.Store()
	// Even accounts (0,2,4) hit lambda/Invoke with 10+i requests.
	if got, want := st.Sum("fleet/lambda/Invoke", metrics.MetricPlaneRequests, time.Time{}, time.Time{}), float64(10+12+14); got != want {
		t.Errorf("fleet lambda requests = %g, want %g", got, want)
	}
	if got, want := st.Sum("fleet/s3/PutObject", metrics.MetricPlaneErrors, time.Time{}, time.Time{}), 3.0; got != want {
		t.Errorf("fleet s3 errors = %g, want %g", got, want)
	}
	if got := st.Count(metrics.FleetNamespace, metrics.MetricFleetShardEvents, time.Time{}, time.Time{}); got != 2 {
		t.Errorf("shard-events samples = %d, want 2", got)
	}
	if got, want := st.Max(metrics.FleetNamespace, metrics.MetricFleetShardEvents, time.Time{}, time.Time{}), 301.0; got != want {
		t.Errorf("shard-events max = %g, want %g", got, want)
	}
}

// TestHostPhasesZeroWithoutClock pins the determinism contract's
// visible edge: with no injected host clock every phase reads zero and
// the renderer says so instead of printing noise timings.
func TestHostPhasesZeroWithoutClock(t *testing.T) {
	tw := runFixture([]int{0, 1, 2, 3, 4, 5}, []int{0, 1})
	got := tw.RenderHostPhases()
	if !strings.Contains(got, "no host clock injected") {
		t.Fatalf("host phases without a clock = %q", got)
	}
	tw.ObservePhases(telemetry.PhaseTimings{ProfilesNs: 1e6, DrainNs: 2e6, AggregateNs: 3e6})
	got = tw.RenderHostPhases()
	for _, want := range []string{"profiles", "drain", "aggregate", "per-account split"} {
		if !strings.Contains(got, want) {
			t.Errorf("host phases missing %q:\n%s", want, got)
		}
	}
}
