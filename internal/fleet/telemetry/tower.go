// Package telemetry is the fleet control tower: the fleet engine
// observing itself through the same interned-handle metrics store the
// simulated clouds publish into. It has three layers.
//
// Engine self-telemetry: deterministic virtual-time counters per shard
// (timeline events popped, accounts completed, requests simulated,
// cold starts, horizon drained), published under metrics.FleetNamespace.
// These are pure functions of the fleet's replay identity and are
// bit-identical across runs at any worker count.
//
// Cross-account rollups: each account's CloudWatch series (the
// plane.requests/errors/cost family and the cumulative account cost
// gauge) are collected the moment its simulation completes, then
// merged strictly in account-index order at Finalize — so fleet-level
// sums and percentiles never depend on the order workers finish.
//
// Host-time phase timers: install vs drain per account, and the run's
// profile/drain/aggregate phases, measured through metrics.HostNow.
// These read zero unless a host clock was injected (diyctl does; tests
// and simulated runs never do), so enabling the tower cannot move a
// ledger golden — the check.sh parity gate proves it.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/metrics"
	"repro/internal/cloudsim/trace"
	"repro/internal/pricing"
)

// Options parameterizes a Tower.
type Options struct {
	// TopN is how many most-expensive accounts the dashboard table
	// lists (default 5).
	TopN int
}

// AccountObservation is everything the engine reports about one
// completed account simulation. Virtual-time fields are replay
// identity; the two host-ns fields are zero unless a host clock was
// injected.
type AccountObservation struct {
	// Slot is the account's position in the simulated sub-fleet (its
	// outcome-slice index); Index is its fleet position.
	Slot, Index int
	// Kind names the app the account ran.
	Kind string
	// Requests, ColdStarts, Events count workload arrivals served,
	// cold containers hit, and timeline events popped over the span.
	Requests, ColdStarts, Events int
	// MonthlyCostNanos is the account's extrapolated monthly bill in
	// nanodollars.
	MonthlyCostNanos int64
	// InstallHostNs and DrainHostNs split the account's host-clock time
	// between NewCloud+app install and the request-plane replay.
	InstallHostNs, DrainHostNs int64
}

// TraceObservation is one account's X-Ray-sim rollup, reported after
// its simulation completes: the sampling counters, the span's x-ray
// list price, and the pre-reduced service map and critical-path
// profile the tower merges fleet-wide at Finalize. Everything here is
// virtual-time replay identity.
type TraceObservation struct {
	// Slot is the account's position in the simulated sub-fleet.
	Slot int
	// Decided, Kept, Stored, Scanned mirror trace.StoreStats.
	Decided, Kept, Stored, Scanned int64
	// ListNanos prices the account's x-ray usage (traces recorded +
	// scanned) at list price, in nanodollars.
	ListNanos int64
	// Map and Crit are the account's service map and critical-path
	// profile over its sampled traces.
	Map  *trace.ServiceMap
	Crit *trace.CriticalProfile
}

// traceCell is one account's trace slot; like accountCell, each is
// written by exactly one worker and read only after the workers join.
type traceCell struct {
	ok  bool
	obs TraceObservation
}

// ShardCounters accumulates one logical shard's virtual-time totals.
type ShardCounters struct {
	Accounts, Requests, ColdStarts, Events int
	// HorizonNs is the simulated time drained: Span per account.
	HorizonNs int64
}

// PhaseTimings is the run's host-clock phase split. All zero unless a
// host clock was injected via metrics.SetHostClock.
type PhaseTimings struct {
	// ProfilesNs covers account-profile generation, DrainNs the shard
	// workers' run, AggregateNs the account-order merge.
	ProfilesNs, DrainNs, AggregateNs int64
}

// Progress is a live snapshot of a running fleet, safe to poll from a
// watcher goroutine while shards drain.
type Progress struct {
	// AccountsDone / AccountsTotal and ShardsDone / ShardsTotal track
	// completion; Requests, ColdStarts, Events are running totals.
	AccountsDone, AccountsTotal int
	ShardsDone, ShardsTotal     int
	Requests, ColdStarts        int
	Events                      int64
}

// accountRollup is the per-account reduction of its CloudWatch series:
// one row per plane namespace plus the final cost gauge.
type accountRollup struct {
	services   []nsRollup
	gaugeNanos float64
}

// nsRollup sums one "service/op" namespace's plane series.
type nsRollup struct {
	ns        string
	requests  float64
	errors    float64
	denials   float64
	latencyMs float64
	costNanos float64
}

// accountCell is one account's slot in the tower; each is written by
// exactly one worker (the one simulating that account) and read only
// after the workers join.
type accountCell struct {
	ok     bool
	obs    AccountObservation
	rollup accountRollup
}

// Tower collects fleet self-telemetry. Observe hooks are called
// concurrently from shard workers; everything else runs before or
// after the workers, single-threaded.
type Tower struct {
	topN int

	// Live counters for Progress, updated atomically on the hot path.
	accountsDone atomic.Int64
	requestsDone atomic.Int64
	coldDone     atomic.Int64
	eventsDone   atomic.Int64
	shardsDone   atomic.Int64

	mu            sync.Mutex
	begun         bool
	final         bool
	accounts      int
	shards        int
	seed          int64
	span          time.Duration
	cells         []accountCell
	shardCells    []ShardCounters
	traceCells    []traceCell
	phases        PhaseTimings
	installHostNs int64
	drainHostNs   int64

	// Fleet-wide trace rollups, merged from traceCells in slot order
	// at Finalize; nil when the run traced nothing.
	traceMap    *trace.ServiceMap
	traceCrit   *trace.CriticalProfile
	traceTotals TraceObservation

	store *metrics.Service
}

// NewTower builds a control tower with its own metrics store.
func NewTower(opts Options) *Tower {
	if opts.TopN <= 0 {
		opts.TopN = 5
	}
	return &Tower{topN: opts.TopN, store: metrics.New()}
}

// Begin sizes the tower for a run. The engine calls it once, before
// any worker starts.
func (t *Tower) Begin(accounts, shards int, seed int64, span time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begun = true
	t.accounts = accounts
	t.shards = shards
	t.seed = seed
	t.span = span
	t.cells = make([]accountCell, accounts)
	t.shardCells = make([]ShardCounters, shards)
	t.traceCells = make([]traceCell, accounts)
}

// ObserveAccount reports one completed account. svc is the account's
// CloudWatch store; its series are reduced here, while the account's
// cloud is still hot in cache, rather than retained until Finalize.
// Safe for concurrent use: each account owns its slot.
func (t *Tower) ObserveAccount(svc *metrics.Service, obs AccountObservation) {
	rollup := collectRollups(svc)
	t.mu.Lock()
	if obs.Slot >= 0 && obs.Slot < len(t.cells) {
		t.cells[obs.Slot] = accountCell{ok: true, obs: obs, rollup: rollup}
	}
	t.installHostNs += obs.InstallHostNs
	t.drainHostNs += obs.DrainHostNs
	t.mu.Unlock()
	t.accountsDone.Add(1)
	t.requestsDone.Add(int64(obs.Requests))
	t.coldDone.Add(int64(obs.ColdStarts))
	t.eventsDone.Add(int64(obs.Events))
}

// ObserveTraces reports one account's X-Ray-sim rollup. The map and
// profile arrive pre-reduced (the engine builds them while the
// account's store is hot), so this is one cell write. Safe for
// concurrent use: each account owns its slot.
func (t *Tower) ObserveTraces(obs TraceObservation) {
	t.mu.Lock()
	if obs.Slot >= 0 && obs.Slot < len(t.traceCells) {
		t.traceCells[obs.Slot] = traceCell{ok: true, obs: obs}
	}
	t.mu.Unlock()
}

// ObserveShard reports one drained shard's counters.
func (t *Tower) ObserveShard(shard int, sc ShardCounters) {
	t.mu.Lock()
	if shard >= 0 && shard < len(t.shardCells) {
		t.shardCells[shard] = sc
	}
	t.mu.Unlock()
	t.shardsDone.Add(1)
}

// ObservePhases records the run's host-clock phase split.
func (t *Tower) ObservePhases(p PhaseTimings) {
	t.mu.Lock()
	t.phases = p
	t.mu.Unlock()
}

// Progress snapshots the live counters.
func (t *Tower) Progress() Progress {
	t.mu.Lock()
	total, shards := t.accounts, t.shards
	t.mu.Unlock()
	return Progress{
		AccountsDone:  int(t.accountsDone.Load()),
		AccountsTotal: total,
		ShardsDone:    int(t.shardsDone.Load()),
		ShardsTotal:   shards,
		Requests:      int(t.requestsDone.Load()),
		ColdStarts:    int(t.coldDone.Load()),
		Events:        t.eventsDone.Load(),
	}
}

// collectRollups reduces one account's CloudWatch series to sums. The
// series arrive in creation order — deterministic for a single-threaded
// account simulation — and the reduction preserves it, so two replays
// roll up to identical rows in identical order.
func collectRollups(svc *metrics.Service) accountRollup {
	// Everything written here is a local of this body (shard-private by
	// construction — the shardsafe analyzer checks); the interning map
	// is built once per account, never per sample.
	var out accountRollup
	idx := make(map[string]int)
	for _, st := range svc.SeriesStats() {
		switch st.Metric {
		case metrics.MetricPlaneRequests, metrics.MetricPlaneErrors,
			metrics.MetricPlaneDenials, metrics.MetricPlaneLatencyMs,
			metrics.MetricPlaneCostNanos:
			// Plane series: fall through to the per-namespace row.
		case metrics.MetricAccountCostNanos:
			if st.Namespace == metrics.AccountNamespace {
				out.gaugeNanos = st.Max
			}
			continue
		default:
			continue
		}
		i, ok := idx[st.Namespace]
		if !ok {
			i = len(out.services)
			idx[st.Namespace] = i
			out.services = append(out.services, nsRollup{ns: st.Namespace})
		}
		r := &out.services[i]
		switch st.Metric {
		case metrics.MetricPlaneRequests:
			r.requests += st.Sum
		case metrics.MetricPlaneErrors:
			r.errors += st.Sum
		case metrics.MetricPlaneDenials:
			r.denials += st.Sum
		case metrics.MetricPlaneLatencyMs:
			r.latencyMs += st.Sum
		case metrics.MetricPlaneCostNanos:
			r.costNanos += st.Sum
		}
	}
	return out
}

// Finalize merges the per-account cells into fleet-level series,
// strictly in account-index order, and publishes the shard counters.
// The engine calls it once, after the workers join.
func (t *Tower) Finalize() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.final || !t.begun {
		return
	}
	t.final = true
	end := clock.Epoch.Add(t.span)

	// Per-shard virtual-time counters, one sample per shard in shard
	// order.
	for i := range t.shardCells {
		sc := &t.shardCells[i]
		at := end
		t.store.Record(metrics.FleetNamespace, metrics.MetricFleetShardEvents, at, float64(sc.Events))
		t.store.Record(metrics.FleetNamespace, metrics.MetricFleetShardAccounts, at, float64(sc.Accounts))
		t.store.Record(metrics.FleetNamespace, metrics.MetricFleetShardRequests, at, float64(sc.Requests))
		t.store.Record(metrics.FleetNamespace, metrics.MetricFleetShardCold, at, float64(sc.ColdStarts))
		t.store.Record(metrics.FleetNamespace, metrics.MetricFleetHorizonNs, at, float64(sc.HorizonNs))
	}

	// Fleet rollups of the plane series, merged account by account in
	// index order into "fleet/<service>/<op>" namespaces, plus the
	// per-account cost-gauge distribution under FleetNamespace.
	idx := make(map[string]int)
	var merged []nsRollup
	for i := range t.cells {
		c := &t.cells[i]
		if !c.ok {
			continue
		}
		for _, r := range c.rollup.services {
			j, ok := idx[r.ns]
			if !ok {
				j = len(merged)
				idx[r.ns] = j
				merged = append(merged, nsRollup{ns: r.ns})
			}
			m := &merged[j]
			m.requests += r.requests
			m.errors += r.errors
			m.denials += r.denials
			m.latencyMs += r.latencyMs
			m.costNanos += r.costNanos
		}
		t.store.Record(metrics.FleetNamespace, metrics.MetricAccountCostNanos, end, c.rollup.gaugeNanos)
	}
	for _, m := range merged {
		ns := "fleet/" + m.ns
		t.store.Record(ns, metrics.MetricPlaneRequests, end, m.requests)
		t.store.Record(ns, metrics.MetricPlaneErrors, end, m.errors)
		t.store.Record(ns, metrics.MetricPlaneDenials, end, m.denials)
		t.store.Record(ns, metrics.MetricPlaneLatencyMs, end, m.latencyMs)
		t.store.Record(ns, metrics.MetricPlaneCostNanos, end, m.costNanos)
	}

	// Fleet-wide trace rollup: merge the per-account service maps and
	// critical-path profiles strictly in slot order, so node, edge and
	// step order never depend on worker finish order.
	for i := range t.traceCells {
		c := &t.traceCells[i]
		if !c.ok {
			continue
		}
		t.traceTotals.Decided += c.obs.Decided
		t.traceTotals.Kept += c.obs.Kept
		t.traceTotals.Stored += c.obs.Stored
		t.traceTotals.Scanned += c.obs.Scanned
		t.traceTotals.ListNanos += c.obs.ListNanos
		if c.obs.Map != nil {
			if t.traceMap == nil {
				t.traceMap = &trace.ServiceMap{}
			}
			t.traceMap.Merge(c.obs.Map)
		}
		if c.obs.Crit != nil {
			if t.traceCrit == nil {
				t.traceCrit = &trace.CriticalProfile{}
			}
			t.traceCrit.Merge(c.obs.Crit)
		}
	}
}

// Store exposes the tower's fleet-level metrics store (read-only by
// convention; populated once Finalize has run).
func (t *Tower) Store() *metrics.Service { return t.store }

// fleetRED is one row of the dashboard's per-service table.
type fleetRED struct {
	ns        string
	requests  float64
	errors    float64
	denials   float64
	latencyMs float64
	costNanos float64
}

// RenderDashboard renders the final control-tower table: shard
// spread, per-service fleet RED, the account-spend distribution, and
// the top-N most expensive accounts. Deterministic — safe to diff
// across replays.
func (t *Tower) RenderDashboard() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet control tower — %d accounts, %d shards, seed %d, span %v\n",
		t.accounts, t.shards, t.seed, t.span)

	// Shard spread: virtual-time totals and the per-shard distribution.
	var evTotal, reqTotal, coldTotal int
	for i := range t.shardCells {
		evTotal += t.shardCells[i].Events
		reqTotal += t.shardCells[i].Requests
		coldTotal += t.shardCells[i].ColdStarts
	}
	fmt.Fprintf(&sb, "shards: %d events, %d requests, %d cold starts\n", evTotal, reqTotal, coldTotal)
	if len(t.shardCells) > 0 {
		fmt.Fprintf(&sb, "  events/shard min %.0f  p50 %.0f  max %.0f\n",
			t.store.Min(metrics.FleetNamespace, metrics.MetricFleetShardEvents, time.Time{}, time.Time{}),
			t.store.Percentile(metrics.FleetNamespace, metrics.MetricFleetShardEvents, time.Time{}, time.Time{}, 50),
			t.store.Max(metrics.FleetNamespace, metrics.MetricFleetShardEvents, time.Time{}, time.Time{}))
	}

	// Per-service fleet RED, most-requested first (ties by name).
	rows := t.redRowsLocked()
	if len(rows) > 0 {
		var errTotal, denTotal float64
		sb.WriteString("service/op                     requests   errors  denials  avg-lat-ms          cost\n")
		for _, r := range rows {
			avg := 0.0
			if r.requests > 0 {
				avg = r.latencyMs / r.requests
			}
			fmt.Fprintf(&sb, "%-28s %10.0f %8.0f %8.0f %11.3f  %12s\n",
				r.ns, r.requests, r.errors, r.denials, avg, dollars(r.costNanos))
			errTotal += r.errors
			denTotal += r.denials
		}
		fmt.Fprintf(&sb, "fleet totals: %.0f errors, %.0f denials\n", errTotal, denTotal)
	}

	// Account-spend distribution (span spend, the cost gauge).
	if t.store.Count(metrics.FleetNamespace, metrics.MetricAccountCostNanos, time.Time{}, time.Time{}) > 0 {
		fmt.Fprintf(&sb, "account span spend: p50 %s  p99 %s  p99.9 %s\n",
			dollars(t.store.Percentile(metrics.FleetNamespace, metrics.MetricAccountCostNanos, time.Time{}, time.Time{}, 50)),
			dollars(t.store.Percentile(metrics.FleetNamespace, metrics.MetricAccountCostNanos, time.Time{}, time.Time{}, 99)),
			dollars(t.store.Percentile(metrics.FleetNamespace, metrics.MetricAccountCostNanos, time.Time{}, time.Time{}, 99.9)))
	}

	// Top-N most expensive accounts by extrapolated monthly cost.
	top := t.topAccountsLocked()
	if len(top) > 0 {
		fmt.Fprintf(&sb, "top %d accounts by monthly cost:\n", len(top))
		for _, o := range top {
			fmt.Fprintf(&sb, "  #%06d %-9s %6d req %4d cold  %s/mo\n",
				o.Index, o.Kind, o.Requests, o.ColdStarts, pricing.Money(o.MonthlyCostNanos))
		}
	}
	return sb.String()
}

// redRowsLocked reads the fleet/<ns> rollup series back out of the
// store, sorted by request volume descending (ties by namespace).
// Caller holds t.mu.
func (t *Tower) redRowsLocked() []fleetRED {
	var rows []fleetRED
	for _, st := range t.store.SeriesStats() {
		if !strings.HasPrefix(st.Namespace, "fleet/") || st.Metric != metrics.MetricPlaneRequests {
			continue
		}
		ns := st.Namespace
		rows = append(rows, fleetRED{
			ns:        strings.TrimPrefix(ns, "fleet/"),
			requests:  st.Sum,
			errors:    t.store.Sum(ns, metrics.MetricPlaneErrors, time.Time{}, time.Time{}),
			denials:   t.store.Sum(ns, metrics.MetricPlaneDenials, time.Time{}, time.Time{}),
			latencyMs: t.store.Sum(ns, metrics.MetricPlaneLatencyMs, time.Time{}, time.Time{}),
			costNanos: t.store.Sum(ns, metrics.MetricPlaneCostNanos, time.Time{}, time.Time{}),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].requests != rows[j].requests {
			return rows[i].requests > rows[j].requests
		}
		return rows[i].ns < rows[j].ns
	})
	return rows
}

// topAccountsLocked returns the topN most expensive accounts, by
// monthly cost descending (ties by fleet index ascending). Caller
// holds t.mu.
func (t *Tower) topAccountsLocked() []AccountObservation {
	var obs []AccountObservation
	for i := range t.cells {
		if t.cells[i].ok {
			obs = append(obs, t.cells[i].obs)
		}
	}
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].MonthlyCostNanos != obs[j].MonthlyCostNanos {
			return obs[i].MonthlyCostNanos > obs[j].MonthlyCostNanos
		}
		return obs[i].Index < obs[j].Index
	})
	if len(obs) > t.topN {
		obs = obs[:t.topN]
	}
	return obs
}

// RenderTraceDashboard renders the fleet-wide trace rollup: sampling
// totals, the merged service map, and the merged critical-path
// profile. Empty when the run traced nothing (so untraced callers can
// print it unconditionally). Deterministic — check.sh diffs it across
// replays.
func (t *Tower) RenderTraceDashboard() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traceMap == nil && t.traceCrit == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("\nFleet trace rollup — head-sampled (reservoir 1/s + 5%)\n")
	fmt.Fprintf(&sb, "sampling: %d decisions, %d kept, %d stored, %d scanned; x-ray list price %s\n",
		t.traceTotals.Decided, t.traceTotals.Kept, t.traceTotals.Stored,
		t.traceTotals.Scanned, pricing.Money(t.traceTotals.ListNanos))
	if t.traceMap != nil {
		sb.WriteString(t.traceMap.Render())
	}
	if t.traceCrit != nil {
		sb.WriteString(t.traceCrit.Render())
	}
	return sb.String()
}

// RenderHostPhases renders the host-clock phase split, or an
// explanatory line when no host clock was injected. Host timings vary
// run to run, so callers print this to stderr, keeping stdout
// replay-diffable.
func (t *Tower) RenderHostPhases() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.phases.ProfilesNs + t.phases.DrainNs + t.phases.AggregateNs
	if total == 0 && t.installHostNs == 0 && t.drainHostNs == 0 {
		return "host phases: no host clock injected (simulated run; timings are all zero)\n"
	}
	var sb strings.Builder
	sb.WriteString("host phases:\n")
	fmt.Fprintf(&sb, "  profiles   %12v\n", time.Duration(t.phases.ProfilesNs))
	fmt.Fprintf(&sb, "  drain      %12v\n", time.Duration(t.phases.DrainNs))
	fmt.Fprintf(&sb, "  aggregate  %12v\n", time.Duration(t.phases.AggregateNs))
	fmt.Fprintf(&sb, "  per-account split: install %v, request plane %v\n",
		time.Duration(t.installHostNs), time.Duration(t.drainHostNs))
	return sb.String()
}

// dollars renders a nanodollar float as a fixed-precision dollar
// string for the dashboard.
func dollars(nanos float64) string {
	return fmt.Sprintf("$%.6f", nanos/1e9)
}
