package fleet

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkFleet measures fleet simulation throughput end to end —
// profile partitioning, per-account cloud construction off the shared
// bundle, timeline replay, and ordered aggregation — at two fleet
// sizes. Beyond ns/op it reports accounts/sec (how fast the engine
// chews through accounts) and ns/request (amortized cost of one
// simulated workload arrival), both gated in BENCH_cloudsim.json.
func BenchmarkFleet(b *testing.B) {
	for _, accounts := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			cfg := Config{Accounts: accounts, Span: 10 * time.Minute}
			requests := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				requests = res.TotalRequests
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(accounts)/(perOp/1e9), "accounts/sec")
			b.ReportMetric(perOp/float64(requests), "ns/request")
		})
	}
}
