package fleet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fleet/telemetry"
)

// BenchmarkFleet measures fleet simulation throughput end to end —
// profile partitioning, per-account cloud construction off the shared
// bundle, timeline replay, and ordered aggregation — at two fleet
// sizes. Beyond ns/op it reports accounts/sec (how fast the engine
// chews through accounts) and ns/request (amortized cost of one
// simulated workload arrival), both gated in BENCH_cloudsim.json.
func BenchmarkFleet(b *testing.B) {
	for _, accounts := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			cfg := Config{Accounts: accounts, Span: 10 * time.Minute}
			requests := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				requests = res.TotalRequests
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(accounts)/(perOp/1e9), "accounts/sec")
			b.ReportMetric(perOp/float64(requests), "ns/request")
		})
	}
}

// BenchmarkFleetTraced is BenchmarkFleet with head-sampled tracing on:
// every request takes a sampling decision, kept requests build span
// trees through TracedContext/SendTraced and fold them into the
// per-account columnar store at tick boundaries. The bench gate holds
// its ns/request within the margin of the untraced BenchmarkFleet —
// sampled tracing must stay cheap enough to leave on fleet-wide.
func BenchmarkFleetTraced(b *testing.B) {
	const accounts = 1000
	b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
		cfg := Config{Accounts: accounts, Span: 10 * time.Minute, Trace: true}
		requests := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			requests = res.TotalRequests
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(accounts)/(perOp/1e9), "accounts/sec")
		b.ReportMetric(perOp/float64(requests), "ns/request")
	})
}

// BenchmarkFleetTelemetry is BenchmarkFleet with the control tower
// attached: per-account CloudWatch interception, series reduction at
// account completion, shard counters, and the Finalize merge. The
// bench gate holds its ns/request within the margin of the untelemetered
// BenchmarkFleet — the "near-zero-overhead observability" claim, priced.
func BenchmarkFleetTelemetry(b *testing.B) {
	const accounts = 1000
	b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
		requests := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh tower per iteration: Begin/Finalize are one-shot.
			cfg := Config{
				Accounts: accounts,
				Span:     10 * time.Minute,
				Tower:    telemetry.NewTower(telemetry.Options{}),
			}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			requests = res.TotalRequests
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(accounts)/(perOp/1e9), "accounts/sec")
		b.ReportMetric(perOp/float64(requests), "ns/request")
	})
}
