package fleet

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloudsim/metrics"
	"repro/internal/pricing"
)

// The fleet percentile helpers must agree exactly with the metrics
// store's nearest-rank reference — one rank formula, two sample types.
// This property test feeds identical random samples to both paths and
// diffs every percentile, fractional ones included; the p=99.9 cases
// are the regression guard for the truncating rankIndex this package
// used to carry.
func TestPercentilesMatchMetricsReference(t *testing.T) {
	ps := []float64{0, 25, 50, 75, 90, 99, 99.9, 100}
	rng := rand.New(rand.NewSource(7))
	epoch := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		moneys := make([]pricing.Money, n)
		durs := make([]time.Duration, n)
		ref := metrics.New()
		for i := 0; i < n; i++ {
			v := rng.Int63n(1_000_000_000)
			moneys[i] = pricing.Money(v)
			durs[i] = time.Duration(v)
			ref.Record("ns", "m", epoch.Add(time.Duration(i)*time.Second), float64(v))
		}
		sm := sortedMoney(moneys)
		sd := sortedDurations(durs)
		for _, p := range ps {
			want := ref.Percentile("ns", "m", time.Time{}, time.Time{}, p)
			if got := moneyPercentileSorted(sm, p); float64(got) != want {
				t.Fatalf("trial %d n=%d: moneyPercentile(p=%v) = %d, metrics reference %v", trial, n, p, got, want)
			}
			if got := durationPercentileSorted(sd, p); float64(got) != want {
				t.Fatalf("trial %d n=%d: durationPercentile(p=%v) = %d, metrics reference %v", trial, n, p, got, want)
			}
		}
	}
}

// Edge cases the property loop can't hit: empty and single-sample
// inputs, and the sortedness of the copies.
func TestPercentileEdgeCases(t *testing.T) {
	if got := moneyPercentileSorted(nil, 50); got != 0 {
		t.Fatalf("empty money p50 = %v", got)
	}
	if got := durationPercentileSorted(nil, 99.9); got != 0 {
		t.Fatalf("empty duration p99.9 = %v", got)
	}
	one := sortedMoney([]pricing.Money{41})
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := moneyPercentileSorted(one, p); got != 41 {
			t.Fatalf("single-sample money p%v = %v, want 41", p, got)
		}
	}
	// The sorted copies never reorder the aggregation input.
	in := []pricing.Money{3, 1, 2}
	cp := sortedMoney(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("sortedMoney mutated its input: %v", in)
	}
	if cp[0] != 1 || cp[1] != 2 || cp[2] != 3 {
		t.Fatalf("sortedMoney not sorted: %v", cp)
	}
	din := []time.Duration{3, 1, 2}
	dcp := sortedDurations(din)
	if din[0] != 3 {
		t.Fatalf("sortedDurations mutated its input: %v", din)
	}
	if dcp[0] != 1 || dcp[2] != 3 {
		t.Fatalf("sortedDurations not sorted: %v", dcp)
	}
}
