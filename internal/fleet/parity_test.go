package fleet

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/chat"
	"repro/internal/cloudsim/clock"
	"repro/internal/cloudsim/netsim"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestIdenticalSeedsIdenticalLedgers is the per-account isolation
// property: two accounts given the same seed (and so the same profile
// and the same derived netsim/arrival/payload streams) produce
// bit-identical metered ledgers, even though they ran as separate
// members of one fleet — possibly on different workers.
func TestIdenticalSeedsIdenticalLedgers(t *testing.T) {
	shared := workload.Profile(42, 7) // an arbitrary concrete profile
	res, err := Run(Config{
		Accounts:       2,
		Span:           20 * time.Minute,
		CaptureLedgers: true,
		Profile: func(base int64, index int) workload.AccountProfile {
			p := shared
			p.Index = index // only the fleet position differs
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.PerAccount[0], res.PerAccount[1]
	if a.Ledger == "" || b.Ledger == "" {
		t.Fatal("CaptureLedgers did not populate ledgers")
	}
	if a.Ledger != b.Ledger {
		t.Fatalf("identically-seeded accounts diverged:\n%s",
			firstDiffLine(a.Ledger, b.Ledger))
	}
	if a.Requests != b.Requests || a.ColdStarts != b.ColdStarts || a.MonthlyCost != b.MonthlyCost {
		t.Errorf("stats diverged: %+v vs %+v", a, b)
	}
}

// TestOneAccountFleetMatchesStandalone pins the refactor's core
// promise: wrapping an account in the fleet machinery (shared
// immutable bundle, injected timeline, shard scheduler) changes
// nothing about what the account meters. A 1-account fleet's ledger
// must be bit-identical to driving the same workload by hand against
// a plain core.NewCloud.
func TestOneAccountFleetMatchesStandalone(t *testing.T) {
	prof := workload.AccountProfile{
		Index:          0,
		Kind:           workload.KindChat,
		Seed:           workload.AccountSeed(9, 0),
		RequestsPerDay: 800,
		BodyBytes:      200,
	}
	span := 25 * time.Minute

	res, err := Run(Config{
		Accounts:       1,
		Span:           span,
		Seed:           9,
		CaptureLedgers: true,
		Profile:        func(base int64, index int) workload.AccountProfile { return prof },
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetLedger := res.PerAccount[0].Ledger

	// Standalone replica: no Shared bundle, no Timeline — the historical
	// construction path, driven by explicit Clock.Set calls.
	params := netsim.DefaultParams()
	params.Seed = workload.Substream(prof.Seed, "netsim")
	cloud, err := core.NewCloud(core.CloudOptions{
		Name:                 "standalone",
		NetParams:            &params,
		DisableObservability: true,
		DisableLogging:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := chat.Install(cloud, "op", chat.App{
		Members:  []string{"owner", "peer"},
		MemoryMB: 448,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner := chat.NewClient(d, "owner", "laptop")
	peer := chat.NewClient(d, "peer", "phone")
	if _, err := owner.Session(); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Session(); err != nil {
		t.Fatal(err)
	}

	payload := rand.New(rand.NewSource(workload.Substream(prof.Seed, "payload")))
	arrivals := workload.NewPoisson(
		workload.Substream(prof.Seed, "arrivals"),
		prof.RequestsPerDay,
		cloud.Clock.Now(),
	)
	end := clock.Epoch.Add(span)
	for at := arrivals.Next(); at.Before(end); at = arrivals.Next() {
		cloud.Clock.Set(at)
		n := prof.BodyBytes/2 + payload.Intn(prof.BodyBytes)
		if _, _, err := owner.SendTimed(strings.Repeat("x", n)); err != nil {
			t.Fatal(err)
		}
		pollCtx := peer.PollContext(at)
		msgs, err := peer.Receive(pollCtx, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("got %d messages, want 1", len(msgs))
		}
	}
	cloud.Clock.Set(end)
	standalone := renderLedger(cloud.Meter)

	if fleetLedger != standalone {
		t.Fatalf("1-account fleet ledger diverged from standalone run:\n%s",
			firstDiffLine(fleetLedger, standalone))
	}
}
