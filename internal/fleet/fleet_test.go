package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fingerprint renders everything a Result promises to keep
// bit-identical across replays, in a canonical order.
func fingerprint(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet accounts=%d simulated=%d scale=%.3f seed=%d span=%v shards=%d\n",
		r.Accounts, r.Simulated, r.ScaleFactor, r.Seed, r.Span, r.Shards)
	fmt.Fprintf(&sb, "totals requests=%d cold=%d mix=%v note=%q\n",
		r.TotalRequests, r.TotalColdStarts, r.MixCounts, r.ScalingNote)
	for _, a := range r.PerAccount {
		fmt.Fprintf(&sb, "acct %06d %-8v requests=%d cold=%d monthly=%s\n",
			a.Index, a.Kind, a.Requests, a.ColdStarts, a.MonthlyCost)
	}
	for _, b := range r.GapBuckets {
		fmt.Fprintf(&sb, "gap %-12s n=%d cold=%d\n", b.Label, b.Requests, b.ColdStarts)
	}
	for _, p := range []float64{50, 99, 99.9} {
		fmt.Fprintf(&sb, "cost p%v=%s latency p%v=%v\n",
			p, r.CostPercentile(p), p, r.LatencyPercentile(p))
	}
	for _, l := range r.Latencies {
		fmt.Fprintf(&sb, "lat %d\n", l.Nanoseconds())
	}
	return sb.String()
}

// TestFleetDeterministicAcrossWorkers is the scheduler's contract: the
// full result — every per-account stat, every latency sample in merge
// order, every histogram cell — is bit-identical whether one worker
// drains all shards or many race over them.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Accounts: 200, Span: 20 * time.Minute, Seed: 3}

	var prints []string
	for _, workers := range []int{1, 3, 8} {
		c := cfg
		c.Workers = workers
		res, err := Run(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints = append(prints, fingerprint(res))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			d := firstDiffLine(prints[0], prints[i])
			t.Fatalf("result diverges between worker counts 1 and %d:\n%s", []int{1, 3, 8}[i], d)
		}
	}
}

// TestFleetReplayStable reruns the same config twice in-process.
func TestFleetReplayStable(t *testing.T) {
	cfg := Config{Accounts: 60, Span: 15 * time.Minute, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
		t.Fatalf("replay diverged:\n%s", firstDiffLine(fa, fb))
	}
}

// TestFleetScalingReported pins the sampling contract: oversized
// fleets are strided down to MaxSimulated-or-fewer accounts and the
// scaling is reported, never silent.
func TestFleetScalingReported(t *testing.T) {
	res, err := Run(Config{Accounts: 5000, MaxSimulated: 500, Span: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated != 500 {
		t.Errorf("simulated %d accounts, want 500", res.Simulated)
	}
	if res.ScaleFactor != 10 {
		t.Errorf("scale factor %v, want 10", res.ScaleFactor)
	}
	if res.ScalingNote == "" {
		t.Error("sampling must set ScalingNote — scaling may never be silent")
	}
	if res.PerAccount[1].Index != 10 {
		t.Errorf("second sampled account has index %d, want 10 (stride sampling)", res.PerAccount[1].Index)
	}

	full, err := Run(Config{Accounts: 50, Span: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if full.ScalingNote != "" || full.ScaleFactor != 1 {
		t.Errorf("unsampled fleet reported scaling: note=%q factor=%v", full.ScalingNote, full.ScaleFactor)
	}
}

// TestFleetColdStartKnee checks the Figure 1 extension reproduces the
// warm-pool physics: requests arriving within the warm-container TTL
// (5 minutes) almost never cold-start; requests beyond it always do.
func TestFleetColdStartKnee(t *testing.T) {
	res, err := Run(Config{Accounts: 400, Span: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.GapBuckets {
		switch {
		case b.UpTo != 0 && b.UpTo <= 5*time.Minute && b.Requests > 0:
			if frac := float64(b.ColdStarts) / float64(b.Requests); frac > 0.10 {
				t.Errorf("bucket %s under the warm TTL is %.1f%% cold, want ≤10%%", b.Label, 100*frac)
			}
		case b.UpTo == 0 || b.UpTo > 10*time.Minute:
			if b.ColdStarts != b.Requests {
				t.Errorf("bucket %s beyond the warm TTL has %d/%d cold, want all cold",
					b.Label, b.ColdStarts, b.Requests)
			}
		}
	}
}

// firstDiffLine locates the first diverging line of two renderings.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line count differs: %d vs %d", len(al), len(bl))
}
