package fleet

import (
	"sort"
	"time"

	"repro/internal/cloudsim/metrics"
	"repro/internal/pricing"
)

// Percentiles over the fleet's aggregated distributions. Two rules:
//
//   - One rank formula, shared with metrics.Percentile via
//     metrics.NearestRank — a second truncating copy here is exactly
//     how the off-by-one PR 1 fixed crept back in.
//   - Sort once per sample set, not per query. Aggregation inputs are
//     merged in account order and must stay replay-stable, so the sort
//     always works on a copy; but a report asks for three or more
//     percentiles of the same distribution, and re-copying and
//     re-sorting 10^5 latencies per query is pure waste.

// sortedMoney returns an ascending-sorted copy of samples.
func sortedMoney(samples []pricing.Money) []pricing.Money {
	cp := append([]pricing.Money(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp
}

// sortedDurations returns an ascending-sorted copy of samples.
func sortedDurations(samples []time.Duration) []time.Duration {
	cp := append([]time.Duration(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp
}

// moneyPercentileSorted reads the nearest-rank p-th percentile from an
// already-sorted sample set. p is in percent and may be fractional.
func moneyPercentileSorted(sorted []pricing.Money, p float64) pricing.Money {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[metrics.NearestRank(len(sorted), p)]
}

// durationPercentileSorted reads the nearest-rank p-th percentile from
// an already-sorted sample set. p is in percent and may be fractional.
func durationPercentileSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[metrics.NearestRank(len(sorted), p)]
}
