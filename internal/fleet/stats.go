package fleet

import (
	"sort"
	"time"

	"repro/internal/pricing"
)

// Nearest-rank percentiles over copies, so aggregation inputs (which
// are merged in account order and must stay replay-stable) are never
// reordered in place. p is in percent and may be fractional (99.9).

func moneyPercentile(samples []pricing.Money, p float64) pricing.Money {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]pricing.Money(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[rankIndex(len(cp), p)]
}

func durationPercentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[rankIndex(len(cp), p)]
}

func rankIndex(n int, p float64) int {
	idx := int(float64(n) * p / 100)
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}
