package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLedgerParityXRay3 pins the store-derived Table 3 bit-for-bit:
// medians read back from columnar annotations, query match counts,
// the service map and critical-path renders, the scan counters, and
// the example trace rendered from storage.
func TestLedgerParityXRay3(t *testing.T) {
	x, err := RunXRay3(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ledger_xray3.golden", x.Render())
}

// The store-derived numbers must agree with the live-trace-derived
// ones: RunTrace3 reads client-side span trees as they happen, RunXRay3
// reads the same flows back out of columnar storage afterwards. Both
// drive identical workloads on identically-seeded clouds.
func TestXRay3MatchesTrace3(t *testing.T) {
	x, err := RunXRay3(60, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr3, err := RunTrace3(60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.MedBilled != tr3.MedBilledTraces {
		t.Errorf("billed medians disagree: store %v, live %v", x.MedBilled, tr3.MedBilledTraces)
	}
	if x.MedRun != tr3.MedRunTraces {
		t.Errorf("run medians disagree: store %v, live %v", x.MedRun, tr3.MedRunTraces)
	}
	if x.MedCostPerSend != tr3.MedCostPerSend {
		t.Errorf("cost medians disagree: store %v, live %v", x.MedCostPerSend, tr3.MedCostPerSend)
	}
	if x.ColdStarts != tr3.ColdStarts {
		t.Errorf("cold starts disagree: store query %d, live stats %d", x.ColdStarts, tr3.ColdStarts)
	}
	// The store kept everything (sampling off) and the analytics saw
	// every send.
	if x.Stats.Decided != x.Stats.Kept || x.Stats.Stored != int64(x.Samples) {
		t.Errorf("sampling-off store stats %+v inconsistent with %d sends", x.Stats, x.Samples)
	}
	if x.Map.Traces != x.Samples || x.Crit.Traces != x.Samples {
		t.Errorf("analytics saw %d/%d traces, want %d", x.Map.Traces, x.Crit.Traces, x.Samples)
	}
	if x.XRayCost <= 0 {
		t.Error("x-ray inventory priced at zero")
	}
	out := x.Render()
	for _, frag := range []string{"trace store", "service map", "critical path", "chat-send"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

// TestTracePreservesLedger is the storage-parity gate: a run with the
// X-Ray-sim store on must be bit-identical to the same run with it
// off. The trace store is read-only over the economy — it never meters
// its own inventory and its spans only describe what happened — so
// flipping it may not move a latency sample or a nanodollar. The fleet
// side of the same contract is TestLedgerParityFleetTraced.
func TestTracePreservesLedger(t *testing.T) {
	render := func(tbl *Table3) string {
		var sb strings.Builder
		sb.WriteString(tbl.Render())
		sb.WriteString(tbl.MedBilled.String())
		sb.WriteString(tbl.MedRun.String())
		sb.WriteString(tbl.MedE2E.String())
		sb.WriteString(tbl.P95Run.String())
		sb.WriteString(tbl.P99E2E.String())
		sb.WriteString(tbl.CostPer100K.String())
		return sb.String()
	}
	on, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunTable3(Table3Config{DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(off), render(on); got != want {
		t.Errorf("tracing off diverges from tracing on:\n%s", firstDiff(want, got))
	}
	// Both match the pinned golden (the same file TestLedgerParityTable3
	// checks), so "on == off" cannot drift away from the seed together.
	var sb strings.Builder
	sb.WriteString(off.Render())
	checkGoldenPrefix(t, "ledger_table3.golden", sb.String())
}

// checkGoldenPrefix asserts got is a prefix of the named golden —
// used when a test re-derives the rendered table but not the trailing
// raw-fingerprint line another test pins.
func checkGoldenPrefix(t *testing.T, name, got string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing golden %s: %v", name, err)
	}
	if !strings.HasPrefix(string(want), got) {
		t.Errorf("output is not a prefix of golden %s\n%s", name, firstDiff(string(want), got))
	}
}

// TestXRay3DefaultsDeterministic replays the default store-derived run
// and requires byte-identical renders — the single-account form of the
// replay contract check.sh enforces on the fleet dashboard.
func TestXRay3DefaultsDeterministic(t *testing.T) {
	a, err := RunXRay3(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunXRay3(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ar, br := a.Render(), b.Render(); ar != br {
		t.Errorf("replay diverged:\n%s", firstDiff(ar, br))
	}
}
