package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The ledger-parity goldens pin the exact cost and latency output of the
// headline experiments. They were generated before the request-plane
// refactor and must stay bit-identical across any change that claims to
// be behavior-preserving: a one-nanodollar shift in a meter ledger or a
// one-nanosecond shift in a sampled latency stream shows up as a diff.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestLedgerParity -update-ledger-goldens
var updateLedgerGoldens = flag.Bool("update-ledger-goldens", false,
	"rewrite the ledger-parity golden files from current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateLedgerGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-ledger-goldens to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("output differs from golden %s\n--- golden\n%s\n--- got\n%s", path, firstDiff(string(want), got), got)
	}
}

// firstDiff points at the first line that differs, so a parity break
// reads as "this line moved" rather than a wall of text.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line count differs: want %d, got %d", len(w), len(g))
}

func TestLedgerParityTable1(t *testing.T) {
	tbl, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ledger_table1.golden", tbl.Render())
}

func TestLedgerParityTable2(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(RenderTable2(RunTable2()))
	sb.WriteString("\n")
	sb.WriteString(RenderFullAccounting(RunTable2FullAccounting()))
	checkGolden(t, "ledger_table2.golden", sb.String())
}

func TestLedgerParityTable3(t *testing.T) {
	tbl, err := RunTable3(Table3Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(tbl.Render())
	// The rendered table rounds to milliseconds; the raw fingerprint
	// pins every sampled duration and nanodollar amount exactly.
	fmt.Fprintf(&sb, "raw: billed=%dns run=%dns e2e=%dns p95run=%dns p99e2e=%dns alloc=%dMB peak=%dMB cost100k=%dnd samples=%d cold=%d\n",
		int64(tbl.MedBilled), int64(tbl.MedRun), int64(tbl.MedE2E),
		int64(tbl.P95Run), int64(tbl.P99E2E),
		tbl.AllocatedMB, tbl.PeakMemoryMB, int64(tbl.CostPer100K),
		tbl.Samples, tbl.ColdStarts)
	checkGolden(t, "ledger_table3.golden", sb.String())
}
