package experiments

import (
	"strings"
	"testing"

	"repro/internal/fleet/telemetry"
)

// TestLedgerParityFleet pins the 1,000-account fleet bit-for-bit: the
// rendered summary, every per-account stat line, and the raw
// nanosecond/nanodollar fingerprint. check.sh runs this golden under
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU — both must match the same file,
// which is the enforced form of the "worker count never changes a
// byte" contract.
func TestLedgerParityFleet(t *testing.T) {
	rep, err := RunFleet(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(rep.Render())
	sb.WriteString(rep.RawFingerprint())
	sb.WriteString(rep.RenderAccounts())
	checkGolden(t, "ledger_fleet.golden", sb.String())
}

// TestLedgerParityFleetTelemetry reruns the same fleet with the
// control tower attached and diffs against the *same* golden file —
// the enforced form of "telemetry on == telemetry off". The tower
// turns on per-account CloudWatch interception, shard counters, and
// cross-account rollups; none of it may move a single byte of the
// replay-identity output. (check.sh's `-run TestLedgerParityFleet`
// prefix match runs this at GOMAXPROCS=1 and NumCPU too.)
func TestLedgerParityFleetTelemetry(t *testing.T) {
	cfg := DefaultFleetConfig()
	tower := telemetry.NewTower(telemetry.Options{})
	cfg.Tower = tower
	rep, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(rep.Render())
	sb.WriteString(rep.RawFingerprint())
	sb.WriteString(rep.RenderAccounts())
	checkGolden(t, "ledger_fleet.golden", sb.String())

	// Sanity: the tower actually observed the run.
	p := tower.Progress()
	if p.AccountsDone != rep.Result.Simulated || p.Requests != rep.Result.TotalRequests {
		t.Fatalf("tower progress %+v does not match result (simulated=%d requests=%d)",
			p, rep.Result.Simulated, rep.Result.TotalRequests)
	}
	if p.Events <= 0 || p.ShardsDone <= 0 {
		t.Fatalf("tower saw no engine activity: %+v", p)
	}
	dash := tower.RenderDashboard()
	for _, want := range []string{"Fleet control tower", "lambda/", "account span spend", "top 5 accounts"} {
		if !strings.Contains(dash, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, dash)
		}
	}

	// With no traced accounts, the trace dashboard renders empty.
	if td := tower.RenderTraceDashboard(); td != "" {
		t.Fatalf("untraced run rendered a trace dashboard:\n%s", td)
	}
}

// TestLedgerParityFleetTraced reruns the same fleet with head-sampled
// tracing on (plus the tower, so the sampled traces roll up) and diffs
// against the *same* golden file — the enforced form of "tracing on ==
// tracing off". Traced requests run under TracedContext and the chat
// flow switches to SendTraced; none of it may move a latency sample or
// a nanodollar. (check.sh's `-run TestLedgerParityFleet` prefix match
// runs this at GOMAXPROCS=1 and NumCPU too, so the sampled kept-sets
// are also pinned independent of worker count.)
func TestLedgerParityFleetTraced(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Trace = true
	tower := telemetry.NewTower(telemetry.Options{})
	cfg.Tower = tower
	rep, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(rep.Render())
	sb.WriteString(rep.RawFingerprint())
	sb.WriteString(rep.RenderAccounts())
	checkGolden(t, "ledger_fleet.golden", sb.String())

	// The rollup actually saw sampled traces.
	dash := tower.RenderTraceDashboard()
	for _, want := range []string{"Fleet trace rollup", "sampling:", "service map", "critical path"} {
		if !strings.Contains(dash, want) {
			t.Fatalf("trace dashboard missing %q:\n%s", want, dash)
		}
	}
}
