package experiments

import (
	"strings"
	"testing"
)

// TestLedgerParityFleet pins the 1,000-account fleet bit-for-bit: the
// rendered summary, every per-account stat line, and the raw
// nanosecond/nanodollar fingerprint. check.sh runs this golden under
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU — both must match the same file,
// which is the enforced form of the "worker count never changes a
// byte" contract.
func TestLedgerParityFleet(t *testing.T) {
	rep, err := RunFleet(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(rep.Render())
	sb.WriteString(rep.RawFingerprint())
	sb.WriteString(rep.RenderAccounts())
	checkGolden(t, "ledger_fleet.golden", sb.String())
}
