package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/pricing"
)

// VideoHostPoint is one hosting choice for the video relay.
type VideoHostPoint struct {
	Mode        string
	MonthlyCost pricing.Money
	// Feasible reports whether the 2017 platform could host it at all
	// (Lambda had no multi-connection support — the paper's stated
	// reason for EC2).
	Feasible bool
}

// RunVideoHostingComparison prices the paper's video workload — one
// 15-minute HD call per day — on the relay host choices, quantifying
// the design decision behind Table 2 row 5: "Since Lambda does not
// support multiple connections yet, we use a t2.medium EC2 instance."
// Even with the §8.3 connection extension making serverless relays
// *possible*, a sustained media stream keeps the container attached
// for the whole call, and per-GB-second pricing above the free tier is
// more expensive than a per-second VM — the VM is the right call for
// sustained throughput, serverless for idle-heavy services.
func RunVideoHostingComparison() []VideoHostPoint {
	book := pricing.Default2017()
	callPerDay := 15 * time.Minute
	monthlySeconds := callPerDay.Seconds() * 30

	// EC2 t2.medium, per-second billing, only during calls.
	ec2Cost := book.EC2Hourly("t2.medium").MulFloat(monthlySeconds / 3600)

	// Serverless connection (suspend/resume): the stream never idles,
	// so the container is attached for the full call. A relay needs
	// real memory; use the 1536 MB ceiling.
	gbs := monthlySeconds * 1536.0 / 1024.0
	free := book.LambdaFreeGBSeconds
	billableGBs := gbs - free
	if billableGBs < 0 {
		billableGBs = 0
	}
	lambdaCost := book.LambdaPerGBSecond.MulFloat(billableGBs)
	lambdaListCost := book.LambdaPerGBSecond.MulFloat(gbs)

	return []VideoHostPoint{
		{Mode: "ec2 t2.medium (paper)", MonthlyCost: ec2Cost, Feasible: true},
		{Mode: "lambda conn (free tier)", MonthlyCost: lambdaCost, Feasible: true},
		{Mode: "lambda conn (list price)", MonthlyCost: lambdaListCost, Feasible: true},
		{Mode: "lambda per-request (2017)", MonthlyCost: 0, Feasible: false},
	}
}

// RenderVideoHosting prints the comparison.
func RenderVideoHosting(points []VideoHostPoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation: hosting the video relay (15 min HD call daily) — why the paper chose EC2\n")
	fmt.Fprintf(&sb, "  %-28s %14s %10s\n", "Mode", "Compute/month", "Feasible")
	for _, p := range points {
		cost := p.MonthlyCost.String()
		if !p.Feasible {
			cost = "n/a"
		}
		fmt.Fprintf(&sb, "  %-28s %14s %10v\n", p.Mode, cost, p.Feasible)
	}
	return sb.String()
}
